package solve_test

import (
	"encoding/json"
	"errors"
	"testing"

	"vrcg/solve"
)

func intp(v int) *int { return &v }

func TestParamsOptionsRoundTrip(t *testing.T) {
	blob := []byte(`{"tol":1e-9,"max_iter":50,"history":true,"lookahead":3,"block_size":2}`)
	var p solve.Params
	if err := json.Unmarshal(blob, &p); err != nil {
		t.Fatal(err)
	}
	if p.Tol != 1e-9 || p.MaxIter != 50 || !p.History {
		t.Fatalf("bad scalar decode: %+v", p)
	}
	if p.Lookahead == nil || *p.Lookahead != 3 || p.BlockSize == nil || *p.BlockSize != 2 {
		t.Fatalf("bad pointer decode: %+v", p)
	}
	if n := len(p.Options()); n != 5 {
		t.Fatalf("want 5 options, got %d", n)
	}
}

func TestParamsZeroValueIsNoOptions(t *testing.T) {
	var p solve.Params
	if opts := p.Options(); len(opts) != 0 {
		t.Fatalf("zero Params produced %d options", len(opts))
	}
	var nilp *solve.Params
	if opts := nilp.Options(); opts != nil {
		t.Fatal("nil Params should produce nil options")
	}
	if err := nilp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsLookaheadZeroIsExplicit(t *testing.T) {
	// lookahead: 0 is a valid vrcg setting, distinct from absent.
	var p solve.Params
	if err := json.Unmarshal([]byte(`{"lookahead":0}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Lookahead == nil || *p.Lookahead != 0 {
		t.Fatalf("explicit lookahead 0 lost: %+v", p.Lookahead)
	}
	if len(p.Options()) != 1 {
		t.Fatal("explicit lookahead 0 must produce an option")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []solve.Params{
		{Tol: -1},
		{MaxIter: -1},
		{Lookahead: intp(-1)},
		{BlockSize: intp(0)},
		{Processors: intp(0)},
		{BatchWorkers: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, solve.ErrBadOption) {
			t.Errorf("case %d: want ErrBadOption, got %v", i, err)
		}
	}
	good := solve.Params{Tol: 1e-8, Lookahead: intp(0), BlockSize: intp(4)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsKeyCanonical(t *testing.T) {
	a := solve.Params{Tol: 1e-8, Lookahead: intp(2)}
	b := solve.Params{Lookahead: intp(2), Tol: 1e-8}
	if a.Key() != b.Key() {
		t.Fatalf("equal params produced different keys: %q vs %q", a.Key(), b.Key())
	}
	c := solve.Params{Tol: 1e-8, Lookahead: intp(3)}
	if a.Key() == c.Key() {
		t.Fatal("different params produced the same key")
	}
	var nilp *solve.Params
	if nilp.Key() != "{}" {
		t.Fatalf("nil key %q", nilp.Key())
	}
}

func TestParamsDriveASolve(t *testing.T) {
	a, b := poolFixture(t)
	var p solve.Params
	if err := json.Unmarshal([]byte(`{"tol":1e-10,"history":true}`), &p); err != nil {
		t.Fatal(err)
	}
	res, err := solve.MustNew("cg").Solve(a, b, p.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.History) == 0 {
		t.Fatalf("params did not reach the solver: converged=%v history=%d",
			res.Converged, len(res.History))
	}
}
