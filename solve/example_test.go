package solve_test

import (
	"errors"
	"fmt"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// system builds a small 2D Poisson problem with a manufactured
// solution, so every example checks a system whose answer is known.
func system(m int) (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(m)
	x := vec.New(a.Dim())
	vec.Random(x, 1)
	b := vec.New(a.Dim())
	a.MulVec(b, x)
	return a, b
}

// The front door: build a solver by name, run it, read one canonical
// Result regardless of method.
func ExampleNew() {
	a, b := system(16)
	s, err := solve.New("cg")
	if err != nil {
		panic(err)
	}
	res, err := s.Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s converged=%v, true residual below 1e-8: %v\n",
		res.Method, res.Converged, res.TrueResidualNorm < 1e-8*vec.Norm2(b))
	// Output:
	// cg converged=true, true residual below 1e-8: true
}

// Preconditioned CG takes its preconditioner as an option; everything
// in the public precond package satisfies solve.Preconditioner.
func ExampleNew_pcg() {
	a, b := system(16)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		panic(err)
	}
	res, err := solve.MustNew("pcg").Solve(a, b,
		solve.WithPreconditioner(jac), solve.WithTol(1e-10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("pcg converged=%v, preconditioner solves=%v\n",
		res.Converged, res.Stats.PrecondSolves > 0)
	// Output:
	// pcg converged=true, preconditioner solves=true
}

// The paper's restructured look-ahead CG: WithLookahead sets the
// pipeline depth k, and Result.Drift reports how the scalar
// recurrences behaved in floating point.
func ExampleNew_vrcg() {
	a, b := system(16)
	res, err := solve.MustNew("vrcg").Solve(a, b,
		solve.WithLookahead(3), solve.WithTol(1e-10), solve.WithValidateEvery(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("vrcg converged=%v, drift checks=%v, blocking syncs < dots: %v\n",
		res.Converged, res.Drift.Checks > 0, res.Syncs < res.Stats.InnerProducts)
	// Output:
	// vrcg converged=true, drift checks=true, blocking syncs < dots: true
}

// Ghysels–Vanroose pipelined CG: one fused reduction per iteration, so
// the blocking-sync count tracks the iteration count instead of the
// inner-product count.
func ExampleNew_pipecg() {
	a, b := system(16)
	res, err := solve.MustNew("pipecg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("pipecg converged=%v, syncs=iterations+1: %v\n",
		res.Converged, res.Syncs == res.Iterations+1)
	// Output:
	// pipecg converged=true, syncs=iterations+1: true
}

// Chronopoulos–Gear s-step CG: WithBlockSize sets the block; the
// reductions amortize across it (Result.Blocks counts blocks).
func ExampleNew_sstep() {
	a, b := system(16)
	res, err := solve.MustNew("sstep").Solve(a, b,
		solve.WithBlockSize(4), solve.WithTol(1e-10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sstep converged=%v, blocks < iterations: %v\n",
		res.Converged, res.Blocks < res.Iterations)
	// Output:
	// sstep converged=true, blocks < iterations: true
}

// The distributed methods run the same mathematics on a simulated
// P-processor machine and report the parallel-time trajectory the
// paper reasons about.
func ExampleNew_parcg() {
	a, b := system(16)
	res, err := solve.MustNew("parcg").Solve(a, b,
		solve.WithLookahead(2), solve.WithProcessors(8), solve.WithTol(1e-8))
	if err != nil {
		panic(err)
	}
	fmt.Printf("parcg converged=%v, has clock trajectory: %v\n",
		res.Converged, len(res.Clocks) == res.Iterations)
	// Output:
	// parcg converged=true, has clock trajectory: true
}

// Solvers report non-convergence through one sentinel: the partial
// Result stays usable behind errors.Is.
func ExampleErrNotConverged() {
	a, b := system(16)
	res, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-12), solve.WithMaxIter(5))
	fmt.Printf("not converged: %v after %d iterations\n",
		errors.Is(err, solve.ErrNotConverged), res.Iterations)
	// Output:
	// not converged: true after 5 iterations
}

// The registry drives CLIs: method vocabulary and help text come from
// Methods and Summary, so adding a solver never touches the CLI.
func ExampleMethods() {
	for _, name := range solve.Methods()[:4] {
		fmt.Println(name)
	}
	// Output:
	// bicgstab
	// blockcg
	// blockpcg
	// cg
}
