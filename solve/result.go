package solve

import (
	"math"
	"sort"

	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/machine"
)

// PhaseSet is the per-iteration phase latency histogram bundle of the
// real-parallel methods: wall time split into spmv / reduction_wait /
// update, one 14-bucket microsecond histogram per phase (the cluster
// workers' bucket vocabulary). See Result.Phases.
type PhaseSet = engine.PhaseSet

// Result is the canonical outcome of a solve, shared by every
// registered method. Fields a method does not produce stay at their
// zero values (Drift is nil outside "vrcg", Clocks nil outside
// "parcg*", Blocks zero outside "sstep").
type Result struct {
	// Method is the registry name of the solver that produced this.
	Method string
	// X is the final iterate. It may alias solver-owned workspace
	// storage: valid until the next Solve on the same Solver.
	X []float64
	// Iterations performed.
	Iterations int
	// Converged reports whether the residual tolerance was met.
	Converged bool
	// ResidualNorm is the final (recursively updated) residual 2-norm.
	ResidualNorm float64
	// TrueResidualNorm is ||b - A x|| computed directly at exit.
	TrueResidualNorm float64
	// History holds per-iteration residual norms when WithHistory was
	// given (History[0] is the initial residual).
	History []float64
	// Stats counts the arithmetic work performed (matvecs, inner
	// products, vector updates, preconditioner solves, flops).
	Stats krylov.Stats
	// Syncs estimates the blocking global-synchronization points of
	// the schedule — the reductions whose completion the iteration had
	// to wait for. This is the quantity the paper minimizes: standard
	// CG blocks on every inner product (Syncs ~ Stats.InnerProducts),
	// pipelined CG on one fused reduction per iteration, s-step CG on
	// two per block, and the restructured method only on start-up,
	// re-anchors, and drift fallbacks — its per-iteration reductions
	// ride k iterations behind the pipeline.
	Syncs int
	// Blocks is the number of s-step blocks executed ("sstep" only).
	Blocks int
	// Drift holds the recurrence drift diagnostics of "vrcg": how far
	// the scalar recurrences wandered from direct inner products, and
	// the stabilization work spent keeping them honest.
	Drift *Drift
	// Phases holds the measured per-iteration phase latency histograms
	// of the real-parallel parcg family: wall time split into SpMV,
	// reduction wait, and vector updates on actual hardware, so the
	// overlap the paper is about shows up as a small reduction_wait
	// against a large spmv. Nil for the other methods. Aliases
	// solver-owned storage: valid until the next Solve on the same
	// Solver.
	Phases *PhaseSet
	// Clocks is the simulated parallel-time trajectory of the
	// instrumented machine mode of the parcg family (WithProcessors /
	// WithMachineConfig): Clocks[i] is the machine's max clock after
	// iteration i+1, replayed from the machine cost model over the real
	// solve's iteration count. Nil otherwise.
	Clocks []float64
	// Machine holds the simulated communication totals of the
	// distributed methods.
	Machine *machine.Stats
}

// Drift reports how the "vrcg" scalar recurrences behaved in floating
// point, and what stabilization they required.
type Drift struct {
	// MaxRelRR / MaxRelPAP are the maximum relative errors of the
	// recurrence (r,r) and (p,Ap) against direct inner products,
	// measured at WithValidateEvery checkpoints.
	MaxRelRR  float64
	MaxRelPAP float64
	// Checks counts drift checkpoints taken.
	Checks int
	// Reanchors counts direct window recomputations; Refreshes counts
	// family rebuilds (2k+1 matvecs each); Replacements counts
	// true-residual replacements.
	Reanchors    int
	Refreshes    int
	Replacements int
	// FallbackDots counts direct inner products forced by a
	// non-positive recurrence value (a drift symptom near
	// convergence); ValidationDots counts diagnostic-only products.
	FallbackDots   int
	ValidationDots int
}

// PerIterTime estimates the steady-state simulated parallel time per
// iteration of a distributed solve as the median clock increment after
// the start-up transient. NaN when the result has no Clocks (the
// shared-memory methods) or fewer than two iterations.
func (r *Result) PerIterTime() float64 {
	n := len(r.Clocks)
	if n < 2 {
		return math.NaN()
	}
	skip := n / 4
	if skip < 1 {
		skip = 1
	}
	deltas := make([]float64, 0, n-skip)
	for i := skip; i < n; i++ {
		deltas = append(deltas, r.Clocks[i]-r.Clocks[i-1])
	}
	sort.Float64s(deltas)
	m := len(deltas)
	if m == 0 {
		return math.NaN()
	}
	if m%2 == 1 {
		return deltas[m/2]
	}
	return 0.5 * (deltas[m/2-1] + deltas[m/2])
}

// TotalTime returns the final simulated machine clock of a distributed
// solve — the end-to-end parallel time including start-up. NaN for the
// shared-memory methods.
func (r *Result) TotalTime() float64 {
	if len(r.Clocks) == 0 {
		return math.NaN()
	}
	return r.Clocks[len(r.Clocks)-1]
}
