package solve_test

import (
	"errors"
	"math"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// Pre-rewrite golden trajectories for the parcg family, captured from
// the retired simulated-machine solvers (commit fcf32c0) on the
// goldenSystem fixtures. The real-parallel kernels must reproduce the
// same trajectories: iteration counts ±1, residual norms within a
// per-method relative tolerance.
//
// Why the tolerances differ by method:
//   - parcg-cg runs the identical two-reduction schedule, so only the
//     partial-sum order changed (machine per-processor partials vs the
//     canonical blocked tree); trajectories agree to roundoff.
//   - parcg-pipe reorders the scalar/update schedule across the
//     iteration boundary (value-identical in exact arithmetic); the
//     captured agreement is ~1e-13 absolute on ~4e-7 norms.
//   - parcg iterates k-deep scalar recurrences whose drift is
//     summation-order sensitive, and the old solver reported norms in
//     Gershgorin-scaled units (scale 8 on these stencils) where the new
//     kernel reports unscaled norms — the golden values below are the
//     captured values rescaled (×8). Iteration counts still agree ±1;
//     the norms agree to the recurrences' drift level (~2e-3 relative).
//
// parcg runs at tol 1e-6 because the pre-rewrite solver's recurrence
// stalls below that on poisson2d_31 (the new kernel's direct-dot
// convergence sharpening actually reaches 1e-8 on poisson2d_20 — a
// strict improvement the improvement test below pins).
var parcgGoldenCases = []struct {
	system  string
	method  string
	tol     float64
	relTol  float64 // |res - golden| / golden ceiling
	iters   int
	resNorm float64
}{
	{"poisson2d_20", "parcg-cg", 1e-8, 1e-12, 42, 1.838739896641821e-07},
	{"poisson2d_20", "parcg-pipe", 1e-8, 1e-4, 42, 1.8387407807166988e-07},
	{"poisson2d_20", "parcg", 1e-6, 1e-2, 35, 2.7333340621817858e-05},
	{"poisson2d_31", "parcg-cg", 1e-8, 1e-12, 84, 3.9945070346561846e-07},
	{"poisson2d_31", "parcg-pipe", 1e-8, 1e-4, 84, 3.9945081389853115e-07},
	{"poisson2d_31", "parcg", 1e-6, 1e-2, 59, 5.8197951601930317e-05},
}

// TestParcgGoldenTrajectories is the rewrite acceptance gate: the
// real-parallel engine kernels against the simulated-machine solvers
// they replaced, serial and pooled. Runs under -race in CI, which also
// exercises the background-reducer handoff every iteration.
func TestParcgGoldenTrajectories(t *testing.T) {
	pool := sparse.NewPool(4)
	defer pool.Close()
	for _, g := range parcgGoldenCases {
		for _, pooled := range []bool{false, true} {
			name := g.system + "/" + g.method + "/serial"
			a, b := goldenSystem(t, g.system)
			opts := []solve.Option{solve.WithTol(g.tol), solve.WithMaxIter(4000)}
			if pooled {
				name = g.system + "/" + g.method + "/pooled"
				opts = append(opts, solve.WithPool(pool))
			}
			g := g
			t.Run(name, func(t *testing.T) {
				res, err := solve.MustNew(g.method).Solve(a, b, opts...)
				if err != nil {
					t.Fatalf("%s: %v", g.method, err)
				}
				if d := res.Iterations - g.iters; d < -1 || d > 1 {
					t.Errorf("iterations = %d, golden %d (tolerance ±1)", res.Iterations, g.iters)
				}
				if !res.Converged {
					t.Errorf("converged = false, golden true")
				}
				if rel := math.Abs(res.ResidualNorm-g.resNorm) / g.resNorm; rel > g.relTol {
					t.Errorf("ResidualNorm = %.17g, golden %.17g (rel %.3g > %g)",
						res.ResidualNorm, g.resNorm, rel, g.relTol)
				}
			})
		}
	}
}

// TestParcgPooledMatchesSerial pins the repo's reduction invariant on
// the new kernels: pooled and serial runs are bitwise identical,
// because the background reducer uses the same canonical blocked-tree
// combine the pool does.
func TestParcgPooledMatchesSerial(t *testing.T) {
	pool := sparse.NewPool(4)
	defer pool.Close()
	a, b := goldenSystem(t, "poisson2d_20")
	for _, method := range []string{"parcg-cg", "parcg-pipe", "parcg"} {
		t.Run(method, func(t *testing.T) {
			tol := 1e-8
			if method == "parcg" {
				tol = 1e-6
			}
			serial, err := solve.MustNew(method).Solve(a, b,
				solve.WithTol(tol), solve.WithMaxIter(4000))
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := solve.MustNew(method).Solve(a, b,
				solve.WithTol(tol), solve.WithMaxIter(4000), solve.WithPool(pool))
			if err != nil {
				t.Fatal(err)
			}
			if serial.Iterations != pooled.Iterations || serial.ResidualNorm != pooled.ResidualNorm {
				t.Fatalf("serial (%d, %.17g) != pooled (%d, %.17g)",
					serial.Iterations, serial.ResidualNorm, pooled.Iterations, pooled.ResidualNorm)
			}
			for i := range serial.X {
				if serial.X[i] != pooled.X[i] {
					t.Fatalf("X[%d] differs between serial and pooled", i)
				}
			}
		})
	}
}

// TestParcgBlockingBitIdentical pins that WithBlocking only changes
// the schedule (anchor batches waited at issue), never the arithmetic:
// iterations, residuals, and the solution are bit-identical to the
// pipelined default.
func TestParcgBlockingBitIdentical(t *testing.T) {
	for _, system := range []string{"poisson2d_20", "poisson2d_31"} {
		t.Run(system, func(t *testing.T) {
			a, b := goldenSystem(t, system)
			def, err := solve.MustNew("parcg").Solve(a, b,
				solve.WithTol(1e-6), solve.WithMaxIter(4000))
			if err != nil {
				t.Fatal(err)
			}
			blk, err := solve.MustNew("parcg").Solve(a, b,
				solve.WithTol(1e-6), solve.WithMaxIter(4000), solve.WithBlocking(true))
			if err != nil {
				t.Fatal(err)
			}
			if def.Iterations != blk.Iterations || def.ResidualNorm != blk.ResidualNorm {
				t.Fatalf("default (%d, %.17g) != blocking (%d, %.17g)",
					def.Iterations, def.ResidualNorm, blk.Iterations, blk.ResidualNorm)
			}
			for i := range def.X {
				if def.X[i] != blk.X[i] {
					t.Fatalf("X[%d] differs between default and blocking", i)
				}
			}
			if blk.Syncs <= def.Syncs {
				t.Errorf("blocking Syncs = %d, want > default %d (one stall per anchor)",
					blk.Syncs, def.Syncs)
			}
		})
	}
}

// TestParcgSharpeningImprovement pins a deliberate behavior change of
// the rewrite: the convergence-sharpening direct dot lets parcg reach
// tol 1e-8 on poisson2d_20, where the retired solver's recurrence
// falsely stalled. (The divergence guard's true-residual restarts
// extend this: poisson2d_31, where the retired solver stalled at
// ~1e-6, now also grinds to 1e-8 in ~700 restarted iterations.)
func TestParcgSharpeningImprovement(t *testing.T) {
	a, b := goldenSystem(t, "poisson2d_20")
	res, err := solve.MustNew("parcg").Solve(a, b,
		solve.WithTol(1e-8), solve.WithMaxIter(4000))
	if err != nil {
		t.Fatalf("parcg at 1e-8 on poisson2d_20: %v", err)
	}
	if !res.Converged {
		t.Fatal("parcg at 1e-8 on poisson2d_20 did not converge")
	}
	norm := 0.0
	for _, v := range b {
		norm += v * v
	}
	if res.TrueResidualNorm > 1e-8*math.Sqrt(norm)*10 {
		t.Errorf("true residual %.3g far above the claimed tolerance", res.TrueResidualNorm)
	}
}

// TestParcgPhasesPopulated pins the phase-histogram surface: the parcg
// family publishes Result.Phases with one observation set per
// iteration, and the other methods leave it nil.
func TestParcgPhasesPopulated(t *testing.T) {
	a, b := goldenSystem(t, "poisson2d_20")
	for _, method := range []string{"parcg-cg", "parcg-pipe", "parcg"} {
		t.Run(method, func(t *testing.T) {
			res, err := solve.MustNew(method).Solve(a, b,
				solve.WithTol(1e-6), solve.WithMaxIter(4000))
			if err != nil {
				t.Fatal(err)
			}
			if res.Phases == nil {
				t.Fatal("Result.Phases is nil for a parcg method")
			}
			for p, h := range res.Phases {
				if h.Count == 0 {
					t.Errorf("phase %d has zero observations", p)
				}
				var sum uint64
				for _, c := range h.Buckets {
					sum += c
				}
				if sum != h.Count {
					t.Errorf("phase %d: bucket sum %d != count %d", p, sum, h.Count)
				}
			}
		})
	}
	res, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != nil {
		t.Error("Result.Phases non-nil for cg")
	}
}

// TestParcgMachineModeReplay pins the instrumented machine mode as a
// monitor: WithProcessors layers simulated Clocks/Machine over the
// real solve without changing its numerics, and rejects non-CSR
// operators (the replay partitions by sparsity).
func TestParcgMachineModeReplay(t *testing.T) {
	a, b := goldenSystem(t, "poisson2d_20")
	for _, method := range []string{"parcg-cg", "parcg-pipe", "parcg"} {
		t.Run(method, func(t *testing.T) {
			tol := 1e-8
			if method == "parcg" {
				tol = 1e-6
			}
			plain, err := solve.MustNew(method).Solve(a, b,
				solve.WithTol(tol), solve.WithMaxIter(4000))
			if err != nil {
				t.Fatal(err)
			}
			inst, err := solve.MustNew(method).Solve(a, b,
				solve.WithTol(tol), solve.WithMaxIter(4000), solve.WithProcessors(8))
			if err != nil {
				t.Fatal(err)
			}
			if inst.Iterations != plain.Iterations || inst.ResidualNorm != plain.ResidualNorm {
				t.Fatalf("machine mode changed the numerics: (%d, %g) vs (%d, %g)",
					inst.Iterations, inst.ResidualNorm, plain.Iterations, plain.ResidualNorm)
			}
			if len(inst.Clocks) != inst.Iterations {
				t.Errorf("Clocks has %d entries for %d iterations", len(inst.Clocks), inst.Iterations)
			}
			for i := 1; i < len(inst.Clocks); i++ {
				if inst.Clocks[i] <= inst.Clocks[i-1] {
					t.Fatalf("Clocks not strictly increasing at %d", i)
				}
			}
			if inst.Machine == nil {
				t.Error("Machine stats nil in machine mode")
			}
			if plain.Clocks != nil || plain.Machine != nil {
				t.Error("Clocks/Machine populated without machine mode")
			}
		})
	}
	t.Run("non-csr-rejected", func(t *testing.T) {
		shim := opShim{a}
		_, err := solve.MustNew("parcg-cg").Solve(shim, b,
			solve.WithTol(1e-8), solve.WithMaxIter(4000), solve.WithProcessors(4))
		if !errors.Is(err, solve.ErrUnsupportedOperator) {
			t.Fatalf("err = %v, want ErrUnsupportedOperator", err)
		}
	})
}

// opShim hides the concrete *sparse.CSR type from the adapter.
type opShim struct{ a *sparse.CSR }

func (o opShim) Dim() int                { return o.a.Dim() }
func (o opShim) MulVec(dst, x []float64) { o.a.MulVec(dst, x) }
