package solve

import (
	"context"

	"vrcg/internal/machine"
	"vrcg/sparse"
)

// Option configures a single Solve call. Options apply uniformly across
// methods; a method ignores options it has no use for, so one option
// set can drive every registered method in a sweep. Each option
// documents which methods consume it.
type Option func(*config)

// config is the resolved option set one Solve call runs under.
type config struct {
	tol     float64
	maxIter int
	x0      []float64
	pool    *sparse.Pool
	precond Preconditioner
	history bool
	ctx     context.Context
	monitor Monitor

	lookahead     int // vrcg / parcg K
	reanchorEvery int
	windowOnly    bool
	validateEvery int
	resReplace    int
	blockSize     int // sstep S
	restart       int // gmres m

	batchWorkers int // Batch/SolveMany fan-out width

	procs      int  // parcg machine-mode processor count
	procsSet   bool // WithProcessors given: opt into the machine replay
	machineCfg machine.Config
	machineSet bool
	blocking   bool
	noScaling  bool
}

func newConfig(opts []Option) *config {
	c := &config{
		lookahead: 2,
		blockSize: 4,
		procs:     8,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithTol sets the relative residual tolerance ||r|| <= tol*||b||.
// Zero selects the engine default 1e-10. All methods.
func WithTol(tol float64) Option { return func(c *config) { c.tol = tol } }

// WithMaxIter bounds the iteration count. Zero selects the engine
// default 10n. All methods.
func WithMaxIter(n int) Option { return func(c *config) { c.maxIter = n } }

// WithX0 sets the initial guess (nil means the zero vector). The
// vector is not modified. All methods.
func WithX0(x0 []float64) Option { return func(c *config) { c.x0 = x0 } }

// WithPool routes the solver's hot-path kernels — SpMV, dots, axpys —
// through the shared worker-pool execution engine (sparse.NewPool or
// sparse.DefaultPool). Nil keeps the serial kernels. Workspace-backed
// solvers rebuild their workspace when the pool changes between calls.
// Consumed by every engine-backed method, the parcg family included
// (its background reduction goroutine composes with the pool: pooled
// and serial reductions are bitwise-identical).
func WithPool(p *sparse.Pool) Option { return func(c *config) { c.pool = p } }

// WithPreconditioner supplies M^{-1} for "pcg". Unset defaults to the
// identity (plain CG arithmetic with PCG's operation count).
func WithPreconditioner(m Preconditioner) Option { return func(c *config) { c.precond = m } }

// WithHistory records per-iteration residual norms into
// Result.History (History[0] is the initial residual). All methods.
func WithHistory(record bool) Option { return func(c *config) { c.history = record } }

// WithContext makes the solve cancelable: the context is polled every
// iteration (every s-step block for "sstep", which finishes the block
// in flight before stopping) and the solve returns a partial Result
// with an error wrapping ctx.Err(). All methods.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// WithMonitor attaches a per-iteration observer; returning false from
// Observe stops the solve early, without error. Shared-memory methods.
func WithMonitor(m Monitor) Option { return func(c *config) { c.monitor = m } }

// WithBatchWorkers pins the number of concurrent worker sessions
// Batch/SolveMany fan right-hand sides out to (each worker owns one
// forked solver and workspace, and takes right-hand sides round-robin).
// Zero or negative selects the default, min(len(B), GOMAXPROCS).
// Consumed only by Batch and SolveMany.
func WithBatchWorkers(n int) Option { return func(c *config) { c.batchWorkers = n } }

// WithLookahead sets the look-ahead parameter k of the paper's
// restructured recurrences: "vrcg" (k >= 0; the §5 window depth,
// default 2) and "parcg" (k >= 1; the anchor pipeline depth).
func WithLookahead(k int) Option {
	return func(c *config) { c.lookahead = k }
}

// WithReanchorEvery sets the stabilization interval of "vrcg": every n
// iterations the scalar windows are recomputed from direct inner
// products. 0 selects the k-dependent default; negative disables
// re-anchoring (the paper's pure exact-arithmetic recurrences).
func WithReanchorEvery(n int) Option { return func(c *config) { c.reanchorEvery = n } }

// WithWindowOnlyReanchor restricts "vrcg" re-anchoring to the scalar
// windows, skipping the 2k+1 family-rebuild matvecs — the paper-pure
// cost profile of exactly one matvec per iteration.
func WithWindowOnlyReanchor(on bool) Option { return func(c *config) { c.windowOnly = on } }

// WithValidateEvery makes "vrcg" compute diagnostic-only direct inner
// products every n iterations, populating Result.Drift.
func WithValidateEvery(n int) Option { return func(c *config) { c.validateEvery = n } }

// WithResidualReplaceEvery makes "vrcg" replace the recursive residual
// with the true residual b - A x every n iterations (van der Vorst–Ye
// stabilization). 0 disables.
func WithResidualReplaceEvery(n int) Option { return func(c *config) { c.resReplace = n } }

// WithBlockSize sets the block size s of "sstep" (s >= 1; s = 1 is
// standard CG). Default 4, the practical ceiling of the monomial
// basis.
func WithBlockSize(s int) Option { return func(c *config) { c.blockSize = s } }

// WithRestart sets the restart length m of "gmres" (m >= 1): the
// Krylov basis is rebuilt from the true residual every m inner
// iterations, trading convergence speed for the m+1 basis vectors of
// memory. Zero selects the default min(30, n).
func WithRestart(m int) Option { return func(c *config) { c.restart = m } }

// WithProcessors opts the "parcg*" methods into the instrumented
// machine mode with a P-processor simulated machine
// (machine.DefaultConfig(p)): the real-parallel solve runs unchanged
// and the machine cost model is replayed over its iteration count,
// filling Result.Clocks and Result.Machine. Requires a *sparse.CSR
// operator (the replay partitions by sparsity). Ignored when
// WithMachineConfig supplies a full configuration (its P wins).
func WithProcessors(p int) Option { return func(c *config) { c.procs = p; c.procsSet = true } }

// WithMachineConfig supplies the full simulated-machine cost model
// (P, message latency alpha, per-word time beta, flop time) for the
// "parcg*" methods' instrumented machine mode — like WithProcessors,
// a monitor layered over the real-parallel solve.
func WithMachineConfig(cfg machine.Config) Option {
	return func(c *config) { c.machineCfg = cfg; c.machineSet = true }
}

// WithBlocking makes "parcg" wait for each anchor's batched reduction
// at issue instead of pipelining it behind k iterations — the s-step
// (Chronopoulos–Gear) timing semantics, the paper's Figure 1 contrast.
func WithBlocking(on bool) Option { return func(c *config) { c.blocking = on } }

// WithSpectralScaling toggles the Gershgorin spectral scaling of
// "parcg" (default on). Disabling it is the A3 ablation: unscaled Gram
// sequences span ||A||^(4k) and overflow for deep look-ahead.
func WithSpectralScaling(on bool) Option { return func(c *config) { c.noScaling = !on } }

// callback folds the context and monitor into the per-iteration
// callback the internal solvers accept, recording why the solve
// stopped so finish can distinguish cancellation from a monitor stop.
func (c *config) callback(canceled, stopped *bool) func(int, float64) bool {
	if c.ctx == nil && c.monitor == nil {
		return nil
	}
	return func(iter int, resNorm float64) bool {
		if c.ctx != nil && c.ctx.Err() != nil {
			*canceled = true
			return false
		}
		if c.monitor != nil && !c.monitor.Observe(iter, resNorm) {
			*stopped = true
			return false
		}
		return true
	}
}
