package solve_test

import (
	"errors"
	"math/rand"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// TestSequenceWarmStartShrinksIterations: stepping the same system
// twice must make step 2 strictly cheaper — it starts at the converged
// solution.
func TestSequenceWarmStartShrinksIterations(t *testing.T) {
	a := sparse.Poisson2D(16)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	q, err := solve.NewSequence("cg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	if q.Warm() {
		t.Fatal("fresh sequence claims to be warm")
	}
	// Session.Solve reuses one Result, so snapshot the per-step counts
	// immediately.
	r1, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	it1 := r1.Iterations
	if !q.Warm() {
		t.Fatal("sequence not warm after a converged step")
	}
	r2, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	it2 := r2.Iterations
	if it2 >= it1 {
		t.Fatalf("warm step took %d iterations, cold took %d — warm start not engaged", it2, it1)
	}
	steps := q.Steps()
	if len(steps) != 2 || steps[0] != it1 || steps[1] != it2 {
		t.Fatalf("Steps() = %v, want [%d %d]", steps, it1, it2)
	}

	// Reset forgets the warm start: the next step is a cold solve again.
	q.Reset()
	r3, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Iterations != it1 {
		t.Errorf("post-Reset step took %d iterations, cold baseline %d", r3.Iterations, it1)
	}
}

// TestSequencePerturbedRHS: the ICP shape — slowly drifting right-hand
// sides — must keep warm steps cheaper than the cold start.
func TestSequencePerturbedRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := sparse.Poisson2D(12)
	n := a.Dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	q, err := solve.NewSequence("cg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	r0, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	cold := r0.Iterations
	for step := 0; step < 3; step++ {
		for i := range b {
			b[i] += 1e-6 * rng.NormFloat64()
		}
		r, err := q.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Iterations >= cold {
			t.Fatalf("warm step %d took %d iterations, cold took %d", step, r.Iterations, cold)
		}
	}
}

// TestSequenceOperatorUpdates: Rescale and UpdateValues mutate the
// operator in place between steps, and solves track the new operator.
func TestSequenceOperatorUpdates(t *testing.T) {
	a := sparse.Poisson1D(40)
	n := a.Dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	q, err := solve.NewSequence("cg", a, solve.WithTol(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	x1 := append([]float64(nil), r1.X...)

	// A*2 halves the solution of the same rhs.
	if err := q.Rescale(2); err != nil {
		t.Fatal(err)
	}
	r2, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if diff := r2.X[i] - x1[i]/2; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("after Rescale(2), x[%d] = %g, want %g", i, r2.X[i], x1[i]/2)
		}
	}

	// UpdateValues back to the original values restores the original
	// solution.
	orig := append([]float64(nil), a.Values()...)
	for i := range orig {
		orig[i] /= 2
	}
	if err := q.UpdateValues(orig); err != nil {
		t.Fatal(err)
	}
	r3, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if diff := r3.X[i] - x1[i]; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("after UpdateValues, x[%d] = %g, want %g", i, r3.X[i], x1[i])
		}
	}

	// Wrong-length updates are rejected with ErrDim, not a panic.
	if err := q.UpdateValues(orig[:1]); !errors.Is(err, solve.ErrDim) {
		t.Errorf("UpdateValues(short) = %v, want ErrDim", err)
	}
}

// TestSequenceRejectsNonMutableOperator: operators without in-place
// value updates get ErrUnsupportedOperator from Rescale/UpdateValues.
func TestSequenceRejectsNonMutableOperator(t *testing.T) {
	q, err := solve.NewSequence("cg", opaqueSPD{n: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Rescale(2); !errors.Is(err, solve.ErrUnsupportedOperator) {
		t.Errorf("Rescale on matrix-free operator = %v, want ErrUnsupportedOperator", err)
	}
	if err := q.UpdateValues([]float64{1}); !errors.Is(err, solve.ErrUnsupportedOperator) {
		t.Errorf("UpdateValues on matrix-free operator = %v, want ErrUnsupportedOperator", err)
	}
}

type opaqueSPD struct{ n int }

func (o opaqueSPD) Dim() int { return o.n }
func (o opaqueSPD) MulVec(dst, x []float64) {
	for i := range dst {
		dst[i] = 2 * x[i]
	}
}

// TestSequenceLeastSquares: a rectangular lsqr sequence — the ICP shape
// proper — warm starts across operator value updates.
func TestSequenceLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows, cols := 60, 6
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, data)
	xTrue := make([]float64, cols)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, rows)
	a.MulVec(b, xTrue)

	q, err := solve.NewSequence("lsqr", a, solve.WithTol(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.X) != cols {
		t.Fatalf("solution length %d, want %d", len(r1.X), cols)
	}
	coldIters := r1.Iterations

	// Perturb the operator values slightly (same structure), as an ICP
	// outer iteration would; the warm step must beat the cold one.
	vals := append([]float64(nil), a.Values()...)
	for i := range vals {
		vals[i] *= 1 + 1e-8*rng.NormFloat64()
	}
	if err := q.UpdateValues(vals); err != nil {
		t.Fatal(err)
	}
	r2, err := q.Step(b)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Iterations >= coldIters {
		t.Fatalf("warm rectangular step took %d iterations, cold took %d", r2.Iterations, coldIters)
	}
}
