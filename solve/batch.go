package solve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vrcg/sparse"
)

// Batch solves A x = b_i for every right-hand side in B against the
// session's prepared operator, fanning the solves out across worker
// goroutines: each worker forks the session once (its own solver and
// reusable workspace) and takes right-hand sides round-robin, so a
// batch of any size costs a fixed number of workspaces. Results come
// back aggregated, in input order, with each X independently owned
// (cloned out of the per-worker workspace).
//
// Per-RHS failures do not stop the batch: the returned error joins
// every failure wrapped as an *RHSError carrying its index, and
// errors.Is still matches the usual sentinels (ErrNotConverged in
// particular); errors.As against *RHSError recovers which right-hand
// side failed.
// When the session was prepared WithContext, cancellation stops every
// worker at its next iteration; right-hand sides never started report
// the context error.
//
// The worker count defaults to min(len(B), GOMAXPROCS) and can be
// pinned with WithBatchWorkers. Extra options apply to every solve in
// the batch. Option values holding state are shared across workers:
// in particular a WithPreconditioner instance whose Apply mutates
// internal scratch (precond.SSOR, precond.IC0) must be wrapped behind
// a lock or built per worker — see the precond package doc.
//
// A pool given WithPool serializes its kernels behind one lock, so
// sharing it across concurrent workers would serialize the batch's hot
// paths. Batch therefore re-slices the engine: with W > 1 workers, each
// fork gets its own pool of Workers/W workers (at least one, i.e.
// serial kernels), closed when the batch completes — coarse-grained
// parallelism across right-hand sides takes precedence over
// fine-grained parallelism within one solve.
func Batch(s *Session, B [][]float64, extra ...Option) ([]Result, error) {
	if len(B) == 0 {
		return nil, nil
	}
	baseOpts := append(append([]Option(nil), s.opts...), extra...)
	cfg := newConfig(baseOpts)

	// Shared-operator batches of a blockable method route through its
	// block twin: one solve iterates a whole panel of right-hand sides,
	// amortizing every SpMV row pass and fusing the per-column inner
	// products into single block reductions. The route is gated on a
	// multi-worker pool because that is the regime the block method is
	// for: a block iteration costs a fixed number of kernel dispatches
	// (reduction barriers) regardless of width, where independent solves
	// pay O(width) of them per iteration. On serial kernels the trade
	// reverses — the block's O(width²·n) Gram and update flops lose to
	// warm independent solves at every width and size measured
	// (BenchmarkBatchBlockVsIndependent: ~1.6-2.2x slower at widths 2-8,
	// n 256-9216), so batches without a pooled backend stay on the
	// generic fan-out. History recording and monitors also stay on the
	// independent path — their per-RHS semantics have no block
	// equivalent.
	if tw, ok := blockTwin[s.method]; ok && len(B) >= blockRouteThreshold &&
		cfg.pool != nil && cfg.pool.Workers() >= blockRoutePoolWorkers &&
		!cfg.history && cfg.monitor == nil {
		if results, err, handled := blockBatch(s, tw, B, baseOpts, cfg); handled {
			return results, err
		}
	}

	nw := cfg.batchWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(B) {
		nw = len(B)
	}

	results := make([]Result, len(B))
	errs := make([]error, len(B))

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerOpts := baseOpts
			if cfg.pool != nil && nw > 1 {
				pw := cfg.pool.Workers() / nw
				if pw < 1 {
					pw = 1
				}
				wp := sparse.NewPoolMinChunk(pw, cfg.pool.MinChunk())
				defer wp.Close()
				workerOpts = append(append([]Option(nil), baseOpts...), WithPool(wp))
			}
			sess, err := NewSession(s.method, s.op, workerOpts...)
			if err != nil {
				for i := w; i < len(B); i += nw {
					errs[i] = err
				}
				return
			}
			for i := w; i < len(B); i += nw {
				if cfg.ctx != nil && cfg.ctx.Err() != nil {
					errs[i] = fmt.Errorf("solve: batch rhs not started: %w", cfg.ctx.Err())
					continue
				}
				res, err := sess.Solve(B[i])
				if err != nil {
					errs[i] = err
				}
				if res != nil {
					results[i] = *res
					// X (and History) alias the fork's workspace, which the
					// next round-robin solve overwrites; copy them out.
					results[i].X = append([]float64(nil), res.X...)
					if res.History != nil {
						results[i].History = append([]float64(nil), res.History...)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, &RHSError{Index: i, Err: err})
		}
	}
	return results, errors.Join(joined...)
}

// blockBatch routes a shared-operator batch through the block twin of
// the session's method: the batch is cut into panels of at most
// blockPanelWidth columns, each panel solved by one block solve, and
// panels fan out across the batch workers exactly like the generic
// path (round-robin, per-worker forked pools). The third return
// reports whether the route handled the batch at all — false sends the
// caller to the generic per-RHS fan-out.
//
// A panel whose block iteration fails structurally (Gram breakdown,
// indefinite operator) degrades to independent single-RHS solves of
// the session's original method, so the block route never turns a
// solvable batch into an error the generic path would not produce.
func blockBatch(s *Session, twin string, B [][]float64, baseOpts []Option, cfg *config) ([]Result, error, bool) {
	if sol, err := New(twin); err != nil {
		return nil, nil, false
	} else if _, ok := sol.(*blockSolver); !ok {
		return nil, nil, false
	}
	if err := cfg.preflight(twin); err != nil {
		return nil, nil, false
	}

	npanels := (len(B) + blockPanelWidth - 1) / blockPanelWidth
	nw := cfg.batchWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > npanels {
		nw = npanels
	}

	results := make([]Result, len(B))
	errs := make([]error, len(B))

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcfg := cfg
			workerOpts := baseOpts
			if cfg.pool != nil && nw > 1 {
				pw := cfg.pool.Workers() / nw
				if pw < 1 {
					pw = 1
				}
				wp := sparse.NewPoolMinChunk(pw, cfg.pool.MinChunk())
				defer wp.Close()
				workerOpts = append(append([]Option(nil), baseOpts...), WithPool(wp))
				wcfg = newConfig(workerOpts)
			}
			sol, err := New(twin)
			if err != nil {
				for pi := w; pi < npanels; pi += nw {
					lo, hi := panelBounds(pi, len(B))
					for i := lo; i < hi; i++ {
						errs[i] = err
					}
				}
				return
			}
			bs := sol.(*blockSolver)
			var fallback *Session
			for pi := w; pi < npanels; pi += nw {
				lo, hi := panelBounds(pi, len(B))
				if wcfg.ctx != nil && wcfg.ctx.Err() != nil {
					for i := lo; i < hi; i++ {
						errs[i] = fmt.Errorf("solve: batch rhs not started: %w", wcfg.ctx.Err())
					}
					continue
				}
				if err := bs.solvePanel(s.op, B[lo:hi], wcfg, results[lo:hi], errs[lo:hi]); err == nil {
					continue
				}
				// The block iteration failed before producing per-column
				// outcomes; solve this panel's columns independently with
				// the session's own method instead.
				if fallback == nil {
					fs, err := NewSession(s.method, s.op, workerOpts...)
					if err != nil {
						for i := lo; i < hi; i++ {
							errs[i] = err
						}
						continue
					}
					fallback = fs
				}
				for i := lo; i < hi; i++ {
					res, err := fallback.Solve(B[i])
					if err != nil {
						errs[i] = err
					}
					if res != nil {
						results[i] = *res
						results[i].X = append([]float64(nil), res.X...)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, &RHSError{Index: i, Err: err})
		}
	}
	return results, errors.Join(joined...), true
}

// panelBounds returns the half-open column range of panel pi in a
// batch of n right-hand sides.
func panelBounds(pi, n int) (lo, hi int) {
	lo = pi * blockPanelWidth
	hi = lo + blockPanelWidth
	if hi > n {
		hi = n
	}
	return lo, hi
}

// RHSError tags one right-hand side's failure with its index in B, so
// batch callers (the server's /v1/solve/batch in particular) can
// attribute failures without parsing messages. It wraps the underlying
// solver error for errors.Is/As.
type RHSError struct {
	// Index is the position of the failed right-hand side in B.
	Index int
	// Err is the underlying solve error.
	Err error
}

// Error implements error.
func (e *RHSError) Error() string { return fmt.Sprintf("rhs %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying solver error to errors.Is/As.
func (e *RHSError) Unwrap() error { return e.Err }

// SolveMany is Batch as a method: it solves every right-hand side in B
// against the session's operator and returns the aggregated results in
// input order.
func (s *Session) SolveMany(B [][]float64, extra ...Option) ([]Result, error) {
	return Batch(s, B, extra...)
}
