package solve_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// Property-based sweep: every registry method on randomized systems of
// the shapes it declares support for, under every preconditioner name.
// The properties are the ones every solver owes regardless of method:
//
//   - no panic and no unclassified error;
//   - Iterations never exceeds the iteration budget;
//   - a converged result's TRUE residual actually meets the tolerance
//     (with a drift allowance for the recurrence-based methods);
//   - a warm Session re-solve is bit-identical to its own cold solve —
//     workspace reuse is state, not memory.

// randSPD builds a random symmetric diagonally dominant (hence SPD)
// sparse system with a manufactured solution.
func randSPD(rng *rand.Rand, n int) (*sparse.CSR, []float64) {
	coo := sparse.NewCOO(n)
	off := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 4, 9} {
			j := i + d
			if j >= n {
				continue
			}
			if rng.Float64() < 0.3 {
				continue // irregular sparsity, not a fixed stencil
			}
			v := rng.NormFloat64()
			coo.AddSym(i, j, v)
			off[i] += math.Abs(v)
			off[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, off[i]+0.5+rng.Float64())
	}
	a := coo.ToCSR()
	xref := make([]float64, n)
	for i := range xref {
		xref[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xref)
	return a, b
}

// randRect builds a random full-column-rank rows×cols least-squares
// system (rows > cols).
func randRect(rng *rand.Rand, rows, cols int) (*sparse.Rect, []float64) {
	rowPtr := make([]int, 1, rows+1)
	var colIdx []int
	var vals []float64
	for i := 0; i < rows; i++ {
		seen := map[int]bool{}
		// Guarantee coverage of every column across the first rows.
		if i < cols {
			seen[i] = true
			colIdx = append(colIdx, i)
			vals = append(vals, 2+rng.Float64())
		}
		for k := 0; k < 3; k++ {
			j := rng.Intn(cols)
			if seen[j] {
				continue
			}
			seen[j] = true
			colIdx = append(colIdx, j)
			vals = append(vals, rng.NormFloat64())
		}
		rowPtr = append(rowPtr, len(colIdx))
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return sparse.NewRect(rows, cols, rowPtr, colIdx, vals), b
}

// preconditioner builds the named preconditioner for a, nil for "none".
func preconditioner(t *testing.T, name string, a *sparse.CSR) solve.Preconditioner {
	t.Helper()
	var (
		p   solve.Preconditioner
		err error
	)
	switch name {
	case "none":
		return nil
	case "jacobi":
		p, err = precond.NewJacobi(a)
	case "ssor":
		p, err = precond.NewSSOR(a, 1.2)
	case "ic0":
		p, err = precond.NewIC0(a)
	default:
		t.Fatalf("unknown preconditioner %q", name)
	}
	if err != nil {
		t.Fatalf("precond %s: %v", name, err)
	}
	return p
}

// knownSentinel reports whether an error is one of the classified
// outcomes a solve may legitimately end with.
func knownSentinel(err error) bool {
	return errors.Is(err, solve.ErrNotConverged) ||
		errors.Is(err, solve.ErrBreakdown) ||
		errors.Is(err, solve.ErrIndefinite)
}

// driftSlack is the per-method allowance multiplied into the
// true-residual acceptance threshold: the recurrence-tracked methods
// certify convergence through scalar recurrences that drift from the
// true residual in finite precision.
func driftSlack(method string) float64 {
	switch method {
	case "vrcg", "parcg", "sstep":
		return 1e3
	case "pipecg", "gropp", "parcg-pipe", "bicgstab":
		return 50
	default:
		return 10
	}
}

func TestPropertyAllMethodsRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preconds := []string{"none", "jacobi", "ssor", "ic0"}
	const (
		tol     = 1e-7
		maxIter = 3000
	)
	for _, method := range solve.Methods() {
		caps := solve.MethodCaps(method)
		for _, pname := range preconds {
			for trial := 0; trial < 2; trial++ {
				n := 40 + rng.Intn(80)
				var (
					a  solve.Operator
					b  []float64
					mp solve.Preconditioner
				)
				switch {
				case caps.Rectangular:
					a, b = randRect(rng, n+n/2, n)
				case caps.Nonsymmetric:
					a = nonsymmetricCSR(rng, n)
					bb := make([]float64, n)
					for i := range bb {
						bb[i] = rng.NormFloat64()
					}
					b = bb
				default:
					var csr *sparse.CSR
					csr, b = randSPD(rng, n)
					a = csr
					mp = preconditioner(t, pname, csr)
				}
				name := method + "/" + pname
				t.Run(name, func(t *testing.T) {
					opts := []solve.Option{solve.WithTol(tol), solve.WithMaxIter(maxIter)}
					if mp != nil {
						opts = append(opts, solve.WithPreconditioner(mp))
					}
					res, err := solve.MustNew(method).Solve(a, b, opts...)
					if err != nil && !knownSentinel(err) {
						t.Fatalf("unclassified error: %v", err)
					}
					if res == nil {
						t.Fatal("nil result with a classified error")
					}
					if res.Iterations > maxIter {
						t.Errorf("Iterations = %d > MaxIter %d", res.Iterations, maxIter)
					}
					if res.Converged && !caps.Rectangular {
						bn := 0.0
						for _, v := range b {
							bn += v * v
						}
						bn = math.Sqrt(bn)
						if limit := tol * bn * driftSlack(method); res.TrueResidualNorm > limit {
							t.Errorf("converged but true residual %.3g > %.3g (tol*||b||*slack)",
								res.TrueResidualNorm, limit)
						}
					}
					if res.Converged && res.X != nil {
						for i, v := range res.X {
							if math.IsNaN(v) || math.IsInf(v, 0) {
								t.Fatalf("X[%d] = %v in a converged solution", i, v)
							}
						}
					}
				})
			}
		}
	}
}

// TestPropertyWarmSessionBitIdentical pins workspace-reuse determinism
// across the whole registry: on one random system per method, a cold
// Solve, a fresh Session's first solve, and the same Session's warm
// re-solve must agree bit-for-bit.
func TestPropertyWarmSessionBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const maxIter = 3000
	for _, method := range solve.Methods() {
		caps := solve.MethodCaps(method)
		t.Run(method, func(t *testing.T) {
			n := 60 + rng.Intn(40)
			var (
				a solve.Operator
				b []float64
			)
			switch {
			case caps.Rectangular:
				a, b = randRect(rng, n+n/2, n)
			case caps.Nonsymmetric:
				a = nonsymmetricCSR(rng, n)
				bb := make([]float64, n)
				for i := range bb {
					bb[i] = rng.NormFloat64()
				}
				b = bb
			default:
				a, b = randSPD(rng, n)
			}
			// A tolerance every method reaches on these well-conditioned
			// systems, loose enough for the drift-tracked recurrences.
			opts := []solve.Option{solve.WithTol(1e-6), solve.WithMaxIter(maxIter)}
			cold, err := solve.MustNew(method).Solve(a, b, opts...)
			if err != nil && !knownSentinel(err) {
				t.Fatalf("cold solve: %v", err)
			}
			sess, err := solve.NewSession(method, a, opts...)
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			first, err := sess.Solve(b)
			if err != nil && !knownSentinel(err) {
				t.Fatalf("session first solve: %v", err)
			}
			firstX := append([]float64(nil), first.X...)
			firstIters, firstRes := first.Iterations, first.ResidualNorm
			warm, err := sess.Solve(b)
			if err != nil && !knownSentinel(err) {
				t.Fatalf("session warm solve: %v", err)
			}
			if cold.Iterations != firstIters || cold.ResidualNorm != firstRes {
				t.Errorf("cold (%d, %.17g) != session first (%d, %.17g)",
					cold.Iterations, cold.ResidualNorm, firstIters, firstRes)
			}
			if warm.Iterations != firstIters || warm.ResidualNorm != firstRes {
				t.Errorf("warm (%d, %.17g) != session first (%d, %.17g)",
					warm.Iterations, warm.ResidualNorm, firstIters, firstRes)
			}
			for i := range firstX {
				if warm.X[i] != firstX[i] {
					t.Fatalf("warm X[%d] differs from first session solve", i)
				}
				if cold.X[i] != firstX[i] {
					t.Fatalf("cold X[%d] differs from session solve", i)
				}
			}
		})
	}
}
