package solve

import (
	"vrcg/internal/sstep"
)

// sstepSolver adapts Chronopoulos–Gear s-step CG (internal/sstep).
// WithBlockSize sets s; the method amortizes its reductions across a
// block but does not hide them — the contrast the paper's pipelining
// provides.
type sstepSolver struct{}

func (sstepSolver) Name() string { return "sstep" }

func (sstepSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight("sstep"); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	o := sstep.Options{
		S:             c.blockSize,
		MaxIter:       c.maxIter,
		Tol:           c.tol,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      c.callback(&canceled, &stopped),
		Pool:          c.pool,
	}
	sres, err := sstep.Solve(a, b, o)
	if sres == nil {
		return nil, err
	}
	res := &Result{
		Method:           "sstep",
		X:                sres.X,
		Iterations:       sres.Iterations,
		Converged:        sres.Converged,
		ResidualNorm:     sres.ResidualNorm,
		TrueResidualNorm: sres.TrueResidualNorm,
		History:          sres.History,
		Stats:            sres.Stats,
		Blocks:           sres.Blocks,
		// One batched Gram reduction plus one residual resync per
		// block, after the start-up (r,r).
		Syncs: 2*sres.Blocks + 1,
	}
	return finish(c, res, err, canceled, stopped)
}

func init() {
	Register("sstep", "Chronopoulos-Gear s-step CG (WithBlockSize s, batched reductions)",
		func() Solver { return sstepSolver{} })
}
