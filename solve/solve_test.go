package solve

import (
	"context"
	"errors"
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func testSystem(m int, seed uint64) (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(m)
	x := vec.New(a.Dim())
	vec.Random(x, seed)
	b := vec.New(a.Dim())
	a.MulVec(b, x)
	return a, b
}

func TestRequiredMethodsRegistered(t *testing.T) {
	for _, name := range []string{"cg", "pcg", "vrcg", "pipecg", "sstep", "parcg"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
		if Summary(name) == "" {
			t.Errorf("method %q registered without a summary", name)
		}
	}
}

func TestMethodsSortedAndUsable(t *testing.T) {
	names := Methods()
	if len(names) < 6 {
		t.Fatalf("Methods() = %v, want at least the six core methods", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Methods() not sorted: %v", names)
		}
	}
	a, b := testSystem(8, 3)
	for _, name := range names {
		res, err := MustNew(name).Solve(a, b, WithTol(1e-8))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.Converged || res.Method != name {
			t.Errorf("%s: converged=%v method=%q", name, res.Converged, res.Method)
		}
		if res.TrueResidualNorm > 1e-6*vec.Norm2(b) {
			t.Errorf("%s: true residual %g too large", name, res.TrueResidualNorm)
		}
	}
}

func TestNewUnknownMethod(t *testing.T) {
	if _, err := New("no-such-method"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("New(unknown) = %v, want ErrUnknownMethod", err)
	}
}

func TestNotConvergedSentinel(t *testing.T) {
	a, b := testSystem(16, 5)
	res, err := MustNew("cg").Solve(a, b, WithTol(1e-12), WithMaxIter(3))
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if res == nil || res.Iterations != 3 || res.Converged {
		t.Fatalf("partial result = %+v, want 3 un-converged iterations", res)
	}
}

func TestBadOptionSentinel(t *testing.T) {
	a, b := testSystem(8, 7)
	if _, err := MustNew("vrcg").Solve(a, b, WithLookahead(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("vrcg k=-1: err = %v, want ErrBadOption", err)
	}
	if _, err := MustNew("sstep").Solve(a, b, WithBlockSize(0)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("sstep s=0: err = %v, want ErrBadOption", err)
	}
	if _, err := MustNew("parcg").Solve(a, b, WithLookahead(0)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("parcg k=0: err = %v, want ErrBadOption", err)
	}
}

func TestUnsupportedOperatorSentinel(t *testing.T) {
	n := 16
	d := sparse.NewDense(n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 2)
	}
	b := vec.New(n)
	vec.Fill(b, 1)
	// The real-parallel parcg kernels take any Operator; only the
	// instrumented machine mode needs the CSR sparsity partition.
	if _, err := MustNew("parcg").Solve(d, b); err != nil {
		t.Fatalf("parcg on Dense: %v, want success", err)
	}
	if _, err := MustNew("parcg").Solve(d, b, WithProcessors(4)); !errors.Is(err, ErrUnsupportedOperator) {
		t.Fatalf("parcg machine mode on Dense: err = %v, want ErrUnsupportedOperator", err)
	}
}

func TestMonitorStopsWithoutError(t *testing.T) {
	a, b := testSystem(16, 9)
	stopAt := 5
	res, err := MustNew("cg").Solve(a, b,
		WithMonitor(MonitorFunc(func(iter int, _ float64) bool { return iter < stopAt })))
	if err != nil {
		t.Fatalf("monitor stop returned error: %v", err)
	}
	if res.Iterations != stopAt {
		t.Fatalf("iterations = %d, want %d", res.Iterations, stopAt)
	}
}

func TestContextCancellation(t *testing.T) {
	a, b := testSystem(16, 11)
	ctx, cancel := context.WithCancel(context.Background())
	res, err := MustNew("cg").Solve(a, b,
		WithContext(ctx),
		WithMonitor(MonitorFunc(func(iter int, _ float64) bool {
			if iter == 3 {
				cancel()
			}
			return true
		})))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iterations < 3 || res.Iterations > 4 {
		t.Fatalf("result = %+v, want cancellation right after iteration 3", res)
	}

	cancel2ed, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := MustNew("vrcg").Solve(a, b, WithContext(cancel2ed)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
	}
}

func TestHistoryAndDrift(t *testing.T) {
	a, b := testSystem(12, 13)
	res, err := MustNew("vrcg").Solve(a, b, WithLookahead(2), WithHistory(true), WithValidateEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations+1 {
		t.Errorf("history length %d for %d iterations", len(res.History), res.Iterations)
	}
	if res.Drift == nil || res.Drift.Checks == 0 {
		t.Errorf("drift diagnostics missing: %+v", res.Drift)
	}
}

func TestDistributedResultFields(t *testing.T) {
	a, b := testSystem(12, 17)
	res, err := MustNew("parcg").Solve(a, b, WithLookahead(2), WithProcessors(4), WithTol(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clocks) != res.Iterations {
		t.Errorf("clock trajectory length %d for %d iterations", len(res.Clocks), res.Iterations)
	}
	if res.Machine == nil || res.Machine.Messages == 0 {
		t.Errorf("machine stats missing: %+v", res.Machine)
	}
	if t1 := res.PerIterTime(); t1 <= 0 {
		t.Errorf("PerIterTime = %g", t1)
	}
	if tt := res.TotalTime(); tt <= 0 {
		t.Errorf("TotalTime = %g", tt)
	}
}

func TestWorkspaceReuseAcrossSolves(t *testing.T) {
	a, b := testSystem(16, 19)
	s := MustNew("cg")
	first, err := s.Solve(a, b, WithTol(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	want := first.Iterations
	x := vec.Clone(first.X) // Result.X aliases the workspace
	for rep := 0; rep < 3; rep++ {
		res, err := s.Solve(a, b, WithTol(1e-8))
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != want {
			t.Fatalf("rep %d: %d iterations, want %d", rep, res.Iterations, want)
		}
		if !vec.Equal(res.X, x) {
			t.Fatalf("rep %d: workspace reuse changed the solution", rep)
		}
	}
}
