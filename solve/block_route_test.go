package solve_test

import (
	"errors"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// blockRoutePool returns a worker pool wide enough to satisfy the
// block route's gate: the route only engages where reductions cost a
// per-dispatch barrier that blocking can amortize.
func blockRoutePool(t *testing.T) *sparse.Pool {
	t.Helper()
	p := sparse.NewPool(2)
	t.Cleanup(p.Close)
	return p
}

// TestBatchRoutesThroughBlockTwin: a shared-operator cg batch at or
// above the routing threshold, on a multi-worker pool, comes back
// solved by blockcg (visible in Result.Method), every column accurate
// against an independent solve.
func TestBatchRoutesThroughBlockTwin(t *testing.T) {
	a := sparse.Poisson2D(12)
	B := rhsSet(a.Dim(), 9) // two panels: 8 + 1
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-11), solve.WithPool(blockRoutePool(t)))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.SolveMany(B)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, res := range results {
		if res.Method != "blockcg" {
			t.Fatalf("rhs %d solved by %q, want the blockcg route", i, res.Method)
		}
		if !res.Converged {
			t.Fatalf("rhs %d not converged", i)
		}
		lone, err := solve.MustNew("cg").Solve(a, B[i], solve.WithTol(1e-11))
		if err != nil {
			t.Fatalf("lone rhs %d: %v", i, err)
		}
		if d := maxAbsDiff(res.X, lone.X); d > 1e-9 {
			t.Fatalf("rhs %d: block route differs from lone solve by %g", i, d)
		}
	}
}

// TestBatchBlockRouteSkips: the block route stays out of the way below
// the width threshold, whenever per-RHS semantics are requested
// (history recording has no block equivalent), and on serial kernels,
// where the measured block trade is a loss.
func TestBatchBlockRouteSkips(t *testing.T) {
	a := sparse.Poisson2D(12)
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-11), solve.WithPool(blockRoutePool(t)))
	if err != nil {
		t.Fatal(err)
	}

	narrow, err := sess.SolveMany(rhsSet(a.Dim(), 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range narrow {
		if res.Method != "cg" {
			t.Fatalf("narrow batch rhs %d solved by %q, want cg", i, res.Method)
		}
	}

	hist, err := sess.SolveMany(rhsSet(a.Dim(), 6), solve.WithHistory(true))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range hist {
		if res.Method != "cg" {
			t.Fatalf("history batch rhs %d solved by %q, want cg", i, res.Method)
		}
		if len(res.History) == 0 {
			t.Fatalf("history batch rhs %d has no history", i)
		}
	}

	serial, err := solve.NewSession("cg", a, solve.WithTol(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := serial.SolveMany(rhsSet(a.Dim(), 8))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range wide {
		if res.Method != "cg" {
			t.Fatalf("serial batch rhs %d solved by %q, want cg (no pool, no barriers to save)", i, res.Method)
		}
	}
}

// TestBatchBlockRouteFallback: when the block iteration itself fails —
// an indefinite operator trips the curvature check — the panel
// degrades to independent solves of the session's own method, so the
// batch reports the same per-RHS errors the generic path would.
func TestBatchBlockRouteFallback(t *testing.T) {
	a := sparse.TridiagToeplitz(40, -4, 1) // negative definite
	B := rhsSet(a.Dim(), 5)
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-11), solve.WithPool(blockRoutePool(t)))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.SolveMany(B)
	if !errors.Is(err, solve.ErrIndefinite) {
		t.Fatalf("err = %v, want ErrIndefinite", err)
	}
	var rhsErr *solve.RHSError
	if !errors.As(err, &rhsErr) {
		t.Fatalf("err = %v, want RHSError attribution", err)
	}
	for i, res := range results {
		if res.Method != "cg" {
			t.Fatalf("fallback rhs %d solved by %q, want cg (independent fallback)", i, res.Method)
		}
	}
}

// TestBatchBlockRouteDuplicateRHS: duplicated right-hand sides make the
// block Gram rank-deficient from the first iteration; the route must
// still converge every column end to end.
func TestBatchBlockRouteDuplicateRHS(t *testing.T) {
	a := sparse.Poisson2D(12)
	b := rhsSet(a.Dim(), 1)[0]
	B := [][]float64{b, b, b, b, b}
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-11), solve.WithPool(blockRoutePool(t)))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.SolveMany(B)
	if err != nil {
		t.Fatalf("duplicate-RHS batch: %v", err)
	}
	for i, res := range results {
		if !res.Converged {
			t.Fatalf("rhs %d not converged", i)
		}
		if d := maxAbsDiff(res.X, results[0].X); d != 0 {
			t.Fatalf("duplicate rhs %d differs from rhs 0 by %g", i, d)
		}
	}
}
