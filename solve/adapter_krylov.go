package solve

import (
	"vrcg/internal/krylov"
	"vrcg/internal/precond"
	"vrcg/internal/vec"
)

// krylovSolver adapts the classic iterations of internal/krylov. The
// workspace-backed methods (cg, pcg) keep a krylov.Workspace across
// Solve calls, rebuilt only when the system order or pool changes, so
// steady-state repeated solves allocate nothing; they set fast (a
// by-value run used by both Solve and the Session zero-allocation
// path), the rest set run.
type krylovSolver struct {
	name string
	run  func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (*krylov.Result, error)
	fast func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (krylov.Result, error)
	ws   *krylov.Workspace
}

func (s *krylovSolver) Name() string { return s.name }

func (s *krylovSolver) workspace(n int, pool *vec.Pool) *krylov.Workspace {
	if s.ws == nil || s.ws.Dim() != n || s.ws.Pool() != pool {
		s.ws = krylov.NewWorkspace(n, pool)
	}
	return s.ws
}

func (s *krylovSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight(s.name); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	o := krylov.Options{
		Tol:           c.tol,
		MaxIter:       c.maxIter,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      c.callback(&canceled, &stopped),
	}
	var kres *krylov.Result
	var err error
	if s.fast != nil {
		r, ferr := s.fast(s, a, b, c, o)
		kres, err = &r, ferr
	} else {
		kres, err = s.run(s, a, b, c, o)
		if kres == nil {
			return nil, err
		}
	}
	res := &Result{}
	s.fill(res, kres)
	return finish(c, res, err, canceled, stopped)
}

// fill maps an internal result onto the canonical Result in place (the
// shape shared by Solve and the Session fast path).
func (s *krylovSolver) fill(res *Result, kres *krylov.Result) {
	*res = Result{
		Method:           s.name,
		X:                kres.X,
		Iterations:       kres.Iterations,
		Converged:        kres.Converged,
		ResidualNorm:     kres.ResidualNorm,
		TrueResidualNorm: kres.TrueResidualNorm,
		History:          kres.History,
		Stats:            kres.Stats,
		// The classic iterations block on every inner product: each
		// one is a completed global reduction on the machine model.
		Syncs: kres.Stats.InnerProducts,
	}
}

// solveInto is the Session zero-allocation fast path for the
// workspace-backed methods: a pre-resolved config, a prebuilt callback,
// and a caller-owned Result, so a warm repeated solve allocates
// nothing.
func (s *krylovSolver) solveInto(res *Result, a Operator, b []float64, c *config, cb func(int, float64) bool) (bool, error) {
	if s.fast == nil {
		return false, nil
	}
	o := krylov.Options{
		Tol:           c.tol,
		MaxIter:       c.maxIter,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      cb,
	}
	kres, err := s.fast(s, a, b, c, o)
	s.fill(res, &kres)
	return true, err
}

// preconditioner resolves the pcg preconditioner: the caller's, or the
// identity (PCG arithmetic with M = I). The resolved default is cached
// on the config so a Session's repeated pcg solves do not rebuild it.
func (c *config) preconditioner(n int) precond.Preconditioner {
	if c.precond == nil {
		c.precond = precond.NewIdentity(n)
	}
	return c.precond
}

func init() {
	Register("cg", "standard Hestenes-Stiefel CG (paper §2), workspace-backed",
		func() Solver {
			return &krylovSolver{name: "cg", fast: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (krylov.Result, error) {
				return s.workspace(a.Dim(), c.pool).CG(a, b, o)
			}}
		})
	Register("cgfused", "standard CG with the fused-kernel update path",
		func() Solver {
			return &krylovSolver{name: "cgfused", run: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (*krylov.Result, error) {
				return krylov.CGFused(a, b, c.pool, o)
			}}
		})
	Register("pcg", "preconditioned CG (WithPreconditioner; identity default), workspace-backed",
		func() Solver {
			return &krylovSolver{name: "pcg", fast: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (krylov.Result, error) {
				return s.workspace(a.Dim(), c.pool).PCG(a, c.preconditioner(a.Dim()), b, o)
			}}
		})
	Register("cr", "conjugate residuals (minimizes ||b - A x||)",
		func() Solver {
			return &krylovSolver{name: "cr", run: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (*krylov.Result, error) {
				return krylov.CR(a, b, o)
			}}
		})
	Register("sd", "steepest descent with exact line search (baseline)",
		func() Solver {
			return &krylovSolver{name: "sd", run: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (*krylov.Result, error) {
				return krylov.SteepestDescent(a, b, o)
			}}
		})
	Register("minres", "MINRES (symmetric indefinite baseline)",
		func() Solver {
			return &krylovSolver{name: "minres", run: func(s *krylovSolver, a Operator, b []float64, c *config, o krylov.Options) (*krylov.Result, error) {
				return krylov.MINRES(a, b, o)
			}}
		})
}
