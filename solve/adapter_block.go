package solve

import (
	"fmt"

	"vrcg/internal/block"
	"vrcg/internal/engine"
)

// blockSolver is the generic engine adapter specialized for the block
// multi-RHS kernels: besides the ordinary single-RHS Solver surface it
// offers solvePanel, the entry point Batch routes shared-operator
// multi-RHS workloads through — one solve iterating every panel column
// simultaneously, amortizing each SpMV row pass and fusing the s×s
// inner products into single block reductions.
type blockSolver struct {
	engineSolver
}

func (s *blockSolver) bk() *block.Kernel { return s.engineSolver.kernel.(*block.Kernel) }

// solvePanel solves A x_j = B[j] for every column of the panel in one
// block solve, filling results[j] and errs[j] per column. A returned
// error means the block iteration itself failed (breakdown, indefinite
// operator, validation) before producing per-column outcomes — the
// caller decides whether to fall back to independent solves.
//
// Per-column semantics: X is cloned out of the kernel workspace;
// Iterations/Converged/ResidualNorm/TrueResidualNorm are per column.
// Stats and Syncs are the panel aggregate divided evenly across the
// columns — block work is genuinely shared, so no exact per-column
// attribution exists.
func (s *blockSolver) solvePanel(a Operator, B [][]float64, c *config, results []Result, errs []error) error {
	if len(B) == 0 {
		return nil
	}
	kn := s.bk()
	var canceled, stopped bool
	cb := c.callback(&canceled, &stopped)
	kn.SetExtraRHS(B[1:])
	if err := s.solve(a, B[0], c, cb); err != nil {
		return err
	}
	er := &s.er
	nc := len(B)
	stats := er.Stats
	stats.MatVecs /= nc
	stats.InnerProducts /= nc
	stats.VectorUpdates /= nc
	stats.PrecondSolves /= nc
	stats.Flops /= int64(nc)
	syncs := s.syncs(er) / nc
	for j := range B {
		results[j] = Result{
			Method:           s.name,
			X:                append([]float64(nil), kn.ColumnX(j)...),
			Iterations:       kn.ColumnIterations(j),
			Converged:        kn.ColumnConverged(j),
			ResidualNorm:     kn.ColumnResidual(j),
			TrueResidualNorm: kn.ColumnTrueResidual(j),
			Stats:            stats,
			Syncs:            syncs,
		}
		switch {
		case results[j].Converged:
			errs[j] = nil
		case canceled:
			errs[j] = fmt.Errorf("solve: %s canceled at iteration %d: %w",
				s.name, results[j].Iterations, c.ctx.Err())
		default:
			errs[j] = fmt.Errorf("solve: %s stopped after %d iterations with residual %.3e: %w",
				s.name, results[j].Iterations, results[j].ResidualNorm, ErrNotConverged)
		}
	}
	return nil
}

// blockTwin maps a single-RHS method to the block method Batch may
// route its shared-operator multi-RHS workloads through.
var blockTwin = map[string]string{
	"cg":      "blockcg",
	"cgfused": "blockcg",
	"pcg":     "blockpcg",
}

const (
	// blockRouteThreshold is the batch size at which Batch prefers the
	// block twin over independent fan-out: below it the block Gram
	// overhead outweighs the amortized SpMV.
	blockRouteThreshold = 4
	// blockRoutePoolWorkers is the minimum pool width for the block
	// route. The block method wins by collapsing O(width) reduction
	// barriers per iteration into O(1); with fewer workers than this
	// there are no barriers to save and the measured serial trade is a
	// loss (see Batch).
	blockRoutePoolWorkers = 2
	// blockPanelWidth caps the width of one block solve. The Gram
	// solves cost s³ and very wide blocks slow per-column convergence,
	// so large batches run as a sequence of panels.
	blockPanelWidth = 8
)

func init() {
	// Each block iteration blocks on three fused reductions — the
	// curvature Gram, the per-column norms, and the (Z,R) Gram —
	// regardless of how many columns are in flight: the method's whole
	// point on the paper's synchronization ledger.
	syncs := func(er *engine.Result) int { return 3*er.Iterations + 2 }
	caps := Caps{Block: true}

	RegisterCaps("blockcg", "block CG: iterates s right-hand sides through one shared Krylov space (O'Leary), workspace-backed",
		caps, func() Solver {
			return &blockSolver{engineSolver{name: "blockcg", kernel: block.NewCGKernel(), syncs: syncs}}
		})
	RegisterCaps("blockpcg", "block preconditioned CG over s right-hand sides (WithPreconditioner; identity default), workspace-backed",
		caps, func() Solver {
			return &blockSolver{engineSolver{name: "blockpcg", kernel: block.NewPCGKernel(), syncs: syncs}}
		})
}
