package solve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"vrcg/internal/core"
	"vrcg/internal/krylov"
	"vrcg/internal/pipecg"
	"vrcg/internal/sstep"
	"vrcg/internal/vec"
	"vrcg/precond"
)

// refResult is the slice of an internal result the parity contract
// covers: the registry-built solver must match its internal package on
// the same system to iteration count ±1 and final residual 1e-12.
type refResult struct {
	iters     int
	resNorm   float64
	converged bool
}

// TestRegistryMatchesInternal is the API parity gate: every
// registry-built solver against a direct call into its internal
// package, on one fixed SPD system, across pool worker counts 1
// (serial kernels) and NumCPU. The same pool drives both sides, so
// the chunked reductions reassociate identically and the runs are
// numerically reproducible.
func TestRegistryMatchesInternal(t *testing.T) {
	a, b := testSystem(16, 42) // 256-unknown 2D Poisson, manufactured rhs
	n := a.Dim()
	const tol = 1e-9

	jacobi, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		workerCounts = workerCounts[:1]
	}
	for _, workers := range workerCounts {
		var pool *vec.Pool
		if workers > 1 {
			pool = vec.NewPool(workers)
			defer pool.Close()
		}
		ko := krylov.Options{Tol: tol}
		po := pipecg.Options{Tol: tol}

		cases := []struct {
			method string
			opts   []Option
			ref    func() (refResult, error)
		}{
			{"cg", nil, func() (refResult, error) {
				r, err := krylov.NewWorkspace(n, pool).CG(a, b, ko)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"cgfused", nil, func() (refResult, error) {
				r, err := krylov.CGFused(a, b, pool, ko)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"pcg", []Option{WithPreconditioner(jacobi)}, func() (refResult, error) {
				r, err := krylov.NewWorkspace(n, pool).PCG(a, jacobi, b, ko)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"cr", nil, func() (refResult, error) {
				r, err := krylov.CR(a, b, ko)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"minres", nil, func() (refResult, error) {
				r, err := krylov.MINRES(a, b, ko)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"vrcg", []Option{WithLookahead(3)}, func() (refResult, error) {
				r, err := core.Solve(a, b, core.Options{K: 3, Tol: tol, Pool: pool})
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"pipecg", nil, func() (refResult, error) {
				r, err := pipecg.NewWorkspace(n, pool).GhyselsVanroose(a, b, po)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"gropp", nil, func() (refResult, error) {
				r, err := pipecg.Gropp(a, b, po)
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			{"sstep", []Option{WithBlockSize(4)}, func() (refResult, error) {
				r, err := sstep.Solve(a, b, sstep.Options{S: 4, Tol: tol, Pool: pool})
				return refResult{r.Iterations, r.ResidualNorm, r.Converged}, err
			}},
			// The parcg family has no internal reference anymore: the
			// machine solvers were retired to an instrumented replay and
			// the registry kernels ARE the implementation. Their parity
			// gate is the pre-rewrite golden-trajectory test in
			// parcg_golden_test.go.
		}

		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.method, workers), func(t *testing.T) {
				want, err := tc.ref()
				if err != nil {
					t.Fatalf("internal reference: %v", err)
				}
				opts := append([]Option{WithTol(tol)}, tc.opts...)
				if pool != nil {
					opts = append(opts, WithPool(pool))
				}
				got, err := MustNew(tc.method).Solve(a, b, opts...)
				if err != nil && !errors.Is(err, ErrNotConverged) {
					t.Fatalf("registry solver: %v", err)
				}
				if d := got.Iterations - want.iters; d < -1 || d > 1 {
					t.Errorf("iterations: registry %d, internal %d (want ±1)", got.Iterations, want.iters)
				}
				if d := math.Abs(got.ResidualNorm - want.resNorm); d > 1e-12 {
					t.Errorf("final residual: registry %.17g, internal %.17g (|diff| = %g > 1e-12)",
						got.ResidualNorm, want.resNorm, d)
				}
				if got.Converged != want.converged {
					t.Errorf("converged: registry %v, internal %v", got.Converged, want.converged)
				}
			})
		}
	}
}

// TestParityRepeatedSolves pins the workspace-reuse contract under the
// parity lens: the second and third solves on one registry solver must
// reproduce the first bit-for-bit (the workspace is state, not memory
// of the previous system).
func TestParityRepeatedSolves(t *testing.T) {
	a, b := testSystem(16, 43)
	for _, method := range []string{"cg", "pcg", "pipecg"} {
		s := MustNew(method)
		var first *Result
		for rep := 0; rep < 3; rep++ {
			res, err := s.Solve(a, b, WithTol(1e-9))
			if err != nil {
				t.Fatalf("%s rep %d: %v", method, rep, err)
			}
			if first == nil {
				first = &Result{Iterations: res.Iterations, ResidualNorm: res.ResidualNorm}
				continue
			}
			if res.Iterations != first.Iterations || res.ResidualNorm != first.ResidualNorm {
				t.Errorf("%s rep %d: (%d, %g) != first (%d, %g)", method, rep,
					res.Iterations, res.ResidualNorm, first.Iterations, first.ResidualNorm)
			}
		}
	}
}
