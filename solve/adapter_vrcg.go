package solve

import (
	"vrcg/internal/core"
)

// vrcgSolver adapts the paper's restructured look-ahead CG
// (internal/core). WithLookahead sets k; WithReanchorEvery,
// WithWindowOnlyReanchor, WithValidateEvery, and
// WithResidualReplaceEvery expose the stabilization machinery the
// finite-precision experiments sweep. Result.Drift reports the
// recurrence diagnostics.
type vrcgSolver struct{}

func (vrcgSolver) Name() string { return "vrcg" }

func (vrcgSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight("vrcg"); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	o := core.Options{
		K:                    c.lookahead,
		MaxIter:              c.maxIter,
		Tol:                  c.tol,
		X0:                   c.x0,
		RecordHistory:        c.history,
		ReanchorEvery:        c.reanchorEvery,
		WindowOnlyReanchor:   c.windowOnly,
		ValidateEvery:        c.validateEvery,
		ResidualReplaceEvery: c.resReplace,
		Callback:             c.callback(&canceled, &stopped),
		Pool:                 c.pool,
	}
	vres, err := core.Solve(a, b, o)
	if vres == nil {
		return nil, err
	}
	res := &Result{
		Method:           "vrcg",
		X:                vres.X,
		Iterations:       vres.Iterations,
		Converged:        vres.Converged,
		ResidualNorm:     vres.ResidualNorm,
		TrueResidualNorm: vres.TrueResidualNorm,
		History:          vres.History,
		Stats:            vres.Stats,
		Drift: &Drift{
			MaxRelRR:       vres.Drift.MaxRelRR,
			MaxRelPAP:      vres.Drift.MaxRelPAP,
			Checks:         vres.Drift.Checks,
			Reanchors:      vres.Reanchors,
			Refreshes:      vres.Refreshes,
			Replacements:   vres.Replacements,
			FallbackDots:   vres.FallbackDots,
			ValidationDots: vres.ValidationDots,
		},
		// The per-iteration window tops ride the k-deep pipeline; the
		// schedule only blocks at start-up and at each stabilization
		// or drift-fallback event.
		Syncs: 1 + vres.Reanchors + vres.Replacements + vres.FallbackDots,
	}
	return finish(c, res, err, canceled, stopped)
}

func init() {
	Register("vrcg", "the paper's restructured look-ahead CG (WithLookahead k, §5 recurrences)",
		func() Solver { return vrcgSolver{} })
}
