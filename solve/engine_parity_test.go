package solve_test

import (
	"math"
	"testing"

	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// goldenCase pins one engine result on the systems built by
// goldenSystem. The contract is unchanged since the engine unification
// (iterations ±1 and residual norms within 1e-12 of the per-silo
// implementations at commit d9f0487); the pinned norms were re-captured
// when the vec kernels moved to canonical blocked-tree reductions,
// which permutes floating-point summation order and shifts residual
// trajectories in the last few digits (iteration counts were identical
// before and after). Any future change that moves a norm by more than
// 1e-12 must be justified the same way: a deliberate, documented
// summation-order change, never a silent numerical drift.
type goldenCase struct {
	system     string
	method     string
	iterations int
	converged  bool
	resNorm    float64
	trueRes    float64
}

var goldenCases = []goldenCase{
	{"poisson2d_20", "cg", 42, true, 1.8387398966418245e-07, 1.8387395118776079e-07},
	{"poisson2d_20", "cgfused", 42, true, 1.8387398966418245e-07, 1.8387395118776079e-07},
	{"poisson2d_20", "pcg", 42, true, 1.8387398966418245e-07, 1.8387395118776079e-07},
	{"poisson2d_20", "cr", 41, true, 3.8963902768109237e-07, 3.8963903024604996e-07},
	{"poisson2d_20", "sd", 1560, true, 4.2030727599913952e-07, 4.2030704396692528e-07},
	{"poisson2d_20", "minres", 41, true, 3.8963902768109565e-07, 3.8963899321972399e-07},
	{"poisson2d_20", "vrcg", 42, true, 1.8387398967764855e-07, 1.838739141778217e-07},
	{"poisson2d_20", "pipecg", 42, true, 1.8387395526824418e-07, 1.8387444264837361e-07},
	{"poisson2d_20", "gropp", 42, true, 1.8387398966418255e-07, 1.8387391745284183e-07},
	{"poisson2d_20", "sstep", 42, true, 1.8387400367165679e-07, 1.838740631731661e-07},
	{"poisson2d_31", "cg", 84, true, 3.9945070346561036e-07, 3.9945099050476142e-07},
	{"poisson2d_31", "cgfused", 84, true, 3.9945070346561036e-07, 3.9945099050476142e-07},
	{"poisson2d_31", "pcg", 84, true, 3.9945070346561036e-07, 3.9945099050476142e-07},
	{"poisson2d_31", "cr", 82, true, 5.769478811200778e-07, 5.7694766843843447e-07},
	{"poisson2d_31", "sd", 3548, true, 6.5046830306364443e-07, 6.504689484722201e-07},
	{"poisson2d_31", "minres", 82, true, 5.7694788112022296e-07, 5.7694807916136863e-07},
	{"poisson2d_31", "vrcg", 84, true, 3.9945070352034399e-07, 3.9945068487465944e-07},
	{"poisson2d_31", "pipecg", 84, true, 3.9945021442723095e-07, 3.994671500946203e-07},
	{"poisson2d_31", "gropp", 84, true, 3.994507034658065e-07, 3.994508424389972e-07},
	{"poisson2d_31", "sstep", 84, true, 3.9945070556719588e-07, 3.9945077876580604e-07},
}

func goldenSystem(t *testing.T, name string) (*sparse.CSR, []float64) {
	t.Helper()
	m := map[string]int{"poisson2d_20": 20, "poisson2d_31": 31}[name]
	if m == 0 {
		t.Fatalf("unknown golden system %q", name)
	}
	a := sparse.Poisson2D(m)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%7)/3
	}
	return a, b
}

// TestEnginePrePostRefactorParity is the acceptance-criterion parity
// test: every engine-backed method reproduces its pre-refactor
// iteration count (±1) and residual norms (within 1e-12) on fixed
// systems. It runs under -race in CI (make check).
func TestEnginePrePostRefactorParity(t *testing.T) {
	systems := map[string]struct {
		a *sparse.CSR
		b []float64
	}{}
	for _, name := range []string{"poisson2d_20", "poisson2d_31"} {
		a, b := goldenSystem(t, name)
		systems[name] = struct {
			a *sparse.CSR
			b []float64
		}{a, b}
	}
	for _, g := range goldenCases {
		g := g
		t.Run(g.system+"/"+g.method, func(t *testing.T) {
			sys := systems[g.system]
			opts := []solve.Option{solve.WithTol(1e-8), solve.WithMaxIter(4000)}
			if g.method == "pcg" {
				jac, err := precond.NewJacobi(sys.a)
				if err != nil {
					t.Fatal(err)
				}
				opts = append(opts, solve.WithPreconditioner(jac))
			}
			res, err := solve.MustNew(g.method).Solve(sys.a, sys.b, opts...)
			if err != nil {
				t.Fatalf("%s: %v", g.method, err)
			}
			if d := res.Iterations - g.iterations; d < -1 || d > 1 {
				t.Errorf("iterations = %d, golden %d (tolerance ±1)", res.Iterations, g.iterations)
			}
			if res.Converged != g.converged {
				t.Errorf("converged = %v, golden %v", res.Converged, g.converged)
			}
			if d := math.Abs(res.ResidualNorm - g.resNorm); d > 1e-12 {
				t.Errorf("ResidualNorm = %.17g, golden %.17g (|diff| = %.3g > 1e-12)",
					res.ResidualNorm, g.resNorm, d)
			}
			if d := math.Abs(res.TrueResidualNorm - g.trueRes); d > 1e-12 {
				t.Errorf("TrueResidualNorm = %.17g, golden %.17g (|diff| = %.3g > 1e-12)",
					res.TrueResidualNorm, g.trueRes, d)
			}
		})
	}
}

// engineMethods is every shared-memory registry method — the set the
// acceptance criterion requires to be workspace-backed and
// zero-allocation through a warm Session.
var engineMethods = []string{"cg", "cgfused", "pcg", "cr", "sd", "minres", "vrcg", "pipecg", "gropp", "sstep"}

// allocMethods extends engineMethods with the real-parallel parcg
// family (background-reducer kernels) and the single-RHS face of the
// block methods — every one must hold the warm zero-allocation
// contract too.
var allocMethods = append(append([]string{}, engineMethods...),
	"parcg-cg", "parcg-pipe", "parcg", "blockcg", "blockpcg")

// TestSessionZeroAllocAllMethods is the acceptance-criterion allocation
// test: a warm Session.Solve performs zero heap allocations for every
// engine-backed method, serial and pooled.
func TestSessionZeroAllocAllMethods(t *testing.T) {
	a := sparse.Poisson2D(24)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	pool := sparse.NewPool(4)
	defer pool.Close()

	for _, method := range allocMethods {
		for _, pooled := range []bool{false, true} {
			name := method + "/serial"
			opts := []solve.Option{solve.WithTol(1e-8)}
			switch method {
			case "pcg", "blockpcg":
				opts = append(opts, solve.WithPreconditioner(jac))
			case "parcg":
				// Reaching 1e-8 on this system takes the look-ahead
				// recurrences ~2300 guard-restarted iterations (a drift
				// property, not an allocation one); 1e-6 keeps the test on
				// the cheap pure-recurrence path.
				opts = []solve.Option{solve.WithTol(1e-6)}
			}
			if pooled {
				name = method + "/pooled"
				opts = append(opts, solve.WithPool(pool))
			}
			t.Run(name, func(t *testing.T) {
				sess, err := solve.NewSession(method, a, opts...)
				if err != nil {
					t.Fatal(err)
				}
				// Warm: spawn workers, build workspaces and kernel caches.
				if _, err := sess.Solve(b); err != nil {
					t.Fatal(err)
				}
				avg := testing.AllocsPerRun(10, func() {
					if _, err := sess.Solve(b); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("%s: warm Session.Solve allocates %v/op, want 0", name, avg)
				}
			})
		}
	}
}

// TestSessionZeroAllocWithSELL repeats the allocation guard on a system
// large enough that the engine's format auto-selection converts the CSR
// to SELL-C-σ: the conversion happens once on the first (warm) solve
// and is cached on the matrix, so warm pooled solves on the blocked
// format must still allocate nothing.
func TestSessionZeroAllocWithSELL(t *testing.T) {
	a := sparse.Poisson2D(64) // n=4096, above the SELL selection floor
	if _, ok := sparse.TuneMulVec(a).(*sparse.SELL); !ok {
		t.Fatal("test premise broken: TuneMulVec did not select SELL for poisson2d n=4096")
	}
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	pool := sparse.NewPool(4)
	defer pool.Close()
	for _, method := range []string{"cg", "cgfused", "pipecg"} {
		t.Run(method, func(t *testing.T) {
			sess, err := solve.NewSession(method, a,
				solve.WithTol(1e-8), solve.WithPool(pool))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Solve(b); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, err := sess.Solve(b); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("%s: warm Session.Solve on SELL allocates %v/op, want 0", method, avg)
			}
		})
	}
}

// TestSessionResultsMatchSolve pins that the Session fast path and the
// ordinary Solve path produce identical outcomes for every engine
// method (same iterations, residuals, syncs, and solution).
func TestSessionResultsMatchSolve(t *testing.T) {
	a := sparse.Poisson2D(16)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%3)
	}
	for _, method := range engineMethods {
		t.Run(method, func(t *testing.T) {
			opts := []solve.Option{solve.WithTol(1e-9)}
			ref, err := solve.MustNew(method).Solve(a, b, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := solve.NewSession(method, a, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations != ref.Iterations || res.Converged != ref.Converged {
				t.Fatalf("session iters/conv = %d/%v, solve %d/%v",
					res.Iterations, res.Converged, ref.Iterations, ref.Converged)
			}
			if res.ResidualNorm != ref.ResidualNorm || res.Syncs != ref.Syncs {
				t.Fatalf("session resnorm/syncs = %g/%d, solve %g/%d",
					res.ResidualNorm, res.Syncs, ref.ResidualNorm, ref.Syncs)
			}
			for i := range res.X {
				if res.X[i] != ref.X[i] {
					t.Fatalf("X[%d] differs between session and solve path", i)
				}
			}
		})
	}
}
