package solve

import (
	"encoding/json"
	"fmt"
)

// Params is the wire representation of a solve option set: every
// functional option that can be stated as plain data, under stable JSON
// names, so network layers (the server package, config files, test
// fixtures) can carry solver configuration without holding closures.
// The zero value maps to no options at all — method defaults apply.
//
// Pointer fields distinguish "absent" from a meaningful zero:
// Lookahead 0 is a valid vrcg setting, so only a non-nil pointer
// overrides the default. Options that need live objects (WithPool,
// WithPreconditioner, WithContext, WithMonitor, WithX0) have no Params
// counterpart; callers append them alongside Params.Options().
type Params struct {
	// Tol is the relative residual tolerance (WithTol). 0 keeps the
	// method default.
	Tol float64 `json:"tol,omitempty"`
	// MaxIter bounds the iteration count (WithMaxIter). 0 keeps the
	// method default.
	MaxIter int `json:"max_iter,omitempty"`
	// History records per-iteration residual norms (WithHistory).
	History bool `json:"history,omitempty"`

	// Lookahead is the vrcg/parcg look-ahead depth k (WithLookahead).
	Lookahead *int `json:"lookahead,omitempty"`
	// ReanchorEvery is the vrcg stabilization interval
	// (WithReanchorEvery).
	ReanchorEvery *int `json:"reanchor_every,omitempty"`
	// WindowOnlyReanchor restricts vrcg re-anchoring to the scalar
	// windows (WithWindowOnlyReanchor).
	WindowOnlyReanchor bool `json:"window_only_reanchor,omitempty"`
	// ValidateEvery enables vrcg drift checkpoints (WithValidateEvery).
	ValidateEvery int `json:"validate_every,omitempty"`
	// ResidualReplaceEvery enables vrcg residual replacement
	// (WithResidualReplaceEvery).
	ResidualReplaceEvery int `json:"residual_replace_every,omitempty"`
	// BlockSize is the sstep block size s (WithBlockSize).
	BlockSize *int `json:"block_size,omitempty"`
	// Restart is the gmres restart length m (WithRestart); nil keeps
	// the default min(30, n).
	Restart *int `json:"restart,omitempty"`

	// Processors is the simulated machine size for the parcg methods
	// (WithProcessors).
	Processors *int `json:"processors,omitempty"`
	// Blocking selects the blocking-reduction parcg schedule
	// (WithBlocking).
	Blocking bool `json:"blocking,omitempty"`
	// SpectralScaling toggles parcg Gershgorin scaling
	// (WithSpectralScaling); nil keeps the default (on).
	SpectralScaling *bool `json:"spectral_scaling,omitempty"`

	// BatchWorkers pins the Batch/SolveMany fan-out width
	// (WithBatchWorkers).
	BatchWorkers int `json:"batch_workers,omitempty"`
}

// Options maps the parameter set onto the equivalent functional
// options, in a fixed order. Absent fields contribute nothing, so the
// result composes with further options appended after it.
func (p *Params) Options() []Option {
	if p == nil {
		return nil
	}
	var opts []Option
	if p.Tol != 0 {
		opts = append(opts, WithTol(p.Tol))
	}
	if p.MaxIter != 0 {
		opts = append(opts, WithMaxIter(p.MaxIter))
	}
	if p.History {
		opts = append(opts, WithHistory(true))
	}
	if p.Lookahead != nil {
		opts = append(opts, WithLookahead(*p.Lookahead))
	}
	if p.ReanchorEvery != nil {
		opts = append(opts, WithReanchorEvery(*p.ReanchorEvery))
	}
	if p.WindowOnlyReanchor {
		opts = append(opts, WithWindowOnlyReanchor(true))
	}
	if p.ValidateEvery != 0 {
		opts = append(opts, WithValidateEvery(p.ValidateEvery))
	}
	if p.ResidualReplaceEvery != 0 {
		opts = append(opts, WithResidualReplaceEvery(p.ResidualReplaceEvery))
	}
	if p.BlockSize != nil {
		opts = append(opts, WithBlockSize(*p.BlockSize))
	}
	if p.Restart != nil {
		opts = append(opts, WithRestart(*p.Restart))
	}
	if p.Processors != nil {
		opts = append(opts, WithProcessors(*p.Processors))
	}
	if p.Blocking {
		opts = append(opts, WithBlocking(true))
	}
	if p.SpectralScaling != nil {
		opts = append(opts, WithSpectralScaling(*p.SpectralScaling))
	}
	if p.BatchWorkers != 0 {
		opts = append(opts, WithBatchWorkers(p.BatchWorkers))
	}
	return opts
}

// Validate rejects parameter values no method accepts, so wire layers
// can fail a request before burning a solve on it. Errors wrap
// ErrBadOption.
func (p *Params) Validate() error {
	if p == nil {
		return nil
	}
	switch {
	case p.Tol < 0:
		return fmt.Errorf("solve: params: tol must be >= 0, got %g: %w", p.Tol, ErrBadOption)
	case p.MaxIter < 0:
		return fmt.Errorf("solve: params: max_iter must be >= 0, got %d: %w", p.MaxIter, ErrBadOption)
	case p.Lookahead != nil && *p.Lookahead < 0:
		return fmt.Errorf("solve: params: lookahead must be >= 0, got %d: %w", *p.Lookahead, ErrBadOption)
	case p.BlockSize != nil && *p.BlockSize < 1:
		return fmt.Errorf("solve: params: block_size must be >= 1, got %d: %w", *p.BlockSize, ErrBadOption)
	case p.Restart != nil && *p.Restart < 1:
		return fmt.Errorf("solve: params: restart must be >= 1, got %d: %w", *p.Restart, ErrBadOption)
	case p.Processors != nil && *p.Processors < 1:
		return fmt.Errorf("solve: params: processors must be >= 1, got %d: %w", *p.Processors, ErrBadOption)
	case p.BatchWorkers < 0:
		return fmt.Errorf("solve: params: batch_workers must be >= 0, got %d: %w", p.BatchWorkers, ErrBadOption)
	}
	return nil
}

// Key returns the canonical JSON encoding of the parameter set —
// identical configurations yield identical keys, so caches (session
// pools in particular) can use it to recognize equivalent requests.
func (p *Params) Key() string {
	if p == nil {
		return "{}"
	}
	b, err := json.Marshal(p)
	if err != nil {
		// Params is a closed struct of marshalable fields; this cannot
		// happen short of memory corruption.
		panic(fmt.Sprintf("solve: params key: %v", err))
	}
	return string(b)
}
