package solve_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// luSolve solves the dense square system A x = b by Gaussian elimination
// with partial pivoting — the direct reference for the general-operator
// methods.
func luSolve(t *testing.T, a *sparse.Dense, b []float64) []float64 {
	t.Helper()
	n := a.Dim()
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			m[i][j] = a.At(i, j)
		}
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		p := col
		for i := col + 1; i < n; i++ {
			if math.Abs(m[i][col]) > math.Abs(m[p][col]) {
				p = i
			}
		}
		if m[p][col] == 0 {
			t.Fatalf("singular reference system at column %d", col)
		}
		m[col], m[p] = m[p], m[col]
		for i := col + 1; i < n; i++ {
			f := m[i][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[i][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// nonsymmetricCSR builds a random diagonally dominant matrix with no
// symmetry, in CSR so the session fast paths and transpose products are
// the production ones.
func nonsymmetricCSR(rng *rand.Rand, n int) *sparse.CSR {
	coo := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		var off float64
		for _, d := range []int{-3, -1, 1, 2} {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			v := rng.NormFloat64()
			coo.Add(i, j, v)
			off += math.Abs(v)
		}
		coo.Add(i, i, off+1+rng.Float64())
	}
	return coo.ToCSR()
}

func generalRelErr(x, ref []float64) float64 {
	var num, den float64
	for i := range x {
		num += (x[i] - ref[i]) * (x[i] - ref[i])
		den += ref[i] * ref[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestGeneralMethodsRegistered: the acceptance list — all four
// general-operator methods are in the registry with the right caps.
func TestGeneralMethodsRegistered(t *testing.T) {
	want := map[string]solve.Caps{
		"bicgstab": {Nonsymmetric: true},
		"gmres":    {Nonsymmetric: true},
		"cgnr":     {Nonsymmetric: true, Rectangular: true},
		"lsqr":     {Nonsymmetric: true, Rectangular: true},
	}
	have := map[string]bool{}
	for _, name := range solve.Methods() {
		have[name] = true
	}
	for name, caps := range want {
		if !have[name] {
			t.Errorf("method %q missing from solve.Methods()", name)
			continue
		}
		if got := solve.MethodCaps(name); got != caps {
			t.Errorf("MethodCaps(%q) = %+v, want %+v", name, got, caps)
		}
	}
	if got := solve.MethodCaps("cg"); got != (solve.Caps{}) {
		t.Errorf("MethodCaps(cg) = %+v, want zero caps", got)
	}
}

// TestNonsymmetricMethodsMatchLU: bicgstab and gmres agree with a dense
// LU solution to 1e-10 relative on random nonsymmetric systems.
func TestNonsymmetricMethodsMatchLU(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{16, 50} {
		a := nonsymmetricCSR(rng, n)
		if a.IsSymmetric(1e-12) {
			t.Fatal("test matrix unexpectedly symmetric")
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref := luSolve(t, a.ToDense(), b)
		for _, method := range []string{"bicgstab", "gmres"} {
			res, err := solve.MustNew(method).Solve(a, b, solve.WithTol(1e-12))
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, method, err)
			}
			if e := generalRelErr(res.X, ref); e > 1e-10 {
				t.Errorf("n=%d %s: relative error %g vs LU, want <= 1e-10", n, method, e)
			}
		}
	}
}

// TestGMRESWithRestart: explicit restart lengths all converge to the
// same answer, and an invalid one is rejected through ErrBadOption via
// Params.Validate.
func TestGMRESWithRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 40
	a := nonsymmetricCSR(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := luSolve(t, a.ToDense(), b)
	for _, m := range []int{2, 10, 40} {
		res, err := solve.MustNew("gmres").Solve(a, b,
			solve.WithTol(1e-12), solve.WithRestart(m), solve.WithMaxIter(100000))
		if err != nil {
			t.Fatalf("gmres(%d): %v", m, err)
		}
		if e := generalRelErr(res.X, ref); e > 1e-10 {
			t.Errorf("gmres(%d): relative error %g vs LU", m, e)
		}
	}
	bad := -1
	p := &solve.Params{Restart: &bad}
	if err := p.Validate(); !errors.Is(err, solve.ErrBadOption) {
		t.Errorf("Params{Restart:-1}.Validate() = %v, want ErrBadOption", err)
	}
}

// TestLeastSquaresMethods: cgnr and lsqr solve a rectangular
// least-squares problem to the normal-equations reference, and agree
// with each other on a consistent system.
func TestLeastSquaresMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	rows, cols := 60, 9
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, data)

	ata := sparse.NewDense(cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += data[r*cols+i] * data[r*cols+j]
			}
			ata.Set(i, j, s)
		}
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	atb := make([]float64, cols)
	a.MulVecT(atb, b)
	ref := luSolve(t, ata, atb)

	for _, method := range []string{"cgnr", "lsqr"} {
		res, err := solve.MustNew(method).Solve(a, b, solve.WithTol(1e-12))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(res.X) != cols {
			t.Fatalf("%s: solution length %d, want %d", method, len(res.X), cols)
		}
		if e := generalRelErr(res.X, ref); e > 1e-10 {
			t.Errorf("%s: relative error %g vs normal equations, want <= 1e-10", method, e)
		}
	}

	// Consistent system: both must recover the constructed solution.
	xTrue := make([]float64, cols)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	a.MulVec(b, xTrue)
	var sols [][]float64
	for _, method := range []string{"cgnr", "lsqr"} {
		res, err := solve.MustNew(method).Solve(a, b, solve.WithTol(1e-13))
		if err != nil {
			t.Fatalf("%s consistent: %v", method, err)
		}
		x := append([]float64(nil), res.X...)
		if e := generalRelErr(x, xTrue); e > 1e-10 {
			t.Errorf("%s: relative error %g vs exact solution", method, e)
		}
		sols = append(sols, x)
	}
	if e := generalRelErr(sols[0], sols[1]); e > 1e-10 {
		t.Errorf("cgnr and lsqr disagree by %g on a consistent system", e)
	}
}

// TestGeneralBreakdownSentinels: singular (zero) operators trip
// ErrBreakdown through the public registry for all four methods.
func TestGeneralBreakdownSentinels(t *testing.T) {
	n := 8
	zero := sparse.NewCSR(n, make([]int, n+1), nil, nil)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	for _, method := range []string{"bicgstab", "gmres", "cgnr", "lsqr"} {
		_, err := solve.MustNew(method).Solve(zero, b)
		if !errors.Is(err, solve.ErrBreakdown) {
			t.Errorf("%s on zero operator: err = %v, want ErrBreakdown", method, err)
		}
	}
}

// TestLeastSquaresRejectNoTranspose: operators without MulVecT fail
// with ErrUnsupportedOperator instead of a panic or silent nonsense.
func TestLeastSquaresRejectNoTranspose(t *testing.T) {
	a := opaqueOperator{n: 5}
	b := make([]float64, 5)
	for i := range b {
		b[i] = 1
	}
	for _, method := range []string{"cgnr", "lsqr"} {
		_, err := solve.MustNew(method).Solve(a, b)
		if !errors.Is(err, solve.ErrUnsupportedOperator) {
			t.Errorf("%s without transpose products: err = %v, want ErrUnsupportedOperator", method, err)
		}
	}
}

type opaqueOperator struct{ n int }

func (o opaqueOperator) Dim() int { return o.n }
func (o opaqueOperator) MulVec(dst, x []float64) {
	for i := range dst {
		dst[i] = 3 * x[i]
	}
}

// TestGeneralSessionZeroAllocSteadyState: the zero-alloc warm Session
// fast path extends to all four general-operator methods, square and
// rectangular.
func TestGeneralSessionZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 32
	square := nonsymmetricCSR(rng, n)
	bsq := make([]float64, n)
	for i := range bsq {
		bsq[i] = rng.NormFloat64()
	}
	rows, cols := 48, 6
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	rect := sparse.RectFromDense(rows, cols, data)
	brect := make([]float64, rows)
	for i := range brect {
		brect[i] = rng.NormFloat64()
	}

	cases := []struct {
		method string
		op     solve.Operator
		b      []float64
	}{
		{"bicgstab", square, bsq},
		{"gmres", square, bsq},
		{"cgnr", rect, brect},
		{"lsqr", rect, brect},
	}
	for _, tc := range cases {
		sess, err := solve.NewSession(tc.method, tc.op, solve.WithTol(1e-10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Solve(tc.b); err != nil { // warm the workspace
			t.Fatalf("%s: %v", tc.method, err)
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := sess.Solve(tc.b); err != nil {
				t.Fatalf("%s: %v", tc.method, err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: warm Session.Solve allocates %v per call, want 0", tc.method, avg)
		}
	}
}
