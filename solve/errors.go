package solve

import (
	"errors"

	"vrcg/internal/krylov"
	"vrcg/sparse"
)

// ErrNotConverged is returned (wrapped with per-method detail: method
// name, iterations spent, final residual) when a solve exhausts its
// iteration budget without meeting the tolerance. The Result returned
// alongside it is valid — callers that consider a partial solve
// acceptable test errors.Is(err, ErrNotConverged) and keep going.
var ErrNotConverged = errors.New("solve: did not converge within the iteration limit")

// ErrUnknownMethod is returned by New for names missing from the
// registry.
var ErrUnknownMethod = errors.New("solve: unknown method")

// ErrUnsupportedOperator is returned when a method needs an operator
// capability the caller's type lacks (the distributed methods need
// *sparse.CSR to build their halo partition; the least-squares methods
// need transpose products, sparse.TransposeMulVec). Re-exported from
// the engine so internal kernels and public wrappers share one
// sentinel.
var ErrUnsupportedOperator = krylov.ErrUnsupportedOperator

// Sentinels from the internal solver packages, re-exported so callers
// can errors.Is against this package alone. Every error a registered
// method returns wraps one of the sentinels in this file, except
// cancellation: a solve stopped through WithContext wraps ctx.Err()
// (context.Canceled or context.DeadlineExceeded).
var (
	// ErrIndefinite: the operator is not positive definite (a
	// curvature <p, Ap> <= 0 was encountered).
	ErrIndefinite = krylov.ErrIndefinite
	// ErrBreakdown: an iteration produced a non-finite or degenerate
	// scalar and cannot continue.
	ErrBreakdown = krylov.ErrBreakdown
	// ErrBadOption: solver options invalid for the method (negative
	// look-ahead, zero block size, ...).
	ErrBadOption = krylov.ErrBadOption
	// ErrDim: dimension mismatch between operator, right-hand side,
	// initial guess, or preconditioner.
	ErrDim = sparse.ErrDim
)
