// Session/Batch coverage, written external-consumer style: this file
// imports only the public packages (solve, sparse) and the standard
// library — no vrcg/internal/... — so it doubles as the acceptance
// check that the public data plane is self-sufficient.
package solve_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// testMTX is a small SPD system in MatrixMarket coordinate format (a
// shifted 1D Laplacian), the external on-ramp for operators.
const testMTX = `%%MatrixMarket matrix coordinate real symmetric
6 6 11
1 1 3
2 2 3
3 3 3
4 4 3
5 5 3
6 6 3
2 1 -1
3 2 -1
4 3 -1
5 4 -1
6 5 -1
`

func mustReadMTX(t *testing.T) *sparse.CSR {
	t.Helper()
	a, err := sparse.ReadMatrixMarket(strings.NewReader(testMTX))
	if err != nil {
		t.Fatalf("ReadMatrixMarket: %v", err)
	}
	return a
}

func rhsSet(n, count int) [][]float64 {
	B := make([][]float64, count)
	for k := range B {
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(float64((k+1)*(i+2))) + 0.1*float64(k)
		}
		B[k] = b
	}
	return B
}

// maxAbsDiff is the infinity-norm distance between two vectors.
func maxAbsDiff(x, y []float64) float64 {
	d := 0.0
	for i := range x {
		if a := math.Abs(x[i] - y[i]); a > d {
			d = a
		}
	}
	return d
}

// TestExternalConsumerFlow is the acceptance scenario end to end: load
// a MatrixMarket system, prepare a Session, solve repeatedly, then
// Batch many right-hand sides — all through the public surface only.
func TestExternalConsumerFlow(t *testing.T) {
	a := mustReadMTX(t)
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-12))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if sess.Dim() != a.Dim() || sess.Method() != "cg" || sess.Operator() != solve.Operator(a) {
		t.Fatal("session accessors wrong")
	}

	B := rhsSet(a.Dim(), 7)

	// Sequential reference: a lone Solve per right-hand side.
	want := make([][]float64, len(B))
	for i, b := range B {
		res, err := sess.Solve(b)
		if err != nil {
			t.Fatalf("rhs %d: %v", i, err)
		}
		if !res.Converged {
			t.Fatalf("rhs %d did not converge", i)
		}
		want[i] = append([]float64(nil), res.X...)
	}

	results, err := solve.Batch(sess, B)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(results) != len(B) {
		t.Fatalf("Batch returned %d results for %d rhs", len(results), len(B))
	}
	for i := range results {
		if !results[i].Converged {
			t.Fatalf("batch rhs %d did not converge", i)
		}
		if d := maxAbsDiff(results[i].X, want[i]); d > 1e-12 {
			t.Fatalf("batch rhs %d differs from sequential solve by %g (> 1e-12)", i, d)
		}
	}
}

// TestBatchMatchesSequentialAcrossMethods: Batch parity for a spread of
// methods, including the non-fast-path ones, at several worker counts.
func TestBatchMatchesSequentialAcrossMethods(t *testing.T) {
	a := sparse.Poisson2D(9) // n=81
	B := rhsSet(a.Dim(), 10)
	for _, method := range []string{"cg", "pcg", "pipecg", "cr", "vrcg", "sstep"} {
		sess, err := solve.NewSession(method, a, solve.WithTol(1e-11))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		want := make([][]float64, len(B))
		for i, b := range B {
			lone, err := solve.MustNew(method).Solve(a, b, solve.WithTol(1e-11))
			if err != nil {
				t.Fatalf("%s rhs %d: %v", method, i, err)
			}
			want[i] = append([]float64(nil), lone.X...)
		}
		// Blockable methods (cg, pcg) route a batch this wide through
		// their block twin: same tolerance, different Krylov sequence,
		// so parity there is at solution accuracy rather than bitwise.
		bound := 1e-12
		if solve.MethodCaps("block" + method).Block {
			bound = 1e-9
		}
		for _, workers := range []int{1, 3} {
			results, err := sess.SolveMany(B, solve.WithBatchWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", method, workers, err)
			}
			for i := range results {
				if d := maxAbsDiff(results[i].X, want[i]); d > bound {
					t.Fatalf("%s workers=%d rhs %d: batch differs from lone solve by %g",
						method, workers, i, d)
				}
			}
		}
	}
}

// TestSessionResultReuse: the fast-path Result is session-owned — the
// pointer is stable across solves and X remains valid until the next
// Solve.
func TestSessionResultReuse(t *testing.T) {
	a := mustReadMTX(t)
	sess, err := solve.NewSession("cg", a)
	if err != nil {
		t.Fatal(err)
	}
	b := rhsSet(a.Dim(), 1)[0]
	r1, err := sess.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x1 := append([]float64(nil), r1.X...)
	r2, err := sess.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("fast-path Result not reused across session solves")
	}
	if d := maxAbsDiff(x1, r2.X); d != 0 {
		t.Fatalf("same rhs resolved differently: %g", d)
	}
}

// TestSessionExtraOptions: per-call extras flow through (history only
// when asked), and a wrong-length rhs fails with ErrDim.
func TestSessionExtraOptions(t *testing.T) {
	a := mustReadMTX(t)
	sess, err := solve.NewSession("cg", a)
	if err != nil {
		t.Fatal(err)
	}
	b := rhsSet(a.Dim(), 1)[0]
	res, err := sess.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.History != nil {
		t.Fatal("history recorded without WithHistory")
	}
	res, err = sess.Solve(b, solve.WithHistory(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("WithHistory extra option ignored")
	}
	if _, err := sess.Solve(b[:3]); !errors.Is(err, solve.ErrDim) {
		t.Fatalf("short rhs error = %v, want ErrDim", err)
	}
}

// TestSessionZeroAllocSteadyState is the acceptance criterion: warm
// workspace-backed sessions allocate nothing per Solve.
func TestSessionZeroAllocSteadyState(t *testing.T) {
	a := sparse.Poisson2D(12)
	b := rhsSet(a.Dim(), 1)[0]
	for _, method := range []string{"cg", "pcg", "pipecg"} {
		sess, err := solve.NewSession(method, a, solve.WithTol(1e-10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Solve(b); err != nil { // warm the workspace
			t.Fatalf("%s: %v", method, err)
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := sess.Solve(b); err != nil {
				t.Fatalf("%s: %v", method, err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: warm Session.Solve allocates %v per call, want 0", method, avg)
		}
	}
}

// TestBatchErrorsCarryIndex: a batch with one unsolvable right-hand
// side still solves the rest, and the aggregated error names the
// failing index while matching the sentinel through errors.Is.
func TestBatchErrorsCarryIndex(t *testing.T) {
	a := sparse.Poisson2D(8)
	B := rhsSet(a.Dim(), 4)
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-10), solve.WithMaxIter(2))
	if err != nil {
		t.Fatal(err)
	}
	results, err := solve.Batch(sess, B)
	if err == nil {
		t.Fatal("2-iteration cap should not converge")
	}
	if !errors.Is(err, solve.ErrNotConverged) {
		t.Fatalf("batch error %v does not wrap ErrNotConverged", err)
	}
	if !strings.Contains(err.Error(), "rhs 0") {
		t.Fatalf("batch error %q does not carry the rhs index", err)
	}
	for i := range results {
		if results[i].Iterations == 0 {
			t.Fatalf("rhs %d: partial result missing", i)
		}
	}
}

// TestBatchContextCancel: a pre-canceled context stops every solve and
// surfaces context.Canceled per right-hand side.
func TestBatchContextCancel(t *testing.T) {
	a := sparse.Poisson2D(8)
	B := rhsSet(a.Dim(), 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := solve.NewSession("cg", a, solve.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	_, err = solve.Batch(sess, B)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch under canceled context: err = %v, want context.Canceled", err)
	}
}

// TestBatchEmptyAndFork round out the surface.
func TestBatchEmptyAndFork(t *testing.T) {
	a := mustReadMTX(t)
	sess, err := solve.NewSession("cg", a)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := solve.Batch(sess, nil); res != nil || err != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
	fork, err := sess.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fork == sess || fork.Operator() != sess.Operator() {
		t.Fatal("Fork must share the operator but nothing mutable")
	}
	b := rhsSet(a.Dim(), 1)[0]
	r1, err := sess.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fork.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(r1.X, r2.X); d != 0 {
		t.Fatalf("fork solves differently: %g", d)
	}
}

// TestNewSessionErrors: unknown methods and nil operators fail up
// front.
func TestNewSessionErrors(t *testing.T) {
	if _, err := solve.NewSession("no-such-method", mustReadMTX(t)); !errors.Is(err, solve.ErrUnknownMethod) {
		t.Fatalf("unknown method error = %v", err)
	}
	if _, err := solve.NewSession("cg", nil); err == nil {
		t.Fatal("nil operator accepted")
	}
}

// ExampleSession shows the serving idiom: prepare once, solve per
// request.
func ExampleSession() {
	a := sparse.Poisson1D(32)
	sess, _ := solve.NewSession("cg", a, solve.WithTol(1e-10))
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	res, _ := sess.Solve(b)
	fmt.Println(res.Converged, res.Method)
	// Output: true cg
}

// TestBatchWithPoolMatchesSequential: a session prepared WithPool keeps
// batch parity — Batch re-slices the engine into per-worker pools, and
// every result still matches a lone pooled solve to 1e-12.
func TestBatchWithPoolMatchesSequential(t *testing.T) {
	a := sparse.Poisson2D(16)
	B := rhsSet(a.Dim(), 6)
	pool := sparse.NewPoolMinChunk(4, 32)
	defer pool.Close()
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-11), solve.WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(B))
	for i, b := range B {
		res, err := sess.Solve(b)
		if err != nil {
			t.Fatalf("rhs %d: %v", i, err)
		}
		want[i] = append([]float64(nil), res.X...)
	}
	results, err := solve.Batch(sess, B, solve.WithBatchWorkers(3))
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	// Six right-hand sides route through the blockcg twin — same
	// tolerance, different Krylov sequence — so parity is at solution
	// accuracy rather than bitwise.
	for i := range results {
		if d := maxAbsDiff(results[i].X, want[i]); d > 1e-9 {
			t.Fatalf("rhs %d: pooled batch differs from pooled solve by %g", i, d)
		}
	}
}
