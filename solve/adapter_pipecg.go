package solve

import (
	"vrcg/internal/pipecg"
	"vrcg/internal/vec"
)

// pipecgSolver adapts the pipelined successors (internal/pipecg):
// Ghysels–Vanroose single-reduction CG (workspace-backed) and Gropp's
// two-reduction asynchronous variant. syncsPerIter is the method's
// blocking-reduction count per iteration (each overlapped with other
// work, but still waited on once per iteration).
type pipecgSolver struct {
	name         string
	syncsPerIter int
	run          func(s *pipecgSolver, a Operator, b vec.Vector, c *config, o pipecg.Options) (*pipecg.Result, error)
	ws           *pipecg.Workspace
}

func (s *pipecgSolver) Name() string { return s.name }

func (s *pipecgSolver) Solve(a Operator, b vec.Vector, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight(s.name); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	o := pipecg.Options{
		MaxIter:       c.maxIter,
		Tol:           c.tol,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      c.callback(&canceled, &stopped),
	}
	pres, err := s.run(s, a, b, c, o)
	if pres == nil {
		return nil, err
	}
	res := &Result{
		Method:           s.name,
		X:                pres.X,
		Iterations:       pres.Iterations,
		Converged:        pres.Converged,
		ResidualNorm:     pres.ResidualNorm,
		TrueResidualNorm: pres.TrueResidualNorm,
		History:          pres.History,
		Stats:            pres.Stats,
		Syncs:            s.syncsPerIter*pres.Iterations + 1,
	}
	return finish(c, res, err, canceled, stopped)
}

func init() {
	Register("pipecg", "Ghysels-Vanroose pipelined CG (one fused reduction/iter), workspace-backed",
		func() Solver {
			return &pipecgSolver{name: "pipecg", syncsPerIter: 1,
				run: func(s *pipecgSolver, a Operator, b vec.Vector, c *config, o pipecg.Options) (*pipecg.Result, error) {
					if s.ws == nil || s.ws.Dim() != a.Dim() || s.ws.Pool() != c.pool {
						s.ws = pipecg.NewWorkspace(a.Dim(), c.pool)
					}
					r, err := s.ws.GhyselsVanroose(a, b, o)
					return &r, err
				}}
		})
	Register("gropp", "Gropp asynchronous CG (two overlapped reductions/iter)",
		func() Solver {
			return &pipecgSolver{name: "gropp", syncsPerIter: 2,
				run: func(s *pipecgSolver, a Operator, b vec.Vector, c *config, o pipecg.Options) (*pipecg.Result, error) {
					return pipecg.Gropp(a, b, o)
				}}
		})
}
