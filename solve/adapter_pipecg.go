package solve

import (
	"vrcg/internal/pipecg"
)

// pipecgSolver adapts the pipelined successors (internal/pipecg):
// Ghysels–Vanroose single-reduction CG (workspace-backed) and Gropp's
// two-reduction asynchronous variant. syncsPerIter is the method's
// blocking-reduction count per iteration (each overlapped with other
// work, but still waited on once per iteration).
type pipecgSolver struct {
	name         string
	syncsPerIter int
	run          func(s *pipecgSolver, a Operator, b []float64, c *config, o pipecg.Options) (*pipecg.Result, error)
	fast         func(s *pipecgSolver, a Operator, b []float64, c *config, o pipecg.Options) (pipecg.Result, error)
	ws           *pipecg.Workspace
}

func (s *pipecgSolver) Name() string { return s.name }

func (s *pipecgSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight(s.name); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	o := pipecg.Options{
		MaxIter:       c.maxIter,
		Tol:           c.tol,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      c.callback(&canceled, &stopped),
	}
	var pres *pipecg.Result
	var err error
	if s.fast != nil {
		r, ferr := s.fast(s, a, b, c, o)
		pres, err = &r, ferr
	} else {
		pres, err = s.run(s, a, b, c, o)
		if pres == nil {
			return nil, err
		}
	}
	res := &Result{}
	s.fill(res, pres)
	return finish(c, res, err, canceled, stopped)
}

// fill maps an internal result onto the canonical Result in place (the
// shape shared by Solve and the Session fast path).
func (s *pipecgSolver) fill(res *Result, pres *pipecg.Result) {
	*res = Result{
		Method:           s.name,
		X:                pres.X,
		Iterations:       pres.Iterations,
		Converged:        pres.Converged,
		ResidualNorm:     pres.ResidualNorm,
		TrueResidualNorm: pres.TrueResidualNorm,
		History:          pres.History,
		Stats:            pres.Stats,
		Syncs:            s.syncsPerIter*pres.Iterations + 1,
	}
}

// solveInto is the Session zero-allocation fast path (workspace-backed
// "pipecg" only).
func (s *pipecgSolver) solveInto(res *Result, a Operator, b []float64, c *config, cb func(int, float64) bool) (bool, error) {
	if s.fast == nil {
		return false, nil
	}
	o := pipecg.Options{
		MaxIter:       c.maxIter,
		Tol:           c.tol,
		X0:            c.x0,
		RecordHistory: c.history,
		Callback:      cb,
	}
	pres, err := s.fast(s, a, b, c, o)
	s.fill(res, &pres)
	return true, err
}

func init() {
	Register("pipecg", "Ghysels-Vanroose pipelined CG (one fused reduction/iter), workspace-backed",
		func() Solver {
			return &pipecgSolver{name: "pipecg", syncsPerIter: 1,
				fast: func(s *pipecgSolver, a Operator, b []float64, c *config, o pipecg.Options) (pipecg.Result, error) {
					if s.ws == nil || s.ws.Dim() != a.Dim() || s.ws.Pool() != c.pool {
						s.ws = pipecg.NewWorkspace(a.Dim(), c.pool)
					}
					return s.ws.GhyselsVanroose(a, b, o)
				}}
		})
	Register("gropp", "Gropp asynchronous CG (two overlapped reductions/iter)",
		func() Solver {
			return &pipecgSolver{name: "gropp", syncsPerIter: 2,
				run: func(s *pipecgSolver, a Operator, b []float64, c *config, o pipecg.Options) (*pipecg.Result, error) {
					return pipecg.Gropp(a, b, o)
				}}
		})
}
