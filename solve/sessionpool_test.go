package solve_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"vrcg/solve"
	"vrcg/sparse"
)

func poolFixture(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	a := sparse.Poisson2D(12)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return a, b
}

func TestSessionPoolHitsAndParity(t *testing.T) {
	a, b := poolFixture(t)
	p, err := solve.NewSessionPool("cg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}

	want, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k < 3; k++ {
		ps, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ps.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.X {
			if d := math.Abs(res.X[i] - want.X[i]); d > 1e-12 {
				t.Fatalf("round %d: X[%d] differs by %g", k, i, d)
			}
		}
		ps.Release()
	}

	st := p.Stats()
	if st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("sequential reuse should be all hits: %+v", st)
	}
	if st.Size != 1 || st.Idle != 1 {
		t.Fatalf("pool should hold exactly the prewarmed session: %+v", st)
	}
	if st.HitRate() != 1 {
		t.Fatalf("hit rate %v, want 1", st.HitRate())
	}
}

func TestSessionPoolGrowsUnderConcurrency(t *testing.T) {
	a, _ := poolFixture(t)
	p, err := solve.NewSessionPool("cg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	// Hold three sessions at once: one warm hit, two forced misses.
	var held []*solve.PooledSession
	for i := 0; i < 3; i++ {
		ps, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, ps)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Size != 3 || st.Idle != 0 {
		t.Fatalf("stats after 3 concurrent acquires: %+v", st)
	}
	for _, ps := range held {
		ps.Release()
	}
	if st := p.Stats(); st.Idle != 3 {
		t.Fatalf("all sessions should be idle after release: %+v", st)
	}
}

func TestSessionPoolPerAcquireDeadline(t *testing.T) {
	a, b := poolFixture(t)
	p, err := solve.NewSessionPool("cg", a, solve.WithTol(1e-14))
	if err != nil {
		t.Fatal(err)
	}

	// A dead context cancels the solve...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ps.Solve(b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	ps.Release()

	// ...and the SAME pooled session solves fine on the next acquire
	// with a live context: the deadline is per-request, not baked in.
	ps, err = p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ps.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence with a live context")
	}
	ps.Release()
}

func TestSessionPoolConcurrentClients(t *testing.T) {
	a, b := poolFixture(t)
	p, err := solve.NewSessionPool("pipecg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	want, err := solve.MustNew("pipecg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				ps, err := p.Acquire(ctx)
				if err != nil {
					cancel()
					errc <- err
					return
				}
				res, err := ps.Solve(b)
				if err != nil {
					errc <- err
				} else {
					for i := range res.X {
						if math.Abs(res.X[i]-want.X[i]) > 1e-12 {
							errc <- errors.New("concurrent solve diverged from reference")
							break
						}
					}
				}
				ps.Release()
				cancel()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits+st.Misses != 64 {
		t.Fatalf("expected 64 acquires, got %+v", st)
	}
	if st.Size > 8 {
		t.Fatalf("pool grew past peak concurrency: %+v", st)
	}
}

func TestSessionPoolBadMethod(t *testing.T) {
	a, _ := poolFixture(t)
	if _, err := solve.NewSessionPool("no-such-method", a); !errors.Is(err, solve.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

// TestSessionPoolWarmSolveZeroAlloc proves the pooled serving path
// keeps the Session zero-allocation regime: after warm-up, an acquire +
// solve + release cycle on a background context performs at most the
// one context-box allocation per Acquire and none in the solve itself.
func TestSessionPoolWarmSolveZeroAlloc(t *testing.T) {
	a, b := poolFixture(t)
	p, err := solve.NewSessionPool("cg", a, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Solve(b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ps.Solve(b); err != nil {
			t.Fatal(err)
		}
	})
	ps.Release()
	if allocs != 0 {
		t.Fatalf("warm pooled Solve allocates %v times per op, want 0", allocs)
	}
}
