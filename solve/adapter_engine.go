package solve

import (
	"vrcg/internal/core"
	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/pipecg"
	"vrcg/internal/sstep"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// engineSolver is the one adapter every shared-memory method runs
// through: a registered engine kernel plus a reusable workspace,
// rebuilt only when the system order or pool changes, so steady-state
// repeated solves allocate nothing. Because the adapter is generic over
// the kernel contract, every engine-backed method uniformly gains the
// Session zero-allocation fast path (solveInto) and participates in
// Batch fan-out with per-worker forked workspaces — there are no
// per-silo adapters left to fall behind.
type engineSolver struct {
	name   string
	kernel engine.Kernel
	// syncs estimates the blocking global-synchronization points of the
	// finished schedule (Result.Syncs) — the per-method quantity the
	// paper's comparison is about.
	syncs func(er *engine.Result) int
	// drift marks the methods that publish Result.Drift (vrcg, parcg).
	drift bool
	// phases marks the methods that publish Result.Phases (the
	// real-parallel parcg family).
	phases bool
	// post, when non-nil, runs after fill on both solve paths — the
	// parcg family's machine-mode replay hook. A returned error stands
	// in for the kernel's when the kernel itself succeeded.
	post func(s *engineSolver, c *config, a Operator, res *Result) error

	ws *engine.Workspace
	er engine.Result
	dr Drift
	ph PhaseSet
}

func (s *engineSolver) Name() string { return s.name }

func (s *engineSolver) workspace(n int, pool *vec.Pool) *engine.Workspace {
	if n <= 0 {
		return nil // engine.Solve rejects it with ErrDim
	}
	if s.ws == nil || s.ws.Dim() != n || s.ws.Pool() != pool {
		s.ws = engine.NewWorkspace(n, pool)
	}
	return s.ws
}

// engineConfig maps the resolved option set onto the engine's shared
// Config. Methods ignore fields they have no use for, so one mapping
// serves all of them.
func (c *config) engineConfig(cb func(int, float64) bool) engine.Config {
	ec := engine.Config{
		Tol:                  c.tol,
		MaxIter:              c.maxIter,
		X0:                   c.x0,
		RecordHistory:        c.history,
		Callback:             cb,
		Pool:                 c.pool,
		K:                    c.lookahead,
		ReanchorEvery:        c.reanchorEvery,
		WindowOnlyReanchor:   c.windowOnly,
		ValidateEvery:        c.validateEvery,
		ResidualReplaceEvery: c.resReplace,
		NoScaling:            c.noScaling,
		Blocking:             c.blocking,
		S:                    c.blockSize,
		Restart:              c.restart,
	}
	if c.precond != nil {
		ec.Precond = asPrecond(c.precond)
	}
	return ec
}

// asMatrix views a public Operator as the sparse.Matrix the engine
// consumes. The method sets are identical (both are stated on plain
// []float64), so the assertion always succeeds for concrete types; the
// wrapper exists only as a compile-safe fallback.
func asMatrix(a Operator) sparse.Matrix {
	if m, ok := a.(sparse.Matrix); ok {
		return m
	}
	return matrixShim{a}
}

type matrixShim struct{ a Operator }

func (m matrixShim) Dim() int                { return m.a.Dim() }
func (m matrixShim) MulVec(dst, x []float64) { m.a.MulVec(dst, x) }

// asPrecond likewise views a public Preconditioner as the precond
// package interface.
func asPrecond(p Preconditioner) precond.Preconditioner {
	if m, ok := p.(precond.Preconditioner); ok {
		return m
	}
	return precondShim{p}
}

type precondShim struct{ p Preconditioner }

func (m precondShim) Dim() int                { return m.p.Dim() }
func (m precondShim) Apply(dst, r vec.Vector) { m.p.Apply(dst, r) }

func (s *engineSolver) solve(a Operator, b []float64, c *config, cb func(int, float64) bool) error {
	// The workspace lives in the operator's column space: for the
	// rectangular least-squares methods the solution is cols-long while
	// b is rows-long, and for square operators the two coincide.
	m := asMatrix(a)
	_, cols := sparse.Dims(m)
	return engine.Solve(s.kernel, s.workspace(cols, c.pool), m, b, c.engineConfig(cb), &s.er)
}

// fill maps the engine result onto the canonical Result in place (the
// shape shared by Solve and the Session fast path). The vrcg Drift
// block is adapter-owned and reused, so the fast path stays
// allocation-free.
func (s *engineSolver) fill(res *Result) {
	er := &s.er
	*res = Result{
		Method:           s.name,
		X:                er.X,
		Iterations:       er.Iterations,
		Converged:        er.Converged,
		ResidualNorm:     er.ResidualNorm,
		TrueResidualNorm: er.TrueResidualNorm,
		History:          er.History,
		Stats:            er.Stats,
		Blocks:           er.Blocks,
		Syncs:            s.syncs(er),
	}
	if s.drift {
		s.dr = Drift{
			MaxRelRR:       er.Drift.MaxRelRR,
			MaxRelPAP:      er.Drift.MaxRelPAP,
			Checks:         er.Drift.Checks,
			Reanchors:      er.Reanchors,
			Refreshes:      er.Refreshes,
			Replacements:   er.Replacements,
			FallbackDots:   er.FallbackDots,
			ValidationDots: er.ValidationDots,
		}
		res.Drift = &s.dr
	}
	if s.phases && !er.Phases.Empty() {
		s.ph = er.Phases
		res.Phases = &s.ph
	}
}

// runPost invokes the optional post hook, letting its error stand when
// the solve itself produced none.
func (s *engineSolver) runPost(c *config, a Operator, res *Result, err error) error {
	if s.post == nil {
		return err
	}
	if perr := s.post(s, c, a, res); perr != nil && err == nil {
		return perr
	}
	return err
}

func (s *engineSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight(s.name); err != nil {
		return nil, err
	}
	var canceled, stopped bool
	err := s.solve(a, b, c, c.callback(&canceled, &stopped))
	res := &Result{}
	s.fill(res)
	err = s.runPost(c, a, res, err)
	return finish(c, res, err, canceled, stopped)
}

// solveInto is the Session zero-allocation fast path, uniform across
// every engine-backed method: a pre-resolved config, a prebuilt
// callback, and a caller-owned Result, so a warm repeated solve
// allocates nothing.
func (s *engineSolver) solveInto(res *Result, a Operator, b []float64, c *config, cb func(int, float64) bool) (bool, error) {
	err := s.solve(a, b, c, cb)
	s.fill(res)
	err = s.runPost(c, a, res, err)
	return true, err
}

// registerEngine registers one engine kernel under the generic adapter
// with the conservative zero Caps (square SPD operators only); the
// general-operator methods register through registerEngineCaps.
func registerEngine(name, summary string, kf func() engine.Kernel, syncs func(*engine.Result) int, drift bool) {
	registerEngineCaps(name, summary, Caps{}, kf, syncs, drift)
}

func init() {
	// The classic iterations block on every inner product: each one is
	// a completed global reduction on the machine model.
	blocking := func(er *engine.Result) int { return er.Stats.InnerProducts }

	registerEngine("cg", "standard Hestenes-Stiefel CG (paper §2), workspace-backed",
		krylov.NewCGKernel, blocking, false)
	registerEngine("cgfused", "standard CG with the fused-kernel update path, workspace-backed",
		krylov.NewCGFusedKernel, blocking, false)
	registerEngine("pcg", "preconditioned CG (WithPreconditioner; identity default), workspace-backed",
		krylov.NewPCGKernel, blocking, false)
	registerEngine("cr", "conjugate residuals (minimizes ||b - A x||), workspace-backed",
		krylov.NewCRKernel, blocking, false)
	registerEngine("sd", "steepest descent with exact line search (baseline), workspace-backed",
		krylov.NewSDKernel, blocking, false)
	registerEngine("minres", "MINRES (symmetric indefinite baseline), workspace-backed",
		krylov.NewMINRESKernel, blocking, false)

	// The pipelined successors wait on one (pipecg) or two (gropp)
	// overlapped reductions per iteration, plus start-up.
	registerEngine("pipecg", "Ghysels-Vanroose pipelined CG (one fused reduction/iter), workspace-backed",
		pipecg.NewGVKernel, func(er *engine.Result) int { return er.Iterations + 1 }, false)
	registerEngine("gropp", "Gropp asynchronous CG (two overlapped reductions/iter), workspace-backed",
		pipecg.NewGroppKernel, func(er *engine.Result) int { return 2*er.Iterations + 1 }, false)

	// The per-iteration window tops ride the k-deep pipeline; the
	// schedule only blocks at start-up and at each stabilization or
	// drift-fallback event.
	registerEngine("vrcg", "the paper's restructured look-ahead CG (WithLookahead k, §5 recurrences), workspace-backed",
		core.NewKernel, func(er *engine.Result) int { return 1 + er.Reanchors + er.Replacements + er.FallbackDots }, true)

	// One batched Gram reduction plus one residual resync per block,
	// after the start-up (r,r).
	registerEngine("sstep", "Chronopoulos-Gear s-step CG (WithBlockSize s, batched reductions), workspace-backed",
		sstep.NewKernel, func(er *engine.Result) int { return 2*er.Blocks + 1 }, false)
}
