package solve

import (
	"fmt"
)

// preflight rejects a solve whose context is already dead, before any
// work is done.
func (c *config) preflight(name string) error {
	if c.ctx != nil && c.ctx.Err() != nil {
		return fmt.Errorf("solve: %s not started: %w", name, c.ctx.Err())
	}
	return nil
}

// finish applies the shared exit policy every adapter funnels through:
// internal errors pass straight out (they already wrap a sentinel from
// errors.go), cancellation wraps ctx.Err(), an un-converged run that
// was not deliberately stopped by a monitor wraps ErrNotConverged, and
// a monitor stop is a clean return. res is always returned, so callers
// inspecting a wrapped error still see the partial outcome.
func finish(c *config, res *Result, err error, canceled, stopped bool) (*Result, error) {
	if err != nil {
		return res, err
	}
	if res.Converged {
		// A cancellation that lands on the converging iteration does
		// not demote the solve: the solution is done.
		return res, nil
	}
	if canceled {
		return res, fmt.Errorf("solve: %s canceled at iteration %d: %w",
			res.Method, res.Iterations, c.ctx.Err())
	}
	if !stopped {
		return res, fmt.Errorf("solve: %s stopped after %d iterations with residual %.3e: %w",
			res.Method, res.Iterations, res.ResidualNorm, ErrNotConverged)
	}
	return res, nil
}
