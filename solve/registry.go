package solve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds a fresh Solver for one registered method.
type Factory func() Solver

// Caps declares what operator shapes a method accepts, so validation
// layers (CLI symmetry gates, server per-method shape checks) key off
// the registry instead of hard-coding method lists. The zero value is
// the historical contract — square symmetric positive definite only —
// which is correct for every classic method.
type Caps struct {
	// Nonsymmetric: the method does not require a symmetric (or SPD)
	// operator (bicgstab, gmres, cgnr, lsqr).
	Nonsymmetric bool
	// Rectangular: the method accepts rows != cols operators and solves
	// the least-squares problem min ||b - A x|| (cgnr, lsqr). Implies
	// the operator must provide transpose products.
	Rectangular bool
	// Block: the method iterates multiple right-hand sides through one
	// shared Krylov space per solve (blockcg, blockpcg); Batch routes
	// shared-operator multi-RHS workloads through these methods.
	Block bool
}

type entry struct {
	summary string
	factory Factory
	caps    Caps
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a method to the registry under name, with a one-line
// summary for CLI help text. It panics on a duplicate or empty name —
// registration is an init-time act, and a collision is a programming
// error. External packages may register their own methods; everything
// in this repository registers itself when the solve package loads.
// Methods registered this way declare zero Caps (square SPD operators
// only); use RegisterCaps to declare broader operator support.
func Register(name, summary string, f Factory) {
	RegisterCaps(name, summary, Caps{}, f)
}

// RegisterCaps is Register with an explicit operator-capability
// declaration.
func RegisterCaps(name, summary string, caps Caps, f Factory) {
	if name == "" || f == nil {
		panic("solve: Register requires a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solve: method %q registered twice", name))
	}
	registry[name] = entry{summary: summary, factory: f, caps: caps}
}

// MethodCaps returns the operator capabilities a method was registered
// with (the zero Caps for unknown names, the conservative answer).
func MethodCaps(name string) Caps {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].caps
}

// Methods returns the registered method names, sorted. CLIs derive
// their flag vocabulary from this so adding a solver never touches
// them.
func Methods() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Summary returns the one-line description a method was registered
// with ("" for unknown names).
func Summary(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].summary
}

// Usage returns the method names joined by "|" — ready-made flag usage
// text.
func Usage() string { return strings.Join(Methods(), "|") }

// Describe returns a multi-line listing of every method and its
// summary, for CLI help output.
func Describe() string {
	var b strings.Builder
	for _, name := range Methods() {
		fmt.Fprintf(&b, "  %-12s %s\n", name, Summary(name))
	}
	return b.String()
}

// New builds a fresh Solver for the named method, or an error wrapping
// ErrUnknownMethod listing what is available.
func New(name string) (Solver, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownMethod, name, Usage())
	}
	return e.factory(), nil
}

// MustNew is New panicking on error, for registrations known at
// compile time.
func MustNew(name string) Solver {
	s, err := New(name)
	if err != nil {
		panic(err)
	}
	return s
}
