package solve

import (
	"vrcg/internal/engine"
	"vrcg/internal/gkrylov"
)

// registerEngineCaps registers one engine kernel under the generic
// adapter with an explicit operator-capability declaration — the
// general-operator tier's entry point (registerEngine delegates here
// with zero Caps).
func registerEngineCaps(name, summary string, caps Caps, kf func() engine.Kernel, syncs func(*engine.Result) int, drift bool) {
	RegisterCaps(name, summary, caps, func() Solver {
		return &engineSolver{name: name, kernel: kf(), syncs: syncs, drift: drift}
	})
}

func init() {
	// Like the classic iterations, every inner product in these methods
	// is a completed global reduction on the machine model.
	blocking := func(er *engine.Result) int { return er.Stats.InnerProducts }

	nonsym := Caps{Nonsymmetric: true}
	rect := Caps{Nonsymmetric: true, Rectangular: true}

	registerEngineCaps("bicgstab", "BiCGStab for square nonsymmetric systems (van der Vorst), workspace-backed",
		nonsym, gkrylov.NewBiCGStabKernel, blocking, false)
	registerEngineCaps("gmres", "restarted GMRES(m) for square nonsymmetric systems (WithRestart m), workspace-backed",
		nonsym, gkrylov.NewGMRESKernel, blocking, false)
	registerEngineCaps("cgnr", "CG on the normal equations: least-squares min ||b-Ax|| over rectangular operators, workspace-backed",
		rect, gkrylov.NewCGNRKernel, blocking, false)
	registerEngineCaps("lsqr", "LSQR (Paige-Saunders bidiagonalization): stable least-squares over rectangular operators, workspace-backed",
		rect, gkrylov.NewLSQRKernel, blocking, false)
}
