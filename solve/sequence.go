package solve

import (
	"fmt"

	"vrcg/sparse"
)

// Sequence drives a chain of closely-related solves — the shape of an
// outer optimization loop like point-to-plane ICP, where every outer
// iteration produces a slightly different operator/rhs pair whose
// solution lies near the previous one. It wraps a Session and adds the
// three things that shape needs:
//
//   - Warm starting: each step begins from the previous step's solution
//     (held in a sequence-owned buffer installed once as WithX0), so a
//     converging outer loop sees strictly shrinking iteration counts.
//   - Cheap operator updates: Rescale and UpdateValues mutate the
//     operator's values in place (structure unchanged), so the session's
//     pooled workspace — keyed on order and pool — survives the update
//     instead of being torn down per outer iteration.
//   - Visibility: per-step iteration counts (Steps) make the warm-start
//     payoff measurable, which is what the server's /v1/sequence
//     endpoint reports per step.
//
// Like Session, a Sequence is not safe for concurrent use, and the
// Result returned by Step is valid only until the next Step.
type Sequence struct {
	sess  *Session
	x0    []float64 // persistent warm-start buffer, column-space length
	warm  bool
	steps []int
}

// NewSequence prepares a warm-started solve sequence running the named
// method against a. The first Step is a cold start from zero; every
// later Step starts from the previous solution. Extra options merge
// before the sequence's own WithX0 (a caller-supplied WithX0 would be
// overridden — the warm-start buffer is the point of the type).
func NewSequence(method string, a Operator, opts ...Option) (*Sequence, error) {
	_, cols := sparse.Dims(asMatrix(a))
	q := &Sequence{x0: make([]float64, cols)}
	sess, err := NewSession(method, a, append(append([]Option(nil), opts...), WithX0(q.x0))...)
	if err != nil {
		return nil, err
	}
	q.sess = sess
	return q, nil
}

// Method returns the registry name the sequence was prepared for.
func (q *Sequence) Method() string { return q.sess.Method() }

// Operator returns the prepared operator.
func (q *Sequence) Operator() Operator { return q.sess.Operator() }

// Warm reports whether the next Step starts from a previous solution.
func (q *Sequence) Warm() bool { return q.warm }

// Steps returns the iteration count of every step taken so far (the
// slice is sequence-owned; copy to retain). Steps[0] is the cold start.
func (q *Sequence) Steps() []int { return q.steps }

// Step solves the current system for b, starting from the previous
// step's solution, and records the iteration count. The returned Result
// follows Session.Solve semantics (valid until the next Step; a partial
// result accompanies ErrNotConverged). A partial solution still seeds
// the next warm start — in an outer loop that is exactly the iterate to
// continue from.
func (q *Sequence) Step(b []float64) (*Result, error) {
	res, err := q.sess.Solve(b)
	if res != nil {
		q.steps = append(q.steps, res.Iterations)
		if len(res.X) == len(q.x0) {
			copy(q.x0, res.X)
			q.warm = true
		}
	}
	return res, err
}

// Reset clears the warm start, so the next Step is cold again. Step
// history is retained.
func (q *Sequence) Reset() {
	for i := range q.x0 {
		q.x0[i] = 0
	}
	q.warm = false
}

// rescaler and valueSetter are the in-place operator-update capabilities
// Rescale and UpdateValues need; sparse.CSR and sparse.Rect provide
// both.
type rescaler interface{ Scale(s float64) }
type valueSetter interface{ SetValues(vals []float64) }

// Rescale multiplies every stored operator value by s in place — the
// cheapest operator update an outer loop performs (a trust-region or
// damping change). The session's workspace and pooled state survive;
// only value-derived caches on the operator itself are invalidated. The
// operator must expose Scale (sparse.CSR and sparse.Rect do); anything
// else fails with ErrUnsupportedOperator.
func (q *Sequence) Rescale(s float64) error {
	r, ok := q.sess.Operator().(rescaler)
	if !ok {
		return fmt.Errorf("solve: sequence operator %T cannot rescale values in place: %w",
			q.sess.Operator(), ErrUnsupportedOperator)
	}
	r.Scale(s)
	return nil
}

// UpdateValues replaces the operator's stored values in place (sparsity
// structure unchanged) — the per-outer-iteration operator delta of a
// registration loop, without tearing down the session workspace. vals
// must have the operator's NNZ length. The operator must expose
// SetValues (sparse.CSR and sparse.Rect do).
func (q *Sequence) UpdateValues(vals []float64) error {
	vs, ok := q.sess.Operator().(valueSetter)
	if !ok {
		return fmt.Errorf("solve: sequence operator %T cannot update values in place: %w",
			q.sess.Operator(), ErrUnsupportedOperator)
	}
	if sp, ok := q.sess.Operator().(interface{ NNZ() int }); ok && len(vals) != sp.NNZ() {
		return fmt.Errorf("solve: sequence value update has %d values but the operator stores %d: %w",
			len(vals), sp.NNZ(), ErrDim)
	}
	vs.SetValues(vals)
	return nil
}
