package solve

import (
	"fmt"

	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// parcgSolver adapts the distributed programs of internal/parcg: the
// algorithms run with real vector data on a simulated P-processor
// machine whose every operation charges its parallel-time cost, so one
// Solve yields both the answer and the paper's timing story
// (Result.Clocks, Result.PerIterTime, Result.Machine).
//
// The operator must be a *sparse.CSR — its sparsity defines the row-block
// partition and halo. WithProcessors or WithMachineConfig size the
// machine; "parcg" additionally takes WithLookahead (the anchor
// pipeline depth k >= 1), WithBlocking (s-step anchor semantics), and
// WithSpectralScaling.
type parcgSolver struct {
	name string
	run  func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist, c *config) (*parcg.Result, error)
}

func (s *parcgSolver) Name() string { return s.name }

func (s *parcgSolver) Solve(a Operator, b []float64, opts ...Option) (*Result, error) {
	c := newConfig(opts)
	if err := c.preflight(s.name); err != nil {
		return nil, err
	}
	csr, ok := a.(*sparse.CSR)
	if !ok {
		return nil, fmt.Errorf("solve: %s partitions by sparsity and needs a *sparse.CSR operator, got %T: %w",
			s.name, a, ErrUnsupportedOperator)
	}
	if a.Dim() != len(b) {
		return nil, fmt.Errorf("solve: matrix order %d but rhs length %d: %w", a.Dim(), len(b), ErrDim)
	}
	cfg := c.machineCfg
	if !c.machineSet {
		cfg = machine.DefaultConfig(c.procs)
	}
	if cfg.P < 1 || cfg.P > a.Dim() {
		return nil, fmt.Errorf("solve: %s with P=%d processors for an order-%d system: %w",
			s.name, cfg.P, a.Dim(), ErrBadOption)
	}

	m := machine.New(cfg)
	dm := parcg.NewDistMatrix(csr, cfg.P)
	pres, err := s.run(m, dm, parcg.Scatter(b, cfg.P), c)
	if pres == nil {
		return nil, err
	}
	res := &Result{
		Method:       s.name,
		X:            pres.X,
		Iterations:   pres.Iterations,
		Converged:    pres.Converged,
		ResidualNorm: pres.ResidualNorm,
		Clocks:       pres.Clocks,
		Machine:      &pres.Machine,
	}
	res.Stats.Flops = pres.Machine.Flops
	if pres.X != nil {
		// True residual of the gathered solution, computed serially
		// (diagnostic only: charged to no processor).
		tr := vec.New(a.Dim())
		csr.MulVec(tr, pres.X)
		vec.Sub(tr, b, tr)
		res.TrueResidualNorm = vec.Norm2(tr)
	}
	switch s.name {
	case "parcg-cg":
		// Two blocking allreduce fan-ins per iteration — the c*log(N)
		// dependency the paper sets out to remove.
		res.Syncs = 2*pres.Iterations + 1
	case "parcg-pipe":
		// One in-flight reduction waited on per iteration.
		res.Syncs = pres.Iterations + 1
	default:
		// The anchors ride k iterations behind the pipeline; only
		// start-up and the final convergence check block — unless
		// WithBlocking(true) restores the s-step stall at each anchor.
		res.Syncs = 2
		if c.blocking && c.lookahead > 0 {
			res.Syncs += pres.Iterations / c.lookahead
		}
	}
	return finish(c, res, err, false, false)
}

func init() {
	Register("parcg", "the paper's VRCG as a distributed program on the simulated machine (pipelined anchors)",
		func() Solver {
			return &parcgSolver{name: "parcg", run: func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist, c *config) (*parcg.Result, error) {
				return parcg.VRCG(m, dm, b, parcg.VROptions{
					Options:   parcg.Options{Tol: c.tol, MaxIter: c.maxIter},
					K:         c.lookahead,
					Blocking:  c.blocking,
					NoScaling: c.noScaling,
				})
			}}
		})
	Register("parcg-cg", "standard CG as a distributed program (two blocking reductions/iter)",
		func() Solver {
			return &parcgSolver{name: "parcg-cg", run: func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist, c *config) (*parcg.Result, error) {
				return parcg.CG(m, dm, b, parcg.Options{Tol: c.tol, MaxIter: c.maxIter})
			}}
		})
	Register("parcg-pipe", "Ghysels-Vanroose pipelined CG as a distributed program (one overlapped reduction/iter)",
		func() Solver {
			return &parcgSolver{name: "parcg-pipe", run: func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist, c *config) (*parcg.Result, error) {
				return parcg.PipeCG(m, dm, b, parcg.Options{Tol: c.tol, MaxIter: c.maxIter})
			}}
		})
}
