package solve

import (
	"fmt"

	"vrcg/internal/engine"
	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/sparse"
)

// The parcg family — the paper's three schedules, now real-parallel
// engine kernels (internal/parcg/kernels.go): per-iteration reductions
// run on a background goroutine overlapped with the SpMV they hide
// behind, with measured phase latencies on Result.Phases. Registration
// goes through the generic engine adapter, so the family shares the
// Session/Batch zero-allocation fast paths with every other method;
// this file is only the options shim plus the instrumented machine
// mode.
//
// Machine mode: WithProcessors / WithMachineConfig layer the retired
// simulated-machine cost model over the real solve as a monitor — the
// adapter replays the machine solvers' exact charge sequence for the
// observed iteration count (parcg.Replay), filling Result.Clocks and
// Result.Machine. The replay needs the sparsity partition, so it
// requires a *sparse.CSR operator; the real solve itself takes any
// Operator.

// parcgPost is the shared post hook: machine-mode replay and the
// blocking-anchor sync count.
func parcgPost(s *engineSolver, c *config, a Operator, res *Result) error {
	if s.name == "parcg" && c.blocking {
		// s-step anchor semantics: each promoted batch is waited for at
		// issue instead of riding the pipeline.
		res.Syncs += s.er.Reanchors
	}
	if !c.machineSet && !c.procsSet {
		return nil
	}
	csr, ok := a.(*sparse.CSR)
	if !ok {
		return fmt.Errorf("solve: %s machine mode partitions by sparsity and needs a *sparse.CSR operator, got %T: %w",
			s.name, a, ErrUnsupportedOperator)
	}
	cfg := c.machineCfg
	if !c.machineSet {
		cfg = machine.DefaultConfig(c.procs)
	}
	if cfg.P < 1 || cfg.P > a.Dim() {
		return fmt.Errorf("solve: %s with P=%d processors for an order-%d system: %w",
			s.name, cfg.P, a.Dim(), ErrBadOption)
	}
	parcg.Replay(cfg, csr, s.name, c.blocking, &s.er)
	res.Clocks = s.er.Clocks
	res.Machine = &s.er.Machine
	return nil
}

// registerParcg registers one parcg kernel with phases exposure and the
// machine-mode post hook.
func registerParcg(name, summary string, kf func() engine.Kernel, syncs func(*engine.Result) int, drift bool) {
	Register(name, summary, func() Solver {
		return &engineSolver{name: name, kernel: kf(), syncs: syncs, drift: drift,
			phases: true, post: parcgPost}
	})
}

func init() {
	registerParcg("parcg", "the paper's VRCG with real-parallel pipelined anchors (WithLookahead k), workspace-backed",
		parcg.NewLookaheadKernel,
		// The anchors ride k iterations behind the pipeline; only
		// start-up, the final convergence check, and drift fallbacks
		// block (WithBlocking adds a stall per anchor; see parcgPost).
		func(er *engine.Result) int { return 2 + er.FallbackDots }, true)
	registerParcg("parcg-cg", "standard CG with two real blocking reductions per iteration (the paper's baseline), workspace-backed",
		parcg.NewCGKernel,
		// Two blocking reduction waits per iteration — the c*log(N)
		// dependency the paper sets out to remove.
		func(er *engine.Result) int { return 2*er.Iterations + 1 }, false)
	registerParcg("parcg-pipe", "Ghysels-Vanroose pipelined CG with the reduction genuinely in flight behind the matvec, workspace-backed",
		parcg.NewPipeKernel,
		// One in-flight reduction waited on per iteration.
		func(er *engine.Result) int { return er.Iterations + 1 }, false)
}
