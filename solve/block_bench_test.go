package solve_test

import (
	"fmt"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// benchRHSBlock builds nrhs distinct full-rank right-hand sides via an
// LCG so block benchmarks are not flattered by linearly dependent
// columns (a rank-deficient block deflates to a much cheaper solve).
func benchRHSBlock(n, nrhs int) [][]float64 {
	B := make([][]float64, nrhs)
	state := uint64(88172645463325252)
	for k := range B {
		col := make([]float64, n)
		for i := range col {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			col[i] = 1 + float64(state%1000)/1000
		}
		B[k] = col
	}
	return B
}

// BenchmarkBatchBlockVsIndependent is the measurement behind the block
// route's gate: one Batch call on a pooled session (which takes the
// blockcg route at this width) against the same columns solved one by
// one on an identically pooled session. The block iteration spends
// O(width·n) extra vector flops per column to save all but O(1)
// reduction barriers per iteration, so it pays off only where
// dispatches are the bottleneck; measured serially (no pool, route
// gated off) the block kernel is 1.6-2.2x SLOWER than warm independent
// solves at widths 2-8 for n = 256..9216 and 5..32 nnz/row, which is
// why Batch keeps serial kernels on the generic fan-out.
func BenchmarkBatchBlockVsIndependent(b *testing.B) {
	for _, grid := range []int{16, 48, 96} {
		a := sparse.Poisson2D(grid)
		n := a.Dim()
		B := benchRHSBlock(n, 8)
		b.Run(fmt.Sprintf("block/n%d", n), func(b *testing.B) {
			pool := sparse.NewPool(2)
			defer pool.Close()
			s, err := solve.NewSession("cg", a, solve.WithTol(1e-10), solve.WithPool(pool))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveMany(B); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(B))*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
		b.Run(fmt.Sprintf("indep/n%d", n), func(b *testing.B) {
			pool := sparse.NewPool(2)
			defer pool.Close()
			s, err := solve.NewSession("cg", a, solve.WithTol(1e-10), solve.WithPool(pool))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, col := range B {
					if _, err := s.Solve(col); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(B))*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}
