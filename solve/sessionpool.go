package solve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SessionPool is a concurrency-safe pool of warm Sessions for one
// (method, operator, base options) triple — the serving-layer
// counterpart of Session. A Session is deliberately single-threaded (it
// owns a reusable workspace and Result); a network server handling
// concurrent requests against one operator therefore needs one session
// per in-flight solve, but creating them per request would forfeit the
// warm-workspace zero-allocation regime. SessionPool keeps finished
// sessions on a free list: Acquire pops a warm one (or forks a new one
// when the list is empty), and Release returns it.
//
// Each pooled session carries a swappable context, so per-request
// deadlines work WITHOUT re-resolving options: Acquire installs the
// request context into the session's prebuilt cancellation hook, and
// the warm Solve fast path (zero heap allocations for every
// engine-backed method) is preserved.
//
// The pool never shrinks; its size converges to the peak number of
// concurrent solves, which is what a serving layer wants. Hit/miss
// counters (Stats) expose how warm the pool is running.
type SessionPool struct {
	method string
	op     Operator
	opts   []Option

	mu   sync.Mutex
	free []*PooledSession

	hits   atomic.Uint64
	misses atomic.Uint64
	size   atomic.Int64
}

// NewSessionPool builds a pool for the named method against a. The base
// options apply to every pooled session; options needing live per-call
// objects are installed by Acquire (context) or passed to Solve (at the
// cost of the ordinary parsing path). One session is constructed
// eagerly so configuration errors surface here, not on the first
// request.
func NewSessionPool(method string, a Operator, opts ...Option) (*SessionPool, error) {
	p := &SessionPool{
		method: method,
		op:     a,
		opts:   append([]Option(nil), opts...),
	}
	ps, err := p.newSession()
	if err != nil {
		return nil, err
	}
	p.free = append(p.free, ps)
	return p, nil
}

func (p *SessionPool) newSession() (*PooledSession, error) {
	sctx := &swapContext{}
	opts := make([]Option, 0, len(p.opts)+1)
	opts = append(opts, p.opts...)
	opts = append(opts, WithContext(sctx))
	sess, err := NewSession(p.method, p.op, opts...)
	if err != nil {
		return nil, err
	}
	p.size.Add(1)
	return &PooledSession{sess: sess, pool: p, sctx: sctx}, nil
}

// Method returns the registry name the pool serves.
func (p *SessionPool) Method() string { return p.method }

// Operator returns the operator the pool's sessions are prepared
// against.
func (p *SessionPool) Operator() Operator { return p.op }

// Acquire returns a session ready to solve under ctx (nil means no
// deadline): a warm one from the free list when available, a freshly
// forked one otherwise. The caller must Release it when done with the
// returned Results — a released session's Result and X are reused by
// the next acquirer.
func (p *SessionPool) Acquire(ctx context.Context) (*PooledSession, error) {
	var ps *PooledSession
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ps = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if ps != nil {
		p.hits.Add(1)
	} else {
		p.misses.Add(1)
		var err error
		ps, err = p.newSession()
		if err != nil {
			return nil, err
		}
	}
	ps.sctx.set(ctx)
	return ps, nil
}

// SessionPoolStats is a snapshot of pool effectiveness counters.
type SessionPoolStats struct {
	// Hits counts Acquires served from the free list (warm sessions);
	// Misses counts Acquires that had to construct a new session.
	Hits, Misses uint64
	// Size is the number of sessions the pool has ever constructed
	// (free + in flight); Idle is the current free-list length.
	Size, Idle int
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first Acquire.
func (s SessionPoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the pool counters.
func (p *SessionPool) Stats() SessionPoolStats {
	p.mu.Lock()
	idle := len(p.free)
	p.mu.Unlock()
	return SessionPoolStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Size:   int(p.size.Load()),
		Idle:   idle,
	}
}

// PooledSession is a Session checked out of a SessionPool, bound to the
// context given to Acquire. All solve results are valid only until
// Release.
type PooledSession struct {
	sess *Session
	pool *SessionPool
	sctx *swapContext
}

// Session exposes the underlying prepared session.
func (ps *PooledSession) Session() *Session { return ps.sess }

// Solve runs the prepared method on b under the acquired context; see
// Session.Solve. The Result is valid until Release.
func (ps *PooledSession) Solve(b []float64, extra ...Option) (*Result, error) {
	return ps.sess.Solve(b, extra...)
}

// SolveMany fans B out through Batch under the acquired context; see
// Batch. Unlike Solve, the returned Results own their storage.
func (ps *PooledSession) SolveMany(B [][]float64, extra ...Option) ([]Result, error) {
	return ps.sess.SolveMany(B, extra...)
}

// Release clears the request context and returns the session to the
// pool. The session (and any Result it produced) must not be used
// afterward.
func (ps *PooledSession) Release() {
	ps.sctx.set(nil)
	ps.pool.mu.Lock()
	ps.pool.free = append(ps.pool.free, ps)
	ps.pool.mu.Unlock()
}

// swapContext is a context.Context whose inner context can be replaced
// between solves. Sessions capture their context at construction; the
// pool instead captures one swapContext per session and points it at
// each request's context in turn, preserving the prebuilt zero-alloc
// callback across requests with different deadlines.
type swapContext struct {
	inner atomic.Pointer[contextBox]
	// box is the one reused container: set is only ever called by the
	// session's current owner (Acquire before handing it out, Release
	// after the last read), so mutating the box between checkouts is
	// unobservable and the per-request allocation disappears.
	box contextBox
}

// contextBox lifts the Context interface value into a concrete type
// atomic.Pointer can hold.
type contextBox struct{ ctx context.Context }

func (s *swapContext) set(ctx context.Context) {
	if ctx == nil {
		s.inner.Store(nil)
		s.box.ctx = nil // drop the request context reference
		return
	}
	s.box.ctx = ctx
	s.inner.Store(&s.box)
}

func (s *swapContext) current() context.Context {
	if b := s.inner.Load(); b != nil {
		return b.ctx
	}
	return context.Background()
}

// Deadline implements context.Context.
func (s *swapContext) Deadline() (time.Time, bool) { return s.current().Deadline() }

// Done implements context.Context.
func (s *swapContext) Done() <-chan struct{} { return s.current().Done() }

// Err implements context.Context.
func (s *swapContext) Err() error { return s.current().Err() }

// Value implements context.Context.
func (s *swapContext) Value(key any) any { return s.current().Value(key) }
