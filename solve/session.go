package solve

import (
	"fmt"
)

// Session is a prepared (method, operator, options) triple, the
// amortized serving path for repeated solves against one system: the
// method is resolved, the options are parsed, and the solver workspace
// is owned once, so Session.Solve is cheap to call per right-hand side.
// For every engine-backed method (cg, cgfused, pcg, cr, sd, minres,
// vrcg, pipecg, gropp, sstep) a steady-state Session.Solve performs
// zero heap allocations — the Result itself is session-owned and
// reused.
//
// Consequently a Session is NOT safe for concurrent Solve calls, and
// both Result.X and the *Result returned by Solve are valid only until
// the next Solve on the same Session (Fork sessions for concurrency, or
// use Batch, which forks internally).
type Session struct {
	method string
	op     Operator
	opts   []Option
	cfg    *config
	solver Solver

	// res is the reused result of the zero-allocation fast path;
	// canceled/stopped are the session-owned callback flags (fields, not
	// stack variables, so the prebuilt callback closure never forces a
	// per-solve heap allocation).
	res      Result
	canceled bool
	stopped  bool
	cb       func(iter int, resNorm float64) bool
}

// intoSolver is the optional fast path a registered solver can offer a
// Session: run with a pre-resolved config and prebuilt callback,
// writing into a caller-owned Result. Returning handled == false means
// the solver has no fast path for this configuration and the Session
// falls back to the ordinary Solve.
type intoSolver interface {
	solveInto(res *Result, a Operator, b []float64, c *config, cb func(int, float64) bool) (handled bool, err error)
}

// NewSession prepares a session running the named method against a with
// the given base options. The options are resolved once; per-call
// extras can still be passed to Session.Solve (at the cost of the
// ordinary option-parsing path).
func NewSession(method string, a Operator, opts ...Option) (*Session, error) {
	if a == nil || a.Dim() <= 0 {
		return nil, fmt.Errorf("solve: NewSession requires an operator with positive order: %w", ErrBadOption)
	}
	solver, err := New(method)
	if err != nil {
		return nil, err
	}
	s := &Session{
		method: method,
		op:     a,
		opts:   append([]Option(nil), opts...),
		solver: solver,
	}
	s.cfg = newConfig(s.opts)
	s.cb = s.cfg.callback(&s.canceled, &s.stopped)
	return s, nil
}

// Method returns the registry name the session was prepared for.
func (s *Session) Method() string { return s.method }

// Operator returns the prepared operator.
func (s *Session) Operator() Operator { return s.op }

// Dim returns the operator order — the length every right-hand side
// must have.
func (s *Session) Dim() int { return s.op.Dim() }

// Fork returns an independent session with the same method, operator,
// and base options but its own solver and workspace, for use from
// another goroutine. The operator is shared (operators are read-only
// during solves); everything mutable is per-fork.
func (s *Session) Fork() (*Session, error) {
	return NewSession(s.method, s.op, s.opts...)
}

// Solve runs the prepared method on A x = b. With no extra options the
// call reuses the session's resolved configuration and, for the
// workspace-backed methods, its Result — zero heap allocations in
// steady state. Extra options are merged after the base options through
// the ordinary parsing path.
//
// The returned Result (and its X) is valid until the next Solve on this
// session; clone what must outlive it.
func (s *Session) Solve(b []float64, extra ...Option) (*Result, error) {
	if len(b) != s.op.Dim() {
		return nil, fmt.Errorf("solve: session operator order %d but rhs length %d: %w",
			s.op.Dim(), len(b), ErrDim)
	}
	if len(extra) > 0 {
		all := make([]Option, 0, len(s.opts)+len(extra))
		all = append(all, s.opts...)
		all = append(all, extra...)
		return s.solver.Solve(s.op, b, all...)
	}
	if is, ok := s.solver.(intoSolver); ok {
		if err := s.cfg.preflight(s.method); err != nil {
			return nil, err
		}
		s.canceled, s.stopped = false, false
		if handled, err := is.solveInto(&s.res, s.op, b, s.cfg, s.cb); handled {
			return finish(s.cfg, &s.res, err, s.canceled, s.stopped)
		}
	}
	return s.solver.Solve(s.op, b, s.opts...)
}
