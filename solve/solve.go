// Package solve is the single front door to every conjugate gradient
// variant in this repository. It presents one Solver interface, one
// canonical Result, and a method registry, so the paper's comparison —
// how the five inner-product data-dependency strategies trade blocking
// reductions for pipeline depth — is a one-line method swap:
//
//	s, err := solve.New("vrcg")
//	res, err := s.Solve(a, b, solve.WithTol(1e-10), solve.WithLookahead(4))
//
// Operators come from the public sparse package (CSR/DIA/stencil
// matrices, MatrixMarket I/O, Poisson generators) or from any type
// implementing the two-method Operator interface on plain []float64.
// For repeated solves against one operator, prepare a Session once and
// call Session.Solve per right-hand side; for many right-hand sides,
// Batch fans them out across workers:
//
//	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-10))
//	res, err := sess.Solve(b)
//	results, err := solve.Batch(sess, manyRHS)
//
// Registered methods (solve.Methods() lists them at runtime):
//
//   - "cg", "cgfused": standard Hestenes–Stiefel CG (paper §2), plain
//     and fused-kernel forms
//   - "pcg": preconditioned CG (pass WithPreconditioner)
//   - "cr", "sd", "minres": conjugate residuals, steepest descent,
//     MINRES baselines
//   - "vrcg": the paper's restructured look-ahead CG (WithLookahead,
//     WithReanchorEvery, ... control the §5 recurrences)
//   - "pipecg", "gropp": Ghysels–Vanroose and Gropp pipelined CG, the
//     production successors
//   - "sstep": Chronopoulos–Gear s-step CG (WithBlockSize)
//   - "parcg", "parcg-cg", "parcg-pipe": the look-ahead, blocking, and
//     pipelined schedules as real-parallel kernels — inner-product
//     reductions overlapped on background goroutines, per-iteration
//     phase latencies on Result.Phases, and a divergence guard that
//     restarts the look-ahead recurrences from the true residual when
//     they drift (periodically audited, best iterate retained);
//     WithProcessors/WithMachineConfig additionally replay the
//     simulated-machine cost model over the solve, yielding
//     parallel-time trajectories (Result.Clocks)
//
// Configuration is by functional options. Options irrelevant to a
// method are ignored (WithLookahead does nothing to "cg"), so one
// option set can drive a sweep over every method.
//
// Every shared-memory method runs on the unified iteration engine
// (internal/engine): one kernel contract, one driver loop, one
// reusable workspace per solver. Solvers built by New therefore own
// zero-allocation workspaces uniformly — repeated Solve calls against
// same-order operators allocate nothing in steady state for all of
// cg, cgfused, pcg, cr, sd, minres, vrcg, pipecg, gropp, and sstep,
// and a warm Session.Solve on any of them is 0 allocs/op.
package solve

// Operator is a square linear operator A, stated on plain []float64 so
// any package can implement it; all methods need only matrix–vector
// products, so operators may be matrix-free. Every matrix type in the
// public sparse package satisfies it. Operators that additionally
// implement sparse.PoolMulVec (CSR, DIA, and Stencil do) run their
// products on the worker pool when WithPool is given; the distributed
// methods ("parcg*") require a *sparse.CSR, whose sparsity defines the
// halo partition.
type Operator interface {
	// Dim returns the order n of the (n x n) operator.
	Dim() int
	// MulVec computes dst = A*x. dst and x must have length Dim and
	// must not alias each other.
	MulVec(dst, x []float64)
}

// Preconditioner applies z = M^{-1} r, stated on plain []float64.
// Implementations must be symmetric positive definite so preconditioned
// CG remains well defined. Every preconditioner in the public precond
// package satisfies it.
type Preconditioner interface {
	// Dim returns the operator order.
	Dim() int
	// Apply computes dst = M^{-1} r. dst and r must not alias.
	Apply(dst, r []float64)
}

// Monitor observes an iteration in flight. Observe is called after
// each iteration with the iteration number and the current (recursive)
// residual norm; returning false stops the solve early without error.
type Monitor interface {
	Observe(iter int, resNorm float64) bool
}

// MonitorFunc adapts a plain function to the Monitor interface.
type MonitorFunc func(iter int, resNorm float64) bool

// Observe implements Monitor.
func (f MonitorFunc) Observe(iter int, resNorm float64) bool { return f(iter, resNorm) }

// Solver is one registered method, ready to run. A Solver owns its
// workspace: repeated Solve calls against operators of the same order
// reuse it, so the workspace-backed methods allocate nothing in steady
// state. Consequently a Solver is NOT safe for concurrent Solve calls
// (use one Solver per goroutine; they are cheap), and Result.X may
// alias solver-owned storage — it is valid until the next Solve on the
// same Solver; Clone it to keep it longer.
type Solver interface {
	// Name returns the registry name the solver was built under.
	Name() string
	// Solve runs the method on A x = b. The returned Result is non-nil
	// whenever iterations were performed, even when err is non-nil
	// (ErrNotConverged in particular always carries a usable Result).
	Solve(a Operator, b []float64, opts ...Option) (*Result, error)
}
