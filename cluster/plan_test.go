package cluster

import (
	"math"
	"math/rand"
	"testing"

	"vrcg/sparse"
)

// planMulVec runs a full distributed matvec in-process: halo exchange
// simulated by direct gathers between shard vectors, then per-shard
// MulVec. It is the reference semantics every transport-level test
// builds on.
func planMulVec(t *testing.T, p *Plan, x []float64) []float64 {
	t.Helper()
	// Local iterate vectors [owned | halo].
	locals := make([][]float64, len(p.Shards))
	for s, sh := range p.Shards {
		locals[s] = make([]float64, sh.NLocal()+sh.HaloN)
		copy(locals[s], x[sh.Row0:sh.Row1])
	}
	// Halo exchange: for each sender, gather into each receiver.
	for s, sh := range p.Shards {
		for _, snd := range sh.Send {
			dst := p.Shards[snd.To]
			var rv *HaloRecv
			for i := range dst.Recv {
				if dst.Recv[i].From == s {
					rv = &dst.Recv[i]
				}
			}
			if rv == nil {
				t.Fatalf("shard %d sends to %d but %d has no matching recv", s, snd.To, snd.To)
			}
			if rv.Count != len(snd.Local) {
				t.Fatalf("send %d->%d: %d values for recv count %d", s, snd.To, len(snd.Local), rv.Count)
			}
			for i, li := range snd.Local {
				locals[snd.To][dst.NLocal()+rv.Off+i] = locals[s][li]
			}
		}
	}
	out := make([]float64, p.N)
	for s, sh := range p.Shards {
		dst := make([]float64, sh.NLocal())
		sh.MulVec(dst, locals[s])
		copy(out[sh.Row0:sh.Row1], dst)
	}
	return out
}

func checkPlanMatVec(t *testing.T, a *sparse.CSR, parts int) *Plan {
	t.Helper()
	p, err := BuildPlan(a, parts)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, a.Dim())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Dim())
	a.MulVec(want, x)
	got := planMulVec(t, p, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-13*(1+math.Abs(want[i])) {
			t.Fatalf("parts=%d row %d: got %g want %g", parts, i, got[i], want[i])
		}
	}
	return p
}

// TestPlanMatVecParity: distributed SpMV through the plan's halo
// schedule reproduces the serial product across shard counts and
// sparsity patterns.
func TestPlanMatVecParity(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"poisson2d": sparse.Poisson2D(17),
		"random":    sparse.RandomSPD(211, 6, 7),
		"tridiag":   sparse.TridiagToeplitz(100, 4, -1),
	}
	for name, a := range mats {
		for _, parts := range []int{1, 2, 3, 5, 8} {
			t.Run(name, func(t *testing.T) { checkPlanMatVec(t, a, parts) })
		}
	}
}

// TestPlanSingleShard: the degenerate one-worker fleet — no halo, no
// sends, and the shard matrix is the whole operator.
func TestPlanSingleShard(t *testing.T) {
	a := sparse.Poisson2D(9)
	p := checkPlanMatVec(t, a, 1)
	if len(p.Shards) != 1 {
		t.Fatalf("shards: %d", len(p.Shards))
	}
	sh := p.Shards[0]
	if sh.HaloN != 0 || len(sh.Recv) != 0 || len(sh.Send) != 0 {
		t.Fatalf("single shard has halo: halo=%d recv=%d send=%d", sh.HaloN, len(sh.Recv), len(sh.Send))
	}
	if sh.NLocal() != a.Dim() {
		t.Fatalf("single shard owns %d of %d rows", sh.NLocal(), a.Dim())
	}
}

// TestPlanEmptyRows: structurally empty rows partition and multiply
// cleanly (an empty row contributes a zero output and needs no halo).
func TestPlanEmptyRows(t *testing.T) {
	n := 60
	coo := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		if i%3 == 1 {
			continue // every third row empty
		}
		coo.Add(i, i, 4)
		if i+3 < n && (i+3)%3 != 1 {
			coo.AddSym(i, i+3, -1)
		}
	}
	a := coo.ToCSR()
	p := checkPlanMatVec(t, a, 4)
	for _, sh := range p.Shards {
		for i := 0; i < sh.NLocal(); i++ {
			if sh.RowPtr[i+1] < sh.RowPtr[i] {
				t.Fatalf("shard %d row %d negative width", sh.Index, i)
			}
		}
	}
}

// TestPlanDenseRowCrossesEveryShard: one row coupling to every column
// makes its shard's halo span all other shards — the worst-case
// neighbor fan-out still yields exactly one batch per neighbor.
func TestPlanDenseRowCrossesEveryShard(t *testing.T) {
	n := 64
	coo := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, float64(n)+2)
	}
	for j := 1; j < n; j++ {
		coo.AddSym(0, j, -1) // dense row 0 (and dense column 0)
	}
	a := coo.ToCSR()
	p := checkPlanMatVec(t, a, 4)

	sh0 := p.Shards[0] // owns row 0
	if want := len(p.Shards) - 1; len(sh0.Recv) != want {
		t.Fatalf("dense-row shard receives from %d neighbors, want %d", len(sh0.Recv), want)
	}
	// The halo must be every external column exactly once.
	if sh0.HaloN != n-sh0.NLocal() {
		t.Fatalf("dense-row halo %d, want %d", sh0.HaloN, n-sh0.NLocal())
	}
	// And every other shard sends to shard 0 exactly one batch.
	for _, sh := range p.Shards[1:] {
		sends := 0
		for _, s := range sh.Send {
			if s.To == 0 {
				sends++
			}
		}
		if sends != 1 {
			t.Fatalf("shard %d has %d batches to shard 0, want 1", sh.Index, sends)
		}
	}
}

// TestPlanMoreWorkersThanRows: requesting more shards than rows clamps
// to one shard per row instead of emitting empty shards.
func TestPlanMoreWorkersThanRows(t *testing.T) {
	a := sparse.TridiagToeplitz(5, 4, -1)
	p, err := BuildPlan(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) > 5 {
		t.Fatalf("%d shards for a 5-row operator", len(p.Shards))
	}
	for _, sh := range p.Shards {
		if sh.NLocal() < 1 {
			t.Fatalf("shard %d owns no rows", sh.Index)
		}
	}
	checkPlanMatVec(t, a, 16)
}

// TestDiagBlock: the extracted subdomain operator is exactly the owned
// square block, and block-Jacobi on it reproduces global Jacobi for the
// diagonal entries.
func TestDiagBlock(t *testing.T) {
	a := sparse.Poisson2D(12)
	p, err := BuildPlan(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range p.Shards {
		blk := sh.DiagBlock()
		if blk.Dim() != sh.NLocal() {
			t.Fatalf("block dim %d, want %d", blk.Dim(), sh.NLocal())
		}
		for i := 0; i < blk.Dim(); i++ {
			for j := 0; j < blk.Dim(); j++ {
				if got, want := blk.At(i, j), a.At(sh.Row0+i, sh.Row0+j); got != want {
					t.Fatalf("shard %d block (%d,%d): %g want %g", sh.Index, i, j, got, want)
				}
			}
		}
	}
}
