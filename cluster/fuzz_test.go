package cluster

import (
	"testing"

	"vrcg/cluster/wire"
)

// FuzzDecodeGeneral drives every cluster message decoder over arbitrary
// payloads. The decoders sit directly behind ReadFrame on both the
// coordinator and worker control loops, so a hostile or corrupt peer
// reaches them with any byte string it likes: they must never panic and
// must surface truncation through the decoder's sticky error, not
// through runtime faults. Length-prefix validation in wire.Dec is what
// keeps a forged element count from turning into a giant allocation.
func FuzzDecodeGeneral(f *testing.F) {
	// Well-formed seeds, one per message shape.
	hello := helloMsg{Version: wire.Version, WorkerID: "w0"}
	e := hello.encode()
	f.Add(byte(0), append([]byte(nil), e.B...))
	e.Release()

	// A place message with duplicate and out-of-range column indices:
	// decodable garbage the worker-side shard install must survive.
	place := placeMsg{
		OpID: "op", Gen: 3, NGlobal: 4, Row0: 0, Row1: 2,
		RowPtr: []int{0, 2, 4},
		Cols:   []int{1, 1, 7, 7},
		Vals:   []float64{1, 2, 3, 4},
		HaloN:  1,
		Recv:   []placeRecv{{FromID: "w1", Off: 2, Count: 1}},
		Send:   []placeSend{{ToID: "w1", ToAddr: "127.0.0.1:0", Local: []int{0, 0}}},
	}
	e = place.encode()
	f.Add(byte(1), append([]byte(nil), e.B...))
	e.Release()

	slv := solveMsg{SolveID: 9, OpID: "op", Gen: 3, Method: "cg",
		Tol: 1e-8, MaxIter: 100, B: []float64{1, 2}}
	e = slv.encode()
	f.Add(byte(3), append([]byte(nil), e.B...))
	e.Release()

	red := reduceMsg{SolveID: 9, Seq: 4, Vals: []float64{0.5, -0.5}}
	e = red.encode()
	f.Add(byte(4), append([]byte(nil), e.B...))
	e.Release()

	f.Fuzz(func(t *testing.T, which byte, payload []byte) {
		switch which % 9 {
		case 0:
			m, err := decodeHello(payload)
			if err == nil && m.Version == 0 && len(payload) < 4 {
				t.Fatal("short payload decoded without error")
			}
		case 1:
			m, err := decodePlace(payload)
			if err == nil {
				// Decoded lengths must be backed by real payload bytes —
				// the length-prefix validation contract.
				if 8*(len(m.RowPtr)+len(m.Cols))+8*len(m.Vals) > len(payload) {
					t.Fatalf("decoded slices larger than the payload: %d+%d+%d elems from %d bytes",
						len(m.RowPtr), len(m.Cols), len(m.Vals), len(payload))
				}
			}
		case 2:
			decodeAck(payload)
		case 3:
			decodeSolve(payload)
		case 4:
			var m reduceMsg
			decodeReduce(payload, &m)
			// Reuse path: a second decode into the same struct must be
			// just as safe.
			decodeReduce(payload, &m)
		case 5:
			decodeDone(payload)
		case 6:
			decodeErr(payload)
		case 7:
			decodeSeq(payload)
		case 8:
			decodeStr(payload)
		}
	})
}

// FuzzPlaceRoundTrip pins encode/decode symmetry for the richest
// message: any placeMsg assembled from the fuzzed skeleton must decode
// back field-for-field.
func FuzzPlaceRoundTrip(f *testing.F) {
	f.Add("op-a", uint64(1), 16, 0, 8, 4, "w1", "w2")
	f.Fuzz(func(t *testing.T, opID string, gen uint64, nglobal, row0, row1, nnz int, from, to string) {
		if nnz < 0 || nnz > 1024 {
			return
		}
		m := placeMsg{OpID: opID, Gen: gen, NGlobal: nglobal, Row0: row0, Row1: row1,
			RowPtr: make([]int, nnz/4+1), Cols: make([]int, nnz), Vals: make([]float64, nnz),
			HaloN: nnz % 7,
			Recv:  []placeRecv{{FromID: from, Off: row0, Count: row1}},
			Send:  []placeSend{{ToID: to, ToAddr: to + ":0", Local: []int{nnz}}},
		}
		for i := range m.Cols {
			m.Cols[i] = (i * 7) % (nnz + 1)
			m.Vals[i] = float64(i) / 3
		}
		e := m.encode()
		got, err := decodePlace(e.B)
		e.Release()
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if got.OpID != m.OpID || got.Gen != m.Gen || got.NGlobal != m.NGlobal ||
			got.Row0 != m.Row0 || got.Row1 != m.Row1 || got.HaloN != m.HaloN {
			t.Fatalf("scalar fields: got %+v want %+v", got, m)
		}
		if len(got.RowPtr) != len(m.RowPtr) || len(got.Cols) != len(m.Cols) || len(got.Vals) != len(m.Vals) {
			t.Fatalf("slice lengths differ")
		}
		for i := range m.Cols {
			if got.Cols[i] != m.Cols[i] || got.Vals[i] != m.Vals[i] {
				t.Fatalf("element %d differs", i)
			}
		}
		if len(got.Recv) != 1 || got.Recv[0] != m.Recv[0] {
			t.Fatalf("recv schedule differs")
		}
		if len(got.Send) != 1 || got.Send[0].ToID != to || len(got.Send[0].Local) != 1 {
			t.Fatalf("send schedule differs")
		}
	})
}
