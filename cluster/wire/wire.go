// Package wire is the binary frame protocol of the cluster tier: the
// second transport in the repository, built for the iteration hot path
// the HTTP JSON layer is too slow for. Every message is one frame —
//
//	byte  0     frame type
//	bytes 1..4  payload length, uint32 little-endian
//	bytes 5..   payload
//
// — and payloads are packed little-endian scalars and float64 slices
// (8 bytes each, IEEE 754 bits), so a halo exchange or an allreduce
// contribution costs exactly its data plus five bytes of framing. No
// JSON, no reflection, no per-frame allocation in steady state: frame
// payloads and encode buffers come from a shared pool and are returned
// after use.
//
// The protocol is deliberately dumb. Framing, byte order, and bounds
// checks live here; message semantics (who sends what when) live in the
// cluster package.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Frame types. The vocabulary is fixed; unknown types are a protocol
// error surfaced to the connection owner.
const (
	// Control plane: coordinator <-> worker.
	MsgHello    byte = 0x01 // coordinator → worker: identity + protocol version
	MsgHelloAck byte = 0x02 // worker → coordinator: accepts, echoes version
	MsgPing     byte = 0x03 // heartbeat probe
	MsgPong     byte = 0x04 // heartbeat reply
	MsgPlace    byte = 0x05 // coordinator → worker: install one operator shard
	MsgPlaceAck byte = 0x06 // worker → coordinator: shard installed
	MsgDrop     byte = 0x07 // coordinator → worker: forget an operator
	MsgSolve    byte = 0x08 // coordinator → worker: start a distributed solve
	MsgCombined byte = 0x09 // coordinator → worker: allreduce result
	MsgAbort    byte = 0x0a // coordinator → worker: cancel the named solve

	// Data plane: worker → coordinator.
	MsgPartials byte = 0x10 // local inner-product contributions
	MsgDone     byte = 0x11 // solve finished: shard of x + stats + timings
	MsgErr      byte = 0x12 // solve failed on this worker

	// Peer plane: worker → worker.
	MsgPeerHello byte = 0x20 // identifies the sending worker on a halo link
	MsgHalo      byte = 0x21 // one batched halo message for one iteration
)

// Version is the protocol version carried in Hello/HelloAck; a mismatch
// refuses the connection rather than misinterpreting frames.
const Version = 1

// DefaultMaxPayload bounds incoming frame payloads (shards of a 4M-row
// operator fit comfortably; a corrupt length prefix does not take the
// process down).
const DefaultMaxPayload = 1 << 30

// ErrFrame wraps every framing/decoding failure so transport owners can
// classify protocol corruption with errors.Is.
var ErrFrame = errors.New("wire: protocol error")

const headerLen = 5

// buffers pools payload/scratch byte slices across frames.
var buffers = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns a pooled byte slice with length 0 and at least the
// given capacity.
func GetBuf(capacity int) []byte {
	bp := buffers.Get().(*[]byte)
	b := *bp
	if cap(b) < capacity {
		b = make([]byte, 0, capacity)
	}
	return b[:0]
}

// PutBuf returns a buffer obtained from GetBuf (or a frame payload from
// ReadFrame) to the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	buffers.Put(&b)
}

// WriteFrame writes one frame. The payload is not retained.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > math.MaxUint32 {
		return fmt.Errorf("%w: payload %d bytes exceeds frame limit", ErrFrame, len(payload))
	}
	var hdr [headerLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	// One writev-shaped write when possible: small frames are copied
	// into the header buffer's tail via net.Buffers semantics is not
	// worth the dependency; two writes on a buffered/TCP conn is fine,
	// but coalesce small payloads to avoid tinygram pairs.
	if len(payload) <= 1024 {
		buf := GetBuf(headerLen + len(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		_, err := w.Write(buf)
		PutBuf(buf)
		return err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, returning its type and payload. The
// payload buffer comes from the shared pool; hand it back with PutBuf
// when decoded. maxPayload <= 0 applies DefaultMaxPayload.
func ReadFrame(r io.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds limit %d", ErrFrame, n, maxPayload)
	}
	buf := GetBuf(n)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		PutBuf(buf)
		return 0, nil, err
	}
	return hdr[0], buf, nil
}

// Enc appends little-endian fields to a (usually pooled) buffer.
// Methods return the updated slice, append-style.
type Enc struct{ B []byte }

// NewEnc wraps a pooled buffer sized for a payload of about `hint`
// bytes.
func NewEnc(hint int) *Enc { return &Enc{B: GetBuf(hint)} }

// Release returns the underlying buffer to the pool.
func (e *Enc) Release() { PutBuf(e.B); e.B = nil }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.B = append(e.B, v) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// F64 appends one float64 as its IEEE bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed UTF-8 string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// F64s appends a length-prefixed float64 slice.
func (e *Enc) F64s(v []float64) {
	e.U64(uint64(len(v)))
	off := len(e.B)
	e.B = append(e.B, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(e.B[off+8*i:], math.Float64bits(x))
	}
}

// Ints appends a length-prefixed []int as uint64s.
func (e *Enc) Ints(v []int) {
	e.U64(uint64(len(v)))
	off := len(e.B)
	e.B = append(e.B, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(e.B[off+8*i:], uint64(x))
	}
}

// Dec consumes little-endian fields from a payload. The first decode
// error sticks: every subsequent call returns the zero value, and Err
// reports the failure once at the end — callers check one error per
// message instead of one per field.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding failure, or nil.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(want string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload reading %s", ErrFrame, want)
	}
}

func (d *Dec) take(n int, what string) []byte {
	if d.err != nil || len(d.b) < n {
		d.fail(what)
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	v := d.take(1, "u8")
	if v == nil {
		return 0
	}
	return v[0]
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	v := d.take(4, "u32")
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	v := d.take(8, "u64")
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// F64 reads one float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.b) {
		d.fail("string")
		return ""
	}
	return string(d.take(n, "string"))
}

// StrBytes reads a length-prefixed string as a view into the payload —
// no copy, no allocation. The bytes alias the frame buffer, so they are
// valid only until the payload is released (PutBuf) or reused; callers
// that outlive the frame must copy.
func (d *Dec) StrBytes() []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.b) {
		d.fail("string")
		return nil
	}
	return d.take(n, "string")
}

// lenPrefix reads a u64 element count and validates it against the
// remaining payload at elemSize bytes per element.
func (d *Dec) lenPrefix(elemSize int, what string) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)/elemSize) {
		d.fail(what)
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed float64 slice into dst (grown as
// needed), returning the filled slice.
func (d *Dec) F64s(dst []float64) []float64 {
	n := d.lenPrefix(8, "[]float64")
	if d.err != nil {
		return dst[:0]
	}
	raw := d.take(8*n, "[]float64")
	if raw == nil {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return dst
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints(dst []int) []int {
	n := d.lenPrefix(8, "[]int")
	if d.err != nil {
		return dst[:0]
	}
	raw := d.take(8*n, "[]int")
	if raw == nil {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return dst
}
