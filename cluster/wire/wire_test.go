package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestFrameRoundTrip: a frame survives write/read with its type and
// payload intact, across the small-coalesced and large two-write paths.
func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1024, 1025, 1 << 16} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgHalo, payload); err != nil {
			t.Fatalf("write n=%d: %v", n, err)
		}
		typ, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("read n=%d: %v", n, err)
		}
		if typ != MsgHalo || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: frame mutated in transit", n)
		}
		PutBuf(got)
	}
}

// TestFrameTooLarge: a length prefix past the limit is refused before
// any allocation of that size.
func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(&buf, 1024)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized frame: got %v, want ErrFrame", err)
	}
}

// TestFrameTruncated: a short read surfaces as an IO error, not a hang
// or a bogus frame.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, _, err := ReadFrame(bytes.NewReader(trunc), 0)
	if err == nil || errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated frame: got %v", err)
		}
	}
}

// TestEncDecRoundTrip: every field type survives the encoder/decoder
// pair, including NaN payloads and empty slices.
func TestEncDecRoundTrip(t *testing.T) {
	e := NewEnc(256)
	defer e.Release()
	e.U8(7)
	e.U32(1 << 30)
	e.U64(1 << 40)
	e.F64(math.Pi)
	e.F64(math.NaN())
	e.Str("op-poisson2d")
	e.Str("")
	e.F64s([]float64{1.5, -2.25, 0})
	e.F64s(nil)
	e.Ints([]int{0, 5, 1 << 33})

	d := NewDec(e.B)
	if got := d.U8(); got != 7 {
		t.Fatalf("u8: %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("u32: %d", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Fatalf("u64: %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("f64: %g", got)
	}
	if got := d.F64(); !math.IsNaN(got) {
		t.Fatalf("nan: %g", got)
	}
	if got := d.Str(); got != "op-poisson2d" {
		t.Fatalf("str: %q", got)
	}
	if got := d.Str(); got != "" {
		t.Fatalf("empty str: %q", got)
	}
	f := d.F64s(nil)
	if len(f) != 3 || f[0] != 1.5 || f[1] != -2.25 || f[2] != 0 {
		t.Fatalf("f64s: %v", f)
	}
	if f = d.F64s(f); len(f) != 0 {
		t.Fatalf("empty f64s: %v", f)
	}
	ints := d.Ints(nil)
	if len(ints) != 3 || ints[2] != 1<<33 {
		t.Fatalf("ints: %v", ints)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode err: %v", err)
	}
}

// TestDecTruncationSticks: the first failure poisons the decoder and is
// reported by Err; later reads return zero values instead of panicking.
func TestDecTruncationSticks(t *testing.T) {
	e := NewEnc(16)
	defer e.Release()
	e.U32(99)
	d := NewDec(e.B)
	_ = d.U64() // wants 8 bytes, only 4 present
	if d.Err() == nil {
		t.Fatal("truncated u64 not detected")
	}
	if got := d.U32(); got != 0 {
		t.Fatalf("post-error read: %d, want 0", got)
	}
	if !errors.Is(d.Err(), ErrFrame) {
		t.Fatalf("err not ErrFrame: %v", d.Err())
	}
}

// TestDecHostileLengths: a length prefix claiming more elements than
// the payload could hold is rejected without allocating that length.
func TestDecHostileLengths(t *testing.T) {
	e := NewEnc(16)
	defer e.Release()
	e.U64(1 << 60) // claims 2^60 float64s
	d := NewDec(e.B)
	_ = d.F64s(nil)
	if !errors.Is(d.Err(), ErrFrame) {
		t.Fatalf("hostile length accepted: %v", d.Err())
	}

	e2 := NewEnc(16)
	defer e2.Release()
	e2.U32(1 << 31) // string longer than payload
	d2 := NewDec(e2.B)
	_ = d2.Str()
	if !errors.Is(d2.Err(), ErrFrame) {
		t.Fatalf("hostile string length accepted: %v", d2.Err())
	}
}
