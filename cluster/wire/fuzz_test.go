package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzWireFrame throws arbitrary byte streams at ReadFrame: hostile
// length prefixes, truncated headers, truncated payloads. The decoder
// must never panic, never allocate past maxPayload, and classify every
// protocol failure under ErrFrame (I/O truncation surfaces as the
// reader's error instead).
func FuzzWireFrame(f *testing.F) {
	// A well-formed small frame.
	var ok bytes.Buffer
	if err := WriteFrame(&ok, MsgPing, []byte{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	// Truncated header.
	f.Add([]byte{MsgHello, 0xff})
	// Length prefix far beyond the payload actually present.
	huge := make([]byte, headerLen)
	huge[0] = MsgHalo
	binary.LittleEndian.PutUint32(huge[1:], math.MaxUint32)
	f.Add(huge)
	// Length prefix just over the fuzz limit below.
	over := make([]byte, headerLen)
	over[0] = MsgPartials
	binary.LittleEndian.PutUint32(over[1:], 1<<21)
	f.Add(over)

	const limit = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := ReadFrame(r, limit)
			if err != nil {
				if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unclassified error %v", err)
				}
				return
			}
			if len(payload) > limit {
				t.Fatalf("payload %d exceeds limit %d", len(payload), limit)
			}
			// Round-trip: re-framing the decoded frame reproduces the
			// consumed bytes exactly.
			var w bytes.Buffer
			if err := WriteFrame(&w, typ, payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			consumed := data[:len(data)-r.Len()]
			tail := consumed[len(consumed)-w.Len():]
			if !bytes.Equal(w.Bytes(), tail) {
				t.Fatalf("round-trip mismatch:\n got %x\nwant %x", w.Bytes(), tail)
			}
			PutBuf(payload)
		}
	})
}

// FuzzDecFields drives the field decoder over arbitrary payloads with a
// script of field reads derived from the input: the sticky-error
// contract means no read sequence may panic or hand back data past the
// payload end.
func FuzzDecFields(f *testing.F) {
	e := NewEnc(64)
	e.U8(7)
	e.U32(1234)
	e.Str("worker-3")
	e.F64s([]float64{1, 2.5, math.Inf(1)})
	e.Ints([]int{0, -1, 1 << 40})
	f.Add([]byte{0, 1, 2, 3, 4}, e.B)
	e.Release()

	f.Fuzz(func(t *testing.T, script, payload []byte) {
		d := NewDec(payload)
		var f64buf []float64
		var intbuf []int
		for _, op := range script {
			switch op % 7 {
			case 0:
				d.U8()
			case 1:
				d.U32()
			case 2:
				d.U64()
			case 3:
				d.F64()
			case 4:
				d.Str()
			case 5:
				f64buf = d.F64s(f64buf)
			case 6:
				intbuf = d.Ints(intbuf)
			}
		}
		if err := d.Err(); err != nil && !errors.Is(err, ErrFrame) {
			t.Fatalf("decode error not under ErrFrame: %v", err)
		}
	})
}
