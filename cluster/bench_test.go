package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vrcg/solve"
	"vrcg/sparse"
)

// benchFleet boots a coordinator + n loopback workers for benchmarks.
func benchFleet(b *testing.B, n int) *Coordinator {
	b.Helper()
	c := NewCoordinator(CoordinatorConfig{
		HeartbeatInterval: time.Second,
		PlaceTimeout:      60 * time.Second,
	})
	b.Cleanup(func() { c.Close() })
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{HaloTimeout: 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		if _, err := c.AddWorker(w.Addr()); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func benchRHS(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%7)
	}
	return v
}

// BenchmarkClusterSolve compares sharded fleet solves against the
// single-process engine at n ≈ 1e5 and 4e5 (BENCH_cluster.json feeds
// the perf trajectory). The fleet pays wire latency per halo exchange
// and per reduction, so on one machine the serial engine should win;
// the number that matters is how small the gap is — it bounds the
// coordination overhead the distributed tier adds.
func BenchmarkClusterSolve(b *testing.B) {
	// Poisson2D(317) → n=100489, Poisson2D(632) → n=399424.
	const tol = 1e-6 // throughput measure; parity is the test suite's job
	for _, grid := range []int{317, 632} {
		a := sparse.Poisson2D(grid)
		n := a.Dim()
		rhs := benchRHS(n)

		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			s := solve.MustNew("cg")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(a, rhs, solve.WithTol(tol)); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("n=%d/sharded2", n), func(b *testing.B) {
			c := benchFleet(b, 2)
			if err := c.Place("op", a); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Solve(ctx, "op", "cg", rhs, SolveOpts{Tol: tol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterReduction measures the per-iteration time each
// variant spends blocked on the global reduction — the paper's target
// quantity. cg blocks on two allreduce round trips per iteration;
// pipecg fuses both inner products into one reduction, and gropp
// overlaps one of its two with the w = A·r matvec. Reported as total
// reduction-wait µs per iteration per worker from the workers' own
// phase histograms. The shard is kept small so round-trip latency, not
// local compute, dominates: that isolates the synchronization count,
// which is what the variants change. (Overlap-style hiding additionally
// needs real spare cores to pay; fused-reduction savings do not.)
func BenchmarkClusterReduction(b *testing.B) {
	a := sparse.Poisson2D(100) // n = 10000
	rhs := benchRHS(a.Dim())
	const tol = 1e-6
	for _, method := range []string{"cg", "pipecg", "gropp"} {
		b.Run(method, func(b *testing.B) {
			c := benchFleet(b, 2)
			if err := c.Place("op", a); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var spmvUS, haloUS, redUS, iterUS float64
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Solve(ctx, "op", method, rhs, SolveOpts{Tol: tol})
				if err != nil {
					b.Fatal(err)
				}
				red := res.Phases["reduction"]
				if red.Count == 0 {
					b.Fatal("no reduction-phase observations")
				}
				// Total µs blocked in reductions per iteration per worker:
				// cg pays two allreduce round trips per iteration where
				// pipecg pays one fused reduce and gropp hides one of its
				// two behind the matvec.
				perIter := func(ps PhaseSnapshot) float64 {
					return ps.MeanUS * float64(ps.Count) / float64(2*res.Iterations)
				}
				redUS += perIter(red)
				spmvUS += perIter(res.Phases["spmv"])
				haloUS += perIter(res.Phases["halo"])
				iterUS += res.Phases["iteration"].MeanUS
				iters += res.Iterations
			}
			b.ReportMetric(spmvUS/float64(b.N), "spmv_us/iter")
			b.ReportMetric(haloUS/float64(b.N), "halo_us/iter")
			b.ReportMetric(redUS/float64(b.N), "reduction_us/iter")
			b.ReportMetric(iterUS/float64(b.N), "iter_us")
			b.ReportMetric(float64(iters)/float64(b.N), "iters")
		})
	}
}
