package cluster

import (
	"fmt"
	"sort"

	"vrcg/sparse"
)

// Plan is the domain decomposition of one operator across a fleet: the
// nnz-balanced row partition (reusing sparse.RowPartition, the same
// balance the shared-memory pool uses) plus, per shard, the fully
// resolved halo-exchange schedule. The coordinator builds the plan once
// per placement; workers receive only their own Shard and follow it —
// no worker ever re-derives communication structure.
type Plan struct {
	// N is the global operator order.
	N int
	// Bounds are the partition offsets: shard s owns global rows
	// Bounds[s]..Bounds[s+1]. Strictly increasing, so every shard owns
	// at least one row; len(Bounds)-1 is the shard count (which may be
	// smaller than the requested worker count for tiny operators).
	Bounds []int
	// Shards holds one spec per partition cell.
	Shards []*Shard
}

// Shard is one worker's piece of the operator: its rows in CSR form
// with columns remapped into the local index space, and the halo
// schedule. The local column space is
//
//	[0, NLocal)            owned entries (global row/col minus Row0)
//	[NLocal, NLocal+HaloN) halo entries, ascending global column order
//
// so the local iterate vector is [owned | halo] and a neighbor's halo
// message lands in one contiguous copy.
type Shard struct {
	Index      int
	Row0, Row1 int

	// Local CSR arrays: RowPtr has NLocal+1 offsets; Cols are local
	// column indices (owned then halo); Vals the nonzero values.
	RowPtr []int
	Cols   []int
	Vals   []float64

	// HaloN is the number of external values this shard reads per
	// matvec (the halo width).
	HaloN int
	// Recv lists, ascending by From, where each neighbor's batched halo
	// message lands: Count values at halo offset Off (i.e. local index
	// NLocal+Off).
	Recv []HaloRecv
	// Send lists, ascending by To: the local owned indices to gather
	// into the one batched message for each neighbor, in the exact
	// order that neighbor's halo region expects.
	Send []HaloSend
}

// HaloRecv is one neighbor's incoming batch: Count float64s written at
// halo offset Off.
type HaloRecv struct {
	From  int
	Off   int
	Count int
}

// HaloSend is one neighbor's outgoing batch: the owned local indices to
// gather, in receiver order.
type HaloSend struct {
	To    int
	Local []int
}

// NLocal returns the number of rows this shard owns.
func (sh *Shard) NLocal() int { return sh.Row1 - sh.Row0 }

// MulVec computes dst = A_shard * x for the local row block. x must
// have length NLocal+HaloN with the halo region current; dst has length
// NLocal. Row accumulation order matches sparse.CSR.MulVec, so a
// one-shard plan reproduces the serial product bitwise.
func (sh *Shard) MulVec(dst, x []float64) {
	n := sh.NLocal()
	if len(dst) != n || len(x) != n+sh.HaloN {
		panic(fmt.Sprintf("cluster: shard MulVec dims dst=%d x=%d want %d/%d",
			len(dst), len(x), n, n+sh.HaloN))
	}
	for i := 0; i < n; i++ {
		var s float64
		for p := sh.RowPtr[i]; p < sh.RowPtr[i+1]; p++ {
			s += sh.Vals[p] * x[sh.Cols[p]]
		}
		dst[i] = s
	}
}

// DiagBlock extracts the shard's diagonal block (owned rows x owned
// columns) as a standalone CSR — the subdomain operator the block-
// Jacobi / zero-overlap additive-Schwarz preconditioner factorizes with
// the existing precond locals. Entries with halo columns are exactly
// the off-block couplings and are dropped.
func (sh *Shard) DiagBlock() *sparse.CSR {
	n := sh.NLocal()
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		for p := sh.RowPtr[i]; p < sh.RowPtr[i+1]; p++ {
			if sh.Cols[p] < n {
				rowPtr[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	cols := make([]int, rowPtr[n])
	vals := make([]float64, rowPtr[n])
	k := 0
	for i := 0; i < n; i++ {
		for p := sh.RowPtr[i]; p < sh.RowPtr[i+1]; p++ {
			if sh.Cols[p] < n {
				cols[k] = sh.Cols[p]
				vals[k] = sh.Vals[p]
				k++
			}
		}
	}
	return sparse.NewCSR(n, rowPtr, cols, vals)
}

// shardOf locates the shard owning global row/column j.
func shardOf(bounds []int, j int) int {
	// bounds is strictly increasing with bounds[0]==0; the owner is the
	// last s with bounds[s] <= j.
	return sort.SearchInts(bounds, j+1) - 1
}

// BuildPlan decomposes a across at most parts shards using the
// nnz-balanced row partition, and resolves the full halo schedule: for
// every shard, which external columns it reads, grouped into one
// contiguous receive batch per neighbor, and the matching gather lists
// on the sending side. Columns inside each halo batch are in ascending
// global order on both sides, so no index list ever crosses the wire
// with a halo message — only values do.
func BuildPlan(a *sparse.CSR, parts int) (*Plan, error) {
	if a == nil || a.Dim() == 0 {
		return nil, fmt.Errorf("cluster: BuildPlan requires a non-empty operator")
	}
	if parts < 1 {
		parts = 1
	}
	n := a.Dim()
	bounds := a.RowPartition(parts)
	nShards := len(bounds) - 1
	plan := &Plan{N: n, Bounds: bounds, Shards: make([]*Shard, nShards)}

	// needs[s][o] collects the global columns shard s reads from shard
	// o, deduplicated and ascending.
	needs := make([]map[int][]int, nShards)

	for s := 0; s < nShards; s++ {
		r0, r1 := bounds[s], bounds[s+1]
		nl := r1 - r0
		sh := &Shard{Index: s, Row0: r0, Row1: r1, RowPtr: make([]int, nl+1)}

		// Pass 1: row sizes and the external column set.
		var ext []int
		for i := r0; i < r1; i++ {
			cnt := 0
			a.ScanRow(i, func(j int, _ float64) {
				cnt++
				if j < r0 || j >= r1 {
					ext = append(ext, j)
				}
			})
			sh.RowPtr[i-r0+1] = cnt
		}
		for i := 0; i < nl; i++ {
			sh.RowPtr[i+1] += sh.RowPtr[i]
		}
		sort.Ints(ext)
		ext = dedupeSorted(ext)
		sh.HaloN = len(ext)

		// Halo layout: ascending global order. Owners own contiguous
		// row ranges, so grouping by owner is a linear sweep and each
		// neighbor's batch is contiguous in the halo region.
		needs[s] = make(map[int][]int)
		off := 0
		for off < len(ext) {
			o := shardOf(bounds, ext[off])
			end := off
			for end < len(ext) && ext[end] < bounds[o+1] {
				end++
			}
			needs[s][o] = ext[off:end:end]
			sh.Recv = append(sh.Recv, HaloRecv{From: o, Off: off, Count: end - off})
			off = end
		}

		// Pass 2: fill the local CSR with remapped columns. Owned
		// columns map to j-r0; halo columns to nl + position in ext.
		sh.Cols = make([]int, sh.RowPtr[nl])
		sh.Vals = make([]float64, sh.RowPtr[nl])
		k := 0
		for i := r0; i < r1; i++ {
			a.ScanRow(i, func(j int, v float64) {
				if j >= r0 && j < r1 {
					sh.Cols[k] = j - r0
				} else {
					sh.Cols[k] = nl + sort.SearchInts(ext, j)
				}
				sh.Vals[k] = v
				k++
			})
		}
		plan.Shards[s] = sh
	}

	// Invert the receive lists into gather lists on the senders. The
	// receiver's halo batch is ascending global columns, so the sender
	// gathers those columns (as its own local indices) in that order.
	for s := 0; s < nShards; s++ {
		for _, rv := range plan.Shards[s].Recv {
			cols := needs[s][rv.From]
			local := make([]int, len(cols))
			for i, j := range cols {
				local[i] = j - bounds[rv.From]
			}
			src := plan.Shards[rv.From]
			src.Send = append(src.Send, HaloSend{To: s, Local: local})
		}
	}
	for _, sh := range plan.Shards {
		sort.Slice(sh.Send, func(i, j int) bool { return sh.Send[i].To < sh.Send[j].To })
	}
	return plan, nil
}

// dedupeSorted removes duplicates from a sorted slice in place.
func dedupeSorted(v []int) []int {
	if len(v) == 0 {
		return v
	}
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
