package cluster

import (
	"fmt"
	"io"

	"vrcg/cluster/wire"
)

// This file maps the cluster's typed messages onto wire payloads. Every
// message has an encode (into a pooled wire.Enc the caller releases)
// and a decode (from a frame payload, with the decoder's sticky error
// checked once). Hot-path messages — halo, partials, combined — carry a
// solve id and sequence number so stale frames from an aborted solve
// are identifiable and droppable.

// helloMsg is MsgHello: the coordinator introduces itself and assigns
// the worker its fleet id.
type helloMsg struct {
	Version  uint32
	WorkerID string
}

func (m *helloMsg) encode() *wire.Enc {
	e := wire.NewEnc(32)
	e.U32(m.Version)
	e.Str(m.WorkerID)
	return e
}

func decodeHello(b []byte) (helloMsg, error) {
	d := wire.NewDec(b)
	m := helloMsg{Version: d.U32(), WorkerID: d.Str()}
	return m, d.Err()
}

// placeRecv / placeSend are the halo schedule entries of placeMsg,
// addressed by worker id (the plan's shard indices are a coordinator
// concern; workers only ever talk to named peers).
type placeRecv struct {
	FromID string
	Off    int
	Count  int
}

type placeSend struct {
	ToID   string
	ToAddr string
	Local  []int
}

// placeMsg is MsgPlace: one operator shard plus its halo schedule.
type placeMsg struct {
	OpID    string
	Gen     uint64
	NGlobal int
	Row0    int
	Row1    int
	RowPtr  []int
	Cols    []int
	Vals    []float64
	HaloN   int
	Recv    []placeRecv
	Send    []placeSend
}

func (m *placeMsg) encode() *wire.Enc {
	e := wire.NewEnc(64 + 8*(len(m.RowPtr)+len(m.Cols)+len(m.Vals)))
	e.Str(m.OpID)
	e.U64(m.Gen)
	e.U64(uint64(m.NGlobal))
	e.U64(uint64(m.Row0))
	e.U64(uint64(m.Row1))
	e.Ints(m.RowPtr)
	e.Ints(m.Cols)
	e.F64s(m.Vals)
	e.U64(uint64(m.HaloN))
	e.U32(uint32(len(m.Recv)))
	for _, r := range m.Recv {
		e.Str(r.FromID)
		e.U64(uint64(r.Off))
		e.U64(uint64(r.Count))
	}
	e.U32(uint32(len(m.Send)))
	for _, s := range m.Send {
		e.Str(s.ToID)
		e.Str(s.ToAddr)
		e.Ints(s.Local)
	}
	return e
}

func decodePlace(b []byte) (placeMsg, error) {
	d := wire.NewDec(b)
	m := placeMsg{
		OpID:    d.Str(),
		Gen:     d.U64(),
		NGlobal: int(d.U64()),
		Row0:    int(d.U64()),
		Row1:    int(d.U64()),
		RowPtr:  d.Ints(nil),
		Cols:    d.Ints(nil),
		Vals:    d.F64s(nil),
	}
	m.HaloN = int(d.U64())
	nr := int(d.U32())
	if d.Err() != nil {
		return m, d.Err()
	}
	for i := 0; i < nr && d.Err() == nil; i++ {
		m.Recv = append(m.Recv, placeRecv{FromID: d.Str(), Off: int(d.U64()), Count: int(d.U64())})
	}
	ns := int(d.U32())
	for i := 0; i < ns && d.Err() == nil; i++ {
		m.Send = append(m.Send, placeSend{ToID: d.Str(), ToAddr: d.Str(), Local: d.Ints(nil)})
	}
	return m, d.Err()
}

// ackMsg serves MsgPlaceAck (and MsgDrop uses just the op id).
type ackMsg struct {
	OpID string
	Gen  uint64
}

func (m *ackMsg) encode() *wire.Enc {
	e := wire.NewEnc(32)
	e.Str(m.OpID)
	e.U64(m.Gen)
	return e
}

func decodeAck(b []byte) (ackMsg, error) {
	d := wire.NewDec(b)
	m := ackMsg{OpID: d.Str(), Gen: d.U64()}
	return m, d.Err()
}

// solveMsg is MsgSolve: start one distributed solve on this worker's
// shard of the operator. B is the shard's slice of the right-hand side.
type solveMsg struct {
	SolveID uint64
	OpID    string
	Gen     uint64
	Method  string
	Precond string
	Tol     float64
	MaxIter int
	B       []float64
}

func (m *solveMsg) encode() *wire.Enc {
	e := wire.NewEnc(64 + 8*len(m.B))
	e.U64(m.SolveID)
	e.Str(m.OpID)
	e.U64(m.Gen)
	e.Str(m.Method)
	e.Str(m.Precond)
	e.F64(m.Tol)
	e.U64(uint64(m.MaxIter))
	e.F64s(m.B)
	return e
}

func decodeSolve(b []byte) (solveMsg, error) {
	d := wire.NewDec(b)
	m := solveMsg{
		SolveID: d.U64(),
		OpID:    d.Str(),
		Gen:     d.U64(),
		Method:  d.Str(),
		Precond: d.Str(),
		Tol:     d.F64(),
		MaxIter: int(d.U64()),
	}
	m.B = d.F64s(nil)
	return m, d.Err()
}

// reduceMsg serves MsgPartials (worker contributions) and MsgCombined
// (the coordinator's sums), and haloMsg shares its shape.
type reduceMsg struct {
	SolveID uint64
	Seq     uint64
	Vals    []float64
}

func (m *reduceMsg) encode() *wire.Enc {
	e := wire.NewEnc(32 + 8*len(m.Vals))
	e.U64(m.SolveID)
	e.U64(m.Seq)
	e.F64s(m.Vals)
	return e
}

// decodeReduce decodes into dst's Vals to keep steady-state reuse.
func decodeReduce(b []byte, dst *reduceMsg) error {
	d := wire.NewDec(b)
	dst.SolveID = d.U64()
	dst.Seq = d.U64()
	dst.Vals = d.F64s(dst.Vals)
	return d.Err()
}

// doneMsg is MsgDone: the shard of the solution plus per-worker stats
// and phase timings.
type doneMsg struct {
	SolveID    uint64
	Iterations int
	Converged  bool
	ResNorm    float64
	X          []float64
	Stats      runStats
	Phases     phaseSet
}

// runStats are the operation counts a worker accumulates during one
// distributed solve.
type runStats struct {
	MatVecs       uint64
	InnerProducts uint64
	VectorUpdates uint64
	PrecondSolves uint64
}

func (m *doneMsg) encode() *wire.Enc {
	e := wire.NewEnc(128 + 8*len(m.X))
	e.U64(m.SolveID)
	e.U64(uint64(m.Iterations))
	if m.Converged {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.F64(m.ResNorm)
	e.F64s(m.X)
	e.U64(m.Stats.MatVecs)
	e.U64(m.Stats.InnerProducts)
	e.U64(m.Stats.VectorUpdates)
	e.U64(m.Stats.PrecondSolves)
	m.Phases.encode(e)
	return e
}

func decodeDone(b []byte) (doneMsg, error) {
	d := wire.NewDec(b)
	m := doneMsg{
		SolveID:    d.U64(),
		Iterations: int(d.U64()),
		Converged:  d.U8() == 1,
		ResNorm:    d.F64(),
		X:          d.F64s(nil),
	}
	m.Stats = runStats{
		MatVecs:       d.U64(),
		InnerProducts: d.U64(),
		VectorUpdates: d.U64(),
		PrecondSolves: d.U64(),
	}
	if err := m.Phases.decode(d); err != nil {
		return m, err
	}
	return m, d.Err()
}

// errMsg is MsgErr: a worker-side solve failure with a stable code the
// coordinator maps back onto the solve package's sentinels.
type errMsg struct {
	SolveID uint64
	Code    string
	Detail  string
}

func (m *errMsg) encode() *wire.Enc {
	e := wire.NewEnc(64)
	e.U64(m.SolveID)
	e.Str(m.Code)
	e.Str(m.Detail)
	return e
}

func decodeErr(b []byte) (errMsg, error) {
	d := wire.NewDec(b)
	m := errMsg{SolveID: d.U64(), Code: d.Str(), Detail: d.Str()}
	return m, d.Err()
}

// seqMsg serves MsgPing/MsgPong/MsgAbort (one u64).
type seqMsg struct{ V uint64 }

func (m *seqMsg) encode() *wire.Enc {
	e := wire.NewEnc(8)
	e.U64(m.V)
	return e
}

func decodeSeq(b []byte) (seqMsg, error) {
	d := wire.NewDec(b)
	m := seqMsg{V: d.U64()}
	return m, d.Err()
}

// strMsg serves MsgPeerHello (worker id), MsgDrop (op id), MsgHelloAck.
type strMsg struct{ S string }

func (m *strMsg) encode() *wire.Enc {
	e := wire.NewEnc(32)
	e.Str(m.S)
	return e
}

func decodeStr(b []byte) (strMsg, error) {
	d := wire.NewDec(b)
	m := strMsg{S: d.Str()}
	return m, d.Err()
}

// writeMsg frames and writes one encoded message, releasing the
// encoder.
func writeMsg(w io.Writer, typ byte, e *wire.Enc) error {
	err := wire.WriteFrame(w, typ, e.B)
	e.Release()
	if err != nil {
		return fmt.Errorf("cluster: write frame 0x%02x: %w", typ, err)
	}
	return nil
}
