package cluster

import (
	"errors"
	"fmt"

	"vrcg/solve"
)

// Sentinel errors of the cluster tier. Numerical failures reuse the
// solve package's sentinels so callers (and the server's error-code
// table) classify distributed and shared-memory solves identically.
var (
	// ErrNoWorkers: the fleet has no live workers; nothing can be
	// placed or solved.
	ErrNoWorkers = errors.New("cluster: no live workers")

	// ErrUnknownOperator: the named operator was never placed (or was
	// dropped).
	ErrUnknownOperator = errors.New("cluster: unknown operator")

	// ErrOperatorExists: Place refuses to overwrite an existing name.
	ErrOperatorExists = errors.New("cluster: operator already placed")

	// ErrDegraded wraps placement failures where the fleet lost workers
	// mid-operation and could not recover (distinct from ErrNoWorkers:
	// some capacity remained but re-placement failed).
	ErrDegraded = errors.New("cluster: placement degraded")

	// ErrClosed: the coordinator or worker has been shut down.
	ErrClosed = errors.New("cluster: closed")
)

// Stable wire codes for worker-side solve failures. The coordinator
// maps them back onto solve sentinels with errFromCode.
const (
	codeIndefinite      = "indefinite"
	codeBreakdown       = "breakdown"
	codeBadOption       = "bad_option"
	codeUnknownMethod   = "unknown_method"
	codeUnknownOperator = "unknown_operator"
	codeStalePlacement  = "stale_placement"
	codeAborted         = "aborted"
	codeInternal        = "internal"
)

// solveErr is a worker-side failure carrying its wire code.
type solveErr struct {
	code   string
	detail string
}

func (e *solveErr) Error() string { return "cluster: " + e.code + ": " + e.detail }

func codeFromErr(err error) (code, detail string) {
	var se *solveErr
	if errors.As(err, &se) {
		return se.code, se.detail
	}
	switch {
	case errors.Is(err, solve.ErrIndefinite):
		return codeIndefinite, err.Error()
	case errors.Is(err, solve.ErrBreakdown):
		return codeBreakdown, err.Error()
	case errors.Is(err, solve.ErrBadOption):
		return codeBadOption, err.Error()
	case errors.Is(err, solve.ErrUnknownMethod):
		return codeUnknownMethod, err.Error()
	}
	return codeInternal, err.Error()
}

func errFromCode(code, detail string) error {
	switch code {
	case codeIndefinite:
		return fmt.Errorf("%w (worker: %s)", solve.ErrIndefinite, detail)
	case codeBreakdown:
		return fmt.Errorf("%w (worker: %s)", solve.ErrBreakdown, detail)
	case codeBadOption:
		return fmt.Errorf("%w (worker: %s)", solve.ErrBadOption, detail)
	case codeUnknownMethod:
		return fmt.Errorf("%w (worker: %s)", solve.ErrUnknownMethod, detail)
	case codeUnknownOperator, codeStalePlacement:
		return fmt.Errorf("%w (worker: %s)", ErrUnknownOperator, detail)
	}
	return fmt.Errorf("cluster: worker error %s: %s", code, detail)
}
