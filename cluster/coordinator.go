package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"vrcg/cluster/wire"
	"vrcg/solve"
	"vrcg/sparse"
)

// CoordinatorConfig tunes the fleet controller.
type CoordinatorConfig struct {
	// HeartbeatInterval is the ping cadence per worker; zero means 1s.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals mark a worker dead;
	// zero means 3.
	HeartbeatMisses int
	// DialTimeout bounds worker connection attempts; zero means 5s.
	DialTimeout time.Duration
	// PlaceTimeout bounds one shard placement ack; zero means 60s.
	PlaceTimeout time.Duration
	// SolveRetries is how many times a solve is retried after losing a
	// worker mid-flight (each retry re-places the operator across the
	// survivors); zero means 2.
	SolveRetries int
	// MaxPayload bounds incoming frames; zero applies the wire default.
	MaxPayload int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.PlaceTimeout <= 0 {
		c.PlaceTimeout = 60 * time.Second
	}
	if c.SolveRetries <= 0 {
		c.SolveRetries = 2
	}
	return c
}

// Coordinator owns a fleet of workers: it places operators (sharding
// rows with the nnz-balanced partition and shipping each worker its
// shard plus halo schedule), drives distributed solves (combining every
// worker's inner-product partials into one global sum per reduction),
// and keeps the fleet available by re-placing operators across the
// survivors when a worker dies.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[string]*remoteWorker
	order   []string
	nextID  int
	ops     map[string]*clusterOp
	gen     uint64
	active  *solveRun
	closed  bool
	done    chan struct{}

	// solveMu serializes placements and solves fleet-wide: workers run
	// one solve at a time by design (the fleet is the parallelism).
	solveMu   sync.Mutex
	nextSolve uint64

	met *fleetMetrics

	// testAfterCombine, when set, runs after each broadcast combined
	// reduction — the deterministic injection point for worker-kill
	// tests.
	testAfterCombine func(solveID, seq uint64)
}

// remoteWorker is the coordinator's handle on one fleet member.
type remoteWorker struct {
	id   string
	addr string
	conn net.Conn

	wmu sync.Mutex // serializes writes

	stateMu  sync.Mutex
	alive    bool
	lastPong time.Time
	pingSeq  uint64
	acks     map[string]chan error // pending placements keyed op/gen
}

func (rw *remoteWorker) send(typ byte, e *wire.Enc) error {
	rw.wmu.Lock()
	defer rw.wmu.Unlock()
	return writeMsg(rw.conn, typ, e)
}

func (rw *remoteWorker) isAlive() bool {
	rw.stateMu.Lock()
	defer rw.stateMu.Unlock()
	return rw.alive
}

// clusterOp is one placed operator: the full matrix is retained so the
// coordinator can re-partition across survivors after a worker death
// and verify true residuals without another network round trip.
type clusterOp struct {
	name           string
	a              *sparse.CSR
	gen            uint64
	plan           *Plan
	assign         []string // shard index -> worker id
	initialWorkers int
}

// solveRun is the coordinator-side state of one solve attempt.
type solveRun struct {
	id       uint64
	ch       chan runEvent
	finished chan struct{}
}

const (
	evPartial = iota
	evDone
	evErr
	evDead
)

type runEvent struct {
	kind     int
	workerID string
	solveID  uint64
	seq      uint64
	vals     []float64
	done     doneMsg
	code     string
	detail   string
}

// errWorkerLost triggers the re-place-and-retry path inside Solve.
var errWorkerLost = errors.New("cluster: worker lost mid-solve")

// NewCoordinator returns an empty-fleet coordinator. Add workers with
// AddWorker.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: make(map[string]*remoteWorker),
		ops:     make(map[string]*clusterOp),
		done:    make(chan struct{}),
		met:     newFleetMetrics(),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// AddWorker dials a worker, registers it in the fleet under a fresh id,
// and starts its reader and heartbeat. Operators placed before the
// worker joined keep their existing placement; new placements (and
// re-placements after a death) use the grown fleet.
func (c *Coordinator) AddWorker(addr string) (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrClosed
	}
	id := fmt.Sprintf("w%d", c.nextID)
	c.nextID++
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return "", fmt.Errorf("cluster: dial worker %s: %w", addr, err)
	}
	hello := &helloMsg{Version: wire.Version, WorkerID: id}
	if err := writeMsg(conn, wire.MsgHello, hello.encode()); err != nil {
		conn.Close()
		return "", err
	}
	conn.SetReadDeadline(time.Now().Add(c.cfg.DialTimeout))
	typ, payload, err := wire.ReadFrame(conn, c.cfg.MaxPayload)
	if err != nil {
		conn.Close()
		return "", fmt.Errorf("cluster: worker %s handshake: %w", addr, err)
	}
	wire.PutBuf(payload)
	conn.SetReadDeadline(time.Time{})
	if typ != wire.MsgHelloAck {
		conn.Close()
		return "", fmt.Errorf("%w: worker %s answered hello with frame 0x%02x", wire.ErrFrame, addr, typ)
	}

	rw := &remoteWorker{
		id: id, addr: addr, conn: conn,
		alive: true, lastPong: time.Now(),
		acks: make(map[string]chan error),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return "", ErrClosed
	}
	c.workers[id] = rw
	c.order = append(c.order, id)
	c.mu.Unlock()

	go c.readLoop(rw)
	go c.heartbeat(rw)
	return id, nil
}

// markDead removes a worker from the fleet (once) and notifies any
// in-flight solve.
func (c *Coordinator) markDead(rw *remoteWorker, cause error) {
	rw.stateMu.Lock()
	if !rw.alive {
		rw.stateMu.Unlock()
		return
	}
	rw.alive = false
	for _, ch := range rw.acks {
		select {
		case ch <- fmt.Errorf("cluster: worker %s died: %v", rw.id, cause):
		default:
		}
	}
	rw.stateMu.Unlock()
	rw.conn.Close()

	c.mu.Lock()
	delete(c.workers, rw.id)
	for i, id := range c.order {
		if id == rw.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	c.logf("cluster: worker %s (%s) removed: %v", rw.id, rw.addr, cause)
	c.forward(runEvent{kind: evDead, workerID: rw.id})
}

// forward routes one event to the active solve, if any.
func (c *Coordinator) forward(ev runEvent) {
	c.mu.Lock()
	run := c.active
	c.mu.Unlock()
	if run == nil {
		return
	}
	if ev.solveID != 0 && ev.solveID != run.id {
		return
	}
	select {
	case run.ch <- ev:
	case <-run.finished:
	}
}

// readLoop is one worker connection's reader: it decodes frames and
// routes them (pongs to the heartbeat state, acks to pending
// placements, data-plane frames to the active solve).
func (c *Coordinator) readLoop(rw *remoteWorker) {
	for {
		typ, payload, err := wire.ReadFrame(rw.conn, c.cfg.MaxPayload)
		if err != nil {
			c.markDead(rw, err)
			return
		}
		switch typ {
		case wire.MsgPong:
			if _, derr := decodeSeq(payload); derr == nil {
				rw.stateMu.Lock()
				rw.lastPong = time.Now()
				rw.stateMu.Unlock()
			}
		case wire.MsgPlaceAck:
			if m, derr := decodeAck(payload); derr == nil {
				key := fmt.Sprintf("%s/%d", m.OpID, m.Gen)
				rw.stateMu.Lock()
				if ch := rw.acks[key]; ch != nil {
					select {
					case ch <- nil:
					default:
					}
				}
				rw.stateMu.Unlock()
			}
		case wire.MsgPartials:
			var m reduceMsg
			if derr := decodeReduce(payload, &m); derr == nil {
				c.forward(runEvent{
					kind: evPartial, workerID: rw.id,
					solveID: m.SolveID, seq: m.Seq, vals: m.Vals,
				})
			}
		case wire.MsgDone:
			if m, derr := decodeDone(payload); derr == nil {
				c.forward(runEvent{kind: evDone, workerID: rw.id, solveID: m.SolveID, done: m})
			}
		case wire.MsgErr:
			if m, derr := decodeErr(payload); derr == nil {
				if m.SolveID == 0 {
					// Placement-time failure: fail every pending ack.
					rw.stateMu.Lock()
					for _, ch := range rw.acks {
						select {
						case ch <- errFromCode(m.Code, m.Detail):
						default:
						}
					}
					rw.stateMu.Unlock()
				} else {
					c.forward(runEvent{
						kind: evErr, workerID: rw.id,
						solveID: m.SolveID, code: m.Code, detail: m.Detail,
					})
				}
			}
		default:
			c.logf("cluster: worker %s sent unexpected frame 0x%02x", rw.id, typ)
		}
		wire.PutBuf(payload)
	}
}

// heartbeat pings one worker on the configured cadence and declares it
// dead after HeartbeatMisses silent intervals.
func (c *Coordinator) heartbeat(rw *remoteWorker) {
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		if !rw.isAlive() {
			return
		}
		rw.stateMu.Lock()
		rw.pingSeq++
		seq := rw.pingSeq
		silent := time.Since(rw.lastPong)
		rw.stateMu.Unlock()
		if silent > time.Duration(c.cfg.HeartbeatMisses)*c.cfg.HeartbeatInterval {
			c.markDead(rw, fmt.Errorf("no heartbeat for %v", silent.Round(time.Millisecond)))
			return
		}
		if err := rw.send(wire.MsgPing, (&seqMsg{V: seq}).encode()); err != nil {
			c.markDead(rw, err)
			return
		}
	}
}

// liveWorkers snapshots the fleet in join order.
func (c *Coordinator) liveWorkers() []*remoteWorker {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*remoteWorker, 0, len(c.order))
	for _, id := range c.order {
		if rw := c.workers[id]; rw != nil {
			out = append(out, rw)
		}
	}
	return out
}

func (c *Coordinator) worker(id string) *remoteWorker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[id]
}

// Workers reports current fleet membership.
func (c *Coordinator) Workers() []WorkerSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerSnapshot, 0, len(c.order))
	for _, id := range c.order {
		rw := c.workers[id]
		if rw == nil {
			continue
		}
		shards := 0
		for _, op := range c.ops {
			for _, wid := range op.assign {
				if wid == id {
					shards++
					break
				}
			}
		}
		out = append(out, WorkerSnapshot{ID: id, Addr: rw.addr, Alive: rw.isAlive(), Shards: shards})
	}
	return out
}

// Operators lists placed operator names.
func (c *Coordinator) Operators() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.ops))
	for name := range c.ops {
		out = append(out, name)
	}
	return out
}

// Metrics returns the fleet-aggregated view for /metrics.
func (c *Coordinator) Metrics() MetricsSnapshot {
	var s MetricsSnapshot
	s.Workers = c.Workers()
	c.mu.Lock()
	s.Operators = len(c.ops)
	c.mu.Unlock()
	c.met.snapshotInto(&s)
	return s
}

// Place shards an operator across the current fleet. The name must be
// unused; the matrix is retained coordinator-side for re-placement and
// residual verification.
func (c *Coordinator) Place(name string, a *sparse.CSR) error {
	if name == "" {
		return fmt.Errorf("cluster: empty operator name")
	}
	if a == nil || a.Dim() == 0 {
		return fmt.Errorf("cluster: empty operator %q", name)
	}
	c.solveMu.Lock()
	defer c.solveMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, ok := c.ops[name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrOperatorExists, name)
	}
	c.mu.Unlock()

	op := &clusterOp{name: name, a: a}
	if err := c.place(op); err != nil {
		return err
	}
	c.mu.Lock()
	c.ops[name] = op
	c.mu.Unlock()
	return nil
}

// Drop removes a placed operator fleet-wide.
func (c *Coordinator) Drop(name string) error {
	c.solveMu.Lock()
	defer c.solveMu.Unlock()
	c.mu.Lock()
	op := c.ops[name]
	delete(c.ops, name)
	c.mu.Unlock()
	if op == nil {
		return fmt.Errorf("%w: %s", ErrUnknownOperator, name)
	}
	for _, rw := range c.liveWorkers() {
		if err := rw.send(wire.MsgDrop, (&strMsg{S: name}).encode()); err != nil {
			c.markDead(rw, err)
		}
	}
	return nil
}

// place partitions op.a across the live fleet and ships every shard,
// retrying across deaths until a consistent placement lands or no
// workers remain. Callers hold solveMu.
func (c *Coordinator) place(op *clusterOp) error {
	for {
		live := c.liveWorkers()
		if len(live) == 0 {
			return ErrNoWorkers
		}
		plan, err := BuildPlan(op.a, len(live))
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.gen++
		gen := c.gen
		c.mu.Unlock()
		assign := live[:len(plan.Shards)]
		if err := c.shipPlacement(op.name, gen, plan, assign); err != nil {
			if errors.Is(err, errWorkerLost) {
				c.met.recordReplacement()
				c.logf("cluster: re-placing %s after loss: %v", op.name, err)
				continue
			}
			return err
		}
		op.plan = plan
		op.gen = gen
		op.assign = make([]string, len(assign))
		for i, rw := range assign {
			op.assign[i] = rw.id
		}
		if op.initialWorkers == 0 {
			op.initialWorkers = len(assign)
		}
		return nil
	}
}

// shipPlacement sends every shard and waits for all acks.
func (c *Coordinator) shipPlacement(name string, gen uint64, plan *Plan, assign []*remoteWorker) error {
	key := fmt.Sprintf("%s/%d", name, gen)
	ackCh := make(chan error, len(assign))
	for _, rw := range assign {
		rw.stateMu.Lock()
		rw.acks[key] = ackCh
		rw.stateMu.Unlock()
	}
	defer func() {
		for _, rw := range assign {
			rw.stateMu.Lock()
			delete(rw.acks, key)
			rw.stateMu.Unlock()
		}
	}()

	for i, sh := range plan.Shards {
		msg := &placeMsg{
			OpID: name, Gen: gen, NGlobal: plan.N,
			Row0: sh.Row0, Row1: sh.Row1,
			RowPtr: sh.RowPtr, Cols: sh.Cols, Vals: sh.Vals,
			HaloN: sh.HaloN,
		}
		for _, rv := range sh.Recv {
			msg.Recv = append(msg.Recv, placeRecv{
				FromID: assign[rv.From].id, Off: rv.Off, Count: rv.Count,
			})
		}
		for _, snd := range sh.Send {
			msg.Send = append(msg.Send, placeSend{
				ToID: assign[snd.To].id, ToAddr: assign[snd.To].addr, Local: snd.Local,
			})
		}
		if err := assign[i].send(wire.MsgPlace, msg.encode()); err != nil {
			c.markDead(assign[i], err)
			return fmt.Errorf("%w: shipping shard %d: %v", errWorkerLost, i, err)
		}
	}

	deadline := time.NewTimer(c.cfg.PlaceTimeout)
	defer deadline.Stop()
	for acked := 0; acked < len(assign); {
		select {
		case err := <-ackCh:
			if err != nil {
				return fmt.Errorf("%w: %v", errWorkerLost, err)
			}
			acked++
		case <-deadline.C:
			return fmt.Errorf("cluster: placement of %s timed out (%d/%d acks)", name, acked, len(assign))
		}
	}
	return nil
}

// SolveOpts carry the per-solve options of a distributed solve.
type SolveOpts struct {
	// Tol is the relative residual tolerance (engine default 1e-10
	// when zero).
	Tol float64
	// MaxIter caps iterations (engine default 10n when zero).
	MaxIter int
	// Precond names the subdomain local ("identity", "jacobi", "ssor",
	// "ic0") applied block-Jacobi-style for method "pcg".
	Precond string
}

// Result is the outcome of one distributed solve.
type Result struct {
	Method string
	X      []float64
	// Iterations is the global iteration count (identical on every
	// worker: all convergence decisions use coordinator-combined
	// scalars).
	Iterations int
	Converged  bool
	// ResidualNorm is the recurrence residual at exit;
	// TrueResidualNorm is ||b - A x|| recomputed coordinator-side from
	// the retained operator.
	ResidualNorm     float64
	TrueResidualNorm float64
	// Workers is how many shards participated; Degraded reports that
	// this is fewer than the operator's original placement (capacity
	// lost to worker deaths); Retries counts mid-solve re-placements.
	Workers  int
	Degraded bool
	Retries  int
	Stats    runStats
	// Phases holds this solve's fleet-merged per-iteration latency
	// histograms keyed spmv/halo/reduction/iteration.
	Phases map[string]PhaseSnapshot
}

// Solve runs one distributed solve of the placed operator against b.
// Methods: cg, cgfused, pcg, pipecg, gropp. If a worker dies mid-solve
// the operator is re-placed across the survivors and the solve retried
// (capacity degrades; availability does not), up to SolveRetries times.
func (c *Coordinator) Solve(ctx context.Context, name, method string, b []float64, opts SolveOpts) (*Result, error) {
	if !distMethodSupported(method) {
		return nil, fmt.Errorf("%w: %q (distributed methods: cg, cgfused, pcg, pipecg, gropp)", solve.ErrUnknownMethod, method)
	}
	if opts.Tol < 0 || opts.MaxIter < 0 {
		return nil, fmt.Errorf("%w: tol %g maxiter %d", solve.ErrBadOption, opts.Tol, opts.MaxIter)
	}
	c.solveMu.Lock()
	defer c.solveMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	op := c.ops[name]
	c.mu.Unlock()
	if op == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOperator, name)
	}
	if len(b) != op.a.Dim() {
		return nil, fmt.Errorf("%w: rhs length %d for operator order %d", solve.ErrDim, len(b), op.a.Dim())
	}

	retries := 0
	for {
		if !c.placementLive(op) {
			c.met.recordReplacement()
			if err := c.place(op); err != nil {
				c.met.recordFailure()
				if errors.Is(err, ErrNoWorkers) {
					return nil, err
				}
				return nil, fmt.Errorf("%w: %v", ErrDegraded, err)
			}
		}
		res, phases, err := c.solveAttempt(ctx, op, method, b, opts)
		if errors.Is(err, errWorkerLost) {
			retries++
			if retries > c.cfg.SolveRetries {
				c.met.recordFailure()
				return nil, fmt.Errorf("%w: solve lost workers %d times", ErrDegraded, retries)
			}
			c.logf("cluster: retrying solve of %s (attempt %d) after worker loss", name, retries+1)
			continue
		}
		if err != nil {
			c.met.recordFailure()
			return nil, err
		}
		res.Method = method
		res.Retries = retries
		res.Degraded = len(op.assign) < op.initialWorkers
		c.met.recordSolve(method, phases, uint64(retries))
		if !res.Converged {
			// Same contract as the solve package: a usable Result
			// alongside a sentinel-wrapped error.
			return res, fmt.Errorf("cluster: %s stopped at iteration %d with residual %.6e: %w",
				method, res.Iterations, res.ResidualNorm, solve.ErrNotConverged)
		}
		return res, nil
	}
}

// placementLive reports whether every assigned worker is still in the
// fleet.
func (c *Coordinator) placementLive(op *clusterOp) bool {
	if op.plan == nil || len(op.assign) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range op.assign {
		if c.workers[id] == nil {
			return false
		}
	}
	return true
}

// redAcc accumulates one reduction's partials.
type redAcc struct {
	sums []float64
	n    int
}

// solveAttempt runs one attempt: ship the solve, combine partials,
// broadcast sums, collect dones, assemble x.
func (c *Coordinator) solveAttempt(ctx context.Context, op *clusterOp, method string, b []float64, opts SolveOpts) (*Result, []*phaseSet, error) {
	c.mu.Lock()
	c.nextSolve++
	run := &solveRun{
		id:       c.nextSolve,
		ch:       make(chan runEvent, 8*len(op.assign)+16),
		finished: make(chan struct{}),
	}
	c.active = run
	c.mu.Unlock()
	defer func() {
		close(run.finished)
		c.mu.Lock()
		if c.active == run {
			c.active = nil
		}
		c.mu.Unlock()
	}()

	participants := make(map[string]*remoteWorker, len(op.assign))
	for i, id := range op.assign {
		rw := c.worker(id)
		if rw == nil {
			c.abortAll(participants, run.id)
			return nil, nil, fmt.Errorf("%w: %s gone before start", errWorkerLost, id)
		}
		participants[id] = rw
		sh := op.plan.Shards[i]
		msg := &solveMsg{
			SolveID: run.id, OpID: op.name, Gen: op.gen,
			Method: method, Precond: opts.Precond,
			Tol: opts.Tol, MaxIter: opts.MaxIter,
			B: b[sh.Row0:sh.Row1],
		}
		if err := rw.send(wire.MsgSolve, msg.encode()); err != nil {
			c.markDead(rw, err)
			c.abortAll(participants, run.id)
			return nil, nil, fmt.Errorf("%w: starting on %s: %v", errWorkerLost, id, err)
		}
	}

	expected := len(op.assign)
	accs := make(map[uint64]*redAcc)
	dones := make(map[string]*doneMsg, expected)
	for {
		var ev runEvent
		select {
		case ev = <-run.ch:
		case <-ctx.Done():
			c.abortAll(participants, run.id)
			return nil, nil, ctx.Err()
		}
		switch ev.kind {
		case evPartial:
			a := accs[ev.seq]
			if a == nil {
				a = &redAcc{sums: make([]float64, len(ev.vals))}
				accs[ev.seq] = a
			}
			if len(ev.vals) != len(a.sums) {
				c.abortAll(participants, run.id)
				return nil, nil, fmt.Errorf("%w: partial arity mismatch from %s", wire.ErrFrame, ev.workerID)
			}
			for i, v := range ev.vals {
				a.sums[i] += v
			}
			a.n++
			if a.n == expected {
				delete(accs, ev.seq)
				cm := reduceMsg{SolveID: run.id, Seq: ev.seq, Vals: a.sums}
				for id, rw := range participants {
					if err := rw.send(wire.MsgCombined, cm.encode()); err != nil {
						c.markDead(rw, err)
						c.abortAll(participants, run.id)
						return nil, nil, fmt.Errorf("%w: broadcasting to %s: %v", errWorkerLost, id, err)
					}
				}
				if c.testAfterCombine != nil {
					c.testAfterCombine(run.id, ev.seq)
				}
			}
		case evDone:
			d := ev.done
			dones[ev.workerID] = &d
			if len(dones) == expected {
				return c.assemble(op, b, dones)
			}
		case evErr:
			c.abortAll(participants, run.id)
			return nil, nil, errFromCode(ev.code, ev.detail)
		case evDead:
			if _, ours := participants[ev.workerID]; ours {
				c.abortAll(participants, run.id)
				return nil, nil, fmt.Errorf("%w: %s died mid-solve", errWorkerLost, ev.workerID)
			}
		}
	}
}

// abortAll tells every live participant to cancel the solve.
func (c *Coordinator) abortAll(participants map[string]*remoteWorker, solveID uint64) {
	for _, rw := range participants {
		if !rw.isAlive() {
			continue
		}
		if err := rw.send(wire.MsgAbort, (&seqMsg{V: solveID}).encode()); err != nil {
			c.markDead(rw, err)
		}
	}
}

// assemble stitches worker shards of x into the global solution and
// verifies the true residual against the retained operator.
func (c *Coordinator) assemble(op *clusterOp, b []float64, dones map[string]*doneMsg) (*Result, []*phaseSet, error) {
	n := op.a.Dim()
	res := &Result{X: make([]float64, n), Workers: len(op.assign), Converged: true}
	phases := make([]*phaseSet, 0, len(dones))
	merged := &phaseSet{}
	for i, id := range op.assign {
		d := dones[id]
		sh := op.plan.Shards[i]
		if d == nil || len(d.X) != sh.NLocal() {
			return nil, nil, fmt.Errorf("%w: worker %s returned %d rows for shard of %d",
				wire.ErrFrame, id, len(d.X), sh.NLocal())
		}
		copy(res.X[sh.Row0:sh.Row1], d.X)
		if d.Iterations > res.Iterations {
			res.Iterations = d.Iterations
		}
		res.Converged = res.Converged && d.Converged
		res.ResidualNorm = d.ResNorm
		res.Stats.MatVecs += d.Stats.MatVecs
		res.Stats.InnerProducts += d.Stats.InnerProducts
		res.Stats.VectorUpdates += d.Stats.VectorUpdates
		res.Stats.PrecondSolves += d.Stats.PrecondSolves
		phases = append(phases, &d.Phases)
		merged.merge(&d.Phases)
	}
	res.Phases = make(map[string]PhaseSnapshot, numPhases)
	for i := range merged {
		res.Phases[phaseNames[i]] = merged[i].snapshot()
	}

	// True residual from the retained operator: the distributed
	// recurrence is verified against ground truth on every solve.
	ax := make([]float64, n)
	op.a.MulVec(ax, res.X)
	var ss float64
	for i := range ax {
		dlt := b[i] - ax[i]
		ss += dlt * dlt
	}
	res.TrueResidualNorm = math.Sqrt(ss)
	return res, phases, nil
}

// Close shuts the coordinator down and disconnects the fleet. Workers
// keep running (they are owned by their own processes).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	workers := make([]*remoteWorker, 0, len(c.workers))
	for _, rw := range c.workers {
		workers = append(workers, rw)
	}
	c.mu.Unlock()
	for _, rw := range workers {
		c.markDead(rw, ErrClosed)
	}
	return nil
}
