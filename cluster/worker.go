package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vrcg/cluster/wire"
	"vrcg/precond"
	"vrcg/sparse"
)

// WorkerConfig tunes one fleet member.
type WorkerConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// MaxPayload bounds incoming frame payloads; 0 applies the wire
	// default.
	MaxPayload int
	// HaloTimeout bounds how long a solve waits for one iteration's
	// halo messages before failing (a dead peer is normally detected by
	// the coordinator's heartbeat first; this is the backstop). Zero
	// means 30s.
	HaloTimeout time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Worker is one fleet member: it owns shards of placed operators and
// executes its share of distributed solves under the coordinator's
// direction. A worker is passive — it never dials the coordinator; it
// accepts one control connection (frames: Hello, Ping, Place, Drop,
// Solve, Combined, Abort) and any number of peer connections carrying
// batched halo messages from other workers.
type Worker struct {
	cfg WorkerConfig
	ln  net.Listener

	mu     sync.Mutex
	id     string
	closed bool
	shards map[string]*workerShard // by operator name
	peerIn map[string]chan haloFrame
	// stash holds halo frames that arrived for a newer solve while an
	// aborted one was still draining; the new solve consumes them first.
	stash  map[string][]haloFrame
	out    map[string]*peerLink // outgoing halo links by worker id
	active *workerSolve
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// haloFrame is one decoded MsgHalo in a per-sender FIFO.
type haloFrame struct {
	solveID uint64
	seq     uint64
	vals    []float64
}

// peerLink is one persistent outgoing connection to a peer worker.
type peerLink struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
}

// workerShard is an installed operator shard plus cached subdomain
// preconditioners (block-Jacobi locals built on the diagonal block).
type workerShard struct {
	opID    string
	gen     uint64
	nGlobal int
	sh      *Shard
	recvs   []placeRecv
	sends   []wsSend
	blk     *sparse.CSR // lazily extracted diagonal block
	pre     map[string]precond.Preconditioner
}

// diagBlock lazily extracts and caches the shard's subdomain operator.
func (ws *workerShard) diagBlock() *sparse.CSR {
	if ws.blk == nil {
		ws.blk = ws.sh.DiagBlock()
	}
	return ws.blk
}

type wsSend struct {
	link  *peerLink
	local []int
}

// workerSolve is the state of the one in-flight solve.
type workerSolve struct {
	id        uint64
	combined  chan []float64
	abort     chan struct{}
	done      chan struct{}
	abortOnce sync.Once
}

func (s *workerSolve) cancel() { s.abortOnce.Do(func() { close(s.abort) }) }

// NewWorker starts a worker listening on cfg.Addr.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HaloTimeout <= 0 {
		cfg.HaloTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker listen: %w", err)
	}
	w := &Worker{
		cfg:    cfg,
		ln:     ln,
		shards: make(map[string]*workerShard),
		peerIn: make(map[string]chan haloFrame),
		stash:  make(map[string][]haloFrame),
		out:    make(map[string]*peerLink),
		conns:  make(map[net.Conn]struct{}),
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// ID returns the fleet id assigned by the coordinator's Hello (empty
// before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Close shuts the worker down: the listener, every connection, and any
// in-flight solve.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if w.active != nil {
		w.active.cancel()
	}
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	links := make([]*peerLink, 0, len(w.out))
	for _, l := range w.out {
		links = append(links, l)
	}
	w.mu.Unlock()

	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, l := range links {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
	}
	w.wg.Wait()
	return err
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go w.serveConn(conn)
	}
}

func (w *Worker) dropConn(conn net.Conn) {
	conn.Close()
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// serveConn classifies an incoming connection by its first frame:
// MsgHello makes it the coordinator control connection, MsgPeerHello a
// peer halo stream.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer w.dropConn(conn)
	typ, payload, err := wire.ReadFrame(conn, w.cfg.MaxPayload)
	if err != nil {
		return
	}
	switch typ {
	case wire.MsgHello:
		hello, derr := decodeHello(payload)
		wire.PutBuf(payload)
		if derr != nil || hello.Version != wire.Version {
			w.logf("worker: rejecting hello (err=%v version=%d)", derr, hello.Version)
			return
		}
		w.mu.Lock()
		w.id = hello.WorkerID
		w.mu.Unlock()
		ack := &strMsg{S: hello.WorkerID}
		if err := writeMsg(conn, wire.MsgHelloAck, ack.encode()); err != nil {
			return
		}
		w.controlLoop(conn)
	case wire.MsgPeerHello:
		peer, derr := decodeStr(payload)
		wire.PutBuf(payload)
		if derr != nil {
			return
		}
		w.haloLoop(conn, peer.S)
	default:
		wire.PutBuf(payload)
		w.logf("worker: unexpected first frame 0x%02x", typ)
	}
}

// inChan returns (creating if needed) the FIFO for halo frames from one
// named peer.
func (w *Worker) inChan(peer string) chan haloFrame {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch := w.peerIn[peer]
	if ch == nil {
		ch = make(chan haloFrame, 16)
		w.peerIn[peer] = ch
	}
	return ch
}

// stashPut parks a halo frame addressed to a solve newer than the one
// currently draining.
func (w *Worker) stashPut(peer string, f haloFrame) {
	w.mu.Lock()
	w.stash[peer] = append(w.stash[peer], f)
	w.mu.Unlock()
}

// stashTake pops the stashed frame matching (solveID, seq) from a
// peer's stash, dropping any frames for older solves along the way.
func (w *Worker) stashTake(peer string, solveID, seq uint64) (haloFrame, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	frames := w.stash[peer]
	kept := frames[:0]
	var match haloFrame
	found := false
	for _, f := range frames {
		switch {
		case f.solveID < solveID || (f.solveID == solveID && f.seq < seq):
			// stale: drop
		case !found && f.solveID == solveID && f.seq == seq:
			match, found = f, true
		default:
			kept = append(kept, f)
		}
	}
	w.stash[peer] = kept
	return match, found
}

// haloLoop drains one peer's halo stream into its FIFO. If the consumer
// stalls past HaloTimeout the frame is dropped — that only happens when
// no solve is draining (aborted mid-iteration), and the stale solve id
// makes dropped frames harmless.
func (w *Worker) haloLoop(conn net.Conn, peer string) {
	ch := w.inChan(peer)
	timer := time.NewTimer(w.cfg.HaloTimeout)
	defer timer.Stop()
	for {
		typ, payload, err := wire.ReadFrame(conn, w.cfg.MaxPayload)
		if err != nil {
			return
		}
		if typ != wire.MsgHalo {
			wire.PutBuf(payload)
			continue
		}
		var m reduceMsg
		derr := decodeReduce(payload, &m)
		wire.PutBuf(payload)
		if derr != nil {
			w.logf("worker: bad halo frame from %s: %v", peer, derr)
			return
		}
		f := haloFrame{solveID: m.SolveID, seq: m.Seq, vals: m.Vals}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(w.cfg.HaloTimeout)
		select {
		case ch <- f:
		case <-timer.C:
			w.logf("worker: dropping stalled halo frame from %s (solve %d seq %d)", peer, f.solveID, f.seq)
		}
	}
}

// controlLoop is the coordinator connection's reader. Writes to the
// connection (acks, partials, done) are serialized with wmu since the
// solve goroutine shares it.
func (w *Worker) controlLoop(conn net.Conn) {
	var wmu sync.Mutex
	send := func(typ byte, e *wire.Enc) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeMsg(conn, typ, e)
	}
	defer func() {
		// Coordinator gone: any in-flight solve can never finish its
		// reductions — cancel it.
		w.mu.Lock()
		if w.active != nil {
			w.active.cancel()
		}
		w.mu.Unlock()
	}()
	for {
		typ, payload, err := wire.ReadFrame(conn, w.cfg.MaxPayload)
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgPing:
			m, derr := decodeSeq(payload)
			wire.PutBuf(payload)
			if derr != nil {
				return
			}
			if err := send(wire.MsgPong, (&seqMsg{V: m.V}).encode()); err != nil {
				return
			}
		case wire.MsgPlace:
			m, derr := decodePlace(payload)
			wire.PutBuf(payload)
			if derr != nil {
				w.logf("worker: bad place: %v", derr)
				return
			}
			if err := w.install(&m); err != nil {
				w.logf("worker: place %s: %v", m.OpID, err)
				ee := &errMsg{Code: codeInternal, Detail: err.Error()}
				if serr := send(wire.MsgErr, ee.encode()); serr != nil {
					return
				}
				continue
			}
			if err := send(wire.MsgPlaceAck, (&ackMsg{OpID: m.OpID, Gen: m.Gen}).encode()); err != nil {
				return
			}
		case wire.MsgDrop:
			m, derr := decodeStr(payload)
			wire.PutBuf(payload)
			if derr != nil {
				return
			}
			w.mu.Lock()
			delete(w.shards, m.S)
			w.mu.Unlock()
		case wire.MsgSolve:
			m, derr := decodeSolve(payload)
			wire.PutBuf(payload)
			if derr != nil {
				w.logf("worker: bad solve: %v", derr)
				return
			}
			w.startSolve(&m, send)
		case wire.MsgCombined:
			var m reduceMsg
			derr := decodeReduce(payload, &m)
			wire.PutBuf(payload)
			if derr != nil {
				return
			}
			w.mu.Lock()
			s := w.active
			w.mu.Unlock()
			if s == nil || s.id != m.SolveID {
				continue // stale combined from an aborted solve
			}
			vals := make([]float64, len(m.Vals))
			copy(vals, m.Vals)
			select {
			case s.combined <- vals:
			case <-s.abort:
			}
		case wire.MsgAbort:
			m, derr := decodeSeq(payload)
			wire.PutBuf(payload)
			if derr != nil {
				return
			}
			w.mu.Lock()
			if w.active != nil && w.active.id == m.V {
				w.active.cancel()
			}
			w.mu.Unlock()
		default:
			wire.PutBuf(payload)
			w.logf("worker: unknown control frame 0x%02x", typ)
		}
	}
}

// install builds a workerShard from a placement, dialing (or reusing)
// peer links for its halo sends.
func (w *Worker) install(m *placeMsg) error {
	nl := m.Row1 - m.Row0
	if nl < 0 || len(m.RowPtr) != nl+1 {
		return fmt.Errorf("malformed shard: rows [%d,%d) rowptr %d", m.Row0, m.Row1, len(m.RowPtr))
	}
	nnz := 0
	if nl > 0 {
		nnz = m.RowPtr[nl]
	}
	if len(m.Cols) != nnz || len(m.Vals) != nnz {
		return fmt.Errorf("malformed shard: nnz %d cols %d vals %d", nnz, len(m.Cols), len(m.Vals))
	}
	for _, c := range m.Cols {
		if c < 0 || c >= nl+m.HaloN {
			return fmt.Errorf("malformed shard: column %d outside local space %d", c, nl+m.HaloN)
		}
	}
	ws := &workerShard{
		opID:    m.OpID,
		gen:     m.Gen,
		nGlobal: m.NGlobal,
		sh: &Shard{
			Row0: m.Row0, Row1: m.Row1,
			RowPtr: m.RowPtr, Cols: m.Cols, Vals: m.Vals,
			HaloN: m.HaloN,
		},
		recvs: m.Recv,
		pre:   make(map[string]precond.Preconditioner),
	}
	for _, s := range m.Send {
		link, err := w.peerLinkTo(s.ToID, s.ToAddr)
		if err != nil {
			return err
		}
		ws.sends = append(ws.sends, wsSend{link: link, local: s.Local})
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.shards[m.OpID] = ws
	w.mu.Unlock()
	return nil
}

// peerLinkTo returns a persistent halo link to the named peer, dialing
// and introducing itself on first use (or after the peer's address
// changed).
func (w *Worker) peerLinkTo(id, addr string) (*peerLink, error) {
	w.mu.Lock()
	link := w.out[id]
	if link == nil || link.addr != addr {
		link = &peerLink{addr: addr}
		w.out[id] = link
	}
	myID := w.id
	w.mu.Unlock()

	link.mu.Lock()
	defer link.mu.Unlock()
	if link.conn != nil {
		return link, nil
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial peer %s at %s: %w", id, addr, err)
	}
	if err := writeMsg(conn, wire.MsgPeerHello, (&strMsg{S: myID}).encode()); err != nil {
		conn.Close()
		return nil, err
	}
	link.conn = conn
	return link, nil
}

// sendHalo writes one batched halo frame on a peer link.
func (l *peerLink) sendHalo(m *reduceMsg) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return errors.New("cluster: peer link closed")
	}
	if err := writeMsg(l.conn, wire.MsgHalo, m.encode()); err != nil {
		l.conn.Close()
		l.conn = nil
		return err
	}
	return nil
}

// startSolve validates the request against installed shards and spawns
// the solve goroutine. If a previous solve is still draining after an
// abort, it waits for it (bounded by the halo timeout) so the two never
// overlap.
func (w *Worker) startSolve(m *solveMsg, send func(byte, *wire.Enc) error) {
	fail := func(code, detail string) {
		ee := &errMsg{SolveID: m.SolveID, Code: code, Detail: detail}
		if err := send(wire.MsgErr, ee.encode()); err != nil {
			w.logf("worker: report error: %v", err)
		}
	}
	w.mu.Lock()
	if prev := w.active; prev != nil {
		w.mu.Unlock()
		prev.cancel()
		select {
		case <-prev.done:
		case <-time.After(w.cfg.HaloTimeout):
			fail(codeInternal, "previous solve did not stop")
			return
		}
		w.mu.Lock()
	}
	ws := w.shards[m.OpID]
	if ws == nil {
		w.mu.Unlock()
		fail(codeUnknownOperator, m.OpID)
		return
	}
	if ws.gen != m.Gen {
		w.mu.Unlock()
		fail(codeStalePlacement, fmt.Sprintf("op %s gen %d, have %d", m.OpID, m.Gen, ws.gen))
		return
	}
	if len(m.B) != ws.sh.NLocal() {
		w.mu.Unlock()
		fail(codeInternal, fmt.Sprintf("rhs shard %d for %d local rows", len(m.B), ws.sh.NLocal()))
		return
	}
	s := &workerSolve{
		id:       m.SolveID,
		combined: make(chan []float64, 4),
		abort:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.active = s
	w.mu.Unlock()

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(s.done)
		defer func() {
			w.mu.Lock()
			if w.active == s {
				w.active = nil
			}
			w.mu.Unlock()
		}()
		w.runSolve(s, ws, m, send)
	}()
}
