package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// testFleet boots a coordinator plus n in-process workers on loopback
// TCP — the full wire protocol, no shortcuts — and tears everything
// down with the test.
type testFleet struct {
	c       *Coordinator
	workers []*Worker
	ids     []string
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{
		c: NewCoordinator(CoordinatorConfig{
			HeartbeatInterval: 50 * time.Millisecond,
			PlaceTimeout:      10 * time.Second,
			Logf:              t.Logf,
		}),
	}
	t.Cleanup(func() { f.c.Close() })
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{HaloTimeout: 10 * time.Second, Logf: t.Logf})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		id, err := f.c.AddWorker(w.Addr())
		if err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
		f.workers = append(f.workers, w)
		f.ids = append(f.ids, id)
	}
	return f
}

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// solveSerial runs the single-process reference solve.
func solveSerial(t *testing.T, method string, a *sparse.CSR, b []float64, opts ...solve.Option) *solve.Result {
	t.Helper()
	res, err := solve.MustNew(method).Solve(a, b, opts...)
	if err != nil {
		t.Fatalf("serial %s: %v", method, err)
	}
	return res
}

func maxAbsDiff(x, y []float64) float64 {
	m := 0.0
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// parityGap is the solution difference scaled to the solution's own
// magnitude — the parity measure: distributed and serial runs round
// differently (per-shard dot partials vs one blocked reduction), so
// agreement is relative to scale, never bitwise.
func parityGap(got, want []float64) float64 {
	scale := 1.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	return maxAbsDiff(got, want) / scale
}

// TestDistributedParity: a sharded solve across a coordinator + 2
// workers produces the same solution as the single-process solver —
// within 1e-12 — for every distributed method, and the same iteration
// count (convergence decisions are made on identical combined scalars).
func TestDistributedParity(t *testing.T) {
	f := newTestFleet(t, 2)
	a := sparse.Poisson2D(20) // n = 400, well conditioned
	n := a.Dim()
	b := rhs(n, 7)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}

	// Solve well past the parity gate: the two runs round differently
	// (per-shard dot partials vs the serial blocked reduction), and the
	// gap between the solutions scales with the residual level reached.
	const tol = 1e-13
	for _, method := range []string{"cg", "pipecg", "gropp"} {
		t.Run(method, func(t *testing.T) {
			want := solveSerial(t, method, a, b, solve.WithTol(tol))
			got, err := f.c.Solve(context.Background(), "op", method, b, SolveOpts{Tol: tol})
			if err != nil {
				t.Fatalf("distributed %s: %v", method, err)
			}
			if !got.Converged {
				t.Fatalf("distributed %s did not converge", method)
			}
			if got.Workers != 2 {
				t.Fatalf("ran on %d workers, want 2", got.Workers)
			}
			if d := parityGap(got.X, want.X); d > 1e-12 {
				t.Fatalf("solution diverges from serial by %g (relative)", d)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("iterations: distributed %d, serial %d", got.Iterations, want.Iterations)
			}
			if got.TrueResidualNorm > 10*tol*normOf(b) {
				t.Errorf("true residual %g too large", got.TrueResidualNorm)
			}
			for _, phase := range []string{"spmv", "halo", "reduction", "iteration"} {
				ps, ok := got.Phases[phase]
				if !ok || ps.Count == 0 {
					t.Errorf("phase %q not observed (%+v)", phase, got.Phases)
				}
			}
		})
	}
}

// TestDistributedPCGJacobiParity: block-Jacobi of the "jacobi" local is
// exactly global Jacobi, so distributed pcg+jacobi must match the
// serial preconditioned solve to 1e-12.
func TestDistributedPCGJacobiParity(t *testing.T) {
	f := newTestFleet(t, 3)
	a := sparse.RandomSPD(300, 6, 11)
	b := rhs(a.Dim(), 11)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	const tol = 1e-12
	m, err := precond.ByName("jacobi", a)
	if err != nil {
		t.Fatal(err)
	}
	want := solveSerial(t, "pcg", a, b, solve.WithTol(tol), solve.WithPreconditioner(m))
	got, err := f.c.Solve(context.Background(), "op", "pcg", b, SolveOpts{Tol: tol, Precond: "jacobi"})
	if err != nil {
		t.Fatalf("distributed pcg: %v", err)
	}
	if d := parityGap(got.X, want.X); d > 1e-12 {
		t.Fatalf("pcg+jacobi diverges from serial by %g (relative)", d)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("iterations: distributed %d, serial %d", got.Iterations, want.Iterations)
	}
}

// TestDistributedBlockSchwarz: with a non-diagonal local ("ssor") the
// block preconditioner is genuinely additive Schwarz — not equal to the
// global preconditioner — so we verify it solves the system correctly
// rather than matching serial iterations.
func TestDistributedBlockSchwarz(t *testing.T) {
	f := newTestFleet(t, 2)
	a := sparse.Poisson2D(16)
	n := a.Dim()
	b := rhs(n, 3)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	got, err := f.c.Solve(context.Background(), "op", "pcg", b, SolveOpts{Tol: 1e-10, Precond: "ssor"})
	if err != nil {
		t.Fatalf("pcg+block-ssor: %v", err)
	}
	if !got.Converged {
		t.Fatal("pcg with block-SSOR Schwarz local did not converge")
	}
	if got.TrueResidualNorm > 1e-8*normOf(b) {
		t.Fatalf("true residual %g", got.TrueResidualNorm)
	}
}

// TestSingleWorkerFleet: the degenerate one-worker fleet (no halo
// traffic at all) matches serial exactly.
func TestSingleWorkerFleet(t *testing.T) {
	f := newTestFleet(t, 1)
	a := sparse.TridiagToeplitz(120, 4, -1)
	b := rhs(120, 5)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	want := solveSerial(t, "cg", a, b, solve.WithTol(1e-12))
	got, err := f.c.Solve(context.Background(), "op", "cg", b, SolveOpts{Tol: 1e-12})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if d := parityGap(got.X, want.X); d > 1e-12 {
		t.Fatalf("single-worker fleet diverges by %g (relative)", d)
	}
}

// TestTinyOperatorMoreWorkersThanRows: a 5-row operator on a 3-worker
// fleet clamps the shard count and still solves.
func TestTinyOperatorMoreWorkersThanRows(t *testing.T) {
	f := newTestFleet(t, 3)
	a := sparse.TridiagToeplitz(5, 4, -1)
	b := []float64{1, 2, 3, 4, 5}
	if err := f.c.Place("tiny", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	got, err := f.c.Solve(context.Background(), "tiny", "cg", b, SolveOpts{Tol: 1e-12})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	want := solveSerial(t, "cg", a, b, solve.WithTol(1e-12))
	if d := parityGap(got.X, want.X); d > 1e-12 {
		t.Fatalf("tiny solve diverges by %g (relative)", d)
	}
}

// TestSolveErrors: API misuse maps onto the solve package's sentinels.
func TestSolveErrors(t *testing.T) {
	f := newTestFleet(t, 2)
	a := sparse.Poisson2D(8)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	ctx := context.Background()
	if _, err := f.c.Solve(ctx, "nope", "cg", make([]float64, a.Dim()), SolveOpts{}); !errors.Is(err, ErrUnknownOperator) {
		t.Errorf("unknown operator: %v", err)
	}
	if _, err := f.c.Solve(ctx, "op", "minres", make([]float64, a.Dim()), SolveOpts{}); !errors.Is(err, solve.ErrUnknownMethod) {
		t.Errorf("unsupported method: %v", err)
	}
	if _, err := f.c.Solve(ctx, "op", "cg", make([]float64, 3), SolveOpts{}); !errors.Is(err, solve.ErrDim) {
		t.Errorf("dim mismatch: %v", err)
	}
	if err := f.c.Place("op", a); !errors.Is(err, ErrOperatorExists) {
		t.Errorf("duplicate place: %v", err)
	}
	// MaxIter 1 on a hard-enough system: ErrNotConverged with a usable
	// result, same contract as the solve package.
	res, err := f.c.Solve(ctx, "op", "cg", rhs(a.Dim(), 1), SolveOpts{Tol: 1e-14, MaxIter: 1})
	if !errors.Is(err, solve.ErrNotConverged) {
		t.Errorf("maxiter=1: want ErrNotConverged, got %v", err)
	}
	if res == nil || res.Iterations != 1 {
		t.Errorf("maxiter=1: want usable 1-iteration result, got %+v", res)
	}
}

// TestWorkerDeathReplacement: killing a worker mid-solve triggers
// re-placement across the survivors and the solve completes correctly —
// degraded capacity, full availability. Subsequent solves keep working.
func TestWorkerDeathReplacement(t *testing.T) {
	f := newTestFleet(t, 3)
	a := sparse.Poisson2D(18)
	b := rhs(a.Dim(), 13)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}

	// Kill worker 2 deterministically: after the third combined
	// reduction of the first solve.
	killed := false
	f.c.testAfterCombine = func(solveID, seq uint64) {
		if !killed && seq == 3 {
			killed = true
			f.workers[2].Close()
		}
	}

	want := solveSerial(t, "pipecg", a, b, solve.WithTol(1e-12))
	got, err := f.c.Solve(context.Background(), "op", "pipecg", b, SolveOpts{Tol: 1e-12})
	if err != nil {
		t.Fatalf("solve across death: %v", err)
	}
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if got.Retries == 0 {
		t.Error("expected at least one retry after worker death")
	}
	if !got.Degraded {
		t.Error("result not marked degraded after losing a worker")
	}
	if got.Workers != 2 {
		t.Errorf("re-placed on %d workers, want 2", got.Workers)
	}
	if d := parityGap(got.X, want.X); d > 1e-12 {
		t.Fatalf("post-death solution diverges by %g (relative)", d)
	}

	// The degraded fleet keeps serving.
	f.c.testAfterCombine = nil
	got2, err := f.c.Solve(context.Background(), "op", "cg", b, SolveOpts{Tol: 1e-12})
	if err != nil {
		t.Fatalf("follow-up solve: %v", err)
	}
	want2 := solveSerial(t, "cg", a, b, solve.WithTol(1e-12))
	if d := parityGap(got2.X, want2.X); d > 1e-12 {
		t.Fatalf("follow-up solve diverges by %g (relative)", d)
	}

	snap := f.c.Metrics()
	if snap.Replacements == 0 {
		t.Error("metrics recorded no re-placements")
	}
	if len(snap.Workers) != 2 {
		t.Errorf("fleet shows %d workers, want 2", len(snap.Workers))
	}
}

// TestFleetMetrics: solves populate per-method per-phase histograms.
func TestFleetMetrics(t *testing.T) {
	f := newTestFleet(t, 2)
	a := sparse.Poisson2D(12)
	b := rhs(a.Dim(), 17)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	for _, method := range []string{"cg", "gropp"} {
		if _, err := f.c.Solve(context.Background(), "op", method, b, SolveOpts{Tol: 1e-10}); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
	}
	snap := f.c.Metrics()
	if snap.Solves != 2 {
		t.Errorf("solves %d, want 2", snap.Solves)
	}
	if snap.Operators != 1 {
		t.Errorf("operators %d, want 1", snap.Operators)
	}
	for _, method := range []string{"cg", "gropp"} {
		phases := snap.PhaseLatency[method]
		if phases == nil {
			t.Fatalf("no phase latency for %s", method)
		}
		for _, name := range []string{"spmv", "halo", "reduction", "iteration"} {
			if phases[name].Count == 0 {
				t.Errorf("%s/%s: zero observations", method, name)
			}
			if phases[name].Buckets["+Inf"] != phases[name].Count {
				t.Errorf("%s/%s: bucket sum %d != count %d", method, name,
					phases[name].Buckets["+Inf"], phases[name].Count)
			}
		}
	}
}

// TestRepeatedSolvesSameOperator: back-to-back solves (warm shards,
// reused peer links) stay correct.
func TestRepeatedSolvesSameOperator(t *testing.T) {
	f := newTestFleet(t, 2)
	a := sparse.Poisson2D(14)
	if err := f.c.Place("op", a); err != nil {
		t.Fatalf("place: %v", err)
	}
	for trial := 0; trial < 3; trial++ {
		b := rhs(a.Dim(), int64(100+trial))
		want := solveSerial(t, "gropp", a, b, solve.WithTol(1e-12))
		got, err := f.c.Solve(context.Background(), "op", "gropp", b, SolveOpts{Tol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := parityGap(got.X, want.X); d > 1e-12 {
			t.Fatalf("trial %d diverges by %g (relative)", trial, d)
		}
	}
}

func normOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
