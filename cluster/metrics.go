package cluster

import (
	"sync"
	"time"

	"vrcg/cluster/wire"
)

// Phase indices for per-iteration latency accounting. Workers time each
// phase of every iteration locally (zero contention, a few nanoseconds
// per observation) and ship the histograms once, with MsgDone; the
// coordinator merges them fleet-wide per method. The split is the
// paper's decomposition of iteration cost: local matvec work vs
// neighbor communication vs global synchronization.
const (
	phaseSpMV      = iota // local shard matvec
	phaseHalo             // batched neighbor exchange (send + wait)
	phaseReduction        // blocked in allreduce wait
	phaseIter             // whole iteration
	numPhases
)

// phaseNames index the Phase* constants for wire and JSON output.
var phaseNames = [numPhases]string{"spmv", "halo", "reduction", "iteration"}

// phaseBucketsUS are the histogram upper bounds in microseconds, chosen
// to straddle both in-process loopback fleets (single-digit µs) and
// real networks (ms).
const numPhaseBuckets = 14

var phaseBucketsUS = [numPhaseBuckets]float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// PhaseHist is one latency histogram: counts per bucket (the final
// bucket is overflow), plus count/sum/max for means and tails.
type PhaseHist struct {
	Count   uint64
	SumUS   float64
	MaxUS   float64
	Buckets [numPhaseBuckets + 1]uint64
}

// Observe records one duration.
func (h *PhaseHist) Observe(d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	h.Count++
	h.SumUS += us
	if us > h.MaxUS {
		h.MaxUS = us
	}
	for i, ub := range phaseBucketsUS {
		if us <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[numPhaseBuckets]++
}

// Merge folds other into h.
func (h *PhaseHist) Merge(other *PhaseHist) {
	h.Count += other.Count
	h.SumUS += other.SumUS
	if other.MaxUS > h.MaxUS {
		h.MaxUS = other.MaxUS
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// MeanUS returns the mean observation in microseconds.
func (h *PhaseHist) MeanUS() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumUS / float64(h.Count)
}

// phaseSet is the per-solve bundle of one histogram per phase.
type phaseSet [numPhases]PhaseHist

func (ps *phaseSet) encode(e *wire.Enc) {
	for i := range ps {
		h := &ps[i]
		e.U64(h.Count)
		e.F64(h.SumUS)
		e.F64(h.MaxUS)
		e.U32(uint32(len(h.Buckets)))
		for _, c := range h.Buckets {
			e.U64(c)
		}
	}
}

func (ps *phaseSet) decode(d *wire.Dec) error {
	for i := range ps {
		h := &ps[i]
		h.Count = d.U64()
		h.SumUS = d.F64()
		h.MaxUS = d.F64()
		nb := int(d.U32())
		if err := d.Err(); err != nil {
			return err
		}
		for j := 0; j < nb; j++ {
			c := d.U64()
			if j < len(h.Buckets) {
				h.Buckets[j] = c
			}
		}
	}
	return d.Err()
}

func (ps *phaseSet) merge(other *phaseSet) {
	for i := range ps {
		ps[i].Merge(&other[i])
	}
}

// PhaseSnapshot is the JSON shape of one phase histogram in /metrics.
type PhaseSnapshot struct {
	Count   uint64            `json:"count"`
	MeanUS  float64           `json:"mean_us"`
	MaxUS   float64           `json:"max_us"`
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *PhaseHist) snapshot() PhaseSnapshot {
	s := PhaseSnapshot{
		Count:   h.Count,
		MeanUS:  h.MeanUS(),
		MaxUS:   h.MaxUS,
		Buckets: make(map[string]uint64, len(h.Buckets)),
	}
	// Cumulative counts keyed by upper bound, Prometheus-style, matching
	// the server's histogram rendering.
	var cum uint64
	for i, ub := range phaseBucketsUS {
		cum += h.Buckets[i]
		s.Buckets[formatBucket(ub)] = cum
	}
	cum += h.Buckets[numPhaseBuckets]
	s.Buckets["+Inf"] = cum
	return s
}

func formatBucket(us float64) string {
	switch {
	case us >= 1000:
		return itoa(int(us/1000)) + "ms"
	default:
		return itoa(int(us)) + "us"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// WorkerSnapshot is one fleet member's status in /metrics and the
// workers endpoint.
type WorkerSnapshot struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	Shards int    `json:"shards"`
}

// MetricsSnapshot is the coordinator's aggregate view for /metrics:
// fleet membership, solve counters, and per-method per-phase iteration
// latency histograms merged across every worker that participated.
type MetricsSnapshot struct {
	Workers      []WorkerSnapshot                    `json:"workers"`
	Operators    int                                 `json:"operators"`
	Solves       uint64                              `json:"solves"`
	Failures     uint64                              `json:"failures"`
	Retries      uint64                              `json:"retries"`
	Replacements uint64                              `json:"replacements"`
	PhaseLatency map[string]map[string]PhaseSnapshot `json:"phase_latency_us"`
}

// fleetMetrics accumulates coordinator-side counters and the merged
// per-method phase histograms.
type fleetMetrics struct {
	mu           sync.Mutex
	solves       uint64
	failures     uint64
	retries      uint64
	replacements uint64
	byMethod     map[string]*phaseSet
}

func newFleetMetrics() *fleetMetrics {
	return &fleetMetrics{byMethod: make(map[string]*phaseSet)}
}

func (m *fleetMetrics) recordSolve(method string, workers []*phaseSet, retries uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves++
	m.retries += retries
	ps := m.byMethod[method]
	if ps == nil {
		ps = &phaseSet{}
		m.byMethod[method] = ps
	}
	for _, w := range workers {
		ps.merge(w)
	}
}

func (m *fleetMetrics) recordFailure() {
	m.mu.Lock()
	m.failures++
	m.mu.Unlock()
}

func (m *fleetMetrics) recordReplacement() {
	m.mu.Lock()
	m.replacements++
	m.mu.Unlock()
}

func (m *fleetMetrics) snapshotInto(s *MetricsSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s.Solves = m.solves
	s.Failures = m.failures
	s.Retries = m.retries
	s.Replacements = m.replacements
	s.PhaseLatency = make(map[string]map[string]PhaseSnapshot, len(m.byMethod))
	for method, ps := range m.byMethod {
		phases := make(map[string]PhaseSnapshot, numPhases)
		for i := range ps {
			phases[phaseNames[i]] = ps[i].snapshot()
		}
		s.PhaseLatency[method] = phases
	}
}
