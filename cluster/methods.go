package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"vrcg/cluster/wire"
	"vrcg/internal/vec"
	"vrcg/precond"
)

// This file is the worker-side distributed iteration runtime: the same
// kernel math as the shared-memory engine (internal/krylov,
// internal/pipecg — scalar for scalar, update for update, so a
// distributed solve converges in exactly the iterations the serial
// solver takes), with the engine's in-process reductions replaced by
// the coordinator allreduce and each matvec preceded by one batched
// halo exchange per neighbor.
//
// The communication-avoiding structure of the paper's variants is
// preserved where it matters: cg blocks on two allreduces per
// iteration; gropp overlaps its (r,r) reduction with the w = A r
// matvec; pipecg runs its single fused [gamma, delta] reduction
// concurrently with the halo exchange and matvec of the next step.

// errAborted ends a solve silently (the coordinator initiated the
// abort and is not waiting for a reply).
var errAborted = errors.New("cluster: solve aborted")

// distMethods names the methods the distributed runtime implements.
func distMethodSupported(name string) bool {
	switch name {
	case "cg", "cgfused", "pcg", "pipecg", "gropp":
		return true
	}
	return false
}

// runEnv is the per-solve execution environment on one worker.
type runEnv struct {
	w    *Worker
	s    *workerSolve
	ws   *workerShard
	sh   *Shard
	nl   int
	b    []float64
	send func(byte, *wire.Enc) error

	tol     float64
	maxIter int

	haloSeq uint64
	redSeq  uint64
	gather  []float64
	timer   *time.Timer

	iters     int
	converged bool
	resNorm   float64
	x         []float64
	stats     runStats
	phases    phaseSet
}

// runSolve executes one distributed solve and reports Done or Err on
// the control connection. Aborts exit silently.
func (w *Worker) runSolve(s *workerSolve, ws *workerShard, m *solveMsg, send func(byte, *wire.Enc) error) {
	env := &runEnv{
		w: w, s: s, ws: ws, sh: ws.sh, nl: ws.sh.NLocal(),
		b: m.B, send: send,
		tol: m.Tol, maxIter: m.MaxIter,
	}
	// Mirror the engine's defaults so tol/maxIter semantics match the
	// single-process solvers.
	if env.tol == 0 {
		env.tol = 1e-10
	}
	if env.maxIter == 0 {
		env.maxIter = 10 * ws.nGlobal
	}
	var err error
	switch m.Method {
	case "cg", "cgfused":
		err = env.runCG()
	case "pcg":
		err = env.runPCG(m.Precond)
	case "pipecg":
		err = env.runPipeCG()
	case "gropp":
		err = env.runGropp()
	default:
		err = &solveErr{code: codeUnknownMethod, detail: m.Method}
	}
	if env.timer != nil {
		env.timer.Stop()
	}
	if err != nil {
		if errors.Is(err, errAborted) {
			return
		}
		code, detail := codeFromErr(err)
		ee := &errMsg{SolveID: s.id, Code: code, Detail: detail}
		if serr := send(wire.MsgErr, ee.encode()); serr != nil {
			w.logf("worker: report solve error: %v", serr)
		}
		return
	}
	done := &doneMsg{
		SolveID:    s.id,
		Iterations: env.iters,
		Converged:  env.converged,
		ResNorm:    env.resNorm,
		X:          env.x,
		Stats:      env.stats,
		Phases:     env.phases,
	}
	if serr := send(wire.MsgDone, done.encode()); serr != nil {
		w.logf("worker: report done: %v", serr)
	}
}

// armTimer (re)arms the env's shared timeout timer.
func (env *runEnv) armTimer(d time.Duration) {
	if env.timer == nil {
		env.timer = time.NewTimer(d)
		return
	}
	if !env.timer.Stop() {
		select {
		case <-env.timer.C:
		default:
		}
	}
	env.timer.Reset(d)
}

// thresholdFrom converts the global (b,b) into the engine's absolute
// convergence threshold tol*||b|| (with the engine's ||b||=0 → 1
// convention).
func (env *runEnv) thresholdFrom(bb float64) float64 {
	bn := math.Sqrt(math.Max(bb, 0))
	if bn == 0 {
		bn = 1
	}
	return env.tol * bn
}

// reduceStart ships this worker's local inner-product contributions to
// the coordinator. Non-blocking: pair with reduceWait.
func (env *runEnv) reduceStart(vals ...float64) error {
	env.redSeq++
	m := reduceMsg{SolveID: env.s.id, Seq: env.redSeq, Vals: vals}
	if err := env.send(wire.MsgPartials, m.encode()); err != nil {
		return &solveErr{code: codeInternal, detail: "send partials: " + err.Error()}
	}
	env.stats.InnerProducts += uint64(len(vals))
	return nil
}

// reduceWait blocks until the coordinator's combined sums arrive,
// recording the blocked time as the reduction phase.
func (env *runEnv) reduceWait(dst []float64) error {
	start := time.Now()
	env.armTimer(env.w.cfg.HaloTimeout)
	select {
	case vals := <-env.s.combined:
		if len(vals) != len(dst) {
			return &solveErr{code: codeInternal, detail: fmt.Sprintf("combined arity %d want %d", len(vals), len(dst))}
		}
		copy(dst, vals)
	case <-env.s.abort:
		return errAborted
	case <-env.timer.C:
		return &solveErr{code: codeInternal, detail: "allreduce timeout"}
	}
	env.phases[phaseReduction].Observe(time.Since(start))
	return nil
}

// allreduce1/allreduce2 are the blocking forms.
func (env *runEnv) allreduce1(v float64) (float64, error) {
	if err := env.reduceStart(v); err != nil {
		return 0, err
	}
	var out [1]float64
	if err := env.reduceWait(out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}

func (env *runEnv) allreduce2(a, b float64) (float64, float64, error) {
	if err := env.reduceStart(a, b); err != nil {
		return 0, 0, err
	}
	var out [2]float64
	if err := env.reduceWait(out[:]); err != nil {
		return 0, 0, err
	}
	return out[0], out[1], nil
}

// recvFrom takes the next halo frame for (this solve, current haloSeq)
// from one peer, skipping stale frames and stashing frames addressed
// to a newer solve.
func (env *runEnv) recvFrom(peer string) (haloFrame, error) {
	if f, ok := env.w.stashTake(peer, env.s.id, env.haloSeq); ok {
		return f, nil
	}
	ch := env.w.inChan(peer)
	env.armTimer(env.w.cfg.HaloTimeout)
	for {
		select {
		case f := <-ch:
			switch {
			case f.solveID < env.s.id || (f.solveID == env.s.id && f.seq < env.haloSeq):
				continue // stale frame from an aborted/earlier exchange
			case f.solveID > env.s.id:
				// A retry started on the peers while this solve drains
				// its abort: park the frame for the successor.
				env.w.stashPut(peer, f)
				return haloFrame{}, errAborted
			case f.seq != env.haloSeq:
				return haloFrame{}, &solveErr{code: codeInternal,
					detail: fmt.Sprintf("halo seq %d from %s, want %d", f.seq, peer, env.haloSeq)}
			}
			return f, nil
		case <-env.s.abort:
			return haloFrame{}, errAborted
		case <-env.timer.C:
			return haloFrame{}, &solveErr{code: codeInternal, detail: "halo timeout waiting on " + peer}
		}
	}
}

// halo runs one batched exchange for the matvec input x: one gathered
// message to each neighbor, one contiguous copy from each neighbor into
// x's halo region.
func (env *runEnv) halo(x []float64) error {
	if len(env.ws.sends) == 0 && len(env.ws.recvs) == 0 {
		return nil
	}
	start := time.Now()
	env.haloSeq++
	for i := range env.ws.sends {
		snd := &env.ws.sends[i]
		buf := env.gather[:0]
		for _, li := range snd.local {
			buf = append(buf, x[li])
		}
		env.gather = buf
		m := reduceMsg{SolveID: env.s.id, Seq: env.haloSeq, Vals: buf}
		if err := snd.link.sendHalo(&m); err != nil {
			return &solveErr{code: codeInternal, detail: "halo send: " + err.Error()}
		}
	}
	nl := env.nl
	for _, rv := range env.ws.recvs {
		f, err := env.recvFrom(rv.FromID)
		if err != nil {
			return err
		}
		if len(f.vals) != rv.Count {
			return &solveErr{code: codeInternal,
				detail: fmt.Sprintf("halo batch %d values from %s, want %d", len(f.vals), rv.FromID, rv.Count)}
		}
		copy(x[nl+rv.Off:nl+rv.Off+rv.Count], f.vals)
	}
	env.phases[phaseHalo].Observe(time.Since(start))
	return nil
}

// spmv runs the local shard matvec under the spmv phase timer.
func (env *runEnv) spmv(dst, x []float64) {
	start := time.Now()
	env.sh.MulVec(dst, x)
	env.stats.MatVecs++
	env.phases[phaseSpMV].Observe(time.Since(start))
}

// precondFor returns the cached block-Jacobi / additive-Schwarz local:
// the named precond package preconditioner built on this shard's
// diagonal block.
func (env *runEnv) precondFor(name string) (precond.Preconditioner, error) {
	if name == "" {
		name = "identity"
	}
	if p := env.ws.pre[name]; p != nil {
		return p, nil
	}
	p, err := precond.ByName(name, env.ws.diagBlock())
	if err != nil {
		return nil, &solveErr{code: codeBadOption, detail: err.Error()}
	}
	env.ws.pre[name] = p
	return p, nil
}

// runCG mirrors the engine's fused-update Hestenes–Stiefel kernel
// (internal/krylov cgKernel): the blocking baseline with two global
// synchronization points per iteration.
func (env *runEnv) runCG() error {
	nl := env.nl
	x := make([]float64, nl)
	r := append([]float64(nil), env.b...)
	p := make([]float64, nl+env.sh.HaloN)
	ap := make([]float64, nl)
	copy(p[:nl], r)

	// x0 = 0, so (r,r) = (b,b): one startup allreduce yields both the
	// initial residual and the convergence threshold.
	rr, err := env.allreduce1(vec.Dot(r, r))
	if err != nil {
		return err
	}
	thr := env.thresholdFrom(rr)
	rn := math.Sqrt(rr)

	for env.iters < env.maxIter && rn > thr {
		it := time.Now()
		if err := env.halo(p); err != nil {
			return err
		}
		env.spmv(ap, p)

		pap, err := env.allreduce1(vec.Dot(p[:nl], ap))
		if err != nil {
			return err
		}
		if pap <= 0 {
			return &solveErr{code: codeIndefinite,
				detail: fmt.Sprintf("curvature %g at iteration %d", pap, env.iters)}
		}
		lambda := rr / pap

		rrNew, err := env.allreduce1(vec.FusedCGUpdate(lambda, p[:nl], ap, x, r))
		if err != nil {
			return err
		}
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			return &solveErr{code: codeBreakdown,
				detail: fmt.Sprintf("non-finite residual at iteration %d", env.iters)}
		}

		alpha := rrNew / rr
		vec.Xpay(r, alpha, p[:nl])
		env.stats.VectorUpdates += 3

		rr = rrNew
		rn = math.Sqrt(rr)
		env.iters++
		env.phases[phaseIter].Observe(time.Since(it))
	}
	env.converged = rn <= thr
	env.resNorm = rn
	env.x = x
	return nil
}

// runPCG mirrors the engine's pcg kernel with the global preconditioner
// replaced by the block-Jacobi local on this shard's diagonal block
// (zero-overlap additive Schwarz). With the "jacobi" local the block
// preconditioner equals global Jacobi exactly, so pcg+jacobi matches
// the single-process solve iteration for iteration.
func (env *runEnv) runPCG(precondName string) error {
	m, err := env.precondFor(precondName)
	if err != nil {
		return err
	}
	nl := env.nl
	x := make([]float64, nl)
	r := append([]float64(nil), env.b...)
	z := make([]float64, nl)
	p := make([]float64, nl+env.sh.HaloN)
	ap := make([]float64, nl)

	m.Apply(z, r)
	env.stats.PrecondSolves++
	copy(p[:nl], z)

	rz, rr, err := env.allreduce2(vec.Dot(r, z), vec.Dot(r, r))
	if err != nil {
		return err
	}
	thr := env.thresholdFrom(rr)
	rn := math.Sqrt(rr)

	for env.iters < env.maxIter && rn > thr {
		it := time.Now()
		if err := env.halo(p); err != nil {
			return err
		}
		env.spmv(ap, p)

		pap, err := env.allreduce1(vec.Dot(p[:nl], ap))
		if err != nil {
			return err
		}
		if pap <= 0 {
			return &solveErr{code: codeIndefinite,
				detail: fmt.Sprintf("curvature %g at iteration %d", pap, env.iters)}
		}
		if rz == 0 {
			return &solveErr{code: codeBreakdown,
				detail: fmt.Sprintf("(r,z) vanished at iteration %d", env.iters)}
		}
		lambda := rz / pap

		vec.Axpy(lambda, p[:nl], x)
		vec.Axpy(-lambda, ap, r)
		m.Apply(z, r)
		env.stats.PrecondSolves++
		env.stats.VectorUpdates += 2

		rzNew, rrNew, err := env.allreduce2(vec.Dot(r, z), vec.Dot(r, r))
		if err != nil {
			return err
		}
		if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			return &solveErr{code: codeBreakdown,
				detail: fmt.Sprintf("non-finite (r,z) at iteration %d", env.iters)}
		}

		beta := rzNew / rz
		vec.Xpay(z, beta, p[:nl])
		env.stats.VectorUpdates++

		rz, rr = rzNew, rrNew
		rn = math.Sqrt(rr)
		env.iters++
		env.phases[phaseIter].Observe(time.Since(it))
	}
	env.converged = rn <= thr
	env.resNorm = rn
	env.x = x
	return nil
}

// runGropp mirrors the engine's gropp kernel (internal/pipecg
// groppKernel). The gammaNew = (r,r) reduction genuinely overlaps the
// w = A r matvec here: partials are shipped, the halo exchange and
// local matvec run, and only then does the worker block on the
// combined value.
func (env *runEnv) runGropp() error {
	nl := env.nl
	hn := env.sh.HaloN
	x := make([]float64, nl)
	r := make([]float64, nl+hn) // matvec input in the overlapped step
	p := make([]float64, nl+hn)
	s := make([]float64, nl)
	w := make([]float64, nl)
	copy(r[:nl], env.b)
	copy(p[:nl], r[:nl])

	if err := env.halo(p); err != nil {
		return err
	}
	env.spmv(s, p) // s = A p

	gamma, err := env.allreduce1(vec.Dot(r[:nl], r[:nl]))
	if err != nil {
		return err
	}
	thr := env.thresholdFrom(gamma)
	rn := math.Sqrt(math.Max(gamma, 0))

	for env.iters < env.maxIter && rn > thr {
		it := time.Now()
		delta, err := env.allreduce1(vec.Dot(p[:nl], s))
		if err != nil {
			return err
		}
		if delta <= 0 || math.IsNaN(delta) {
			return &solveErr{code: codeIndefinite,
				detail: fmt.Sprintf("curvature %g at iteration %d", delta, env.iters)}
		}
		alpha := gamma / delta
		vec.Axpy(alpha, p[:nl], x)
		vec.Axpy(-alpha, s, r[:nl])
		env.stats.VectorUpdates += 2

		// Overlapped region: the (r,r) reduction is in flight while the
		// halo exchange and local w = A r matvec run.
		if err := env.reduceStart(vec.Dot(r[:nl], r[:nl])); err != nil {
			return err
		}
		if err := env.halo(r); err != nil {
			return err
		}
		env.spmv(w, r)
		var out [1]float64
		if err := env.reduceWait(out[:]); err != nil {
			return err
		}
		gammaNew := out[0]

		beta := gammaNew / gamma
		vec.Xpay(r[:nl], beta, p[:nl])
		vec.Xpay(w, beta, s) // s = A p maintained by recurrence
		env.stats.VectorUpdates += 2

		gamma = gammaNew
		rn = math.Sqrt(math.Max(gamma, 0))
		env.iters++
		env.phases[phaseIter].Observe(time.Since(it))
	}
	env.converged = rn <= thr
	env.resNorm = rn
	env.x = x
	return nil
}

// runPipeCG mirrors the engine's Ghysels–Vanroose kernel (internal/
// pipecg gvKernel): the single fused [gamma, delta] allreduce of each
// iteration is started at the end of the previous one and collected
// only after the next halo exchange and matvec — the full pipelined
// overlap the method exists for. The price, exactly as in the serial
// kernel's accounting, is one speculative matvec past the convergence
// point; x is untouched by it, so the iterate matches the engine's
// bitwise.
func (env *runEnv) runPipeCG() error {
	nl := env.nl
	hn := env.sh.HaloN
	x := make([]float64, nl)
	r := make([]float64, nl+hn)
	w := make([]float64, nl+hn)
	p := make([]float64, nl)
	s := make([]float64, nl)
	q := make([]float64, nl)
	nv := make([]float64, nl)
	copy(r[:nl], env.b)

	if err := env.halo(r); err != nil {
		return err
	}
	env.spmv(w[:nl], r) // w = A r

	if err := env.reduceStart(vec.Dot(r[:nl], r[:nl]), vec.Dot(w[:nl], r[:nl])); err != nil {
		return err
	}
	var gamma, delta, gammaOld, alphaOld float64
	first := true
	thr := -1.0
	var out [2]float64
	for {
		it := time.Now()
		// Next step's halo + matvec run while the reduction is in
		// flight.
		if err := env.halo(w); err != nil {
			return err
		}
		env.spmv(nv, w)
		if err := env.reduceWait(out[:]); err != nil {
			return err
		}
		gamma, delta = out[0], out[1]
		if thr < 0 {
			// First combined value: gamma0 = (b,b) since x0 = 0.
			thr = env.thresholdFrom(gamma)
		}
		rn := math.Sqrt(math.Max(gamma, 0))
		if rn <= thr {
			env.converged = true
			env.resNorm = rn
			break
		}
		if env.iters >= env.maxIter {
			env.resNorm = rn
			break
		}

		var beta, alpha float64
		if first {
			beta = 0
			if delta == 0 {
				return &solveErr{code: codeBreakdown, detail: "(w,r) vanished at startup"}
			}
			alpha = gamma / delta
			first = false
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if den == 0 || math.IsNaN(den) {
				return &solveErr{code: codeBreakdown,
					detail: fmt.Sprintf("pipelined scalar breakdown at iteration %d", env.iters)}
			}
			alpha = gamma / den
		}
		if alpha <= 0 || math.IsNaN(alpha) {
			return &solveErr{code: codeIndefinite,
				detail: fmt.Sprintf("nonpositive step %g at iteration %d", alpha, env.iters)}
		}

		vec.Xpay(r[:nl], beta, p)
		vec.Xpay(w[:nl], beta, s)
		vec.Xpay(nv, beta, q)
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, s, r[:nl])
		vec.Axpy(-alpha, q, w[:nl])
		env.stats.VectorUpdates += 6

		gammaOld, alphaOld = gamma, alpha
		if err := env.reduceStart(vec.Dot(r[:nl], r[:nl]), vec.Dot(w[:nl], r[:nl])); err != nil {
			return err
		}
		env.iters++
		env.phases[phaseIter].Observe(time.Since(it))
	}
	env.x = x
	return nil
}
