// Package cluster is the distributed-memory tier: it shards one
// operator's rows across a fleet of worker processes and runs the
// repository's CG variants as true distributed iterations, reproducing
// the message-passing setting the paper's communication-avoiding
// restructurings were designed for.
//
// # Architecture
//
// A Coordinator owns fleet membership and placement. Each Worker is a
// passive process: it accepts one control connection from the
// coordinator and peer connections from other workers, holds shards of
// placed operators, and executes its piece of each solve.
//
// Placement (Coordinator.Place) partitions the operator's rows with
// the same nnz-balanced sparse.RowPartition the shared-memory pool
// uses, then ships each worker its shard — local CSR with columns
// remapped to [owned | halo] — plus a fully resolved halo schedule:
// which contiguous halo range each neighbor's message fills, and which
// owned entries to gather for each neighbor. All structure is resolved
// at placement; per-iteration messages carry only float64 values.
//
// A distributed solve (Coordinator.Solve) then runs the engine's
// kernel math unchanged on every worker:
//
//   - SpMV: one batched halo message per neighbor per iteration over
//     persistent worker-to-worker connections, then the local shard
//     matvec.
//   - Inner products: each worker ships its local partial sums; the
//     coordinator combines them into one global sum per reduction and
//     broadcasts it. Every worker sees identical scalars, so all
//     convergence decisions stay in lockstep.
//   - Preconditioning: block-Jacobi / zero-overlap additive Schwarz.
//     Each worker builds the named precond local ("jacobi", "ssor",
//     "ic0") on its diagonal block; with "jacobi" this equals the
//     global preconditioner exactly.
//
// The variants keep their communication structure: cg blocks on two
// allreduces per iteration; gropp overlaps its (r,r) reduction with
// the w = A r matvec; pipecg's single fused [gamma, delta] reduction
// is in flight during the next halo exchange and matvec.
//
// # Fault tolerance
//
// The coordinator heartbeats every worker. When one dies, in-flight
// solves abort, the operator re-partitions across the survivors
// (the coordinator retains the full matrix), and the solve retries:
// capacity degrades, availability does not.
//
// # Observability
//
// Workers time every iteration's phases (spmv, halo, reduction wait,
// whole iteration) into local histograms shipped once per solve; the
// coordinator merges them fleet-wide per method for /metrics.
package cluster
