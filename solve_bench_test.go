// Benchmarks for the public serving surface, persisted by `make bench`
// into BENCH_solve.json: what the registry dispatch costs over a direct
// internal call, what Session reuse saves over a fresh New per solve,
// and how Batch throughput scales with the right-hand-side count.
//
// Run:  go test -bench='SolveDispatch|SessionReuse|FreshSolve|Batch' -benchmem
package vrcg_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"vrcg/internal/krylov"
	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// benchSystem is the shared serving-shaped workload: a mid-size Poisson
// system solved to a loose tolerance, so per-solve framework overhead
// is visible next to the iteration work.
func benchSystem(m int) (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(m)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return a, b
}

// BenchmarkSolveDispatch measures the registry-dispatch overhead: the
// same CG solve through solve.New + Solver.Solve (per-call option
// parsing, canonical Result) vs the direct internal workspace call.
func BenchmarkSolveDispatch(b *testing.B) {
	a, rhs := benchSystem(24)
	tol := 1e-8

	b.Run("registry", func(b *testing.B) {
		s := solve.MustNew("cg")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(a, rhs, solve.WithTol(tol)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		ws := krylov.NewWorkspace(a.Dim(), nil)
		o := krylov.Options{Tol: tol}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.CG(a, rhs, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSessionReuse is the amortized serving path: one prepared
// Session solving the same-order system repeatedly. Steady state must
// report 0 allocs/op (the acceptance criterion of the Session API).
func BenchmarkSessionReuse(b *testing.B) {
	a, rhs := benchSystem(24)
	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-8))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Solve(rhs); err != nil { // warm the workspace
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreshSolvePerCall is the contrast: a fresh solver (and
// workspace) built for every solve, the cost Session amortizes away.
func BenchmarkFreshSolvePerCall(b *testing.B) {
	a, rhs := benchSystem(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := solve.MustNew("cg")
		if _, err := s.Solve(a, rhs, solve.WithTol(1e-8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionPerMethod is the full-registry serving baseline: a
// warm Session.Solve for every registered method, reporting ns/op and
// allocs/op per method so BENCH_solve.json tracks the whole registry's
// perf trajectory. Every engine-backed method — the real-parallel
// parcg family included — must report 0 allocs/op (the unified-engine
// acceptance criterion, gated by benchjson -gate-allocs in make
// bench).
func BenchmarkSessionPerMethod(b *testing.B) {
	a, rhs := benchSystem(24)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range solve.Methods() {
		b.Run(method, func(b *testing.B) {
			opts := []solve.Option{solve.WithTol(1e-8)}
			switch method {
			case "pcg":
				opts = append(opts, solve.WithPreconditioner(jac))
			case "parcg":
				// The deep look-ahead recurrences need divergence-guard
				// restarts to grind past 1e-6 on this conditioning (~2300
				// iterations to 1e-8 vs ~40 for cg); 1e-6 keeps the row
				// cheap and on the pure-recurrence path (matching
				// TestSessionZeroAllocAllMethods).
				opts = []solve.Option{solve.WithTol(1e-6)}
			}
			sess, err := solve.NewSession(method, a, opts...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sess.Solve(rhs) // warm the workspace and kernel caches
			if err != nil && !errors.Is(err, solve.ErrNotConverged) {
				b.Fatal(err)
			}
			iters := res.Iterations
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Solve(rhs); err != nil && !errors.Is(err, solve.ErrNotConverged) {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(iters), "iters")
		})
	}
}

// BenchmarkParcgFamily pins the tentpole perf criterion at serving
// scale: the real-parallel parcg kernels against pipecg on an n≈1e5
// system, every method running a fixed 50-iteration budget (tolerance
// it cannot reach) so ns/op compares identical iteration counts. The
// acceptance bar is parcg-family ns/op within 2× of pipecg, at 0
// allocs/op warm.
func BenchmarkParcgFamily(b *testing.B) {
	a := sparse.Poisson2D(317) // n = 100489
	rhs := make([]float64, a.Dim())
	for i := range rhs {
		rhs[i] = 1 + float64(i%7)
	}
	pool := sparse.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	// A monitor stop pins the iteration count without tripping the
	// not-converged error path (which would bill error construction to
	// every method equally but hide the zero-alloc property).
	stop := solve.MonitorFunc(func(iter int, _ float64) bool { return iter < 50 })
	for _, method := range []string{"pipecg", "parcg-cg", "parcg-pipe", "parcg"} {
		b.Run(method, func(b *testing.B) {
			sess, err := solve.NewSession(method, a,
				solve.WithTol(1e-30), solve.WithMonitor(stop), solve.WithPool(pool))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Solve(rhs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Solve(rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatch measures multi-RHS throughput at 1, 8, and 64
// right-hand sides; the solves/s metric normalizes across counts so the
// fan-out win is directly readable.
func BenchmarkBatch(b *testing.B) {
	a, rhs := benchSystem(24)
	for _, nrhs := range []int{1, 8, 64} {
		B := make([][]float64, nrhs)
		for k := range B {
			bk := append([]float64(nil), rhs...)
			bk[k%len(bk)] += float64(k)
			B[k] = bk
		}
		b.Run(fmt.Sprintf("rhs=%d", nrhs), func(b *testing.B) {
			sess, err := solve.NewSession("cg", a, solve.WithTol(1e-8))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solve.Batch(sess, B); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(nrhs)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}
