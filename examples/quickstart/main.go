// Quickstart: solve a 2D Poisson system with the restructured conjugate
// gradient iteration (Van Rosendale 1983) and compare against standard
// CG, through the library's public surface: problem generators
// (internal/mat) and the solve registry — one Solver interface, one
// Result, a method name per algorithm.
package main

import (
	"fmt"
	"log"

	"vrcg/internal/mat"
	"vrcg/internal/vec"
	"vrcg/solve"
)

func main() {
	// A = 5-point Laplacian on a 32x32 grid (n = 1024), b from a known
	// solution so the error is checkable.
	a := mat.Poisson2D(32)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 42)
	b := vec.New(n)
	a.MulVec(b, xTrue)

	// Standard CG (the paper's §2 baseline).
	cg, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard CG : %3d iterations, true residual %.2e, %s\n",
		cg.Iterations, cg.TrueResidualNorm, cg.Stats)
	xCG := cg.X.Clone() // Result.X aliases the solver workspace

	// The restructured algorithm with look-ahead k = 3: identical
	// iterates in exact arithmetic, but every (r,r) and (p,Ap) comes
	// from the paper's scalar recurrences — the inner-product fan-ins
	// could be pipelined k iterations deep on a parallel machine.
	vr, err := solve.MustNew("vrcg").Solve(a, b, solve.WithLookahead(3), solve.WithTol(1e-10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VRCG (k=3)  : %3d iterations, true residual %.2e, %s\n",
		vr.Iterations, vr.TrueResidualNorm, vr.Stats)

	// The canonical Result makes the paper's quantity directly
	// comparable: how often each schedule blocks on a reduction.
	fmt.Printf("blocking syncs: CG %d vs VRCG %d\n", cg.Syncs, vr.Syncs)

	diff := vec.New(n)
	vec.Sub(diff, xCG, vr.X)
	fmt.Printf("solution agreement ||x_cg - x_vrcg|| = %.2e\n", vec.Norm2(diff))
}
