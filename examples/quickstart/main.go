// Quickstart: the external-consumer flow through the public surface
// only (vrcg/sparse + vrcg/solve, no internal imports). Build a 2D
// Poisson system, prepare a reusable Session, compare standard CG with
// the paper's restructured iteration (Van Rosendale 1983), then serve a
// batch of right-hand sides through the multi-RHS path.
package main

import (
	"fmt"
	"log"
	"math"

	"vrcg/solve"
	"vrcg/sparse"
)

func main() {
	// A = 5-point Laplacian on a 32x32 grid (n = 1024), b from a known
	// solution so the error is checkable. Everything is plain []float64.
	a := sparse.Poisson2D(32)
	n := a.Dim()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i + 1))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)

	// A Session is the serving idiom: method + operator + options
	// prepared once, then cheap (zero-allocation) repeated solves.
	cgSess, err := solve.NewSession("cg", a, solve.WithTol(1e-10))
	if err != nil {
		log.Fatal(err)
	}
	cg, err := cgSess.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard CG : %3d iterations, true residual %.2e, %s\n",
		cg.Iterations, cg.TrueResidualNorm, cg.Stats)
	xCG := append([]float64(nil), cg.X...) // Result.X aliases the session workspace

	// The restructured algorithm with look-ahead k = 3: identical
	// iterates in exact arithmetic, but every (r,r) and (p,Ap) comes
	// from the paper's scalar recurrences — the inner-product fan-ins
	// could be pipelined k iterations deep on a parallel machine.
	vr, err := solve.MustNew("vrcg").Solve(a, b, solve.WithLookahead(3), solve.WithTol(1e-10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VRCG (k=3)  : %3d iterations, true residual %.2e, %s\n",
		vr.Iterations, vr.TrueResidualNorm, vr.Stats)

	// The canonical Result makes the paper's quantity directly
	// comparable: how often each schedule blocks on a reduction.
	fmt.Printf("blocking syncs: CG %d vs VRCG %d\n", cg.Syncs, vr.Syncs)

	var maxDiff float64
	for i := range xCG {
		if d := math.Abs(xCG[i] - vr.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("solution agreement ||x_cg - x_vrcg||_inf = %.2e\n", maxDiff)

	// Many right-hand sides against the same operator: Batch fans them
	// out across forked sessions (one workspace per worker, round-robin
	// scheduling) and aggregates the results in input order.
	B := make([][]float64, 16)
	for k := range B {
		bk := make([]float64, n)
		for i := range bk {
			bk[i] = math.Sin(float64((k + 2) * (i + 1)))
		}
		B[k] = bk
	}
	results, err := solve.Batch(cgSess, B)
	if err != nil {
		log.Fatal(err)
	}
	iters := 0
	for _, r := range results {
		iters += r.Iterations
	}
	fmt.Printf("batch: %d rhs solved, %d total iterations, all converged=%v\n",
		len(results), iters, allConverged(results))
}

func allConverged(rs []solve.Result) bool {
	for _, r := range rs {
		if !r.Converged {
			return false
		}
	}
	return true
}
