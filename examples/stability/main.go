// Stability study: the part of the story the 1983 paper could not see.
// In exact arithmetic the look-ahead recurrences reproduce CG exactly;
// in floating point they drift, and the drift grows with the look-ahead
// k and the conditioning. This example plots convergence histories for
// standard CG and VRCG under three stabilization regimes, making the
// successor-motivating behaviour visible.
package main

import (
	"errors"
	"fmt"
	"log"

	"vrcg/internal/trace"
	"vrcg/internal/vec"
	"vrcg/solve"
	"vrcg/sparse"
)

func main() {
	a := sparse.Poisson1D(128) // kappa ~ 6700: hard enough to expose drift
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 5)
	const tol = 1e-10
	maxIter := 700

	series := []trace.Series{}

	cg, err := solve.MustNew("cg").Solve(a, b,
		solve.WithTol(tol), solve.WithMaxIter(maxIter), solve.WithHistory(true))
	if err != nil && !errors.Is(err, solve.ErrNotConverged) {
		log.Fatal(err)
	}
	series = append(series, trace.Series{Name: fmt.Sprintf("CG (%d iters)", cg.Iterations), Values: cg.History})

	runs := []struct {
		name string
		opts []solve.Option
	}{
		{"VRCG k=4, no stabilization", []solve.Option{solve.WithReanchorEvery(-1)}},
		{"VRCG k=4, re-anchor+refresh", nil},
		{"VRCG k=4, residual replace", []solve.Option{solve.WithResidualReplaceEvery(8)}},
	}
	vrcg := solve.MustNew("vrcg")
	for _, run := range runs {
		opts := append([]solve.Option{
			solve.WithLookahead(4), solve.WithTol(tol), solve.WithMaxIter(maxIter), solve.WithHistory(true),
		}, run.opts...)
		out, err := vrcg.Solve(a, b, opts...)
		if err != nil && !errors.Is(err, solve.ErrNotConverged) {
			fmt.Printf("%-32s breakdown: %v\n", run.name, err)
			continue
		}
		label := fmt.Sprintf("%s (%d iters, conv=%v)", run.name, out.Iterations, out.Converged)
		series = append(series, trace.Series{Name: label, Values: out.History})
		fmt.Printf("%-32s iters=%-5d converged=%-5v true rel residual=%.2e\n",
			run.name, out.Iterations, out.Converged, out.TrueResidualNorm/vec.Norm2(b))
	}

	fmt.Println()
	fmt.Print(trace.SemilogPlot(series, 90, 22))
	fmt.Println("\nWithout stabilization the recurrence residual plateaus or wanders —")
	fmt.Println("the finite-precision behaviour that led to Chronopoulos–Gear (1989)")
	fmt.Println("and Ghysels–Vanroose (2014). With stabilization the 1983 algorithm")
	fmt.Println("tracks CG all the way down.")
}
