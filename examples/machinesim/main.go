// Machine simulation: runs the four algorithms as distributed programs
// on the simulated P-processor machine with hand-rolled collectives, and
// sweeps the message latency alpha. As alpha grows, standard CG pays two
// log(P) reductions per iteration, pipelined CG hides one, s-step
// semantics amortize them, and the paper's k-deep pipeline hides them
// entirely. The solver comparison runs through the solve registry: the
// "parcg*" methods build the machine, partition, and halo internally
// from a machine configuration option.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"vrcg/internal/collective"
	"vrcg/internal/machine"
	"vrcg/internal/vec"
	"vrcg/solve"
	"vrcg/sparse"
)

func main() {
	// First, the collectives themselves: cost of one allreduce vs P.
	fmt.Println("Hand-rolled recursive-doubling allreduce (alpha=1, beta=0.01):")
	fmt.Printf("%8s %12s %10s\n", "P", "time", "time/log2P")
	for _, p := range []int{16, 64, 256, 1024, 4096} {
		m := machine.New(machine.DefaultConfig(p))
		collective.AllreduceSum(m, make([]float64, p))
		lg := 0
		for v := 1; v < p; v <<= 1 {
			lg++
		}
		fmt.Printf("%8d %12.2f %10.2f\n", p, m.MaxClock(), m.MaxClock()/float64(lg))
	}
	fmt.Println("(logarithmic, as the paper's c*log(N) fan-in assumes)")

	// The solver comparison.
	a := sparse.TridiagToeplitz(4096, 4.2, -1) // kappa ~ 2.6
	p := 256
	bs := vec.New(a.Dim())
	vec.Random(bs, 3)

	fmt.Printf("\nPer-iteration parallel time, P=%d, n=%d (kappa~2.6):\n", p, a.Dim())
	fmt.Printf("%8s %10s %10s %12s %14s\n", "alpha", "CG", "PIPECG", "VRCG(k=8)", "blocking(k=8)")
	for _, alpha := range []float64{1, 4, 16, 64, 256} {
		cfg := machine.Config{P: p, Alpha: alpha, Beta: 0.01, FlopTime: 0.001}

		rate := func(method string, extra ...solve.Option) float64 {
			opts := append([]solve.Option{
				solve.WithMachineConfig(cfg), solve.WithTol(1e-6), solve.WithMaxIter(120),
			}, extra...)
			res, err := solve.MustNew(method).Solve(a, bs, opts...)
			if err != nil && !errors.Is(err, solve.ErrNotConverged) {
				log.Fatal(err)
			}
			if res == nil {
				return math.NaN()
			}
			return res.PerIterTime()
		}
		cg := rate("parcg-cg")
		pipe := rate("parcg-pipe")
		vr := rate("parcg", solve.WithLookahead(8))
		blk := rate("parcg", solve.WithLookahead(8), solve.WithBlocking(true))
		fmt.Printf("%8.0f %10.1f %10.1f %12.1f %14.1f\n", alpha, cg, pipe, vr, blk)
	}
	fmt.Println("\nShape: CG ~ 2*allreduce + matvec; PIPECG hides one reduction;")
	fmt.Println("blocking (s-step) amortizes the batch; VRCG's k-deep pipeline")
	fmt.Println("removes the reduction latency from the critical path (Figure 1).")
}
