// Adaptive driving: uses the step-level Iterator API to embed the
// look-ahead solver in a custom control loop (watching the residual,
// switching problems mid-stream), and AutoK to size the look-ahead for
// a machine instead of guessing — the constructive form of the paper's
// "choose k = log N" prescription.
package main

import (
	"fmt"
	"log"

	"vrcg/internal/core"
	"vrcg/internal/machine"
	"vrcg/internal/mat"
	"vrcg/internal/parcg"
	"vrcg/internal/vec"
)

func main() {
	// Part 1: AutoK across machines. The look-ahead must cover the
	// batched reduction with k iterations of local work; both sides
	// scale with the machine constants, so k tracks their ratio
	// (~ log2(P)*(alpha + beta*w) / (halo*alpha + flops)) rather than
	// alpha alone: cheap-compute machines need deeper look-ahead even
	// at low latency.
	a := mat.TridiagToeplitz(4096, 4.2, -1)
	p := 256
	dm := parcg.NewDistMatrix(a, p)
	fmt.Println("AutoK: look-ahead sized to the machine (P=256, n=4096, k covers the reduction):")
	fmt.Printf("%10s %8s\n", "alpha", "k")
	for _, alpha := range []float64{0.5, 4, 32, 256, 2048} {
		cfg := machine.Config{P: p, Alpha: alpha, Beta: 0.01, FlopTime: 0.001}
		fmt.Printf("%10.1f %8d\n", alpha, parcg.AutoK(cfg, dm, 32))
	}

	// Part 2: the Iterator — run VRCG step by step under external
	// control, with a watchdog that reports progress milestones.
	prob, err := mat.VarCoeffPoisson2D(24, mat.JumpCoefficient(100))
	if err != nil {
		log.Fatal(err)
	}
	n := prob.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 12)
	b := vec.New(n)
	prob.MulVec(b, xTrue)

	it, err := core.NewIterator(prob, b, core.Options{K: 2, Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIterator on a jump-coefficient (contrast 100) 24x24 problem, n=%d:\n", n)
	start := it.ResidualNorm()
	milestone := start / 100
	for {
		more, err := it.Step()
		if err != nil {
			log.Fatal(err)
		}
		if it.ResidualNorm() <= milestone {
			fmt.Printf("  iteration %4d: residual %.2e (true %.2e)\n",
				it.Iteration(), it.ResidualNorm(), it.TrueResidualNorm())
			milestone /= 100
		}
		if !more {
			break
		}
	}
	fmt.Printf("converged in %d iterations; stats: %s\n", it.Iteration(), it.Stats())

	errV := vec.New(n)
	vec.Sub(errV, it.X(), xTrue)
	fmt.Printf("solution error ||x - x*|| = %.2e\n", vec.Norm2(errV))
}
