// Adaptive driving: embeds the look-ahead solver in a custom control
// loop through the public solve API — a Monitor watchdog that reports
// progress milestones, a context deadline that bounds the solve — and
// uses AutoK to size the look-ahead for a machine instead of guessing,
// the constructive form of the paper's "choose k = log N" prescription.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/internal/vec"
	"vrcg/solve"
	"vrcg/sparse"
)

func main() {
	// Part 1: AutoK across machines. The look-ahead must cover the
	// batched reduction with k iterations of local work; both sides
	// scale with the machine constants, so k tracks their ratio
	// (~ log2(P)*(alpha + beta*w) / (halo*alpha + flops)) rather than
	// alpha alone: cheap-compute machines need deeper look-ahead even
	// at low latency.
	a := sparse.TridiagToeplitz(4096, 4.2, -1)
	p := 256
	dm := parcg.NewDistMatrix(a, p)
	fmt.Println("AutoK: look-ahead sized to the machine (P=256, n=4096, k covers the reduction):")
	fmt.Printf("%10s %8s\n", "alpha", "k")
	for _, alpha := range []float64{0.5, 4, 32, 256, 2048} {
		cfg := machine.Config{P: p, Alpha: alpha, Beta: 0.01, FlopTime: 0.001}
		fmt.Printf("%10.1f %8d\n", alpha, parcg.AutoK(cfg, dm, 32))
	}

	// Part 2: a Monitor watchdog — run VRCG under external observation,
	// reporting each time the residual drops by two more orders of
	// magnitude. Returning false from Observe would stop the solve.
	prob, err := sparse.VarCoeffPoisson2D(24, sparse.JumpCoefficient(100))
	if err != nil {
		log.Fatal(err)
	}
	n := prob.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 12)
	b := vec.New(n)
	prob.MulVec(b, xTrue)

	fmt.Printf("\nMonitor on a jump-coefficient (contrast 100) 24x24 problem, n=%d:\n", n)
	milestone := vec.Norm2(b) / 100
	res, err := solve.MustNew("vrcg").Solve(prob, b,
		solve.WithLookahead(2), solve.WithTol(1e-10),
		solve.WithMonitor(solve.MonitorFunc(func(iter int, resNorm float64) bool {
			if resNorm <= milestone {
				fmt.Printf("  iteration %4d: residual %.2e\n", iter, resNorm)
				milestone /= 100
			}
			return true
		})))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations; stats: %s\n", res.Iterations, res.Stats)

	errV := vec.New(n)
	vec.Sub(errV, res.X, xTrue)
	fmt.Printf("solution error ||x - x*|| = %.2e\n", vec.Norm2(errV))

	// Part 3: context cancellation bounds the solve — the partial
	// result comes back with an error wrapping context.Canceled, and
	// the iterate is still usable as a warm start (WithX0).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := solve.MustNew("cg").Solve(prob, b,
		solve.WithTol(1e-12), solve.WithContext(ctx),
		solve.WithMonitor(solve.MonitorFunc(func(iter int, _ float64) bool {
			if iter == 10 {
				cancel() // e.g. an external budget expired
			}
			return true
		})))
	fmt.Printf("\ncancellation demo: canceled=%v after %d iterations\n",
		errors.Is(err, context.Canceled), partial.Iterations)
	resumed, err := solve.MustNew("cg").Solve(prob, b, solve.WithTol(1e-10), solve.WithX0(partial.X))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm restart from the partial iterate: %d more iterations\n", resumed.Iterations)
}
