// Depth scaling: the paper's headline claim, live. Prints per-iteration
// parallel time (dependency depth) for standard CG versus the
// restructured algorithm as the problem grows, showing c*log(N) against
// c*log(log(N)), the §3 doubling at k=1, and the §6 max(log d, log log N)
// surface.
package main

import (
	"fmt"

	"vrcg/internal/depth"
)

func main() {
	d := 5 // 2D five-point stencil
	fmt.Println("Per-iteration parallel time (dependency-depth units), d = 5")
	fmt.Printf("%8s %12s %14s %12s %10s\n", "log2(N)", "CG", "VRCG(k=logN)", "VRCG(k=1)", "speedup")
	for _, lg := range []int{6, 8, 10, 12, 14, 16, 18, 20, 22, 24} {
		n := 1 << lg
		cg := depth.CGRate(n, d)
		vr := depth.VRCGRate(n, d, lg)
		k1 := depth.VRCGRate(n, d, 1)
		fmt.Printf("%8d %12.2f %14.2f %12.2f %9.2fx\n", lg, cg, vr, k1, cg/vr)
	}

	fmt.Println("\nCG grows ~2 per doubling-of-log (two length-N fan-ins per iteration);")
	fmt.Println("VRCG(k=log N) is near-flat — the summations pipeline behind k iterations")
	fmt.Println("and only the log(6k+5) ~ log log N contraction remains (paper abstract).")
	fmt.Println("VRCG(k=1) halves the slope: the paper's §3 'approximately double'.")

	fmt.Println("\nSparsity term (paper §6): per-iteration time = max(log d, log log N) + c")
	fmt.Printf("%8s %10s %16s\n", "d", "log2(d)", "VRCG rate (2^20)")
	for _, dd := range []int{3, 5, 9, 27, 128, 1024, 16384} {
		fmt.Printf("%8d %10d %16.2f\n", dd, depth.Log2Ceil(dd), depth.VRCGRate(1<<20, dd, 20))
	}
	fmt.Println("\nFlat below the crossover, slope ~1 per log2(d) above it.")
}
