// Poisson study: the workload class the paper's introduction motivates —
// large sparse SPD systems from elliptic PDEs. Solves the 3D Poisson
// equation with every implemented method (classic, preconditioned,
// restructured, and the published successors) and prints a comparison
// table of iterations, work, and achieved accuracy.
package main

import (
	"fmt"
	"log"

	"vrcg/internal/core"
	"vrcg/internal/krylov"
	"vrcg/internal/mat"
	"vrcg/internal/pipecg"
	"vrcg/internal/precond"
	"vrcg/internal/sstep"
	"vrcg/internal/vec"
)

func main() {
	const m = 12 // 12^3 = 1728 unknowns
	a := mat.Poisson3D(m)
	n := a.Dim()
	fmt.Printf("3D Poisson, %dx%dx%d grid, n=%d, nnz=%d, d=%d\n\n",
		m, m, m, n, a.NNZ(), a.MaxRowNonzeros())

	xTrue := vec.New(n)
	vec.Random(xTrue, 7)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	bn := vec.Norm2(b)
	const tol = 1e-9

	fmt.Printf("%-22s %6s %10s %12s %10s\n", "method", "iters", "matvecs", "inner prods", "rel resid")
	row := func(name string, iters, mv, ips int, trueRes float64) {
		fmt.Printf("%-22s %6d %10d %12d %10.2e\n", name, iters, mv, ips, trueRes/bn)
	}

	if r, err := krylov.SteepestDescent(a, b, krylov.Options{Tol: tol, MaxIter: 200000}); err == nil {
		row("steepest descent", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
	}
	r, err := krylov.CG(a, b, krylov.Options{Tol: tol})
	if err != nil {
		log.Fatal(err)
	}
	row("CG (Hestenes-Stiefel)", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)

	if jac, err := precond.NewJacobi(a); err == nil {
		if r, err := krylov.PCG(a, jac, b, krylov.Options{Tol: tol}); err == nil {
			row("PCG + Jacobi", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
		}
	}
	if ss, err := precond.NewSSOR(a, 1.4); err == nil {
		if r, err := krylov.PCG(a, ss, b, krylov.Options{Tol: tol}); err == nil {
			row("PCG + SSOR(1.4)", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
		}
	}
	if r, err := krylov.CR(a, b, krylov.Options{Tol: tol}); err == nil {
		row("conjugate residuals", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
	}
	for _, k := range []int{1, 2, 4} {
		if r, err := core.Solve(a, b, core.Options{K: k, Tol: tol}); err == nil {
			row(fmt.Sprintf("VRCG (k=%d)", k), r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
		}
	}
	if r, err := pipecg.GhyselsVanroose(a, b, pipecg.Options{Tol: tol}); err == nil {
		row("PIPECG (Ghysels-V.)", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
	}
	if r, err := pipecg.Gropp(a, b, pipecg.Options{Tol: tol}); err == nil {
		row("Gropp async CG", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
	}
	if r, err := sstep.Solve(a, b, sstep.Options{S: 4, Tol: tol}); err == nil {
		row("s-step CG (s=4)", r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.TrueResidualNorm)
	}

	fmt.Println("\nAll Krylov methods take essentially the same iteration count (same")
	fmt.Println("mathematics); they differ in how their inner-product dependencies")
	fmt.Println("schedule on a parallel machine — see examples/depthscaling.")
}
