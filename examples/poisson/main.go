// Poisson study: the workload class the paper's introduction motivates —
// large sparse SPD systems from elliptic PDEs. Solves the 3D Poisson
// equation with every method in the solve registry — one option set,
// one loop, no per-method wiring — and prints a comparison table of
// iterations, work, blocking synchronizations, and achieved accuracy.
package main

import (
	"errors"
	"fmt"
	"log"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

func main() {
	const m = 12 // 12^3 = 1728 unknowns
	a := sparse.Poisson3D(m)
	n := a.Dim()
	fmt.Printf("3D Poisson, %dx%dx%d grid, n=%d, nnz=%d, d=%d\n\n",
		m, m, m, n, a.NNZ(), a.MaxRowNonzeros())

	xTrue := vec.New(n)
	vec.Random(xTrue, 7)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	bn := vec.Norm2(b)
	const tol = 1e-9

	jac, err := precond.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}

	// One option set drives every registered method: each solver
	// consumes the options it understands (the preconditioner only
	// matters to pcg, the look-ahead to vrcg/parcg, ...).
	opts := []solve.Option{
		solve.WithTol(tol),
		solve.WithPreconditioner(jac),
		solve.WithLookahead(2),
		solve.WithBlockSize(4),
		solve.WithProcessors(8),
	}

	fmt.Printf("%-12s %6s %10s %12s %8s %10s\n", "method", "iters", "matvecs", "inner prods", "syncs", "rel resid")
	for _, name := range solve.Methods() {
		r, err := solve.MustNew(name).Solve(a, b, opts...)
		if err != nil && !errors.Is(err, solve.ErrNotConverged) {
			fmt.Printf("%-12s %v\n", name, err)
			continue
		}
		fmt.Printf("%-12s %6d %10d %12d %8d %10.2e\n",
			name, r.Iterations, r.Stats.MatVecs, r.Stats.InnerProducts, r.Syncs, r.TrueResidualNorm/bn)
	}

	// The look-ahead depth is the paper's tuning knob: deeper pipelines
	// hide longer reduction latencies but drift faster.
	fmt.Printf("\nVRCG look-ahead sweep:\n%-12s %6s %8s %12s\n", "method", "iters", "syncs", "rel resid")
	vrcg := solve.MustNew("vrcg")
	for _, k := range []int{1, 2, 4} {
		r, err := vrcg.Solve(a, b, solve.WithTol(tol), solve.WithLookahead(k))
		if err != nil && !errors.Is(err, solve.ErrNotConverged) {
			fmt.Printf("vrcg (k=%d): %v\n", k, err)
			continue
		}
		fmt.Printf("vrcg (k=%d)   %6d %8d %12.2e\n", k, r.Iterations, r.Syncs, r.TrueResidualNorm/bn)
	}

	fmt.Println("\nAll Krylov methods take essentially the same iteration count (same")
	fmt.Println("mathematics); they differ in how their inner-product dependencies")
	fmt.Println("schedule on a parallel machine — the syncs column. The distributed")
	fmt.Println("\"parcg\" run shows the un-stabilized recurrences drifting at tight")
	fmt.Println("tolerances (the finite-precision price the successors fixed); see")
	fmt.Println("examples/stability and examples/depthscaling for both sides.")
}
