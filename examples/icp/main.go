// Point-to-plane ICP driven through cgserve's /v1/sequence endpoint:
// the end-to-end demo for the nonsymmetric/least-squares tier.
//
// A synthetic surface scan is misaligned by a known rigid transform,
// then re-registered by iterating the classic point-to-plane
// linearization: each outer iteration rebuilds the m×6 Jacobian J
// (rows [pᵢ×nᵢ, nᵢ]) and residual r, ships the new values and
// right-hand side to a server-side warm-started LSQR sequence with
// POST /v1/sequence/{id}/step, and composes the returned 6-vector
// increment (ω, v) into the pose estimate. The Jacobian's sparsity
// structure never changes — only its values — which is exactly the
// in-place update contract the sequence tier is built around: one
// upload, one sequence, then per-step traffic is values + rhs only,
// and every solve after the first warm-starts from the previous
// increment.
//
// Run against a live server:
//
//	cgserve -addr :8080 &
//	go run ./examples/icp -addr http://localhost:8080
//
// With no -addr an in-process server is started, so the example is
// self-contained.
//
// Correspondences are by index (the clouds are the same sampling), so
// the demo isolates the solver tier from data association.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"vrcg/server"
	"vrcg/sparse"
)

// vec3 / mat3 — just enough rigid-body math for the demo.
type vec3 [3]float64
type mat3 [9]float64 // row-major

func (m mat3) mulVec(v vec3) vec3 {
	return vec3{
		m[0]*v[0] + m[1]*v[1] + m[2]*v[2],
		m[3]*v[0] + m[4]*v[1] + m[5]*v[2],
		m[6]*v[0] + m[7]*v[1] + m[8]*v[2],
	}
}

func (m mat3) mul(b mat3) mat3 {
	var out mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*i+k] * b[3*k+j]
			}
			out[3*i+j] = s
		}
	}
	return out
}

func cross(a, b vec3) vec3 {
	return vec3{a[1]*b[2] - a[2]*b[1], a[2]*b[0] - a[0]*b[2], a[0]*b[1] - a[1]*b[0]}
}

func dot(a, b vec3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

func norm(a vec3) float64 { return math.Sqrt(dot(a, a)) }

// rodrigues is the exponential map: the rotation by angle |w| about
// axis w/|w|.
func rodrigues(w vec3) mat3 {
	th := norm(w)
	if th < 1e-12 {
		return mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
	}
	k := vec3{w[0] / th, w[1] / th, w[2] / th}
	c, s := math.Cos(th), math.Sin(th)
	v := 1 - c
	return mat3{
		c + k[0]*k[0]*v, k[0]*k[1]*v - k[2]*s, k[0]*k[2]*v + k[1]*s,
		k[1]*k[0]*v + k[2]*s, c + k[1]*k[1]*v, k[1]*k[2]*v - k[0]*s,
		k[2]*k[0]*v - k[1]*s, k[2]*k[1]*v + k[0]*s, c + k[2]*k[2]*v,
	}
}

// pose is the rigid transform estimate p ↦ R·p + t.
type pose struct {
	r mat3
	t vec3
}

func (p pose) apply(q vec3) vec3 {
	v := p.r.mulVec(q)
	return vec3{v[0] + p.t[0], v[1] + p.t[1], v[2] + p.t[2]}
}

// client is a minimal typed client over the server's JSON protocol.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) post(path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: HTTP %d %s: %s", path, resp.StatusCode, e.Code, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *client) del(path string, out any) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func main() {
	addr := flag.String("addr", "", "cgserve base URL (empty: start an in-process server)")
	npts := flag.Int("n", 400, "surface sample count (Jacobian rows)")
	iters := flag.Int("iters", 8, "outer ICP iterations (sequence steps)")
	flag.Parse()

	if *addr == "" {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		defer ts.Close()
		*addr = ts.URL
		fmt.Printf("in-process cgserve at %s\n", *addr)
	}
	c := &client{base: *addr, hc: http.DefaultClient}

	// Target scan: samples of a smooth height field z = f(x,y) with
	// analytic normals — curvature is what makes point-to-plane well
	// conditioned in all six degrees of freedom.
	rng := rand.New(rand.NewSource(42))
	target := make([]vec3, *npts)
	normals := make([]vec3, *npts)
	for i := range target {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		z := 0.3*math.Sin(2*x) + 0.2*math.Cos(3*y) + 0.1*x*y
		// n ∝ (-∂f/∂x, -∂f/∂y, 1)
		gx := 0.6*math.Cos(2*x) + 0.1*y
		gy := -0.6*math.Sin(3*y) + 0.1*x
		n := vec3{-gx, -gy, 1}
		s := norm(n)
		normals[i] = vec3{n[0] / s, n[1] / s, n[2] / s}
		target[i] = vec3{x, y, z}
	}

	// Misalign by a known transform; the source cloud is what a second
	// scan would deliver. Estimating est with est∘T_true = identity
	// re-registers it.
	tTrue := pose{r: rodrigues(vec3{0.06, -0.04, 0.09}), t: vec3{0.12, -0.08, 0.05}}
	source := make([]vec3, *npts)
	for i, q := range target {
		source[i] = tTrue.apply(q)
	}

	// The Jacobian's structure is fixed — every row stores all six
	// entries, zeros included, so per-step value updates are legal (the
	// sequence contract is values-only, structure immutable).
	rows := *npts
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 6*rows)
	for i := 0; i < rows; i++ {
		rowPtr[i+1] = 6 * (i + 1)
		for j := 0; j < 6; j++ {
			colIdx[6*i+j] = j
		}
	}
	est := pose{r: mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}}
	vals := make([]float64, 6*rows)
	rhs := make([]float64, rows)
	fill := func() (residual float64) {
		for i, s := range source {
			p := est.apply(s)
			n := normals[i]
			d := vec3{p[0] - target[i][0], p[1] - target[i][1], p[2] - target[i][2]}
			r := dot(n, d)
			pxn := cross(p, n)
			vals[6*i+0], vals[6*i+1], vals[6*i+2] = pxn[0], pxn[1], pxn[2]
			vals[6*i+3], vals[6*i+4], vals[6*i+5] = n[0], n[1], n[2]
			rhs[i] = -r
			residual += r * r
		}
		return math.Sqrt(residual)
	}
	r0 := fill()

	// One upload carries the structure; the sequence then lives server
	// side with hot LSQR workspaces across every step.
	jac := sparse.NewRect(rows, 6, rowPtr, colIdx, append([]float64(nil), vals...))
	var opInfo server.OperatorInfo
	if err := c.post("/v1/operators", server.OperatorUpload{Name: "icp-jacobian", Matrix: *sparse.EncodeRect(jac)}, &opInfo); err != nil {
		log.Fatal(err)
	}
	var seq server.SequenceInfo
	if err := c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "icp-jacobian", Method: "lsqr"}, &seq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d-point scan as %dx%d operator %q, sequence %s (method %s)\n",
		rows, opInfo.Rows, opInfo.Cols, opInfo.ID, seq.ID, seq.Method)
	fmt.Printf("initial point-to-plane residual ‖r‖ = %.4e\n\n", r0)

	for it := 0; it < *iters; it++ {
		var step server.SequenceStepResponse
		req := server.SequenceStepRequest{RHS: rhs}
		if it > 0 {
			// After the first step only the values change; the structure
			// (and the server-side workspaces) carry over.
			req.Vals = vals
		}
		if err := c.post("/v1/sequence/"+seq.ID+"/step", req, &step); err != nil {
			log.Fatal(err)
		}
		// Compose the increment: x = (ω, v), pose ← exp(ω)·(R, t) + v.
		w := vec3{step.X[0], step.X[1], step.X[2]}
		dv := vec3{step.X[3], step.X[4], step.X[5]}
		dr := rodrigues(w)
		est = pose{r: dr.mul(est.r), t: dr.mulVec(est.t)}
		est.t = vec3{est.t[0] + dv[0], est.t[1] + dv[1], est.t[2] + dv[2]}
		res := fill()
		fmt.Printf("icp %2d: lsqr iterations=%2d warm=%-5v ‖Δx‖=%.3e ‖r‖=%.4e\n",
			it, step.Iterations, step.Warm, math.Hypot(norm(w), norm(dv)), res)
	}

	// Pose error against the known truth: est should invert tTrue.
	comp := pose{r: est.r.mul(tTrue.r), t: est.apply(tTrue.t)}
	rotErr := 0.0
	for i, v := range (mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}) {
		rotErr += (comp.r[i] - v) * (comp.r[i] - v)
	}
	fmt.Printf("\nfinal pose error: rotation %.3e (Frobenius), translation %.3e\n",
		math.Sqrt(rotErr), norm(comp.t))

	var closed server.SequenceCloseResponse
	if err := c.del("/v1/sequence/"+seq.ID, &closed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequence %s closed: iterations per step %v (step 0 cold, rest warm-started)\n", closed.ID, closed.Steps)
}
