// Benchmarks regenerating every experiment in EXPERIMENTS.md (the
// paper's claims C1..C7 and Figure 1, experiments E1..E10), plus kernel
// microbenchmarks. Custom metrics carry the quantities of interest:
// depth/iter (parallel-time units), simtime/iter (machine units).
//
// Run:  go test -bench=. -benchmem
package vrcg_test

import (
	"fmt"
	"testing"

	"vrcg/internal/bench"
	"vrcg/internal/collective"
	"vrcg/internal/core"
	"vrcg/internal/depth"
	"vrcg/internal/krylov"
	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/internal/pipecg"
	"vrcg/internal/sstep"
	"vrcg/internal/trace"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// --- E1: per-iteration depth, CG (c log N) vs VRCG (c log log N) ---

func BenchmarkE1DepthScaling(b *testing.B) {
	for _, lg := range []int{10, 14, 18, 22} {
		n := 1 << lg
		b.Run(fmt.Sprintf("CG/logN=%d", lg), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = depth.CGRate(n, 5)
			}
			b.ReportMetric(r, "depth/iter")
		})
		b.Run(fmt.Sprintf("VRCG/logN=%d", lg), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = depth.VRCGRate(n, 5, lg)
			}
			b.ReportMetric(r, "depth/iter")
		})
	}
}

// --- E2: the §3 k=1 doubling ---

func BenchmarkE2DoubleSpeed(b *testing.B) {
	for _, lg := range []int{12, 20, 28} {
		n := 1 << lg
		b.Run(fmt.Sprintf("logN=%d", lg), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = depth.CGRate(n, 5) / depth.VRCGRate(n, 5, 1)
			}
			b.ReportMetric(ratio, "speedup")
		})
	}
}

// --- E3: the §6 max(log d, log log N) degree sweep ---

func BenchmarkE3DegreeSweep(b *testing.B) {
	for _, d := range []int{3, 9, 27, 1024, 16384} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = depth.VRCGRate(1<<20, d, 20)
			}
			b.ReportMetric(r, "depth/iter")
		})
	}
}

// --- E4: sequential cost (wall-clock benchmarks of real solves) ---

func benchSolve(b *testing.B, run func(*sparse.CSR, vec.Vector) (int, error)) {
	a := sparse.Poisson2D(32)
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 9)
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		it, err := run(a, rhs)
		if err != nil {
			b.Fatal(err)
		}
		iters = it
	}
	b.ReportMetric(float64(iters), "iterations")
}

func BenchmarkE4SequentialCost(b *testing.B) {
	b.Run("CG", func(b *testing.B) {
		benchSolve(b, func(a *sparse.CSR, rhs vec.Vector) (int, error) {
			r, err := krylov.CG(a, rhs, krylov.Options{Tol: 1e-8})
			if err != nil {
				return 0, err
			}
			return r.Iterations, nil
		})
	})
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("VRCG/k=%d", k), func(b *testing.B) {
			benchSolve(b, func(a *sparse.CSR, rhs vec.Vector) (int, error) {
				r, err := core.Solve(a, rhs, core.Options{K: k, Tol: 1e-8})
				if err != nil {
					return 0, err
				}
				return r.Iterations, nil
			})
		})
	}
	b.Run("PIPECG", func(b *testing.B) {
		benchSolve(b, func(a *sparse.CSR, rhs vec.Vector) (int, error) {
			r, err := pipecg.GhyselsVanroose(a, rhs, pipecg.Options{Tol: 1e-8})
			if err != nil {
				return 0, err
			}
			return r.Iterations, nil
		})
	})
	b.Run("SStep/s=4", func(b *testing.B) {
		benchSolve(b, func(a *sparse.CSR, rhs vec.Vector) (int, error) {
			r, err := sstep.Solve(a, rhs, sstep.Options{S: 4, Tol: 1e-8})
			if err != nil {
				return 0, err
			}
			return r.Iterations, nil
		})
	})
}

// --- E5: recurrence exactness (drift measured during a real solve) ---

func BenchmarkE5RecurrenceExactness(b *testing.B) {
	a := sparse.Poisson2D(16)
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 31)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var drift float64
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(a, rhs, core.Options{K: k, Tol: 1e-8, ValidateEvery: 1, ReanchorEvery: 4})
				if err != nil {
					b.Fatal(err)
				}
				drift = r.Drift.MaxRelPAP
			}
			b.ReportMetric(drift, "max-rel-drift")
		})
	}
}

// --- E6: stability vs conditioning ---

func BenchmarkE6Stability(b *testing.B) {
	n := 256
	for _, kappa := range []float64{10, 1000} {
		a := sparse.PrescribedSpectrum(n, kappa)
		rhs := vec.New(n)
		vec.Random(rhs, 17)
		for _, k := range []int{1, 4} {
			b.Run(fmt.Sprintf("kappa=%g/k=%d", kappa, k), func(b *testing.B) {
				iters := 0
				for i := 0; i < b.N; i++ {
					r, err := core.Solve(a, rhs, core.Options{K: k, Tol: 1e-9, MaxIter: 8000})
					if err != nil {
						b.Skip("breakdown (documented instability)")
					}
					iters = r.Iterations
				}
				b.ReportMetric(float64(iters), "iterations")
			})
		}
	}
}

// --- E7: successors on the simulated machine ---

func BenchmarkE7Successors(b *testing.B) {
	a := sparse.TridiagToeplitz(4096, 4.2, -1)
	p := 256
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 5)
	opt := parcg.Options{Tol: 1e-6, MaxIter: 120}

	cases := map[string]func(*machine.Machine, *parcg.DistMatrix, *parcg.Dist) (*parcg.Result, error){
		"CG": func(m *machine.Machine, dm *parcg.DistMatrix, bb *parcg.Dist) (*parcg.Result, error) {
			return parcg.CG(m, dm, bb, opt)
		},
		"PIPECG": func(m *machine.Machine, dm *parcg.DistMatrix, bb *parcg.Dist) (*parcg.Result, error) {
			return parcg.PipeCG(m, dm, bb, opt)
		},
		"VRCG-k8": func(m *machine.Machine, dm *parcg.DistMatrix, bb *parcg.Dist) (*parcg.Result, error) {
			return parcg.VRCG(m, dm, bb, parcg.VROptions{Options: opt, K: 8})
		},
		"SStepSem-k8": func(m *machine.Machine, dm *parcg.DistMatrix, bb *parcg.Dist) (*parcg.Result, error) {
			return parcg.VRCG(m, dm, bb, parcg.VROptions{Options: opt, K: 8, Blocking: true})
		},
	}
	for name, run := range cases {
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				m := machine.New(cfg)
				dm := parcg.NewDistMatrix(a, p)
				res, err := run(m, dm, parcg.Scatter(rhs, p))
				if err != nil {
					b.Fatal(err)
				}
				rate = res.PerIterTime()
			}
			b.ReportMetric(rate, "simtime/iter")
		})
	}
}

// --- E8 / Figure 1: schedule construction and rendering ---

func BenchmarkE8Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.VRCGSchedule(1<<16, 5, 16, 24)
		if tr.Render(96) == "" {
			b.Fatal("empty render")
		}
	}
}

// --- whole-harness regeneration ---

func BenchmarkAllExperimentTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.All()) != 9 {
			b.Fatal("experiment tables missing")
		}
	}
}

// --- kernel microbenchmarks ---

func BenchmarkDotSerial(b *testing.B) {
	x := vec.New(1 << 16)
	y := vec.New(1 << 16)
	vec.Random(x, 1)
	vec.Random(y, 2)
	b.SetBytes(int64(16 * len(x)))
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += vec.Dot(x, y)
	}
	_ = s
}

func BenchmarkDotParallel(b *testing.B) {
	x := vec.New(1 << 20)
	y := vec.New(1 << 20)
	vec.Random(x, 1)
	vec.Random(y, 2)
	vec.DefaultPool.Calibrate() // one-shot: measured per-op cutoffs
	vec.DefaultPool.Dot(x, y)   // warm the pooled path outside the timer
	b.SetBytes(int64(16 * len(x)))
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += vec.DefaultPool.Dot(x, y)
	}
	_ = s
}

func BenchmarkFusedCGUpdate(b *testing.B) {
	n := 1 << 16
	p := vec.New(n)
	ap := vec.New(n)
	x := vec.New(n)
	r := vec.New(n)
	vec.Random(p, 1)
	vec.Random(ap, 2)
	vec.Random(r, 3)
	b.SetBytes(int64(32 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.FusedCGUpdate(1e-6, p, ap, x, r)
	}
}

func BenchmarkMatVecCSRPoisson2D(b *testing.B) {
	a := sparse.Poisson2D(128)
	x := vec.New(a.Dim())
	y := vec.New(a.Dim())
	vec.Random(x, 4)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkMatVecStencil2D(b *testing.B) {
	st := sparse.NewStencil(sparse.Stencil2D5, 128)
	x := vec.New(st.Dim())
	y := vec.New(st.Dim())
	vec.Random(x, 4)
	b.SetBytes(int64(8 * st.Dim() * 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MulVec(y, x)
	}
}

func BenchmarkAllreduceSimulated(b *testing.B) {
	for _, p := range []int{64, 1024} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			contrib := make([]float64, p)
			for i := 0; i < b.N; i++ {
				m := machine.New(machine.DefaultConfig(p))
				collective.AllreduceSum(m, contrib)
			}
		})
	}
}

func BenchmarkWindowStep(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			w := core.NewWindow(k)
			for i := range w.M {
				w.M[i] = 1 / float64(i+1)
			}
			for i := range w.N {
				w.N[i] = 1 / float64(i+2)
			}
			for i := range w.W {
				w.W[i] = 1 / float64(i+3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step(0.001, 0.5, 1e-6, 1e-6, 1e-6)
			}
		})
	}
}

func BenchmarkVRCGSolvePoisson(b *testing.B) {
	a := sparse.Poisson2D(48)
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 21)
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(a, rhs, core.Options{K: k, Tol: 1e-8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: contraction vs window formulation depth ---

func BenchmarkE10WindowForm(b *testing.B) {
	for _, lg := range []int{14, 22} {
		n := 1 << lg
		b.Run(fmt.Sprintf("contract/logN=%d", lg), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = depth.VRCGRate(n, 5, lg)
			}
			b.ReportMetric(r, "depth/iter")
		})
		b.Run(fmt.Sprintf("window/logN=%d", lg), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = depth.VRCGWindowRate(n, 5, lg)
			}
			b.ReportMetric(r, "depth/iter")
		})
	}
}

// --- additional kernel microbenchmarks ---

func BenchmarkMINRESSolve(b *testing.B) {
	a := sparse.Poisson2D(32)
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 41)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := krylov.MINRES(a, rhs, krylov.Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIC0FactorAndApply(b *testing.B) {
	a := sparse.Poisson2D(48)
	b.Run("factor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := precond.NewIC0(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	ic, err := precond.NewIC0(a)
	if err != nil {
		b.Fatal(err)
	}
	r := vec.New(a.Dim())
	vec.Random(r, 42)
	dst := vec.New(a.Dim())
	b.Run("apply", func(b *testing.B) {
		b.SetBytes(int64(8 * a.Dim()))
		for i := 0; i < b.N; i++ {
			ic.Apply(dst, r)
		}
	})
}

func BenchmarkRCMOrder(b *testing.B) {
	a := sparse.Poisson2D(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.RCMOrder(a)
	}
}

func BenchmarkRabenseifnerVsRecursiveDoubling(b *testing.B) {
	p := 256
	w := 1024
	contrib := make([][]float64, p)
	for i := range contrib {
		contrib[i] = make([]float64, w)
	}
	cfg := machine.Config{P: p, Alpha: 1, Beta: 1, FlopTime: 0}
	b.Run("recursive-doubling", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			m := machine.New(cfg)
			collective.AllreduceVec(m, contrib)
			t = m.MaxClock()
		}
		b.ReportMetric(t, "simtime")
	})
	b.Run("rabenseifner", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			m := machine.New(cfg)
			collective.AllreduceRabenseifner(m, contrib)
			t = m.MaxClock()
		}
		b.ReportMetric(t, "simtime")
	})
}

// --- execution engine: serial vs pooled hot paths ---

// BenchmarkSpMV compares the serial CSR product against the hot path
// the engine actually runs — format auto-selection (SELL-C-σ when
// profitable) plus pool dispatch — at sizes where the engine matters
// (n = 102400 and 409600 for the Poisson grids below). The sell rows
// isolate the blocked format's serial kernel against CSR.
func BenchmarkSpMV(b *testing.B) {
	vec.DefaultPool.Calibrate()
	for _, m := range []int{320, 640} {
		a := sparse.Poisson2D(m)
		n := a.Dim()
		x := vec.New(n)
		y := vec.New(n)
		vec.Random(x, 4)
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(12 * a.NNZ()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.MulVec(y, x)
			}
		})
		b.Run(fmt.Sprintf("sell/n=%d", n), func(b *testing.B) {
			s := a.ToSELL()
			b.SetBytes(int64(12 * a.NNZ()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.MulVec(y, x)
			}
		})
		b.Run(fmt.Sprintf("pooled/n=%d", n), func(b *testing.B) {
			op := sparse.TuneMulVec(a)                     // the operator engine.Solve dispatches on
			sparse.PooledMulVec(op, vec.DefaultPool, y, x) // warm partition + workers
			b.SetBytes(int64(12 * a.NNZ()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.PooledMulVec(op, vec.DefaultPool, y, x)
			}
		})
	}
}

// BenchmarkPCGSolve compares per-call-allocating serial PCG against the
// zero-allocation pooled Workspace form on a large grid (n = 102400).
func BenchmarkPCGSolve(b *testing.B) {
	a := sparse.Poisson2D(320)
	n := a.Dim()
	rhs := vec.New(n)
	vec.Random(rhs, 9)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		b.Fatal(err)
	}
	opts := krylov.Options{Tol: 1e-6, MaxIter: 60}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krylov.PCG(a, jac, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace-serial", func(b *testing.B) {
		ws := krylov.NewWorkspace(n, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.PCG(a, jac, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace-pooled", func(b *testing.B) {
		ws := krylov.NewWorkspace(n, vec.DefaultPool)
		if _, err := ws.PCG(a, jac, rhs, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.PCG(a, jac, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDotPooled measures the persistent-pool dot against the
// serial kernel at engine scale (the old per-call-goroutine pool is
// gone; DotParallel above uses the same persistent engine).
func BenchmarkDotPooled(b *testing.B) {
	n := 1 << 20
	x := vec.New(n)
	y := vec.New(n)
	vec.Random(x, 1)
	vec.Random(y, 2)
	vec.DefaultPool.Calibrate()
	vec.DefaultPool.Dot(x, y)
	b.SetBytes(int64(16 * n))
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += vec.DefaultPool.Dot(x, y)
	}
	_ = s
}

func BenchmarkCGPlainVsFused(b *testing.B) {
	a := sparse.Poisson2D(64) // n = 4096: memory traffic matters
	rhs := vec.New(a.Dim())
	vec.Random(rhs, 51)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := krylov.CG(a, rhs, krylov.Options{Tol: 1e-8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := krylov.CGFused(a, rhs, nil, krylov.Options{Tol: 1e-8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
