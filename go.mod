module vrcg

go 1.24
