// Package server is the network serving layer over the solve registry:
// an HTTP JSON API that keeps uploaded operators resident and serves
// repeated solves against them from warm solve.Session pools, so the
// hot path stays in the zero-allocation steady state the Session API
// was built for. It is the subsystem the ROADMAP's "heavy traffic"
// north star asks for: operators are uploaded once, then any number of
// clients solve against them concurrently.
//
// Endpoints (docs/api.md has schemas, curl examples, and the error
// table):
//
//	POST /v1/operators    upload a matrix (CSR / COO / MatrixMarket
//	                      wire formats) into the named, ref-counted
//	                      operator store (LRU-evicted at capacity)
//	GET  /v1/operators    list resident operators
//	POST /v1/solve        one right-hand side through a pooled warm
//	                      Session (zero allocations on the solver hot
//	                      path for every engine-backed method)
//	POST /v1/solve/batch  many right-hand sides via solve.Batch
//	GET  /v1/methods      the solve registry, names + summaries
//	GET  /healthz         liveness
//	GET  /metrics         request counts, per-method latency
//	                      histograms, session-pool hit rate
//
// Concurrency and backpressure: solves run under a bounded admission
// queue (Config.MaxConcurrent running + Config.MaxQueue waiting);
// requests beyond that are rejected immediately with 429 rather than
// queued without bound. Each request runs under a context deadline
// (request-supplied timeout_ms, capped by Config.DefaultTimeout) wired
// into the solver through solve.WithContext, so a slow solve stops at
// its next iteration when the deadline passes. Shutdown drains
// in-flight solves; new work is refused with 503.
//
// Construction:
//
//	srv := server.New(server.Config{})       // defaults throughout
//	http.ListenAndServe(":8080", srv.Handler())
//
// or use cmd/cgserve, the ready-made daemon.
package server
