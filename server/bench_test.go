package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"vrcg/server"
	"vrcg/solve"
	"vrcg/sparse"
)

// Serving benchmarks, persisted by `make bench` into BENCH_server.json:
// what one request costs end to end through the handler stack (JSON
// decode, operator lookup, pooled warm session, JSON encode), and how
// the batch endpoint amortizes it. Run without the network so the
// numbers are the server's own overhead, not the kernel's loopback.

func benchServer(b *testing.B, grid int) (*server.Server, []float64) {
	b.Helper()
	srv := server.New(server.Config{MaxQueue: 1 << 20})
	a := sparse.Poisson2D(grid)
	if err := srv.Preload("poisson", a); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.Dim())
	for i := range rhs {
		rhs[i] = 1 + float64(i%5)
	}
	return srv, rhs
}

func benchSolveBody(b *testing.B, rhs []float64, method string) []byte {
	b.Helper()
	blob, err := json.Marshal(server.SolveRequest{
		Operator: "poisson",
		Method:   method,
		RHS:      rhs,
		Params:   &solve.Params{Tol: 1e-10},
	})
	if err != nil {
		b.Fatal(err)
	}
	return blob
}

// BenchmarkServeSolveWarm measures the steady-state single-solve
// request: every iteration after the first is a session-pool hit.
func BenchmarkServeSolveWarm(b *testing.B) {
	for _, method := range []string{"cg", "pipecg", "sstep"} {
		b.Run(method, func(b *testing.B) {
			srv, rhs := benchServer(b, 16)
			body := benchSolveBody(b, rhs, method)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkServeBatch measures multi-RHS amortization through
// /v1/solve/batch over the binary content type — the transport the
// batch path is built around: one frame decode and one frame encode
// per request, pooled buffers, no per-float text formatting. Columns
// are distinct (the block route must not be flattered by linearly
// dependent right-hand sides), and allocs/rhs tracks how per-request
// overhead amortizes. The JSON batch path stays covered by
// BenchmarkServeBatchJSONRhs64, the rung where its per-float encode
// cost peaks.
func BenchmarkServeBatch(b *testing.B) {
	for _, nrhs := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("rhs%d", nrhs), func(b *testing.B) {
			srv, rhs := benchServer(b, 16)
			B := make([][]float64, nrhs)
			for k := range B {
				col := make([]float64, len(rhs))
				for i := range col {
					col[i] = rhs[i] + float64(k)
				}
				B[k] = col
			}
			body := binSolveBody("poisson", "cg", "", &solve.Params{Tol: 1e-10}, 0, B...)
			rb := &replayBody{}
			req := httptest.NewRequest("POST", "/v1/solve/batch", nil)
			req.Header.Set("Content-Type", server.BinaryContentType)
			req.ContentLength = int64(len(body))
			req.Body = rb
			w := &discardWriter{h: make(http.Header)}
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb.Reset(body)
				w.code = 0
				srv.ServeHTTP(w, req)
				if w.code != http.StatusOK {
					b.Fatalf("status %d", w.code)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			b.ReportMetric(float64(nrhs)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(b.N)/float64(nrhs), "allocs/rhs")
		})
	}
}

// BenchmarkServeBatchJSONRhs64 pins the JSON batch path at its widest
// rung, where decoding 64 float arrays and formatting 64 solution
// vectors dominate; the pooled request scratch keeps its allocation
// count bounded.
func BenchmarkServeBatchJSONRhs64(b *testing.B) {
	const nrhs = 64
	srv, rhs := benchServer(b, 16)
	B := make([][]float64, nrhs)
	for k := range B {
		col := make([]float64, len(rhs))
		for i := range col {
			col[i] = rhs[i] + float64(k)
		}
		B[k] = col
	}
	body, err := json.Marshal(server.BatchRequest{
		Operator: "poisson",
		Method:   "cg",
		RHS:      B,
		Params:   &solve.Params{Tol: 1e-10},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/solve/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(nrhs)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
}

// discardWriter is a zero-allocation ResponseWriter so the binary
// solve bench measures the server path, not httptest's recorder.
type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }

// replayBody is a rewindable no-alloc request body.
type replayBody struct{ bytes.Reader }

func (*replayBody) Close() error { return nil }

// BenchmarkServeSolveWarmBinary measures the steady-state single solve
// over the binary content type: pooled frame decode, affinity-cached
// operator resolution, warm session, binary encode. The request and
// response writer are reused so the reported allocations are the
// server's own.
func BenchmarkServeSolveWarmBinary(b *testing.B) {
	srv, rhs := benchServer(b, 16)
	body := binSolveBody("poisson", "cg", "", &solve.Params{Tol: 1e-10}, 0, rhs)
	rb := &replayBody{}
	req := httptest.NewRequest("POST", "/v1/solve", nil)
	req.Header.Set("Content-Type", server.BinaryContentType)
	req.ContentLength = int64(len(body))
	req.Body = rb
	w := &discardWriter{h: make(http.Header)}
	rb.Reset(body)
	srv.ServeHTTP(w, req)
	if w.code != http.StatusOK {
		b.Fatalf("warmup status %d", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Reset(body)
		w.code = 0
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
	}
}

// BenchmarkServeMetrics measures the observability endpoint, which
// serving dashboards poll continuously.
func BenchmarkServeMetrics(b *testing.B) {
	srv, rhs := benchServer(b, 8)
	body := benchSolveBody(b, rhs, "cg")
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}
