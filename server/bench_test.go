package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"vrcg/server"
	"vrcg/solve"
	"vrcg/sparse"
)

// Serving benchmarks, persisted by `make bench` into BENCH_server.json:
// what one request costs end to end through the handler stack (JSON
// decode, operator lookup, pooled warm session, JSON encode), and how
// the batch endpoint amortizes it. Run without the network so the
// numbers are the server's own overhead, not the kernel's loopback.

func benchServer(b *testing.B, grid int) (*server.Server, []float64) {
	b.Helper()
	srv := server.New(server.Config{MaxQueue: 1 << 20})
	a := sparse.Poisson2D(grid)
	if err := srv.Preload("poisson", a); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.Dim())
	for i := range rhs {
		rhs[i] = 1 + float64(i%5)
	}
	return srv, rhs
}

func benchSolveBody(b *testing.B, rhs []float64, method string) []byte {
	b.Helper()
	blob, err := json.Marshal(server.SolveRequest{
		Operator: "poisson",
		Method:   method,
		RHS:      rhs,
		Params:   &solve.Params{Tol: 1e-10},
	})
	if err != nil {
		b.Fatal(err)
	}
	return blob
}

// BenchmarkServeSolveWarm measures the steady-state single-solve
// request: every iteration after the first is a session-pool hit.
func BenchmarkServeSolveWarm(b *testing.B) {
	for _, method := range []string{"cg", "pipecg", "sstep"} {
		b.Run(method, func(b *testing.B) {
			srv, rhs := benchServer(b, 16)
			body := benchSolveBody(b, rhs, method)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkServeBatch measures multi-RHS amortization through
// /v1/solve/batch at increasing fan-out.
func BenchmarkServeBatch(b *testing.B) {
	for _, nrhs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("rhs%d", nrhs), func(b *testing.B) {
			srv, rhs := benchServer(b, 16)
			B := make([][]float64, nrhs)
			for k := range B {
				B[k] = rhs
			}
			body, err := json.Marshal(server.BatchRequest{
				Operator: "poisson",
				Method:   "cg",
				RHS:      B,
				Params:   &solve.Params{Tol: 1e-10},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/solve/batch", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportMetric(float64(nrhs)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}

// BenchmarkServeMetrics measures the observability endpoint, which
// serving dashboards poll continuously.
func BenchmarkServeMetrics(b *testing.B) {
	srv, rhs := benchServer(b, 8)
	body := benchSolveBody(b, rhs, "cg")
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}
