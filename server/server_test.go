package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vrcg/server"
	"vrcg/solve"
	"vrcg/sparse"
)

// testClient wraps an httptest server with JSON round-trip helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg server.Config) *testClient {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testClient{t: t, srv: ts}
}

// post sends body as JSON and decodes the response into out (skipped
// when out is nil), returning the HTTP status.
func (c *testClient) post(path string, body, out any) int {
	c.t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.srv.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) get(path string, out any) int {
	c.t.Helper()
	resp, err := http.Get(c.srv.URL + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// upload installs a under the given name and returns its info.
func (c *testClient) upload(name string, a *sparse.CSR) server.OperatorInfo {
	c.t.Helper()
	var info server.OperatorInfo
	status := c.post("/v1/operators", server.OperatorUpload{
		Name:   name,
		Matrix: *sparse.EncodeCSR(a),
	}, &info)
	if status != http.StatusCreated {
		c.t.Fatalf("upload %q: status %d", name, status)
	}
	return info
}

func testSystem(n int) (*sparse.CSR, []float64) {
	a := sparse.Poisson2D(n)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	return a, b
}

func TestUploadSolveParity(t *testing.T) {
	a, b := testSystem(12)
	c := newTestClient(t, server.Config{})
	info := c.upload("poisson", a)
	if info.N != a.Dim() || info.NNZ != a.NNZ() || !info.Symmetric {
		t.Fatalf("bad operator info: %+v", info)
	}

	want, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		t.Fatal(err)
	}

	var res server.WireResult
	status := c.post("/v1/solve", server.SolveRequest{
		Operator: "poisson",
		Method:   "cg",
		RHS:      b,
		Params:   &solve.Params{Tol: 1e-10},
	}, &res)
	if status != http.StatusOK {
		t.Fatalf("solve status %d (%+v)", status, res)
	}
	if !res.Converged || res.Method != "cg" {
		t.Fatalf("bad result: %+v", res)
	}
	if len(res.X) != len(want.X) {
		t.Fatalf("x length %d, want %d", len(res.X), len(want.X))
	}
	for i := range res.X {
		if d := math.Abs(res.X[i] - want.X[i]); d > 1e-12 {
			t.Fatalf("served solve deviates from direct solve.Solve at %d by %g", i, d)
		}
	}
	if res.Iterations != want.Iterations {
		t.Fatalf("iterations %d, want %d", res.Iterations, want.Iterations)
	}
}

func TestBatchParity(t *testing.T) {
	a, b := testSystem(10)
	B := make([][]float64, 5)
	for k := range B {
		B[k] = make([]float64, len(b))
		for i := range b {
			B[k][i] = b[i] + float64(k)
		}
	}
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)

	var resp server.BatchResponse
	status := c.post("/v1/solve/batch", server.BatchRequest{
		Operator: "poisson",
		Method:   "pipecg",
		RHS:      B,
		Params:   &solve.Params{Tol: 1e-10},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch status %d (error %q)", status, resp.Error)
	}
	if len(resp.Results) != len(B) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(B))
	}
	for k := range B {
		want, err := solve.MustNew("pipecg").Solve(a, B[k], solve.WithTol(1e-10))
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[k]
		if !got.Converged {
			t.Fatalf("rhs %d did not converge", k)
		}
		for i := range got.X {
			if d := math.Abs(got.X[i] - want.X[i]); d > 1e-12 {
				t.Fatalf("rhs %d deviates from direct solve at %d by %g", k, i, d)
			}
		}
	}
}

func TestPreconditionedSolve(t *testing.T) {
	a, b := testSystem(10)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	for _, pc := range []string{"identity", "jacobi", "ssor", "ic0"} {
		var res server.WireResult
		status := c.post("/v1/solve", server.SolveRequest{
			Operator: "poisson", Method: "pcg", RHS: b,
			Params:  &solve.Params{Tol: 1e-10},
			Precond: pc,
		}, &res)
		if status != http.StatusOK || !res.Converged {
			t.Fatalf("pcg+%s: status %d converged %v", pc, status, res.Converged)
		}
		if res.Stats.PrecondSolves == 0 {
			t.Fatalf("pcg+%s: preconditioner never applied", pc)
		}
	}
}

// TestConcurrentPreconditionedSolves shares one SSOR/IC0
// factorization across concurrent sessions — the path where unguarded
// preconditioner scratch raced under -race.
func TestConcurrentPreconditionedSolves(t *testing.T) {
	a, b := testSystem(10)
	c := newTestClient(t, server.Config{MaxConcurrent: 4, MaxQueue: 1024})
	c.upload("poisson", a)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pc := []string{"ssor", "ic0"}[g%2]
			for k := 0; k < 4; k++ {
				var res server.WireResult
				status := c.post("/v1/solve", server.SolveRequest{
					Operator: "poisson", Method: "pcg", RHS: b,
					Params: &solve.Params{Tol: 1e-10}, Precond: pc,
				}, &res)
				if status != http.StatusOK || !res.Converged {
					errc <- fmt.Errorf("pcg+%s: status %d converged %v", pc, status, res.Converged)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestOperatorNameValidation(t *testing.T) {
	a, _ := testSystem(6)
	c := newTestClient(t, server.Config{})
	var errResp server.ErrorResponse
	if status := c.post("/v1/operators", server.OperatorUpload{
		Name: "evil\x00name", Matrix: *sparse.EncodeCSR(a),
	}, &errResp); status != http.StatusBadRequest {
		t.Fatalf("NUL name accepted: %d %+v", status, errResp)
	}
	// An explicitly claimed auto-style id must not break auto-naming.
	c.upload("op-1", a)
	var info server.OperatorInfo
	if status := c.post("/v1/operators", server.OperatorUpload{
		Matrix: *sparse.EncodeCSR(a),
	}, &info); status != http.StatusCreated || info.ID == "op-1" || info.ID == "" {
		t.Fatalf("auto-name collided: %d %+v", status, info)
	}
}

func TestMethodsAndHealth(t *testing.T) {
	c := newTestClient(t, server.Config{})
	var ml server.MethodList
	if status := c.get("/v1/methods", &ml); status != http.StatusOK {
		t.Fatalf("methods status %d", status)
	}
	if len(ml.Methods) != len(solve.Methods()) {
		t.Fatalf("got %d methods, registry has %d", len(ml.Methods), len(solve.Methods()))
	}
	for _, m := range ml.Methods {
		if m.Summary == "" {
			t.Fatalf("method %q has no summary", m.Name)
		}
	}
	var h server.Health
	if status := c.get("/healthz", &h); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", status, h)
	}
}

func TestMetricsReportPoolHitRate(t *testing.T) {
	a, b := testSystem(8)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	req := server.SolveRequest{Operator: "poisson", Method: "cg", RHS: b}
	for i := 0; i < 4; i++ {
		if status := c.post("/v1/solve", req, nil); status != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, status)
		}
	}
	var snap struct {
		Requests     map[string]uint64 `json:"requests"`
		SessionPools struct {
			Pools   int     `json:"pools"`
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"session_pools"`
		SolveLatency map[string]struct {
			Count uint64 `json:"count"`
		} `json:"solve_latency_ms"`
		Operators struct {
			Count int `json:"count"`
		} `json:"operators"`
	}
	if status := c.get("/metrics", &snap); status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	// Sequential requests reuse the one warm session: 4 hits, 0 misses.
	if snap.SessionPools.Pools != 1 || snap.SessionPools.Hits != 4 || snap.SessionPools.Misses != 0 {
		t.Fatalf("pool stats: %+v", snap.SessionPools)
	}
	if snap.SessionPools.HitRate != 1 {
		t.Fatalf("hit rate %v, want 1", snap.SessionPools.HitRate)
	}
	if snap.SolveLatency["cg"].Count != 4 {
		t.Fatalf("latency histogram count %d, want 4", snap.SolveLatency["cg"].Count)
	}
	if snap.Requests["/v1/solve"] != 4 || snap.Operators.Count != 1 {
		t.Fatalf("requests %v operators %v", snap.Requests, snap.Operators)
	}
}

// TestMetricsReportSolvePhases: a solve on an instrumented method (the
// real-parallel parcg family) surfaces its measured per-iteration phase
// histograms under solve_phase_latency_us; plain cg contributes none.
func TestMetricsReportSolvePhases(t *testing.T) {
	a, b := testSystem(8)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	for _, method := range []string{"parcg-pipe", "cg"} {
		req := server.SolveRequest{Operator: "poisson", Method: method, RHS: b}
		if status := c.post("/v1/solve", req, nil); status != http.StatusOK {
			t.Fatalf("%s solve: status %d", method, status)
		}
	}
	var snap struct {
		SolvePhases map[string]map[string]struct {
			Count   uint64            `json:"count"`
			MeanUS  float64           `json:"mean_us"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"solve_phase_latency_us"`
	}
	if status := c.get("/metrics", &snap); status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	phases, ok := snap.SolvePhases["parcg-pipe"]
	if !ok {
		t.Fatalf("no parcg-pipe block in solve_phase_latency_us: %v", snap.SolvePhases)
	}
	for _, phase := range []string{"spmv", "reduction_wait", "update"} {
		h, ok := phases[phase]
		if !ok || h.Count == 0 {
			t.Errorf("phase %q missing or empty: %+v", phase, h)
		}
		if h.Buckets["+Inf"] != h.Count {
			t.Errorf("phase %q: cumulative +Inf bucket %d != count %d", phase, h.Buckets["+Inf"], h.Count)
		}
	}
	if _, ok := snap.SolvePhases["cg"]; ok {
		t.Error("cg has no phase instrumentation but appears in solve_phase_latency_us")
	}
}

func TestDeadlineCancelsSolve(t *testing.T) {
	a, b := testSystem(64) // n=4096: far more than 1ms of iteration at tol 1e-300
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	var errResp server.ErrorResponse
	status := c.post("/v1/solve", server.SolveRequest{
		Operator:  "poisson",
		Method:    "cg",
		RHS:       b,
		Params:    &solve.Params{Tol: 1e-300, MaxIter: 10_000_000},
		TimeoutMS: 1,
	}, &errResp)
	if status != http.StatusGatewayTimeout || errResp.Code != "deadline_exceeded" {
		t.Fatalf("want 504 deadline_exceeded, got %d %+v", status, errResp)
	}
}

func TestNotConvergedCarriesPartialResult(t *testing.T) {
	a, b := testSystem(12)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	var res server.WireResult
	status := c.post("/v1/solve", server.SolveRequest{
		Operator: "poisson", Method: "cg", RHS: b,
		Params: &solve.Params{Tol: 1e-12, MaxIter: 3},
	}, &res)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422, got %d", status)
	}
	if res.Error != "not_converged" || res.Converged || res.Iterations != 3 || len(res.X) == 0 {
		t.Fatalf("partial result not usable: %+v", res)
	}
}

func TestBatchPerResultErrorAttribution(t *testing.T) {
	a, b := testSystem(10)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	var resp server.BatchResponse
	status := c.post("/v1/solve/batch", server.BatchRequest{
		Operator: "poisson", Method: "cg",
		RHS:    [][]float64{b, b},
		Params: &solve.Params{Tol: 1e-12, MaxIter: 2},
	}, &resp)
	if status != http.StatusUnprocessableEntity || resp.Error != "not_converged" {
		t.Fatalf("want 422 not_converged, got %d %q", status, resp.Error)
	}
	for i, r := range resp.Results {
		if r.Error != "not_converged" || r.Converged || len(r.X) == 0 {
			t.Fatalf("result %d not attributed: %+v", i, r)
		}
	}
}

func TestErrorTable(t *testing.T) {
	a, b := testSystem(6)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)

	cases := []struct {
		name       string
		req        server.SolveRequest
		wantStatus int
		wantCode   string
	}{
		{"unknown operator", server.SolveRequest{Operator: "nope", Method: "cg", RHS: b},
			http.StatusNotFound, "unknown_operator"},
		{"unknown method", server.SolveRequest{Operator: "poisson", Method: "zigzag", RHS: b},
			http.StatusBadRequest, "unknown_method"},
		{"dim mismatch", server.SolveRequest{Operator: "poisson", Method: "cg", RHS: []float64{1, 2}},
			http.StatusBadRequest, "dim_mismatch"},
		{"bad params", server.SolveRequest{Operator: "poisson", Method: "cg", RHS: b,
			Params: &solve.Params{Tol: -1}},
			http.StatusBadRequest, "bad_option"},
		{"bad precond", server.SolveRequest{Operator: "poisson", Method: "pcg", RHS: b,
			Precond: "magic"},
			http.StatusBadRequest, "bad_option"},
	}
	for _, tc := range cases {
		var errResp server.ErrorResponse
		status := c.post("/v1/solve", tc.req, &errResp)
		if status != tc.wantStatus || errResp.Code != tc.wantCode {
			t.Errorf("%s: got %d %q, want %d %q",
				tc.name, status, errResp.Code, tc.wantStatus, tc.wantCode)
		}
	}

	// Duplicate upload → 409.
	var errResp server.ErrorResponse
	if status := c.post("/v1/operators", server.OperatorUpload{
		Name: "poisson", Matrix: *sparse.EncodeCSR(a),
	}, &errResp); status != http.StatusConflict || errResp.Code != "operator_exists" {
		t.Fatalf("duplicate upload: %d %+v", status, errResp)
	}
	// Malformed matrix → 400 bad_matrix.
	if status := c.post("/v1/operators", server.OperatorUpload{
		Matrix: sparse.WireMatrix{Format: "csr", N: -1},
	}, &errResp); status != http.StatusBadRequest || errResp.Code != "bad_matrix" {
		t.Fatalf("malformed matrix: %d %+v", status, errResp)
	}
}

func TestOperatorLRUEviction(t *testing.T) {
	c := newTestClient(t, server.Config{MaxOperators: 2})
	a, b := testSystem(6)
	c.upload("first", a)
	c.upload("second", a)
	c.upload("third", a) // evicts "first", the least recently used

	var list server.OperatorList
	if status := c.get("/v1/operators", &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if len(list.Operators) != 2 {
		t.Fatalf("store holds %d operators, want 2", len(list.Operators))
	}
	var errResp server.ErrorResponse
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "first", Method: "cg", RHS: b,
	}, &errResp); status != http.StatusNotFound {
		t.Fatalf("evicted operator still solvable: %d", status)
	}
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "second", Method: "cg", RHS: b,
	}, nil); status != http.StatusOK {
		t.Fatalf("resident operator failed: %d", status)
	}
}

// TestOversizedUploadRejected: a 100-byte envelope declaring a
// billion-row matrix must not allocate anything order-sized.
func TestOversizedUploadRejected(t *testing.T) {
	c := newTestClient(t, server.Config{})
	var errResp server.ErrorResponse
	status := c.post("/v1/operators", server.OperatorUpload{
		Matrix: sparse.WireMatrix{Format: sparse.WireCOO, N: 2_000_000_000},
	}, &errResp)
	if status != http.StatusBadRequest || errResp.Code != "bad_matrix" {
		t.Fatalf("oversized upload: %d %+v", status, errResp)
	}
}

// TestReuploadedNameGetsFreshState: after an operator is evicted and
// its name reused for a different matrix, solves against the name must
// reflect the new matrix, never a session pool built for the old one.
func TestReuploadedNameGetsFreshState(t *testing.T) {
	c := newTestClient(t, server.Config{MaxOperators: 1})
	small := sparse.Poisson1D(8)
	big := sparse.Poisson1D(16)
	c.upload("x", small)
	rhs8 := make([]float64, 8)
	for i := range rhs8 {
		rhs8[i] = 1
	}
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "x", Method: "cg", RHS: rhs8,
	}, nil); status != http.StatusOK {
		t.Fatalf("first solve: %d", status)
	}
	c.upload("y", small) // evicts "x"
	c.upload("x", big)   // same name, different matrix
	rhs16 := make([]float64, 16)
	for i := range rhs16 {
		rhs16[i] = 1
	}
	var res server.WireResult
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "x", Method: "cg", RHS: rhs16,
	}, &res); status != http.StatusOK || len(res.X) != 16 {
		t.Fatalf("re-uploaded name served stale state: status %d len(x)=%d", status, len(res.X))
	}
	var errResp server.ErrorResponse
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "x", Method: "cg", RHS: rhs8,
	}, &errResp); status != http.StatusBadRequest || errResp.Code != "dim_mismatch" {
		t.Fatalf("old-order rhs accepted against new matrix: %d %+v", status, errResp)
	}
}

// TestConcurrentClients hammers one server from many goroutines under
// -race: mixed methods against one operator, every response must be a
// converged 200 matching the direct solve.
func TestConcurrentClients(t *testing.T) {
	a, b := testSystem(10)
	c := newTestClient(t, server.Config{MaxConcurrent: 4, MaxQueue: 1024})
	c.upload("poisson", a)

	methods := []string{"cg", "pipecg", "gropp", "sstep"}
	want := make(map[string][]float64)
	for _, m := range methods {
		res, err := solve.MustNew(m).Solve(a, b, solve.WithTol(1e-10))
		if err != nil {
			t.Fatal(err)
		}
		want[m] = append([]float64(nil), res.X...)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for k := 0; k < 6; k++ {
				method := methods[(g+k)%len(methods)]
				blob, _ := json.Marshal(server.SolveRequest{
					Operator: "poisson", Method: method, RHS: b,
					Params: &solve.Params{Tol: 1e-10},
				})
				resp, err := client.Post(c.srv.URL+"/v1/solve", "application/json", bytes.NewReader(blob))
				if err != nil {
					errc <- err
					return
				}
				var res server.WireResult
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK || !res.Converged {
					errc <- fmt.Errorf("goroutine %d: %s status %d converged %v",
						g, method, resp.StatusCode, res.Converged)
					return
				}
				for i := range res.X {
					if math.Abs(res.X[i]-want[method][i]) > 1e-12 {
						errc <- fmt.Errorf("%s deviates under concurrency at %d", method, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
