package server_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"vrcg/server"
	"vrcg/sparse"
)

// del issues a DELETE, decoding the response into out when non-nil.
func (c *testClient) del(path string, out any) int {
	c.t.Helper()
	req, err := http.NewRequest(http.MethodDelete, c.srv.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// uploadRect installs a rectangular operator.
func (c *testClient) uploadRect(name string, a *sparse.Rect) server.OperatorInfo {
	c.t.Helper()
	var info server.OperatorInfo
	status := c.post("/v1/operators", server.OperatorUpload{
		Name:   name,
		Matrix: *sparse.EncodeRect(a),
	}, &info)
	if status != http.StatusCreated {
		c.t.Fatalf("upload %q: status %d", name, status)
	}
	return info
}

// TestSequenceWarmStartOverHTTP: the serve-smoke shape — create a
// sequence, step the same rhs twice, the warm second step takes
// strictly fewer iterations, and close reports both counts.
func TestSequenceWarmStartOverHTTP(t *testing.T) {
	c := newTestClient(t, server.Config{})
	a, b := testSystem(12)
	c.upload("poisson", a)

	var info server.SequenceInfo
	if status := c.post("/v1/sequence", server.SequenceCreateRequest{
		Operator: "poisson", Method: "cg",
	}, &info); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if info.Rows != a.Dim() || info.Cols != a.Dim() {
		t.Fatalf("sequence shape %dx%d, want %dx%d", info.Rows, info.Cols, a.Dim(), a.Dim())
	}

	var s1, s2 server.SequenceStepResponse
	if status := c.post("/v1/sequence/"+info.ID+"/step", server.SequenceStepRequest{RHS: b}, &s1); status != http.StatusOK {
		t.Fatalf("step 1: status %d", status)
	}
	if s1.Warm || s1.Step != 0 {
		t.Fatalf("step 1: warm=%v step=%d, want cold step 0", s1.Warm, s1.Step)
	}
	if status := c.post("/v1/sequence/"+info.ID+"/step", server.SequenceStepRequest{RHS: b}, &s2); status != http.StatusOK {
		t.Fatalf("step 2: status %d", status)
	}
	if !s2.Warm || s2.Step != 1 {
		t.Fatalf("step 2: warm=%v step=%d, want warm step 1", s2.Warm, s2.Step)
	}
	if s2.Iterations >= s1.Iterations {
		t.Fatalf("warm step took %d iterations, cold took %d", s2.Iterations, s1.Iterations)
	}

	var closed server.SequenceCloseResponse
	if status := c.del("/v1/sequence/"+info.ID, &closed); status != http.StatusOK {
		t.Fatalf("close: status %d", status)
	}
	if len(closed.Steps) != 2 || closed.Steps[0] != s1.Iterations || closed.Steps[1] != s2.Iterations {
		t.Fatalf("close steps %v, want [%d %d]", closed.Steps, s1.Iterations, s2.Iterations)
	}

	// Stepping a closed sequence is 404 unknown_sequence.
	if status := c.post("/v1/sequence/"+info.ID+"/step", server.SequenceStepRequest{RHS: b}, nil); status != http.StatusNotFound {
		t.Errorf("step after close: status %d, want 404", status)
	}

	// The sequence metrics landed: cold and warm histograms plus counters.
	var snap struct {
		Sequences *struct {
			Created        uint64                    `json:"created"`
			Closed         uint64                    `json:"closed"`
			Open           int                       `json:"open"`
			StepIterations map[string]map[string]any `json:"step_iterations"`
		} `json:"sequences"`
	}
	c.get("/metrics", &snap)
	if snap.Sequences == nil {
		t.Fatal("metrics missing sequences block")
	}
	if snap.Sequences.Created != 1 || snap.Sequences.Closed != 1 || snap.Sequences.Open != 0 {
		t.Errorf("sequence counters created=%d closed=%d open=%d, want 1/1/0",
			snap.Sequences.Created, snap.Sequences.Closed, snap.Sequences.Open)
	}
	if _, ok := snap.Sequences.StepIterations["cold"]; !ok {
		t.Error("metrics missing cold step-iterations histogram")
	}
	if _, ok := snap.Sequences.StepIterations["warm"]; !ok {
		t.Error("metrics missing warm step-iterations histogram")
	}
}

// TestSequenceReuseAndIsolation: closed clean sequences revive from the
// free list; value-mutated ones do not, and their private values never
// leak into other requests against the same stored operator.
func TestSequenceReuseAndIsolation(t *testing.T) {
	c := newTestClient(t, server.Config{})
	a, b := testSystem(8)
	c.upload("poisson", a)

	var s1 server.SequenceInfo
	c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &s1)
	var step server.SequenceStepResponse
	c.post("/v1/sequence/"+s1.ID+"/step", server.SequenceStepRequest{RHS: b}, &step)
	baseline := append([]float64(nil), step.X...)
	c.del("/v1/sequence/"+s1.ID, nil)

	// Same shape again: revived from the free list, cold, empty history.
	var s2 server.SequenceInfo
	c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &s2)
	if !s2.Reused {
		t.Error("clean same-shape sequence was not reused")
	}
	var step2 server.SequenceStepResponse
	c.post("/v1/sequence/"+s2.ID+"/step", server.SequenceStepRequest{RHS: b}, &step2)
	if step2.Warm || step2.Step != 0 {
		t.Errorf("revived sequence first step: warm=%v step=%d, want cold step 0", step2.Warm, step2.Step)
	}

	// Mutate its operator (A*2 halves x) — the sequence sees the new
	// values, the shared stored operator must not.
	factor := 2.0
	var step3 server.SequenceStepResponse
	c.post("/v1/sequence/"+s2.ID+"/step", server.SequenceStepRequest{RHS: b, Rescale: &factor}, &step3)
	for i := range baseline {
		if diff := step3.X[i] - baseline[i]/2; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("rescaled sequence x[%d] = %g, want %g", i, step3.X[i], baseline[i]/2)
		}
	}
	var plain server.WireResult
	c.post("/v1/solve", server.SolveRequest{Operator: "poisson", Method: "cg", RHS: b}, &plain)
	for i := range baseline {
		if diff := plain.X[i] - baseline[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("shared operator changed: x[%d] = %g, want %g", i, plain.X[i], baseline[i])
		}
	}
	c.del("/v1/sequence/"+s2.ID, nil)

	// The dirty sequence must not be revived.
	var s3 server.SequenceInfo
	c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &s3)
	if s3.Reused {
		t.Error("value-mutated sequence was revived from the free list")
	}
}

// TestSequenceRectangularLSQR: a rectangular operator served end to end
// — upload via the general wire path, lsqr sequence with per-step value
// updates, square-only methods rejected with unsupported_operator.
func TestSequenceRectangularLSQR(t *testing.T) {
	c := newTestClient(t, server.Config{})
	rng := rand.New(rand.NewSource(7))
	rows, cols := 40, 6
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, data)
	info := c.uploadRect("jacobian", a)
	if info.Rows != rows || info.Cols != cols || info.N != rows {
		t.Fatalf("uploaded shape rows=%d cols=%d n=%d, want %d/%d/%d", info.Rows, info.Cols, info.N, rows, cols, rows)
	}

	// cg cannot run on a rectangular operator: 422 unsupported_operator.
	resp, err := http.Post(c.srv.URL+"/v1/solve", "application/json",
		bytes.NewReader(mustJSON(t, server.SolveRequest{Operator: "jacobian", Method: "cg", RHS: make([]float64, rows)})))
	if err != nil {
		t.Fatal(err)
	}
	var e server.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || e.Code != "unsupported_operator" {
		t.Fatalf("cg on rectangular: status %d code %q, want 422 unsupported_operator", resp.StatusCode, e.Code)
	}

	// lsqr runs, and warm steps with slightly perturbed values converge
	// faster than the cold start.
	var seq server.SequenceInfo
	if status := c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "jacobian", Method: "lsqr"}, &seq); status != http.StatusCreated {
		t.Fatalf("lsqr sequence create: status %d", status)
	}
	xTrue := make([]float64, cols)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, rows)
	a.MulVec(b, xTrue)

	var cold server.SequenceStepResponse
	c.post("/v1/sequence/"+seq.ID+"/step", server.SequenceStepRequest{RHS: b}, &cold)
	if len(cold.X) != cols {
		t.Fatalf("lsqr solution length %d, want %d", len(cold.X), cols)
	}

	vals := append([]float64(nil), a.Values()...)
	for i := range vals {
		vals[i] *= 1 + 1e-10*rng.NormFloat64()
	}
	var warm server.SequenceStepResponse
	c.post("/v1/sequence/"+seq.ID+"/step", server.SequenceStepRequest{RHS: b, Vals: vals}, &warm)
	if !warm.Warm {
		t.Fatal("second rectangular step did not warm-start")
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm lsqr step took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
	c.del("/v1/sequence/"+seq.ID, nil)
}

// TestSequenceCapAndValidation: the open-sequence cap answers 429, and
// protocol errors map to their codes.
func TestSequenceCapAndValidation(t *testing.T) {
	c := newTestClient(t, server.Config{MaxSequences: 2})
	a, b := testSystem(6)
	c.upload("poisson", a)

	var s1, s2 server.SequenceInfo
	c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &s1)
	c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &s2)
	var e server.ErrorResponse
	if status := c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, &e); status != http.StatusTooManyRequests {
		t.Fatalf("third create: status %d, want 429", status)
	}
	if e.Code != "too_many_sequences" {
		t.Errorf("third create code %q, want too_many_sequences", e.Code)
	}

	// Unknown operator and unknown sequence id.
	if status := c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "nope", Method: "cg"}, nil); status != http.StatusNotFound {
		t.Errorf("unknown operator create: status %d, want 404", status)
	}
	if status := c.post("/v1/sequence/seq-999/step", server.SequenceStepRequest{RHS: b}, nil); status != http.StatusNotFound {
		t.Errorf("unknown sequence step: status %d, want 404", status)
	}
	if status := c.del("/v1/sequence/seq-999", nil); status != http.StatusNotFound {
		t.Errorf("unknown sequence close: status %d, want 404", status)
	}

	// Wrong rhs length and wrong vals length.
	if status := c.post("/v1/sequence/"+s1.ID+"/step", server.SequenceStepRequest{RHS: b[:3]}, nil); status != http.StatusBadRequest {
		t.Errorf("short rhs: status %d, want 400", status)
	}
	if status := c.post("/v1/sequence/"+s1.ID+"/step", server.SequenceStepRequest{RHS: b, Vals: []float64{1}}, nil); status != http.StatusBadRequest {
		t.Errorf("short vals: status %d, want 400", status)
	}

	// Closing frees capacity.
	c.del("/v1/sequence/"+s1.ID, nil)
	if status := c.post("/v1/sequence", server.SequenceCreateRequest{Operator: "poisson", Method: "cg"}, nil); status != http.StatusCreated {
		t.Errorf("create after close: status %d, want 201", status)
	}
}

// TestMethodsReportCaps: /v1/methods carries the capability flags the
// CLI and clients key their vocabulary off.
func TestMethodsReportCaps(t *testing.T) {
	c := newTestClient(t, server.Config{})
	var list server.MethodList
	c.get("/v1/methods", &list)
	caps := map[string][2]bool{}
	for _, m := range list.Methods {
		caps[m.Name] = [2]bool{m.Nonsymmetric, m.Rectangular}
	}
	for name, want := range map[string][2]bool{
		"cg":       {false, false},
		"bicgstab": {true, false},
		"gmres":    {true, false},
		"cgnr":     {true, true},
		"lsqr":     {true, true},
	} {
		got, ok := caps[name]
		if !ok {
			t.Errorf("method %q missing from /v1/methods", name)
			continue
		}
		if got != want {
			t.Errorf("%s caps nonsymmetric/rectangular = %v, want %v", name, got, want)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
