package server

import (
	"fmt"
	"sync"

	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// sessionPools keys warm solve.SessionPools by the full request shape —
// (operator, method, preconditioner, parameter set) — so any two
// requests that would build identical sessions share one pool and hit
// its warm free list. Preconditioner setup (the IC0 factorization in
// particular) happens once per pool, not per request.
type sessionPools struct {
	mu    sync.RWMutex
	pools map[string]*solve.SessionPool
	// building tracks keys whose pool is mid-construction, so
	// concurrent first requests for one shape share a single setup
	// (preconditioner factorizations in particular are expensive)
	// instead of each building and all but one discarding.
	building map[string]chan struct{}
	// order tracks pool keys oldest-first for capacity eviction; keys
	// already deleted by dropOperator are skipped lazily.
	order []string
	// capacity bounds the map: request shapes are client-controlled
	// (any params tweak is a new key), so without a cap a client could
	// grow server memory without bound. Past it, the oldest pools are
	// dropped — their checked-out sessions finish normally and the
	// whole pool is garbage once released.
	capacity int
	// enginePool, when non-nil, is handed to every session via
	// WithPool. One sparse.Pool serializes its kernels behind a lock,
	// so this trades intra-solve parallelism across concurrent
	// requests; it is nil by default (see Config.EnginePool).
	enginePool *sparse.Pool
}

func newSessionPools(enginePool *sparse.Pool, capacity int) *sessionPools {
	return &sessionPools{
		pools:      make(map[string]*solve.SessionPool),
		building:   make(map[string]chan struct{}),
		capacity:   capacity,
		enginePool: enginePool,
	}
}

func poolKey(op *storedOperator, method, precondName string, params *solve.Params) string {
	// BatchWorkers does not change session construction (the batch
	// handler overrides fan-out per call), so it is normalized out of
	// the key — otherwise requests differing only in it would
	// fragment the warm pools.
	var norm solve.Params
	if params != nil {
		norm = *params
	}
	norm.BatchWorkers = 0
	// The store generation, not just the client-chosen id, is part of
	// the key: a name that is evicted and re-uploaded with a different
	// matrix must never hit a pool built against the old one, however
	// the eviction and pool cleanup interleave.
	return fmt.Sprintf("%s\x00%d\x00%s\x00%s\x00%s",
		op.info.ID, op.gen, method, precondName, norm.Key())
}

// get returns the pool for the request shape, creating it (and its
// preconditioner) on first use; concurrent first requests for one
// shape wait for a single construction. Creation errors (unknown
// method, bad preconditioner) are returned without caching, so a later
// valid request is unaffected.
func (sp *sessionPools) get(op *storedOperator, method, precondName string, params *solve.Params) (*solve.SessionPool, error) {
	key := poolKey(op, method, precondName, params)
	for {
		sp.mu.RLock()
		p, ok := sp.pools[key]
		sp.mu.RUnlock()
		if ok {
			return p, nil
		}

		sp.mu.Lock()
		if p, ok := sp.pools[key]; ok {
			sp.mu.Unlock()
			return p, nil
		}
		if ch, inflight := sp.building[key]; inflight {
			sp.mu.Unlock()
			<-ch // another request is constructing this shape
			continue
		}
		ch := make(chan struct{})
		sp.building[key] = ch
		sp.mu.Unlock()

		fresh, err := sp.build(op, method, precondName, params)

		sp.mu.Lock()
		delete(sp.building, key)
		if err == nil {
			sp.pools[key] = fresh
			sp.order = append(sp.order, key)
			sp.evictOverCapacity(key)
		}
		sp.mu.Unlock()
		close(ch)
		return fresh, err
	}
}

// build constructs the pool for one request shape (outside any lock —
// preconditioner setup can be expensive).
func (sp *sessionPools) build(op *storedOperator, method, precondName string, params *solve.Params) (*solve.SessionPool, error) {
	opts := params.Options()
	if sp.enginePool != nil {
		opts = append(opts, solve.WithPool(sp.enginePool))
	}
	if precondName != "" {
		// Preconditioner construction needs the square CSR form; a
		// rectangular operator has no meaningful M ≈ A⁻¹.
		csr, ok := op.matrix.(*sparse.CSR)
		if !ok {
			return nil, fmt.Errorf("server: precond %q requires a square operator but %q is rectangular: %w",
				precondName, op.info.ID, solve.ErrBadOption)
		}
		m, err := buildPrecond(precondName, csr)
		if err != nil {
			return nil, err
		}
		opts = append(opts, solve.WithPreconditioner(m))
	}
	return solve.NewSessionPool(method, op.matrix, opts...)
}

// evictOverCapacity drops the oldest pools past the cap, never the
// newcomer. Caller holds sp.mu.
func (sp *sessionPools) evictOverCapacity(newest string) {
	for len(sp.pools) > sp.capacity && len(sp.order) > 0 {
		oldest := sp.order[0]
		sp.order = sp.order[1:]
		if oldest == newest {
			sp.order = append(sp.order, oldest)
			continue
		}
		delete(sp.pools, oldest)
	}
}

// buildPrecond constructs the named preconditioner from the stored
// operator via the shared precond.ByName vocabulary, wrapping every
// failure (unknown name, non-SPD diagonal, failed factorization) with
// solve.ErrBadOption so the wire layer maps it to 400.
//
// One instance serves every session in the pool, but the
// triangular-solve preconditioners (SSOR, IC0) scribble on internal
// scratch in Apply and are NOT safe for concurrent use — those are
// wrapped behind a mutex. The pointwise ones (identity, jacobi) write
// only dst and stay lock-free.
func buildPrecond(name string, a *sparse.CSR) (solve.Preconditioner, error) {
	m, err := precond.ByName(name, a)
	if err != nil {
		return nil, fmt.Errorf("server: precond %q: %v: %w", name, err, solve.ErrBadOption)
	}
	switch name {
	case "ssor", "ic0":
		return &lockedPrecond{p: m}, nil
	}
	return m, nil
}

// lockedPrecond serializes Apply on a preconditioner whose
// implementation mutates internal scratch, so concurrent sessions (and
// Batch fan-out workers) can share one factorization safely. The
// triangular solves it guards are serial and memory-bound, so the
// factorization amortization is worth the contention.
type lockedPrecond struct {
	mu sync.Mutex
	p  solve.Preconditioner
}

// Dim returns the operator order.
func (l *lockedPrecond) Dim() int { return l.p.Dim() }

// Apply computes dst = M^{-1} r under the lock.
func (l *lockedPrecond) Apply(dst, r []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.p.Apply(dst, r)
}

// dropOperator removes every pool built against the given operator
// incarnation (called when the store evicts it) — memory hygiene; the
// generation in the key already guarantees a re-uploaded name cannot
// hit a stale pool. The keys leave the order list too: a stale order
// entry would otherwise evict a live pool rebuilt later under the same
// key.
func (sp *sessionPools) dropOperator(op *storedOperator) {
	prefix := fmt.Sprintf("%s\x00%d\x00", op.info.ID, op.gen)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for key := range sp.pools {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(sp.pools, key)
		}
	}
	kept := sp.order[:0]
	for _, key := range sp.order {
		if _, live := sp.pools[key]; live {
			kept = append(kept, key)
		}
	}
	sp.order = kept
}

// poolStats aggregates hit/miss/size counters across every pool for
// /metrics.
type poolStats struct {
	Pools    int     `json:"pools"`
	Sessions int     `json:"sessions"`
	Idle     int     `json:"idle"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

func (sp *sessionPools) stats() poolStats {
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	var ps poolStats
	ps.Pools = len(sp.pools)
	for _, p := range sp.pools {
		st := p.Stats()
		ps.Sessions += st.Size
		ps.Idle += st.Idle
		ps.Hits += st.Hits
		ps.Misses += st.Misses
	}
	if total := ps.Hits + ps.Misses; total > 0 {
		ps.HitRate = float64(ps.Hits) / float64(total)
	}
	return ps
}
