package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vrcg/solve"
	"vrcg/sparse"
)

// This file is the /v1/sequence endpoint set: server-side warm-started
// solve sequences for outer optimization loops (ICP-style registration,
// trust-region updates) that solve a chain of closely-related systems.
// Each sequence owns a private copy of the stored operator's values, so
// its in-place updates (rescale, value replacement) never leak into
// concurrent solves against the shared stored operator, and wraps a
// solve.Sequence whose session workspaces persist across steps — the
// per-step cost is the iteration work, not setup.

// serverSequence is one live (or free-listed) sequence.
type serverSequence struct {
	id   string
	key  string // shape key: operator gen + method + precond + params
	info SequenceInfo

	// op stays pinned in the store for the sequence's lifetime, so the
	// operator it cloned cannot be evicted-and-replaced underneath the
	// ids a client holds.
	op *storedOperator
	q  *solve.Sequence

	// mu serializes steps (a solve.Sequence is single-threaded); close
	// takes it too, so an in-flight step finishes before teardown.
	mu sync.Mutex
	// dirty marks sequences whose private operator values were mutated;
	// they no longer match the stored operator and cannot be reused.
	dirty bool
	// base indexes the first step of the current incarnation inside
	// q.Steps(), so a reused sequence reports only its own history.
	base int
}

// steps returns this incarnation's per-step iteration counts.
func (sq *serverSequence) steps() []int {
	all := sq.q.Steps()
	return append([]int(nil), all[sq.base:]...)
}

// sequenceRegistry tracks open sequences by id and keeps a bounded
// free list of closed, clean ones keyed by shape, so a client loop that
// opens and closes sequences of one shape keeps hitting hot session
// workspaces.
type sequenceRegistry struct {
	mu   sync.Mutex
	max  int
	seq  int
	open map[string]*serverSequence
	free map[string][]*serverSequence
}

// maxFreePerShape bounds the free list per shape key; beyond it closed
// sequences are simply dropped.
const maxFreePerShape = 4

func newSequenceRegistry(max int) *sequenceRegistry {
	return &sequenceRegistry{
		max:  max,
		open: make(map[string]*serverSequence),
		free: make(map[string][]*serverSequence),
	}
}

func (r *sequenceRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// take pops a clean free-listed sequence of the given shape, or nil.
func (r *sequenceRegistry) take(key string) *serverSequence {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.free[key]
	if len(list) == 0 {
		return nil
	}
	sq := list[len(list)-1]
	r.free[key] = list[:len(list)-1]
	return sq
}

// admit registers a sequence under a fresh id; errTooManySequences past
// the cap.
func (r *sequenceRegistry) admit(sq *serverSequence) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) >= r.max {
		return fmt.Errorf("%w: %d open (cap %d); close one or raise MaxSequences",
			errTooManySequences, len(r.open), r.max)
	}
	r.seq++
	sq.id = fmt.Sprintf("seq-%d", r.seq)
	sq.info.ID = sq.id
	r.open[sq.id] = sq
	return nil
}

func (r *sequenceRegistry) get(id string) (*serverSequence, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sq, ok := r.open[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownSequence, id)
	}
	return sq, nil
}

// remove unregisters an open sequence (close's first half).
func (r *sequenceRegistry) remove(id string) (*serverSequence, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sq, ok := r.open[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownSequence, id)
	}
	delete(r.open, id)
	return sq, nil
}

// park returns a clean closed sequence to the free list; full lists
// drop it. Shape keys are client-controlled, so the whole free pool is
// also bounded by the open-sequence cap to keep a key-spraying client
// from growing server memory.
func (r *sequenceRegistry) park(sq *serverSequence) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.free[sq.key]) >= maxFreePerShape {
		return false
	}
	total := 0
	for _, list := range r.free {
		total += len(list)
	}
	if total >= r.max {
		return false
	}
	r.free[sq.key] = append(r.free[sq.key], sq)
	return true
}

// clonePrivate copies the stored operator's values into a
// sequence-private matrix sharing the immutable structure. Both server
// matrix types support it.
func clonePrivate(m sparse.Matrix) (sparse.Matrix, error) {
	switch t := m.(type) {
	case *sparse.CSR:
		return t.CloneValues(), nil
	case *sparse.Rect:
		return t.CloneValues(), nil
	}
	return nil, fmt.Errorf("server: operator type %T cannot back a sequence: %w", m, solve.ErrUnsupportedOperator)
}

// handleSequenceCreate is POST /v1/sequence.
func (s *Server) handleSequenceCreate(w http.ResponseWriter, r *http.Request) {
	var req SequenceCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Method == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing method")
		return
	}
	if err := req.Params.Validate(); err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	op, err := s.store.acquire(req.Operator)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	if err := checkMethodShape(req.Method, op); err != nil {
		s.store.release(op)
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}

	key := poolKey(op, req.Method, req.Precond, req.Params)
	reused := false
	sq := s.seqs.take(key)
	if sq != nil {
		// Free-listed sequences are clean (values == stored operator) and
		// keyed on the store generation, so the revived workspace is
		// exactly what a fresh build would produce — minus the setup.
		reused = true
		sq.q.Reset()
		sq.base = len(sq.q.Steps())
		sq.op = op // fresh pin
	} else {
		sq, err = s.buildSequence(op, key, req.Method, req.Precond, req.Params)
		if err != nil {
			s.store.release(op)
			status, code := errorStatus(err)
			writeError(w, status, code, err.Error())
			return
		}
	}
	if err := s.seqs.admit(sq); err != nil {
		s.store.release(op)
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	sq.info.Reused = reused
	s.met.observeSequenceCreate(reused)
	writeJSON(w, http.StatusCreated, sq.info)
}

// buildSequence constructs a fresh sequence: private operator clone,
// options from the params, preconditioner if requested.
func (s *Server) buildSequence(op *storedOperator, key, method, precondName string, params *solve.Params) (*serverSequence, error) {
	private, err := clonePrivate(op.matrix)
	if err != nil {
		return nil, err
	}
	opts := params.Options()
	if p := s.cfg.EnginePool; p != nil {
		opts = append(opts, solve.WithPool(p))
	}
	if precondName != "" {
		csr, ok := private.(*sparse.CSR)
		if !ok {
			return nil, fmt.Errorf("server: precond %q requires a square operator but %q is rectangular: %w",
				precondName, op.info.ID, solve.ErrBadOption)
		}
		m, err := buildPrecond(precondName, csr)
		if err != nil {
			return nil, err
		}
		opts = append(opts, solve.WithPreconditioner(m))
	}
	q, err := solve.NewSequence(method, private, opts...)
	if err != nil {
		return nil, err
	}
	return &serverSequence{
		key: key,
		op:  op,
		q:   q,
		info: SequenceInfo{
			Operator: op.info.ID,
			Method:   method,
			Rows:     op.info.Rows,
			Cols:     op.info.Cols,
		},
	}, nil
}

// handleSequenceStep is POST /v1/sequence/{id}/step: optional in-place
// operator update, then one warm-started solve.
func (s *Server) handleSequenceStep(w http.ResponseWriter, r *http.Request) {
	sq, err := s.seqs.get(r.PathValue("id"))
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	var req SequenceStepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing rhs")
		return
	}
	if len(req.RHS) != sq.info.Rows {
		writeError(w, http.StatusBadRequest, codeDimMismatch,
			fmt.Sprintf("rhs has length %d but sequence %q expects %d rows", len(req.RHS), sq.id, sq.info.Rows))
		return
	}

	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	defer release()

	sq.mu.Lock()
	defer sq.mu.Unlock()

	// Operator updates first, so the solve runs against the new system.
	if req.Rescale != nil {
		if err := sq.q.Rescale(*req.Rescale); err != nil {
			status, code := errorStatus(err)
			writeError(w, status, code, err.Error())
			return
		}
		sq.dirty = true
	}
	if req.Vals != nil {
		if err := sq.q.UpdateValues(req.Vals); err != nil {
			status, code := errorStatus(err)
			writeError(w, status, code, err.Error())
			return
		}
		sq.dirty = true
	}

	warm := sq.q.Warm()
	start := time.Now()
	res, err := sq.q.Step(req.RHS)
	s.met.observeSolve(sq.info.Method+"/sequence", time.Since(start))
	if res != nil {
		s.met.observeSequenceStep(warm, res.Iterations)
		s.met.observeSolvePhases(sq.info.Method, res.Phases)
	}
	resp := SequenceStepResponse{
		WireResult: wireResult(res, err),
		Step:       len(sq.q.Steps()) - 1 - sq.base,
		Warm:       warm,
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, solve.ErrNotConverged):
		// Usable partial result, and it still seeds the next warm start.
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	default:
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
	}
}

// handleSequenceClose is DELETE /v1/sequence/{id}: report the step
// history, unpin the operator, and park the sequence for reuse when its
// operator values were never mutated.
func (s *Server) handleSequenceClose(w http.ResponseWriter, r *http.Request) {
	sq, err := s.seqs.remove(r.PathValue("id"))
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	sq.mu.Lock() // wait out an in-flight step
	steps := sq.steps()
	id := sq.id
	s.store.release(sq.op)
	sq.op = nil
	if !sq.dirty {
		s.seqs.park(sq)
	}
	sq.mu.Unlock()
	s.met.observeSequenceClose()
	writeJSON(w, http.StatusOK, SequenceCloseResponse{ID: id, Steps: steps})
}
