package server_test

import (
	"net/http"
	"testing"
	"time"

	"vrcg/cluster"
	"vrcg/server"
	"vrcg/sparse"
)

// newClusterClient boots a real in-process fleet (coordinator + n
// loopback workers over the wire protocol) and a server fronting it.
func newClusterClient(t *testing.T, n int) *testClient {
	t.Helper()
	c := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatInterval: 50 * time.Millisecond,
		PlaceTimeout:      10 * time.Second,
	})
	t.Cleanup(func() { c.Close() })
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(cluster.WorkerConfig{HaloTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		t.Cleanup(func() { w.Close() })
		if _, err := c.AddWorker(w.Addr()); err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
	}
	return newTestClient(t, server.Config{Cluster: c})
}

func TestClusterEndpoints(t *testing.T) {
	c := newClusterClient(t, 2)
	a, b := testSystem(12)

	// Fleet membership before any placement.
	var fleet server.ClusterWorkers
	if status := c.get("/v1/cluster/workers", &fleet); status != http.StatusOK {
		t.Fatalf("workers: status %d", status)
	}
	if len(fleet.Workers) != 2 {
		t.Fatalf("fleet lists %d workers, want 2", len(fleet.Workers))
	}
	for _, w := range fleet.Workers {
		if !w.Alive {
			t.Errorf("worker %s not alive", w.ID)
		}
	}

	// Sharded upload.
	var info server.ClusterOperatorInfo
	status := c.post("/v1/cluster/operators", server.OperatorUpload{
		Name:   "poisson",
		Matrix: *sparse.EncodeCSR(a),
	}, &info)
	if status != http.StatusCreated {
		t.Fatalf("cluster upload: status %d", status)
	}
	if info.ID != "poisson" || info.N != a.Dim() || info.Workers != 2 {
		t.Fatalf("upload info %+v", info)
	}

	// Duplicate name conflicts.
	var er server.ErrorResponse
	status = c.post("/v1/cluster/operators", server.OperatorUpload{
		Name:   "poisson",
		Matrix: *sparse.EncodeCSR(a),
	}, &er)
	if status != http.StatusConflict || er.Code != "operator_exists" {
		t.Fatalf("duplicate upload: status %d code %q", status, er.Code)
	}

	// Distributed solve.
	var res server.ClusterSolveResult
	status = c.post("/v1/cluster/solve", server.ClusterSolveRequest{
		Operator: "poisson", Method: "pipecg", RHS: b, Tol: 1e-10,
	}, &res)
	if status != http.StatusOK {
		t.Fatalf("cluster solve: status %d", status)
	}
	if !res.Converged || res.Workers != 2 {
		t.Fatalf("solve result %+v", res)
	}
	if len(res.X) != a.Dim() {
		t.Fatalf("x has length %d, want %d", len(res.X), a.Dim())
	}
	for _, phase := range []string{"spmv", "halo", "reduction", "iteration"} {
		if res.Phases[phase].Count == 0 {
			t.Errorf("phase %q missing from solve response", phase)
		}
	}

	// Unknown operator and unknown method map to the stable codes.
	status = c.post("/v1/cluster/solve", server.ClusterSolveRequest{
		Operator: "nope", Method: "cg", RHS: b,
	}, &er)
	if status != http.StatusNotFound || er.Code != "unknown_operator" {
		t.Fatalf("unknown operator: status %d code %q", status, er.Code)
	}
	status = c.post("/v1/cluster/solve", server.ClusterSolveRequest{
		Operator: "poisson", Method: "minres", RHS: b,
	}, &er)
	if status != http.StatusBadRequest || er.Code != "unknown_method" {
		t.Fatalf("unknown method: status %d code %q", status, er.Code)
	}

	// /metrics carries the fleet-aggregated cluster section with the
	// per-phase iteration latency histograms.
	var met struct {
		Cluster *cluster.MetricsSnapshot `json:"cluster"`
	}
	if status := c.get("/metrics", &met); status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if met.Cluster == nil {
		t.Fatal("metrics has no cluster section")
	}
	if met.Cluster.Solves == 0 {
		t.Errorf("cluster metrics count no solves: %+v", met.Cluster)
	}
	ph := met.Cluster.PhaseLatency["pipecg"]
	if ph == nil || ph["reduction"].Count == 0 {
		t.Errorf("cluster metrics missing pipecg reduction histogram: %+v", met.Cluster.PhaseLatency)
	}
}

// TestClusterEndpointsWithoutCoordinator: a plain server answers the
// cluster routes with the stable no_cluster code instead of a bare 404.
func TestClusterEndpointsWithoutCoordinator(t *testing.T) {
	c := newTestClient(t, server.Config{})
	var er server.ErrorResponse
	if status := c.get("/v1/cluster/workers", &er); status != http.StatusNotFound || er.Code != "no_cluster" {
		t.Fatalf("workers without fleet: status %d code %q", status, er.Code)
	}
	a, b := testSystem(4)
	if status := c.post("/v1/cluster/operators", server.OperatorUpload{
		Name: "x", Matrix: *sparse.EncodeCSR(a),
	}, &er); status != http.StatusNotFound || er.Code != "no_cluster" {
		t.Fatalf("upload without fleet: status %d code %q", status, er.Code)
	}
	if status := c.post("/v1/cluster/solve", server.ClusterSolveRequest{
		Operator: "x", Method: "cg", RHS: b,
	}, &er); status != http.StatusNotFound || er.Code != "no_cluster" {
		t.Fatalf("solve without fleet: status %d code %q", status, er.Code)
	}
}
