package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vrcg/solve"
	"vrcg/sparse"
)

// TestBackpressure429 pins the admission queue full and proves the next
// solve request is rejected immediately — deterministically, without
// racing real solves against each other.
func TestBackpressure429(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	if err := s.Preload("a", sparse.Poisson1D(8)); err != nil {
		t.Fatal(err)
	}
	// Occupy the one running slot and the one waiting slot.
	s.admit <- struct{}{}
	s.admit <- struct{}{}
	defer func() { <-s.admit; <-s.admit }()

	body := `{"operator":"a","method":"cg","rhs":[1,1,1,1,1,1,1,1]}`
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), codeQueueFull) {
		t.Fatalf("want %q in body, got %s", codeQueueFull, rec.Body.String())
	}
	snap := s.met.snapshot()
	if snap.QueueRejects != 1 {
		t.Fatalf("queue_rejects = %d, want 1", snap.QueueRejects)
	}

	// Free the queue: the same request now succeeds.
	<-s.admit
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", strings.NewReader(body)))
	s.admit <- struct{}{} // restore for the deferred drain
	if rec.Code != http.StatusOK {
		t.Fatalf("after drain: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
}

// TestShutdownRefusesNewWork proves the closed flag answers everything
// with 503 and Shutdown returns once nothing is in flight.
func TestShutdownRefusesNewWork(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 after shutdown, got %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), codeShuttingDown) {
		t.Fatalf("want %q in body, got %s", codeShuttingDown, rec.Body.String())
	}
}

// TestMetricsRouteLabelBounded: unknown request paths share one
// metrics bucket, so path-spraying cannot grow the maps without bound.
func TestMetricsRouteLabelBounded(t *testing.T) {
	s := New(Config{})
	for _, p := range []string{"/a", "/b", "/v1/zzz", "/healthz"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
	}
	snap := s.met.snapshot()
	if snap.Requests["other"] != 3 || snap.Requests["/healthz"] != 1 {
		t.Fatalf("route buckets: %v", snap.Requests)
	}
	if len(snap.Requests) != 2 {
		t.Fatalf("metrics grew a key per unknown path: %v", snap.Requests)
	}
}

// TestShutdownWaitsForInflight: a request that entered before Shutdown
// is drained; Shutdown does not return while it runs.
func TestShutdownWaitsForInflight(t *testing.T) {
	s := New(Config{})
	if !s.enter() {
		t.Fatal("enter refused on an open server")
	}
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned with a request in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.leave()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSessionPoolsRecreateAfterDrop: dropping an operator must purge
// its keys from the eviction order, or a pool rebuilt later under the
// same key gets evicted by its own stale entry.
func TestSessionPoolsRecreateAfterDrop(t *testing.T) {
	sp := newSessionPools(nil, 2)
	m := sparse.Poisson1D(8)
	opA := &storedOperator{info: OperatorInfo{ID: "a", N: 8}, matrix: m, gen: 1}
	opB := &storedOperator{info: OperatorInfo{ID: "b", N: 8}, matrix: m, gen: 2}
	if _, err := sp.get(opA, "cg", "", nil); err != nil {
		t.Fatal(err)
	}
	sp.dropOperator(opA)
	// Recreate under the identical key, then push the map to capacity:
	// the recreated pool must survive (its stale order entry is gone).
	if _, err := sp.get(opA, "cg", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.get(opB, "cg", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.get(opB, "pipecg", "", nil); err != nil {
		t.Fatal(err)
	}
	sp.mu.RLock()
	_, live := sp.pools[poolKey(opA, "cg", "", nil)]
	sp.mu.RUnlock()
	if live {
		// Capacity 2 with three shapes: the oldest ("a"/cg) should be
		// the one evicted — if it is live, a newer pool was evicted in
		// its place.
		if st := sp.stats(); st.Pools != 2 {
			t.Fatalf("capacity not enforced: %d pools", st.Pools)
		}
		t.Fatal("oldest pool survived past capacity at a newer pool's expense")
	}
}

// TestBatchDegradesUnderSaturation: with all but one run slot taken, a
// batch still succeeds on its single admission slot instead of
// oversubscribing.
func TestBatchDegradesUnderSaturation(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, MaxQueue: 8})
	if err := s.Preload("a", sparse.Poisson1D(8)); err != nil {
		t.Fatal(err)
	}
	s.run <- struct{}{} // saturate one of the two run slots
	defer func() { <-s.run }()

	body := `{"operator":"a","method":"cg","rhs":[[1,1,1,1,1,1,1,1],[2,2,2,2,2,2,2,2],[3,3,3,3,3,3,3,3]],"params":{"batch_workers":64}}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("saturated batch: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if len(s.run) != 1 {
		t.Fatalf("run slots leaked: %d still held", len(s.run))
	}
}

// TestStoreRefCountPinsAgainstEviction: an operator held by an
// in-flight request survives an over-capacity insert; the store
// temporarily exceeds capacity instead.
func TestStoreRefCountPinsAgainstEviction(t *testing.T) {
	st := newOperatorStore(1)
	m := sparse.Poisson1D(4)
	if _, _, err := st.put("pinned", m); err != nil {
		t.Fatal(err)
	}
	held, err := st.acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}

	_, evicted, err := st.put("next", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("evicted %v while pinned", evicted)
	}
	if st.len() != 2 {
		t.Fatalf("store len %d, want temporary overflow of 2", st.len())
	}

	// Releasing unpins it; the next insert shrinks the store back to
	// capacity, evicting the idle overflow oldest-first.
	st.release(held)
	_, evicted, err = st.put("another", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 2 || evicted[0].info.ID != "pinned" || evicted[1].info.ID != "next" {
		t.Fatalf("evicted %v, want [pinned next]", evicted)
	}
	if st.len() != 1 {
		t.Fatalf("store len %d, want capacity 1", st.len())
	}
	if _, err := st.acquire("pinned"); err == nil {
		t.Fatal("evicted operator still acquirable")
	}
}

// TestSessionPoolsDropOperator: evicting an operator drops exactly its
// pools.
func TestSessionPoolsDropOperator(t *testing.T) {
	sp := newSessionPools(nil, 64)
	m := sparse.Poisson1D(8)
	opA := &storedOperator{info: OperatorInfo{ID: "a", N: 8}, matrix: m, gen: 1}
	opB := &storedOperator{info: OperatorInfo{ID: "b", N: 8}, matrix: m, gen: 2}
	if _, err := sp.get(opA, "cg", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.get(opB, "cg", "", nil); err != nil {
		t.Fatal(err)
	}
	sp.dropOperator(opA)
	st := sp.stats()
	if st.Pools != 1 {
		t.Fatalf("pools after drop: %d, want 1", st.Pools)
	}
}

// TestSessionPoolsCapacity: the pool map is bounded against a client
// spraying distinct request shapes — oldest pools fall out past the
// cap, and the newest request's pool always survives.
func TestSessionPoolsCapacity(t *testing.T) {
	sp := newSessionPools(nil, 2)
	m := sparse.Poisson1D(8)
	op := &storedOperator{info: OperatorInfo{ID: "a", N: 8}, matrix: m}
	for i, tol := range []float64{1e-6, 1e-7, 1e-8, 1e-9} {
		if _, err := sp.get(op, "cg", "", &solve.Params{Tol: tol}); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
	}
	if st := sp.stats(); st.Pools != 2 {
		t.Fatalf("pool map grew past capacity: %d pools", st.Pools)
	}
	// The newest shape must still be resident (cache hit, not rebuild):
	before := sp.stats().Sessions
	if _, err := sp.get(op, "cg", "", &solve.Params{Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if after := sp.stats().Sessions; after != before {
		t.Fatalf("newest shape was evicted: sessions %d -> %d", before, after)
	}
}
