package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"vrcg/cluster/wire"
	"vrcg/server"
	"vrcg/solve"
)

// binSolveBody frames one binary request (shared by /v1/solve with one
// rhs and /v1/solve/batch with many).
func binSolveBody(operator, method, precond string, params *solve.Params, timeoutMS int, rhs ...[]float64) []byte {
	enc := wire.NewEnc(64)
	enc.U8(1)
	enc.Str(operator)
	enc.Str(method)
	enc.Str(precond)
	if params != nil {
		blob, err := json.Marshal(params)
		if err != nil {
			panic(err)
		}
		enc.Str(string(blob))
	} else {
		enc.Str("")
	}
	enc.U32(uint32(timeoutMS))
	enc.U32(uint32(len(rhs)))
	for _, b := range rhs {
		enc.F64s(b)
	}
	out := append([]byte(nil), enc.B...)
	enc.Release()
	return out
}

// binResult is one decoded response section.
type binResult struct {
	code             string
	method           string
	converged        bool
	iterations       int
	residualNorm     float64
	trueResidualNorm float64
	x                []float64
}

// decodeBinResponse parses a binary response frame.
func decodeBinResponse(t *testing.T, body []byte) (topCode string, results []binResult) {
	t.Helper()
	d := wire.NewDec(body)
	if v := d.U8(); v != 1 {
		t.Fatalf("binary response version %d", v)
	}
	topCode = d.Str()
	n := int(d.U32())
	for i := 0; i < n; i++ {
		var r binResult
		r.code = d.Str()
		r.method = d.Str()
		r.converged = d.U8() == 1
		r.iterations = int(d.U32())
		r.residualNorm = d.F64()
		r.trueResidualNorm = d.F64()
		r.x = d.F64s(nil)
		results = append(results, r)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("binary response decode: %v", err)
	}
	return topCode, results
}

func (c *testClient) postBin(path string, body []byte) (*http.Response, []byte) {
	c.t.Helper()
	resp, err := http.Post(c.srv.URL+path, server.BinaryContentType, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, blob
}

// TestBinarySolveBitIdenticalToJSON: the binary transport is a pure
// encoding change — the solution vector must match the JSON path bit
// for bit, since both run the identical warm-session solve.
func TestBinarySolveBitIdenticalToJSON(t *testing.T) {
	a, b := testSystem(12)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	params := &solve.Params{Tol: 1e-10}

	var jres server.WireResult
	if status := c.post("/v1/solve", server.SolveRequest{
		Operator: "poisson", Method: "cg", RHS: b, Params: params,
	}, &jres); status != http.StatusOK {
		t.Fatalf("json solve status %d", status)
	}

	resp, blob := c.postBin("/v1/solve", binSolveBody("poisson", "cg", "", params, 0, b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary solve status %d: %s", resp.StatusCode, blob)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.BinaryContentType {
		t.Fatalf("binary response content type %q", ct)
	}
	topCode, results := decodeBinResponse(t, blob)
	if topCode != "" || len(results) != 1 {
		t.Fatalf("top code %q, %d results", topCode, len(results))
	}
	r := results[0]
	if !r.converged || r.method != "cg" || r.code != "" {
		t.Fatalf("binary result: %+v", r)
	}
	if len(r.x) != len(jres.X) {
		t.Fatalf("x length %d vs json %d", len(r.x), len(jres.X))
	}
	for i := range r.x {
		if r.x[i] != jres.X[i] {
			t.Fatalf("x[%d] = %x over binary, %x over JSON — transports must be bit-identical",
				i, r.x[i], jres.X[i])
		}
	}
	if r.iterations != jres.Iterations || r.residualNorm != jres.ResidualNorm {
		t.Fatalf("metadata drifted: binary %+v vs json %+v", r, jres)
	}
}

// TestBinarySolveAffinityWarm: repeated binary solves over one client
// keep working (and stay correct) once the affinity cache is hot, and
// a re-upload under the same operator name invalidates it.
func TestBinarySolveAffinityWarm(t *testing.T) {
	a, b := testSystem(8)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	body := binSolveBody("poisson", "cg", "", &solve.Params{Tol: 1e-10}, 0, b)

	var first []float64
	for i := 0; i < 5; i++ {
		resp, blob := c.postBin("/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d status %d: %s", i, resp.StatusCode, blob)
		}
		_, results := decodeBinResponse(t, blob)
		if i == 0 {
			first = results[0].x
			continue
		}
		for j := range first {
			if results[0].x[j] != first[j] {
				t.Fatalf("solve %d diverged from the first at %d", i, j)
			}
		}
	}
}

// TestBinaryBatch: the batch endpoint over the binary transport, wide
// enough to take the block route end to end.
func TestBinaryBatch(t *testing.T) {
	a, b := testSystem(8)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)
	n := len(b)
	B := make([][]float64, 6)
	for k := range B {
		col := make([]float64, n)
		for i := range col {
			col[i] = b[i] + float64(k)
		}
		B[k] = col
	}
	resp, blob := c.postBin("/v1/solve/batch", binSolveBody("poisson", "cg", "", &solve.Params{Tol: 1e-10}, 0, B...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, blob)
	}
	topCode, results := decodeBinResponse(t, blob)
	if topCode != "" || len(results) != len(B) {
		t.Fatalf("top code %q, %d results", topCode, len(results))
	}
	for k, r := range results {
		if !r.converged || r.code != "" {
			t.Fatalf("rhs %d: %+v", k, r)
		}
		var jres server.WireResult
		if status := c.post("/v1/solve", server.SolveRequest{
			Operator: "poisson", Method: "cg", RHS: B[k], Params: &solve.Params{Tol: 1e-10},
		}, &jres); status != http.StatusOK {
			t.Fatalf("json solve %d status %d", k, status)
		}
		diff := 0.0
		for i := range r.x {
			d := r.x[i] - jres.X[i]
			if d < 0 {
				d = -d
			}
			if d > diff {
				diff = d
			}
		}
		if diff > 1e-8 {
			t.Fatalf("rhs %d differs from json solve by %g", k, diff)
		}
	}
}

// TestBinaryErrors: protocol failures answer as ordinary JSON errors
// under the usual codes, and a malformed frame cannot take the
// handler down.
func TestBinaryErrors(t *testing.T) {
	a, b := testSystem(8)
	c := newTestClient(t, server.Config{})
	c.upload("poisson", a)

	// Unknown operator.
	resp, blob := c.postBin("/v1/solve", binSolveBody("nope", "cg", "", nil, 0, b))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown operator status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content type %q", ct)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(blob, &er); err != nil || er.Code != "unknown_operator" {
		t.Fatalf("error body %s (err %v)", blob, err)
	}

	// Truncated frame.
	whole := binSolveBody("poisson", "cg", "", nil, 0, b)
	resp, blob = c.postBin("/v1/solve", whole[:len(whole)/2])
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated frame status %d: %s", resp.StatusCode, blob)
	}

	// Wrong rhs length.
	resp, _ = c.postBin("/v1/solve", binSolveBody("poisson", "cg", "", nil, 0, b[:4]))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short rhs status %d", resp.StatusCode)
	}

	// Wrong rhs length again on the now-warm affinity path.
	resp, _ = c.postBin("/v1/solve", binSolveBody("poisson", "cg", "", nil, 0, b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid solve status %d", resp.StatusCode)
	}
	resp, _ = c.postBin("/v1/solve", binSolveBody("poisson", "cg", "", nil, 0, b[:4]))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short rhs on warm path status %d", resp.StatusCode)
	}

	// Not converged still ships the partial result, binary-framed.
	resp, blob = c.postBin("/v1/solve", binSolveBody("poisson", "cg", "", &solve.Params{Tol: 1e-14, MaxIter: 2}, 0, b))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("not-converged status %d", resp.StatusCode)
	}
	topCode, results := decodeBinResponse(t, blob)
	if topCode != "not_converged" || len(results) != 1 || results[0].converged {
		t.Fatalf("not-converged frame: code %q results %+v", topCode, results)
	}
}
