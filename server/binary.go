package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"vrcg/cluster/wire"
	"vrcg/solve"
)

// This file is the binary serving transport: the cluster tier's frame
// vocabulary (cluster/wire — little-endian scalars, length-prefixed
// float64 slices) carried over the existing HTTP endpoints. JSON stays
// the default; a request arriving with the binary content type gets a
// binary response from the same handler, solving the same request
// shape. The win is the hot path: no reflection, no per-element
// formatting, pooled request/response buffers, and decode straight
// into reused scratch vectors — a warm binary solve allocates a
// handful of objects where the JSON path allocates dozens.
//
// Frame layout (docs/api.md carries the client-facing spec):
//
//	request (POST /v1/solve and /v1/solve/batch):
//	  u8   version   (= 1)
//	  str  operator
//	  str  method
//	  str  precond   ("" = none)
//	  str  params    (solve.Params JSON; "" = defaults)
//	  u32  timeout_ms (0 = server default)
//	  u32  nrhs      (must be 1 on /v1/solve)
//	  nrhs x f64s rhs
//
//	response (status 200 or 422):
//	  u8   version   (= 1)
//	  str  error     ("" = fully converged; stable code otherwise)
//	  u32  nresults
//	  per result:
//	    str  error   ("" = converged)
//	    str  method
//	    u8   converged
//	    u32  iterations
//	    f64  residual_norm
//	    f64  true_residual_norm
//	    f64s x
//
// where str is a u32 length prefix plus UTF-8 bytes and f64s is a u64
// count plus IEEE-754 little-endian doubles. Protocol failures (bad
// frame, unknown operator, queue full, ...) answer with the ordinary
// JSON ErrorResponse under the usual status code — a binary client
// distinguishes them by the response content type.

// BinaryContentType selects the binary frame transport on /v1/solve
// and /v1/solve/batch. Requests without it use JSON, as ever.
const BinaryContentType = "application/x-vrcg-bin"

const binVersion = 1

// isBinary reports whether the request opted into the binary
// transport.
func isBinary(r *http.Request) bool {
	return r.Header.Get("Content-Type") == BinaryContentType
}

// binState is the pooled per-request scratch of the binary path: the
// body buffer, decoded right-hand-side columns, and the params decode
// target, all reused across requests so a warm solve reads and decodes
// without allocating.
type binState struct {
	body   []byte
	rhs    [][]float64
	lens   []int
	codes  []string
	params solve.Params
}

var binStates = sync.Pool{New: func() any { return new(binState) }}

// readBinBody reads the request body into the pooled buffer, answering
// the request itself on failure. With a declared Content-Length the
// read is exact (ServeHTTP already bounded it); otherwise it grows the
// buffer through the MaxBytesReader.
func (s *Server) readBinBody(w http.ResponseWriter, r *http.Request, st *binState) bool {
	if n := r.ContentLength; n >= 0 && n <= s.cfg.MaxBodyBytes {
		if cap(st.body) < int(n) {
			st.body = make([]byte, int(n))
		}
		st.body = st.body[:int(n)]
		if _, err := io.ReadFull(r.Body, st.body); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "short read: "+err.Error())
			return false
		}
		return true
	}
	buf := st.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			st.body = buf
			return true
		}
		if err != nil {
			st.body = buf
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, codeBadRequest,
					"request body exceeds the configured limit")
			} else {
				writeError(w, http.StatusBadRequest, codeBadRequest, "body read: "+err.Error())
			}
			return false
		}
	}
}

// affEntry caches one caller's resolved request shape: matching raw
// request bytes against it skips the string materialization, params
// decode, and pool-map lookup of the slow path. The operator is
// revalidated by generation on every hit, so eviction and re-upload
// can never serve a stale pool.
type affEntry struct {
	opID    string
	method  string
	precond string
	params  string
	gen     uint64
	pool    *solve.SessionPool
}

func (e *affEntry) matches(op, method, precond, params []byte) bool {
	return e.opID == string(op) && e.method == string(method) &&
		e.precond == string(precond) && e.params == string(params)
}

// affinity is the connection-persistent session-affinity cache, keyed
// by RemoteAddr: one keep-alive connection keeps one entry, so repeat
// solves over it hit the fast path. The map is bounded; at capacity it
// resets wholesale (entries rebuild on the next slow path) rather than
// tracking recency.
type affinity struct {
	mu sync.Mutex
	m  map[string]*affEntry
}

const maxAffinityEntries = 1024

func (a *affinity) get(key string) *affEntry {
	a.mu.Lock()
	e := a.m[key]
	a.mu.Unlock()
	return e
}

func (a *affinity) put(key string, e *affEntry) {
	a.mu.Lock()
	if a.m == nil || len(a.m) >= maxAffinityEntries {
		a.m = make(map[string]*affEntry)
	}
	a.m[key] = e
	a.mu.Unlock()
}

// binRequest is the decoded binary request header (views into the
// pooled body buffer — valid for the handler's lifetime only).
type binRequest struct {
	operator  []byte
	method    []byte
	precond   []byte
	params    []byte
	timeoutMS int
}

// decodeBinRequest parses the frame into req and st.rhs, answering the
// request itself on failure.
func (s *Server) decodeBinRequest(w http.ResponseWriter, st *binState, single bool) (req binRequest, ok bool) {
	d := wire.NewDec(st.body)
	if v := d.U8(); v != binVersion && d.Err() == nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "unsupported binary protocol version")
		return req, false
	}
	req.operator = d.StrBytes()
	req.method = d.StrBytes()
	req.precond = d.StrBytes()
	req.params = d.StrBytes()
	req.timeoutMS = int(d.U32())
	nrhs := int(d.U32())
	if d.Err() != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "malformed binary frame: "+d.Err().Error())
		return req, false
	}
	switch {
	case single && nrhs != 1:
		writeError(w, http.StatusBadRequest, codeBadRequest, "binary /v1/solve takes exactly one rhs")
		return req, false
	case nrhs <= 0 || nrhs > len(st.body)/8+1:
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing rhs")
		return req, false
	}
	if cap(st.rhs) < nrhs {
		st.rhs = append(st.rhs[:cap(st.rhs)], make([][]float64, nrhs-cap(st.rhs))...)
		st.lens = make([]int, nrhs)
	}
	st.rhs = st.rhs[:nrhs]
	st.lens = st.lens[:nrhs]
	for i := range st.rhs {
		st.rhs[i] = d.F64s(st.rhs[i])
		st.lens[i] = len(st.rhs[i])
	}
	if d.Err() != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "malformed binary frame: "+d.Err().Error())
		return req, false
	}
	return req, true
}

// resolveBin turns the decoded request header into a pinned operator
// and session pool. The affinity fast path compares the raw header
// bytes against the connection's cached shape and skips every per-
// request allocation of the slow path; misses run the ordinary
// solveSetup and install the cache entry. On failure the response has
// been written and op is nil.
func (s *Server) resolveBin(w http.ResponseWriter, r *http.Request, st *binState, req binRequest) (op *storedOperator, pool *solve.SessionPool, method string) {
	if e := s.aff.get(r.RemoteAddr); e != nil && e.matches(req.operator, req.method, req.precond, req.params) {
		o, err := s.store.acquire(e.opID)
		if err == nil {
			if o.gen == e.gen {
				for i, n := range st.lens {
					if n != o.info.Rows {
						s.store.release(o)
						writeError(w, http.StatusBadRequest, codeDimMismatch,
							fmt.Sprintf("rhs %d has length %d but operator %q has %d rows",
								i, n, o.info.ID, o.info.Rows))
						return nil, nil, ""
					}
				}
				return o, e.pool, e.method
			}
			s.store.release(o) // same name, different matrix: rebuild below
		}
	}

	operator, methodStr, precond := string(req.operator), string(req.method), string(req.precond)
	var pp *solve.Params
	st.params = solve.Params{}
	if len(req.params) > 0 {
		if err := json.Unmarshal(req.params, &st.params); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "malformed params JSON: "+err.Error())
			return nil, nil, ""
		}
		pp = &st.params
	}
	op, pool = s.solveSetup(w, operator, methodStr, pp, precond, st.lens...)
	if op == nil {
		return nil, nil, ""
	}
	s.aff.put(r.RemoteAddr, &affEntry{
		opID:    operator,
		method:  methodStr,
		precond: precond,
		params:  string(req.params),
		gen:     op.gen,
		pool:    pool,
	})
	return op, pool, methodStr
}

// encodeBinResult appends one result frame section under the given
// stable error code ("" = converged).
func encodeBinResult(enc *wire.Enc, res *solve.Result, code string) {
	enc.Str(code)
	if res == nil {
		enc.Str("")
		enc.U8(0)
		enc.U32(0)
		enc.F64(0)
		enc.F64(0)
		enc.F64s(nil)
		return
	}
	enc.Str(res.Method)
	if res.Converged {
		enc.U8(1)
	} else {
		enc.U8(0)
	}
	enc.U32(uint32(res.Iterations))
	enc.F64(res.ResidualNorm)
	enc.F64(res.TrueResidualNorm)
	enc.F64s(res.X)
}

// writeBin ships a finished binary frame and releases its buffer.
func writeBin(w http.ResponseWriter, status int, enc *wire.Enc) {
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(status)
	_, _ = w.Write(enc.B)
	enc.Release()
}

// handleSolveBin is the binary fast path of POST /v1/solve.
func (s *Server) handleSolveBin(w http.ResponseWriter, r *http.Request) {
	st := binStates.Get().(*binState)
	defer binStates.Put(st)
	if !s.readBinBody(w, r, st) {
		return
	}
	req, ok := s.decodeBinRequest(w, st, true)
	if !ok {
		return
	}
	op, pool, method := s.resolveBin(w, r, st, req)
	if op == nil {
		return
	}
	defer s.store.release(op)

	ctx, cancel := s.solveContext(r, req.timeoutMS)
	defer cancel()
	release, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	defer release()

	ps, err := pool.Acquire(ctx)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	start := time.Now()
	res, err := ps.Solve(st.rhs[0])
	s.met.observeSolve(method, time.Since(start))
	if res != nil {
		s.met.observeSolvePhases(method, res.Phases)
	}

	if err != nil && !errors.Is(err, solve.ErrNotConverged) {
		ps.Release()
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	status := http.StatusOK
	if err != nil {
		status = http.StatusUnprocessableEntity
	}
	// Encode while the session is held: the frame copies X, so the
	// session (and its Result) can go back to the pool before the
	// response hits the socket.
	code := ""
	if err != nil {
		_, code = errorStatus(err)
	}
	enc := wire.NewEnc(64 + 8*len(res.X))
	enc.U8(binVersion)
	enc.Str(code)
	enc.U32(1)
	encodeBinResult(enc, res, code)
	ps.Release()
	writeBin(w, status, enc)
}

// handleBatchBin is the binary path of POST /v1/solve/batch, sharing
// the JSON handler's slot-widening and per-RHS error attribution.
func (s *Server) handleBatchBin(w http.ResponseWriter, r *http.Request) {
	st := binStates.Get().(*binState)
	defer binStates.Put(st)
	if !s.readBinBody(w, r, st) {
		return
	}
	req, ok := s.decodeBinRequest(w, st, false)
	if !ok {
		return
	}
	op, pool, method := s.resolveBin(w, r, st, req)
	if op == nil {
		return
	}
	defer s.store.release(op)

	ctx, cancel := s.solveContext(r, req.timeoutMS)
	defer cancel()
	release, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	defer release()

	ps, err := pool.Acquire(ctx)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	bw := st.params.BatchWorkers
	extra := s.widenBatch(bw, len(st.rhs))
	start := time.Now()
	results, err := ps.SolveMany(st.rhs, solve.WithBatchWorkers(1+extra))
	for ; extra > 0; extra-- {
		<-s.run
	}
	s.met.observeSolve(method+"/batch", time.Since(start))
	ps.Release()

	status := http.StatusOK
	topCode := ""
	if cap(st.codes) < len(results) {
		st.codes = make([]string, len(results))
	}
	st.codes = st.codes[:len(results)]
	for i := range st.codes {
		st.codes[i] = ""
	}
	if err != nil {
		for _, e := range joinedErrors(err) {
			var re *solve.RHSError
			if errors.As(e, &re) && re.Index >= 0 && re.Index < len(st.codes) {
				_, st.codes[re.Index] = errorStatus(re.Err)
			}
		}
		status, topCode = errorStatus(err)
		if status != http.StatusUnprocessableEntity {
			writeError(w, status, topCode, err.Error())
			return
		}
	}
	n := 0
	for i := range results {
		n += len(results[i].X)
	}
	enc := wire.NewEnc(64 + 32*len(results) + 8*n)
	enc.U8(binVersion)
	enc.Str(topCode)
	enc.U32(uint32(len(results)))
	for i := range results {
		encodeBinResult(enc, &results[i], st.codes[i])
	}
	writeBin(w, status, enc)
}

// widenBatch takes extra run slots for a batch fan-out (the admission
// slot already held counts as one); see handleBatch for the budget
// rationale. It returns how many extra slots were taken — the caller
// must drain them.
func (s *Server) widenBatch(requested, nrhs int) int {
	bw := requested
	if bw <= 0 || bw > s.cfg.MaxConcurrent {
		bw = s.cfg.MaxConcurrent
	}
	if bw > nrhs {
		bw = nrhs
	}
	extra := 0
	for extra < bw-1 {
		select {
		case s.run <- struct{}{}:
			extra++
		default:
			return extra
		}
	}
	return extra
}
