package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"vrcg/cluster"
	"vrcg/solve"
)

// This file is the HTTP face of the distributed tier: when Config
// .Cluster carries a coordinator, the /v1/cluster/* endpoints expose
// fleet membership, sharded operator upload, and distributed solves.
// Without one the endpoints answer 404 no_cluster, so a single-process
// server and a coordinator share one binary and one handler set.

// ClusterWorkers is the GET /v1/cluster/workers response body.
type ClusterWorkers struct {
	Workers []cluster.WorkerSnapshot `json:"workers"`
	// Operators are the names currently placed across the fleet.
	Operators []string `json:"operators"`
}

// ClusterOperatorInfo is the POST /v1/cluster/operators response body.
type ClusterOperatorInfo struct {
	ID  string `json:"id"`
	N   int    `json:"n"`
	NNZ int    `json:"nnz"`
	// Workers is the live fleet size the operator was sharded across
	// (the shard count is min(workers, rows)).
	Workers int `json:"workers"`
}

// ClusterSolveRequest is the POST /v1/cluster/solve request body.
type ClusterSolveRequest struct {
	// Operator names an operator placed via POST /v1/cluster/operators.
	Operator string `json:"operator"`
	// Method is a distributed method: cg, pcg, pipecg, or gropp.
	Method string `json:"method"`
	// RHS is the full (unsharded) right-hand side.
	RHS []float64 `json:"rhs"`
	// Precond names the block-Jacobi subdomain local for pcg
	// ("identity", "jacobi", "ssor", "ic0").
	Precond string `json:"precond,omitempty"`
	// Tol is the relative residual tolerance (engine default when 0).
	Tol float64 `json:"tol,omitempty"`
	// MaxIter caps iterations (engine default 10n when 0).
	MaxIter int `json:"max_iter,omitempty"`
	// TimeoutMS caps this solve, clamped to the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ClusterSolveResult is the POST /v1/cluster/solve response body.
type ClusterSolveResult struct {
	Method           string    `json:"method"`
	X                []float64 `json:"x,omitempty"`
	Iterations       int       `json:"iterations"`
	Converged        bool      `json:"converged"`
	ResidualNorm     float64   `json:"residual_norm"`
	TrueResidualNorm float64   `json:"true_residual_norm"`
	// Workers is how many shards ran; Degraded means fewer than the
	// operator's original placement (capacity lost to worker deaths);
	// Retries counts mid-solve re-placements.
	Workers  int       `json:"workers"`
	Degraded bool      `json:"degraded,omitempty"`
	Retries  int       `json:"retries,omitempty"`
	Stats    WireStats `json:"stats"`
	// Phases holds the fleet-merged per-iteration latency histograms
	// for this solve, keyed spmv/halo/reduction/iteration.
	Phases map[string]cluster.PhaseSnapshot `json:"phase_latency_us,omitempty"`
	// Error carries the stable code when the solve failed but still
	// produced a usable partial result ("not_converged").
	Error string `json:"error,omitempty"`
}

// clusterOpName auto-assigns ids for unnamed cluster uploads.
var clusterOpSeq atomic.Uint64

// requireCluster answers 404 no_cluster when the server has no
// coordinator attached.
func (s *Server) requireCluster(w http.ResponseWriter) *cluster.Coordinator {
	if s.cfg.Cluster == nil {
		writeError(w, http.StatusNotFound, codeNoCluster,
			"this server is not a cluster coordinator (no fleet attached)")
		return nil
	}
	return s.cfg.Cluster
}

// handleClusterWorkers is GET /v1/cluster/workers: fleet membership.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, ClusterWorkers{
		Workers:   c.Workers(),
		Operators: c.Operators(),
	})
}

// handleClusterUpload is POST /v1/cluster/operators: decode the matrix
// (same wire formats as /v1/operators), shard its rows nnz-balanced
// across the live fleet, and ship every worker its shard plus halo
// schedule.
func (s *Server) handleClusterUpload(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w)
	if c == nil {
		return
	}
	var req OperatorUpload
	if !decodeBody(w, r, &req) {
		return
	}
	m, err := req.Matrix.DecodeLimited(s.cfg.MaxOrder)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("op-%d", clusterOpSeq.Add(1))
	}
	if err := c.Place(name, m); err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	live := 0
	for _, ws := range c.Workers() {
		if ws.Alive {
			live++
		}
	}
	writeJSON(w, http.StatusCreated, ClusterOperatorInfo{
		ID: name, N: m.Dim(), NNZ: m.NNZ(), Workers: live,
	})
}

// handleClusterSolve is POST /v1/cluster/solve: one distributed solve
// across the fleet. The coordinator runs one distributed solve at a
// time (the fleet is one resource), so this endpoint does not consume
// local run slots.
func (s *Server) handleClusterSolve(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w)
	if c == nil {
		return
	}
	var req ClusterSolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Method == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing method")
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing rhs")
		return
	}
	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()

	start := time.Now()
	res, err := c.Solve(ctx, req.Operator, req.Method, req.RHS, cluster.SolveOpts{
		Tol:     req.Tol,
		MaxIter: req.MaxIter,
		Precond: req.Precond,
	})
	s.met.observeSolve(req.Method+"/cluster", time.Since(start))

	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, clusterWireResult(res, nil))
	case errors.Is(err, solve.ErrNotConverged) && res != nil:
		// The partial result is usable; ship it under the 422 status.
		writeJSON(w, http.StatusUnprocessableEntity, clusterWireResult(res, err))
	default:
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
	}
}

func clusterWireResult(res *cluster.Result, err error) ClusterSolveResult {
	out := ClusterSolveResult{
		Method:           res.Method,
		X:                res.X,
		Iterations:       res.Iterations,
		Converged:        res.Converged,
		ResidualNorm:     res.ResidualNorm,
		TrueResidualNorm: res.TrueResidualNorm,
		Workers:          res.Workers,
		Degraded:         res.Degraded,
		Retries:          res.Retries,
		Stats: WireStats{
			MatVecs:       int(res.Stats.MatVecs),
			InnerProducts: int(res.Stats.InnerProducts),
			VectorUpdates: int(res.Stats.VectorUpdates),
			PrecondSolves: int(res.Stats.PrecondSolves),
		},
		Phases: res.Phases,
	}
	if err != nil {
		_, out.Error = errorStatus(err)
	}
	return out
}
