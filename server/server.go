package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"vrcg/cluster"
	"vrcg/sparse"
)

// Config sizes the server. The zero value is serviceable: every field
// has a default applied by New.
type Config struct {
	// MaxConcurrent is the number of solves allowed to run at once.
	// Default: GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue is the number of additional solve requests allowed to
	// wait for a slot; beyond MaxConcurrent+MaxQueue, requests are
	// rejected immediately with 429. Default: 4x MaxConcurrent.
	MaxQueue int
	// MaxOperators caps the operator store; least-recently-used idle
	// operators are evicted past it. Default: 32.
	MaxOperators int
	// MaxSessionPools caps the warm-session pool map. Pool keys are
	// client-controlled (every distinct params/precond/method shape is
	// one), so the cap is what bounds server memory against a client
	// spraying unique shapes; the oldest pools are dropped past it.
	// Default: 64.
	MaxSessionPools int
	// MaxSequences caps concurrently open /v1/sequence sessions; past
	// it, creates are rejected with 429 until one closes. Each open
	// sequence pins its operator and owns a private value copy plus
	// solver workspaces, so the cap is what bounds that memory.
	// Default: 64.
	MaxSequences int
	// DefaultTimeout bounds each solve; a request's timeout_ms can
	// shorten it but not extend it. Default: 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds request bodies (operator uploads dominate).
	// Default: 256 MiB.
	MaxBodyBytes int64
	// MaxOrder bounds the order of uploaded operators. A tiny COO or
	// MatrixMarket envelope can declare an enormous n whose CSR
	// arrays alone would exhaust memory, so the bound is enforced
	// before any order-sized allocation. Default: 1<<22 (~4.2M rows).
	MaxOrder int
	// EnginePool, when non-nil, routes every solver's SpMV and vector
	// kernels through the worker pool. A pool serializes its kernels
	// behind one lock, so with concurrent clients this trades
	// cross-request throughput for per-solve latency; leave it nil
	// (serial kernels, full cross-request parallelism) unless requests
	// are few and large.
	EnginePool *sparse.Pool
	// Cluster, when non-nil, attaches a distributed-tier coordinator
	// and enables the /v1/cluster/* endpoints: fleet membership,
	// sharded operator upload, and distributed solves across worker
	// processes. Without one those endpoints answer 404 no_cluster.
	Cluster *cluster.Coordinator
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxOperators <= 0 {
		c.MaxOperators = 32
	}
	if c.MaxSessionPools <= 0 {
		c.MaxSessionPools = 64
	}
	if c.MaxSequences <= 0 {
		c.MaxSequences = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxOrder <= 0 {
		c.MaxOrder = 1 << 22
	}
	return c
}

// Server is the HTTP solve server: an operator store, warm session
// pools, a bounded admission queue, and the /v1 handler set. Create
// one with New and mount Handler on any http.Server; Shutdown drains
// in-flight solves.
type Server struct {
	cfg   Config
	store *operatorStore
	pools *sessionPools
	seqs  *sequenceRegistry
	met   *metrics
	// aff is the binary transport's connection-persistent affinity
	// cache (binary.go): repeat callers on one connection skip the
	// session-pool lookup entirely.
	aff affinity

	// admit bounds admitted solve requests (running + waiting); a full
	// channel is the 429 backpressure signal. run bounds actual solver
	// concurrency; waiting on it is the queue.
	admit chan struct{}
	run   chan struct{}

	mux *http.ServeMux

	// lifecycle gate: every request enters and leaves under mu, so
	// Shutdown observes a consistent (closed, inflight) pair — no
	// request can slip past a drain that already returned.
	mu       sync.Mutex
	closed   bool
	inflight int
	drained  chan struct{} // created by Shutdown when inflight > 0
}

// New builds a server from cfg (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		store: newOperatorStore(cfg.MaxOperators),
		pools: newSessionPools(cfg.EnginePool, cfg.MaxSessionPools),
		seqs:  newSequenceRegistry(cfg.MaxSequences),
		met:   newMetrics(),
		admit: make(chan struct{}, cfg.MaxConcurrent+cfg.MaxQueue),
		run:   make(chan struct{}, cfg.MaxConcurrent),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/operators", s.handleOperatorUpload)
	s.mux.HandleFunc("GET /v1/operators", s.handleOperatorList)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/sequence", s.handleSequenceCreate)
	s.mux.HandleFunc("POST /v1/sequence/{id}/step", s.handleSequenceStep)
	s.mux.HandleFunc("DELETE /v1/sequence/{id}", s.handleSequenceClose)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
	s.mux.HandleFunc("POST /v1/cluster/operators", s.handleClusterUpload)
	s.mux.HandleFunc("POST /v1/cluster/solve", s.handleClusterSolve)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the fully instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// enter registers a request with the lifecycle gate; false means the
// server is shutting down.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight++
	return true
}

// leave undoes enter, signaling a waiting Shutdown when the last
// request drains.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflight--
	if s.closed && s.inflight == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
	s.mu.Unlock()
}

// ServeHTTP implements http.Handler with the lifecycle gate and
// request metrics around the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		s.met.observeRequest(route, http.StatusServiceUnavailable)
		return
	}
	defer s.leave()
	// A declared in-bounds Content-Length needs no guard reader: the
	// transport already bounds the body, and skipping the wrapper keeps
	// the hot path allocation-free. Unknown or oversized lengths get
	// the usual 413-on-read protection.
	if r.ContentLength < 0 || r.ContentLength > s.cfg.MaxBodyBytes {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	rec := recorders.Get().(*statusRecorder)
	rec.ResponseWriter, rec.status = w, http.StatusOK
	s.mux.ServeHTTP(rec, r)
	status := rec.status
	rec.ResponseWriter = nil
	recorders.Put(rec)
	s.met.observeRequest(route, status)
}

// recorders pools the per-request status recorders.
var recorders = sync.Pool{New: func() any { return new(statusRecorder) }}

// routeLabel maps a request path onto the fixed route vocabulary the
// metrics maps are keyed by. Unknown paths share one bucket so a
// scanner spraying random URLs cannot grow the maps without bound.
func routeLabel(path string) string {
	switch path {
	case "/v1/operators", "/v1/solve", "/v1/solve/batch", "/v1/methods",
		"/v1/cluster/workers", "/v1/cluster/operators", "/v1/cluster/solve",
		"/healthz", "/metrics":
		return path
	}
	// The sequence ids are client-visible path segments; collapse them
	// so the metrics maps stay bounded.
	if path == "/v1/sequence" || strings.HasPrefix(path, "/v1/sequence/") {
		return "/v1/sequence"
	}
	return "other"
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// acquireSlot admits one solve request through the bounded queue. It
// returns a release function on success; otherwise the request was
// already answered (429 on a full queue, 504 when the deadline passed
// while waiting, 503 during shutdown).
func (s *Server) acquireSlot(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.admit <- struct{}{}:
	default:
		s.met.observeQueueReject()
		writeError(w, http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("solve queue full (%d running + %d waiting)", s.cfg.MaxConcurrent, s.cfg.MaxQueue))
		return nil, false
	}
	select {
	case s.run <- struct{}{}:
	case <-ctx.Done():
		<-s.admit
		status, code := errorStatus(ctx.Err())
		writeError(w, status, code, "deadline passed while waiting for a solve slot")
		return nil, false
	}
	return func() {
		<-s.run
		<-s.admit
	}, true
}

// solveContext derives the per-request solve context: the client's
// timeout_ms when given, capped by the server default.
func (s *Server) solveContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// Preload installs an operator directly (no HTTP round-trip), under
// the given id — the embedding path cmd/cgserve's -preload flag and
// tests use. It follows the same store semantics as POST /v1/operators.
func (s *Server) Preload(name string, m sparse.Matrix) error {
	prewarmPartition(m, s.cfg.EnginePool)
	_, evicted, err := s.store.put(name, m)
	for _, e := range evicted {
		s.pools.dropOperator(e)
	}
	return err
}

// Shutdown refuses new requests and waits for in-flight requests to
// drain, or for ctx to expire. (Solves themselves run under the
// server's DefaultTimeout, so the drain is bounded.) Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.inflight == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drained == nil {
		s.drained = make(chan struct{})
	}
	drained := s.drained
	s.mu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown interrupted with requests in flight: %w", ctx.Err())
	}
}
