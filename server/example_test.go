package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"vrcg/server"
	"vrcg/solve"
	"vrcg/sparse"
)

// Example walks the full serving flow: boot a server, upload an
// operator, and solve against it — the same three steps a remote client
// performs with curl (docs/api.md has the HTTP-level equivalents).
func Example() {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Upload the model problem in CSR wire form.
	a := sparse.Poisson2D(8)
	upload, _ := json.Marshal(server.OperatorUpload{
		Name:   "poisson",
		Matrix: *sparse.EncodeCSR(a),
	})
	resp, err := http.Post(ts.URL+"/v1/operators", "application/json", bytes.NewReader(upload))
	if err != nil {
		fmt.Println(err)
		return
	}
	var info server.OperatorInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	fmt.Printf("uploaded %s: n=%d symmetric=%v\n", info.ID, info.N, info.Symmetric)

	// Solve: one right-hand side through a pooled warm session.
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	req, _ := json.Marshal(server.SolveRequest{
		Operator: "poisson",
		Method:   "cg",
		RHS:      b,
		Params:   &solve.Params{Tol: 1e-10},
	})
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(req))
	if err != nil {
		fmt.Println(err)
		return
	}
	var res server.WireResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	fmt.Printf("solved with %s: converged=%v x-length=%d\n", res.Method, res.Converged, len(res.X))

	// Output:
	// uploaded poisson: n=64 symmetric=true
	// solved with cg: converged=true x-length=64
}
