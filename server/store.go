package server

import (
	"container/list"
	"fmt"
	"sync"

	"vrcg/sparse"
)

// operatorStore keeps uploaded operators resident under string ids,
// each stamped with a store-unique generation so downstream caches
// (the session pools) can key on identity rather than the reusable
// client-chosen name,
// ref-counted so an operator can never be evicted out from under an
// in-flight solve, with LRU eviction once capacity is exceeded.
// Uploads precompute the matrix's nnz-balanced row partition for the
// server's engine pool, so the first pooled SpMV against a fresh
// operator does no partitioning work.
type operatorStore struct {
	mu       sync.Mutex
	capacity int
	seq      int
	gen      uint64
	entries  map[string]*storedOperator
	// lru orders entries most-recently-used first; every element value
	// is a *storedOperator.
	lru *list.List
}

// storedOperator is one resident operator plus its bookkeeping.
type storedOperator struct {
	info OperatorInfo
	// matrix is *sparse.CSR for square uploads and *sparse.Rect for
	// rectangular (least-squares) ones; per-method shape requirements
	// are enforced at solve time against the registry's capability
	// flags, not here.
	matrix sparse.Matrix
	// gen is unique across the store's lifetime: a re-upload under a
	// previously used name gets a fresh generation, so caches keyed on
	// (id, gen) can never serve state built for an earlier matrix.
	gen  uint64
	refs int
	elem *list.Element
}

func newOperatorStore(capacity int) *operatorStore {
	return &operatorStore{
		capacity: capacity,
		entries:  make(map[string]*storedOperator),
		lru:      list.New(),
	}
}

// maxOperatorNameLen bounds client-chosen operator ids.
const maxOperatorNameLen = 128

// validateOperatorName rejects ids that would corrupt the session-pool
// key scheme (NUL is the key separator) or bloat listings: printable,
// non-empty, bounded length.
func validateOperatorName(name string) error {
	if len(name) > maxOperatorNameLen {
		return fmt.Errorf("%w: %d bytes exceeds the %d-byte limit", errBadOperatorName, len(name), maxOperatorNameLen)
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("%w: control character %q", errBadOperatorName, r)
		}
	}
	return nil
}

// put stores m under name (auto-assigned when empty), returning its
// entry and the entries evicted to make room. Eviction only considers
// operators with no active references; when everything is pinned the
// store temporarily exceeds capacity rather than failing uploads.
func (st *operatorStore) put(name string, m sparse.Matrix) (*storedOperator, []*storedOperator, error) {
	if err := validateOperatorName(name); err != nil {
		return nil, nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if name == "" {
		// Skip auto ids a client has claimed explicitly.
		for {
			st.seq++
			name = fmt.Sprintf("op-%d", st.seq)
			if _, taken := st.entries[name]; !taken {
				break
			}
		}
	}
	if _, dup := st.entries[name]; dup {
		return nil, nil, fmt.Errorf("%w: %q", errOperatorExists, name)
	}
	st.gen++
	rows, cols := sparse.Dims(m)
	e := &storedOperator{
		info: OperatorInfo{
			ID:   name,
			N:    rows, // rows, for compatibility with square-era clients
			Rows: rows,
			Cols: cols,
		},
		matrix: m,
		gen:    st.gen,
	}
	if sp, ok := m.(sparse.Sparse); ok {
		e.info.NNZ = sp.NNZ()
		e.info.MaxRowNonzeros = sp.MaxRowNonzeros()
	}
	if csr, ok := m.(*sparse.CSR); ok {
		e.info.Symmetric = csr.IsSymmetric(1e-12)
	}
	e.elem = st.lru.PushFront(e)
	st.entries[name] = e

	var evicted []*storedOperator
	for st.lru.Len() > st.capacity {
		victim := st.oldestIdle(e)
		if victim == nil {
			break // everything is in use; allow temporary overflow
		}
		st.lru.Remove(victim.elem)
		delete(st.entries, victim.info.ID)
		evicted = append(evicted, victim)
	}
	return e, evicted, nil
}

// oldestIdle returns the least-recently-used entry with no active
// references, or nil. The entry that triggered the eviction is never a
// candidate — evicting what was just uploaded would turn a full store
// into an upload black hole. Caller holds st.mu.
func (st *operatorStore) oldestIdle(keep *storedOperator) *storedOperator {
	for el := st.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*storedOperator); e.refs == 0 && e != keep {
			return e
		}
	}
	return nil
}

// acquire pins the named operator (bumping its recency) for the
// duration of a request; the caller must release it.
func (st *operatorStore) acquire(id string) (*storedOperator, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownOperator, id)
	}
	e.refs++
	st.lru.MoveToFront(e.elem)
	return e, nil
}

// release undoes one acquire.
func (st *operatorStore) release(e *storedOperator) {
	st.mu.Lock()
	e.refs--
	st.mu.Unlock()
}

// list snapshots the resident operators, most recently used first.
func (st *operatorStore) list() []OperatorInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	infos := make([]OperatorInfo, 0, st.lru.Len())
	for el := st.lru.Front(); el != nil; el = el.Next() {
		infos = append(infos, el.Value.(*storedOperator).info)
	}
	return infos
}

func (st *operatorStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}
