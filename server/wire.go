package server

import (
	"context"
	"errors"
	"net/http"

	"vrcg/cluster"
	"vrcg/solve"
	"vrcg/sparse"
)

// This file defines the JSON wire schema of every endpoint and the one
// error-mapping table (solver sentinel → HTTP status + stable error
// code) that docs/api.md documents.

// OperatorUpload is the POST /v1/operators request body.
type OperatorUpload struct {
	// Name is the id the operator will be stored under; empty
	// auto-assigns "op-N".
	Name string `json:"name,omitempty"`
	// Matrix is the payload in any sparse wire format ("csr", "coo",
	// "matrixmarket").
	Matrix sparse.WireMatrix `json:"matrix"`
}

// OperatorInfo describes one stored operator (POST/GET /v1/operators
// responses).
type OperatorInfo struct {
	ID string `json:"id"`
	// N is the row count — the required right-hand-side length. Kept as
	// "n" for square-era clients; Rows/Cols carry the full shape.
	N              int  `json:"n"`
	Rows           int  `json:"rows"`
	Cols           int  `json:"cols"`
	NNZ            int  `json:"nnz"`
	MaxRowNonzeros int  `json:"max_row_nonzeros"`
	Symmetric      bool `json:"symmetric"`
}

// OperatorList is the GET /v1/operators response body.
type OperatorList struct {
	Operators []OperatorInfo `json:"operators"`
	Capacity  int            `json:"capacity"`
}

// SolveRequest is the POST /v1/solve request body.
type SolveRequest struct {
	// Operator names a stored operator (the id returned by upload).
	Operator string `json:"operator"`
	// Method is a solve registry name (GET /v1/methods lists them).
	Method string `json:"method"`
	// RHS is the right-hand side; its length must equal the operator
	// order.
	RHS []float64 `json:"rhs"`
	// Params carries the method options (solve.Params wire names).
	Params *solve.Params `json:"params,omitempty"`
	// Precond selects a preconditioner built from the stored operator
	// ("identity", "jacobi", "ssor", "ic0"); only "pcg" consumes it.
	Precond string `json:"precond,omitempty"`
	// TimeoutMS caps this request's solve time; 0 uses the server
	// default, and values above the server default are clamped to it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchRequest is the POST /v1/solve/batch request body: SolveRequest
// with many right-hand sides.
type BatchRequest struct {
	Operator  string        `json:"operator"`
	Method    string        `json:"method"`
	RHS       [][]float64   `json:"rhs"`
	Params    *solve.Params `json:"params,omitempty"`
	Precond   string        `json:"precond,omitempty"`
	TimeoutMS int           `json:"timeout_ms,omitempty"`
}

// WireStats mirrors the solver's operation counts.
type WireStats struct {
	MatVecs       int   `json:"matvecs"`
	InnerProducts int   `json:"inner_products"`
	VectorUpdates int   `json:"vector_updates"`
	PrecondSolves int   `json:"precond_solves,omitempty"`
	Flops         int64 `json:"flops"`
}

// WireResult is the wire form of solve.Result (POST /v1/solve response;
// batch responses carry one per right-hand side).
type WireResult struct {
	Method           string    `json:"method"`
	X                []float64 `json:"x,omitempty"`
	Iterations       int       `json:"iterations"`
	Converged        bool      `json:"converged"`
	ResidualNorm     float64   `json:"residual_norm"`
	TrueResidualNorm float64   `json:"true_residual_norm"`
	History          []float64 `json:"history,omitempty"`
	Stats            WireStats `json:"stats"`
	Syncs            int       `json:"syncs"`
	Blocks           int       `json:"blocks,omitempty"`
	// Error carries the stable error code when this solve failed but
	// still produced a usable partial result ("not_converged").
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/solve/batch response body.
type BatchResponse struct {
	Results []WireResult `json:"results"`
	// Error carries the batch-level error code when any right-hand
	// side failed ("not_converged" when that is the only failure).
	Error string `json:"error,omitempty"`
}

// MethodInfo is one registry entry (GET /v1/methods).
type MethodInfo struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
	// Nonsymmetric marks methods that accept nonsymmetric square
	// operators; Rectangular marks the least-squares methods that also
	// accept rectangular ones. Both false means square SPD only.
	Nonsymmetric bool `json:"nonsymmetric,omitempty"`
	Rectangular  bool `json:"rectangular,omitempty"`
	// Block marks the multi-RHS methods that iterate a whole panel of
	// right-hand sides through one shared Krylov space; /v1/solve/batch
	// routes wide shared-operator batches through them automatically.
	Block bool `json:"block,omitempty"`
}

// MethodList is the GET /v1/methods response body.
type MethodList struct {
	Methods []MethodInfo `json:"methods"`
}

// SequenceCreateRequest is the POST /v1/sequence request body: it
// prepares a warm-started solve sequence against a private copy of the
// stored operator's values (sequence steps may mutate them without
// affecting other requests).
type SequenceCreateRequest struct {
	Operator string        `json:"operator"`
	Method   string        `json:"method"`
	Params   *solve.Params `json:"params,omitempty"`
	Precond  string        `json:"precond,omitempty"`
}

// SequenceInfo is the POST /v1/sequence response body (and the shape of
// the close response's summary).
type SequenceInfo struct {
	ID       string `json:"id"`
	Operator string `json:"operator"`
	Method   string `json:"method"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	// Reused reports that the sequence was revived from the warm free
	// list (its session workspaces are already hot).
	Reused bool `json:"reused,omitempty"`
}

// SequenceStepRequest is the POST /v1/sequence/{id}/step request body.
// Rescale and Vals, when present, update the sequence's private
// operator in place (structure unchanged) before the solve.
type SequenceStepRequest struct {
	RHS []float64 `json:"rhs"`
	// Rescale multiplies every operator value by the factor first.
	Rescale *float64 `json:"rescale,omitempty"`
	// Vals replaces the operator's stored values (NNZ length).
	Vals      []float64 `json:"vals,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// SequenceStepResponse is a WireResult plus the sequence bookkeeping:
// which step this was and whether it warm-started from the previous
// solution.
type SequenceStepResponse struct {
	WireResult
	Step int  `json:"step"`
	Warm bool `json:"warm"`
}

// SequenceCloseResponse is the DELETE /v1/sequence/{id} response body:
// the per-step iteration counts the sequence accumulated.
type SequenceCloseResponse struct {
	ID    string `json:"id"`
	Steps []int  `json:"steps"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Code is a stable machine-readable error code (see docs/api.md).
	Code string `json:"code"`
	// Error is the human-readable detail.
	Error string `json:"error"`
}

// Health is the GET /healthz response body.
type Health struct {
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
}

// wireResultView maps a solver result (and its per-solve error, if
// any) onto the wire form, sharing X and History with the result — the
// right shape when the result already owns its storage (Batch results
// do).
func wireResultView(res *solve.Result, err error) WireResult {
	if res == nil {
		return WireResult{}
	}
	w := WireResult{
		Method:           res.Method,
		X:                res.X,
		Iterations:       res.Iterations,
		Converged:        res.Converged,
		ResidualNorm:     res.ResidualNorm,
		TrueResidualNorm: res.TrueResidualNorm,
		Stats: WireStats{
			MatVecs:       res.Stats.MatVecs,
			InnerProducts: res.Stats.InnerProducts,
			VectorUpdates: res.Stats.VectorUpdates,
			PrecondSolves: res.Stats.PrecondSolves,
			Flops:         res.Stats.Flops,
		},
		Syncs:   res.Syncs,
		Blocks:  res.Blocks,
		History: res.History,
	}
	if err != nil {
		_, w.Error = errorStatus(err)
	}
	return w
}

// wireResult is wireResultView with X and History copied out of
// session-owned storage, so a pooled session can be released before
// the response is written.
func wireResult(res *solve.Result, err error) WireResult {
	w := wireResultView(res, err)
	w.X = append([]float64(nil), w.X...)
	if w.History != nil {
		w.History = append([]float64(nil), w.History...)
	}
	return w
}

// Stable error codes; docs/api.md carries the full table.
const (
	codeBadRequest       = "bad_request"
	codeBadMatrix        = "bad_matrix"
	codeBadOption        = "bad_option"
	codeDimMismatch      = "dim_mismatch"
	codeUnknownMethod    = "unknown_method"
	codeUnknownOperator  = "unknown_operator"
	codeOperatorExists   = "operator_exists"
	codeNotConverged     = "not_converged"
	codeIndefinite       = "indefinite"
	codeBreakdown        = "breakdown"
	codeUnsupportedOp    = "unsupported_operator"
	codeUnknownSequence  = "unknown_sequence"
	codeTooManySequences = "too_many_sequences"
	codeDeadlineExceeded = "deadline_exceeded"
	codeCanceled         = "canceled"
	codeQueueFull        = "queue_full"
	codeShuttingDown     = "shutting_down"
	codeInternal         = "internal"
	// Distributed-tier codes (/v1/cluster/*).
	codeNoCluster = "no_cluster"
	codeNoWorkers = "no_workers"
	codeDegraded  = "degraded"
)

// Store-level sentinels (the solver ones live in solve/errors.go).
var (
	errUnknownOperator  = errors.New("server: unknown operator")
	errOperatorExists   = errors.New("server: operator id already in use")
	errBadOperatorName  = errors.New("server: invalid operator name")
	errUnknownSequence  = errors.New("server: unknown sequence")
	errTooManySequences = errors.New("server: too many open sequences")
)

// errorStatus is the single mapping from an error to its HTTP status
// and stable code. Solver errors carry sentinel wrapping throughout the
// repository, so errors.Is suffices.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errUnknownOperator), errors.Is(err, cluster.ErrUnknownOperator):
		return http.StatusNotFound, codeUnknownOperator
	case errors.Is(err, errOperatorExists), errors.Is(err, cluster.ErrOperatorExists):
		return http.StatusConflict, codeOperatorExists
	case errors.Is(err, cluster.ErrNoWorkers):
		// The fleet has no live workers: retryable once capacity returns.
		return http.StatusServiceUnavailable, codeNoWorkers
	case errors.Is(err, cluster.ErrDegraded):
		// Placement or solve kept failing while the fleet shrank.
		return http.StatusServiceUnavailable, codeDegraded
	case errors.Is(err, cluster.ErrClosed):
		return http.StatusServiceUnavailable, codeShuttingDown
	case errors.Is(err, errBadOperatorName):
		return http.StatusBadRequest, codeBadRequest
	case errors.Is(err, sparse.ErrWire):
		return http.StatusBadRequest, codeBadMatrix
	case errors.Is(err, solve.ErrUnknownMethod):
		return http.StatusBadRequest, codeUnknownMethod
	case errors.Is(err, solve.ErrBadOption):
		return http.StatusBadRequest, codeBadOption
	case errors.Is(err, solve.ErrDim):
		return http.StatusBadRequest, codeDimMismatch
	case errors.Is(err, solve.ErrNotConverged):
		// The partial result is usable; 422 tells the client the
		// request was well-formed but the iteration budget ran out.
		return http.StatusUnprocessableEntity, codeNotConverged
	case errors.Is(err, solve.ErrIndefinite):
		return http.StatusUnprocessableEntity, codeIndefinite
	case errors.Is(err, solve.ErrBreakdown):
		return http.StatusUnprocessableEntity, codeBreakdown
	case errors.Is(err, solve.ErrUnsupportedOperator):
		// Well-formed request, but the method cannot run on this
		// operator's shape (e.g. cg on a rectangular matrix).
		return http.StatusUnprocessableEntity, codeUnsupportedOp
	case errors.Is(err, errUnknownSequence):
		return http.StatusNotFound, codeUnknownSequence
	case errors.Is(err, errTooManySequences):
		return http.StatusTooManyRequests, codeTooManySequences
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the access log only.
		return statusClientClosedRequest, codeCanceled
	default:
		return http.StatusInternalServerError, codeInternal
	}
}

// statusClientClosedRequest is nginx's conventional 499 for a client
// that disconnected before the response was ready.
const statusClientClosedRequest = 499
