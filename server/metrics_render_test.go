package server

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"vrcg/internal/engine"
)

// TestMetricsRenderMatchesEncodingJSON: the hand-written /metrics
// renderer must be semantically identical to marshaling the snapshot —
// same fields, same values, valid JSON — across every block it covers,
// including sequences.
func TestMetricsRenderMatchesEncodingJSON(t *testing.T) {
	m := newMetrics()
	m.observeRequest("/v1/solve", 200)
	m.observeRequest("/v1/solve", 422)
	m.observeRequest("/metrics", 200)
	m.observeRequest("other", 404)
	m.observeSolve("cg", 750*time.Microsecond)
	m.observeSolve("cg", 3*time.Millisecond)
	m.observeSolve("pcg/batch", 40*time.Millisecond)
	m.observeQueueReject()
	var ps engine.PhaseSet
	ps.Observe(engine.PhaseSpMV, 120*time.Microsecond)
	ps.Observe(engine.PhaseReduction, 7*time.Microsecond)
	ps.Observe(engine.PhaseUpdate, 48*time.Microsecond)
	ps.Observe(engine.PhaseSpMV, 300*time.Millisecond) // overflow bucket
	m.observeSolvePhases("parcg", &ps)
	m.observeSolvePhases("parcg", &ps) // merge path
	m.observeSolvePhases("parcg-pipe", &ps)
	m.observeSequenceCreate(false)
	m.observeSequenceCreate(true)
	m.observeSequenceStep(false, 37)
	m.observeSequenceStep(true, 2)
	m.observeSequenceClose()

	pools := poolStats{Pools: 2, Sessions: 5, Idle: 3, Hits: 41, Misses: 5, HitRate: 41.0 / 46.0}
	ops := operatorGauges{Count: 1, Capacity: 32}

	var buf bytes.Buffer
	m.render(&buf, pools, ops, 1, nil)

	snap := m.snapshot()
	snap.SessionPools = pools
	snap.Operators = ops
	snap.Sequences.Open = 1
	want, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	var got, exp map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("rendered metrics are not valid JSON: %v\n%s", err, buf.String())
	}
	if err := json.Unmarshal(want, &exp); err != nil {
		t.Fatal(err)
	}
	// Uptime is read at two different instants; everything else must
	// agree exactly.
	delete(got, "uptime_s")
	delete(exp, "uptime_s")
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("rendered metrics differ from encoding/json:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestJSONFloatMatchesEncoder: the float formatter must reproduce
// encoding/json's output byte for byte across its regimes.
func TestJSONFloatMatchesEncoder(t *testing.T) {
	for _, v := range []float64{
		0, 1, -1, 0.25, 1e-7, -2.5e-8, 1e21, 3.7e22, 123456.789,
		41.0 / 46.0, 1e-6, 999999999999999999999.0, 0.1,
	} {
		var buf bytes.Buffer
		jsonFloat(&buf, v)
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(want) {
			t.Errorf("jsonFloat(%g) = %s, encoding/json = %s", v, buf.String(), want)
		}
	}
}
