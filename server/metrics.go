package server

import (
	"strconv"
	"sync"
	"time"

	"vrcg/cluster"
)

// metrics is the server's observability state, served as JSON by
// GET /metrics: request counts per route and status, solve latency
// histograms per method, queue rejections, and (joined in by the
// handler) session-pool and operator-store gauges.
type metrics struct {
	start time.Time

	mu           sync.Mutex
	requests     map[string]uint64 // route → count
	statuses     map[int]uint64    // HTTP status → count
	latency      map[string]*histogram
	queueRejects uint64
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[string]uint64),
		statuses: make(map[int]uint64),
		latency:  make(map[string]*histogram),
	}
}

func (m *metrics) observeRequest(route string, status int) {
	m.mu.Lock()
	m.requests[route]++
	m.statuses[status]++
	m.mu.Unlock()
}

func (m *metrics) observeSolve(method string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	h := m.latency[method]
	if h == nil {
		h = newHistogram()
		m.latency[method] = h
	}
	h.observe(ms)
	m.mu.Unlock()
}

func (m *metrics) observeQueueReject() {
	m.mu.Lock()
	m.queueRejects++
	m.mu.Unlock()
}

// metricsSnapshot is the JSON shape of GET /metrics.
type metricsSnapshot struct {
	UptimeS      float64                      `json:"uptime_s"`
	Requests     map[string]uint64            `json:"requests"`
	Statuses     map[int]uint64               `json:"statuses"`
	QueueRejects uint64                       `json:"queue_rejects"`
	SolveLatency map[string]histogramSnapshot `json:"solve_latency_ms"`
	SessionPools poolStats                    `json:"session_pools"`
	Operators    operatorGauges               `json:"operators"`
	// Cluster is the coordinator's fleet-aggregated view (membership,
	// solve counters, per-method per-phase iteration latency) when the
	// server fronts a distributed tier; absent otherwise.
	Cluster *cluster.MetricsSnapshot `json:"cluster,omitempty"`
}

type operatorGauges struct {
	Count    int `json:"count"`
	Capacity int `json:"capacity"`
}

func (m *metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := metricsSnapshot{
		UptimeS:      time.Since(m.start).Seconds(),
		Requests:     make(map[string]uint64, len(m.requests)),
		Statuses:     make(map[int]uint64, len(m.statuses)),
		QueueRejects: m.queueRejects,
		SolveLatency: make(map[string]histogramSnapshot, len(m.latency)),
	}
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.statuses {
		snap.Statuses[k] = v
	}
	for k, h := range m.latency {
		snap.SolveLatency[k] = h.snapshot()
	}
	return snap
}

// latencyBuckets are the histogram upper bounds in milliseconds,
// roughly one bucket per 2.5x, spanning sub-millisecond warm solves to
// multi-second cold ones.
var latencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram. Guarded by metrics.mu.
type histogram struct {
	counts []uint64 // len(latencyBuckets)+1; last is +Inf
	count  uint64
	sumMS  float64
	maxMS  float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(ms float64) {
	i := 0
	for i < len(latencyBuckets) && ms > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// histogramSnapshot is the wire form: cumulative bucket counts keyed by
// upper bound, plus count/sum/mean/max.
type histogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
	MaxMS   float64           `json:"max_ms"`
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *histogram) snapshot() histogramSnapshot {
	snap := histogramSnapshot{
		Count:   h.count,
		SumMS:   h.sumMS,
		MaxMS:   h.maxMS,
		Buckets: make(map[string]uint64, len(h.counts)),
	}
	if h.count > 0 {
		snap.MeanMS = h.sumMS / float64(h.count)
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		key := "+Inf"
		if i < len(latencyBuckets) {
			key = formatBound(latencyBuckets[i])
		}
		snap.Buckets[key] = cum
	}
	return snap
}

// formatBound renders a bucket bound without trailing zeros ("0.25",
// "1", "2500").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
