package server

import (
	"strconv"
	"sync"
	"time"

	"vrcg/cluster"
)

// metrics is the server's observability state, served as JSON by
// GET /metrics: request counts per route and status, solve latency
// histograms per method, queue rejections, and (joined in by the
// handler) session-pool and operator-store gauges.
type metrics struct {
	start time.Time

	mu           sync.Mutex
	requests     map[string]uint64 // route → count
	statuses     map[int]uint64    // HTTP status → count
	latency      map[string]*histogram
	queueRejects uint64

	// Sequence bookkeeping: lifecycle counters and iterations-per-step
	// histograms split cold (first step) vs warm (warm-started), so the
	// warm-start payoff is observable straight off /metrics.
	seqCreated uint64
	seqReused  uint64
	seqClosed  uint64
	seqSteps   map[string]*histogram // "cold" | "warm" → iterations
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[string]uint64),
		statuses: make(map[int]uint64),
		latency:  make(map[string]*histogram),
		seqSteps: make(map[string]*histogram),
	}
}

func (m *metrics) observeRequest(route string, status int) {
	m.mu.Lock()
	m.requests[route]++
	m.statuses[status]++
	m.mu.Unlock()
}

func (m *metrics) observeSolve(method string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	h := m.latency[method]
	if h == nil {
		h = newHistogram()
		m.latency[method] = h
	}
	h.observe(ms)
	m.mu.Unlock()
}

func (m *metrics) observeQueueReject() {
	m.mu.Lock()
	m.queueRejects++
	m.mu.Unlock()
}

func (m *metrics) observeSequenceCreate(reused bool) {
	m.mu.Lock()
	m.seqCreated++
	if reused {
		m.seqReused++
	}
	m.mu.Unlock()
}

func (m *metrics) observeSequenceClose() {
	m.mu.Lock()
	m.seqClosed++
	m.mu.Unlock()
}

// observeSequenceStep records one step's iteration count under its
// temperature ("cold" for the first step, "warm" for warm-started
// ones).
func (m *metrics) observeSequenceStep(warm bool, iterations int) {
	key := "cold"
	if warm {
		key = "warm"
	}
	m.mu.Lock()
	h := m.seqSteps[key]
	if h == nil {
		h = newHistogramWith(iterationBuckets)
		m.seqSteps[key] = h
	}
	h.observe(float64(iterations))
	m.mu.Unlock()
}

// metricsSnapshot is the JSON shape of GET /metrics.
type metricsSnapshot struct {
	UptimeS      float64                      `json:"uptime_s"`
	Requests     map[string]uint64            `json:"requests"`
	Statuses     map[int]uint64               `json:"statuses"`
	QueueRejects uint64                       `json:"queue_rejects"`
	SolveLatency map[string]histogramSnapshot `json:"solve_latency_ms"`
	SessionPools poolStats                    `json:"session_pools"`
	Operators    operatorGauges               `json:"operators"`
	// Sequences is present once any /v1/sequence activity happened.
	Sequences *sequenceMetrics `json:"sequences,omitempty"`
	// Cluster is the coordinator's fleet-aggregated view (membership,
	// solve counters, per-method per-phase iteration latency) when the
	// server fronts a distributed tier; absent otherwise.
	Cluster *cluster.MetricsSnapshot `json:"cluster,omitempty"`
}

type operatorGauges struct {
	Count    int `json:"count"`
	Capacity int `json:"capacity"`
}

// sequenceMetrics is the /metrics block for the warm-start sequence
// tier: lifecycle counters plus iterations-per-step histograms keyed
// "cold" and "warm" — warm steps landing in strictly lower buckets is
// the observable warm-start payoff.
type sequenceMetrics struct {
	Created uint64 `json:"created"`
	Reused  uint64 `json:"reused"`
	Closed  uint64 `json:"closed"`
	Open    int    `json:"open"`

	StepIterations map[string]histogramSnapshot `json:"step_iterations"`
}

func (m *metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := metricsSnapshot{
		UptimeS:      time.Since(m.start).Seconds(),
		Requests:     make(map[string]uint64, len(m.requests)),
		Statuses:     make(map[int]uint64, len(m.statuses)),
		QueueRejects: m.queueRejects,
		SolveLatency: make(map[string]histogramSnapshot, len(m.latency)),
	}
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.statuses {
		snap.Statuses[k] = v
	}
	for k, h := range m.latency {
		snap.SolveLatency[k] = h.snapshot()
	}
	if m.seqCreated > 0 || len(m.seqSteps) > 0 {
		sm := &sequenceMetrics{
			Created:        m.seqCreated,
			Reused:         m.seqReused,
			Closed:         m.seqClosed,
			StepIterations: make(map[string]histogramSnapshot, len(m.seqSteps)),
		}
		for k, h := range m.seqSteps {
			sm.StepIterations[k] = h.snapshot()
		}
		snap.Sequences = sm
	}
	return snap
}

// latencyBuckets are the histogram upper bounds in milliseconds,
// roughly one bucket per 2.5x, spanning sub-millisecond warm solves to
// multi-second cold ones.
var latencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// iterationBuckets bound the sequence iterations-per-step histograms: a
// warm-started step on a converged outer loop lands in the lowest
// buckets while a cold start lands by problem difficulty.
var iterationBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// histogram is a fixed-bucket histogram over arbitrary upper bounds
// (latency in milliseconds, iteration counts, ...). Guarded by
// metrics.mu.
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sumMS  float64
	maxMS  float64
}

func newHistogram() *histogram { return newHistogramWith(latencyBuckets) }

func newHistogramWith(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(ms float64) {
	i := 0
	for i < len(h.bounds) && ms > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// histogramSnapshot is the wire form: cumulative bucket counts keyed by
// upper bound, plus count/sum/mean/max.
type histogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
	MaxMS   float64           `json:"max_ms"`
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *histogram) snapshot() histogramSnapshot {
	snap := histogramSnapshot{
		Count:   h.count,
		SumMS:   h.sumMS,
		MaxMS:   h.maxMS,
		Buckets: make(map[string]uint64, len(h.counts)),
	}
	if h.count > 0 {
		snap.MeanMS = h.sumMS / float64(h.count)
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		key := "+Inf"
		if i < len(h.bounds) {
			key = formatBound(h.bounds[i])
		}
		snap.Buckets[key] = cum
	}
	return snap
}

// formatBound renders a bucket bound without trailing zeros ("0.25",
// "1", "2500").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
