package server

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"vrcg/cluster"
	"vrcg/internal/engine"
)

// metrics is the server's observability state, served as JSON by
// GET /metrics: request counts per route and status, solve latency
// histograms per method, queue rejections, and (joined in by the
// handler) session-pool and operator-store gauges.
type metrics struct {
	start time.Time

	mu           sync.Mutex
	requests     map[string]uint64 // route → count
	statuses     map[int]uint64    // HTTP status → count
	latency      map[string]*histogram
	queueRejects uint64

	// solvePhases merges the per-iteration phase histograms the
	// instrumented kernels (the parcg family) attach to their results:
	// method → SpMV / reduction-wait / update latency, in the cluster
	// workers' µs bucket vocabulary, so the SpMV/reduction overlap is
	// observable straight off /metrics for in-process solves exactly as
	// it is for fleet ones.
	solvePhases map[string]*engine.PhaseSet

	// Sequence bookkeeping: lifecycle counters and iterations-per-step
	// histograms split cold (first step) vs warm (warm-started), so the
	// warm-start payoff is observable straight off /metrics.
	seqCreated uint64
	seqReused  uint64
	seqClosed  uint64
	seqSteps   map[string]*histogram // "cold" | "warm" → iterations

	// keyScratch is the reused sorted-key slice of the manual /metrics
	// renderer (guarded by mu like everything else here).
	keyScratch []string
	intScratch []int
}

func newMetrics() *metrics {
	return &metrics{
		start:       time.Now(),
		requests:    make(map[string]uint64),
		statuses:    make(map[int]uint64),
		latency:     make(map[string]*histogram),
		solvePhases: make(map[string]*engine.PhaseSet),
		seqSteps:    make(map[string]*histogram),
	}
}

func (m *metrics) observeRequest(route string, status int) {
	m.mu.Lock()
	m.requests[route]++
	m.statuses[status]++
	m.mu.Unlock()
}

func (m *metrics) observeSolve(method string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	h := m.latency[method]
	if h == nil {
		h = newHistogram()
		m.latency[method] = h
	}
	h.observe(ms)
	m.mu.Unlock()
}

// observeSolvePhases folds one solve's measured phase histograms into
// the per-method aggregate. Results from the non-instrumented methods
// carry no phases and are a no-op.
func (m *metrics) observeSolvePhases(method string, ps *engine.PhaseSet) {
	if ps == nil || ps.Empty() {
		return
	}
	m.mu.Lock()
	dst := m.solvePhases[method]
	if dst == nil {
		dst = new(engine.PhaseSet)
		m.solvePhases[method] = dst
	}
	dst.Merge(ps)
	m.mu.Unlock()
}

func (m *metrics) observeQueueReject() {
	m.mu.Lock()
	m.queueRejects++
	m.mu.Unlock()
}

func (m *metrics) observeSequenceCreate(reused bool) {
	m.mu.Lock()
	m.seqCreated++
	if reused {
		m.seqReused++
	}
	m.mu.Unlock()
}

func (m *metrics) observeSequenceClose() {
	m.mu.Lock()
	m.seqClosed++
	m.mu.Unlock()
}

// observeSequenceStep records one step's iteration count under its
// temperature ("cold" for the first step, "warm" for warm-started
// ones).
func (m *metrics) observeSequenceStep(warm bool, iterations int) {
	key := "cold"
	if warm {
		key = "warm"
	}
	m.mu.Lock()
	h := m.seqSteps[key]
	if h == nil {
		h = newHistogramWith(iterationBuckets)
		m.seqSteps[key] = h
	}
	h.observe(float64(iterations))
	m.mu.Unlock()
}

// metricsSnapshot is the JSON shape of GET /metrics.
type metricsSnapshot struct {
	UptimeS      float64                      `json:"uptime_s"`
	Requests     map[string]uint64            `json:"requests"`
	Statuses     map[int]uint64               `json:"statuses"`
	QueueRejects uint64                       `json:"queue_rejects"`
	SolveLatency map[string]histogramSnapshot `json:"solve_latency_ms"`
	// SolvePhases is the in-process solvers' per-method per-phase
	// iteration latency (the parcg family's measured SpMV/reduction
	// overlap), in the cluster workers' µs bucket vocabulary so fleet
	// and shared-memory numbers read on one scale. Absent until an
	// instrumented method has solved.
	SolvePhases  map[string]map[string]cluster.PhaseSnapshot `json:"solve_phase_latency_us,omitempty"`
	SessionPools poolStats                                   `json:"session_pools"`
	Operators    operatorGauges                              `json:"operators"`
	// Sequences is present once any /v1/sequence activity happened.
	Sequences *sequenceMetrics `json:"sequences,omitempty"`
	// Cluster is the coordinator's fleet-aggregated view (membership,
	// solve counters, per-method per-phase iteration latency) when the
	// server fronts a distributed tier; absent otherwise.
	Cluster *cluster.MetricsSnapshot `json:"cluster,omitempty"`
}

type operatorGauges struct {
	Count    int `json:"count"`
	Capacity int `json:"capacity"`
}

// sequenceMetrics is the /metrics block for the warm-start sequence
// tier: lifecycle counters plus iterations-per-step histograms keyed
// "cold" and "warm" — warm steps landing in strictly lower buckets is
// the observable warm-start payoff.
type sequenceMetrics struct {
	Created uint64 `json:"created"`
	Reused  uint64 `json:"reused"`
	Closed  uint64 `json:"closed"`
	Open    int    `json:"open"`

	StepIterations map[string]histogramSnapshot `json:"step_iterations"`
}

func (m *metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := metricsSnapshot{
		UptimeS:      time.Since(m.start).Seconds(),
		Requests:     make(map[string]uint64, len(m.requests)),
		Statuses:     make(map[int]uint64, len(m.statuses)),
		QueueRejects: m.queueRejects,
		SolveLatency: make(map[string]histogramSnapshot, len(m.latency)),
	}
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.statuses {
		snap.Statuses[k] = v
	}
	for k, h := range m.latency {
		snap.SolveLatency[k] = h.snapshot()
	}
	if len(m.solvePhases) > 0 {
		snap.SolvePhases = make(map[string]map[string]cluster.PhaseSnapshot, len(m.solvePhases))
		for method, ps := range m.solvePhases {
			phases := make(map[string]cluster.PhaseSnapshot, engine.NumPhases)
			for p := engine.Phase(0); p < engine.NumPhases; p++ {
				phases[p.Name()] = phaseSnapshot(&ps[p])
			}
			snap.SolvePhases[method] = phases
		}
	}
	if m.seqCreated > 0 || len(m.seqSteps) > 0 {
		sm := &sequenceMetrics{
			Created:        m.seqCreated,
			Reused:         m.seqReused,
			Closed:         m.seqClosed,
			StepIterations: make(map[string]histogramSnapshot, len(m.seqSteps)),
		}
		for k, h := range m.seqSteps {
			sm.StepIterations[k] = h.snapshot()
		}
		snap.Sequences = sm
	}
	return snap
}

// latencyBuckets are the histogram upper bounds in milliseconds,
// roughly one bucket per 2.5x, spanning sub-millisecond warm solves to
// multi-second cold ones.
var latencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// iterationBuckets bound the sequence iterations-per-step histograms: a
// warm-started step on a converged outer loop lands in the lowest
// buckets while a cold start lands by problem difficulty.
var iterationBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// histogram is a fixed-bucket histogram over arbitrary upper bounds
// (latency in milliseconds, iteration counts, ...). Guarded by
// metrics.mu.
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sumMS  float64
	maxMS  float64
}

func newHistogram() *histogram { return newHistogramWith(latencyBuckets) }

func newHistogramWith(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(ms float64) {
	i := 0
	for i < len(h.bounds) && ms > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// histogramSnapshot is the wire form: cumulative bucket counts keyed by
// upper bound, plus count/sum/mean/max.
type histogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
	MaxMS   float64           `json:"max_ms"`
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *histogram) snapshot() histogramSnapshot {
	snap := histogramSnapshot{
		Count:   h.count,
		SumMS:   h.sumMS,
		MaxMS:   h.maxMS,
		Buckets: make(map[string]uint64, len(h.counts)),
	}
	if h.count > 0 {
		snap.MeanMS = h.sumMS / float64(h.count)
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		key := "+Inf"
		if i < len(h.bounds) {
			key = formatBound(h.bounds[i])
		}
		snap.Buckets[key] = cum
	}
	return snap
}

// formatBound renders a bucket bound without trailing zeros ("0.25",
// "1", "2500").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// phaseBound renders a µs bucket bound the way the cluster tier's
// phase histograms do ("250us", "2ms"), so both phase vocabularies
// read identically off /metrics.
func phaseBound(us float64) string {
	if us >= 1000 {
		return strconv.Itoa(int(us/1000)) + "ms"
	}
	return strconv.Itoa(int(us)) + "us"
}

// phaseSnapshot converts one engine phase histogram to the cluster
// tier's wire shape: cumulative counts keyed by upper bound.
func phaseSnapshot(h *engine.PhaseHist) cluster.PhaseSnapshot {
	s := cluster.PhaseSnapshot{
		Count:   h.Count,
		MeanUS:  h.MeanUS(),
		MaxUS:   h.MaxUS,
		Buckets: make(map[string]uint64, len(h.Buckets)),
	}
	var cum uint64
	for i, ub := range engine.PhaseBucketsUS {
		cum += h.Buckets[i]
		s.Buckets[phaseBound(ub)] = cum
	}
	cum += h.Buckets[engine.NumPhaseBuckets]
	s.Buckets["+Inf"] = cum
	return s
}

// The manual /metrics renderer. Dashboards scrape the endpoint
// continuously, and encoding/json paid ~100 allocations per scrape
// building snapshot maps just to reflect over them. The renderer
// writes the identical JSON (same field names, same map-key ordering
// — keys sorted as encoding/json sorts them) straight into a pooled
// buffer from the live state, with the bucket label strings
// precomputed once per bucket vocabulary. snapshot() stays for tests
// and programmatic use.

// bucketKeys precomputes one bucket vocabulary's JSON key strings in
// the order encoding/json would emit them (lexically sorted), with
// idx mapping each key back to its counts slot.
type bucketKeys struct {
	keys []string
	idx  []int
}

func makeBucketKeys(bounds []float64) *bucketKeys {
	keys := make([]string, len(bounds)+1)
	for i, b := range bounds {
		keys[i] = formatBound(b)
	}
	keys[len(bounds)] = "+Inf"
	return makeKeyTable(keys)
}

// makeKeyTable sorts pre-rendered bucket keys into emission order.
func makeKeyTable(keys []string) *bucketKeys {
	bk := &bucketKeys{keys: keys, idx: make([]int, len(keys))}
	for i := range bk.idx {
		bk.idx[i] = i
	}
	sort.Slice(bk.idx, func(i, j int) bool { return keys[bk.idx[i]] < keys[bk.idx[j]] })
	sorted := make([]string, len(keys))
	for i, o := range bk.idx {
		sorted[i] = keys[o]
	}
	bk.keys = sorted
	return bk
}

var (
	latencyKeys   = makeBucketKeys(latencyBuckets)
	iterationKeys = makeBucketKeys(iterationBuckets)

	// phaseKeys is the µs phase vocabulary's table; slot
	// engine.NumPhaseBuckets is overflow.
	phaseKeys = func() *bucketKeys {
		keys := make([]string, engine.NumPhaseBuckets+1)
		for i, ub := range engine.PhaseBucketsUS {
			keys[i] = phaseBound(ub)
		}
		keys[engine.NumPhaseBuckets] = "+Inf"
		return makeKeyTable(keys)
	}()

	// phaseRenderOrder lists the engine phases by lexically sorted
	// name — the order encoding/json emits map keys.
	phaseRenderOrder = func() []engine.Phase {
		ps := make([]engine.Phase, engine.NumPhases)
		for i := range ps {
			ps[i] = engine.Phase(i)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Name() < ps[j].Name() })
		return ps
	}()
)

// keysFor maps a bounds slice to its precomputed key table.
func keysFor(bounds []float64) *bucketKeys {
	switch {
	case len(bounds) == len(latencyBuckets) && &bounds[0] == &latencyBuckets[0]:
		return latencyKeys
	case len(bounds) == len(iterationBuckets) && &bounds[0] == &iterationBuckets[0]:
		return iterationKeys
	}
	return makeBucketKeys(bounds)
}

// jsonUint writes an unsigned integer.
func jsonUint(buf *bytes.Buffer, v uint64) {
	var tmp [20]byte
	buf.Write(strconv.AppendUint(tmp[:0], v, 10))
}

// jsonIntVal writes a signed integer.
func jsonIntVal(buf *bytes.Buffer, v int) {
	var tmp [20]byte
	buf.Write(strconv.AppendInt(tmp[:0], int64(v), 10))
}

// jsonFloat writes a float the way encoding/json does: shortest 'f'
// form, switching to 'e' (with the two-digit exponent's leading zero
// trimmed) only for very large or very small magnitudes.
func jsonFloat(buf *bytes.Buffer, v float64) {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	var tmp [32]byte
	b := strconv.AppendFloat(tmp[:0], v, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	buf.Write(b)
}

// render writes one histogram as its histogramSnapshot JSON.
func (h *histogram) render(buf *bytes.Buffer) {
	buf.WriteString(`{"count":`)
	jsonUint(buf, h.count)
	buf.WriteString(`,"sum_ms":`)
	jsonFloat(buf, h.sumMS)
	buf.WriteString(`,"mean_ms":`)
	mean := 0.0
	if h.count > 0 {
		mean = h.sumMS / float64(h.count)
	}
	jsonFloat(buf, mean)
	buf.WriteString(`,"max_ms":`)
	jsonFloat(buf, h.maxMS)
	buf.WriteString(`,"buckets":{`)
	var cum [32]uint64
	c := uint64(0)
	for i, v := range h.counts {
		c += v
		cum[i] = c
	}
	bk := keysFor(h.bounds)
	for i, key := range bk.keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(key)
		buf.WriteString(`":`)
		jsonUint(buf, cum[bk.idx[i]])
	}
	buf.WriteString("}}")
}

// renderPhaseHist writes one engine phase histogram as its
// cluster.PhaseSnapshot JSON.
func renderPhaseHist(buf *bytes.Buffer, h *engine.PhaseHist) {
	buf.WriteString(`{"count":`)
	jsonUint(buf, h.Count)
	buf.WriteString(`,"mean_us":`)
	jsonFloat(buf, h.MeanUS())
	buf.WriteString(`,"max_us":`)
	jsonFloat(buf, h.MaxUS)
	buf.WriteString(`,"buckets":{`)
	var cum [engine.NumPhaseBuckets + 1]uint64
	c := uint64(0)
	for i := range cum {
		c += h.Buckets[i]
		cum[i] = c
	}
	for i, key := range phaseKeys.keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(key)
		buf.WriteString(`":`)
		jsonUint(buf, cum[phaseKeys.idx[i]])
	}
	buf.WriteString("}}")
}

// render writes the full /metrics document (sans trailing newline).
// The out-of-band gauges (session pools, operators, open sequences,
// marshaled cluster block) are collected by the caller before taking
// m.mu, so no two locks are ever held together. Route and method
// names are a fixed safe vocabulary, written unescaped.
func (m *metrics) render(buf *bytes.Buffer, pools poolStats, ops operatorGauges, seqOpen int, clusterBlob []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()

	buf.WriteString(`{"uptime_s":`)
	jsonFloat(buf, time.Since(m.start).Seconds())

	buf.WriteString(`,"requests":{`)
	keys := m.keyScratch[:0]
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(k)
		buf.WriteString(`":`)
		jsonUint(buf, m.requests[k])
	}

	buf.WriteString(`},"statuses":{`)
	ints := m.intScratch[:0]
	for k := range m.statuses {
		ints = append(ints, k)
	}
	sort.Ints(ints)
	for i, k := range ints {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		jsonIntVal(buf, k)
		buf.WriteString(`":`)
		jsonUint(buf, m.statuses[k])
	}
	m.intScratch = ints[:0]

	buf.WriteString(`},"queue_rejects":`)
	jsonUint(buf, m.queueRejects)

	buf.WriteString(`,"solve_latency_ms":{`)
	keys = keys[:0]
	for k := range m.latency {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(k)
		buf.WriteString(`":`)
		m.latency[k].render(buf)
	}
	buf.WriteByte('}')

	if len(m.solvePhases) > 0 {
		buf.WriteString(`,"solve_phase_latency_us":{`)
		keys = keys[:0]
		for k := range m.solvePhases {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteByte('"')
			buf.WriteString(k)
			buf.WriteString(`":{`)
			ps := m.solvePhases[k]
			for j, p := range phaseRenderOrder {
				if j > 0 {
					buf.WriteByte(',')
				}
				buf.WriteByte('"')
				buf.WriteString(p.Name())
				buf.WriteString(`":`)
				renderPhaseHist(buf, &ps[p])
			}
			buf.WriteByte('}')
		}
		buf.WriteByte('}')
	}

	buf.WriteString(`,"session_pools":{"pools":`)
	jsonIntVal(buf, pools.Pools)
	buf.WriteString(`,"sessions":`)
	jsonIntVal(buf, pools.Sessions)
	buf.WriteString(`,"idle":`)
	jsonIntVal(buf, pools.Idle)
	buf.WriteString(`,"hits":`)
	jsonUint(buf, pools.Hits)
	buf.WriteString(`,"misses":`)
	jsonUint(buf, pools.Misses)
	buf.WriteString(`,"hit_rate":`)
	jsonFloat(buf, pools.HitRate)

	buf.WriteString(`},"operators":{"count":`)
	jsonIntVal(buf, ops.Count)
	buf.WriteString(`,"capacity":`)
	jsonIntVal(buf, ops.Capacity)
	buf.WriteByte('}')

	if m.seqCreated > 0 || len(m.seqSteps) > 0 {
		buf.WriteString(`,"sequences":{"created":`)
		jsonUint(buf, m.seqCreated)
		buf.WriteString(`,"reused":`)
		jsonUint(buf, m.seqReused)
		buf.WriteString(`,"closed":`)
		jsonUint(buf, m.seqClosed)
		buf.WriteString(`,"open":`)
		jsonIntVal(buf, seqOpen)
		buf.WriteString(`,"step_iterations":{`)
		keys = keys[:0]
		for k := range m.seqSteps {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteByte('"')
			buf.WriteString(k)
			buf.WriteString(`":`)
			m.seqSteps[k].render(buf)
		}
		buf.WriteString("}}")
	}

	if clusterBlob != nil {
		buf.WriteString(`,"cluster":`)
		buf.Write(clusterBlob)
	}
	buf.WriteByte('}')
	m.keyScratch = keys[:0]
}
