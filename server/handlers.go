package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vrcg/solve"
	"vrcg/sparse"
)

// jsonBufs pools response-encoding buffers: one Write per response
// instead of the encoder's chunked writes, and the buffer's growth is
// amortized across requests.
var jsonBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := jsonBufs.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(body); err != nil {
		buf.Reset()
		buf.WriteString(`{"code":"internal","error":"response encoding failed"}` + "\n")
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes()) // the client went away; nothing to do
	jsonBufs.Put(buf)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, ErrorResponse{Code: code, Error: detail})
}

// decodeBody decodes a JSON request body, answering the request itself
// on failure (400 for malformed JSON, 413 past the body limit).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// handleOperatorUpload is POST /v1/operators: decode, validate, store,
// and pre-partition the matrix for the engine pool so the first solve
// against it pays no setup.
func (s *Server) handleOperatorUpload(w http.ResponseWriter, r *http.Request) {
	var req OperatorUpload
	if !decodeBody(w, r, &req) {
		return
	}
	m, err := req.Matrix.DecodeGeneralLimited(s.cfg.MaxOrder)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	prewarmPartition(m, s.cfg.EnginePool)
	entry, evicted, err := s.store.put(req.Name, m)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	for _, e := range evicted {
		s.pools.dropOperator(e)
	}
	writeJSON(w, http.StatusCreated, entry.info)
}

// prewarmPartition precomputes the nnz-balanced row partition for the
// engine pool on operators that cache one, so the first pooled SpMV
// against a fresh upload does no partitioning work.
func prewarmPartition(m sparse.Matrix, p *sparse.Pool) {
	if p == nil || p.Workers() <= 1 {
		return
	}
	if rp, ok := m.(interface{ RowPartition(int) []int }); ok {
		rp.RowPartition(p.Workers())
	}
}

// handleOperatorList is GET /v1/operators.
func (s *Server) handleOperatorList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, OperatorList{
		Operators: s.store.list(),
		Capacity:  s.cfg.MaxOperators,
	})
}

// solveSetup is the shared front half of the solve endpoints: validate
// the request shape, pin the operator, and locate the session pool.
// On failure the response has been written and op is nil.
func (s *Server) solveSetup(w http.ResponseWriter, operator, method string, params *solve.Params, precondName string, rhsLens ...int) (op *storedOperator, pool *solve.SessionPool) {
	if method == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing method")
		return nil, nil
	}
	if err := params.Validate(); err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return nil, nil
	}
	op, err := s.store.acquire(operator)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return nil, nil
	}
	if err := checkMethodShape(method, op); err != nil {
		s.store.release(op)
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return nil, nil
	}
	for i, n := range rhsLens {
		if n != op.info.Rows {
			s.store.release(op)
			writeError(w, http.StatusBadRequest, codeDimMismatch,
				fmt.Sprintf("rhs %d has length %d but operator %q has %d rows",
					i, n, op.info.ID, op.info.Rows))
			return nil, nil
		}
	}
	pool, err = s.pools.get(op, method, precondName, params)
	if err != nil {
		s.store.release(op)
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return nil, nil
	}
	return op, pool
}

// checkMethodShape rejects operator shapes the method cannot run on,
// keyed off the registry's capability flags. Rectangular operators need
// a least-squares method; everything square stays permissive (symmetry
// is the client's claim to make, as before). Unknown methods pass —
// pool construction reports ErrUnknownMethod with the better message.
func checkMethodShape(method string, op *storedOperator) error {
	if op.info.Rows == op.info.Cols {
		return nil
	}
	if !solve.MethodCaps(method).Rectangular {
		return fmt.Errorf("server: method %q requires a square operator but %q is %dx%d: %w",
			method, op.info.ID, op.info.Rows, op.info.Cols, solve.ErrUnsupportedOperator)
	}
	return nil
}

// handleSolve is POST /v1/solve: one right-hand side through a warm
// pooled session. The binary content type selects the framed
// transport (binary.go); JSON stays the default.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleSolveBin(w, r)
		return
	}
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing rhs")
		return
	}
	op, pool := s.solveSetup(w, req.Operator, req.Method, req.Params, req.Precond, len(req.RHS))
	if op == nil {
		return
	}
	defer s.store.release(op)

	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	defer release()

	ps, err := pool.Acquire(ctx)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	start := time.Now()
	res, err := ps.Solve(req.RHS)
	s.met.observeSolve(req.Method, time.Since(start))
	if res != nil {
		s.met.observeSolvePhases(req.Method, res.Phases)
	}
	wres := wireResult(res, err)
	ps.Release()

	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, wres)
	case errors.Is(err, solve.ErrNotConverged):
		// The partial result is usable; ship it under the 422 status.
		writeJSON(w, http.StatusUnprocessableEntity, wres)
	default:
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
	}
}

// lenScratch pools the per-batch rhs-length slices.
var lenScratch = sync.Pool{New: func() any { s := make([]int, 0, 64); return &s }}

// batchScratch pools the decoded batch request across requests:
// encoding/json reuses slice capacity when decoding into non-nil
// slices, so a warm scratch decodes a 64-column batch without
// reallocating the outer slice or any column. Every field is reset
// before decoding — absent JSON fields leave Go values untouched, and
// stale ones must not leak between requests.
type batchScratch struct {
	req    BatchRequest
	params solve.Params
}

var batchScratches = sync.Pool{New: func() any { return new(batchScratch) }}

// handleBatch is POST /v1/solve/batch: many right-hand sides fanned out
// through solve.Batch from a pooled base session. The binary content
// type selects the framed transport (binary.go).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinary(r) {
		s.handleBatchBin(w, r)
		return
	}
	sc := batchScratches.Get().(*batchScratch)
	defer batchScratches.Put(sc)
	sc.params = solve.Params{}
	req := &sc.req
	*req = BatchRequest{RHS: req.RHS[:0], Params: &sc.params}
	if !decodeBody(w, r, req) {
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing rhs")
		return
	}
	lensp := lenScratch.Get().(*[]int)
	defer lenScratch.Put(lensp)
	lens := (*lensp)[:0]
	for _, b := range req.RHS {
		lens = append(lens, len(b))
	}
	*lensp = lens[:0]
	op, pool := s.solveSetup(w, req.Operator, req.Method, req.Params, req.Precond, lens...)
	if op == nil {
		return
	}
	defer s.store.release(op)

	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.acquireSlot(ctx, w)
	if !ok {
		return
	}
	defer release()

	ps, err := pool.Acquire(ctx)
	if err != nil {
		status, code := errorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	// A batch fans out internally, so its workers must come out of the
	// same run-slot budget as everything else: the admission slot
	// already held counts as one worker, and additional slots are
	// taken only if free right now. Aggregate solver concurrency
	// across all requests — single and batch — therefore never
	// exceeds MaxConcurrent; a saturated server degrades a batch to
	// one worker instead of oversubscribing.
	bw := 0
	if req.Params != nil {
		bw = req.Params.BatchWorkers
	}
	extra := s.widenBatch(bw, len(req.RHS))
	start := time.Now()
	results, err := ps.SolveMany(req.RHS, solve.WithBatchWorkers(1+extra))
	for ; extra > 0; extra-- {
		<-s.run
	}
	// Batches get their own histogram key: one observation spans the
	// whole fan-out, a different timescale than single solves.
	s.met.observeSolve(req.Method+"/batch", time.Since(start))
	ps.Release()

	// Batch results own their storage (Batch clones X/History out of
	// the worker workspaces), so the response can share their slices.
	resp := BatchResponse{Results: make([]WireResult, len(results))}
	for i := range results {
		resp.Results[i] = wireResultView(&results[i], nil)
	}
	status := http.StatusOK
	if err != nil {
		// Attribute each failure to its right-hand side: Batch joins
		// *solve.RHSError values carrying the index.
		for _, e := range joinedErrors(err) {
			var re *solve.RHSError
			if errors.As(e, &re) && re.Index >= 0 && re.Index < len(resp.Results) {
				_, resp.Results[re.Index].Error = errorStatus(re.Err)
			}
		}
		var code string
		status, code = errorStatus(err)
		resp.Error = code
		// Partial results are still worth shipping for the solver-level
		// failures; protocol-level ones get the plain error body.
		if status != http.StatusUnprocessableEntity {
			writeError(w, status, code, err.Error())
			return
		}
	}
	writeJSON(w, status, resp)
}

// joinedErrors flattens an errors.Join result (one level is all Batch
// produces); a non-joined error comes back as itself.
func joinedErrors(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// handleMethods is GET /v1/methods: the registry summary.
func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	names := solve.Methods()
	out := MethodList{Methods: make([]MethodInfo, len(names))}
	for i, name := range names {
		caps := solve.MethodCaps(name)
		out.Methods[i] = MethodInfo{
			Name:         name,
			Summary:      solve.Summary(name),
			Nonsymmetric: caps.Nonsymmetric,
			Rectangular:  caps.Rectangular,
			Block:        caps.Block,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:  "ok",
		UptimeS: time.Since(s.met.start).Seconds(),
	})
}

// handleMetrics is GET /metrics, rendered by hand into a pooled
// buffer (see metrics.go): dashboards poll it continuously, and the
// reflective encoder burned ~100 allocations per scrape on snapshot
// maps alone. The rare cluster block still goes through encoding/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pools := s.pools.stats()
	ops := operatorGauges{Count: s.store.len(), Capacity: s.cfg.MaxOperators}
	var clusterBlob []byte
	if c := s.cfg.Cluster; c != nil {
		cs := c.Metrics()
		clusterBlob, _ = json.Marshal(cs)
	}
	buf := jsonBufs.Get().(*bytes.Buffer)
	buf.Reset()
	s.met.render(buf, pools, ops, s.seqs.count(), clusterBlob)
	buf.WriteByte('\n') // parity with the Encoder-based responses
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
	jsonBufs.Put(buf)
}
