package block

import (
	"encoding/binary"
	"math"
	"testing"

	"vrcg/internal/engine"
)

// FuzzBlockPanel drives the pivoted-Cholesky factor/solveBasic pair —
// the numerical core every block iteration trusts — over arbitrary
// symmetric panels. Each input exercises two panels:
//
//  1. a raw panel straight from the fuzz bytes (indefinite,
//     rank-deficient, NaN/Inf contaminated — whatever the bytes say):
//     the contract is no panic, rank in [0, s], and a negative leading
//     pivot classified as ErrIndefinite;
//  2. a derived SPD panel G = L L^T + I built from the same bytes:
//     factor must report full rank and solveBasic(Λ, G) must reproduce
//     the identity to factorization accuracy — the strict correctness
//     property, checked on every input.
func FuzzBlockPanel(f *testing.F) {
	// Diagonally dominant SPD-ish bytes.
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	// All-zero: the duplicate-column rank-deficient shape deflation sees
	// when two right-hand sides converge along the same direction.
	f.Add(uint8(4), []byte{0, 0, 0, 0})
	// Sign-bit heavy: indefinite panels.
	f.Add(uint8(2), []byte{0xff, 0x80, 0x01})

	f.Fuzz(func(t *testing.T, width uint8, data []byte) {
		s := int(width)%8 + 1
		kn := NewCGKernel()
		kn.size(s)

		at := func(i int) float64 {
			if len(data) == 0 {
				return 0
			}
			var chunk [8]byte
			for k := range chunk {
				chunk[k] = data[(i*8+k)%len(data)]
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
		}

		// Panel 1: raw symmetric bytes.
		S := make([]float64, s*s)
		for i := 0; i < s; i++ {
			for j := 0; j <= i; j++ {
				v := at(i*s + j)
				S[i*s+j] = v
				S[j*s+i] = v
			}
		}
		rank, err := kn.factor(S, s)
		if err != nil && err != engine.ErrIndefinite {
			t.Fatalf("factor error %v, want ErrIndefinite", err)
		}
		if err == nil && (rank < 0 || rank > s) {
			t.Fatalf("rank %d out of [0, %d]", rank, s)
		}

		// Panel 2: G = L L^T + I with bounded entries derived from the
		// same bytes — symmetric positive definite by construction, with
		// condition number bounded by the entry clamp.
		L := make([]float64, s*s)
		for i := 0; i < s; i++ {
			for j := 0; j <= i; j++ {
				v := at(s*s + i*s + j)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				// Clamp into [-1, 1] without losing fuzz-driven variety.
				v = math.Remainder(v, 2)
				if math.IsNaN(v) {
					v = 0
				}
				L[i*s+j] = v
			}
		}
		G := make([]float64, s*s)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				sum := 0.0
				for k := 0; k <= min(i, j); k++ {
					sum += L[i*s+k] * L[j*s+k]
				}
				G[i*s+j] = sum
				if i == j {
					G[i*s+j] += 1
				}
			}
		}
		rank, err = kn.factor(G, s)
		if err != nil {
			t.Fatalf("SPD panel: factor error %v", err)
		}
		if rank != s {
			t.Fatalf("SPD panel: rank %d, want full %d", rank, s)
		}
		lam := make([]float64, s*s)
		kn.solveBasic(lam, G, s, rank)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := math.Abs(lam[i*s+j] - want); d > 1e-8*float64(s) {
					t.Fatalf("G Λ = G solve: Λ[%d,%d] = %g, want %g (|diff| %g)",
						i, j, lam[i*s+j], want, d)
				}
			}
		}
	})
}
