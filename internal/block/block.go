// Package block implements block conjugate gradient methods — blockcg
// and blockpcg — on the engine kernel contract. A block method iterates
// s right-hand sides of one operator simultaneously (O'Leary 1980):
// every iteration performs ONE multi-vector SpMV row pass for all s
// columns and fuses the s×s inner products into a single block Gram
// reduction, the multi-RHS twin of the paper's s-step restructuring —
// many synchronization points collapse into one per iteration
// regardless of how many systems are in flight.
//
// The kernel deflates converged columns from the active block each
// iteration and survives rank-deficient block Gram matrices (duplicate
// or linearly dependent right-hand sides) by solving the small systems
// with a diagonally-pivoted Cholesky factorization and basic solutions:
// dependent directions receive zero coefficients instead of breaking
// the iteration.
//
// Like every engine kernel, all vectors come from the workspace arena
// and all small-block scratch is cached on the kernel keyed by block
// width, so warm repeated solves of the same shape allocate nothing.
package block

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// Kernel is the block CG / block PCG iteration. The driver's Run.B is
// column 0 of the right-hand-side block; SetExtraRHS supplies columns
// 1..s-1 before the solve. With no extra columns the iteration
// degenerates to standard (P)CG on one vector.
type Kernel struct {
	label  string
	withM  bool // blockpcg: apply Config.Precond (identity when nil)
	extras []vec.Vector

	s  int          // block width of the current solve
	bs []vec.Vector // rhs columns (bs[0] aliases Run.B)

	// Column families; z aliases r for blockcg (M = I, no copy).
	x, r, p, q, z []vec.Vector
	// Active views, rebuilt from act each step.
	xa, ra, pa, qa, za []vec.Vector

	act  []int // indices of unconverged columns
	keep []int // positions within act retained after deflation

	bn, rn, truern []float64
	conv           []bool
	iters          []int

	// s×s block scratch, row-major.
	srz, srzNew, spq, lam, neg, beta, fac []float64
	perm                                  []int
	ysol                                  []float64

	m     precond.Preconditioner
	ident *precond.Identity
}

// NewCGKernel returns the blockcg iteration kernel.
func NewCGKernel() *Kernel { return &Kernel{label: "blockcg"} }

// NewPCGKernel returns the blockpcg iteration kernel.
func NewPCGKernel() *Kernel { return &Kernel{label: "blockpcg", withM: true} }

// Name implements engine.Kernel.
func (kn *Kernel) Name() string { return kn.label }

// SetExtraRHS supplies right-hand-side columns 1..s-1 for the next
// solve (column 0 is the driver's b). The slice is consumed by Init, so
// a later solve without a fresh SetExtraRHS runs single-RHS. Columns
// are read, never modified, and must stay valid through the solve.
func (kn *Kernel) SetExtraRHS(cols []vec.Vector) {
	kn.extras = cols
}

// Width returns the block width s of the last solve.
func (kn *Kernel) Width() int { return kn.s }

// ColumnX returns the solution column j of the last solve. Like
// Result.X it aliases workspace storage: valid only until the next
// solve on the same workspace.
func (kn *Kernel) ColumnX(j int) vec.Vector { return kn.x[j] }

// ColumnIterations returns the iteration at which column j converged
// (or the total iteration count if it did not).
func (kn *Kernel) ColumnIterations(j int) int { return kn.iters[j] }

// ColumnConverged reports whether column j met its own relative
// tolerance ||r_j|| <= tol*||b_j||.
func (kn *Kernel) ColumnConverged(j int) bool { return kn.conv[j] }

// ColumnResidual returns column j's final recursive residual norm.
func (kn *Kernel) ColumnResidual(j int) float64 { return kn.rn[j] }

// ColumnTrueResidual returns ||b_j - A x_j|| computed at exit.
func (kn *Kernel) ColumnTrueResidual(j int) float64 { return kn.truern[j] }

// size rebuilds the width-keyed scratch when the block width changes.
func (kn *Kernel) size(s int) {
	if kn.s == s {
		return
	}
	kn.s = s
	kn.bs = make([]vec.Vector, s)
	kn.x = make([]vec.Vector, s)
	kn.r = make([]vec.Vector, s)
	kn.p = make([]vec.Vector, s)
	kn.q = make([]vec.Vector, s)
	kn.z = make([]vec.Vector, s)
	kn.xa = make([]vec.Vector, 0, s)
	kn.ra = make([]vec.Vector, 0, s)
	kn.pa = make([]vec.Vector, 0, s)
	kn.qa = make([]vec.Vector, 0, s)
	kn.za = make([]vec.Vector, 0, s)
	kn.act = make([]int, 0, s)
	kn.keep = make([]int, 0, s)
	kn.bn = make([]float64, s)
	kn.rn = make([]float64, s)
	kn.truern = make([]float64, s)
	kn.conv = make([]bool, s)
	kn.iters = make([]int, s)
	kn.srz = make([]float64, s*s)
	kn.srzNew = make([]float64, s*s)
	kn.spq = make([]float64, s*s)
	kn.lam = make([]float64, s*s)
	kn.neg = make([]float64, s*s)
	kn.beta = make([]float64, s*s)
	kn.fac = make([]float64, s*s)
	kn.perm = make([]int, s)
	kn.ysol = make([]float64, s)
}

// views rebuilds the active-column views from act.
func (kn *Kernel) views() {
	kn.xa, kn.ra, kn.pa, kn.qa, kn.za = kn.xa[:0], kn.ra[:0], kn.pa[:0], kn.qa[:0], kn.za[:0]
	for _, j := range kn.act {
		kn.xa = append(kn.xa, kn.x[j])
		kn.ra = append(kn.ra, kn.r[j])
		kn.pa = append(kn.pa, kn.p[j])
		kn.qa = append(kn.qa, kn.q[j])
		kn.za = append(kn.za, kn.z[j])
	}
}

// scaledResidual maps the per-column relative criteria onto the
// driver's single absolute threshold Tol*||b_0||: the maximum of
// rn_j * ||b_0||/||b_j|| is <= Tol*||b_0|| exactly when every column
// meets its own Tol*||b_j||.
func (kn *Kernel) scaledResidual() float64 {
	max := 0.0
	for j := 0; j < kn.s; j++ {
		if v := kn.rn[j] * kn.bn[0] / kn.bn[j]; v > max || math.IsNaN(v) {
			max = v
		}
	}
	return max
}

// Init implements engine.Kernel: it binds the rhs block, forms the
// initial residuals with one multi-vector product, and seeds P = Z.
func (kn *Kernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()

	extras := kn.extras
	kn.extras = nil // consumed: the next solve defaults back to s = 1
	for i, c := range extras {
		if len(c) != len(run.B) {
			return 0, fmt.Errorf("block: extra rhs %d has length %d, want %d: %w",
				i, len(c), len(run.B), sparse.ErrDim)
		}
	}
	s := 1 + len(extras)
	kn.size(s)
	kn.bs[0] = run.B
	copy(kn.bs[1:], extras)

	if kn.withM {
		kn.m = run.Cfg.Precond
		if kn.m == nil {
			if kn.ident == nil || kn.ident.Dim() != n {
				kn.ident = precond.NewIdentity(n)
			}
			kn.m = kn.ident
		}
		if kn.m.Dim() != n {
			return 0, fmt.Errorf("block: preconditioner order %d for matrix order %d: %w",
				kn.m.Dim(), n, sparse.ErrDim)
		}
	} else {
		kn.m = nil
	}

	// Arena layout: slot*s+j. Same (s, workspace) → same storage, so
	// warm solves allocate nothing.
	zSlots := 0
	if kn.withM {
		zSlots = 1
	}
	for j := 0; j < s; j++ {
		kn.x[j] = ws.Vec(0*s + j)
		kn.r[j] = ws.Vec(1*s + j)
		kn.p[j] = ws.Vec(2*s + j)
		kn.q[j] = ws.Vec(3*s + j)
		if zSlots > 0 {
			kn.z[j] = ws.Vec(4*s + j)
		} else {
			kn.z[j] = kn.r[j] // blockcg: z aliases r
		}
	}
	run.Res.X = kn.x[0]

	for j := 0; j < s; j++ {
		if run.Cfg.X0 != nil {
			vec.Copy(kn.x[j], run.Cfg.X0)
		} else {
			vec.Zero(kn.x[j])
		}
		kn.bn[j] = vec.Norm2(kn.bs[j])
		if kn.bn[j] == 0 {
			kn.bn[j] = 1
		}
		kn.conv[j] = false
		kn.iters[j] = 0
		kn.truern[j] = 0
	}

	// R = B - A X in one multi-vector pass.
	kn.act = kn.act[:0]
	for j := 0; j < s; j++ {
		kn.act = append(kn.act, j)
	}
	kn.views()
	ws.MatVecs(run.A, kn.ra, kn.xa)
	run.Res.Stats.MatVecs += s
	run.Res.Stats.Flops += int64(s) * engine.MatVecFlops(run.A)
	for j := 0; j < s; j++ {
		vec.Sub(kn.r[j], kn.bs[j], kn.r[j])
		kn.rn[j] = vec.Norm2(kn.r[j])
	}
	run.Res.Stats.InnerProducts += s
	run.Res.Stats.Flops += 2 * int64(s) * int64(n)

	if kn.withM {
		for j := 0; j < s; j++ {
			ws.ApplyPrecond(kn.m, kn.z[j], kn.r[j])
		}
		run.Res.Stats.PrecondSolves += s
	}
	for j := 0; j < s; j++ {
		vec.Copy(kn.p[j], kn.z[j])
	}

	// Deflate columns already at tolerance (zero rhs, lucky X0).
	kn.deflate(run, true)
	na := len(kn.act)
	if na > 0 {
		ws.DotBlock(kn.za, kn.ra, kn.srz[:na*na])
		run.Res.Stats.InnerProducts += na * na
		run.Res.Stats.Flops += 2 * int64(na*na) * int64(n)
	}
	return kn.scaledResidual(), nil
}

// Residual implements engine.Kernel.
func (kn *Kernel) Residual(*engine.Run) float64 { return kn.scaledResidual() }

// deflate retires columns that met their own tolerance, recording their
// iteration counts, and compacts the saved Z'R Gram onto the surviving
// active set when asked (the Gram rows/columns are indexed by active
// position, so removal must compress it).
func (kn *Kernel) deflate(run *engine.Run, initOnly bool) {
	na := len(kn.act)
	kn.keep = kn.keep[:0]
	for pos, j := range kn.act {
		if kn.rn[j] <= run.Cfg.Tol*kn.bn[j] {
			kn.conv[j] = true
			kn.iters[j] = run.Res.Iterations
			continue
		}
		kn.keep = append(kn.keep, pos)
	}
	if len(kn.keep) == na {
		return
	}
	if !initOnly {
		// Compact srzNew (na×na over the old active set) into srz over
		// the survivors.
		nk := len(kn.keep)
		for a, pi := range kn.keep {
			for b, pj := range kn.keep {
				kn.srz[a*nk+b] = kn.srzNew[pi*na+pj]
			}
		}
	}
	newAct := kn.act[:0]
	for _, pos := range kn.keep {
		newAct = append(newAct, kn.act[pos])
	}
	kn.act = newAct
	kn.views()
}

// Step implements engine.Kernel: one block iteration advancing every
// active column — one multi-vector SpMV, two block Gram reductions, and
// three block axpy sweeps, with one Tick.
func (kn *Kernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())
	na := len(kn.act)
	if na == 0 {
		run.Stop()
		return nil
	}

	// Q = A P in one row pass over all active columns.
	ws.MatVecs(run.A, kn.qa, kn.pa)
	res.Stats.MatVecs += na
	res.Stats.Flops += int64(na) * engine.MatVecFlops(run.A)

	// Spq = PᵀQ: the s×s curvature Gram, one fused reduction.
	spq := kn.spq[:na*na]
	ws.DotBlock(kn.pa, kn.qa, spq)
	res.Stats.InnerProducts += na * na
	res.Stats.Flops += 2 * int64(na*na) * n

	rank, err := kn.factor(spq, na)
	if err != nil {
		return fmt.Errorf("block: block curvature not positive at iteration %d: %w",
			res.Iterations, err)
	}
	if rank == 0 {
		return fmt.Errorf("block: block Gram wholly rank-deficient at iteration %d: %w",
			res.Iterations, engine.ErrBreakdown)
	}
	// Λ = Spq⁻¹ (ZᵀR); rank-deficient directions get zero coefficients
	// (basic solution), which is exact for consistent (duplicate-RHS)
	// systems.
	lam := kn.lam[:na*na]
	kn.solveBasic(lam, kn.srz[:na*na], na, rank)

	// X += P Λ, R -= Q Λ.
	ws.AxpyBlock(lam, kn.pa, kn.xa)
	neg := kn.neg[:na*na]
	for i, v := range lam {
		neg[i] = -v
	}
	ws.AxpyBlock(neg, kn.qa, kn.ra)
	res.Stats.VectorUpdates += 2 * na
	res.Stats.Flops += 4 * int64(na*na) * n

	for _, j := range kn.act {
		kn.rn[j] = vec.Norm2(kn.r[j])
		if math.IsNaN(kn.rn[j]) || math.IsInf(kn.rn[j], 0) {
			return fmt.Errorf("block: non-finite residual in column %d at iteration %d: %w",
				j, res.Iterations, engine.ErrBreakdown)
		}
	}
	res.Stats.InnerProducts += na
	res.Stats.Flops += 2 * int64(na) * n

	if kn.withM {
		for _, j := range kn.act {
			ws.ApplyPrecond(kn.m, kn.z[j], kn.r[j])
		}
		res.Stats.PrecondSolves += na
	}

	// Srz' = ZᵀR and β = Srz⁻¹ Srz' (Hestenes–Stiefel block form).
	srzNew := kn.srzNew[:na*na]
	ws.DotBlock(kn.za, kn.ra, srzNew)
	res.Stats.InnerProducts += na * na
	res.Stats.Flops += 2 * int64(na*na) * n

	rank, err = kn.factor(kn.srz[:na*na], na)
	if err != nil || rank == 0 {
		if err == nil {
			err = engine.ErrBreakdown
		}
		return fmt.Errorf("block: (Z,R) Gram degenerate at iteration %d: %w", res.Iterations, err)
	}
	beta := kn.beta[:na*na]
	kn.solveBasic(beta, srzNew, na, rank)

	// P' = Z + P β, built in Q (dead until the next SpMV) to avoid
	// aliasing the P columns still being read, then swapped in.
	for _, j := range kn.act {
		vec.Copy(kn.q[j], kn.z[j])
	}
	ws.AxpyBlock(beta, kn.pa, kn.qa)
	for _, j := range kn.act {
		kn.p[j], kn.q[j] = kn.q[j], kn.p[j]
	}
	kn.views()
	res.Stats.VectorUpdates += na
	res.Stats.Flops += 2 * int64(na*na) * n

	copy(kn.srz[:na*na], srzNew)
	run.Tick(kn.scaledResidual())
	kn.deflate(run, false)
	return nil
}

// Finish implements engine.Kernel: per-column true residuals via one
// multi-vector product, and final bookkeeping for columns that ran to
// the iteration cap.
func (kn *Kernel) Finish(run *engine.Run) {
	ws, res := run.Ws, run.Res
	s := kn.s
	for j := 0; j < s; j++ {
		if !kn.conv[j] {
			kn.iters[j] = res.Iterations
		}
	}
	// Q is dead after the loop: reuse all s columns as scratch.
	all := kn.qa[:0]
	xall := kn.xa[:0]
	for j := 0; j < s; j++ {
		all = append(all, kn.q[j])
		xall = append(xall, kn.x[j])
	}
	ws.MatVecs(run.A, all, xall)
	res.Stats.MatVecs += s
	res.Stats.Flops += int64(s) * engine.MatVecFlops(run.A)
	max := 0.0
	for j := 0; j < s; j++ {
		vec.Sub(kn.q[j], kn.bs[j], kn.q[j])
		kn.truern[j] = vec.Norm2(kn.q[j])
		if v := kn.truern[j] * kn.bn[0] / kn.bn[j]; v > max {
			max = v
		}
	}
	res.TrueResidualNorm = max
}

// factor computes a diagonally-pivoted Cholesky factorization of the
// symmetric na×na matrix S into kn.fac/kn.perm, returning its numerical
// rank. A negative leading pivot — the most positive diagonal entry is
// negative — means the block curvature is negative: engine.ErrIndefinite.
func (kn *Kernel) factor(S []float64, na int) (int, error) {
	fac := kn.fac[:na*na]
	copy(fac, S)
	perm := kn.perm[:na]
	for i := range perm {
		perm[i] = i
	}
	maxDiag := 0.0
	for i := 0; i < na; i++ {
		if d := fac[i*na+i]; d > maxDiag {
			maxDiag = d
		}
	}
	tol := float64(na) * 1e-14 * maxDiag
	for k := 0; k < na; k++ {
		pm, pd := k, fac[k*na+k]
		for i := k + 1; i < na; i++ {
			if d := fac[i*na+i]; d > pd {
				pm, pd = i, d
			}
		}
		if k == 0 && pd < 0 {
			return 0, engine.ErrIndefinite
		}
		if pd <= tol || pd <= 0 {
			return k, nil
		}
		if pm != k {
			for c := 0; c < na; c++ {
				fac[k*na+c], fac[pm*na+c] = fac[pm*na+c], fac[k*na+c]
			}
			for r := 0; r < na; r++ {
				fac[r*na+k], fac[r*na+pm] = fac[r*na+pm], fac[r*na+k]
			}
			perm[k], perm[pm] = perm[pm], perm[k]
		}
		lkk := math.Sqrt(pd)
		fac[k*na+k] = lkk
		for i := k + 1; i < na; i++ {
			fac[i*na+k] /= lkk
		}
		// Full symmetric trailing update keeps later pivot swaps a plain
		// row+column exchange.
		for jj := k + 1; jj < na; jj++ {
			ljk := fac[jj*na+k]
			if ljk == 0 {
				continue
			}
			for i := k + 1; i < na; i++ {
				fac[i*na+jj] -= fac[i*na+k] * ljk
			}
		}
	}
	return na, nil
}

// solveBasic solves S Λ = C column-by-column using the factorization
// left by factor, zeroing the coefficients of non-pivot (numerically
// dependent) directions — the basic solution, exact when C's columns
// lie in the range of S.
func (kn *Kernel) solveBasic(dst, C []float64, na, rank int) {
	fac, perm, y := kn.fac, kn.perm[:na], kn.ysol[:na]
	for j := 0; j < na; j++ {
		for i := 0; i < rank; i++ {
			s := C[perm[i]*na+j]
			for k := 0; k < i; k++ {
				s -= fac[i*na+k] * y[k]
			}
			y[i] = s / fac[i*na+i]
		}
		for i := rank - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < rank; k++ {
				s -= fac[k*na+i] * y[k]
			}
			y[i] = s / fac[i*na+i]
		}
		for i := 0; i < rank; i++ {
			dst[perm[i]*na+j] = y[i]
		}
		for i := rank; i < na; i++ {
			dst[perm[i]*na+j] = 0
		}
	}
}
