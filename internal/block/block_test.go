package block

import (
	"errors"
	"math"
	"testing"

	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

func testRHS(n, s int) []vec.Vector {
	bs := make([]vec.Vector, s)
	for j := 0; j < s; j++ {
		bs[j] = vec.New(n)
		vec.Random(bs[j], uint64(7*n+j+1))
	}
	return bs
}

func blockSolve(t *testing.T, kn *Kernel, a sparse.Matrix, bs []vec.Vector, cfg engine.Config) (*engine.Result, error) {
	t.Helper()
	ws := engine.NewWorkspace(a.Dim(), cfg.Pool)
	kn.SetExtraRHS(bs[1:])
	var res engine.Result
	err := engine.Solve(kn, ws, a, bs[0], cfg, &res)
	return &res, err
}

// TestBlockCGMatchesIndependentSolves is the parity satellite: every
// block column must match the corresponding independent single-RHS
// engine solve to 1e-12 relative accuracy, and — sharing one Krylov
// space across a shared-spectrum block — converge in no more
// iterations than the slowest independent solve.
func TestBlockCGMatchesIndependentSolves(t *testing.T) {
	// Well-conditioned so a 1e-13 residual tolerance pins the iterates
	// to ~1e-13 relative accuracy: the 1e-12 parity bound then compares
	// solutions, not solver noise.
	a := sparse.TridiagToeplitz(500, 4, -1)
	n := a.Dim()
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		kernel func() *Kernel
		single func() engine.Kernel
		m      precond.Preconditioner
	}{
		{"blockcg", NewCGKernel, krylov.NewCGKernel, nil},
		{"blockpcg", NewPCGKernel, krylov.NewPCGKernel, jac},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := 5
			bs := testRHS(n, s)
			cfg := engine.Config{Tol: 1e-13, Precond: tc.m}

			maxSingleIters := 0
			want := make([]vec.Vector, s)
			for j := 0; j < s; j++ {
				ws := engine.NewWorkspace(n, nil)
				var res engine.Result
				if err := engine.Solve(tc.single(), ws, a, bs[j], cfg, &res); err != nil {
					t.Fatalf("single solve %d: %v", j, err)
				}
				if !res.Converged {
					t.Fatalf("single solve %d did not converge", j)
				}
				if res.Iterations > maxSingleIters {
					maxSingleIters = res.Iterations
				}
				want[j] = vec.Clone(res.X)
			}

			kn := tc.kernel()
			res, err := blockSolve(t, kn, a, bs, cfg)
			if err != nil {
				t.Fatalf("block solve: %v", err)
			}
			if !res.Converged {
				t.Fatalf("block solve did not converge: rn=%g", res.ResidualNorm)
			}
			if res.Iterations > maxSingleIters {
				t.Errorf("block used %d iterations, independent max %d — the shared block space must not be slower",
					res.Iterations, maxSingleIters)
			}
			for j := 0; j < s; j++ {
				if !kn.ColumnConverged(j) {
					t.Fatalf("column %d not converged", j)
				}
				x := kn.ColumnX(j)
				diff := 0.0
				norm := 0.0
				for i := range x {
					d := x[i] - want[j][i]
					diff += d * d
					norm += want[j][i] * want[j][i]
				}
				if rel := math.Sqrt(diff / norm); rel > 1e-12 {
					t.Errorf("column %d relative error %.3g > 1e-12", j, rel)
				}
				if kn.ColumnTrueResidual(j) > 1e-9*vec.Norm2(bs[j]) {
					t.Errorf("column %d true residual %g too large", j, kn.ColumnTrueResidual(j))
				}
			}
		})
	}
}

// TestBlockCGDuplicateRHS: exactly duplicated right-hand sides make the
// block Gram rank-1 at the very first iteration. The pivoted-Cholesky
// basic solution must carry both columns to the identical answer rather
// than breaking down.
func TestBlockCGDuplicateRHS(t *testing.T) {
	a := sparse.Poisson2D(16)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 3)
	bs := []vec.Vector{b, vec.Clone(b), vec.Clone(b)}

	kn := NewCGKernel()
	res, err := blockSolve(t, kn, a, bs, engine.Config{Tol: 1e-10})
	if err != nil {
		t.Fatalf("duplicate-RHS block solve: %v", err)
	}
	if !res.Converged {
		t.Fatal("duplicate-RHS block solve did not converge")
	}
	x0 := kn.ColumnX(0)
	for j := 1; j < 3; j++ {
		if !vec.Equal(x0, kn.ColumnX(j)) {
			t.Errorf("duplicate column %d differs from column 0", j)
		}
	}
}

// TestBlockCGMixedConvergence: columns with wildly different scales
// deflate at different iterations, and late columns keep converging
// after early ones retire.
func TestBlockCGMixedConvergence(t *testing.T) {
	a := sparse.Poisson2D(16)
	n := a.Dim()
	bs := testRHS(n, 3)
	// Column 1 is trivially converged from the start.
	vec.Zero(bs[1])

	kn := NewCGKernel()
	res, err := blockSolve(t, kn, a, bs, engine.Config{Tol: 1e-10})
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if !res.Converged {
		t.Fatal("block solve did not converge")
	}
	if kn.ColumnIterations(1) != 0 {
		t.Errorf("zero-rhs column used %d iterations, want 0", kn.ColumnIterations(1))
	}
	for _, j := range []int{0, 2} {
		if !kn.ColumnConverged(j) || vec.Norm2(kn.ColumnX(j)) == 0 {
			t.Errorf("column %d did not converge to a nonzero solution", j)
		}
	}
}

// TestBlockCGIndefinite: a negative-definite operator trips the
// negative-curvature check with engine.ErrIndefinite.
func TestBlockCGIndefinite(t *testing.T) {
	a := sparse.TridiagToeplitz(50, -4, 1) // negative definite
	bs := testRHS(50, 2)
	_, err := blockSolve(t, NewCGKernel(), a, bs, engine.Config{Tol: 1e-10})
	if !errors.Is(err, engine.ErrIndefinite) {
		t.Fatalf("err = %v, want ErrIndefinite", err)
	}
}

// TestBlockCGBreakdown: the zero operator yields a wholly
// rank-deficient curvature Gram — engine.ErrBreakdown, not a hang or
// a panic.
func TestBlockCGBreakdown(t *testing.T) {
	coo := sparse.NewCOO(8)
	a := coo.ToCSR() // all-zero matrix
	bs := testRHS(8, 2)
	_, err := blockSolve(t, NewCGKernel(), a, bs, engine.Config{Tol: 1e-10})
	if !errors.Is(err, engine.ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
}

// TestBlockWarmZeroAlloc: a warm block solve on a reused workspace
// allocates nothing — the property the serving layer's session pools
// rely on. Runs under -race in CI.
func TestBlockWarmZeroAlloc(t *testing.T) {
	a := sparse.Poisson2D(16)
	n := a.Dim()
	s := 4
	bs := testRHS(n, s)
	extras := bs[1:]
	cfg := engine.Config{Tol: 1e-10}
	ws := engine.NewWorkspace(n, nil)
	var res engine.Result

	for _, tc := range []struct {
		name string
		kn   *Kernel
	}{
		{"blockcg", NewCGKernel()},
		{"blockpcg", NewPCGKernel()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm: size caches, arena vectors, partition.
			tc.kn.SetExtraRHS(extras)
			if err := engine.Solve(tc.kn, ws, a, bs[0], cfg, &res); err != nil {
				t.Fatalf("warmup solve: %v", err)
			}
			if avg := testing.AllocsPerRun(20, func() {
				tc.kn.SetExtraRHS(extras)
				if err := engine.Solve(tc.kn, ws, a, bs[0], cfg, &res); err != nil {
					t.Fatalf("warm solve: %v", err)
				}
			}); avg != 0 {
				t.Errorf("warm %s solve allocates %v per run, want 0", tc.kn.Name(), avg)
			}
		})
	}
}

// TestBlockSingleRHSDegenerates: with no extra columns the block kernel
// is plain (P)CG — it must converge and match CG's iterate closely.
func TestBlockSingleRHSDegenerates(t *testing.T) {
	a := sparse.Poisson2D(16)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 11)

	ws := engine.NewWorkspace(n, nil)
	var ref engine.Result
	if err := engine.Solve(krylov.NewCGKernel(), ws, a, b, engine.Config{Tol: 1e-10}, &ref); err != nil {
		t.Fatal(err)
	}
	kn := NewCGKernel()
	res, err := blockSolve(t, kn, a, []vec.Vector{b}, engine.Config{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("single-RHS block solve did not converge")
	}
	diff, norm := 0.0, 0.0
	for i := range ref.X {
		d := res.X[i] - ref.X[i]
		diff += d * d
		norm += ref.X[i] * ref.X[i]
	}
	if rel := math.Sqrt(diff / norm); rel > 1e-10 {
		t.Errorf("single-RHS block iterate differs from CG by %.3g", rel)
	}
}
