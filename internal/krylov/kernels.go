package krylov

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/precond"
)

// This file holds the engine kernels for the classic iterations: cg
// (fused-update CG, also serving the "cgfused" registry name), pcg, cr,
// and sd. Each kernel implements engine.Kernel — Init/Step/Residual/
// Finish — and draws every vector from the engine workspace arena, so a
// warm repeated solve allocates nothing. The MINRES kernel lives in
// minres.go.

// trueResidualInto computes ||b - A x|| into scratch and publishes it,
// charging the matvec — the shared exit step of every kernel here.
func trueResidualInto(r *engine.Run, scratch, x vec.Vector) {
	r.Ws.MatVec(r.A, scratch, x)
	vec.Sub(scratch, r.B, scratch)
	r.Res.Stats.MatVecs++
	r.Res.Stats.Flops += engine.MatVecFlops(r.A)
	r.Res.TrueResidualNorm = vec.Norm2(scratch)
}

// initialIterate loads X0 (or zero) into x, publishes it as Res.X, and
// forms the initial residual r = b - A x.
func initialIterate(run *engine.Run, x, r vec.Vector) {
	if run.Cfg.X0 != nil {
		vec.Copy(x, run.Cfg.X0)
	} else {
		vec.Zero(x)
	}
	run.Res.X = x
	run.Ws.MatVec(run.A, r, x)
	vec.Sub(r, run.B, r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
}

// cgKernel is standard Hestenes–Stiefel CG (paper §2) with the x/r
// updates and the (r,r) reduction fused into one memory sweep — one
// pass over memory instead of three, the sequential analogue of how the
// restructured algorithms batch elementwise work.
type cgKernel struct {
	label       string
	x, r, p, ap vec.Vector
	rr          float64
}

// NewCGKernel returns the cg iteration kernel.
func NewCGKernel() engine.Kernel { return &cgKernel{label: "cg"} }

// NewCGFusedKernel is the same fused iteration under the historical
// "cgfused" registry name.
func NewCGFusedKernel() engine.Kernel { return &cgKernel{label: "cgfused"} }

func (k *cgKernel) Name() string { return k.label }

func (k *cgKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	k.x, k.r, k.p, k.ap = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3)
	initialIterate(run, k.x, k.r)
	vec.Copy(k.p, k.r)
	k.rr = ws.Dot(k.r, k.r)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(ws.Dim())
	return math.Sqrt(k.rr), nil
}

func (k *cgKernel) Residual(*engine.Run) float64 { return math.Sqrt(k.rr) }

func (k *cgKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	ws.MatVec(run.A, k.ap, k.p)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	pap := ws.Dot(k.p, k.ap)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if pap <= 0 {
		return fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
	}
	lambda := k.rr / pap

	// The fused sweep: x += lambda p, r -= lambda ap, rr' = (r,r).
	rrNew := ws.FusedCGUpdate(lambda, k.p, k.ap, k.x, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.InnerProducts++
	res.Stats.Flops += 6 * n
	if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
		return fmt.Errorf("krylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
	}

	alpha := rrNew / k.rr
	ws.Xpay(k.r, alpha, k.p)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n

	k.rr = rrNew
	run.Tick(math.Sqrt(k.rr))
	return nil
}

func (k *cgKernel) Finish(run *engine.Run) { trueResidualInto(run, k.ap, k.x) }

// pcgKernel is preconditioned CG, iterating on the M-inner-product
// residual. A nil Config.Precond selects a kernel-cached identity (PCG
// arithmetic with M = I).
type pcgKernel struct {
	x, r, p, ap, z vec.Vector
	rr, rz         float64
	m              precond.Preconditioner
	ident          *precond.Identity
}

// NewPCGKernel returns the pcg iteration kernel.
func NewPCGKernel() engine.Kernel { return &pcgKernel{} }

func (k *pcgKernel) Name() string { return "pcg" }

func (k *pcgKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()
	k.m = run.Cfg.Precond
	if k.m == nil {
		if k.ident == nil || k.ident.Dim() != n {
			k.ident = precond.NewIdentity(n)
		}
		k.m = k.ident
	}
	if k.m.Dim() != n {
		return 0, fmt.Errorf("krylov: preconditioner order %d for matrix order %d: %w", k.m.Dim(), n, ErrDim)
	}
	k.x, k.r, k.p, k.ap, k.z = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3), ws.Vec(4)
	initialIterate(run, k.x, k.r)

	ws.ApplyPrecond(k.m, k.z, k.r)
	run.Res.Stats.PrecondSolves++

	vec.Copy(k.p, k.z)
	k.rz = ws.Dot(k.r, k.z)
	k.rr = ws.Dot(k.r, k.r)
	run.Res.Stats.InnerProducts += 2
	run.Res.Stats.Flops += 4 * int64(n)
	return math.Sqrt(k.rr), nil
}

func (k *pcgKernel) Residual(*engine.Run) float64 { return math.Sqrt(k.rr) }

func (k *pcgKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	ws.MatVec(run.A, k.ap, k.p)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	pap := ws.Dot(k.p, k.ap)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if pap <= 0 {
		return fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
	}
	if k.rz == 0 {
		return fmt.Errorf("krylov: (r,z) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	lambda := k.rz / pap

	ws.Axpy(lambda, k.p, k.x)
	ws.Axpy(-lambda, k.ap, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	ws.ApplyPrecond(k.m, k.z, k.r)
	res.Stats.PrecondSolves++

	rzNew := ws.Dot(k.r, k.z)
	k.rr = ws.Dot(k.r, k.r)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * n
	if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
		return fmt.Errorf("krylov: non-finite (r,z) at iteration %d: %w", res.Iterations, ErrBreakdown)
	}

	beta := rzNew / k.rz
	ws.Xpay(k.z, beta, k.p)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n

	k.rz = rzNew
	run.Tick(math.Sqrt(k.rr))
	return nil
}

func (k *pcgKernel) Finish(run *engine.Run) { trueResidualInto(run, k.ap, k.x) }

// crKernel is the conjugate residual method, which minimizes
// ||b - A x|| over the Krylov space (CG minimizes the A-norm error).
type crKernel struct {
	x, r, p, ar, ap vec.Vector
	rar, rnorm      float64
}

// NewCRKernel returns the cr iteration kernel.
func NewCRKernel() engine.Kernel { return &crKernel{} }

func (k *crKernel) Name() string { return "cr" }

func (k *crKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	k.x, k.r, k.p, k.ar, k.ap = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3), ws.Vec(4)
	initialIterate(run, k.x, k.r)

	vec.Copy(k.p, k.r)
	ws.MatVec(run.A, k.ar, k.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	vec.Copy(k.ap, k.ar)

	k.rar = ws.Dot(k.r, k.ar)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(ws.Dim())
	k.rnorm = vec.Norm2(k.r)
	return k.rnorm, nil
}

func (k *crKernel) Residual(*engine.Run) float64 { return k.rnorm }

func (k *crKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	apap := ws.Dot(k.ap, k.ap)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if apap == 0 {
		return fmt.Errorf("krylov: ||Ap|| vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	alpha := k.rar / apap

	ws.Axpy(alpha, k.p, k.x)
	ws.Axpy(-alpha, k.ap, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	ws.MatVec(run.A, k.ar, k.r)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	rarNew := ws.Dot(k.r, k.ar)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if math.IsNaN(rarNew) || math.IsInf(rarNew, 0) {
		return fmt.Errorf("krylov: non-finite (r,Ar) at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	if k.rar == 0 {
		return fmt.Errorf("krylov: (r,Ar) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	beta := rarNew / k.rar

	ws.Xpay(k.r, beta, k.p)
	ws.Xpay(k.ar, beta, k.ap)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	k.rar = rarNew
	k.rnorm = vec.Norm2(k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	run.Tick(k.rnorm)
	return nil
}

func (k *crKernel) Finish(run *engine.Run) { trueResidualInto(run, k.ap, k.x) }

// sdKernel is steepest descent with exact line search, the simplest
// baseline: linear convergence at rate (kappa-1)/(kappa+1).
type sdKernel struct {
	x, r, ar vec.Vector
	rr       float64
}

// NewSDKernel returns the sd iteration kernel.
func NewSDKernel() engine.Kernel { return &sdKernel{} }

func (k *sdKernel) Name() string { return "sd" }

func (k *sdKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	k.x, k.r, k.ar = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	initialIterate(run, k.x, k.r)
	k.rr = ws.Dot(k.r, k.r)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(ws.Dim())
	return math.Sqrt(k.rr), nil
}

func (k *sdKernel) Residual(*engine.Run) float64 { return math.Sqrt(k.rr) }

func (k *sdKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	ws.MatVec(run.A, k.ar, k.r)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	rar := ws.Dot(k.r, k.ar)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if rar <= 0 {
		return fmt.Errorf("krylov: curvature %g at iteration %d: %w", rar, res.Iterations, ErrIndefinite)
	}
	alpha := k.rr / rar

	ws.Axpy(alpha, k.r, k.x)
	ws.Axpy(-alpha, k.ar, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	k.rr = ws.Dot(k.r, k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	run.Tick(math.Sqrt(k.rr))
	return nil
}

func (k *sdKernel) Finish(run *engine.Run) { trueResidualInto(run, k.ar, k.x) }
