package krylov

import (
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestMINRESSolvesSPD(t *testing.T) {
	a, b, xTrue := poissonSystem(8, 21)
	res, err := MINRES(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("MINRES did not converge in %d iterations (res %g)", res.Iterations, res.ResidualNorm)
	}
	if !vec.EqualTol(res.X, xTrue, 1e-6) {
		t.Fatal("MINRES solution wrong")
	}
}

func TestMINRESSolvesIndefinite(t *testing.T) {
	// The point of MINRES: symmetric indefinite systems CG cannot touch.
	d := vec.New(30)
	for i := range d {
		d[i] = float64(i - 15)
		if d[i] == 0 {
			d[i] = 0.5
		}
	}
	a := sparse.DiagonalMatrix(d)
	xTrue := vec.New(30)
	vec.Random(xTrue, 22)
	b := vec.New(30)
	a.MulVec(b, xTrue)

	if _, err := CG(a, b, Options{}); err == nil {
		t.Fatal("CG should fail on an indefinite system")
	}
	res, err := MINRES(a, b, Options{Tol: 1e-10, MaxIter: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("MINRES did not converge on indefinite system (res %g)", res.ResidualNorm)
	}
	if !vec.EqualTol(res.X, xTrue, 1e-5) {
		t.Fatal("MINRES indefinite solution wrong")
	}
}

func TestMINRESResidualMonotone(t *testing.T) {
	// MINRES minimizes the residual over the Krylov space: the recorded
	// history must be non-increasing.
	a, b, _ := poissonSystem(8, 23)
	res, err := MINRES(a, b, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-10) {
			t.Fatalf("residual increased at step %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
}

func TestMINRESMatchesCGIterationsOnSPD(t *testing.T) {
	a, b, _ := poissonSystem(7, 24)
	cg, err := CG(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := MINRES(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if diff := mr.Iterations - cg.Iterations; diff < -3 || diff > 3 {
		t.Fatalf("MINRES iterations %d vs CG %d", mr.Iterations, cg.Iterations)
	}
}

func TestMINRESZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(10)
	res, err := MINRES(a, vec.New(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
}

func TestMINRESCallbackStops(t *testing.T) {
	a, b, _ := poissonSystem(8, 25)
	res, err := MINRES(a, b, Options{
		Tol:      1e-14,
		Callback: func(it int, _ float64) bool { return it < 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("callback stop at 3, got %d", res.Iterations)
	}
}

func TestMINRESDimErrors(t *testing.T) {
	a := sparse.Poisson1D(4)
	if _, err := MINRES(a, vec.New(5), Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// Property: MINRES solves random symmetric (shifted indefinite) systems.
func TestPropMINRESSymmetric(t *testing.T) {
	f := func(seed uint64, shiftRaw int8) bool {
		n := 25
		base := sparse.RandomSPD(n, 4, seed)
		// Shift to make it indefinite sometimes.
		shift := float64(shiftRaw) / 16
		coo := sparse.NewCOO(n)
		for i := 0; i < n; i++ {
			base.ScanRow(i, func(j int, v float64) {
				coo.Add(i, j, v)
			})
			coo.Add(i, i, -shift)
		}
		a := coo.ToCSR()
		xTrue := vec.New(n)
		vec.Random(xTrue, seed+1)
		b := vec.New(n)
		a.MulVec(b, xTrue)
		if vec.Norm2(b) == 0 {
			return true
		}
		res, err := MINRES(a, b, Options{Tol: 1e-8, MaxIter: 50 * n})
		if err != nil {
			return false
		}
		return res.TrueResidualNorm <= 1e-6*vec.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
