package krylov

import (
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestCGFusedMatchesCGSerial(t *testing.T) {
	a, b, xTrue := poissonSystem(8, 31)
	plain, err := CG(a, b, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := CGFused(a, b, nil, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fused.Converged {
		t.Fatal("fused CG did not converge")
	}
	if fused.Iterations != plain.Iterations {
		t.Fatalf("fused iterations %d vs plain %d", fused.Iterations, plain.Iterations)
	}
	if !vec.EqualTol(fused.X, xTrue, 1e-6) {
		t.Fatal("fused solution wrong")
	}
	// Identical arithmetic order in the dot products: histories match
	// tightly.
	for i := range plain.History {
		if relErr := (plain.History[i] - fused.History[i]) / (plain.History[i] + 1e-300); relErr > 1e-10 || relErr < -1e-10 {
			t.Fatalf("history diverges at %d: %g vs %g", i, plain.History[i], fused.History[i])
		}
	}
}

func TestCGFusedWithPool(t *testing.T) {
	a, b, xTrue := poissonSystem(10, 32)
	pool := vec.NewPool(4)
	pool.SetMinChunk(16)
	res, err := CGFused(a, b, pool, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pooled fused CG did not converge")
	}
	if !vec.EqualTol(res.X, xTrue, 1e-6) {
		t.Fatal("pooled fused solution wrong")
	}
}

func TestCGFusedIndefinite(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{1, -1}))
	if _, err := CGFused(a, vec.NewFrom([]float64{1, 1}), nil, Options{}); err == nil {
		t.Fatal("expected indefinite error")
	}
}

func TestCGFusedZeroRHSAndDims(t *testing.T) {
	a := sparse.Poisson1D(6)
	res, err := CGFused(a, vec.New(6), nil, Options{})
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: res=%+v err=%v", res, err)
	}
	if _, err := CGFused(a, vec.New(7), nil, Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// Property: fused and plain CG produce the same iterates for random SPD
// systems (the fusion is a pure scheduling change).
func TestPropCGFusedEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		n := 30
		a := sparse.RandomSPD(n, 4, seed)
		b := vec.New(n)
		vec.Random(b, seed+1)
		plain, err1 := CG(a, b, Options{Tol: 1e-9})
		fused, err2 := CGFused(a, b, nil, Options{Tol: 1e-9})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return plain.Iterations == fused.Iterations && vec.EqualTol(plain.X, fused.X, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
