package krylov

import (
	"fmt"
	"math"

	"vrcg/internal/precond"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Workspace owns every vector a CG or PCG solve needs, plus the worker
// pool its kernels run on, so repeated solves against same-order
// operators allocate nothing in steady state: the hot loop is pooled
// SpMV (sparse.PooledMulVec), pooled dots, and pooled fused updates, all of
// which reuse pool-owned slabs.
//
// Contract: the vectors inside the workspace — including the X field of
// a returned Result — are owned by the workspace and valid only until
// the next solve on it. Callers needing the solution afterwards must
// Clone it. A Workspace is not safe for concurrent solves; use one per
// goroutine (they are cheap: five vectors).
type Workspace struct {
	pool *vec.Pool
	n    int

	x, r, p, ap, z vec.Vector
	history        []float64
}

// NewWorkspace returns a workspace for order-n systems running its
// kernels on pool. A nil pool selects the serial kernels.
func NewWorkspace(n int, pool *vec.Pool) *Workspace {
	if n <= 0 {
		panic("krylov: NewWorkspace requires n > 0")
	}
	return &Workspace{
		pool: pool,
		n:    n,
		x:    vec.New(n),
		r:    vec.New(n),
		p:    vec.New(n),
		ap:   vec.New(n),
		z:    vec.New(n),
	}
}

// Pool returns the worker pool the workspace dispatches to (nil = serial).
func (ws *Workspace) Pool() *vec.Pool { return ws.pool }

// Dim returns the system order the workspace is sized for.
func (ws *Workspace) Dim() int { return ws.n }

func (ws *Workspace) dot(x, y vec.Vector) float64 { return vec.PoolDot(ws.pool, x, y) }

func (ws *Workspace) axpy(alpha float64, x, y vec.Vector) { vec.PoolAxpy(ws.pool, alpha, x, y) }

func (ws *Workspace) xpay(x vec.Vector, alpha float64, y vec.Vector) {
	vec.PoolXpay(ws.pool, x, alpha, y)
}

func (ws *Workspace) fusedCGUpdate(alpha float64, p, ap, x, r vec.Vector) float64 {
	return vec.PoolFusedCGUpdate(ws.pool, alpha, p, ap, x, r)
}

func (ws *Workspace) matVec(a sparse.Matrix, dst, x vec.Vector) {
	sparse.PooledMulVec(a, ws.pool, dst, x)
}

func (ws *Workspace) applyPrecond(m precond.Preconditioner, dst, r vec.Vector) {
	if ws.pool != nil {
		if pa, ok := m.(precond.PoolApplier); ok {
			pa.ApplyPool(ws.pool, dst, r)
			return
		}
	}
	m.Apply(dst, r)
}

// setup validates the system, loads the initial guess into ws.x, forms
// the initial residual in ws.r, and returns the convergence threshold.
func (ws *Workspace) setup(a sparse.Matrix, b vec.Vector, o *Options) (float64, error) {
	if a.Dim() != ws.n {
		return 0, fmt.Errorf("krylov: workspace order %d but matrix order %d: %w", ws.n, a.Dim(), sparse.ErrDim)
	}
	if err := checkSystem(a, b, *o); err != nil {
		return 0, err
	}
	*o = o.withDefaults(ws.n)
	if o.X0 != nil {
		vec.Copy(ws.x, o.X0)
	} else {
		vec.Zero(ws.x)
	}
	ws.matVec(a, ws.r, ws.x)
	vec.Sub(ws.r, b, ws.r)
	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	ws.history = ws.history[:0]
	return o.Tol * bnorm, nil
}

func (ws *Workspace) record(o Options, v float64) {
	if o.RecordHistory {
		ws.history = append(ws.history, v)
	}
}

// trueResidual computes ||b - A x|| into ws.z and charges stats.
func (ws *Workspace) trueResidual(a sparse.Matrix, b vec.Vector, st *Stats) float64 {
	ws.matVec(a, ws.z, ws.x)
	vec.Sub(ws.z, b, ws.z)
	st.MatVecs++
	st.Flops += matvecFlops(a)
	return vec.Norm2(ws.z)
}

// CG solves A x = b with the fused-update conjugate gradient iteration
// on the workspace's buffers and pool. In steady state (a warm
// workspace, RecordHistory history capacity reached, no breakdown) a
// call performs zero heap allocations. The returned Result aliases
// workspace storage; see the Workspace contract.
func (ws *Workspace) CG(a sparse.Matrix, b vec.Vector, o Options) (Result, error) {
	var res Result
	threshold, err := ws.setup(a, b, &o)
	if err != nil {
		return res, err
	}
	n := ws.n
	res.X = ws.x
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	vec.Copy(ws.p, ws.r)
	rr := ws.dot(ws.r, ws.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)
	ws.record(o, math.Sqrt(rr))

	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		ws.matVec(a, ws.ap, ws.p)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		pap := ws.dot(ws.p, ws.ap)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if pap <= 0 {
			res.finishHistory(ws, o)
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
		}
		lambda := rr / pap

		rrNew := ws.fusedCGUpdate(lambda, ws.p, ws.ap, ws.x, ws.r)
		res.Stats.VectorUpdates += 2
		res.Stats.InnerProducts++
		res.Stats.Flops += 6 * int64(n)
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			res.finishHistory(ws, o)
			return res, fmt.Errorf("krylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
		}

		alpha := rrNew / rr
		ws.xpay(ws.r, alpha, ws.p)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		rr = rrNew
		res.Iterations++
		ws.record(o, math.Sqrt(rr))
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(rr)) {
			break
		}
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.TrueResidualNorm = ws.trueResidual(a, b, &res.Stats)
	res.finishHistory(ws, o)
	return res, nil
}

// PCG solves A x = b with preconditioner M on the workspace's buffers
// and pool. Zero steady-state heap allocations, like CG. The returned
// Result aliases workspace storage; see the Workspace contract.
func (ws *Workspace) PCG(a sparse.Matrix, m precond.Preconditioner, b vec.Vector, o Options) (Result, error) {
	var res Result
	if m.Dim() != ws.n {
		return res, fmt.Errorf("krylov: preconditioner order %d for workspace order %d: %w", m.Dim(), ws.n, sparse.ErrDim)
	}
	threshold, err := ws.setup(a, b, &o)
	if err != nil {
		return res, err
	}
	n := ws.n
	res.X = ws.x
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	ws.applyPrecond(m, ws.z, ws.r)
	res.Stats.PrecondSolves++

	vec.Copy(ws.p, ws.z)
	rz := ws.dot(ws.r, ws.z)
	rr := ws.dot(ws.r, ws.r)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * int64(n)
	ws.record(o, math.Sqrt(rr))

	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		ws.matVec(a, ws.ap, ws.p)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		pap := ws.dot(ws.p, ws.ap)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if pap <= 0 {
			res.finishHistory(ws, o)
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
		}
		if rz == 0 {
			res.finishHistory(ws, o)
			return res, fmt.Errorf("krylov: (r,z) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		lambda := rz / pap

		ws.axpy(lambda, ws.p, ws.x)
		ws.axpy(-lambda, ws.ap, ws.r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		ws.applyPrecond(m, ws.z, ws.r)
		res.Stats.PrecondSolves++

		rzNew := ws.dot(ws.r, ws.z)
		rr = ws.dot(ws.r, ws.r)
		res.Stats.InnerProducts += 2
		res.Stats.Flops += 4 * int64(n)
		if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			res.finishHistory(ws, o)
			return res, fmt.Errorf("krylov: non-finite (r,z) at iteration %d: %w", res.Iterations, ErrBreakdown)
		}

		beta := rzNew / rz
		ws.xpay(ws.z, beta, ws.p)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		rz = rzNew
		res.Iterations++
		ws.record(o, math.Sqrt(rr))
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(rr)) {
			break
		}
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.TrueResidualNorm = ws.trueResidual(a, b, &res.Stats)
	res.finishHistory(ws, o)
	return res, nil
}

// finishHistory publishes the workspace-owned history slab into the
// result when recording was requested.
func (r *Result) finishHistory(ws *Workspace, o Options) {
	if o.RecordHistory {
		r.History = ws.history
	}
}
