package krylov

import (
	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// Workspace binds the cg and pcg kernels to one reusable engine
// workspace (vector arena + worker pool), so repeated solves against
// same-order operators allocate nothing in steady state: the hot loop
// is pooled SpMV (sparse.PooledMulVec), pooled dots, and pooled fused
// updates, all of which reuse pool-owned slabs.
//
// Contract: the vectors inside the workspace — including the X field of
// a returned Result — are owned by the workspace and valid only until
// the next solve on it. Callers needing the solution afterwards must
// Clone it. A Workspace is not safe for concurrent solves; use one per
// goroutine (they are cheap).
type Workspace struct {
	eng *engine.Workspace
	cg  cgKernel
	pcg pcgKernel
	res Result
}

// NewWorkspace returns a workspace for order-n systems running its
// kernels on pool. A nil pool selects the serial kernels.
func NewWorkspace(n int, pool *vec.Pool) *Workspace {
	if n <= 0 {
		panic("krylov: NewWorkspace requires n > 0")
	}
	eng := engine.NewWorkspace(n, pool)
	eng.Reserve(5) // x, r, p, ap, z — all allocations happen here, not on the first solve
	return &Workspace{eng: eng, cg: cgKernel{label: "cg"}}
}

// Pool returns the worker pool the workspace dispatches to (nil = serial).
func (ws *Workspace) Pool() *vec.Pool { return ws.eng.Pool() }

// Dim returns the system order the workspace is sized for.
func (ws *Workspace) Dim() int { return ws.eng.Dim() }

// CG solves A x = b with the fused-update conjugate gradient iteration
// on the workspace's buffers and pool. In steady state (a warm
// workspace, history capacity reached, no breakdown) a call performs
// zero heap allocations. The returned Result aliases workspace storage;
// see the Workspace contract.
func (ws *Workspace) CG(a sparse.Matrix, b vec.Vector, o Options) (Result, error) {
	err := engine.Solve(&ws.cg, ws.eng, a, b, o, &ws.res)
	return ws.res, err
}

// PCG solves A x = b with preconditioner M on the workspace's buffers
// and pool. Zero steady-state heap allocations, like CG. The returned
// Result aliases workspace storage; see the Workspace contract.
func (ws *Workspace) PCG(a sparse.Matrix, m precond.Preconditioner, b vec.Vector, o Options) (Result, error) {
	o.Precond = m
	err := engine.Solve(&ws.pcg, ws.eng, a, b, o, &ws.res)
	return ws.res, err
}
