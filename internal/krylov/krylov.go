// Package krylov implements the classical iterative solvers the paper's
// new algorithm is measured against: steepest descent, the standard
// Hestenes–Stiefel conjugate gradient iteration (the "standard CG" of
// the paper's section 2), preconditioned CG, conjugate residuals, and
// MINRES.
//
// Every method is an engine kernel (internal/engine): this package owns
// only the numerics of each iteration — Init/Step/Residual/Finish over
// the shared workspace arena — while the engine driver owns option
// defaults, convergence checks, callbacks, and history. The package
// functions below (CG, PCG, ...) are thin wrappers that run a fresh
// kernel through the driver; Workspace binds a kernel to a reusable
// arena so repeated solves allocate nothing.
//
// Every solver reports operation statistics (matrix–vector products,
// inner products, vector updates, flops) so the sequential-complexity
// experiment (paper §6: "we still need two inner products and a matrix
// vector product at every iteration") can compare algorithms exactly.
package krylov

import (
	"fmt"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// ErrIndefinite is returned when an iteration encounters a curvature
// <p, Ap> <= 0, meaning the operator is not positive definite.
var ErrIndefinite = engine.ErrIndefinite

// ErrBreakdown is returned when an iteration produces a non-finite or
// degenerate scalar and cannot continue.
var ErrBreakdown = engine.ErrBreakdown

// ErrBadOption is returned when solver options are invalid for the
// method (negative look-ahead, zero block size, and the like). All
// solver packages wrap it so callers can errors.Is against one sentinel
// regardless of the method.
var ErrBadOption = engine.ErrBadOption

// ErrUnsupportedOperator is returned when a method needs an operator
// capability the supplied type lacks (the normal-equations methods need
// transpose products, sparse.TransposeMulVec).
var ErrUnsupportedOperator = engine.ErrUnsupportedOperator

// ErrDim reports a dimension mismatch between an operator and a vector.
var ErrDim = sparse.ErrDim

// Stats counts the work an iterative solve performed (alias of the
// engine type; see engine.Stats).
type Stats = engine.Stats

// Result reports the outcome of an iterative solve (alias of the
// canonical engine result; fields other methods produce — Blocks, the
// vrcg drift diagnostics — stay zero here).
type Result = engine.Result

// Options configures an iterative solve. It is the engine's one shared
// Config: fields irrelevant to a method (K, S, Precond outside PCG) are
// ignored.
type Options = engine.Config

// run drives kernel k once on a fresh workspace — the one-shot package
// entry points share it.
func run(k engine.Kernel, a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() <= 0 {
		return nil, fmt.Errorf("krylov: operator order %d must be positive: %w", a.Dim(), ErrDim)
	}
	res := new(Result)
	err := engine.Solve(k, engine.NewWorkspace(a.Dim(), o.Pool), a, b, o, res)
	return res, err
}

// CG solves A x = b for symmetric positive definite A by the standard
// conjugate gradient iteration (Hestenes & Stiefel 1952), in the exact
// form given in section 2 of the paper:
//
//	p(0) = r(0) = b - A u(0)
//	lambda_n = (r(n), r(n)) / (p(n), A p(n))
//	u(n+1)  = u(n) + lambda_n p(n)
//	r(n+1)  = r(n) - lambda_n A p(n)
//	a_{n+1} = (r(n+1), r(n+1)) / (r(n), r(n))
//	p(n+1)  = r(n+1) + a_{n+1} p(n)
func CG(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewCGKernel(), a, b, o)
}

// PCG solves A x = b with a symmetric positive definite preconditioner M,
// iterating on the M-inner-product residual (standard preconditioned CG).
func PCG(a sparse.Matrix, m precond.Preconditioner, b vec.Vector, o Options) (*Result, error) {
	o.Precond = m
	return run(NewPCGKernel(), a, b, o)
}

// SteepestDescent solves A x = b by gradient descent with exact line
// search. It converges linearly at rate (kappa-1)/(kappa+1) — far slower
// than CG — and serves as the simplest baseline.
func SteepestDescent(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewSDKernel(), a, b, o)
}

// CR solves A x = b by the conjugate residual method, which minimizes
// ||b - A x|| over the Krylov space (CG minimizes the A-norm error).
// It requires only symmetry, not positive definiteness, of A, though
// positive definite systems remain its standard use.
func CR(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewCRKernel(), a, b, o)
}
