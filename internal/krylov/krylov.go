// Package krylov implements the classical iterative solvers the paper's
// new algorithm is measured against: steepest descent, the standard
// Hestenes–Stiefel conjugate gradient iteration (the "standard CG" of
// the paper's section 2), preconditioned CG, and conjugate residuals.
//
// Every solver reports operation statistics (matrix–vector products,
// inner products, vector updates, flops) so the sequential-complexity
// experiment (paper §6: "we still need two inner products and a matrix
// vector product at every iteration") can compare algorithms exactly.
package krylov

import (
	"errors"
	"fmt"
	"math"

	"vrcg/internal/precond"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// ErrIndefinite is returned when an iteration encounters a curvature
// <p, Ap> <= 0, meaning the operator is not positive definite.
var ErrIndefinite = errors.New("krylov: operator not positive definite")

// ErrBreakdown is returned when an iteration produces a non-finite or
// degenerate scalar and cannot continue.
var ErrBreakdown = errors.New("krylov: iteration breakdown")

// ErrBadOption is returned when solver options are invalid for the
// method (negative look-ahead, zero block size, and the like). All
// solver packages wrap it so callers can errors.Is against one sentinel
// regardless of the method.
var ErrBadOption = errors.New("krylov: invalid solver option")

// Stats counts the work an iterative solve performed. Flops follow the
// usual convention: 2n per inner product or axpy, 2*nnz per sparse
// matrix–vector product.
type Stats struct {
	MatVecs       int
	InnerProducts int
	VectorUpdates int
	PrecondSolves int
	Flops         int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MatVecs += other.MatVecs
	s.InnerProducts += other.InnerProducts
	s.VectorUpdates += other.VectorUpdates
	s.PrecondSolves += other.PrecondSolves
	s.Flops += other.Flops
}

// String summarizes the counts.
func (s Stats) String() string {
	return fmt.Sprintf("matvecs=%d dots=%d updates=%d precond=%d flops=%d",
		s.MatVecs, s.InnerProducts, s.VectorUpdates, s.PrecondSolves, s.Flops)
}

// Result reports the outcome of an iterative solve.
type Result struct {
	// X is the final iterate.
	X vec.Vector
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the residual tolerance was met.
	Converged bool
	// ResidualNorm is the final (recursively updated) residual 2-norm.
	ResidualNorm float64
	// TrueResidualNorm is ||b - A x|| computed directly at exit.
	TrueResidualNorm float64
	// History holds per-iteration residual norms when requested
	// (History[0] is the initial residual).
	History []float64
	// Stats counts the work performed.
	Stats Stats
}

// Options configures an iterative solve.
type Options struct {
	// MaxIter bounds the iteration count; 0 means 10*n.
	MaxIter int
	// Tol is the relative residual tolerance ||r|| <= Tol*||b||;
	// 0 means 1e-10.
	Tol float64
	// X0 is the initial guess; nil means the zero vector.
	X0 vec.Vector
	// RecordHistory enables Result.History.
	RecordHistory bool
	// Callback, when non-nil, is invoked after each iteration with the
	// iteration number and current residual norm; returning false stops
	// the solve early (Result.Converged stays false unless the tolerance
	// was already met).
	Callback func(iter int, resNorm float64) bool
}

func (o Options) withDefaults(n int) Options {
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

func checkSystem(a sparse.Matrix, b vec.Vector, o Options) error {
	if a.Dim() != len(b) {
		return fmt.Errorf("krylov: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	if o.X0 != nil && len(o.X0) != a.Dim() {
		return fmt.Errorf("krylov: x0 length %d for order %d: %w", len(o.X0), a.Dim(), sparse.ErrDim)
	}
	return nil
}

func initialGuess(n int, o Options) vec.Vector {
	if o.X0 != nil {
		return vec.Clone(o.X0)
	}
	return vec.New(n)
}

// trueResidual computes ||b - A x|| and charges its cost to stats.
func trueResidual(a sparse.Matrix, b, x vec.Vector, st *Stats) float64 {
	n := a.Dim()
	r := vec.New(n)
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	st.MatVecs++
	st.Flops += matvecFlops(a)
	return vec.Norm2(r)
}

func matvecFlops(a sparse.Matrix) int64 {
	if sp, ok := a.(sparse.Sparse); ok {
		return 2 * int64(sp.NNZ())
	}
	n := int64(a.Dim())
	return 2 * n * n
}

// CG solves A x = b for symmetric positive definite A by the standard
// conjugate gradient iteration (Hestenes & Stiefel 1952), in the exact
// form given in section 2 of the paper:
//
//	p(0) = r(0) = b - A u(0)
//	lambda_n = (r(n), r(n)) / (p(n), A p(n))
//	u(n+1)  = u(n) + lambda_n p(n)
//	r(n+1)  = r(n) - lambda_n A p(n)
//	a_{n+1} = (r(n+1), r(n+1)) / (r(n), r(n))
//	p(n+1)  = r(n+1) + a_{n+1} p(n)
func CG(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	p := vec.Clone(r)
	ap := vec.New(n)
	rr := vec.Dot(r, r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	record(math.Sqrt(rr))

	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		pap := vec.Dot(p, ap)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if pap <= 0 {
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
		}
		lambda := rr / pap

		vec.Axpy(lambda, p, res.X)
		vec.Axpy(-lambda, ap, r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		rrNew := vec.Dot(r, r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			return res, fmt.Errorf("krylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
		}

		alpha := rrNew / rr
		vec.Xpay(r, alpha, p)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		rr = rrNew
		res.Iterations++
		record(math.Sqrt(rr))
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(rr)) {
			break
		}
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	return res, nil
}

// PCG solves A x = b with a symmetric positive definite preconditioner M,
// iterating on the M-inner-product residual (standard preconditioned CG).
func PCG(a sparse.Matrix, m precond.Preconditioner, b vec.Vector, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	if m.Dim() != a.Dim() {
		return nil, fmt.Errorf("krylov: preconditioner order %d for matrix order %d: %w", m.Dim(), a.Dim(), sparse.ErrDim)
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	z := vec.New(n)
	m.Apply(z, r)
	res.Stats.PrecondSolves++

	p := vec.Clone(z)
	ap := vec.New(n)
	rz := vec.Dot(r, z)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm
	rnorm := vec.Norm2(r)

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	record(rnorm)

	for res.Iterations < o.MaxIter {
		if rnorm <= threshold {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		pap := vec.Dot(p, ap)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if pap <= 0 {
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
		}
		if rz == 0 {
			return res, fmt.Errorf("krylov: (r,z) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		lambda := rz / pap

		vec.Axpy(lambda, p, res.X)
		vec.Axpy(-lambda, ap, r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		m.Apply(z, r)
		res.Stats.PrecondSolves++

		rzNew := vec.Dot(r, z)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			return res, fmt.Errorf("krylov: non-finite (r,z) at iteration %d: %w", res.Iterations, ErrBreakdown)
		}

		beta := rzNew / rz
		vec.Xpay(z, beta, p)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		rz = rzNew
		rnorm = vec.Norm2(r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		res.Iterations++
		record(rnorm)
		if o.Callback != nil && !o.Callback(res.Iterations, rnorm) {
			break
		}
	}
	if rnorm <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = rnorm
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	return res, nil
}

// SteepestDescent solves A x = b by gradient descent with exact line
// search. It converges linearly at rate (kappa-1)/(kappa+1) — far slower
// than CG — and serves as the simplest baseline.
func SteepestDescent(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	ar := vec.New(n)
	rr := vec.Dot(r, r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	record(math.Sqrt(rr))

	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		a.MulVec(ar, r)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)
		rar := vec.Dot(r, ar)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if rar <= 0 {
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", rar, res.Iterations, ErrIndefinite)
		}
		alpha := rr / rar
		vec.Axpy(alpha, r, res.X)
		vec.Axpy(-alpha, ar, r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)
		rr = vec.Dot(r, r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		res.Iterations++
		record(math.Sqrt(rr))
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(rr)) {
			break
		}
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	return res, nil
}

// CR solves A x = b by the conjugate residual method, which minimizes
// ||b - A x|| over the Krylov space (CG minimizes the A-norm error).
// It requires only symmetry, not positive definiteness, of A, though
// positive definite systems remain its standard use.
func CR(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	p := vec.Clone(r)
	ar := vec.New(n)
	a.MulVec(ar, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	ap := vec.Clone(ar)

	rar := vec.Dot(r, ar)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm
	rnorm := vec.Norm2(r)

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	record(rnorm)

	for res.Iterations < o.MaxIter {
		if rnorm <= threshold {
			res.Converged = true
			break
		}
		apap := vec.Dot(ap, ap)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if apap == 0 {
			return res, fmt.Errorf("krylov: ||Ap|| vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		alpha := rar / apap

		vec.Axpy(alpha, p, res.X)
		vec.Axpy(-alpha, ap, r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		a.MulVec(ar, r)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		rarNew := vec.Dot(r, ar)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if math.IsNaN(rarNew) || math.IsInf(rarNew, 0) {
			return res, fmt.Errorf("krylov: non-finite (r,Ar) at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		if rar == 0 {
			return res, fmt.Errorf("krylov: (r,Ar) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		beta := rarNew / rar

		vec.Xpay(r, beta, p)
		vec.Xpay(ar, beta, ap)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		rar = rarNew
		rnorm = vec.Norm2(r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		res.Iterations++
		record(rnorm)
		if o.Callback != nil && !o.Callback(res.Iterations, rnorm) {
			break
		}
	}
	if rnorm <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = rnorm
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	return res, nil
}
