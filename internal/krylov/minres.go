package krylov

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// minresKernel is the minimum-residual method of Paige & Saunders
// (1975): a Lanczos tridiagonalization with on-the-fly Givens QR. For
// SPD systems it behaves like conjugate residuals; its value here is
// completing the symmetric-solver family (CG requires definiteness,
// MINRES does not). The historical implementation allocated a fresh
// direction vector every iteration; the kernel rotates three fixed
// buffers instead, so it is allocation-free like every other kernel.
type minresKernel struct {
	x, v, vPrev, av, w, wPrev, wTmp vec.Vector

	phi                     float64
	cs, sn                  float64
	dltn, epsPrev, betaPrev float64
}

// NewMINRESKernel returns the minres iteration kernel.
func NewMINRESKernel() engine.Kernel { return &minresKernel{} }

func (k *minresKernel) Name() string { return "minres" }

func (k *minresKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()
	k.x, k.v, k.vPrev = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	k.av, k.w, k.wPrev, k.wTmp = ws.Vec(3), ws.Vec(4), ws.Vec(5), ws.Vec(6)

	// r = b - A x, formed directly in the first Lanczos vector's buffer.
	initialIterate(run, k.x, k.v)

	beta := vec.Norm2(k.v)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(n)
	k.phi = beta
	if k.phi <= run.Threshold {
		// Already converged; the driver's loop-top check exits before
		// Step, so the Lanczos state is never touched.
		return k.phi, nil
	}

	vec.Scale(1/beta, k.v)
	run.Res.Stats.VectorUpdates++
	vec.Zero(k.vPrev)
	vec.Zero(k.w)
	vec.Zero(k.wPrev)

	k.cs, k.sn = -1, 0
	k.dltn, k.epsPrev = 0, 0
	k.betaPrev = beta
	return k.phi, nil
}

func (k *minresKernel) Residual(*engine.Run) float64 { return k.phi }

func (k *minresKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	ws.MatVec(run.A, k.av, k.v)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	alpha := ws.Dot(k.v, k.av)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n

	// av <- av - alpha*v - betaPrev*vPrev
	ws.Axpy(-alpha, k.v, k.av)
	ws.Axpy(-k.betaPrev, k.vPrev, k.av)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	betaNext := vec.Norm2(k.av)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n

	// Apply the previous rotations to the new tridiagonal column.
	delta := k.cs*k.dltn + k.sn*alpha
	gbar := k.sn*k.dltn - k.cs*alpha
	eps := k.epsPrev
	k.epsPrev = k.sn * betaNext
	k.dltn = -k.cs * betaNext

	// New rotation annihilating betaNext.
	gamma := math.Hypot(gbar, betaNext)
	if gamma == 0 {
		return fmt.Errorf("krylov: MINRES breakdown at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	k.cs = gbar / gamma
	k.sn = betaNext / gamma

	// Update the solution direction and iterate:
	// wNew = (v - delta*w - eps*wPrev)/gamma, built in the spare buffer.
	vec.Copy(k.wTmp, k.v)
	ws.Axpy(-delta, k.w, k.wTmp)
	ws.Axpy(-eps, k.wPrev, k.wTmp)
	vec.Scale(1/gamma, k.wTmp)
	res.Stats.VectorUpdates += 3
	res.Stats.Flops += 6 * n

	ws.Axpy(k.phi*k.cs, k.wTmp, k.x)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n
	k.phi = math.Abs(k.phi * k.sn)

	k.wPrev, k.w, k.wTmp = k.w, k.wTmp, k.wPrev

	// Advance the Lanczos recurrence by rotating the three v-buffers.
	if betaNext > 0 {
		k.vPrev, k.v, k.av = k.v, k.av, k.vPrev
		vec.Scale(1/betaNext, k.v)
		res.Stats.VectorUpdates++
		res.Stats.Flops += n
	}
	k.betaPrev = betaNext

	res.Iterations++
	run.Record(k.phi)
	if k.phi <= run.Threshold {
		// Converged: the driver's loop-top check exits; the historical
		// code skipped the callback on the converging iteration, so the
		// kernel does too.
		return nil
	}
	if !run.Callback(res.Iterations, k.phi) {
		return nil
	}
	if betaNext == 0 {
		// Krylov space exhausted: the current iterate is exact (in
		// exact arithmetic).
		run.Stop()
	}
	return nil
}

func (k *minresKernel) Finish(run *engine.Run) {
	trueResidualInto(run, k.wTmp, k.x)
	// Trust the directly computed residual for the convergence flag.
	if run.Res.TrueResidualNorm <= run.Threshold*1.01 {
		run.Res.Converged = true
	}
}

// MINRES solves A x = b for symmetric (possibly indefinite) A by the
// minimum-residual method; see minresKernel.
func MINRES(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewMINRESKernel(), a, b, o)
}
