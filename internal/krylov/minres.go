package krylov

import (
	"fmt"
	"math"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// MINRES solves A x = b for symmetric (possibly indefinite) A by the
// minimum-residual method of Paige & Saunders (1975): a Lanczos
// tridiagonalization with on-the-fly Givens QR. For SPD systems it
// behaves like conjugate residuals; its value here is completing the
// symmetric-solver family (CG requires definiteness, MINRES does not),
// which widens the substrate the comparison experiments can draw on.
func MINRES(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	beta := vec.Norm2(r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	phi := beta // current residual norm
	record(phi)
	if phi <= threshold {
		res.Converged = true
		res.ResidualNorm = phi
		res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
		return res, nil
	}

	// Lanczos vectors.
	vPrev := vec.New(n)
	v := vec.Clone(r)
	vec.Scale(1/beta, v)
	res.Stats.VectorUpdates++

	// Solution update directions.
	w := vec.New(n)
	wPrev := vec.New(n)
	av := vec.New(n)

	// Givens rotation state.
	var cs, sn float64 = -1, 0
	var dltn float64
	epsPrev := 0.0
	betaPrev := beta

	// Short-recurrence MINRES (following Paige–Saunders; variable names
	// track the standard presentation).
	var eps float64
	for res.Iterations < o.MaxIter {
		a.MulVec(av, v)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		alpha := vec.Dot(v, av)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)

		// av <- av - alpha*v - betaPrev*vPrev
		vec.Axpy(-alpha, v, av)
		vec.Axpy(-betaPrev, vPrev, av)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		betaNext := vec.Norm2(av)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)

		// Apply the previous rotations to the new tridiagonal column.
		delta := cs*dltn + sn*alpha
		gbar := sn*dltn - cs*alpha
		eps = epsPrev
		epsPrev = sn * betaNext
		dltn = -cs * betaNext

		// New rotation annihilating betaNext.
		gamma := math.Hypot(gbar, betaNext)
		if gamma == 0 {
			return res, fmt.Errorf("krylov: MINRES breakdown at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		cs = gbar / gamma
		sn = betaNext / gamma

		// Update the solution direction and iterate.
		// wNew = (v - delta*w - eps*wPrev)/gamma
		wNew := vec.New(n)
		vec.Copy(wNew, v)
		vec.Axpy(-delta, w, wNew)
		vec.Axpy(-eps, wPrev, wNew)
		vec.Scale(1/gamma, wNew)
		res.Stats.VectorUpdates += 3
		res.Stats.Flops += 6 * int64(n)

		vec.Axpy(phi*cs, wNew, res.X)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)
		phi = phi * sn
		if phi < 0 {
			phi = -phi
		}

		wPrev, w = w, wNew

		// Advance the Lanczos recurrence.
		if betaNext > 0 {
			vPrev, v = v, vec.Clone(av)
			vec.Scale(1/betaNext, v)
			res.Stats.VectorUpdates++
			res.Stats.Flops += int64(n)
		}
		betaPrev = betaNext

		res.Iterations++
		record(phi)
		if phi <= threshold {
			res.Converged = true
			break
		}
		if o.Callback != nil && !o.Callback(res.Iterations, phi) {
			break
		}
		if betaNext == 0 {
			// Krylov space exhausted: the current iterate is exact (in
			// exact arithmetic).
			res.Converged = phi <= threshold
			break
		}
	}
	res.ResidualNorm = phi
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	// Trust the directly computed residual for the convergence flag.
	if res.TrueResidualNorm <= threshold*1.01 {
		res.Converged = true
	}
	return res, nil
}
