package krylov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// solveCheck runs a solver and verifies the true residual meets a
// tolerance relative to ||b||.
func solveCheck(t *testing.T, name string, res *Result, err error, b vec.Vector, tol float64) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Converged {
		t.Fatalf("%s: did not converge in %d iterations (res %g)", name, res.Iterations, res.ResidualNorm)
	}
	rel := res.TrueResidualNorm / vec.Norm2(b)
	if rel > tol {
		t.Fatalf("%s: true residual %g exceeds %g", name, rel, tol)
	}
}

func poissonSystem(m int, seed uint64) (*sparse.CSR, vec.Vector, vec.Vector) {
	a := sparse.Poisson2D(m)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, seed)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	return a, b, xTrue
}

func TestCGSolvesPoisson2D(t *testing.T) {
	a, b, xTrue := poissonSystem(8, 1)
	res, err := CG(a, b, Options{Tol: 1e-12})
	solveCheck(t, "CG", res, err, b, 1e-10)
	if !vec.EqualTol(res.X, xTrue, 1e-8) {
		t.Fatal("CG solution differs from truth")
	}
}

func TestCGExactTerminationSmall(t *testing.T) {
	// In exact arithmetic CG terminates in at most n steps; for a 3x3
	// well-conditioned system it should take <= 3 + rounding slack.
	a := sparse.TridiagToeplitz(3, 4, -1)
	b := vec.NewFrom([]float64{1, 2, 3})
	res, err := CG(a, b, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 4 {
		t.Fatalf("CG took %d iterations on 3x3 system", res.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(10)
	b := vec.New(10)
	res, err := CG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
	if vec.Norm2(res.X) != 0 {
		t.Fatal("zero rhs should give zero solution from zero guess")
	}
}

func TestCGWarmStart(t *testing.T) {
	a, b, xTrue := poissonSystem(6, 2)
	// Start from the exact solution: should converge immediately.
	res, err := CG(a, b, Options{X0: xTrue, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := CG(a, vec.New(6), Options{}); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("want ErrDim, got %v", err)
	}
	if _, err := CG(a, vec.New(5), Options{X0: vec.New(4)}); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("want ErrDim for x0, got %v", err)
	}
}

func TestCGIndefiniteDetected(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{1, -1}))
	b := vec.NewFrom([]float64{1, 1})
	_, err := CG(a, b, Options{})
	if !errors.Is(err, ErrIndefinite) {
		t.Fatalf("want ErrIndefinite, got %v", err)
	}
}

func TestCGHistoryMonotoneTail(t *testing.T) {
	a, b, _ := poissonSystem(8, 3)
	res, err := CG(a, b, Options{RecordHistory: true, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history length %d for %d iterations", len(res.History), res.Iterations)
	}
	// CG residuals are not monotone in 2-norm, but the final entry must
	// be below the first for a converged solve.
	if res.History[len(res.History)-1] >= res.History[0] {
		t.Fatal("no residual reduction recorded")
	}
}

func TestCGCallbackEarlyStop(t *testing.T) {
	a, b, _ := poissonSystem(8, 4)
	stopAt := 3
	res, err := CG(a, b, Options{
		Tol: 1e-14,
		Callback: func(it int, _ float64) bool {
			return it < stopAt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != stopAt {
		t.Fatalf("callback stop at %d, got %d iterations", stopAt, res.Iterations)
	}
	if res.Converged {
		t.Fatal("early-stopped solve should not report convergence")
	}
}

func TestCGStatsPerIteration(t *testing.T) {
	// The paper (§6): standard CG needs 2 inner products and 1 matvec per
	// iteration. Verify the counters reflect exactly that (plus setup:
	// 1 matvec + 1 dot, and the exit true-residual matvec).
	a, b, _ := poissonSystem(6, 5)
	res, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iterations
	if got, want := res.Stats.MatVecs, it+2; got != want {
		t.Fatalf("matvecs = %d, want %d (1/iter + setup + final check)", got, want)
	}
	if got, want := res.Stats.InnerProducts, 2*it+1; got != want {
		t.Fatalf("inner products = %d, want %d (2/iter + setup)", got, want)
	}
	if got, want := res.Stats.VectorUpdates, 3*it; got != want {
		t.Fatalf("vector updates = %d, want %d (3/iter)", got, want)
	}
	if res.Stats.Flops <= 0 {
		t.Fatal("flop counter not accumulating")
	}
}

func TestCGMaxIterRespected(t *testing.T) {
	a, b, _ := poissonSystem(16, 6)
	res, err := CG(a, b, Options{MaxIter: 2, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("MaxIter=2 but ran %d iterations", res.Iterations)
	}
	if res.Converged {
		t.Fatal("cannot converge on 16x16 Poisson grid in 2 iterations")
	}
}

func TestPCGJacobiSolves(t *testing.T) {
	a, b, _ := poissonSystem(8, 7)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	res, errSolve := PCG(a, m, b, Options{Tol: 1e-12})
	solveCheck(t, "PCG-Jacobi", res, errSolve, b, 1e-10)
}

func TestPCGSSORFasterThanCGOnIllConditioned(t *testing.T) {
	// SSOR preconditioning should cut iteration counts on a fine Poisson
	// grid relative to plain CG.
	a := sparse.Poisson2D(24)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 8)
	plain, err := CG(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := precond.NewSSOR(a, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := PCG(a, m, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("PCG-SSOR did not converge")
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("SSOR PCG (%d iters) not faster than CG (%d iters)", pre.Iterations, plain.Iterations)
	}
}

func TestPCGIdentityMatchesCG(t *testing.T) {
	a, b, _ := poissonSystem(6, 9)
	plain, err := CG(a, b, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	id := precond.NewIdentity(a.Dim())
	pre, err := PCG(a, id, b, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != pre.Iterations {
		t.Fatalf("identity PCG iterations %d != CG %d", pre.Iterations, plain.Iterations)
	}
	if !vec.EqualTol(plain.X, pre.X, 1e-9) {
		t.Fatal("identity PCG solution differs from CG")
	}
}

func TestPCGDimChecks(t *testing.T) {
	a := sparse.Poisson1D(5)
	id := precond.NewIdentity(4)
	if _, err := PCG(a, id, vec.New(5), Options{}); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("want ErrDim, got %v", err)
	}
}

func TestSteepestDescentConvergesSlowly(t *testing.T) {
	a, b, _ := poissonSystem(6, 10)
	sd, err := SteepestDescent(a, b, Options{Tol: 1e-8, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !sd.Converged {
		t.Fatal("steepest descent did not converge")
	}
	cg, err := CG(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Iterations <= cg.Iterations {
		t.Fatalf("steepest descent (%d) should be slower than CG (%d)", sd.Iterations, cg.Iterations)
	}
}

func TestSteepestDescentIndefinite(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{-1, 1}))
	if _, err := SteepestDescent(a, vec.NewFrom([]float64{1, 0}), Options{}); !errors.Is(err, ErrIndefinite) {
		t.Fatalf("want ErrIndefinite, got %v", err)
	}
}

func TestCRSolves(t *testing.T) {
	a, b, _ := poissonSystem(8, 11)
	res, err := CR(a, b, Options{Tol: 1e-11})
	solveCheck(t, "CR", res, err, b, 1e-9)
}

func TestCRResidualMonotone(t *testing.T) {
	// CR minimizes the residual norm, so history must be non-increasing.
	a, b, _ := poissonSystem(8, 12)
	res, err := CR(a, b, Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-10) {
			t.Fatalf("CR residual increased at step %d: %g -> %g", i, res.History[i-1], res.History[i])
		}
	}
}

func TestStatsAddAndString(t *testing.T) {
	s := Stats{MatVecs: 1, InnerProducts: 2, VectorUpdates: 3, PrecondSolves: 4, Flops: 5}
	s.Add(Stats{MatVecs: 10, InnerProducts: 20, VectorUpdates: 30, PrecondSolves: 40, Flops: 50})
	if s.MatVecs != 11 || s.InnerProducts != 22 || s.VectorUpdates != 33 || s.PrecondSolves != 44 || s.Flops != 55 {
		t.Fatalf("Stats.Add wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestCGIterationBoundKappa(t *testing.T) {
	// CG error contraction per iteration is at least
	// 2*((sqrt(k)-1)/(sqrt(k)+1)); for kappa=100 and tol 1e-8 the
	// iteration count must stay well under the n bound and the
	// sqrt(kappa) estimate times a small constant.
	n := 200
	kappa := 100.0
	a := sparse.PrescribedSpectrum(n, kappa)
	b := vec.New(n)
	vec.Random(b, 13)
	res, err := CG(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CG did not converge")
	}
	rate := (math.Sqrt(kappa) - 1) / (math.Sqrt(kappa) + 1)
	bound := int(math.Ceil(math.Log(2e8)/math.Log(1/rate))) + 2
	if res.Iterations > bound {
		t.Fatalf("CG took %d iterations, classical bound %d", res.Iterations, bound)
	}
}

// Property: CG solves random SPD systems to the requested tolerance.
func TestPropCGSolvesRandomSPD(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%40 + 5
		a := sparse.RandomSPD(n, 4, seed)
		x := vec.New(n)
		vec.Random(x, seed+1)
		b := vec.New(n)
		a.MulVec(b, x)
		res, err := CG(a, b, Options{Tol: 1e-10, MaxIter: 20 * n})
		if err != nil || !res.Converged {
			return false
		}
		return res.TrueResidualNorm <= 1e-8*vec.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the A-norm of the CG error is non-increasing (the defining
// optimality of CG), checked against the known solution.
func TestPropCGErrorANormMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		n := 30
		a := sparse.RandomSPD(n, 3, seed)
		xTrue := vec.New(n)
		vec.Random(xTrue, seed+9)
		b := vec.New(n)
		a.MulVec(b, xTrue)

		var norms []float64
		tmp := vec.New(n)
		errV := vec.New(n)
		xCur := vec.New(n)
		record := func(x vec.Vector) {
			vec.Sub(errV, x, xTrue)
			a.MulVec(tmp, errV)
			norms = append(norms, vec.Dot(errV, tmp))
		}
		record(xCur)
		// Run CG manually step by step to snapshot iterates.
		r := vec.Clone(b)
		p := vec.Clone(r)
		ap := vec.New(n)
		rr := vec.Dot(r, r)
		for it := 0; it < 15 && rr > 1e-24; it++ {
			a.MulVec(ap, p)
			pap := vec.Dot(p, ap)
			if pap <= 0 {
				return false
			}
			lam := rr / pap
			vec.Axpy(lam, p, xCur)
			vec.Axpy(-lam, ap, r)
			rrN := vec.Dot(r, r)
			vec.Xpay(r, rrN/rr, p)
			rr = rrN
			record(xCur)
		}
		for i := 1; i < len(norms); i++ {
			if norms[i] > norms[i-1]*(1+1e-9)+1e-18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
