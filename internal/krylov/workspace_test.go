package krylov

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

func testSystem(t *testing.T, m int) (*sparse.CSR, vec.Vector) {
	t.Helper()
	a := sparse.Poisson2D(m)
	b := vec.New(a.Dim())
	vec.Random(b, 77)
	return a, b
}

func TestWorkspaceCGMatchesCG(t *testing.T) {
	a, b := testSystem(t, 24)
	ref, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, runtime.GOMAXPROCS(0)} {
		var pool *vec.Pool
		if w > 0 {
			pool = vec.NewPoolMinChunk(w, 32)
		}
		ws := NewWorkspace(a.Dim(), pool)
		res, err := ws.CG(a, b, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: workspace CG did not converge", w)
		}
		if !vec.EqualTol(res.X, ref.X, 1e-6) {
			t.Fatalf("workers=%d: workspace CG solution differs from CG", w)
		}
		if pool != nil {
			pool.Close()
		}
	}
}

func TestWorkspacePCGMatchesPCG(t *testing.T) {
	a, b := testSystem(t, 24)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := PCG(a, jac, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, runtime.GOMAXPROCS(0)} {
		var pool *vec.Pool
		if w > 0 {
			pool = vec.NewPoolMinChunk(w, 32)
		}
		ws := NewWorkspace(a.Dim(), pool)
		res, err := ws.PCG(a, jac, b, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: workspace PCG did not converge", w)
		}
		if !vec.EqualTol(res.X, ref.X, 1e-6) {
			t.Fatalf("workers=%d: workspace PCG solution differs from PCG", w)
		}
		if pool != nil {
			pool.Close()
		}
	}
}

// TestWorkspacePCGZeroAllocs is the acceptance-criterion test: a warm
// Workspace-based PCG solve performs zero heap allocations, pooled or
// serial.
func TestWorkspacePCGZeroAllocs(t *testing.T) {
	a, b := testSystem(t, 24) // n = 576
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Tol: 1e-8}

	for _, tc := range []struct {
		name string
		pool *vec.Pool
	}{
		{"serial", nil},
		{"pooled", vec.NewPoolMinChunk(4, 64)},
	} {
		ws := NewWorkspace(a.Dim(), tc.pool)
		// Warm: spawn workers, build the partition cache.
		if _, err := ws.PCG(a, jac, b, opts); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := ws.PCG(a, jac, b, opts); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: warm workspace PCG solve allocates %v, want 0", tc.name, avg)
		}
		if tc.pool != nil {
			tc.pool.Close()
		}
	}
}

func TestWorkspaceCGZeroAllocs(t *testing.T) {
	a, b := testSystem(t, 24)
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()
	ws := NewWorkspace(a.Dim(), pool)
	opts := Options{Tol: 1e-8}
	if _, err := ws.CG(a, b, opts); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := ws.CG(a, b, opts); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm workspace CG solve allocates %v, want 0", avg)
	}
}

func TestWorkspaceReusedAcrossRHS(t *testing.T) {
	a, _ := testSystem(t, 16)
	n := a.Dim()
	ws := NewWorkspace(n, nil)
	for seed := uint64(1); seed <= 4; seed++ {
		b := vec.New(n)
		vec.Random(b, seed)
		res, err := ws.CG(a, b, Options{Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: not converged", seed)
		}
		// Verify against a fresh solve: stale workspace state must not leak.
		ref, err := CG(a, b, Options{Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if !vec.EqualTol(res.X, ref.X, 1e-6) {
			t.Fatalf("seed %d: reused workspace diverges from fresh solve", seed)
		}
	}
}

func TestWorkspaceDimensionMismatch(t *testing.T) {
	a, b := testSystem(t, 8)
	ws := NewWorkspace(a.Dim()+1, nil)
	if _, err := ws.CG(a, b, Options{}); err == nil {
		t.Fatal("workspace accepted mismatched matrix order")
	}
}

func TestWorkspaceHistoryAndX0(t *testing.T) {
	a, b := testSystem(t, 12)
	ws := NewWorkspace(a.Dim(), nil)
	x0 := vec.New(a.Dim())
	vec.Fill(x0, 0.5)
	res, err := ws.CG(a, b, Options{Tol: 1e-9, X0: x0, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history length %d for %d iterations", len(res.History), res.Iterations)
	}
	if x0[0] != 0.5 {
		t.Fatal("workspace mutated caller's X0")
	}
}
