package krylov

import (
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// CGFused is standard CG with the x/r updates and the (r,r) reduction
// fused into a single memory sweep (vec.FusedCGUpdate), optionally
// parallelized over a worker pool. Mathematically identical to CG; it
// exists because the restructured algorithms batch elementwise work the
// same way on the simulated machine, and the fused kernel is the
// sequential analogue — one pass over memory instead of three. Since
// the engine port, CG itself runs the same fused kernel; CGFused
// remains as the named entry point taking an explicit pool.
func CGFused(a sparse.Matrix, b vec.Vector, pool *vec.Pool, o Options) (*Result, error) {
	o.Pool = pool
	return run(NewCGFusedKernel(), a, b, o)
}
