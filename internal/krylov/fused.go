package krylov

import (
	"fmt"
	"math"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// CGFused is standard CG with the x/r updates and the (r,r) reduction
// fused into a single memory sweep (vec.FusedCGUpdate), optionally
// parallelized over a worker pool. Mathematically identical to CG; it
// exists because the restructured algorithms batch elementwise work the
// same way on the simulated machine, and the fused kernel is the
// sequential analogue — one pass over memory instead of three.
func CGFused(a sparse.Matrix, b vec.Vector, pool *vec.Pool, o Options) (*Result, error) {
	if err := checkSystem(a, b, o); err != nil {
		return nil, err
	}
	n := a.Dim()
	o = o.withDefaults(n)
	res := &Result{X: initialGuess(n, o)}

	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	p := vec.Clone(r)
	ap := vec.New(n)
	var rr float64
	if pool != nil {
		rr = pool.Dot(r, r)
	} else {
		rr = vec.Dot(r, r)
	}
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	record(math.Sqrt(rr))

	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		var pap float64
		if pool != nil {
			pap = pool.Dot(p, ap)
		} else {
			pap = vec.Dot(p, ap)
		}
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if pap <= 0 {
			return res, fmt.Errorf("krylov: curvature %g at iteration %d: %w", pap, res.Iterations, ErrIndefinite)
		}
		lambda := rr / pap

		// The fused sweep: x += lambda p, r -= lambda ap, rr' = (r,r).
		var rrNew float64
		if pool != nil {
			rrNew = pool.FusedCGUpdate(lambda, p, ap, res.X, r)
		} else {
			rrNew = vec.FusedCGUpdate(lambda, p, ap, res.X, r)
		}
		res.Stats.VectorUpdates += 2
		res.Stats.InnerProducts++
		res.Stats.Flops += 6 * int64(n)
		if math.IsNaN(rrNew) || math.IsInf(rrNew, 0) {
			return res, fmt.Errorf("krylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
		}

		alpha := rrNew / rr
		if pool != nil {
			pool.Xpay(r, alpha, p)
		} else {
			vec.Xpay(r, alpha, p)
		}
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		rr = rrNew
		res.Iterations++
		record(math.Sqrt(rr))
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(rr)) {
			break
		}
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.TrueResidualNorm = trueResidual(a, b, res.X, &res.Stats)
	return res, nil
}
