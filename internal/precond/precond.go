// Package precond is a deprecated thin forwarding shim: the
// preconditioners that used to live here (Identity, Jacobi, SSOR, IC0,
// Polynomial) are now the public package vrcg/precond, so external
// callers can pass them to solve.WithPreconditioner without copying
// implementations. All names below are aliases with identical behavior;
// new code should import vrcg/precond directly.
package precond

import (
	"vrcg/precond"
)

// Interfaces.
type (
	Preconditioner = precond.Preconditioner
	PoolApplier    = precond.PoolApplier
)

// Concrete preconditioners.
type (
	Identity   = precond.Identity
	Jacobi     = precond.Jacobi
	SSOR       = precond.SSOR
	Polynomial = precond.Polynomial
	IC0        = precond.IC0
)

// Constructors.
var (
	NewIdentity  = precond.NewIdentity
	NewJacobi    = precond.NewJacobi
	NewSSOR      = precond.NewSSOR
	NewNeumann   = precond.NewNeumann
	NewChebyshev = precond.NewChebyshev
	NewIC0       = precond.NewIC0
)
