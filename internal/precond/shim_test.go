package precond_test

import (
	"testing"

	iprecond "vrcg/internal/precond"
	"vrcg/precond"
	"vrcg/sparse"
)

// TestShimForwards pins the shim contract: the aliases are the public
// types themselves, so values built through either path are
// interchangeable.
func TestShimForwards(t *testing.T) {
	a := sparse.Poisson2D(4)
	jac, err := iprecond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	var p precond.Preconditioner = jac
	if p.Dim() != a.Dim() {
		t.Fatalf("shim Jacobi order %d, want %d", p.Dim(), a.Dim())
	}
	var _ iprecond.PoolApplier = jac
}
