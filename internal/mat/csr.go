package mat

import (
	"fmt"
	"sort"

	"vrcg/internal/vec"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicate (i,j) entries are summed when converting
// to CSR, matching the usual finite-element assembly convention.
type COO struct {
	n    int
	rows []int
	cols []int
	vals []float64
}

// NewCOO returns an empty n x n coordinate builder.
func NewCOO(n int) *COO {
	if n <= 0 {
		panic("mat: NewCOO requires n > 0")
	}
	return &COO{n: n}
}

// Dim returns the order of the matrix being assembled.
func (c *COO) Dim() int { return c.n }

// Add accumulates v into entry (i, j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("mat: COO.Add index (%d,%d) out of range for n=%d", i, j, c.n))
	}
	c.rows = append(c.rows, i)
	c.cols = append(c.cols, j)
	c.vals = append(c.vals, v)
}

// AddSym accumulates v into (i, j) and, when i != j, into (j, i).
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// Len returns the number of accumulated (possibly duplicate) entries.
func (c *COO) Len() int { return len(c.vals) }

// ToCSR converts the accumulated entries into compressed sparse row form,
// summing duplicates and dropping entries that cancel to exactly zero.
func (c *COO) ToCSR() *CSR {
	type key struct{ i, j int }
	merged := make(map[key]float64, len(c.vals))
	for k := range c.vals {
		merged[key{c.rows[k], c.cols[k]}] += c.vals[k]
	}
	rowCount := make([]int, c.n)
	for k, v := range merged {
		if v == 0 {
			delete(merged, k)
			continue
		}
		rowCount[k.i]++
	}
	csr := &CSR{
		n:      c.n,
		rowPtr: make([]int, c.n+1),
	}
	for i := 0; i < c.n; i++ {
		csr.rowPtr[i+1] = csr.rowPtr[i] + rowCount[i]
	}
	nnz := csr.rowPtr[c.n]
	csr.colIdx = make([]int, nnz)
	csr.vals = make([]float64, nnz)
	cursor := make([]int, c.n)
	copy(cursor, csr.rowPtr[:c.n])
	for k, v := range merged {
		p := cursor[k.i]
		csr.colIdx[p] = k.j
		csr.vals[p] = v
		cursor[k.i]++
	}
	csr.sortRows()
	return csr
}

// CSR is a compressed sparse row matrix: for row i, the structural
// nonzeros live at positions rowPtr[i]..rowPtr[i+1] of colIdx/vals,
// with column indices sorted ascending within each row.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// NewCSR builds a CSR matrix directly from its raw arrays. The arrays are
// used without copying; rowPtr must have length n+1 and colIdx/vals must
// have length rowPtr[n]. Rows are sorted during construction.
func NewCSR(n int, rowPtr, colIdx []int, vals []float64) *CSR {
	if len(rowPtr) != n+1 {
		panic(fmt.Sprintf("mat: rowPtr length %d, want %d", len(rowPtr), n+1))
	}
	if len(colIdx) != rowPtr[n] || len(vals) != rowPtr[n] {
		panic("mat: colIdx/vals length disagrees with rowPtr")
	}
	m := &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
	m.sortRows()
	return m
}

func (m *CSR) sortRows() {
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		row := rowView{cols: m.colIdx[lo:hi], vals: m.vals[lo:hi]}
		sort.Sort(row)
	}
}

type rowView struct {
	cols []int
	vals []float64
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// Dim returns the order of the matrix.
func (m *CSR) Dim() int { return m.n }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// MaxRowNonzeros returns the maximum number of stored entries in any row
// (the paper's sparsity parameter d).
func (m *CSR) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < m.n; i++ {
		if nz := m.rowPtr[i+1] - m.rowPtr[i]; nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// At returns A[i,j] (zero if the entry is not stored).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.vals[lo+k]
	}
	return 0
}

// ScanRow calls emit for every stored entry (column, value) of row i in
// ascending column order.
func (m *CSR) ScanRow(i int, emit func(j int, v float64)) {
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		emit(m.colIdx[p], m.vals[p])
	}
}

// Diag extracts the diagonal into dst (length n). Missing diagonal
// entries are zero.
func (m *CSR) Diag(dst vec.Vector) {
	if dst.Len() != m.n {
		panic("mat: Diag dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		dst[i] = m.At(i, i)
	}
}

// MulVec computes dst = A*x.
func (m *CSR) MulVec(dst, x vec.Vector) {
	checkMul(m, dst, x)
	for i := 0; i < m.n; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[i] = s
	}
}

// IsSymmetric reports whether every stored entry (i,j) has a matching
// (j,i) entry equal within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.colIdx[p]
			if diff := m.vals[p] - m.At(j, i); diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}

// IsDiagonallyDominant reports whether |a_ii| >= sum_{j!=i} |a_ij| for
// every row, a convenient sufficient condition when generating random
// SPD test matrices.
func (m *CSR) IsDiagonallyDominant() bool {
	for i := 0; i < m.n; i++ {
		var off, diag float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			v := m.vals[p]
			if v < 0 {
				v = -v
			}
			if m.colIdx[p] == i {
				diag = v
			} else {
				off += v
			}
		}
		if diag < off {
			return false
		}
	}
	return true
}

// ToDense expands the matrix to dense form (intended for small n in tests).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.n)
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.Set(i, m.colIdx[p], m.vals[p])
		}
	}
	return d
}

var (
	_ Matrix = (*CSR)(nil)
	_ Sparse = (*CSR)(nil)
)
