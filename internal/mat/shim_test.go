package mat

import (
	"errors"
	"testing"

	"vrcg/sparse"
)

// TestShimForwards: the shim's aliases are the sparse package's types
// and values, not copies — a matrix built through the shim is usable
// anywhere a sparse type is expected, and the error sentinel is
// errors.Is-compatible across both import paths.
func TestShimForwards(t *testing.T) {
	var a *sparse.CSR = Poisson2D(4)
	if a.Dim() != 16 {
		t.Fatalf("shim Poisson2D dim = %d, want 16", a.Dim())
	}
	var _ sparse.Matrix = a
	var _ Matrix = a
	if !errors.Is(ErrDim, sparse.ErrDim) {
		t.Fatal("shim ErrDim is not the sparse sentinel")
	}
	if Stencil2D5 != sparse.Stencil2D5 {
		t.Fatal("shim stencil kinds diverge")
	}
}
