// Package mat is a deprecated thin forwarding shim: every matrix type,
// generator, and utility that used to live here has been promoted to
// the public package vrcg/sparse so external callers can build and load
// operators. All names below are aliases or forwarders with identical
// behavior; new code should import vrcg/sparse directly. See
// internal/core/README.md for the migration table. The shim will be
// removed once nothing in-tree or in-flight references it.
package mat

import (
	"vrcg/sparse"
)

// Interfaces and concrete types.
type (
	Matrix      = sparse.Matrix
	Sparse      = sparse.Sparse
	PoolMulVec  = sparse.PoolMulVec
	Dense       = sparse.Dense
	COO         = sparse.COO
	CSR         = sparse.CSR
	DIA         = sparse.DIA
	Stencil     = sparse.Stencil
	StencilKind = sparse.StencilKind
	Edge        = sparse.Edge
)

// Stencil kinds.
const (
	Stencil1D3  = sparse.Stencil1D3
	Stencil2D5  = sparse.Stencil2D5
	Stencil2D9  = sparse.Stencil2D9
	Stencil3D7  = sparse.Stencil3D7
	Stencil3D27 = sparse.Stencil3D27
)

// ErrDim reports a dimension mismatch between an operator and a vector.
var ErrDim = sparse.ErrDim

// Constructors, generators, I/O, reordering, and spectral utilities.
var (
	NewDense     = sparse.NewDense
	NewDenseFrom = sparse.NewDenseFrom
	NewCOO       = sparse.NewCOO
	NewCSR       = sparse.NewCSR
	NewDIA       = sparse.NewDIA
	NewStencil   = sparse.NewStencil
	PooledMulVec = sparse.PooledMulVec

	Poisson1D          = sparse.Poisson1D
	Poisson2D          = sparse.Poisson2D
	Poisson3D          = sparse.Poisson3D
	TridiagToeplitz    = sparse.TridiagToeplitz
	RandomSPD          = sparse.RandomSPD
	GraphLaplacian     = sparse.GraphLaplacian
	RingLaplacian      = sparse.RingLaplacian
	DiagonalMatrix     = sparse.DiagonalMatrix
	PrescribedSpectrum = sparse.PrescribedSpectrum
	PowerApply         = sparse.PowerApply

	VarCoeffPoisson2D    = sparse.VarCoeffPoisson2D
	AnisotropicPoisson2D = sparse.AnisotropicPoisson2D
	JumpCoefficient      = sparse.JumpCoefficient

	ReadMatrixMarket        = sparse.ReadMatrixMarket
	WriteMatrixMarket       = sparse.WriteMatrixMarket
	ReadMatrixMarketVector  = sparse.ReadMatrixMarketVector
	WriteMatrixMarketVector = sparse.WriteMatrixMarketVector

	RCMOrder         = sparse.RCMOrder
	PermuteSymmetric = sparse.PermuteSymmetric
	PermuteVector    = sparse.PermuteVector
	UnpermuteVector  = sparse.UnpermuteVector
	Bandwidth        = sparse.Bandwidth

	Gershgorin        = sparse.Gershgorin
	PowerMethod       = sparse.PowerMethod
	Lanczos           = sparse.Lanczos
	ConditionEstimate = sparse.ConditionEstimate
	SymDiagScaled     = sparse.SymDiagScaled
)
