// Package mat provides the sparse (and small dense) symmetric positive
// definite matrices that conjugate gradient iteration consumes: CSR, COO,
// DIA and matrix-free stencil operators, plus generators for the model
// problems the paper's argument is about (large sparse systems with at
// most d nonzeros per row).
package mat

import (
	"errors"
	"fmt"

	"vrcg/internal/vec"
)

// Matrix is a square linear operator. All CG variants in this repository
// need only matrix-vector products, so operators may be matrix-free.
type Matrix interface {
	// Dim returns the order n of the (n x n) operator.
	Dim() int
	// MulVec computes dst = A*x. dst and x must have length Dim and must
	// not alias each other.
	MulVec(dst, x vec.Vector)
}

// Sparse is a Matrix with explicit sparsity information, used by the
// complexity model: the paper's parallel-time bound depends on d, the
// maximum number of nonzeros in any row.
type Sparse interface {
	Matrix
	// MaxRowNonzeros returns d, the maximum number of structural
	// nonzeros in any row.
	MaxRowNonzeros() int
	// NNZ returns the total number of structural nonzeros.
	NNZ() int
}

// PoolMulVec is a Matrix that also offers a worker-pool-parallel
// matrix–vector product. CSR implements it with an nnz-balanced row
// partition; solvers route their hot-path products through PooledMulVec
// so any operator that can parallelize, does.
type PoolMulVec interface {
	Matrix
	// MulVecPool computes dst = A*x over the pool, falling back to the
	// serial product when parallelism is not profitable.
	MulVecPool(pool *vec.Pool, dst, x vec.Vector)
}

// PooledMulVec computes dst = a*x through the pool when the operator
// supports it (and pool is non-nil), and serially otherwise. It is the
// single dispatch point the solver hot paths use.
func PooledMulVec(a Matrix, pool *vec.Pool, dst, x vec.Vector) {
	if pool != nil {
		if pm, ok := a.(PoolMulVec); ok {
			pm.MulVecPool(pool, dst, x)
			return
		}
	}
	a.MulVec(dst, x)
}

// ErrDim reports a dimension mismatch between an operator and a vector.
var ErrDim = errors.New("mat: dimension mismatch")

func checkMul(a Matrix, dst, x vec.Vector) {
	if dst.Len() != a.Dim() || x.Len() != a.Dim() {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: A is %d, dst %d, x %d",
			a.Dim(), dst.Len(), x.Len()))
	}
}

// Dense is a dense square matrix stored row-major. It exists for small
// reference problems and for validating sparse kernels against a direct
// implementation; production problems use CSR/DIA/stencil operators.
type Dense struct {
	n    int
	data []float64 // row-major n*n
}

// NewDense returns a zero dense n x n matrix.
func NewDense(n int) *Dense {
	if n <= 0 {
		panic("mat: NewDense requires n > 0")
	}
	return &Dense{n: n, data: make([]float64, n*n)}
}

// NewDenseFrom builds a dense matrix from rows; all rows must have length n.
func NewDenseFrom(rows [][]float64) *Dense {
	n := len(rows)
	d := NewDense(n)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("mat: row %d has %d entries, want %d", i, len(row), n))
		}
		copy(d.data[i*n:(i+1)*n], row)
	}
	return d
}

// Dim returns the order of the matrix.
func (d *Dense) Dim() int { return d.n }

// At returns A[i,j].
func (d *Dense) At(i, j int) float64 { return d.data[i*d.n+j] }

// Set assigns A[i,j] = v.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.n+j] = v }

// MulVec computes dst = A*x.
func (d *Dense) MulVec(dst, x vec.Vector) {
	checkMul(d, dst, x)
	n := d.n
	for i := 0; i < n; i++ {
		row := d.data[i*n : (i+1)*n]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// MaxRowNonzeros counts the densest row's structural nonzeros.
func (d *Dense) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < d.n; i++ {
		nz := 0
		for j := 0; j < d.n; j++ {
			if d.At(i, j) != 0 {
				nz++
			}
		}
		if nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// NNZ counts all structural nonzeros.
func (d *Dense) NNZ() int {
	nnz := 0
	for _, v := range d.data {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// IsSymmetric reports whether A equals its transpose within tol.
func (d *Dense) IsSymmetric(tol float64) bool {
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if diff := d.At(i, j) - d.At(j, i); diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}

var (
	_ Matrix = (*Dense)(nil)
	_ Sparse = (*Dense)(nil)
)
