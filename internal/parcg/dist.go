// Package parcg expresses conjugate gradient algorithms as distributed
// programs over the simulated machine (package machine) with hand-rolled
// collectives (package collective). All vector data is real — the
// solvers produce correct solutions — while every operation charges its
// simulated cost, so a single run yields both the answer and the
// parallel time the paper reasons about.
package parcg

import (
	"fmt"

	"vrcg/internal/machine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Dist is an n-vector block-partitioned across P processors: processor i
// owns the contiguous index range [Lo(i), Hi(i)).
type Dist struct {
	n     int
	p     int
	parts [][]float64
}

// NewDist returns a zero distributed vector of length n over p parts.
func NewDist(n, p int) *Dist {
	if n < 1 || p < 1 {
		panic(fmt.Sprintf("parcg: NewDist(%d, %d)", n, p))
	}
	d := &Dist{n: n, p: p, parts: make([][]float64, p)}
	for i := 0; i < p; i++ {
		d.parts[i] = make([]float64, d.Hi(i)-d.Lo(i))
	}
	return d
}

// Scatter distributes a full vector.
func Scatter(x vec.Vector, p int) *Dist {
	d := NewDist(len(x), p)
	for i := 0; i < p; i++ {
		copy(d.parts[i], x[d.Lo(i):d.Hi(i)])
	}
	return d
}

// Len returns the global length.
func (d *Dist) Len() int { return d.n }

// Parts returns the number of blocks.
func (d *Dist) Parts() int { return d.p }

// Lo returns the first global index owned by processor i.
func (d *Dist) Lo(i int) int { return i * d.n / d.p }

// Hi returns one past the last global index owned by processor i.
func (d *Dist) Hi(i int) int { return (i + 1) * d.n / d.p }

// Owner returns the processor owning global index g.
func (d *Dist) Owner(g int) int {
	// Inverse of the block formula; scan is fine for the block count in
	// play, but a direct computation keeps it O(1).
	i := g * d.p / d.n
	for d.Lo(i) > g {
		i--
	}
	for d.Hi(i) <= g {
		i++
	}
	return i
}

// At returns the globally indexed component (test/diagnostic use).
func (d *Dist) At(g int) float64 {
	i := d.Owner(g)
	return d.parts[i][g-d.Lo(i)]
}

// Gather reassembles the full vector.
func (d *Dist) Gather() vec.Vector {
	out := vec.New(d.n)
	for i := 0; i < d.p; i++ {
		copy(out[d.Lo(i):d.Hi(i)], d.parts[i])
	}
	return out
}

// Clone returns an independent copy.
func (d *Dist) Clone() *Dist {
	c := NewDist(d.n, d.p)
	for i := range d.parts {
		copy(c.parts[i], d.parts[i])
	}
	return c
}

// CopyFrom copies src (same shape) into d, charging the elementwise cost.
func (d *Dist) CopyFrom(m *machine.Machine, src *Dist) {
	d.mustMatch(src)
	for i := range d.parts {
		copy(d.parts[i], src.parts[i])
		m.Compute(i, len(d.parts[i]))
	}
}

func (d *Dist) mustMatch(o *Dist) {
	if d.n != o.n || d.p != o.p {
		panic(fmt.Sprintf("parcg: shape mismatch (%d/%d vs %d/%d)", d.n, d.p, o.n, o.p))
	}
}

// Axpy computes y += a*x blockwise, charging 2 flops per component.
func Axpy(m *machine.Machine, a float64, x, y *Dist) {
	x.mustMatch(y)
	for i := range y.parts {
		xp, yp := x.parts[i], y.parts[i]
		for j := range yp {
			yp[j] += a * xp[j]
		}
		m.Compute(i, 2*len(yp))
	}
}

// Xpay computes y = x + a*y blockwise.
func Xpay(m *machine.Machine, x *Dist, a float64, y *Dist) {
	x.mustMatch(y)
	for i := range y.parts {
		xp, yp := x.parts[i], y.parts[i]
		for j := range yp {
			yp[j] = xp[j] + a*yp[j]
		}
		m.Compute(i, 2*len(yp))
	}
}

// Scale computes x *= a blockwise.
func Scale(m *machine.Machine, a float64, x *Dist) {
	for i := range x.parts {
		xp := x.parts[i]
		for j := range xp {
			xp[j] *= a
		}
		m.Compute(i, len(xp))
	}
}

// Sub computes dst = x - y blockwise.
func Sub(m *machine.Machine, dst, x, y *Dist) {
	dst.mustMatch(x)
	dst.mustMatch(y)
	for i := range dst.parts {
		dp, xp, yp := dst.parts[i], x.parts[i], y.parts[i]
		for j := range dp {
			dp[j] = xp[j] - yp[j]
		}
		m.Compute(i, len(dp))
	}
}

// LocalDotPartials returns the per-processor partial sums of <x, y>,
// charging the multiply-add sweep. Combine with collective.AllreduceSum
// (blocking) or collective.IAllreduceVec (pipelined).
func LocalDotPartials(m *machine.Machine, x, y *Dist) []float64 {
	x.mustMatch(y)
	out := make([]float64, x.p)
	for i := range x.parts {
		var s float64
		xp, yp := x.parts[i], y.parts[i]
		for j := range xp {
			s += xp[j] * yp[j]
		}
		out[i] = s
		m.Compute(i, 2*len(xp))
	}
	return out
}

// DistMatrix is a CSR operator with rows partitioned to match a Dist
// layout. Construction precomputes the halo: for each processor pair
// (dst, src), the global column indices dst needs from src's block
// during a matvec. For the stencil operators the halo is the familiar
// ghost layer; for general CSR it is whatever the sparsity demands.
type DistMatrix struct {
	a    *sparse.CSR
	p    int
	lay  *Dist // layout prototype (no data of interest)
	need [][][]int
	// haloWords[dst][src] = len(need[dst][src]).
}

// NewDistMatrix partitions a over p processors by contiguous row blocks.
func NewDistMatrix(a *sparse.CSR, p int) *DistMatrix {
	if p < 1 {
		panic("parcg: NewDistMatrix needs p >= 1")
	}
	dm := &DistMatrix{a: a, p: p, lay: NewDist(a.Dim(), p)}
	dm.need = make([][][]int, p)
	for dst := 0; dst < p; dst++ {
		seen := map[int]bool{}
		needFrom := make([][]int, p)
		for r := dm.lay.Lo(dst); r < dm.lay.Hi(dst); r++ {
			a.ScanRow(r, func(c int, _ float64) {
				if c < dm.lay.Lo(dst) || c >= dm.lay.Hi(dst) {
					if !seen[c] {
						seen[c] = true
						src := dm.lay.Owner(c)
						needFrom[src] = append(needFrom[src], c)
					}
				}
			})
		}
		dm.need[dst] = needFrom
	}
	return dm
}

// Dim returns the operator order.
func (dm *DistMatrix) Dim() int { return dm.a.Dim() }

// P returns the processor count of the partition.
func (dm *DistMatrix) P() int { return dm.p }

// GershgorinBound returns an upper bound on the spectral radius of the
// operator: the maximum absolute row sum. The restructured solver scales
// the system by this bound so Krylov power magnitudes stay O(1) — the
// base inner products span matrix powers up to 4k, and without scaling
// their magnitude spread of ||A||^(4k) destroys the scalar contractions
// in double precision.
func (dm *DistMatrix) GershgorinBound() float64 {
	bound := 0.0
	for i := 0; i < dm.a.Dim(); i++ {
		row := 0.0
		dm.a.ScanRow(i, func(_ int, v float64) {
			if v < 0 {
				v = -v
			}
			row += v
		})
		if row > bound {
			bound = row
		}
	}
	return bound
}

// HaloDegree returns the largest number of distinct processors any one
// processor must receive from during a matvec — the per-iteration
// message count that multiplies the latency term.
func (dm *DistMatrix) HaloDegree() int {
	mx := 0
	for dst := range dm.need {
		cnt := 0
		for src := range dm.need[dst] {
			if len(dm.need[dst][src]) > 0 {
				cnt++
			}
		}
		if cnt > mx {
			mx = cnt
		}
	}
	return mx
}

// TotalHaloWords returns the total ghost-layer transfer volume of one
// matvec across all processors.
func (dm *DistMatrix) TotalHaloWords() int {
	total := 0
	for dst := range dm.need {
		for src := range dm.need[dst] {
			total += len(dm.need[dst][src])
		}
	}
	return total
}

// MaxHaloWords returns the largest single halo message in words.
func (dm *DistMatrix) MaxHaloWords() int {
	mx := 0
	for dst := range dm.need {
		for src := range dm.need[dst] {
			if l := len(dm.need[dst][src]); l > mx {
				mx = l
			}
		}
	}
	return mx
}

// MulVec computes dst = A*x on the machine: halo exchange (one message
// per needed processor pair) followed by the local sparse row sweeps
// (2 flops per stored nonzero).
func (dm *DistMatrix) MulVec(m *machine.Machine, dst, x *Dist) {
	if m.P() != dm.p {
		panic("parcg: machine/partition processor count mismatch")
	}
	x.mustMatch(dst)
	// Halo exchange: every ghost-layer message is posted simultaneously.
	halo := make([]map[int]float64, dm.p)
	for i := range halo {
		halo[i] = map[int]float64{}
	}
	var msgs []machine.Message
	for dstProc := 0; dstProc < dm.p; dstProc++ {
		for srcProc := 0; srcProc < dm.p; srcProc++ {
			idxs := dm.need[dstProc][srcProc]
			if len(idxs) == 0 {
				continue
			}
			msgs = append(msgs, machine.Message{From: srcProc, To: dstProc, Words: len(idxs)})
			for _, g := range idxs {
				halo[dstProc][g] = x.At(g)
			}
		}
	}
	m.SendPhase(msgs)
	// Local compute.
	for proc := 0; proc < dm.p; proc++ {
		lo, hi := dm.lay.Lo(proc), dm.lay.Hi(proc)
		nnz := 0
		for r := lo; r < hi; r++ {
			var s float64
			dm.a.ScanRow(r, func(c int, v float64) {
				nnz++
				var xv float64
				if c >= lo && c < hi {
					xv = x.parts[proc][c-lo]
				} else {
					xv = halo[proc][c]
				}
				s += v * xv
			})
			dst.parts[proc][r-lo] = s
		}
		m.Compute(proc, 2*nnz)
	}
}
