package parcg

import (
	"vrcg/internal/collective"
	"vrcg/internal/engine"
	"vrcg/internal/machine"
	"vrcg/sparse"
)

// Cost-model replay: the instrumented machine mode of the parcg family.
// The real-parallel kernels (kernels.go) do the numerics; when a solve
// asks for the simulated Clocks/Machine trajectory (WithMachineConfig),
// the adapter replays the machine solver's exact charge sequence — halo
// exchanges, local sweeps, blocking and non-blocking collectives — for
// the iteration count the real solve performed. Every machine charge is
// data-independent (only time is simulated), so replaying on zero
// vectors reproduces the clocks the retired simulated solvers produced,
// now layered as a monitor instead of being the execution engine.
//
// The replay models the clean pipelined trajectory: drift fallbacks and
// emergency re-anchors (data-dependent recovery paths) are not
// replayed.

// Replay charges the machine-model cost schedule of the named parcg
// method for the observed result: iters iterations on matrix a over
// procs processors, with res.Converged selecting the early-exit shape.
// It fills res.Clocks and res.Machine in place.
func Replay(cfg machine.Config, a *sparse.CSR, method string, blocking bool, res *engine.Result) {
	cfg.P = maxProcs(cfg.P, a.Dim())
	m := machine.New(cfg)
	dm := NewDistMatrix(a, cfg.P)
	res.Clocks = res.Clocks[:0]
	switch method {
	case "parcg-cg":
		replayCG(m, dm, res)
	case "parcg-pipe":
		replayPipe(m, dm, res)
	default:
		replayVRCG(m, dm, blocking, res)
	}
	res.Machine = m.Stats()
}

func maxProcs(p, n int) int {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// replayCG mirrors CG in algos.go: per iteration one distributed matvec
// and two blocking allreduce fan-ins, plus the start-up (r,r).
func replayCG(m *machine.Machine, dm *DistMatrix, res *engine.Result) {
	n, p := dm.Dim(), dm.P()
	x, r, pv, ap := NewDist(n, p), NewDist(n, p), NewDist(n, p), NewDist(n, p)

	collective.AllreduceSum(m, LocalDotPartials(m, r, r))
	for it := 0; it < res.Iterations; it++ {
		dm.MulVec(m, ap, pv)
		collective.AllreduceSum(m, LocalDotPartials(m, pv, ap))
		scalarAll(m, 1)
		Axpy(m, 0, pv, x)
		Axpy(m, 0, ap, r)
		collective.AllreduceSum(m, LocalDotPartials(m, r, r))
		scalarAll(m, 1)
		Xpay(m, r, 0, pv)
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
}

// replayPipe mirrors PipeCG in algos.go: one matvec per iteration with
// the fused (gamma, delta) allreduce in flight behind it. A converged
// solve breaks right after the final wait, charging one extra
// matvec+wait beyond the counted iterations, exactly like the original
// loop.
func replayPipe(m *machine.Machine, dm *DistMatrix, res *engine.Result) {
	n, p := dm.Dim(), dm.P()
	x, r, w := NewDist(n, p), NewDist(n, p), NewDist(n, p)
	pv, s, q, nv := NewDist(n, p), NewDist(n, p), NewDist(n, p), NewDist(n, p)

	dm.MulVec(m, w, r)
	issue := func() *collective.Handle {
		gp := LocalDotPartials(m, r, r)
		dp := LocalDotPartials(m, w, r)
		contrib := make([][]float64, p)
		for i := 0; i < p; i++ {
			contrib[i] = []float64{gp[i], dp[i]}
		}
		return collective.IAllreduceVec(m, contrib)
	}
	h := issue()
	for it := 0; it < res.Iterations; it++ {
		dm.MulVec(m, nv, w)
		h.WaitAll(m)
		scalarAll(m, 4)
		Xpay(m, r, 0, pv)
		Xpay(m, w, 0, s)
		Xpay(m, nv, 0, q)
		Axpy(m, 0, pv, x)
		Axpy(m, 0, s, r)
		Axpy(m, 0, q, w)
		h = issue()
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
	if res.Converged {
		dm.MulVec(m, nv, w)
		h.WaitAll(m)
	}
}

// replayVRCG mirrors VRCG in vrcg.go: the anchored look-ahead schedule
// with one batched non-blocking base reduction per k iterations. The
// coefficient degrees (which set the replicated contraction flops) are
// advanced with the same recurrences the real tracks follow.
func replayVRCG(m *machine.Machine, dm *DistMatrix, blocking bool, res *engine.Result) {
	n, p := dm.Dim(), dm.P()
	k := res.K
	if k < 1 {
		k = 1
	}

	x := NewDist(n, p)
	R := make([]*Dist, 2*k+1)
	P := make([]*Dist, 2*k+2)
	for i := range R {
		R[i] = NewDist(n, p)
	}
	for i := range P {
		P[i] = NewDist(n, p)
	}
	mulScaled := func(dst, src *Dist) {
		dm.MulVec(m, dst, src)
		Scale(m, 1, dst)
	}

	// Start-up: Gershgorin bound, family construction, anchor 0.
	m.ComputeAll(2 * dm.a.NNZ() / p)
	collective.AllreduceSum(m, make([]float64, p))
	Scale(m, 1, R[0])
	for i := 1; i <= 2*k; i++ {
		mulScaled(R[i], R[i-1])
	}
	mulScaled(P[2*k+1], P[2*k])

	issueBase := func() *collective.Handle {
		width := 3 * (4*k + 1)
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = make([]float64, 0, width)
		}
		appendDots := func(xs, ys []*Dist, count int) {
			for s := 0; s < count; s++ {
				a := s / 2
				if a >= len(xs) {
					a = len(xs) - 1
				}
				partials := LocalDotPartials(m, xs[a], ys[s-a])
				for i := range contrib {
					contrib[i] = append(contrib[i], partials[i])
				}
			}
		}
		appendDots(R, R, 4*k+1)
		appendDots(R, P, 4*k+1)
		appendDots(P, P, 4*k+1)
		return collective.IAllreduceVec(m, contrib)
	}
	contractCost := func(q int) int { return 6 * (q + 1) * (q + 1) }

	h := issueBase()
	h.WaitAll(m)

	// Coefficient degrees of the active (ra, pa) and building (rb, pb)
	// tracks, advanced like core.StepCGR/StepCGP advance them.
	ra, pa, rb, pb := 0, 0, 0, 0
	promote := func() {
		h.WaitAll(m)
		ra, pa = rb, pb
		h = issueBase()
		if blocking {
			h.WaitAll(m)
		}
		rb, pb = 0, 0
	}
	for it := 0; it < res.Iterations; it++ {
		if it > 0 && it%k == 0 {
			promote()
		}
		scalarAll(m, contractCost(pa)+1)
		Axpy(m, 0, P[0], x)
		for i := 0; i <= 2*k; i++ {
			Axpy(m, 0, P[i+1], R[i])
		}
		raNew := ra
		if pa+1 > raNew {
			raNew = pa + 1
		}
		scalarAll(m, contractCost(raNew))
		for i := 0; i <= 2*k; i++ {
			Xpay(m, R[i], 0, P[i])
		}
		mulScaled(P[2*k+1], P[2*k])
		ra = raNew
		if ra > pa {
			pa = ra
		}
		if pb+1 > rb {
			rb = pb + 1
		}
		if rb > pb {
			pb = rb
		}
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
	// A convergence exit at an anchor boundary promotes before breaking.
	if res.Converged && res.Iterations > 0 && res.Iterations%k == 0 {
		promote()
	}
	// Final direct (r,r) confirmation.
	collective.AllreduceSum(m, LocalDotPartials(m, R[0], R[0]))
}
