package parcg

import (
	"fmt"
	"math"

	"vrcg/internal/collective"
	"vrcg/internal/core"
	"vrcg/internal/krylov"
	"vrcg/internal/machine"
	"vrcg/sparse"
)

// VROptions configures the distributed restructured CG.
type VROptions struct {
	Options
	// K is the look-ahead parameter (>= 1). The paper's recommendation
	// is K = log2(N) (more precisely log2(P) on a P-processor machine:
	// enough look-ahead to cover the reduction fan-in).
	K int
	// Blocking disables the pipelined (non-blocking) base reductions:
	// each anchor's batched reduction is waited for at issue. This
	// reproduces the timing semantics of s-step CG (Chronopoulos–Gear),
	// which amortizes reductions across a block but does not hide them —
	// the contrast the paper's Figure 1 pipelining provides.
	Blocking bool
	// NoScaling disables the Gershgorin spectral scaling (ablation).
	// Without it the base Gram sequences span ||A||^(4k) in magnitude
	// and the contractions break down for k beyond ~2 unless ||A|| ~ 1.
	NoScaling bool
}

// AutoK estimates the look-ahead parameter that just hides the base
// reduction behind the iteration pipeline on this machine/problem pair —
// the constructive version of the paper's "choose k = log N"
// prescription. It compares the batched-allreduce completion time
// against the per-iteration local work (halo exchange + matvec sweep +
// family updates) for candidate k and returns the smallest k whose
// block duration covers the reduction, clamped to [1, maxK]. Larger k
// costs numerically (monomial-basis drift grows with k), so smallest-
// sufficient is the right objective.
func AutoK(cfg machine.Config, dm *DistMatrix, maxK int) int {
	if maxK < 1 {
		maxK = 1
	}
	p := dm.P()
	localN := dm.Dim() / p
	if localN < 1 {
		localN = 1
	}
	haloMsgs := 0
	for dst := 0; dst < p; dst++ {
		cnt := 0
		for src := 0; src < p; src++ {
			if len(dm.need[dst][src]) > 0 {
				cnt++
			}
		}
		if cnt > haloMsgs {
			haloMsgs = cnt
		}
	}
	rounds := 0
	for v := 1; v < p; v <<= 1 {
		rounds++
	}
	for k := 1; k <= maxK; k++ {
		width := 3 * (4*k + 1)
		reduction := float64(rounds) * (cfg.Alpha + cfg.Beta*float64(width))
		perIter := float64(haloMsgs)*cfg.Alpha + // halo latency
			cfg.FlopTime*float64(2*dm.a.NNZ()/p) + // matvec sweep
			cfg.FlopTime*float64((4*k+2)*2*localN) // family updates
		if float64(k)*perIter >= reduction {
			return k
		}
	}
	return maxK
}

// VRCG runs the paper's restructured conjugate gradient on the machine,
// in the anchored equation-(*) form: every k iterations a batch of base
// inner products (the Gram sequences Mu, Nu, Omega of the current
// residual/direction Krylov families) is issued as ONE non-blocking
// batched allreduce; during the following k iterations all step scalars
// are contractions of the previous anchor's (by then delivered) base
// products with coefficient polynomials stepped by the CG recurrences —
// scalar work with no global communication. One distributed matvec per
// iteration maintains the top family power (paper §5).
//
// With k >= the reduction latency in iteration units, no processor ever
// waits on a reduction: the log(P) fan-in disappears from the critical
// path, the paper's headline result.
func VRCG(m *machine.Machine, dm *DistMatrix, b *Dist, o VROptions) (*Result, error) {
	n := dm.Dim()
	o.Options = withDefaults(o.Options, n)
	p := dm.P()
	if m.P() != p || b.Parts() != p {
		return nil, fmt.Errorf("parcg: machine P=%d but partition P=%d, rhs parts=%d: %w",
			m.P(), p, b.Parts(), sparse.ErrDim)
	}
	k := o.K
	if k < 1 {
		return nil, fmt.Errorf("parcg: VRCG needs K >= 1, got %d: %w", k, krylov.ErrBadOption)
	}

	// Spectral scaling: internally solve (A/s) x = b/s with s the
	// Gershgorin bound, so the Gram sequences (powers up to A^4k) keep
	// O(1) magnitudes and the contractions stay accurate. The solution
	// x is unchanged. The bound is one pass over local rows plus a max
	// allreduce, charged at start-up.
	scale := dm.GershgorinBound()
	if scale <= 0 || o.NoScaling {
		scale = 1
	}
	inv := 1 / scale
	m.ComputeAll(2 * dm.a.NNZ() / p)
	collective.AllreduceSum(m, make([]float64, p)) // the max-allreduce
	mulScaled := func(dst, src *Dist) {
		dm.MulVec(m, dst, src)
		Scale(m, inv, dst)
	}

	// Krylov families: R[i] = (A/s)^i r for i = 0..2k, P[i] = (A/s)^i p
	// for i = 0..2k+1, wide enough to produce Gram indices up to 4k.
	x := NewDist(n, p)
	R := make([]*Dist, 2*k+1)
	P := make([]*Dist, 2*k+2)
	R[0] = b.Clone() // x0 = 0 so r0 = b (scaled below)
	Scale(m, inv, R[0])
	for i := 1; i <= 2*k; i++ {
		R[i] = NewDist(n, p)
		mulScaled(R[i], R[i-1])
	}
	for i := 0; i <= 2*k; i++ {
		P[i] = R[i].Clone()
	}
	P[2*k+1] = NewDist(n, p)
	mulScaled(P[2*k+1], P[2*k])

	issueBase := func() *collective.Handle {
		width := 3 * (4*k + 1)
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = make([]float64, 0, width)
		}
		appendDots := func(xs, ys []*Dist, count int) {
			for s := 0; s < count; s++ {
				a := s / 2
				if a >= len(xs) {
					a = len(xs) - 1
				}
				bIdx := s - a
				partials := LocalDotPartials(m, xs[a], ys[bIdx])
				for i := range contrib {
					contrib[i] = append(contrib[i], partials[i])
				}
			}
		}
		appendDots(R, R, 4*k+1) // Mu[0..4k]
		appendDots(R, P, 4*k+1) // Nu[0..4k]
		appendDots(P, P, 4*k+1) // Omega[0..4k]
		return collective.IAllreduceVec(m, contrib)
	}
	gramFrom := func(h *collective.Handle) core.BaseGram {
		vals := h.WaitAll(m)[0]
		w := 4*k + 1
		return core.BaseGram{Mu: vals[0:w], Nu: vals[w : 2*w], Omega: vals[2*w : 3*w]}
	}

	// Anchor 0: issue and (start-up) wait immediately.
	buildingHandle := issueBase()
	activeGram := gramFrom(buildingHandle)
	cra, cpa := core.NewCoeffR(), core.NewCoeffP()
	crb, cpb := core.NewCoeffR(), core.NewCoeffP()

	contractCost := func(q int) int { return 6 * (q + 1) * (q + 1) }

	rr := activeGram.Contract(cra, cra, 0)
	bnorm := math.Sqrt(math.Max(rr, 0))
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	res := &Result{}
	for res.Iterations < o.MaxIter {
		nIter := res.Iterations
		if nIter > 0 && nIter%k == 0 {
			// Promote the building anchor (its reduction has had k
			// iterations to complete) and issue the next one.
			activeGram = gramFrom(buildingHandle)
			cra, cpa = crb, cpb
			buildingHandle = issueBase()
			if o.Blocking {
				// s-step semantics: wait at issue, no overlap.
				buildingHandle.WaitAll(m)
			}
			crb, cpb = core.NewCoeffR(), core.NewCoeffP()
			rr = activeGram.Contract(cra, cra, 0)
		}

		if math.Sqrt(math.Max(rr, 0)) <= threshold {
			res.Converged = true
			break
		}
		fellBack := false
		pap := activeGram.Contract(cpa, cpa, 1)
		scalarAll(m, contractCost(cpa.Degree())+1)
		if pap <= 0 || math.IsNaN(pap) {
			fellBack = true
			// Contraction drift (the monomial-basis conditioning problem
			// successor methods addressed with better bases): emergency
			// re-anchor — refresh the families with true matvecs,
			// recompute the base products (blocking), restart the
			// coefficient tracks — then retry.
			for i := 1; i <= 2*k; i++ {
				mulScaled(R[i], R[i-1])
			}
			for i := 1; i <= 2*k+1; i++ {
				mulScaled(P[i], P[i-1])
			}
			buildingHandle = issueBase()
			activeGram = gramFrom(buildingHandle)
			cra, cpa = core.NewCoeffR(), core.NewCoeffP()
			crb, cpb = core.NewCoeffR(), core.NewCoeffP()
			rr = activeGram.Mu[0]
			pap = activeGram.Omega[1]
			if math.Sqrt(math.Max(rr, 0)) <= threshold {
				res.Converged = true
				break
			}
			if pap <= 0 || math.IsNaN(pap) {
				return res, fmt.Errorf("parcg: (p,Ap) = %g at iteration %d: %w",
					pap, nIter, krylov.ErrIndefinite)
			}
		}
		lambda := rr / pap

		// Iterate and residual-family updates.
		Axpy(m, lambda, P[0], x)
		for i := 0; i <= 2*k; i++ {
			Axpy(m, -lambda, P[i+1], R[i])
		}

		// Coefficient half-step and alpha via contraction.
		craNew := core.StepCGR(cra, cpa, lambda)
		rrNew := activeGram.Contract(craNew, craNew, 0)
		scalarAll(m, contractCost(craNew.Degree()))
		if fellBack || rrNew <= 0 || math.IsNaN(rrNew) {
			rrNew = sumAll(collective.AllreduceSum(m, LocalDotPartials(m, R[0], R[0])))
		}
		if rr == 0 {
			return res, fmt.Errorf("parcg: (r,r) vanished at iteration %d: %w", nIter, krylov.ErrBreakdown)
		}
		alpha := rrNew / rr

		// Direction-family updates and the single matvec.
		for i := 0; i <= 2*k; i++ {
			Xpay(m, R[i], alpha, P[i])
		}
		mulScaled(P[2*k+1], P[2*k])

		cra = craNew
		cpa = core.StepCGP(cra, cpa, alpha)
		crb = core.StepCGR(crb, cpb, lambda)
		cpb = core.StepCGP(crb, cpb, alpha)

		rr = rrNew
		res.Iterations++
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
	// The recurrence value may have drifted; report convergence from one
	// final direct reduction.
	rr = sumAll(collective.AllreduceSum(m, LocalDotPartials(m, R[0], R[0])))
	res.Converged = math.Sqrt(math.Max(rr, 0)) <= threshold
	res.ResidualNorm = math.Sqrt(math.Max(rr, 0))
	res.X = x.Gather()
	res.Machine = m.Stats()
	return res, nil
}
