package parcg

import (
	"fmt"
	"math"

	"vrcg/internal/collective"
	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/machine"
	"vrcg/sparse"
)

// Result is the canonical engine result: a distributed solve populates
// X, Iterations, Converged, ResidualNorm, and the machine-model fields
// Clocks (the parallel-time trajectory whose slope PerIterTime reads)
// and Machine (communication totals). This used to be a private copy;
// aliasing it to engine.Result removed the last per-package Result type.
type Result = engine.Result

// Options is the canonical engine config; only Tol and MaxIter apply to
// the simulated-machine solvers, with different defaults (see
// withDefaults) because the machine model predates the engine's.
type Options = engine.Config

// withDefaults applies the machine-model defaults (Tol 1e-8, MaxIter
// 2n) — a free function because methods cannot hang off a type alias.
func withDefaults(o Options, n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2 * n
	}
	return o
}

// CG runs the standard Hestenes–Stiefel iteration (paper §2) on the
// machine: one matvec (halo exchange + local sweep) and two blocking
// allreduce fan-ins per iteration — the c*log(N) dependency the paper
// sets out to remove.
func CG(m *machine.Machine, dm *DistMatrix, b *Dist, o Options) (*Result, error) {
	n := dm.Dim()
	o = withDefaults(o, n)
	p := dm.P()
	if m.P() != p || b.Parts() != p {
		return nil, fmt.Errorf("parcg: machine P=%d but partition P=%d, rhs parts=%d: %w",
			m.P(), p, b.Parts(), sparse.ErrDim)
	}

	x := NewDist(n, p)
	r := b.Clone()
	pv := b.Clone()
	ap := NewDist(n, p)

	rr := sumAll(collective.AllreduceSum(m, LocalDotPartials(m, r, r)))
	bnorm := math.Sqrt(rr)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	res := &Result{}
	for res.Iterations < o.MaxIter {
		if math.Sqrt(rr) <= threshold {
			res.Converged = true
			break
		}
		dm.MulVec(m, ap, pv)
		pap := sumAll(collective.AllreduceSum(m, LocalDotPartials(m, pv, ap)))
		if pap <= 0 {
			return nil, fmt.Errorf("parcg: curvature %g at iteration %d: %w", pap, res.Iterations, krylov.ErrIndefinite)
		}
		lambda := rr / pap
		scalarAll(m, 1)
		Axpy(m, lambda, pv, x)
		Axpy(m, -lambda, ap, r)
		rrNew := sumAll(collective.AllreduceSum(m, LocalDotPartials(m, r, r)))
		alpha := rrNew / rr
		scalarAll(m, 1)
		Xpay(m, r, alpha, pv)
		rr = rrNew
		res.Iterations++
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
	if math.Sqrt(rr) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(rr)
	res.X = x.Gather()
	res.Machine = m.Stats()
	return res, nil
}

// sumAll extracts the (identical) allreduce result; all processors hold
// the same value, so any representative works.
func sumAll(values []float64) float64 { return values[0] }

// scalarAll charges a replicated scalar operation on every processor
// (each processor computes the step scalars redundantly, the standard
// practice after an allreduce).
func scalarAll(m *machine.Machine, flops int) {
	for i := 0; i < m.P(); i++ {
		m.Compute(i, flops)
	}
}

// PipeCG runs Ghysels–Vanroose pipelined CG (2014), the modern
// production descendant of the paper's idea (PETSc KSPPIPECG): a single
// non-blocking allreduce per iteration, overlapped with the matvec.
// Recurrences (unpreconditioned):
//
//	w = A r maintained;  n_i = A w_i  (the overlapped matvec)
//	beta = gamma/gamma_old, alpha = gamma/(delta - beta*gamma/alpha_old)
//	p = r + beta p;  s = w + beta s (= A p);  q = n + beta q (= A s)
//	x += alpha p;  r -= alpha s;  w -= alpha q
func PipeCG(m *machine.Machine, dm *DistMatrix, b *Dist, o Options) (*Result, error) {
	n := dm.Dim()
	o = withDefaults(o, n)
	p := dm.P()
	if m.P() != p || b.Parts() != p {
		return nil, fmt.Errorf("parcg: machine P=%d but partition P=%d, rhs parts=%d: %w",
			m.P(), p, b.Parts(), sparse.ErrDim)
	}

	x := NewDist(n, p)
	r := b.Clone()
	w := NewDist(n, p)
	dm.MulVec(m, w, r) // w = A r

	pv := NewDist(n, p)
	s := NewDist(n, p)
	q := NewDist(n, p)
	nv := NewDist(n, p)

	// In-flight reduction of (gamma, delta) = ((r,r), (w,r)).
	issue := func() *collective.Handle {
		gp := LocalDotPartials(m, r, r)
		dp := LocalDotPartials(m, w, r)
		contrib := make([][]float64, p)
		for i := 0; i < p; i++ {
			contrib[i] = []float64{gp[i], dp[i]}
		}
		return collective.IAllreduceVec(m, contrib)
	}
	h := issue()

	var gammaOld, alphaOld float64
	first := true
	bnorm := 0.0
	threshold := 0.0

	res := &Result{}
	for res.Iterations < o.MaxIter {
		// Overlap: the matvec n = A w proceeds while the reduction is in
		// flight.
		dm.MulVec(m, nv, w)
		vals := h.WaitAll(m)
		gamma, delta := vals[0][0], vals[0][1]
		if first {
			bnorm = math.Sqrt(gamma)
			if bnorm == 0 {
				bnorm = 1
			}
			threshold = o.Tol * bnorm
		}
		if math.Sqrt(math.Max(gamma, 0)) <= threshold {
			res.Converged = true
			res.ResidualNorm = math.Sqrt(math.Max(gamma, 0))
			break
		}
		var beta, alpha float64
		if first {
			beta = 0
			alpha = gamma / delta
			first = false
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if den == 0 {
				return nil, fmt.Errorf("parcg: pipelined CG breakdown at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
			}
			alpha = gamma / den
		}
		scalarAll(m, 4)

		Xpay(m, r, beta, pv)
		Xpay(m, w, beta, s)
		Xpay(m, nv, beta, q)
		Axpy(m, alpha, pv, x)
		Axpy(m, -alpha, s, r)
		Axpy(m, -alpha, q, w)

		gammaOld, alphaOld = gamma, alpha
		h = issue()
		res.Iterations++
		res.Clocks = append(res.Clocks, m.MaxClock())
	}
	if !res.Converged {
		vals := h.WaitAll(m)
		res.ResidualNorm = math.Sqrt(math.Max(vals[0][0], 0))
		if res.ResidualNorm <= threshold {
			res.Converged = true
		}
	}
	res.X = x.Gather()
	res.Machine = m.Stats()
	return res, nil
}
