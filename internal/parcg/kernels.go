package parcg

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"vrcg/internal/core"
	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// This file is the real-parallel port of the machine-model solvers in
// algos.go/vrcg.go: the same three schedules — blocking CG, pipelined
// CG, and the paper's anchored look-ahead recurrence — run as
// engine.Kernels on actual goroutines instead of simulated clocks. The
// inner-product reductions that the paper's analysis is about are
// launched on a per-kernel background goroutine while the main
// goroutine runs the overlapping SpMV, so the overlap is measured on
// hardware (Result.Phases) rather than charged to a cost model. The
// simulated Clocks/Machine trajectory survives as an opt-in replay
// (replay.go) layered over these kernels by the solve adapter.
//
// Numerics mirror the machine solvers step for step (same update
// order, same breakdown checks, same recurrences), so the golden
// trajectories captured before the port carry over; only the reduction
// summation order differs (blocked-tree vec kernels instead of
// per-processor partials), which moves residuals at roundoff level.

// bgReducer owns the kernel's background reduction goroutines: nw
// persistent workers, each behind an unbuffered request/done pair,
// splitting a fixed partitioned job. A single worker is the plain
// overlapped reduction; more workers divide an anchor batch's
// independent dot products among themselves (each dot is still summed
// serially by one worker, so the partition changes nothing bitwise).
// The goroutines reference only the job state, never the kernel, so a
// dropped kernel can be collected; its cleanup closes quit and the
// goroutines exit.
type bgReducer struct {
	reqs, dones []chan struct{}
	quit        chan struct{}
}

func startReducer(nw int, part func(wid, nw int)) *bgReducer {
	b := &bgReducer{quit: make(chan struct{})}
	for w := 0; w < nw; w++ {
		req := make(chan struct{})
		done := make(chan struct{})
		b.reqs = append(b.reqs, req)
		b.dones = append(b.dones, done)
		go func(wid int) {
			for {
				select {
				case <-b.quit:
					return
				case <-req:
					part(wid, nw)
					done <- struct{}{}
				}
			}
		}(w)
	}
	return b
}

// launch hands the pre-loaded job to the background goroutines. The
// channel send/receive pairs give the happens-before edges that make
// the job's reads of kernel vectors race-free against the overlapped
// SpMV (which touches disjoint storage).
func (b *bgReducer) launch() {
	for _, c := range b.reqs {
		c <- struct{}{}
	}
}

// wait blocks until every in-flight worker completes — the "reduction
// wait" the phase histograms measure.
func (b *bgReducer) wait() {
	for _, c := range b.dones {
		<-c
	}
}

// newKernelReducer builds a reducer whose goroutines die with the
// kernel: the cleanup runs once the kernel becomes unreachable.
func newKernelReducer[T any](kn *T, nw int, part func(wid, nw int)) *bgReducer {
	b := startReducer(nw, part)
	runtime.AddCleanup(kn, func(q chan struct{}) { close(q) }, b.quit)
	return b
}

// cgKernel is the blocking baseline (paper §2, algos.go CG): one SpMV
// and two fully blocking reductions per iteration — the inner-product
// data dependency the other two kernels remove. It exists as the
// contrast row: identical numerics, no overlap, phases instrumented.
type cgKernel struct {
	x, r, pv, ap vec.Vector
	rr           float64
}

// NewCGKernel returns the parcg-cg (blocking Hestenes–Stiefel) kernel.
func NewCGKernel() engine.Kernel { return &cgKernel{} }

func (kn *cgKernel) Name() string { return "parcg-cg" }

func (kn *cgKernel) resNorm() float64 { return math.Sqrt(math.Max(kn.rr, 0)) }

func (kn *cgKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := int64(ws.Dim())
	kn.x, kn.r, kn.pv, kn.ap = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3)

	if run.Cfg.X0 != nil {
		vec.Copy(kn.x, run.Cfg.X0)
		ws.MatVec(run.A, kn.r, kn.x)
		vec.Sub(kn.r, run.B, kn.r)
		run.Res.Stats.MatVecs++
		run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	} else {
		vec.Zero(kn.x)
		vec.Copy(kn.r, run.B)
	}
	run.Res.X = kn.x

	vec.Copy(kn.pv, kn.r)
	kn.rr = ws.Dot(kn.r, kn.r)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * n
	return kn.resNorm(), nil
}

func (kn *cgKernel) Residual(*engine.Run) float64 { return kn.resNorm() }

func (kn *cgKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	t0 := time.Now()
	ws.MatVec(run.A, kn.ap, kn.pv)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	spmvD := time.Since(t0)

	t0 = time.Now()
	pap := ws.Dot(kn.pv, kn.ap)
	redD := time.Since(t0)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if pap <= 0 || math.IsNaN(pap) {
		return fmt.Errorf("parcg: curvature %g at iteration %d: %w", pap, res.Iterations, krylov.ErrIndefinite)
	}
	lambda := kn.rr / pap

	t0 = time.Now()
	ws.Axpy(lambda, kn.pv, kn.x)
	ws.Axpy(-lambda, kn.ap, kn.r)
	updD := time.Since(t0)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	t0 = time.Now()
	rrNew := ws.Dot(kn.r, kn.r)
	redD += time.Since(t0)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n

	alpha := rrNew / kn.rr
	t0 = time.Now()
	ws.Xpay(kn.r, alpha, kn.pv)
	updD += time.Since(t0)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n

	kn.rr = rrNew
	res.Phases.Observe(engine.PhaseSpMV, spmvD)
	res.Phases.Observe(engine.PhaseReduction, redD)
	res.Phases.Observe(engine.PhaseUpdate, updD)
	run.Tick(kn.resNorm())
	return nil
}

func (kn *cgKernel) Finish(run *engine.Run) {
	run.Ws.MatVec(run.A, kn.ap, kn.x)
	vec.Sub(kn.ap, run.B, kn.ap)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(kn.ap)
}

// pipeJob is the pipelined kernel's in-flight reduction: the fused
// (gamma, delta) = ((r,r), (r,w)) pair the background goroutine
// evaluates while the main goroutine runs n = A w. Serial vec kernels
// are bitwise-identical to the pooled ones (same blocked-tree combine),
// so overlapping changes nothing numerically.
type pipeJob struct {
	r, w         vec.Vector
	gamma, delta float64
}

func (j *pipeJob) run() { j.gamma, j.delta = vec.DotPair(j.r, j.r, j.w) }

// runPart adapts run to the reducer's partitioned-job shape; the fused
// pair is one indivisible reduction, so the pipe kernel always runs a
// single worker.
func (j *pipeJob) runPart(int, int) { j.run() }

// pipeKernel is Ghysels–Vanroose pipelined CG on real goroutines
// (algos.go PipeCG): one SpMV and ONE reduction per iteration, the
// reduction genuinely in flight during the SpMV. Each Step issues the
// next iteration's reduction and matvec together, so the wait lands
// after the overlap window — the schedule of the machine-model loop,
// with the simulated IAllreduce replaced by a goroutine.
type pipeKernel struct {
	x, r, w, pv, s, q, nv vec.Vector

	j   *pipeJob
	red *bgReducer

	gamma, delta       float64
	gammaOld, alphaOld float64
	first              bool
}

// NewPipeKernel returns the parcg-pipe (real-parallel pipelined CG)
// kernel.
func NewPipeKernel() engine.Kernel { return &pipeKernel{} }

func (kn *pipeKernel) Name() string { return "parcg-pipe" }

func (kn *pipeKernel) resNorm() float64 { return math.Sqrt(math.Max(kn.gamma, 0)) }

func (kn *pipeKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := int64(ws.Dim())
	kn.x, kn.r, kn.w = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	kn.pv, kn.s, kn.q, kn.nv = ws.Vec(3), ws.Vec(4), ws.Vec(5), ws.Vec(6)
	if kn.red == nil {
		kn.j = &pipeJob{}
		kn.red = newKernelReducer(kn, 1, kn.j.runPart)
	}
	kn.j.r, kn.j.w = kn.r, kn.w

	if run.Cfg.X0 != nil {
		vec.Copy(kn.x, run.Cfg.X0)
		ws.MatVec(run.A, kn.r, kn.x)
		vec.Sub(kn.r, run.B, kn.r)
		run.Res.Stats.MatVecs++
		run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	} else {
		vec.Zero(kn.x)
		vec.Copy(kn.r, run.B)
	}
	run.Res.X = kn.x

	ws.MatVec(run.A, kn.w, kn.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	vec.Zero(kn.pv)
	vec.Zero(kn.s)
	vec.Zero(kn.q)

	// Start-up overlap: the (gamma, delta) reduction is in flight while
	// the first iteration's matvec n = A w runs.
	kn.red.launch()
	ws.MatVec(run.A, kn.nv, kn.w)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	kn.red.wait()
	kn.gamma, kn.delta = kn.j.gamma, kn.j.delta
	run.Res.Stats.InnerProducts += 2
	run.Res.Stats.Flops += 4 * n

	kn.gammaOld, kn.alphaOld = 0, 0
	kn.first = true
	return kn.resNorm(), nil
}

func (kn *pipeKernel) Residual(*engine.Run) float64 { return kn.resNorm() }

func (kn *pipeKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	var beta, alpha float64
	if kn.first {
		beta = 0
		if kn.delta == 0 || math.IsNaN(kn.delta) {
			return fmt.Errorf("parcg: pipelined CG breakdown at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
		}
		alpha = kn.gamma / kn.delta
		kn.first = false
	} else {
		beta = kn.gamma / kn.gammaOld
		den := kn.delta - beta*kn.gamma/kn.alphaOld
		if den == 0 || math.IsNaN(den) {
			return fmt.Errorf("parcg: pipelined CG breakdown at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
		}
		alpha = kn.gamma / den
	}

	t0 := time.Now()
	ws.Xpay(kn.r, beta, kn.pv)
	ws.Xpay(kn.w, beta, kn.s)
	ws.Xpay(kn.nv, beta, kn.q)
	ws.Axpy(alpha, kn.pv, kn.x)
	ws.Axpy(-alpha, kn.s, kn.r)
	ws.Axpy(-alpha, kn.q, kn.w)
	updD := time.Since(t0)
	res.Stats.VectorUpdates += 6
	res.Stats.Flops += 12 * n

	kn.gammaOld, kn.alphaOld = kn.gamma, alpha

	// Next iteration's reduction in flight over the matvec it hides
	// behind.
	kn.red.launch()
	t0 = time.Now()
	ws.MatVec(run.A, kn.nv, kn.w)
	spmvD := time.Since(t0)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	t0 = time.Now()
	kn.red.wait()
	redD := time.Since(t0)
	kn.gamma, kn.delta = kn.j.gamma, kn.j.delta
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * n

	res.Phases.Observe(engine.PhaseSpMV, spmvD)
	res.Phases.Observe(engine.PhaseReduction, redD)
	res.Phases.Observe(engine.PhaseUpdate, updD)
	run.Tick(kn.resNorm())
	return nil
}

func (kn *pipeKernel) Finish(run *engine.Run) {
	run.Ws.MatVec(run.A, kn.nv, kn.x)
	vec.Sub(kn.nv, run.B, kn.nv)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(kn.nv)
}

// coeffTrack is a fixed-capacity, in-place CoeffPair: the polynomial
// coefficients of an iterate over the anchor's Krylov base. The step
// arithmetic replicates core.StepCGR/StepCGP exactly (same expression
// shape, so identical rounding) without their per-step allocations.
type coeffTrack struct {
	rho, pi       []float64
	rhoBuf, piBuf []float64
}

func (t *coeffTrack) grow(capacity int) {
	if cap(t.rhoBuf) < capacity {
		t.rhoBuf = make([]float64, capacity)
		t.piBuf = make([]float64, capacity)
	}
}

// resetR makes the track the fresh residual representation (Rho=[1]).
func (t *coeffTrack) resetR() {
	t.rho = t.rhoBuf[:1]
	t.rho[0] = 1
	t.pi = t.piBuf[:0]
}

// resetP makes the track the fresh direction representation (Pi=[1]).
func (t *coeffTrack) resetP() {
	t.rho = t.rhoBuf[:0]
	t.pi = t.piBuf[:1]
	t.pi[0] = 1
}

func (t *coeffTrack) pair() core.CoeffPair { return core.CoeffPair{Rho: t.rho, Pi: t.pi} }

// axpyShiftInto writes x + s*shift(y) into buf, mirroring
// core.axpyCoeff over core.shiftA: shift(y)[0] = 0, shift(y)[i] =
// y[i-1], and the scaled term is added only inside shift(y)'s length.
// Safe when buf backs x (same-index reads precede writes).
func axpyShiftInto(buf, x, y []float64, s float64) []float64 {
	ylen := 0
	if len(y) > 0 {
		ylen = len(y) + 1
	}
	n := len(x)
	if ylen > n {
		n = ylen
	}
	out := buf[:n]
	for i := 0; i < n; i++ {
		v := 0.0
		if i < len(x) {
			v = x[i]
		}
		if i < ylen {
			yi := 0.0
			if i >= 1 {
				yi = y[i-1]
			}
			v += s * yi
		}
		out[i] = v
	}
	return out
}

// axpyInto writes x + s*y into buf, mirroring core.axpyCoeff. Safe when
// buf backs x or y.
func axpyInto(buf, x, y []float64, s float64) []float64 {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	out := buf[:n]
	for i := 0; i < n; i++ {
		v := 0.0
		if i < len(x) {
			v = x[i]
		}
		if i < len(y) {
			v += s * y[i]
		}
		out[i] = v
	}
	return out
}

// stepRInto advances the residual representation r' = r - λ A p into
// dst (core.StepCGR, allocation-free).
func stepRInto(dst, r, p *coeffTrack, lambda float64) {
	dst.rho = axpyShiftInto(dst.rhoBuf, r.rho, p.rho, -lambda)
	dst.pi = axpyShiftInto(dst.piBuf, r.pi, p.pi, -lambda)
}

// stepPInto completes the step p' = r' + a p into dst (core.StepCGP,
// allocation-free; dst may be p itself).
func stepPInto(dst, rNew, p *coeffTrack, alpha float64) {
	dst.rho = axpyInto(dst.rhoBuf, rNew.rho, p.rho, alpha)
	dst.pi = axpyInto(dst.piBuf, rNew.pi, p.pi, alpha)
}

// gramJob is the look-ahead kernel's anchor batch: all 3*(4k+1) base
// inner products of the current Krylov families, evaluated on the
// background goroutine while the main goroutine keeps iterating. The
// batch never reads P[2k+1] (indices reach only 4k), so it is disjoint
// from the concurrently running top-power SpMV.
type gramJob struct {
	R, P []vec.Vector
	out  []float64
}

func (j *gramJob) run() { gramInto(j.out, j.R, j.P) }

// runPart computes the rows r ≡ wid (mod nw) of the flattened batch.
// Every dot lands in its own out element and is summed serially by
// exactly one worker, so the result is bitwise identical to the
// single-goroutine gramInto — the partition only shortens the batch's
// critical path so it fits inside the k-iteration overlap window.
func (j *gramJob) runPart(wid, nw int) {
	w := 2*len(j.R) - 1
	for r := wid; r < 3*w; r += nw {
		s := r % w
		var xs, ys []vec.Vector
		switch r / w {
		case 0:
			xs, ys = j.R, j.R
		case 1:
			xs, ys = j.R, j.P
		default:
			xs, ys = j.P, j.P
		}
		a := s / 2
		if a >= len(xs) {
			a = len(xs) - 1
		}
		j.out[r] = vec.Dot(xs[a], ys[s-a])
	}
}

// gramInto fills out (length 3w, w = 2*len(R)-1 = 4k+1) with the Mu,
// Nu, Omega sequences, splitting index s into factors a = s/2 and s-a
// exactly as the machine solver's issueBase did.
func gramInto(out []float64, R, P []vec.Vector) {
	w := 2*len(R) - 1
	gramRows(out[0:w], R, R)
	gramRows(out[w:2*w], R, P)
	gramRows(out[2*w:3*w], P, P)
}

func gramRows(dst []float64, xs, ys []vec.Vector) {
	for s := range dst {
		a := s / 2
		if a >= len(xs) {
			a = len(xs) - 1
		}
		dst[s] = vec.Dot(xs[a], ys[s-a])
	}
}

// rowScanner is the operator capability the Gershgorin bound needs.
type rowScanner interface {
	Dim() int
	ScanRow(i int, emit func(j int, v float64))
}

// lookKernel is the paper's anchored look-ahead recurrence (vrcg.go
// VRCG) on real goroutines: every k iterations one batched base-product
// reduction is launched in the background and consumed k iterations
// later, by which time it has had a full anchor block of SpMV/update
// work to hide behind; in between, all step scalars are contractions of
// the previous anchor's base products — no reduction on the critical
// path. Internally the kernel iterates on the Gershgorin-scaled
// operator A/s so the Gram sequences (powers up to A^4k) keep O(1)
// magnitude; all reported norms are unscaled.
type lookKernel struct {
	k int

	x     vec.Vector
	xBest vec.Vector // best-true-residual iterate, the restart rollback point
	audit vec.Vector // scratch for the periodic true-residual audit
	R, P  []vec.Vector

	bestNorm   float64 // exactly computed true residual norm at xBest
	sinceAudit int

	gj  *gramJob
	red *bgReducer

	// Double-buffered anchor batches: active is the promoted batch the
	// contractions read; gramBufs[pendingIdx] holds the most recently
	// issued one.
	gramBufs   [2][]float64
	active     []float64
	pendingIdx int

	// Coefficient tracks: (cra, cpa) contract against the active
	// anchor, (crb, cpb) build toward the pending one; scratch stages
	// the half-step residual representation.
	cra, cpa, crb, cpb, scratch *coeffTrack
	tracks                      [5]coeffTrack

	rr    float64
	trust float64 // divergence-guard anchor, rebased per restart
	scale float64 // Gershgorin bound of the bound operator (1 when disabled)
	inv   float64

	scaleFor sparse.Matrix // operator identity the cached bound belongs to
	scaleVal float64

	builtK int
}

// NewLookaheadKernel returns the parcg kernel: the paper's restructured
// CG with look-ahead K, real-parallel anchored reductions.
func NewLookaheadKernel() engine.Kernel { return &lookKernel{} }

func (kn *lookKernel) Name() string { return "parcg" }

func (kn *lookKernel) width() int { return 4*kn.k + 1 }

func (kn *lookKernel) gram() core.BaseGram {
	w := kn.width()
	return core.BaseGram{Mu: kn.active[0:w], Nu: kn.active[w : 2*w], Omega: kn.active[2*w : 3*w]}
}

// resNorm converts the scaled-space recurrence (r,r) back to the
// unscaled residual norm the driver compares against Tol*||b||.
func (kn *lookKernel) resNorm() float64 {
	return math.Sqrt(math.Max(kn.rr, 0)) * kn.scale
}

// gershgorin computes max_i sum_j |a_ij| over whichever operator view
// still supports row scans (the pre-tuning CSR survives on run.AT when
// the tuned operator does not scan).
func gershgorin(run *engine.Run) float64 {
	sc, ok := run.A.(rowScanner)
	if !ok {
		sc, ok = run.AT.(rowScanner)
	}
	if !ok {
		return 1
	}
	bound := 0.0
	row := 0.0
	emit := func(_ int, v float64) {
		if v < 0 {
			v = -v
		}
		row += v
	}
	for i := 0; i < sc.Dim(); i++ {
		row = 0
		sc.ScanRow(i, emit)
		if row > bound {
			bound = row
		}
	}
	return bound
}

func (kn *lookKernel) mulScaled(run *engine.Run, dst, src vec.Vector) {
	run.Ws.MatVec(run.A, dst, src)
	if kn.inv != 1 {
		vec.Scale(kn.inv, dst)
	}
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A) + int64(len(dst))
}

func (kn *lookKernel) resetTracks() {
	kn.cra.resetR()
	kn.cpa.resetP()
	kn.crb.resetR()
	kn.cpb.resetP()
}

func (kn *lookKernel) Init(run *engine.Run) (float64, error) {
	k := run.Cfg.K
	if k < 1 {
		return 0, fmt.Errorf("parcg: VRCG needs K >= 1, got %d: %w", k, krylov.ErrBadOption)
	}
	ws := run.Ws
	kn.k = k

	if kn.builtK != k {
		w := kn.width()
		kn.gramBufs[0] = make([]float64, 3*w)
		kn.gramBufs[1] = make([]float64, 3*w)
		for i := range kn.tracks {
			kn.tracks[i].grow(2*k + 2)
		}
		kn.cra, kn.cpa = &kn.tracks[0], &kn.tracks[1]
		kn.crb, kn.cpb = &kn.tracks[2], &kn.tracks[3]
		kn.scratch = &kn.tracks[4]
		kn.builtK = k
	}
	if kn.red == nil {
		kn.gj = &gramJob{}
		// The anchor batch is 3*(4k+1) independent dots; spread them over
		// the machine's parallelism (capped by the batch width) so the
		// background reduction keeps pace with the pooled SpMV it hides
		// behind. runPart re-derives the batch shape from the job slices,
		// so a later K change only idles surplus workers.
		nw := runtime.GOMAXPROCS(0)
		if rows := 3 * kn.width(); nw > rows {
			nw = rows
		}
		kn.red = newKernelReducer(kn, nw, kn.gj.runPart)
	}

	// Bind the families to the workspace arena: x, R[0..2k], P[0..2k+1].
	kn.x = ws.Vec(0)
	kn.R = kn.R[:0]
	for i := 0; i <= 2*k; i++ {
		kn.R = append(kn.R, ws.Vec(1+i))
	}
	kn.P = kn.P[:0]
	for i := 0; i <= 2*k+1; i++ {
		kn.P = append(kn.P, ws.Vec(2*k+2+i))
	}
	kn.xBest = ws.Vec(4*k + 4)
	kn.audit = ws.Vec(4*k + 5)
	kn.sinceAudit = 0
	kn.gj.R, kn.gj.P = kn.R, kn.P

	// Spectral scaling: solve (A/s) x = b/s with s the Gershgorin bound
	// (cached per operator — the row scan is a cold-path cost).
	if run.Cfg.NoScaling {
		kn.scale = 1
	} else {
		if kn.scaleFor != run.A {
			kn.scaleVal = gershgorin(run)
			kn.scaleFor = run.A
		}
		kn.scale = kn.scaleVal
		if kn.scale <= 0 {
			kn.scale = 1
		}
	}
	kn.inv = 1 / kn.scale

	// Scaled initial residual R[0] = (b - A x0)/s and the Krylov
	// families above it.
	if run.Cfg.X0 != nil {
		vec.Copy(kn.x, run.Cfg.X0)
		ws.MatVec(run.A, kn.R[0], kn.x)
		vec.Sub(kn.R[0], run.B, kn.R[0])
		run.Res.Stats.MatVecs++
		run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	} else {
		vec.Zero(kn.x)
		vec.Copy(kn.R[0], run.B)
	}
	if kn.inv != 1 {
		vec.Scale(kn.inv, kn.R[0])
	}
	run.Res.X = kn.x

	for i := 1; i <= 2*k; i++ {
		kn.mulScaled(run, kn.R[i], kn.R[i-1])
	}
	for i := 0; i <= 2*k; i++ {
		vec.Copy(kn.P[i], kn.R[i])
	}
	kn.mulScaled(run, kn.P[2*k+1], kn.P[2*k])

	// Anchor 0: computed synchronously (start-up), and it doubles as
	// the first pending batch — exactly the machine solver's shared
	// handle, promoted again at iteration k.
	gramInto(kn.gramBufs[0], kn.R, kn.P)
	kn.active = kn.gramBufs[0]
	kn.pendingIdx = 0
	run.Res.Stats.InnerProducts += 3 * kn.width()
	run.Res.Stats.Flops += int64(3*kn.width()) * 2 * int64(ws.Dim())

	kn.resetTracks()
	kn.rr = kn.gram().Contract(kn.cra.pair(), kn.cra.pair(), 0)
	kn.trust = kn.resNorm()
	vec.Copy(kn.xBest, kn.x)
	kn.bestNorm = kn.resNorm() // families are fresh here, so this is the true norm
	run.Res.K = k
	return kn.resNorm(), nil
}

// divergenceGuard bounds how far the recurrence residual may rise above
// the running minimum since the last restart (the trust anchor) before
// the kernel restarts from the true residual. The look-ahead
// recurrences iterate a monomial basis up to A^4k, so on larger or
// worse-conditioned systems the drift between R[0] and b−Ax feeds on
// itself; catching the rise early — 100× leaves room for CG's normal
// residual-norm oscillation but fires while the iterate is still close
// to the cycle's best — turns the explosion into restarted CG.
const divergenceGuard = 1e2

// The recurrence guard cannot see drift that keeps the recurrence norm
// small while the iterate diverges (the recurrence lying low), so every
// auditEvery iterations the kernel spends one matvec on the exact
// residual b−Ax: an iterate that improved on the best known is
// snapshotted, and a true norm more than auditMismatch× the recurrence
// claim triggers the same restart as the guard. ~3% matvec overhead at
// the default cadence.
const (
	auditEvery    = 32
	auditMismatch = 10
)

// restart rebuilds the entire state from the best-known iterate: R[0]
// becomes the true (scaled) residual b−Ax, the families are regrown
// with real matvecs, the anchor is recomputed synchronously, and the
// coefficient tracks reset — restarted CG. If the drift carried the
// current x somewhere worse than the last restart point, x first rolls
// back to xBest, so successive restart points are monotone
// non-increasing in true residual: the worst the guard can produce is a
// stall at the best iterate found, never a blow-up. The trust anchor is
// rebased to the post-restart norm so a slow decline from a high
// restart point cannot trigger a restart storm.
func (kn *lookKernel) restart(run *engine.Run, spmvD, redD *time.Duration) {
	ws, res := run.Ws, run.Res
	k := kn.k
	n := int64(ws.Dim())

	t0 := time.Now()
	ws.MatVec(run.A, kn.R[0], kn.x)
	vec.Sub(kn.R[0], run.B, kn.R[0])
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	if rn := vec.Norm2(kn.R[0]); math.IsNaN(rn) || rn > kn.bestNorm {
		vec.Copy(kn.x, kn.xBest)
		ws.MatVec(run.A, kn.R[0], kn.x)
		vec.Sub(kn.R[0], run.B, kn.R[0])
		res.Stats.MatVecs++
		res.Stats.Flops += engine.MatVecFlops(run.A)
	} else {
		vec.Copy(kn.xBest, kn.x)
		kn.bestNorm = rn
	}
	if kn.inv != 1 {
		vec.Scale(kn.inv, kn.R[0])
	}
	for i := 1; i <= 2*k; i++ {
		kn.mulScaled(run, kn.R[i], kn.R[i-1])
	}
	for i := 0; i <= 2*k; i++ {
		vec.Copy(kn.P[i], kn.R[i])
	}
	kn.mulScaled(run, kn.P[2*k+1], kn.P[2*k])
	*spmvD += time.Since(t0)
	res.Refreshes++

	t0 = time.Now()
	idx := kn.pendingIdx ^ 1
	gramInto(kn.gramBufs[idx], kn.R, kn.P)
	kn.active = kn.gramBufs[idx]
	kn.pendingIdx = idx
	*redD += time.Since(t0)
	res.Reanchors++
	res.Stats.InnerProducts += 3 * kn.width()
	res.Stats.Flops += int64(3*kn.width()) * 2 * n

	kn.resetTracks()
	kn.rr = kn.gram().Mu[0]
	kn.trust = math.Max(kn.resNorm(), run.Threshold)
}

// Residual reports the recurrence residual, sharpened by one direct
// (r,r) before the driver is allowed to trust a convergence decision —
// the machine solver ran exactly this direct reduction at exit, so a
// drifted recurrence can neither fake convergence nor hide it.
func (kn *lookKernel) Residual(run *engine.Run) float64 {
	rn := kn.resNorm()
	if rn <= run.Threshold {
		rrDirect := run.Ws.Dot(kn.R[0], kn.R[0])
		run.Res.FallbackDots++
		run.Res.Stats.InnerProducts++
		run.Res.Stats.Flops += 2 * int64(run.Ws.Dim())
		kn.rr = rrDirect
		rn = kn.resNorm()
	}
	return rn
}

func (kn *lookKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	k := kn.k
	n := int64(ws.Dim())
	var spmvD, redD, updD time.Duration

	// Periodic true-residual audit (see the constants above).
	if kn.sinceAudit++; kn.sinceAudit >= auditEvery {
		kn.sinceAudit = 0
		t0 := time.Now()
		ws.MatVec(run.A, kn.audit, kn.x)
		vec.Sub(kn.audit, run.B, kn.audit)
		trueN := vec.Norm2(kn.audit)
		spmvD += time.Since(t0)
		res.Stats.MatVecs++
		res.Stats.Flops += engine.MatVecFlops(run.A) + 3*n
		if trueN <= kn.bestNorm {
			vec.Copy(kn.xBest, kn.x)
			kn.bestNorm = trueN
		}
		if math.IsNaN(trueN) || trueN > auditMismatch*math.Max(kn.resNorm(), run.Threshold) {
			kn.restart(run, &spmvD, &redD)
			if kn.resNorm() <= run.Threshold {
				run.Stop()
				kn.observe(res, spmvD, redD, updD)
				return nil
			}
		}
	}

	// Divergence guard: a recurrence residual far above the running
	// minimum since the last restart (or NaN) means the families have
	// detached from the iterate — restart from the true residual rather
	// than let the drift compound.
	if rn := kn.resNorm(); math.IsNaN(rn) || rn > divergenceGuard*kn.trust {
		kn.restart(run, &spmvD, &redD)
		if kn.resNorm() <= run.Threshold {
			run.Stop()
			kn.observe(res, spmvD, redD, updD)
			return nil
		}
	} else if rn < kn.trust {
		kn.trust = rn
	}

	fellBack := false
	pap := kn.gram().Contract(kn.cpa.pair(), kn.cpa.pair(), 1)
	if pap <= 0 || math.IsNaN(pap) {
		fellBack = true
		// Contraction drift (the monomial-basis conditioning problem):
		// emergency re-anchor — refresh the families with true matvecs,
		// recompute the base products synchronously, restart the
		// coefficient tracks — then retry.
		t0 := time.Now()
		for i := 1; i <= 2*k; i++ {
			kn.mulScaled(run, kn.R[i], kn.R[i-1])
		}
		for i := 1; i <= 2*k+1; i++ {
			kn.mulScaled(run, kn.P[i], kn.P[i-1])
		}
		spmvD += time.Since(t0)
		res.Refreshes++

		t0 = time.Now()
		idx := kn.pendingIdx ^ 1
		gramInto(kn.gramBufs[idx], kn.R, kn.P)
		kn.active = kn.gramBufs[idx]
		kn.pendingIdx = idx
		redD += time.Since(t0)
		res.Reanchors++
		res.Stats.InnerProducts += 3 * kn.width()
		res.Stats.Flops += int64(3*kn.width()) * 2 * n

		kn.resetTracks()
		kn.rr = kn.gram().Mu[0]
		pap = kn.gram().Omega[1]
		if kn.resNorm() <= run.Threshold {
			run.Stop()
			kn.observe(res, spmvD, redD, updD)
			return nil
		}
		if pap <= 0 || math.IsNaN(pap) {
			return fmt.Errorf("parcg: (p,Ap) = %g at iteration %d: %w", pap, res.Iterations, krylov.ErrIndefinite)
		}
	}
	lambda := kn.rr / pap

	// Iterate and residual-family updates.
	t0 := time.Now()
	ws.Axpy(lambda, kn.P[0], kn.x)
	for i := 0; i <= 2*k; i++ {
		ws.Axpy(-lambda, kn.P[i+1], kn.R[i])
	}
	updD += time.Since(t0)
	res.Stats.VectorUpdates += 2*k + 2
	res.Stats.Flops += int64(2*k+2) * 2 * n

	// Coefficient half-step and alpha via contraction.
	stepRInto(kn.scratch, kn.cra, kn.cpa, lambda)
	rrNew := kn.gram().Contract(kn.scratch.pair(), kn.scratch.pair(), 0)
	if fellBack || rrNew <= 0 || math.IsNaN(rrNew) {
		t0 = time.Now()
		rrNew = ws.Dot(kn.R[0], kn.R[0])
		redD += time.Since(t0)
		res.FallbackDots++
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * n
	}
	if kn.rr == 0 {
		return fmt.Errorf("parcg: (r,r) vanished at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
	}
	alpha := rrNew / kn.rr

	// Direction-family updates.
	t0 = time.Now()
	for i := 0; i <= 2*k; i++ {
		ws.Xpay(kn.R[i], alpha, kn.P[i])
	}
	updD += time.Since(t0)
	res.Stats.VectorUpdates += 2*k + 1
	res.Stats.Flops += int64(2*k+1) * 2 * n

	// Commit the coefficient steps (in place; cra adopts the staged
	// half-step by pointer swap).
	kn.cra, kn.scratch = kn.scratch, kn.cra
	stepPInto(kn.cpa, kn.cra, kn.cpa, alpha)
	stepRInto(kn.crb, kn.crb, kn.cpb, lambda)
	stepPInto(kn.cpb, kn.crb, kn.cpb, alpha)
	kn.rr = rrNew

	run.Tick(kn.resNorm())

	// The top-power SpMV, overlapped at anchor boundaries with the next
	// batched base-product reduction: the batch reads R[0..2k]/P[0..2k],
	// the SpMV writes only P[2k+1] — disjoint, so the reduction hides
	// entirely behind real work.
	next := res.Iterations
	if next%k == 0 && next < run.Cfg.MaxIter && !run.Stopped() {
		// Promote the building anchor (its reduction has had k
		// iterations to complete) and issue the next one.
		kn.active = kn.gramBufs[kn.pendingIdx]
		target := kn.pendingIdx ^ 1
		kn.cra, kn.crb = kn.crb, kn.cra
		kn.cpa, kn.cpb = kn.cpb, kn.cpa
		kn.crb.resetR()
		kn.cpb.resetP()

		kn.gj.out = kn.gramBufs[target]
		if run.Cfg.Blocking {
			// s-step semantics: evaluate at issue, no overlap.
			t0 = time.Now()
			gramInto(kn.gj.out, kn.R, kn.P)
			redD += time.Since(t0)
			t0 = time.Now()
			kn.mulScaled(run, kn.P[2*k+1], kn.P[2*k])
			spmvD += time.Since(t0)
		} else {
			kn.red.launch()
			t0 = time.Now()
			kn.mulScaled(run, kn.P[2*k+1], kn.P[2*k])
			spmvD += time.Since(t0)
			t0 = time.Now()
			kn.red.wait()
			redD += time.Since(t0)
		}
		kn.pendingIdx = target
		res.Reanchors++
		res.Stats.InnerProducts += 3 * kn.width()
		res.Stats.Flops += int64(3*kn.width()) * 2 * n

		kn.rr = kn.gram().Contract(kn.cra.pair(), kn.cra.pair(), 0)
	} else {
		t0 = time.Now()
		kn.mulScaled(run, kn.P[2*k+1], kn.P[2*k])
		spmvD += time.Since(t0)
	}

	kn.observe(res, spmvD, redD, updD)
	return nil
}

func (kn *lookKernel) observe(res *engine.Result, spmvD, redD, updD time.Duration) {
	res.Phases.Observe(engine.PhaseSpMV, spmvD)
	res.Phases.Observe(engine.PhaseReduction, redD)
	res.Phases.Observe(engine.PhaseUpdate, updD)
}

func (kn *lookKernel) Finish(run *engine.Run) {
	// True residual in unscaled space (R[1] is free after the loop).
	tr := kn.R[1]
	run.Ws.MatVec(run.A, tr, kn.x)
	vec.Sub(tr, run.B, tr)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(tr)
	// A non-converged run whose final iterate drifted past the guard's
	// best restart point returns the best iterate instead.
	if run.Res.TrueResidualNorm > kn.bestNorm {
		vec.Copy(kn.x, kn.xBest)
		run.Ws.MatVec(run.A, tr, kn.x)
		vec.Sub(tr, run.B, tr)
		run.Res.Stats.MatVecs++
		run.Res.Stats.Flops += engine.MatVecFlops(run.A)
		run.Res.TrueResidualNorm = vec.Norm2(tr)
	}
}
