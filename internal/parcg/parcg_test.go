package parcg

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/krylov"
	"vrcg/internal/machine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

func mkMachine(p int) *machine.Machine {
	return machine.New(machine.DefaultConfig(p))
}

func TestDistScatterGather(t *testing.T) {
	x := vec.New(17)
	vec.Random(x, 1)
	for _, p := range []int{1, 2, 3, 5, 17} {
		d := Scatter(x, p)
		if !vec.Equal(d.Gather(), x) {
			t.Fatalf("p=%d: gather(scatter) != identity", p)
		}
		if d.Len() != 17 || d.Parts() != p {
			t.Fatalf("p=%d: wrong shape", p)
		}
	}
}

func TestDistOwnerAndAt(t *testing.T) {
	x := vec.New(10)
	vec.Random(x, 2)
	d := Scatter(x, 3)
	for g := 0; g < 10; g++ {
		o := d.Owner(g)
		if g < d.Lo(o) || g >= d.Hi(o) {
			t.Fatalf("Owner(%d) = %d but range [%d,%d)", g, o, d.Lo(o), d.Hi(o))
		}
		if d.At(g) != x[g] {
			t.Fatalf("At(%d) = %v want %v", g, d.At(g), x[g])
		}
	}
}

func TestDistBlockwiseOps(t *testing.T) {
	m := mkMachine(4)
	n := 20
	xs := vec.New(n)
	ys := vec.New(n)
	vec.Random(xs, 3)
	vec.Random(ys, 4)
	x := Scatter(xs, 4)
	y := Scatter(ys, 4)

	Axpy(m, 2.5, x, y)
	want := vec.Clone(ys)
	vec.Axpy(2.5, xs, want)
	if !vec.EqualTol(y.Gather(), want, 1e-14) {
		t.Fatal("distributed Axpy wrong")
	}

	Xpay(m, x, -0.5, y)
	vec.Xpay(xs, -0.5, want)
	if !vec.EqualTol(y.Gather(), want, 1e-14) {
		t.Fatal("distributed Xpay wrong")
	}

	dst := NewDist(n, 4)
	Sub(m, dst, x, y)
	wantSub := vec.New(n)
	vec.Sub(wantSub, xs, want)
	if !vec.EqualTol(dst.Gather(), wantSub, 1e-14) {
		t.Fatal("distributed Sub wrong")
	}

	if m.Stats().Flops == 0 {
		t.Fatal("vector ops charged no flops")
	}
}

func TestLocalDotPartials(t *testing.T) {
	m := mkMachine(3)
	n := 11
	xs := vec.New(n)
	ys := vec.New(n)
	vec.Random(xs, 5)
	vec.Random(ys, 6)
	parts := LocalDotPartials(m, Scatter(xs, 3), Scatter(ys, 3))
	var got float64
	for _, v := range parts {
		got += v
	}
	if math.Abs(got-vec.Dot(xs, ys)) > 1e-12 {
		t.Fatalf("partials sum %v, want %v", got, vec.Dot(xs, ys))
	}
}

func TestDistMatrixMulVecMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7} {
		a := sparse.Poisson2D(6)
		dm := NewDistMatrix(a, p)
		m := mkMachine(p)
		xs := vec.New(a.Dim())
		vec.Random(xs, uint64(p))
		x := Scatter(xs, p)
		dst := NewDist(a.Dim(), p)
		dm.MulVec(m, dst, x)
		want := vec.New(a.Dim())
		a.MulVec(want, xs)
		if !vec.EqualTol(dst.Gather(), want, 1e-12) {
			t.Fatalf("p=%d: distributed matvec differs from serial", p)
		}
	}
}

func TestDistMatrixHaloSmallForStencil(t *testing.T) {
	// A row-partitioned 2D stencil needs only one ghost layer: the halo
	// message is at most ~grid-side words.
	side := 12
	a := sparse.Poisson2D(side)
	dm := NewDistMatrix(a, 4)
	if h := dm.MaxHaloWords(); h > side+2 {
		t.Fatalf("halo %d words for side %d", h, side)
	}
}

func solveSystem(t *testing.T, name string, solve func(*machine.Machine, *DistMatrix, *Dist) (*Result, error),
	a *sparse.CSR, p int, seed uint64) *Result {
	t.Helper()
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, seed)
	bs := vec.New(n)
	a.MulVec(bs, xTrue)
	m := mkMachine(p)
	dm := NewDistMatrix(a, p)
	res, err := solve(m, dm, Scatter(bs, p))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Converged {
		t.Fatalf("%s: no convergence in %d iterations (res %g)", name, res.Iterations, res.ResidualNorm)
	}
	// True residual, computed serially.
	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, bs, r)
	if rel := vec.Norm2(r) / vec.Norm2(bs); rel > 1e-5 {
		t.Fatalf("%s: true relative residual %g", name, rel)
	}
	return res
}

func TestMachineCGSolves(t *testing.T) {
	a := sparse.Poisson2D(8)
	for _, p := range []int{1, 2, 4, 8} {
		solveSystem(t, "CG", func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
			return CG(m, dm, b, Options{Tol: 1e-9})
		}, a, p, 11)
	}
}

func TestMachinePipeCGSolves(t *testing.T) {
	a := sparse.Poisson2D(8)
	for _, p := range []int{1, 3, 8} {
		solveSystem(t, "PipeCG", func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
			return PipeCG(m, dm, b, Options{Tol: 1e-9})
		}, a, p, 12)
	}
}

func TestMachineVRCGSolves(t *testing.T) {
	// The monomial coefficient basis conditions like ||A||^(4k), so the
	// usable look-ahead depends on the operator's conditioning: k <= 2
	// for the moderately conditioned 2D Poisson grid, larger k for
	// well-conditioned systems (see the latency tests). This boundary is
	// the historically documented monomial s-step limitation.
	a := sparse.Poisson2D(8)
	for _, k := range []int{1, 2} {
		for _, p := range []int{2, 8} {
			solveSystem(t, "VRCG", func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
				return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-8}, K: k})
			}, a, p, uint64(13+k))
		}
	}
}

func TestMachineVRCGLargeKWellConditioned(t *testing.T) {
	a := latencyProblem(512) // kappa ~ 2.6
	for _, k := range []int{4, 8} {
		solveSystem(t, "VRCG-largeK", func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
			return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-8}, K: k})
		}, a, 8, uint64(31+k))
	}
}

func TestMachineVRCGBlockingSolves(t *testing.T) {
	a := sparse.Poisson2D(8)
	solveSystem(t, "VRCG-blocking", func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-8}, K: 2, Blocking: true})
	}, a, 8, 17)
}

func TestMachineSolversAgree(t *testing.T) {
	a := sparse.Poisson2D(7)
	n := a.Dim()
	bs := vec.New(n)
	vec.Random(bs, 19)
	p := 4

	run := func(solve func(*machine.Machine, *DistMatrix, *Dist) (*Result, error)) vec.Vector {
		m := mkMachine(p)
		dm := NewDistMatrix(a, p)
		res, err := solve(m, dm, Scatter(bs, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	xCG := run(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return CG(m, dm, b, Options{Tol: 1e-10})
	})
	xPipe := run(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return PipeCG(m, dm, b, Options{Tol: 1e-10})
	})
	xVR := run(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-10}, K: 2})
	})
	if !vec.EqualTol(xCG, xPipe, 1e-6) {
		t.Fatal("PipeCG solution differs from CG")
	}
	if !vec.EqualTol(xCG, xVR, 1e-6) {
		t.Fatal("VRCG solution differs from CG")
	}
}

// latencyProblem is the workload for the latency-dominated machine
// experiments: a well-conditioned banded SPD system (kappa ~ 2.6).
// Mild conditioning keeps the monomial-basis contraction numerically
// sound at k = 8 (degrees to 2k-1); ill-conditioned systems need the
// Newton/Chebyshev bases later work introduced, which is exactly the
// instability E6 documents.
func latencyProblem(n int) *sparse.CSR {
	return sparse.TridiagToeplitz(n, 4.2, -1)
}

// The headline machine experiment: with latency-dominated communication
// and enough look-ahead, VRCG's per-iteration time loses the log(P)
// reduction term that CG pays twice per iteration.
func TestVRCGHidesReductionLatency(t *testing.T) {
	a := latencyProblem(4096)
	p := 256
	// Latency-dominated machine: alpha large, flops cheap.
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}

	run := func(solve func(*machine.Machine, *DistMatrix, *Dist) (*Result, error)) *Result {
		m := machine.New(cfg)
		dm := NewDistMatrix(a, p)
		b := vec.New(a.Dim())
		vec.Random(b, 23)
		res, err := solve(m, dm, Scatter(b, p))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cg := run(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return CG(m, dm, b, Options{Tol: 1e-6, MaxIter: 200})
	})
	vr := run(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-6, MaxIter: 200}, K: 8})
	})
	cgRate := cg.PerIterTime()
	vrRate := vr.PerIterTime()
	if vrRate >= cgRate {
		t.Fatalf("VRCG per-iteration time %.1f not below CG %.1f", vrRate, cgRate)
	}
	// CG pays ~2 allreduces of ~log2(256)=8 rounds * alpha=64 ~ 1024 per
	// iteration; VRCG should cut the reduction share substantially.
	if vrRate > 0.7*cgRate {
		t.Fatalf("VRCG %.1f did not substantially beat CG %.1f", vrRate, cgRate)
	}
}

func TestPipeCGBetweenCGAndVRCGOnMachine(t *testing.T) {
	a := latencyProblem(4096)
	p := 256
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}
	rate := func(solve func(*machine.Machine, *DistMatrix, *Dist) (*Result, error)) float64 {
		m := machine.New(cfg)
		dm := NewDistMatrix(a, p)
		b := vec.New(a.Dim())
		vec.Random(b, 29)
		res, err := solve(m, dm, Scatter(b, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.PerIterTime()
	}
	cg := rate(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return CG(m, dm, b, Options{Tol: 1e-6, MaxIter: 150})
	})
	pipe := rate(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return PipeCG(m, dm, b, Options{Tol: 1e-6, MaxIter: 150})
	})
	vr := rate(func(m *machine.Machine, dm *DistMatrix, b *Dist) (*Result, error) {
		return VRCG(m, dm, b, VROptions{Options: Options{Tol: 1e-6, MaxIter: 150}, K: 8})
	})
	if !(vr < pipe && pipe < cg) {
		t.Fatalf("expected VRCG < PipeCG < CG, got %.1f, %.1f, %.1f", vr, pipe, cg)
	}
}

func TestBlockingVsPipelinedAnchors(t *testing.T) {
	// s-step semantics (blocking anchor reductions) must be slower than
	// the paper's pipelined anchors at equal k on a latency-bound
	// machine.
	a := latencyProblem(4096)
	p := 256
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}
	// The blocking stall appears once per k-block, so compare total
	// elapsed parallel time (same mathematics, same iteration count) —
	// a per-iteration median would hide the per-block wait by design.
	total := func(blocking bool) (float64, int) {
		m := machine.New(cfg)
		dm := NewDistMatrix(a, p)
		bs := vec.New(a.Dim())
		vec.Random(bs, 31)
		res, err := VRCG(m, dm, Scatter(bs, p), VROptions{Options: Options{Tol: 1e-6, MaxIter: 150}, K: 6, Blocking: blocking})
		if err != nil {
			t.Fatal(err)
		}
		return res.Clocks[len(res.Clocks)-1], res.Iterations
	}
	pipelined, itP := total(false)
	blocking, itB := total(true)
	if itP != itB {
		t.Logf("iteration counts differ: %d vs %d", itP, itB)
	}
	if pipelined >= blocking {
		t.Fatalf("pipelined total %.1f not below blocking total %.1f", pipelined, blocking)
	}
}

func TestCGIndefiniteOnMachine(t *testing.T) {
	d := vec.NewFrom([]float64{1, -1, 1, -1})
	a := sparse.DiagonalMatrix(d)
	m := mkMachine(2)
	dm := NewDistMatrix(a, 2)
	b := Scatter(vec.NewFrom([]float64{1, 1, 1, 1}), 2)
	if _, err := CG(m, dm, b, Options{}); err == nil {
		t.Fatal("expected indefinite error")
	}
}

func TestVRCGBadK(t *testing.T) {
	a := sparse.Poisson1D(8)
	m := mkMachine(2)
	dm := NewDistMatrix(a, 2)
	b := Scatter(vec.New(8), 2)
	if _, err := VRCG(m, dm, b, VROptions{K: 0}); err == nil {
		t.Fatal("expected K error")
	}
}

func TestResultPerIterTime(t *testing.T) {
	// Uniform increments: any window gives the increment.
	r := &Result{Clocks: []float64{10, 20, 30, 40, 50, 60, 70, 80}}
	if got := r.PerIterTime(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("PerIterTime = %v, want 10", got)
	}
	empty := &Result{}
	if !math.IsNaN(empty.PerIterTime()) {
		t.Fatal("empty trajectory should give NaN")
	}
}

// Property: distributed matvec equals serial matvec for random SPD
// matrices and partitions.
func TestPropDistMatVec(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		n := 30
		p := int(pRaw)%8 + 1
		a := sparse.RandomSPD(n, 4, seed)
		dm := NewDistMatrix(a, p)
		m := mkMachine(p)
		xs := vec.New(n)
		vec.Random(xs, seed+1)
		dst := NewDist(n, p)
		dm.MulVec(m, dst, Scatter(xs, p))
		want := vec.New(n)
		a.MulVec(want, xs)
		return vec.EqualTol(dst.Gather(), want, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: machine CG converges and matches the serial solver's
// iteration count (same algorithm, same arithmetic order per block...
// allow small slack for summation-order differences).
func TestPropMachineCGMatchesSerialIterations(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		n := 36
		p := int(pRaw)%6 + 1
		a := sparse.RandomSPD(n, 4, seed)
		bs := vec.New(n)
		vec.Random(bs, seed+3)
		serial, err := krylov.CG(a, bs, krylov.Options{Tol: 1e-8})
		if err != nil {
			return false
		}
		m := mkMachine(p)
		res, err := CG(m, NewDistMatrix(a, p), Scatter(bs, p), Options{Tol: 1e-8})
		if err != nil || !res.Converged {
			return false
		}
		diff := res.Iterations - serial.Iterations
		return diff >= -2 && diff <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDistScale(t *testing.T) {
	m := mkMachine(3)
	xs := vec.New(10)
	vec.Random(xs, 44)
	x := Scatter(xs, 3)
	Scale(m, -2.5, x)
	want := vec.Clone(xs)
	vec.Scale(-2.5, want)
	if !vec.EqualTol(x.Gather(), want, 0) {
		t.Fatal("distributed Scale wrong")
	}
	if m.Stats().Flops != 10 {
		t.Fatalf("Scale charged %d flops, want 10", m.Stats().Flops)
	}
}

func TestGershgorinBound(t *testing.T) {
	// Poisson1D rows sum to at most |2|+|-1|+|-1| = 4.
	dm := NewDistMatrix(sparse.Poisson1D(16), 2)
	if got := dm.GershgorinBound(); got != 4 {
		t.Fatalf("Gershgorin bound %v, want 4", got)
	}
	// The bound dominates the spectral radius: ||A x|| <= bound * ||x||.
	a := sparse.RandomSPD(30, 5, 9)
	dm2 := NewDistMatrix(a, 3)
	bound := dm2.GershgorinBound()
	x := vec.New(30)
	vec.Random(x, 10)
	y := vec.New(30)
	a.MulVec(y, x)
	if vec.Norm2(y) > bound*vec.Norm2(x)+1e-12 {
		t.Fatalf("bound %v violated: ||Ax||=%v ||x||=%v", bound, vec.Norm2(y), vec.Norm2(x))
	}
}

func TestAutoKTracksReductionToLocalRatio(t *testing.T) {
	// k must cover ~log2(P) reduction rounds with iterations whose halo
	// pays the same alpha: for a 2-neighbor halo and P=256 (8 rounds)
	// the latency-dominated ratio is ~4, so k in the 4..8 range across
	// a wide alpha sweep.
	a := latencyProblem(4096)
	dm := NewDistMatrix(a, 256)
	for _, alpha := range []float64{1, 16, 256, 2048} {
		cfg := machine.Config{P: 256, Alpha: alpha, Beta: 0.01, FlopTime: 0.001}
		k := AutoK(cfg, dm, 32)
		if k < 3 || k > 10 {
			t.Fatalf("alpha=%v: AutoK gave k=%d outside the expected band", alpha, k)
		}
	}
	// Expensive local flops shrink the needed look-ahead to the minimum.
	slowFlops := machine.Config{P: 256, Alpha: 1, Beta: 0.01, FlopTime: 10}
	if k := AutoK(slowFlops, dm, 32); k != 1 {
		t.Fatalf("compute-bound machine should give k=1, got %d", k)
	}
}

func TestAutoKClampsAndMinimum(t *testing.T) {
	a := latencyProblem(256)
	dm := NewDistMatrix(a, 8)
	// Negligible latency: smallest k suffices.
	cheap := machine.Config{P: 8, Alpha: 0.001, Beta: 0.0001, FlopTime: 1}
	if k := AutoK(cheap, dm, 16); k != 1 {
		t.Fatalf("cheap communication should give k=1, got %d", k)
	}
	// Bandwidth-dominated reductions grow with the batch width as fast
	// as the block grows with k, so no k ever covers them: clamped at
	// maxK. (Pure latency is always eventually covered because the halo
	// pays alpha too.)
	expensive := machine.Config{P: 8, Alpha: 0, Beta: 1, FlopTime: 1e-9}
	if k := AutoK(expensive, dm, 5); k != 5 {
		t.Fatalf("bandwidth-bound reduction should clamp to maxK=5, got %d", k)
	}
	if k := AutoK(expensive, dm, 0); k != 1 {
		t.Fatalf("maxK < 1 should clamp to 1, got %d", k)
	}
}

func TestAutoKChoiceActuallyHides(t *testing.T) {
	// Solve with the AutoK choice and verify per-iteration time is close
	// to the reduction-free floor (no promotion stalls).
	a := latencyProblem(4096)
	p := 256
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}
	dm := NewDistMatrix(a, p)
	k := AutoK(cfg, dm, 12)
	bs := vec.New(a.Dim())
	vec.Random(bs, 91)
	m := machine.New(cfg)
	res, err := VRCG(m, dm, Scatter(bs, p), VROptions{Options: Options{Tol: 1e-6, MaxIter: 120}, K: k})
	if err != nil {
		t.Fatal(err)
	}
	cgM := machine.New(cfg)
	cg, err := CG(cgM, NewDistMatrix(a, p), Scatter(bs, p), Options{Tol: 1e-6, MaxIter: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIterTime() >= 0.5*cg.PerIterTime() {
		t.Fatalf("AutoK(k=%d) rate %.1f did not substantially beat CG %.1f",
			k, res.PerIterTime(), cg.PerIterTime())
	}
}
