package engine

import (
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// Workspace is the size-keyed vector arena every kernel draws from,
// plus the worker pool its kernels run on. Vectors are handed out by
// index (Vec) and grown lazily, so a warm workspace serves repeated
// solves against same-order operators with zero heap allocations; the
// history slab is likewise owned here and reused across solves.
//
// Contract: vectors obtained from the arena — including the X field of
// a Result produced on it — are owned by the workspace and valid only
// until the next solve on it. A Workspace is not safe for concurrent
// solves; use one per goroutine (they are cheap).
type Workspace struct {
	pool *vec.Pool
	n    int

	vecs []vec.Vector
	// vecsN is the second, length-keyed arena (VecN): vectors whose
	// length differs from the system order — the rows-length residual
	// vectors of the rectangular least-squares kernels and the flat
	// Hessenberg/Givens scratch of GMRES(m). Each index keeps whatever
	// capacity its largest request needed, so warm repeated solves
	// allocate nothing here either.
	vecsN   []vec.Vector
	history []float64
	run     Run
}

// NewWorkspace returns a workspace for order-n systems running its
// kernels on pool. A nil pool selects the serial kernels.
func NewWorkspace(n int, pool *vec.Pool) *Workspace {
	if n <= 0 {
		panic("engine: NewWorkspace requires n > 0")
	}
	return &Workspace{pool: pool, n: n}
}

// Pool returns the worker pool the workspace dispatches to (nil = serial).
func (ws *Workspace) Pool() *vec.Pool { return ws.pool }

// Dim returns the system order the workspace is sized for.
func (ws *Workspace) Dim() int { return ws.n }

// Vec returns the i-th arena vector, allocating it on first use. The
// same index always returns the same storage, so kernels name their
// vectors by fixed indices and reuse them across solves. Contents
// persist between solves; kernels must initialize what they read.
func (ws *Workspace) Vec(i int) vec.Vector {
	for len(ws.vecs) <= i {
		ws.vecs = append(ws.vecs, vec.New(ws.n))
	}
	return ws.vecs[i]
}

// VecN returns the i-th vector of the length-keyed arena, sized to
// length. Indices are independent of Vec's: VecN(0, m) and Vec(0) are
// different storage. The same index keeps its capacity across solves
// (growing only when a larger length is requested), so kernels that ask
// for the same shapes every solve allocate nothing in steady state.
// Contents persist between calls; kernels must initialize what they
// read.
func (ws *Workspace) VecN(i, length int) vec.Vector {
	for len(ws.vecsN) <= i {
		ws.vecsN = append(ws.vecsN, nil)
	}
	if cap(ws.vecsN[i]) < length {
		ws.vecsN[i] = vec.New(length)
	}
	return ws.vecsN[i][:length]
}

// Reserve eagerly allocates the first count arena vectors, so a
// constructor can keep every allocation out of the first solve —
// latency-sensitive callers build the workspace up front precisely to
// avoid paying it on the first request.
func (ws *Workspace) Reserve(count int) {
	if count > 0 {
		ws.Vec(count - 1)
	}
}

// Pooled kernel dispatch: every hot-path vector operation a kernel
// performs goes through one of these (or MatVec), so pool routing is
// decided in exactly one place.

// Dot returns <x, y> on the workspace pool.
func (ws *Workspace) Dot(x, y vec.Vector) float64 { return vec.PoolDot(ws.pool, x, y) }

// DotPair returns <x, y> and <x, z> in one sweep.
func (ws *Workspace) DotPair(x, y, z vec.Vector) (xy, xz float64) {
	return vec.PoolDotPair(ws.pool, x, y, z)
}

// Axpy computes y += alpha*x.
func (ws *Workspace) Axpy(alpha float64, x, y vec.Vector) { vec.PoolAxpy(ws.pool, alpha, x, y) }

// Xpay computes y = x + alpha*y.
func (ws *Workspace) Xpay(x vec.Vector, alpha float64, y vec.Vector) {
	vec.PoolXpay(ws.pool, x, alpha, y)
}

// FusedCGUpdate performs x += alpha*p, r -= alpha*ap and returns the
// new <r, r> in one sweep.
func (ws *Workspace) FusedCGUpdate(alpha float64, p, ap, x, r vec.Vector) float64 {
	return vec.PoolFusedCGUpdate(ws.pool, alpha, p, ap, x, r)
}

// MatVec computes dst = A*x on the workspace pool when the operator
// supports pooled products.
func (ws *Workspace) MatVec(a sparse.Matrix, dst, x vec.Vector) {
	sparse.PooledMulVec(a, ws.pool, dst, x)
}

// MatVecs computes dsts[j] = A*xs[j] for every column on the workspace
// pool, using the operator's one-pass multi-vector product when it
// offers one (see sparse.MultiMulVec) and per-column products otherwise.
func (ws *Workspace) MatVecs(a sparse.Matrix, dsts, xs []vec.Vector) {
	sparse.PooledMulVecs(a, ws.pool, dsts, xs)
}

// DotBlock fills out[i*len(ys)+j] = <xs[i], ys[j]> — the s×s block Gram
// reduction — in one pooled dispatch.
func (ws *Workspace) DotBlock(xs, ys []vec.Vector, out []float64) {
	vec.PoolDotBlock(ws.pool, xs, ys, out)
}

// AxpyBlock accumulates ys[j] += sum_i coef[i*len(ys)+j]*xs[i] in one
// pooled dispatch.
func (ws *Workspace) AxpyBlock(coef []float64, xs, ys []vec.Vector) {
	vec.PoolAxpyBlock(ws.pool, coef, xs, ys)
}

// MatVecT computes dst = Aᵀ*x on the workspace pool when the operator
// supports pooled transpose products. Kernels obtain the operator from
// Run.AT, which the driver populates only when the (pre-tuning)
// operator supports transpose products at all.
func (ws *Workspace) MatVecT(a sparse.TransposeMulVec, dst, x vec.Vector) {
	sparse.PooledMulVecT(a, ws.pool, dst, x)
}

// ApplyPrecond computes dst = M^{-1} r, routing pointwise
// preconditioners through the pool.
func (ws *Workspace) ApplyPrecond(m precond.Preconditioner, dst, r vec.Vector) {
	if ws.pool != nil {
		if pa, ok := m.(precond.PoolApplier); ok {
			pa.ApplyPool(ws.pool, dst, r)
			return
		}
	}
	m.Apply(dst, r)
}

// MatVecFlops returns the flop cost charged for one product with a:
// 2*nnz for sparse operators, 2*n^2 for dense ones.
func MatVecFlops(a sparse.Matrix) int64 {
	if sp, ok := a.(sparse.Sparse); ok {
		return 2 * int64(sp.NNZ())
	}
	n := int64(a.Dim())
	return 2 * n * n
}
