package engine

import (
	"errors"
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// fakeKernel halves a fake residual each Step; it exercises the driver
// loop without any linear algebra.
type fakeKernel struct {
	rn       float64
	stepErr  error
	stopAt   int
	initErr  error
	finished bool
}

func (k *fakeKernel) Name() string { return "fake" }

func (k *fakeKernel) Init(r *Run) (float64, error) {
	if k.initErr != nil {
		return 0, k.initErr
	}
	r.Res.X = r.Ws.Vec(0)
	return k.rn, nil
}

func (k *fakeKernel) Residual(r *Run) float64 { return k.rn }

func (k *fakeKernel) Step(r *Run) error {
	if k.stepErr != nil {
		return k.stepErr
	}
	k.rn /= 2
	r.Tick(k.rn)
	if k.stopAt > 0 && r.Res.Iterations >= k.stopAt {
		r.Stop()
	}
	return nil
}

func (k *fakeKernel) Finish(r *Run) { k.finished = true }

func system(n int) (sparse.Matrix, vec.Vector) {
	a := sparse.TridiagToeplitz(n, 2, -1)
	b := vec.New(n)
	vec.Fill(b, 1)
	return a, b
}

func TestDriverConverges(t *testing.T) {
	a, b := system(16)
	k := &fakeKernel{rn: 1}
	ws := NewWorkspace(16, nil)
	var res Result
	if err := Solve(k, ws, a, b, Config{Tol: 1e-3, RecordHistory: true}, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("driver did not mark convergence")
	}
	if !k.finished {
		t.Fatal("driver skipped Finish on the success path")
	}
	// Threshold is Tol*||b|| = 1e-3*4 = 4e-3; halving from 1 needs 8 steps.
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d, want 8", res.Iterations)
	}
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history length %d for %d iterations", len(res.History), res.Iterations)
	}
	if res.ResidualNorm != k.rn {
		t.Fatalf("ResidualNorm = %g, want %g", res.ResidualNorm, k.rn)
	}
}

func TestDriverMaxIter(t *testing.T) {
	a, b := system(16)
	k := &fakeKernel{rn: 1}
	ws := NewWorkspace(16, nil)
	var res Result
	if err := Solve(k, ws, a, b, Config{Tol: 1e-12, MaxIter: 3}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("converged=%v iterations=%d, want false/3", res.Converged, res.Iterations)
	}
}

func TestDriverCallbackStops(t *testing.T) {
	a, b := system(16)
	k := &fakeKernel{rn: 1}
	ws := NewWorkspace(16, nil)
	var res Result
	calls := 0
	cfg := Config{Tol: 1e-12, Callback: func(iter int, rn float64) bool {
		calls++
		return iter < 2
	}}
	if err := Solve(k, ws, a, b, cfg, &res); err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 || calls != 2 {
		t.Fatalf("iterations=%d callbacks=%d, want 2/2", res.Iterations, calls)
	}
	if res.Converged {
		t.Fatal("callback stop must not mark convergence")
	}
}

func TestDriverKernelStop(t *testing.T) {
	a, b := system(16)
	k := &fakeKernel{rn: 1, stopAt: 4}
	ws := NewWorkspace(16, nil)
	var res Result
	if err := Solve(k, ws, a, b, Config{Tol: 1e-12}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 4 {
		t.Fatalf("iterations = %d, want 4 (kernel Stop)", res.Iterations)
	}
}

func TestDriverErrors(t *testing.T) {
	a, b := system(16)
	ws := NewWorkspace(16, nil)
	var res Result

	if err := Solve(&fakeKernel{rn: 1}, ws, a, b[:8], Config{}, &res); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("short rhs: got %v, want ErrDim", err)
	}
	if err := Solve(&fakeKernel{rn: 1}, ws, a, b, Config{X0: vec.New(8)}, &res); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("short x0: got %v, want ErrDim", err)
	}
	if err := Solve(&fakeKernel{rn: 1}, NewWorkspace(8, nil), a, b, Config{}, &res); !errors.Is(err, sparse.ErrDim) {
		t.Fatalf("mis-sized workspace: got %v, want ErrDim", err)
	}
	boom := errors.New("boom")
	if err := Solve(&fakeKernel{rn: 1, stepErr: boom}, ws, a, b, Config{}, &res); !errors.Is(err, boom) {
		t.Fatalf("step error: got %v, want boom", err)
	}
	if err := Solve(&fakeKernel{rn: 1, initErr: boom}, ws, a, b, Config{}, &res); !errors.Is(err, boom) {
		t.Fatalf("init error: got %v, want boom", err)
	}
}

func TestWorkspaceArenaStable(t *testing.T) {
	ws := NewWorkspace(8, nil)
	v0 := ws.Vec(0)
	v5 := ws.Vec(5)
	if len(v0) != 8 || len(v5) != 8 {
		t.Fatal("arena vectors mis-sized")
	}
	v0[3] = 42
	if got := ws.Vec(0); got[3] != 42 {
		t.Fatal("Vec(0) did not return the same storage")
	}
	if &v5[0] != &ws.Vec(5)[0] {
		t.Fatal("Vec(5) did not return the same storage")
	}
}
