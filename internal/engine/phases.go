package engine

import "time"

// Per-iteration phase latency instrumentation for the real-parallel
// kernels (the parcg family): each iteration's wall time is split into
// the three phases whose scheduling the paper is about — the sparse
// matrix–vector product, the wait on the (overlapped) inner-product
// reduction, and the vector updates — so the SpMV/reduction overlap is
// measured on actual hardware rather than simulated clocks. The bucket
// vocabulary matches the cluster workers' phase histograms (14 upper
// bounds in microseconds plus overflow), so fleet and shared-memory
// numbers read on one scale.

// Phase indexes PhaseSet.
type Phase int

const (
	// PhaseSpMV is the matrix–vector product (including any spectral
	// scaling sweep fused to it).
	PhaseSpMV Phase = iota
	// PhaseReduction is the time spent blocked on an inner-product
	// reduction: for the overlapped kernels this is only the residual
	// wait after the concurrent SpMV returns, so small values here with
	// large SpMV times are the overlap working.
	PhaseReduction
	// PhaseUpdate is the vector-update phase (axpy/xpay family sweeps).
	PhaseUpdate

	// NumPhases is the number of instrumented phases.
	NumPhases
)

// phaseNames index the Phase constants for JSON output.
var phaseNames = [NumPhases]string{"spmv", "reduction_wait", "update"}

// Name returns the JSON/metrics name of the phase.
func (p Phase) Name() string { return phaseNames[p] }

// NumPhaseBuckets is the bucket count of PhaseHist (excluding overflow).
const NumPhaseBuckets = 14

// PhaseBucketsUS are the histogram upper bounds in microseconds — the
// same vocabulary as the cluster workers' phase histograms.
var PhaseBucketsUS = [NumPhaseBuckets]float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// PhaseHist is one latency histogram: counts per bucket (the final
// bucket is overflow), plus count/sum/max for means and tails. The zero
// value is ready to use, and the type is plain value data so embedding
// it in Result keeps result-zeroing allocation-free.
type PhaseHist struct {
	Count   uint64
	SumUS   float64
	MaxUS   float64
	Buckets [NumPhaseBuckets + 1]uint64
}

// Observe records one duration.
func (h *PhaseHist) Observe(d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	h.Count++
	h.SumUS += us
	if us > h.MaxUS {
		h.MaxUS = us
	}
	for i, ub := range PhaseBucketsUS {
		if us <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[NumPhaseBuckets]++
}

// Merge folds other into h.
func (h *PhaseHist) Merge(other *PhaseHist) {
	h.Count += other.Count
	h.SumUS += other.SumUS
	if other.MaxUS > h.MaxUS {
		h.MaxUS = other.MaxUS
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// MeanUS returns the mean observation in microseconds.
func (h *PhaseHist) MeanUS() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumUS / float64(h.Count)
}

// PhaseSet is the per-solve bundle of one histogram per phase, indexed
// by the Phase constants.
type PhaseSet [NumPhases]PhaseHist

// Observe records one duration under the given phase.
func (ps *PhaseSet) Observe(p Phase, d time.Duration) { ps[p].Observe(d) }

// Merge folds other into ps phase-by-phase.
func (ps *PhaseSet) Merge(other *PhaseSet) {
	for i := range ps {
		ps[i].Merge(&other[i])
	}
}

// Empty reports whether no observations were recorded (the
// non-instrumented methods leave Result.Phases at its zero value).
func (ps *PhaseSet) Empty() bool {
	for i := range ps {
		if ps[i].Count > 0 {
			return false
		}
	}
	return true
}
