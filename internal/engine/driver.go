package engine

import (
	"fmt"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Kernel is the per-method iteration contract: the four hooks a CG
// variant implements so the shared driver can run it. A kernel is a
// long-lived object — it is reused across solves and may cache
// structured state (Krylov families, Gram buffers) between them, keyed
// on whatever invalidates that state (order, pool, method parameters).
type Kernel interface {
	// Name returns the method name, used in driver error messages.
	Name() string
	// Init binds the kernel to A x = b under r.Cfg (defaults already
	// resolved), performs the method's start-up work on the (warm)
	// workspace r.Ws, sets r.Res.X, and returns the initial residual
	// norm, which the driver records as History[0].
	Init(r *Run) (resNorm float64, err error)
	// Residual returns the current residual-norm estimate. Methods
	// whose recurrence can drift (vrcg) sharpen the estimate with a
	// direct inner product before the driver trusts it for a
	// convergence decision.
	Residual(r *Run) float64
	// Step advances the iteration by one step — one block for blocked
	// methods — reporting each completed iteration through r.Tick (or
	// the finer-grained Record/Callback helpers). A returned error
	// (wrapping ErrIndefinite/ErrBreakdown) aborts the solve.
	Step(r *Run) error
	// Finish runs after the loop on the success path: it computes the
	// true residual norm and publishes any method-specific diagnostics
	// into r.Res.
	Finish(r *Run)
}

// Run is the per-solve state the driver and kernel share: the bound
// system, the resolved configuration, the workspace, and the outcome
// being accumulated. It lives inside the Workspace (not on the driver's
// stack) so handing it to kernels through the interface never forces a
// per-solve heap allocation.
type Run struct {
	A sparse.Matrix
	// AT provides transpose products Aᵀ*x when the operator supports
	// them (captured before format tuning, since tuned formats may not).
	// Nil otherwise; kernels that need it (cgnr, lsqr) fail Init with
	// ErrUnsupportedOperator when it is missing.
	AT  sparse.TransposeMulVec
	B   vec.Vector
	Cfg Config
	Res *Result
	Ws  *Workspace
	// Threshold is the absolute convergence threshold Tol*||b||.
	Threshold float64

	stopped bool
}

// Record appends a residual norm to the history when recording is
// enabled (into the workspace-owned slab, so steady state is
// allocation-free once capacity is reached).
func (r *Run) Record(resNorm float64) {
	if r.Cfg.RecordHistory {
		r.Ws.history = append(r.Ws.history, resNorm)
	}
}

// Callback invokes the configured per-iteration callback, unless the
// solve is already stopping. A false return from the callback stops the
// driver loop after the current step; Callback reports whether the
// solve should continue.
func (r *Run) Callback(iter int, resNorm float64) bool {
	if r.stopped {
		return false
	}
	if r.Cfg.Callback != nil && !r.Cfg.Callback(iter, resNorm) {
		r.stopped = true
		return false
	}
	return true
}

// Tick reports one completed iteration: it advances the iteration
// count, records resNorm, and runs the callback. Blocked methods call
// it once per iteration inside a block.
func (r *Run) Tick(resNorm float64) {
	r.Res.Iterations++
	r.Record(resNorm)
	r.Callback(r.Res.Iterations, resNorm)
}

// Stop ends the driver loop after the current step without error and
// without marking convergence (the driver still re-checks the residual
// at exit). Kernels use it for structural termination, e.g. a MINRES
// Krylov-space exhaustion.
func (r *Run) Stop() { r.stopped = true }

// Stopped reports whether a callback or the kernel requested an early
// stop.
func (r *Run) Stopped() bool { return r.stopped }

// Solve is the one driver loop every engine-backed method runs under.
// It owns what the method silos used to each reimplement: dimension
// validation, option defaults, the convergence threshold, the
// iteration/convergence loop, history recording, callback dispatch, and
// the final Converged classification. The kernel owns only the
// method's numerics.
//
// On a kernel error the partial Result (including recorded history) is
// left populated and the error returned; ResidualNorm and
// TrueResidualNorm are set only on the success path, mirroring the
// historical per-method behavior.
func Solve(k Kernel, ws *Workspace, a sparse.Matrix, b vec.Vector, cfg Config, res *Result) error {
	// rows×cols: the rhs lives in the row space, the solution (and the
	// workspace arena) in the column space. Square operators report
	// rows == cols == Dim, so nothing changes for them.
	rows, cols := sparse.Dims(a)
	*res = Result{}
	if len(b) != rows {
		return fmt.Errorf("%s: operator has %d rows but rhs length %d: %w", k.Name(), rows, len(b), sparse.ErrDim)
	}
	if cfg.X0 != nil && len(cfg.X0) != cols {
		return fmt.Errorf("%s: x0 length %d for %d columns: %w", k.Name(), len(cfg.X0), cols, sparse.ErrDim)
	}
	if ws == nil || ws.Dim() != cols {
		wsDim := 0
		if ws != nil {
			wsDim = ws.Dim()
		}
		return fmt.Errorf("%s: workspace order %d but operator has %d columns: %w", k.Name(), wsDim, cols, sparse.ErrDim)
	}
	cfg = cfg.withDefaults(cols)
	ws.history = ws.history[:0]

	// Capture the transpose-product capability before tuning: tuned
	// formats (SELL) do not carry it, and the normal-equations kernels
	// read it off the Run.
	at, _ := a.(sparse.TransposeMulVec)

	// Format auto-selection: run the solve's matrix-vector products on
	// the fastest equivalent operator (e.g. a SELL-C-σ conversion of a
	// large CSR). The decision is cached on the matrix, so warm sessions
	// pay nothing, and the tuned operator is bitwise-identical, so
	// results do not depend on it.
	a = sparse.TuneMulVec(a)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	run := &ws.run
	*run = Run{A: a, AT: at, B: b, Cfg: cfg, Res: res, Ws: ws, Threshold: cfg.Tol * bnorm}

	rn, err := k.Init(run)
	if err != nil {
		return err
	}
	run.Record(rn)

	for res.Iterations < cfg.MaxIter && !run.stopped {
		rn = k.Residual(run)
		if rn <= run.Threshold {
			res.Converged = true
			break
		}
		if err := k.Step(run); err != nil {
			run.publishHistory()
			return err
		}
	}
	if !res.Converged {
		rn = k.Residual(run)
		if rn <= run.Threshold {
			res.Converged = true
		}
	}
	res.ResidualNorm = rn
	k.Finish(run)
	run.publishHistory()
	return nil
}

// publishHistory hands the workspace-owned history slab to the result
// when recording was requested.
func (r *Run) publishHistory() {
	if r.Cfg.RecordHistory {
		r.Res.History = r.Ws.history
	}
}
