// Package engine is the shared iteration-driver layer every
// shared-memory solver in this repository runs on. The paper's point is
// that CG variants differ only in how they schedule the same few kernel
// steps — SpMV, inner products, vector updates — to hide inner-product
// data dependencies; this package makes that structural fact the
// architecture: each method is a Kernel (Init/Step/Residual/Finish over
// a reusable Workspace), and one driver loop (Solve) owns everything the
// methods used to duplicate — option defaults, dimension validation,
// convergence checks, per-iteration callbacks, history recording, and
// outcome classification.
//
//	      ┌────────────────────────────────────────────┐
//	      │ engine.Solve (the driver)                  │
//	      │   defaults · dim checks · threshold        │
//	      │   loop: Residual ≤ tol? → Step → Tick      │
//	      │   history · callback · Converged · Finish  │
//	      └───────┬────────────────────────────────────┘
//	              │ Kernel contract (Init/Step/Residual/Finish)
//	┌─────────┬───┴─────┬──────────┬──────────┬─────────┐
//	│ krylov  │ krylov  │ pipecg   │ core     │ sstep   │
//	│ cg, pcg │ cr, sd, │ pipecg,  │ vrcg     │ sstep   │
//	│ cgfused │ minres  │ gropp    │ (§5)     │ (C–G)   │
//	└─────────┴─────────┴──────────┴──────────┴─────────┘
//	              │ Workspace (size-keyed vector arena, pool)
//	      ┌───────┴────────────────────────────────────┐
//	      │ vec.Pool kernels · sparse.PooledMulVec     │
//	      └────────────────────────────────────────────┘
//
// Kernels draw every vector from the Workspace arena and keep any
// structured state (Krylov families, Gram buffers) cached across
// solves, so a warm repeated solve on one kernel performs zero heap
// allocations — the property the public solve.Session serves through.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vrcg/internal/machine"
	"vrcg/internal/vec"
	"vrcg/precond"
)

// ErrIndefinite is returned when an iteration encounters a curvature
// <p, Ap> <= 0, meaning the operator is not positive definite.
var ErrIndefinite = errors.New("krylov: operator not positive definite")

// ErrBreakdown is returned when an iteration produces a non-finite or
// degenerate scalar and cannot continue.
var ErrBreakdown = errors.New("krylov: iteration breakdown")

// ErrBadOption is returned when solver options are invalid for the
// method (negative look-ahead, zero block size, and the like). All
// solver packages wrap it so callers can errors.Is against one sentinel
// regardless of the method.
var ErrBadOption = errors.New("krylov: invalid solver option")

// ErrUnsupportedOperator is returned when a method needs an operator
// capability the supplied type lacks (the normal-equations methods need
// transpose products, sparse.TransposeMulVec).
var ErrUnsupportedOperator = errors.New("krylov: operator type not supported by this method")

// Stats counts the work an iterative solve performed. Flops follow the
// usual convention: 2n per inner product or axpy, 2*nnz per sparse
// matrix–vector product.
type Stats struct {
	MatVecs       int
	InnerProducts int
	VectorUpdates int
	PrecondSolves int
	Flops         int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MatVecs += other.MatVecs
	s.InnerProducts += other.InnerProducts
	s.VectorUpdates += other.VectorUpdates
	s.PrecondSolves += other.PrecondSolves
	s.Flops += other.Flops
}

// String summarizes the counts.
func (s Stats) String() string {
	return fmt.Sprintf("matvecs=%d dots=%d updates=%d precond=%d flops=%d",
		s.MatVecs, s.InnerProducts, s.VectorUpdates, s.PrecondSolves, s.Flops)
}

// Config is the one option set every engine-backed method consumes; it
// replaces the per-package Options structs the method silos used to
// duplicate. A method ignores fields it has no use for (S does nothing
// to cg), so one Config can drive every kernel in a sweep.
type Config struct {
	// MaxIter bounds the iteration count; 0 means 10*n.
	MaxIter int
	// Tol is the relative residual tolerance ||r|| <= Tol*||b||;
	// 0 means 1e-10.
	Tol float64
	// X0 is the initial guess; nil means the zero vector. It is read,
	// never modified.
	X0 vec.Vector
	// RecordHistory enables Result.History (History[0] is the initial
	// residual norm).
	RecordHistory bool
	// Callback, when non-nil, is invoked after each iteration with the
	// iteration number and current residual norm; returning false stops
	// the solve early (Result.Converged stays false unless the
	// tolerance was already met).
	Callback func(iter int, resNorm float64) bool
	// Pool, when non-nil, routes the hot-path kernels — SpMV, dots,
	// axpys — through the shared worker-pool execution engine. Nil
	// keeps the serial kernels. The Workspace must have been built for
	// the same pool.
	Pool *vec.Pool
	// Precond supplies M^{-1} for the preconditioned methods (pcg).
	// Nil selects the identity.
	Precond precond.Preconditioner

	// K is the look-ahead parameter of the paper's restructured
	// recurrences (vrcg; K >= 0).
	K int
	// ReanchorEvery is the vrcg stabilization interval: every n
	// iterations the scalar windows are recomputed from direct inner
	// products. 0 selects the K-dependent default; negative disables.
	ReanchorEvery int
	// WindowOnlyReanchor restricts vrcg re-anchoring to the scalar
	// windows, skipping the 2k+1 family-rebuild matvecs.
	WindowOnlyReanchor bool
	// ValidateEvery makes vrcg compute diagnostic-only direct inner
	// products every n iterations, populating Result.Drift.
	ValidateEvery int
	// ResidualReplaceEvery makes vrcg replace the recursive residual
	// with the true residual b - A x every n iterations. 0 disables.
	ResidualReplaceEvery int

	// NoScaling disables the Gershgorin spectral scaling of the parcg
	// look-ahead kernel (the A3 ablation: unscaled Gram sequences span
	// ||A||^(4k) and overflow for deep look-ahead).
	NoScaling bool
	// Blocking makes the parcg look-ahead kernel evaluate each anchor's
	// base-product batch at issue instead of overlapping it with the
	// following SpMV (s-step/Chronopoulos–Gear timing semantics;
	// numerically identical).
	Blocking bool

	// S is the s-step block size (sstep; S >= 1, S = 1 is standard CG).
	S int

	// Restart is the GMRES restart length m (gmres; 0 selects
	// min(30, n)).
	Restart int
}

func (c Config) withDefaults(n int) Config {
	if c.MaxIter == 0 {
		c.MaxIter = 10 * n
	}
	if c.Tol == 0 {
		c.Tol = 1e-10
	}
	return c
}

// DriftStats records how far the vrcg recurrence-produced scalars
// wandered from directly computed inner products (measured only at
// ValidateEvery checkpoints).
type DriftStats struct {
	// MaxRelRR is the maximum relative error of the recurrence (r,r).
	MaxRelRR float64
	// MaxRelPAP is the maximum relative error of the recurrence (p,Ap).
	MaxRelPAP float64
	// Checks is the number of drift checkpoints taken.
	Checks int
}

// Result is the canonical outcome of an engine solve, shared by every
// kernel. Fields a method does not produce stay at their zero values
// (Blocks outside sstep, the drift diagnostics outside vrcg).
type Result struct {
	// X is the final iterate. It aliases kernel workspace storage:
	// valid only until the next solve on the same kernel.
	X vec.Vector
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the residual tolerance was met.
	Converged bool
	// ResidualNorm is the final (recursively updated) residual 2-norm.
	ResidualNorm float64
	// TrueResidualNorm is ||b - A x|| computed directly at exit.
	TrueResidualNorm float64
	// History holds per-iteration residual norms when requested
	// (History[0] is the initial residual).
	History []float64
	// Stats counts the work performed.
	Stats Stats

	// Blocks is the number of s-step blocks executed (sstep only).
	Blocks int

	// K echoes the look-ahead parameter used (vrcg only).
	K int
	// Reanchors counts direct window recomputations (vrcg).
	Reanchors int
	// Refreshes counts family rebuilds, 2k+1 matvecs each (vrcg).
	Refreshes int
	// Replacements counts residual replacements (vrcg).
	Replacements int
	// ValidationDots counts diagnostic-only inner products (vrcg).
	ValidationDots int
	// FallbackDots counts direct (r,r) evaluations forced by a
	// non-positive recurrence value (vrcg).
	FallbackDots int
	// Drift holds scalar drift diagnostics (vrcg; see
	// Config.ValidateEvery).
	Drift DriftStats

	// Phases holds the per-iteration phase latency histograms of the
	// real-parallel kernels (parcg family): wall time split into SpMV,
	// reduction wait, and vector updates, measured on actual hardware.
	// Zero (Phases.Empty()) for the non-instrumented methods.
	Phases PhaseSet

	// Clocks is the simulated parallel-time trajectory of the
	// machine-model methods (parcg family, instrumented machine mode):
	// Clocks[i] is the machine MaxClock after iteration i+1.
	Clocks []float64
	// Machine holds the simulated machine's communication totals
	// (parcg family only).
	Machine machine.Stats
}

// PerIterTime estimates the steady-state parallel time per iteration of
// a simulated-machine solve as the median clock increment after the
// start-up transient. The median is exact for the uniform trajectories
// of CG and pipelined CG, and for the recurrence methods it is robust
// to the occasional drift-fallback iteration (a blocking reduction or
// emergency re-anchor) that would contaminate a mean. NaN when the
// result has no Clocks (the shared-memory methods) or fewer than two
// iterations.
func (r *Result) PerIterTime() float64 {
	n := len(r.Clocks)
	if n < 2 {
		return math.NaN()
	}
	skip := n / 4
	if skip < 1 {
		skip = 1
	}
	deltas := make([]float64, 0, n-skip)
	for i := skip; i < n; i++ {
		deltas = append(deltas, r.Clocks[i]-r.Clocks[i-1])
	}
	sort.Float64s(deltas)
	m := len(deltas)
	if m == 0 {
		return math.NaN()
	}
	if m%2 == 1 {
		return deltas[m/2]
	}
	return 0.5 * (deltas[m/2-1] + deltas[m/2])
}

// TotalTime returns the final simulated machine clock of a
// machine-model solve — the end-to-end parallel time including
// start-up. NaN for the shared-memory methods.
func (r *Result) TotalTime() float64 {
	if len(r.Clocks) == 0 {
		return math.NaN()
	}
	return r.Clocks[len(r.Clocks)-1]
}
