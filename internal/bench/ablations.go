package bench

import (
	"fmt"

	"vrcg/internal/collective"
	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/internal/vec"
	"vrcg/solve"
	"vrcg/sparse"
)

// Ablations for the design choices DESIGN.md calls out: each isolates
// one mechanism of the implementation and shows what it buys.

// A1ReanchorInterval sweeps the re-anchoring interval: the stabilization
// frequency trades direct inner products against recurrence drift.
func A1ReanchorInterval() *Table {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: re-anchor interval (VRCG k=3, Poisson2D 16x16, tol 1e-9)",
		Columns: []string{"interval", "iters", "converged", "true rel residual", "drift (p,Ap)", "dots/iter"},
	}
	a := sparse.Poisson2D(16)
	b := vec.New(a.Dim())
	vec.Random(b, 61)
	bn := vec.Norm2(b)
	for _, interval := range []int{-1, 2, 4, 8, 16, 32} {
		res, err := solve.MustNew("vrcg").Solve(a, b,
			solve.WithLookahead(3), solve.WithTol(1e-9), solve.WithMaxIter(4000),
			solve.WithReanchorEvery(interval), solve.WithValidateEvery(1))
		label := fmt.Sprintf("%d", interval)
		if interval < 0 {
			label = "never"
		}
		if !usable(err) {
			t.AddRow(label, "-", false, "breakdown", "-", "-")
			continue
		}
		t.AddRow(label, res.Iterations, res.Converged,
			res.TrueResidualNorm/bn, res.Drift.MaxRelPAP,
			float64(res.Stats.InnerProducts)/float64(res.Iterations))
	}
	t.Notes = append(t.Notes,
		"small intervals: more direct dots, tiny drift; large/never: drift grows, convergence degrades",
		"the default interval is max(2, ceil(8/(k+1)))")
	return t
}

// A2StabilizationModes contrasts the stabilization mechanisms at a fixed
// interval: window-only re-anchoring, family refresh, and residual
// replacement.
func A2StabilizationModes() *Table {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: stabilization mode (VRCG k=3, interval 8, Poisson1D 128, tol 1e-9)",
		Columns: []string{"mode", "iters", "converged", "true rel residual", "matvec/iter"},
	}
	a := sparse.Poisson1D(128)
	b := vec.New(128)
	vec.Random(b, 62)
	bn := vec.Norm2(b)

	base := []solve.Option{solve.WithLookahead(3), solve.WithTol(1e-9), solve.WithMaxIter(4000)}
	type mode struct {
		name string
		opts []solve.Option
	}
	modes := []mode{
		{"none", []solve.Option{solve.WithReanchorEvery(-1)}},
		{"window-only", []solve.Option{solve.WithReanchorEvery(8), solve.WithWindowOnlyReanchor(true)}},
		{"family-refresh", []solve.Option{solve.WithReanchorEvery(8)}},
		{"residual-replace", []solve.Option{solve.WithResidualReplaceEvery(8)}},
	}
	for _, m := range modes {
		res, err := solve.MustNew("vrcg").Solve(a, b, append(append([]solve.Option{}, base...), m.opts...)...)
		if !usable(err) {
			t.AddRow(m.name, "-", false, "breakdown", "-")
			continue
		}
		t.AddRow(m.name, res.Iterations, res.Converged,
			res.TrueResidualNorm/bn,
			float64(res.Stats.MatVecs)/float64(res.Iterations))
	}
	t.Notes = append(t.Notes,
		"none/window-only: cheapest per iteration but drift-limited;",
		"family-refresh and residual-replace pay 2k+1 matvecs per interval and stay accurate")
	return t
}

// A3SpectralScaling isolates the Gershgorin scaling of the distributed
// solver: without it the Gram magnitudes span ||A||^(4k).
func A3SpectralScaling() *Table {
	t := &Table{
		ID:      "A3",
		Title:   "ablation: spectral scaling in the distributed VRCG (P=8, kappa~2.6, ||A||~6e12, tol 1e-8)",
		Columns: []string{"k", "scaling", "iters", "converged", "rel residual", "guard restarts"},
	}
	// Same conditioning as the latency workload but with a physically
	// large norm (a fine-mesh stiffness scale): unscaled Gram sequences
	// reach ||A||^(4k) ~ 1e409 at k=8 — past double-precision overflow —
	// while the scaled solver never sees magnitudes above O(1).
	a := sparse.TridiagToeplitz(512, 4.2e12, -1e12)
	bs := vec.New(512)
	vec.Random(bs, 63)
	bn := vec.Norm2(bs)
	for _, k := range []int{2, 4, 8} {
		for _, noScale := range []bool{false, true} {
			res, err := solve.MustNew("parcg").Solve(a, bs,
				solve.WithProcessors(8), solve.WithLookahead(k),
				solve.WithTol(1e-8), solve.WithMaxIter(600),
				solve.WithSpectralScaling(!noScale))
			label := "on"
			if noScale {
				label = "off"
			}
			if !usable(err) || res.X == nil {
				t.AddRow(k, label, "-", false, "breakdown", "-")
				continue
			}
			restarts := 0
			if res.Drift != nil {
				restarts = res.Drift.Refreshes
			}
			// True residual of the original system (the adapter computes
			// it serially from the gathered solution).
			t.AddRow(k, label, res.Iterations, res.Converged, res.TrueResidualNorm/bn, restarts)
		}
	}
	t.Notes = append(t.Notes,
		"unscaled Gram entries overflow double precision (||A||^(4k) ~ 1e409 at k=8):",
		"the recurrence dies and only the divergence guard's true-residual restart",
		"(guard-restarts column) saves the run; scaling by the Gershgorin bound keeps",
		"the Gram O(1) so the recurrence itself stays finite; residual is ||b-Ax||/||b||")
	return t
}

// A4BatchedReductions isolates the collective-level design choice of
// batching the 3(4k+1) base inner products into one allreduce.
func A4BatchedReductions() *Table {
	t := &Table{
		ID:      "A4",
		Title:   "ablation: batched vs separate base-product reductions (alpha=16, beta=0.01)",
		Columns: []string{"P", "k", "words", "batched time", "separate time", "ratio"},
	}
	for _, p := range []int{64, 256, 1024} {
		for _, k := range []int{2, 8} {
			w := 3 * (4*k + 1)
			batched := machine.New(machine.Config{P: p, Alpha: 16, Beta: 0.01, FlopTime: 0.001})
			contrib := make([][]float64, p)
			for i := range contrib {
				contrib[i] = make([]float64, w)
			}
			collective.AllreduceVec(batched, contrib)

			separate := machine.New(machine.Config{P: p, Alpha: 16, Beta: 0.01, FlopTime: 0.001})
			for j := 0; j < w; j++ {
				collective.AllreduceSum(separate, make([]float64, p))
			}
			t.AddRow(p, k, w, batched.MaxClock(), separate.MaxClock(),
				separate.MaxClock()/batched.MaxClock())
		}
	}
	t.Notes = append(t.Notes,
		"one batched allreduce pays the alpha*log(P) latency once; separate reductions pay it per word —",
		"the batching is what makes the paper's 6k+O(1) base products affordable")
	return t
}

// A5PartitionQuality isolates how the matrix ordering drives the halo
// (communication) volume of the row-block partition: the natural grid
// order, a random shuffle, and RCM recovery.
func A5PartitionQuality() *Table {
	t := &Table{
		ID:      "A5",
		Title:   "ablation: ordering vs halo volume (2D Poisson 24x24, P=8 row blocks)",
		Columns: []string{"ordering", "bandwidth", "halo msgs/proc", "total halo words", "matvec time (alpha=16)"},
	}
	p := 8
	natural := sparse.Poisson2D(24)

	// Random symmetric shuffle.
	n := natural.Dim()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	s := uint64(99)
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	shuffled, err := sparse.PermuteSymmetric(natural, perm)
	if err != nil {
		panic(err)
	}
	rcmPerm := sparse.RCMOrder(shuffled)
	recovered, err := sparse.PermuteSymmetric(shuffled, rcmPerm)
	if err != nil {
		panic(err)
	}

	for _, cs := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"natural grid", natural},
		{"random shuffle", shuffled},
		{"RCM of shuffle", recovered},
	} {
		dm := parcg.NewDistMatrix(cs.a, p)
		m := machine.New(machine.Config{P: p, Alpha: 16, Beta: 0.01, FlopTime: 0.001})
		x := parcg.NewDist(n, p)
		dst := parcg.NewDist(n, p)
		dm.MulVec(m, dst, x)
		t.AddRow(cs.name, sparse.Bandwidth(cs.a), dm.HaloDegree(), dm.TotalHaloWords(), m.MaxClock())
	}
	t.Notes = append(t.Notes,
		"a shuffled ordering makes every processor talk to every other (halo explodes);",
		"RCM restores a banded structure and near-natural communication volume")
	return t
}

// Ablations runs every ablation table.
func Ablations() []*Table {
	return []*Table{
		A1ReanchorInterval(),
		A2StabilizationModes(),
		A3SpectralScaling(),
		A4BatchedReductions(),
		A5PartitionQuality(),
		A6EngineThroughput(),
	}
}
