package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatAndCSV(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x,y", 0.0001)
	txt := tb.Format()
	if !strings.Contains(txt, "demo") || !strings.Contains(txt, "2.500") {
		t.Fatalf("format missing content:\n%s", txt)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("CSV escaping failed:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Fatalf("CSV has %d lines, want 3", lines)
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := &Table{Columns: []string{"one"}}
	tb.AddRow(1, 2)
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tb := E1DepthScaling()
	if len(tb.Rows) < 5 {
		t.Fatalf("E1 has %d rows", len(tb.Rows))
	}
	// CG column increases; VRCG near-flat; speedup increasing.
	prevCG, prevSp := 0.0, 0.0
	var firstVR, lastVR float64
	for i, row := range tb.Rows {
		cg := parseF(t, row[2])
		vr := parseF(t, row[3])
		sp := parseF(t, row[4])
		if cg <= prevCG {
			t.Fatalf("E1 row %d: CG rate not increasing", i)
		}
		if sp < prevSp-0.2 {
			t.Fatalf("E1 row %d: speedup decreasing substantially", i)
		}
		if i == 0 {
			firstVR = vr
		}
		lastVR = vr
		prevCG, prevSp = cg, sp
	}
	if lastVR > firstVR+4 {
		t.Fatalf("E1: VRCG rate grew from %v to %v — not double-log flat", firstVR, lastVR)
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2Doubling()
	last := tb.Rows[len(tb.Rows)-1]
	ratio := parseF(t, last[3])
	if ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("E2 final ratio %v not ~2", ratio)
	}
	first := parseF(t, tb.Rows[0][3])
	if ratio < first {
		t.Fatalf("E2 ratio should approach 2: first %v, last %v", first, ratio)
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3DegreeSweep()
	// Rates must be non-decreasing down the d column for each N column.
	for col := 2; col <= 4; col++ {
		prev := 0.0
		for i, row := range tb.Rows {
			v := parseF(t, row[col])
			if v < prev-1e-9 {
				t.Fatalf("E3 col %d row %d: rate decreased with d", col, i)
			}
			prev = v
		}
	}
	// Largest-d row dominated by log d: roughly equal across N columns.
	lastRow := tb.Rows[len(tb.Rows)-1]
	lo := parseF(t, lastRow[2])
	hi := parseF(t, lastRow[4])
	if hi-lo > 4 {
		t.Fatalf("E3: large-d rates should be N-independent: %v vs %v", lo, hi)
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4SequentialCost()
	if len(tb.Rows) < 4 {
		t.Fatalf("E4 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		mv := parseF(t, row[3])
		if row[0] == "CG" || row[0] == "VRCG" || row[0] == "PIPECG" {
			if mv > 1.6 {
				t.Fatalf("E4 %s: matvec/it = %v, want ~1", row[0], mv)
			}
		}
		// Convergence required for the numerically safe configurations;
		// VRCG with k=4 under the paper-pure (window-only) profile may
		// honestly fail — that row documents the instability.
		if row[0] == "VRCG" && row[1] == "4" {
			continue
		}
		if row[7] != "true" {
			t.Fatalf("E4 %s k=%s did not converge", row[0], row[1])
		}
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5Exactness()
	// With re-anchoring, drift of (p,Ap) stays small for every k.
	for _, row := range tb.Rows {
		if row[1] != "4" {
			continue
		}
		if row[4] == "breakdown" {
			t.Fatalf("E5 k=%s with re-anchoring broke down", row[0])
		}
		if d := parseF(t, row[4]); d > 1e-2 {
			t.Fatalf("E5 k=%s: anchored drift %v too large", row[0], d)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6Stability()
	// For kappa=10 every method converges.
	okSmall := 0
	for _, row := range tb.Rows {
		if row[0] == "10.00" || row[0] == "10.000" || row[0] == "10" {
			if row[5] == "true" {
				okSmall++
			}
		}
	}
	if okSmall < 4 {
		t.Fatalf("E6: only %d converged solves at kappa=10", okSmall)
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7Successors()
	// At the largest alpha, CG/VRCG speedup must exceed the low-alpha one.
	first := parseF(t, tb.Rows[0][4])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][4])
	if last <= first {
		t.Fatalf("E7: speedup should grow with alpha: %v -> %v", first, last)
	}
	if last < 2 {
		t.Fatalf("E7: high-latency CG/VRCG speedup only %v", last)
	}
	// Blocking (s-step semantics) total time is never below pipelined.
	for i, row := range tb.Rows {
		if parseF(t, row[6]) < parseF(t, row[5])-1e-9 {
			t.Fatalf("E7 row %d: blocking total below pipelined", i)
		}
	}
}

func TestE8ContainsFigure(t *testing.T) {
	out := E8Schedule(4)
	for _, want := range []string{"Figure 1", "REDUCE", "SCALAR", "inner products"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E8 output missing %q", want)
		}
	}
	// Default k.
	if !strings.Contains(E8Schedule(0), "Figure 1") {
		t.Fatal("E8 default k failed")
	}
}

func TestAllRuns(t *testing.T) {
	tables := All()
	if len(tables) != 9 {
		t.Fatalf("All returned %d tables", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 {
			t.Fatalf("table %q empty", tb.ID)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		seen[tb.ID] = true
		if tb.Format() == "" || tb.CSV() == "" {
			t.Fatalf("table %s renders empty", tb.ID)
		}
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9Startup()
	for i, row := range tb.Rows {
		be := parseF(t, row[5])
		if be < 1 || be > 40 {
			t.Fatalf("E9 row %d: break-even %v implausible", i, be)
		}
		if parseF(t, row[4]) >= parseF(t, row[3]) {
			t.Fatalf("E9 row %d: VRCG rate not below CG", i)
		}
	}
	// Startup grows with k (more family matvecs).
	first := parseF(t, tb.Rows[0][2])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][2])
	if last <= first {
		t.Fatal("E9: startup should grow with k")
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10WindowForm()
	var firstW, lastW float64
	for i, row := range tb.Rows {
		c := parseF(t, row[3])
		w := parseF(t, row[4])
		if w > c+1e-9 {
			t.Fatalf("E10 row %d: window form %v above contract form %v", i, w, c)
		}
		if i == 0 {
			firstW = w
		}
		lastW = w
	}
	if lastW > firstW+1 {
		t.Fatalf("E10: window form should be flat in N: %v -> %v", firstW, lastW)
	}
}
