package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// usable reports whether a solve outcome is meaningful for
// tabulation: clean convergence, or the honest not-converged result
// (the tables report the converged column themselves).
func usable(err error) bool { return err == nil || errors.Is(err, solve.ErrNotConverged) }

// EnginePool is the worker pool the wall-clock ablation (A6) routes
// kernels through: the shared default engine (all CPUs).
var EnginePool = vec.DefaultPool

// TablePool is the pool the numeric experiment tables (E4/E5/E6) pass
// to the solvers. Routing them through pooled kernels exercises the
// engine, but pooled reductions reassociate by chunk, so the worker
// count is pinned rather than host-sized: the printed floating-point
// values (drift, residuals) stay reproducible across machines.
var TablePool = vec.NewPool(4)

// timeIt runs f repeatedly until ~minDuration has elapsed and returns
// the mean time per call in microseconds.
func timeIt(minDuration time.Duration, f func()) float64 {
	f() // warm caches, workers, partitions
	var elapsed time.Duration
	calls := 0
	for elapsed < minDuration {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		calls++
	}
	return float64(elapsed.Microseconds()) / float64(calls)
}

// A6EngineThroughput isolates the execution engine itself: wall-clock of
// the serial kernels against the persistent-pool kernels, plus the
// steady-state allocation count of a Workspace PCG solve. On a
// single-core host the pooled columns should match serial (the engine
// falls back); on multicore they should beat it at these sizes.
func A6EngineThroughput() *Table {
	t := &Table{
		ID:      "A6",
		Title:   fmt.Sprintf("ablation: execution engine, serial vs pooled kernels (workers=%d)", EnginePool.Workers()),
		Columns: []string{"kernel", "n", "serial us/op", "pooled us/op", "speedup"},
	}
	const budget = 20 * time.Millisecond

	n := 1 << 18
	x := vec.New(n)
	y := vec.New(n)
	vec.Random(x, 1)
	vec.Random(y, 2)
	var sink float64
	serialDot := timeIt(budget, func() { sink += vec.Dot(x, y) })
	pooledDot := timeIt(budget, func() { sink += EnginePool.Dot(x, y) })
	t.AddRow("dot", n, serialDot, pooledDot, serialDot/pooledDot)

	serialAxpy := timeIt(budget, func() { vec.Axpy(1e-9, x, y) })
	pooledAxpy := timeIt(budget, func() { EnginePool.Axpy(1e-9, x, y) })
	t.AddRow("axpy", n, serialAxpy, pooledAxpy, serialAxpy/pooledAxpy)

	a := sparse.Poisson2D(256) // n = 65536, nnz ~ 327k
	ax := vec.New(a.Dim())
	ay := vec.New(a.Dim())
	vec.Random(ax, 3)
	serialSpMV := timeIt(budget, func() { a.MulVec(ay, ax) })
	pooledSpMV := timeIt(budget, func() { a.MulVecPool(EnginePool, ay, ax) })
	t.AddRow("SpMV poisson2d", a.Dim(), serialSpMV, pooledSpMV, serialSpMV/pooledSpMV)

	jac, err := precond.NewJacobi(a)
	if err == nil {
		b := vec.New(a.Dim())
		vec.Random(b, 4)
		// Two pcg solvers from the registry, one serial and one on the
		// engine pool; each keeps its workspace warm across the timing
		// loop, so this measures the steady-state regime.
		serialOpts := []solve.Option{solve.WithPreconditioner(jac), solve.WithTol(1e-6), solve.WithMaxIter(25)}
		pooledOpts := append([]solve.Option{solve.WithPool(EnginePool)}, serialOpts...)
		serialSolver := solve.MustNew("pcg")
		serialPCG := timeIt(budget, func() {
			if _, err := serialSolver.Solve(a, b, serialOpts...); !usable(err) {
				panic(err)
			}
		})
		pooledSolver := solve.MustNew("pcg")
		pooledPCG := timeIt(budget, func() {
			if _, err := pooledSolver.Solve(a, b, pooledOpts...); !usable(err) {
				panic(err)
			}
		})
		t.AddRow("PCG 25 iters", a.Dim(), serialPCG, pooledPCG, serialPCG/pooledPCG)
	}

	_ = sink
	t.Notes = append(t.Notes,
		fmt.Sprintf("host: %d CPU(s); pooled kernels fall back to serial below per-opcode cutoffs (dot cutoff %d elements)",
			runtime.GOMAXPROCS(0), EnginePool.DotCutoff()),
		"the PCG row also swaps per-solve allocation (plain PCG) for a zero-allocation Workspace")
	return t
}
