package bench

import (
	"strings"
	"testing"
)

func TestA1Shape(t *testing.T) {
	tb := A1ReanchorInterval()
	if len(tb.Rows) < 5 {
		t.Fatalf("A1 has %d rows", len(tb.Rows))
	}
	// The tightest interval must converge with tiny drift.
	var tight, never []string
	for _, row := range tb.Rows {
		if row[0] == "2" {
			tight = row
		}
		if row[0] == "never" {
			never = row
		}
	}
	if tight == nil || never == nil {
		t.Fatal("A1 missing interval rows")
	}
	if tight[2] != "true" {
		t.Fatal("A1: interval 2 did not converge")
	}
	if never[2] == "true" && never[4] != "breakdown" {
		// Un-anchored run converged: then its drift must exceed the
		// anchored one's.
		if parseF(t, never[4]) < parseF(t, tight[4]) {
			t.Fatal("A1: un-anchored drift smaller than anchored")
		}
	}
}

func TestA2Shape(t *testing.T) {
	tb := A2StabilizationModes()
	if len(tb.Rows) != 4 {
		t.Fatalf("A2 has %d rows", len(tb.Rows))
	}
	byMode := map[string][]string{}
	for _, row := range tb.Rows {
		byMode[row[0]] = row
	}
	for _, m := range []string{"family-refresh", "residual-replace"} {
		if byMode[m][2] != "true" {
			t.Fatalf("A2: %s did not converge", m)
		}
	}
	// Stabilized modes pay more matvecs per iteration than window-only.
	if byMode["window-only"][2] == "true" {
		wo := parseF(t, byMode["window-only"][4])
		fr := parseF(t, byMode["family-refresh"][4])
		if fr <= wo {
			t.Fatal("A2: family refresh should cost extra matvecs")
		}
	}
}

func TestA3Shape(t *testing.T) {
	tb := A3SpectralScaling()
	// At k=8 the unscaled Gram sequence overflows double precision
	// (||A||^(4k) ~ 1e409): with scaling on, the recurrence itself
	// converges and the divergence guard never fires; with scaling off,
	// the recurrence dies and any convergence is the guard's
	// true-residual restart bailing the run out (guard-restarts > 0).
	for _, row := range tb.Rows {
		if row[0] != "8" {
			continue
		}
		if row[1] == "on" {
			if row[3] != "true" {
				t.Fatal("A3: k=8 with scaling should converge")
			}
			if row[5] != "0" {
				t.Fatalf("A3: k=8 with scaling should not need guard restarts, got %s", row[5])
			}
		}
		if row[1] == "off" && row[3] == "true" && row[5] == "0" {
			t.Fatal("A3: k=8 without scaling converged without the guard's help — the overflow ablation no longer bites")
		}
	}
}

func TestA4Shape(t *testing.T) {
	tb := A4BatchedReductions()
	for i, row := range tb.Rows {
		if parseF(t, row[5]) <= 1 {
			t.Fatalf("A4 row %d: batching shows no advantage", i)
		}
	}
	// Advantage grows with the batch width w.
	small := parseF(t, tb.Rows[0][5]) // k=2
	big := parseF(t, tb.Rows[1][5])   // k=8 same P
	if big <= small {
		t.Fatalf("A4: wider batches should amortize more: %v vs %v", small, big)
	}
}

func TestA5Shape(t *testing.T) {
	tb := A5PartitionQuality()
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	nat, shuf, rcm := rows["natural grid"], rows["random shuffle"], rows["RCM of shuffle"]
	if nat == nil || shuf == nil || rcm == nil {
		t.Fatal("A5 missing rows")
	}
	// Shuffling makes every processor talk to nearly every other and
	// multiplies the transfer volume; RCM restores near-natural costs.
	if parseF(t, shuf[2]) <= parseF(t, nat[2])*2 {
		t.Fatal("A5: shuffle should multiply the message count")
	}
	if parseF(t, shuf[3]) <= parseF(t, nat[3])*2 {
		t.Fatal("A5: shuffle should multiply the halo volume")
	}
	if parseF(t, rcm[2]) > parseF(t, nat[2])+1 {
		t.Fatal("A5: RCM should restore the message count")
	}
	if parseF(t, rcm[4]) >= parseF(t, shuf[4]) {
		t.Fatal("A5: RCM should cut the matvec time")
	}
}

func TestAblationsAll(t *testing.T) {
	tabs := Ablations()
	if len(tabs) != 6 {
		t.Fatalf("Ablations returned %d tables", len(tabs))
	}
	for _, tb := range tabs {
		if !strings.HasPrefix(tb.ID, "A") || len(tb.Rows) == 0 {
			t.Fatalf("bad ablation table %q", tb.ID)
		}
	}
}
