package bench

import (
	"fmt"
	"math"

	"vrcg/internal/depth"
	"vrcg/internal/machine"
	"vrcg/internal/trace"
	"vrcg/internal/vec"
	"vrcg/solve"
	"vrcg/sparse"
)

// E1DepthScaling regenerates the headline comparison (claims C1 and C4):
// per-iteration parallel time of standard CG (~2 log2 N) versus the
// restructured algorithm with k = log2 N (~log log N), in the paper's
// dependency-depth unit.
func E1DepthScaling() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "per-iteration parallel time: standard CG ~ c*log(N) vs VRCG(k=log N) ~ c*log(log N)",
		Columns: []string{"log2(N)", "N", "CG", "VRCG(k=logN)", "speedup", "2*log2(N)", "log2(6k+5)+c"},
	}
	d := 5
	for _, lg := range []int{6, 8, 10, 12, 14, 16, 18, 20, 22} {
		n := 1 << lg
		cg := depth.CGRate(n, d)
		vr := depth.VRCGRate(n, d, lg)
		t.AddRow(lg, n, cg, vr, cg/vr, 2*lg, depth.Log2Ceil(6*lg+5)+4)
	}
	t.Notes = append(t.Notes,
		"expected shape: CG column grows ~2 per unit of log2(N); VRCG column near-flat (double-log)",
		"speedup grows ~ log(N)/log(log(N)); model: 2D 5-point stencil (d=5)")
	return t
}

// E2Doubling regenerates claim C2 (§3): the k=1 one-step recurrence
// approximately doubles parallel speed.
func E2Doubling() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "k=1 look-ahead approximately doubles parallel speed (paper §3)",
		Columns: []string{"log2(N)", "CG", "VRCG(k=1)", "ratio"},
	}
	d := 5
	for _, lg := range []int{8, 12, 16, 20, 24, 28} {
		n := 1 << lg
		cg := depth.CGRate(n, d)
		vr := depth.VRCGRate(n, d, 1)
		t.AddRow(lg, cg, vr, cg/vr)
	}
	t.Notes = append(t.Notes, "expected shape: ratio approaches 2 from below as N grows")
	return t
}

// E3DegreeSweep regenerates claim C6 (§6): per-iteration time of the
// restructured algorithm is max(log d, log log N) + O(1).
func E3DegreeSweep() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "VRCG per-iteration time = max(log d, log log N) + O(1) (paper §6)",
		Columns: []string{"d", "log2(d)", "rate(N=2^14)", "rate(N=2^20)", "rate(N=2^26)"},
	}
	for _, d := range []int{3, 5, 7, 9, 27, 128, 1024, 4096, 16384} {
		t.AddRow(d, depth.Log2Ceil(d),
			depth.VRCGRate(1<<14, d, 14),
			depth.VRCGRate(1<<20, d, 20),
			depth.VRCGRate(1<<26, d, 26))
	}
	t.Notes = append(t.Notes,
		"expected shape: flat in d below the crossover log(d) ~ log(log N)+c, then slope ~1 per log2(d)",
		"columns differ only via the scalar-contraction (log log N) term")
	return t
}

// E4SequentialCost regenerates claim C7 (§6): sequential complexity of
// the restructured algorithm is essentially that of standard CG — one
// matvec per iteration; direct inner products O(1) per iteration.
func E4SequentialCost() *Table {
	t := &Table{
		ID:    "E4",
		Title: "sequential cost per iteration (paper §6: still ~2 inner products + 1 matvec)",
		Columns: []string{"method", "k", "iters", "matvec/it", "dots/it", "updates/it",
			"flops/it", "converged"},
	}
	a := sparse.Poisson2D(24)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 101)

	row := func(name string, k interface{}, r *solve.Result) {
		it := float64(r.Iterations)
		t.AddRow(name, k, r.Iterations,
			float64(r.Stats.MatVecs)/it, float64(r.Stats.InnerProducts)/it,
			float64(r.Stats.VectorUpdates)/it, float64(r.Stats.Flops)/it, r.Converged)
	}
	if r, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-8)); usable(err) {
		row("CG", "-", r)
	}
	for _, k := range []int{1, 2, 4} {
		// Window-only re-anchoring = the paper-pure cost profile (one
		// matvec per iteration exactly). Large k may fail to converge
		// under this profile — the honest finite-precision price,
		// reported in the last column.
		r, err := solve.MustNew("vrcg").Solve(a, b, solve.WithLookahead(k), solve.WithTol(1e-8),
			solve.WithMaxIter(4000), solve.WithWindowOnlyReanchor(true), solve.WithPool(TablePool))
		if !usable(err) {
			continue
		}
		row("VRCG", k, r)
	}
	if r, err := solve.MustNew("sstep").Solve(a, b, solve.WithBlockSize(4), solve.WithTol(1e-8),
		solve.WithPool(TablePool)); usable(err) {
		row("s-step", 4, r)
	}
	if r, err := solve.MustNew("pipecg").Solve(a, b, solve.WithTol(1e-8)); usable(err) {
		row("PIPECG", "-", r)
	}
	t.Notes = append(t.Notes,
		"expected shape: matvec/it ~1 for CG, VRCG and PIPECG; VRCG dots/it ~3+O(1) amortized (paper claims 2 via unpublished recurrences)",
		"VRCG vector updates grow with k (family maintenance) — the sequential price of the look-ahead")
	return t
}

// E5Exactness regenerates claims C3/C5: the recurrence-produced scalars
// equal direct inner products (up to floating-point drift, which the
// table quantifies).
func E5Exactness() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "recurrence scalars vs direct inner products: max relative drift (claims C3/C5)",
		Columns: []string{"k", "reanchor", "iters", "max drift (r,r)", "max drift (p,Ap)", "fallbacks"},
	}
	a := sparse.Poisson2D(16)
	b := vec.New(a.Dim())
	vec.Random(b, 77)
	for _, k := range []int{1, 2, 4, 6} {
		for _, re := range []int{-1, 4} {
			res, err := solve.MustNew("vrcg").Solve(a, b,
				solve.WithLookahead(k), solve.WithTol(1e-8), solve.WithMaxIter(3000),
				solve.WithValidateEvery(1), solve.WithReanchorEvery(re), solve.WithPool(TablePool))
			label := fmt.Sprintf("%d", re)
			if re < 0 {
				label = "never"
			}
			if !usable(err) {
				t.AddRow(k, label, "-", "breakdown", "breakdown", "-")
				continue
			}
			t.AddRow(k, label, res.Iterations, res.Drift.MaxRelRR, res.Drift.MaxRelPAP, res.Drift.FallbackDots)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: drift ~1e-12..1e-6 with re-anchoring; grows to O(1) (or breakdown) without — the",
		"finite-precision behaviour that motivated the stabilized successors (Chronopoulos-Gear, Ghysels-Vanroose)")
	return t
}

// E6Stability regenerates the implicit stability story: convergence of
// the look-ahead algorithm versus k and conditioning.
func E6Stability() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "numerical robustness vs look-ahead k and conditioning (successor-motivating behaviour)",
		Columns: []string{"kappa", "method", "k", "iters", "true rel residual", "converged"},
	}
	n := 256
	for _, kappa := range []float64{10, 1e3, 1e5} {
		a := sparse.PrescribedSpectrum(n, kappa)
		b := vec.New(n)
		vec.Random(b, 7)
		bn := vec.Norm2(b)

		cg, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-10), solve.WithMaxIter(8000))
		if usable(err) {
			t.AddRow(kappa, "CG", "-", cg.Iterations, cg.TrueResidualNorm/bn, cg.Converged)
		}
		for _, k := range []int{1, 2, 4, 8} {
			vr, err := solve.MustNew("vrcg").Solve(a, b, solve.WithLookahead(k),
				solve.WithTol(1e-10), solve.WithMaxIter(8000), solve.WithPool(TablePool))
			if !usable(err) {
				t.AddRow(kappa, "VRCG", k, "-", "breakdown", false)
				continue
			}
			t.AddRow(kappa, "VRCG", k, vr.Iterations, vr.TrueResidualNorm/bn, vr.Converged)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: VRCG matches CG for small k / mild kappa; iteration counts inflate or solves fail",
		"as k and kappa grow — the monomial-basis instability later work fixed with better bases")
	return t
}

// E7Successors compares the 1983 algorithm against its published
// successors on the simulated machine across communication latencies.
func E7Successors() *Table {
	t := &Table{
		ID:    "E7",
		Title: "simulated machine, per-iteration parallel time vs latency alpha (P=256, n=4096, kappa~2.6)",
		Columns: []string{"alpha", "CG", "PIPECG", "VRCG(k=8)", "CG/VRCG",
			"pipelined total", "blocking total"},
	}
	a := sparse.TridiagToeplitz(4096, 4.2, -1)
	p := 256
	for _, alpha := range []float64{1, 8, 64, 512} {
		cfg := machine.Config{P: p, Alpha: alpha, Beta: 0.01, FlopTime: 0.001}
		bs := vec.New(a.Dim())
		vec.Random(bs, 55)

		run := func(method string, extra ...solve.Option) *solve.Result {
			opts := append([]solve.Option{
				solve.WithMachineConfig(cfg), solve.WithTol(1e-6), solve.WithMaxIter(120),
			}, extra...)
			res, err := solve.MustNew(method).Solve(a, bs, opts...)
			if !usable(err) {
				return nil
			}
			return res
		}
		rate := func(res *solve.Result) float64 {
			if res == nil {
				return math.NaN()
			}
			return res.PerIterTime()
		}
		total := func(res *solve.Result) float64 {
			if res == nil {
				return math.NaN()
			}
			return res.TotalTime()
		}
		cg := rate(run("parcg-cg"))
		pipe := rate(run("parcg-pipe"))
		vrRes := run("parcg", solve.WithLookahead(8))
		ssRes := run("parcg", solve.WithLookahead(8), solve.WithBlocking(true))
		t.AddRow(alpha, cg, pipe, rate(vrRes), cg/rate(vrRes), total(vrRes), total(ssRes))
	}
	t.Notes = append(t.Notes,
		"expected shape: at low alpha all comparable; as alpha grows CG pays 2 reductions/iter,",
		"PIPECG hides one, VRCG(k) hides them entirely: CG/VRCG grows with alpha",
		"the last two columns contrast pipelined anchors (the paper) with blocking anchors (s-step",
		"semantics): the once-per-block stall appears in total time, not the per-iteration median")
	return t
}

// E9Startup quantifies the paper's "after an initial start up" caveat:
// the restructured algorithm pays k+2 matvecs and 6k+6 inner products
// before iterating, so there is a break-even iteration count below
// which standard CG finishes first even on the parallel machine.
func E9Startup() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "start-up cost and break-even ('after an initial start up', abstract)",
		Columns: []string{"log2(N)", "k", "startup (depth)", "CG/iter", "VRCG/iter", "break-even iters"},
	}
	d := 5
	for _, lg := range []int{10, 14, 18, 22} {
		n := 1 << lg
		k := lg
		m := depth.NewModel(n, d)
		// Start-up in the depth model: k+1 sequential matvecs to build
		// the families plus the first base reduction fan-in.
		startup := float64(k+1)*float64(1+depth.Log2Ceil(d)) + 1 + float64(1+depth.Log2Ceil(n))
		cg := depth.CGRate(n, d)
		vr := depth.VRCGRate(n, d, k)
		// Break-even: startup + j*vr <= j*cg  =>  j >= startup/(cg-vr).
		breakEven := math.Ceil(startup / (cg - vr))
		t.AddRow(lg, k, startup, cg, vr, breakEven)
		_ = m
	}
	t.Notes = append(t.Notes,
		"the look-ahead pays off after a handful of iterations; real solves run hundreds",
		"(startup = (k+1) matvec-depths + one full reduction fan-in)")
	return t
}

// E10WindowForm compares the paper's equation-(*) contraction accounting
// (per-iteration depth ~ log k = log log N) against the sliding-window
// formulation this repository implements (the recurrence details the
// paper deferred): the window form pipelines even the contraction,
// reaching O(1) per-iteration depth for k >= log N — beyond the paper's
// own bound.
func E10WindowForm() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "beyond the paper: contraction form (log log N) vs sliding-window form (O(1))",
		Columns: []string{"log2(N)", "k", "CG", "contract form", "window form", "paper bound log2(6k+5)+c"},
	}
	d := 5
	for _, lg := range []int{10, 14, 18, 22, 26} {
		n := 1 << lg
		t.AddRow(lg, lg, depth.CGRate(n, d),
			depth.VRCGRate(n, d, lg),
			depth.VRCGWindowRate(n, d, lg),
			depth.Log2Ceil(6*lg+5)+4)
	}
	t.Notes = append(t.Notes,
		"the contract form tracks the paper's log log N bound; the window form is flat (O(1)):",
		"spreading the (*) summation across the k-iteration cascade removes the last log factor")
	return t
}

// E8Schedule returns the Figure 1 reproduction: the paper's
// data-movement diagram plus measured pipelined schedules in the depth
// model.
func E8Schedule(k int) string {
	if k < 1 {
		k = 4
	}
	out := "== E8: Figure 1 — principal data movement and the pipelined schedule ==\n\n"
	out += trace.Figure1(k)
	out += "\nPipelined schedule (VRCG, N=2^16, d=5, k=16):\n"
	out += trace.VRCGSchedule(1<<16, 5, 16, 24).Render(96)
	out += "\nSynchronous schedule (standard CG, same problem):\n"
	out += trace.StandardCGSchedule(1<<16, 5, 6).Render(96)
	return out
}

// All runs every tabular experiment in order.
func All() []*Table {
	return []*Table{
		E1DepthScaling(),
		E2Doubling(),
		E3DegreeSweep(),
		E4SequentialCost(),
		E5Exactness(),
		E6Stability(),
		E7Successors(),
		E9Startup(),
		E10WindowForm(),
	}
}
