// Package bench is the experiment harness: it regenerates, as printable
// tables, every quantitative claim of the paper (the paper itself has no
// empirical tables — its claims C1..C7 and Figure 1 are the reproducible
// content; see DESIGN.md section 4 for the experiment index E1..E8).
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes what the table shows and which claim it checks.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes are printed under the table (expected shape, caveats).
	Notes []string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row with %d cells for %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case v == 0:
		return "0"
	case a >= 1e5 || a < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}
