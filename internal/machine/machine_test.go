package machine

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(Config{P: 4, Alpha: 1, Beta: 0.5, FlopTime: 1})
	if m.P() != 4 {
		t.Fatalf("P = %d", m.P())
	}
	if m.MaxClock() != 0 || m.MinClock() != 0 {
		t.Fatal("fresh machine clocks not zero")
	}
	if m.Config().Beta != 0.5 {
		t.Fatal("config not preserved")
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{P: 0},
		{P: 2, Alpha: -1},
		{P: 2, Beta: -0.1},
		{P: 2, FlopTime: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCompute(t *testing.T) {
	m := New(Config{P: 2, FlopTime: 2})
	m.Compute(0, 5)
	if m.Clock(0) != 10 {
		t.Fatalf("clock = %v, want 10", m.Clock(0))
	}
	if m.Clock(1) != 0 {
		t.Fatal("compute leaked to other processor")
	}
	if m.Stats().Flops != 5 {
		t.Fatalf("flops = %d", m.Stats().Flops)
	}
	m.ComputeAll(3)
	if m.Clock(1) != 6 {
		t.Fatalf("ComputeAll clock = %v", m.Clock(1))
	}
}

func TestSendSemantics(t *testing.T) {
	m := New(Config{P: 2, Alpha: 2, Beta: 0.5, FlopTime: 1})
	m.Compute(0, 4) // sender at t=4
	m.Send(0, 1, 10)
	// Departure at 4; sender occupied until 6; arrival 4 + 2 + 5 = 11.
	if m.Clock(0) != 6 {
		t.Fatalf("sender clock %v, want 6", m.Clock(0))
	}
	if m.Clock(1) != 11 {
		t.Fatalf("receiver clock %v, want 11", m.Clock(1))
	}
	st := m.Stats()
	if st.Messages != 1 || st.Words != 10 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSendToLateReceiver(t *testing.T) {
	m := New(Config{P: 2, Alpha: 1, Beta: 0, FlopTime: 1})
	m.Compute(1, 100) // receiver already busy until 100
	m.Send(0, 1, 1)
	if m.Clock(1) != 100 {
		t.Fatalf("receiver clock %v should stay at 100", m.Clock(1))
	}
}

func TestSendSelfIsFree(t *testing.T) {
	m := New(Config{P: 2, Alpha: 5, Beta: 5, FlopTime: 1})
	m.Send(1, 1, 100)
	if m.Clock(1) != 0 {
		t.Fatal("self-send should be free")
	}
	if m.Stats().Messages != 0 {
		t.Fatal("self-send counted as message")
	}
}

func TestExchange(t *testing.T) {
	m := New(Config{P: 2, Alpha: 3, Beta: 1, FlopTime: 1})
	m.Compute(0, 2)
	m.Compute(1, 7)
	m.Exchange(0, 1, 4)
	want := 7.0 + 3 + 4
	if m.Clock(0) != want || m.Clock(1) != want {
		t.Fatalf("exchange clocks %v %v, want %v", m.Clock(0), m.Clock(1), want)
	}
	if m.Stats().Messages != 2 || m.Stats().Words != 8 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestAdvanceTo(t *testing.T) {
	m := New(DefaultConfig(2))
	m.AdvanceTo(0, 50)
	if m.Clock(0) != 50 {
		t.Fatal("AdvanceTo did not raise clock")
	}
	m.AdvanceTo(0, 10)
	if m.Clock(0) != 50 {
		t.Fatal("AdvanceTo lowered clock")
	}
}

func TestForkIsolation(t *testing.T) {
	m := New(DefaultConfig(2))
	m.Compute(0, 5)
	f := m.Fork()
	f.Compute(0, 100)
	if m.Clock(0) != 5 {
		t.Fatal("fork mutated parent clocks")
	}
	if f.Clock(0) != 105 {
		t.Fatalf("fork clock %v", f.Clock(0))
	}
	m.AddStats(f.Stats())
	if m.Stats().Flops != 105 {
		t.Fatalf("AddStats flops %d", m.Stats().Flops)
	}
}

func TestClocksCopy(t *testing.T) {
	m := New(DefaultConfig(3))
	cs := m.Clocks()
	cs[0] = 99
	if m.Clock(0) != 0 {
		t.Fatal("Clocks exposes internal storage")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(DefaultConfig(2))
	for _, f := range []func(){
		func() { m.Clock(2) },
		func() { m.Compute(-1, 1) },
		func() { m.Send(0, 5, 1) },
		func() { m.Compute(0, -1) },
		func() { m.Send(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: clocks never decrease under any operation sequence.
func TestPropClocksMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(Config{P: 4, Alpha: 1, Beta: 0.25, FlopTime: 1})
		prev := m.Clocks()
		for _, op := range ops {
			a := int(op) % 4
			b := int(op>>2) % 4
			switch op % 3 {
			case 0:
				m.Compute(a, int(op)%7)
			case 1:
				m.Send(a, b, int(op)%5)
			case 2:
				m.Exchange(a, b, int(op)%5)
			}
			cur := m.Clocks()
			for i := range cur {
				if cur[i] < prev[i] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSendPhaseParallelism(t *testing.T) {
	// Four disjoint messages posted together: every receiver sees one
	// latency, not a cascade.
	m := New(Config{P: 8, Alpha: 10, Beta: 1, FlopTime: 1})
	m.SendPhase([]Message{
		{From: 0, To: 1, Words: 2},
		{From: 2, To: 3, Words: 2},
		{From: 4, To: 5, Words: 2},
		{From: 6, To: 7, Words: 2},
	})
	for _, i := range []int{1, 3, 5, 7} {
		if m.Clock(i) != 12 {
			t.Fatalf("receiver %d clock %v, want 12", i, m.Clock(i))
		}
	}
	for _, i := range []int{0, 2, 4, 6} {
		if m.Clock(i) != 10 {
			t.Fatalf("sender %d clock %v, want 10 (one send overhead)", i, m.Clock(i))
		}
	}
}

func TestSendPhaseNoReceiveSendCascade(t *testing.T) {
	// A shift pattern 0->1->2->3: with posted sends, receiving must not
	// delay a processor's own send. All receivers end at alpha+beta.
	m := New(Config{P: 4, Alpha: 5, Beta: 0, FlopTime: 1})
	m.SendPhase([]Message{
		{From: 0, To: 1, Words: 0},
		{From: 1, To: 2, Words: 0},
		{From: 2, To: 3, Words: 0},
	})
	for _, i := range []int{1, 2, 3} {
		if m.Clock(i) != 5 {
			t.Fatalf("proc %d clock %v, want 5 (no cascade)", i, m.Clock(i))
		}
	}
}

func TestSendPhaseMultipleSendsSerializeAtSender(t *testing.T) {
	m := New(Config{P: 3, Alpha: 4, Beta: 0, FlopTime: 1})
	m.SendPhase([]Message{
		{From: 0, To: 1, Words: 0},
		{From: 0, To: 2, Words: 0},
	})
	if m.Clock(0) != 8 {
		t.Fatalf("sender clock %v, want 8 (two send overheads)", m.Clock(0))
	}
	if m.Clock(1) != 4 {
		t.Fatalf("first receiver clock %v, want 4", m.Clock(1))
	}
	// Second message departs after the first send's overhead (t=4) and
	// arrives one latency later.
	if m.Clock(2) != 8 {
		t.Fatalf("second receiver clock %v, want 8", m.Clock(2))
	}
}

func TestSendPhaseSelfMessageFree(t *testing.T) {
	m := New(DefaultConfig(2))
	m.SendPhase([]Message{{From: 1, To: 1, Words: 100}})
	if m.MaxClock() != 0 || m.Stats().Messages != 0 {
		t.Fatal("self message in phase should be free")
	}
}

func TestSendPhasePanicsOnBadMessage(t *testing.T) {
	m := New(DefaultConfig(2))
	for _, msgs := range [][]Message{
		{{From: 0, To: 5, Words: 1}},
		{{From: 0, To: 1, Words: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			m.SendPhase(msgs)
		}()
	}
}

func TestSendPhaseEmptyNoop(t *testing.T) {
	m := New(DefaultConfig(3))
	m.Compute(1, 7)
	m.SendPhase(nil)
	if m.Clock(1) != 7 || m.Clock(0) != 0 {
		t.Fatal("empty phase changed clocks")
	}
}
