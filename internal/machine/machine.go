// Package machine provides a deterministic simulated distributed-memory
// parallel machine: P processors with per-processor logical clocks, an
// alpha+beta*words point-to-point message cost model, and compute-time
// charging. There is no MPI ecosystem for Go, so the collectives the
// paper's machine model assumes are hand-rolled on these primitives (see
// package collective).
//
// All simulation is pure clock arithmetic — no goroutines, no real time
// — so runs are exactly reproducible. Parallel time is read off as the
// maximum clock, mirroring the paper's "parallel time" unit.
package machine

import "fmt"

// Config fixes the machine parameters.
type Config struct {
	// P is the processor count (>= 1).
	P int
	// Alpha is the per-message latency (in time units).
	Alpha float64
	// Beta is the per-word transfer time.
	Beta float64
	// FlopTime is the time per floating-point operation (the paper's
	// unit-time normalization uses 1).
	FlopTime float64
}

// DefaultConfig mirrors the paper's idealized machine: unit flop time,
// unit message latency, negligible bandwidth term. With these constants
// a length-P fan-in costs ~2*log2(P), matching the c*log(N) unit.
func DefaultConfig(p int) Config {
	return Config{P: p, Alpha: 1, Beta: 0.01, FlopTime: 1}
}

// Stats aggregates simulated activity.
type Stats struct {
	Messages int
	Words    int
	Flops    int64
}

// Machine is a simulated P-processor distributed-memory machine.
type Machine struct {
	cfg    Config
	clocks []float64
	stats  Stats
}

// New builds a machine from the configuration.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic(fmt.Sprintf("machine: P = %d < 1", cfg.P))
	}
	if cfg.Alpha < 0 || cfg.Beta < 0 || cfg.FlopTime < 0 {
		panic("machine: negative cost parameters")
	}
	return &Machine{cfg: cfg, clocks: make([]float64, cfg.P)}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// Clock returns processor i's logical clock.
func (m *Machine) Clock(i int) float64 { return m.clocks[m.check(i)] }

// MaxClock returns the latest clock — the parallel time so far.
func (m *Machine) MaxClock() float64 {
	mx := 0.0
	for _, c := range m.clocks {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// MinClock returns the earliest clock.
func (m *Machine) MinClock() float64 {
	mn := m.clocks[0]
	for _, c := range m.clocks[1:] {
		if c < mn {
			mn = c
		}
	}
	return mn
}

// Stats returns the accumulated activity counters.
func (m *Machine) Stats() Stats { return m.stats }

func (m *Machine) check(i int) int {
	if i < 0 || i >= m.cfg.P {
		panic(fmt.Sprintf("machine: processor %d out of range [0,%d)", i, m.cfg.P))
	}
	return i
}

// Compute charges flops of local computation to processor i.
func (m *Machine) Compute(i int, flops int) {
	m.check(i)
	if flops < 0 {
		panic("machine: negative flops")
	}
	m.clocks[i] += float64(flops) * m.cfg.FlopTime
	m.stats.Flops += int64(flops)
}

// ComputeAll charges the same local work to every processor (a perfectly
// balanced data-parallel phase).
func (m *Machine) ComputeAll(flopsPerProc int) {
	for i := 0; i < m.cfg.P; i++ {
		m.Compute(i, flopsPerProc)
	}
}

// Send models a blocking message of the given number of words from
// processor `from` to `to`: the message departs at the sender's clock,
// occupies the sender for the latency Alpha, and is available to the
// receiver Alpha + Beta*words after departure. The receiver's clock
// advances to the arrival time if it was earlier (a receive that waits).
func (m *Machine) Send(from, to, words int) {
	m.check(from)
	m.check(to)
	if words < 0 {
		panic("machine: negative message size")
	}
	if from == to {
		return // local move, free under the model
	}
	depart := m.clocks[from]
	m.clocks[from] = depart + m.cfg.Alpha
	arrive := depart + m.cfg.Alpha + m.cfg.Beta*float64(words)
	if arrive > m.clocks[to] {
		m.clocks[to] = arrive
	}
	m.stats.Messages++
	m.stats.Words += words
}

// Exchange models a simultaneous pairwise exchange (both directions in
// flight concurrently, as in recursive doubling): both processors end at
// max(start_a, start_b) + Alpha + Beta*words.
func (m *Machine) Exchange(a, b, words int) {
	m.check(a)
	m.check(b)
	if a == b {
		return
	}
	start := m.clocks[a]
	if m.clocks[b] > start {
		start = m.clocks[b]
	}
	t := start + m.cfg.Alpha + m.cfg.Beta*float64(words)
	m.clocks[a] = t
	m.clocks[b] = t
	m.stats.Messages += 2
	m.stats.Words += 2 * words
}

// Message describes one point-to-point transfer inside a SendPhase.
type Message struct {
	From, To, Words int
}

// SendPhase executes a set of messages that are all posted at the same
// program point (a halo exchange, a shift round): each sender's messages
// depart back-to-back from its clock at phase start, and each receiver
// advances to the latest arrival destined for it. Unlike sequential Send
// calls, receiving inside the phase does not delay a processor's own
// sends — the semantics of posted/nonblocking communication.
func (m *Machine) SendPhase(msgs []Message) {
	start := make([]float64, m.cfg.P)
	copy(start, m.clocks)
	sent := make([]int, m.cfg.P)
	arrivals := make([]float64, m.cfg.P)
	copy(arrivals, m.clocks)
	for _, msg := range msgs {
		m.check(msg.From)
		m.check(msg.To)
		if msg.Words < 0 {
			panic("machine: negative message size")
		}
		if msg.From == msg.To {
			continue
		}
		depart := start[msg.From] + float64(sent[msg.From])*m.cfg.Alpha
		sent[msg.From]++
		arrive := depart + m.cfg.Alpha + m.cfg.Beta*float64(msg.Words)
		if arrive > arrivals[msg.To] {
			arrivals[msg.To] = arrive
		}
		m.stats.Messages++
		m.stats.Words += msg.Words
	}
	for i := 0; i < m.cfg.P; i++ {
		occupied := start[i] + float64(sent[i])*m.cfg.Alpha
		c := arrivals[i]
		if occupied > c {
			c = occupied
		}
		if c > m.clocks[i] {
			m.clocks[i] = c
		}
	}
}

// AdvanceTo raises processor i's clock to at least t (used to model
// waiting on an asynchronously completing operation).
func (m *Machine) AdvanceTo(i int, t float64) {
	m.check(i)
	if t > m.clocks[i] {
		m.clocks[i] = t
	}
}

// Clocks returns a copy of all processor clocks.
func (m *Machine) Clocks() []float64 {
	out := make([]float64, len(m.clocks))
	copy(out, m.clocks)
	return out
}

// Fork returns a machine sharing the configuration with a copy of the
// clocks and zeroed statistics. Collectives can be "trial run" on a fork
// to obtain completion times without disturbing the primary timeline —
// the mechanism behind non-blocking (pipelined) collectives.
func (m *Machine) Fork() *Machine {
	f := New(m.cfg)
	copy(f.clocks, m.clocks)
	return f
}

// AddStats merges the counters of another machine (typically a fork
// whose activity should be accounted on the primary timeline).
func (m *Machine) AddStats(s Stats) {
	m.stats.Messages += s.Messages
	m.stats.Words += s.Words
	m.stats.Flops += s.Flops
}
