package vec

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for chunked data-parallel vector kernels.
//
// Workers are persistent: the first parallel dispatch spawns workers-1
// long-lived goroutines that block on per-worker wake channels. Each
// kernel call publishes a job descriptor (an opcode plus operand slice
// headers) into pool-owned fields, wakes exactly the workers it needs,
// runs chunk 0 on the calling goroutine, and waits for completion
// signals. No goroutines are spawned and no closures are created per
// call, and the per-block partial slabs are reused across calls, so a
// kernel dispatch performs zero heap allocations in steady state.
//
// Reductions follow the package's canonical blocked tree (see the
// package comment): chunk boundaries are aligned to BlockLen, workers
// publish per-block leaf partials into a reused slab (chunks start on
// separate cache lines at sizes where it matters, so workers never
// contend on a line), and the caller replays the fixed pairwise combine
// over the slab. The combine shape depends only on the vector length —
// never on the worker count — so pooled reductions are bitwise
// identical to the serial kernels.
//
// Whether a kernel parallelizes at all is decided by a per-opcode
// cutoff: the minimum total element (or nonzero) count at which handing
// work to other cores beats running the serial kernel in place.
// Construction installs conservative static cutoffs (reductions must
// amortize a cross-core wakeup plus a combine; cheap elementwise
// streams need even more length); Calibrate replaces them with measured
// crossovers for this machine.
//
// A single Pool serializes its kernels behind an internal mutex: one
// parallel kernel runs at a time, and concurrent callers queue. This is
// the natural contract for an iterative solver (kernels are data
// dependent anyway); independent solvers wanting concurrent parallelism
// should each own a Pool.
//
// A Pool with Workers == 1 degenerates to the serial kernels and never
// spawns goroutines. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	workers  int
	minChunk atomic.Int64       // granularity floor (legacy knob; see SetMinChunk)
	cut      [nOps]atomic.Int64 // per-opcode parallel cutoff in elements (nnz for opCSRMulVec)
	closed   atomic.Bool

	mu      sync.Mutex // serializes dispatches; held while workers run
	start   sync.Once  // spawns the persistent workers lazily
	calOnce sync.Once  // one-shot Calibrate
	cal     Calibration

	wake []chan struct{} // wake[c] wakes the worker owning chunk c (c >= 1)
	done chan struct{}   // workers signal chunk completion

	// Current job. Valid only between begin*() and end() under mu.
	job     job
	nchunks int
	bounds  []int // chunk boundaries: nchunks+1 offsets

	boundsSlab []int     // backing array reused by equal splits
	blockPart  []float64 // per-block reduction partials (reused)
	blockPart2 []float64 // second partial set (DotPair)
	batchPart  []float64 // DotBatch partials, one padded stride per y
	batchCap   int       // per-y stride of batchPart
}

// lineBlocks is the number of BlockLen blocks whose partials share one
// 64-byte cache line (8 float64 cells). At sizes where parallelism
// pays, chunk boundaries are aligned to lineBlocks*BlockLen elements so
// each worker's slab cells occupy distinct lines — no false sharing on
// the reduction slab.
const lineBlocks = 8

// opcode selects the kernel a worker executes over its chunk. Dispatch
// is opcode-based rather than closure-based so publishing a job never
// allocates: operand slice headers are copied into the pool's job field.
type opcode uint8

const (
	opNone opcode = iota
	opDot
	opDotPair
	opAxpy
	opXpay
	opMulElem
	opFusedCG
	opDotBatch
	opCSRMulVec
	opRowRange
	opDotBlock
	opAxpyBlock
	opCSRMulVecs
	nOps = iota
)

// opNames label the opcodes in Calibration reports.
var opNames = [nOps]string{
	opNone: "none", opDot: "dot", opDotPair: "dotpair", opAxpy: "axpy",
	opXpay: "xpay", opMulElem: "mulelem", opFusedCG: "fusedcg",
	opDotBatch: "dotbatch", opCSRMulVec: "csrmulvec", opRowRange: "rowrange",
	opDotBlock: "dotblock", opAxpyBlock: "axpyblock", opCSRMulVecs: "csrmulvecs",
}

// defaultCutoffs are the conservative fallback crossovers installed at
// construction, used until (unless) Calibrate measures real ones. They
// are deliberately high: a pooled kernel that dispatches below its true
// crossover loses integer factors to wakeup latency (the old single
// global minChunk of 4096 made pooled dots up to 20x slower than
// serial), while one that stays serial a bit too long loses a few
// percent at worst. Reductions pay a wakeup plus a combine, so they
// need the most length; elementwise streams are pure bandwidth and
// amortize faster; DotBatch amortizes one dispatch over every ys sweep.
var defaultCutoffs = [nOps]int64{
	opDot:       1 << 16,
	opDotPair:   1 << 16,
	opAxpy:      1 << 15,
	opXpay:      1 << 15,
	opMulElem:   1 << 15,
	opFusedCG:   1 << 15,
	opDotBatch:  1 << 14,
	opCSRMulVec: 1 << 15, // in nonzeros
	opRowRange:  1 << 15, // in rows
	// The block multi-RHS kernels amortize one dispatch over s (or s^2)
	// operand sweeps, so they cross over at DotBatch-like sizes.
	opDotBlock:   1 << 14,
	opAxpyBlock:  1 << 14,
	opCSRMulVecs: 1 << 15, // in nonzeros (shared across the s outputs)
}

// job carries the operands of the in-flight kernel. Slice fields are
// headers into caller-owned storage; they are cleared at end() so the
// pool never retains caller memory between calls.
type job struct {
	op    opcode
	alpha float64
	x     []float64
	y     []float64
	z     []float64
	w     []float64
	ys    []Vector
	// ds is the second vector set of the block multi-RHS kernels
	// (destinations for opAxpyBlock/opCSRMulVecs, the right-hand operand
	// family for opDotBlock).
	ds []Vector
	// CSR SpMV operands (row-partitioned; see CSRMulVec).
	rowPtr []int
	colIdx []int
	vals   []float64
	// fn is the row-range kernel of RowMulVec. Callers pass a cached
	// function value (not a fresh closure) so dispatch stays
	// allocation-free.
	fn RowKernel
}

// RowKernel computes range [lo, hi) of dst = A*x for a row-partitioned
// operator. For RowMulVec the range is rows and implementations write
// dst[lo:hi] only; for RowMulVecBounds the caller defines the units
// (e.g. SELL chunks) and implementations must write a set of dst
// elements disjoint from every other range's, so ranges can run
// concurrently. All of x may be read.
type RowKernel func(lo, hi int, dst, x Vector)

// DefaultPool uses all available CPUs with the conservative default
// cutoffs. Long-running hosts (servers, CLIs) should DefaultPool.Calibrate()
// once at startup to replace them with measured crossovers.
var DefaultPool = NewPool(runtime.GOMAXPROCS(0))

// DefaultMinChunk is the legacy granularity floor: the smallest
// per-worker slice length a parallel dispatch will hand to a worker.
// Whether a kernel parallelizes at all is governed by the per-opcode
// cutoffs (see Calibrate); this knob only bounds chunk granularity.
const DefaultMinChunk = 4096

// NewPool returns a pool using the given number of workers (at least 1)
// with the conservative default per-op cutoffs.
func NewPool(workers int) *Pool {
	return NewPoolMinChunk(workers, DefaultMinChunk)
}

// NewPoolMinChunk returns a pool with an explicit minimum per-worker
// chunk length. A minChunk below the default also lowers every per-op
// cutoff to 2*minChunk (clamped to two reduction blocks), which is how
// tests force tiny kernels onto the parallel path; a larger minChunk
// only coarsens chunk granularity.
func NewPoolMinChunk(workers, minChunk int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	p := &Pool{workers: workers}
	p.minChunk.Store(int64(minChunk))
	for op := range p.cut {
		p.cut[op].Store(defaultCutoffs[op])
	}
	if minChunk < DefaultMinChunk {
		p.applyMinChunkCutoffs(minChunk)
	}
	return p
}

// applyMinChunkCutoffs maps the legacy single-knob threshold onto the
// per-op cutoffs: parallelize anything with at least two chunks of
// minChunk, but never below two reduction blocks (reduction chunk
// boundaries must stay BlockLen-aligned).
func (p *Pool) applyMinChunkCutoffs(minChunk int) {
	c := int64(2 * minChunk)
	if min := int64(2 * BlockLen); c < min {
		c = min
	}
	for op := 1; op < nOps; op++ {
		p.cut[op].Store(c)
	}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// MinChunk returns the current granularity floor.
func (p *Pool) MinChunk() int { return int(p.minChunk.Load()) }

// SetMinChunk overrides the granularity floor and rebases every per-op
// cutoff to 2*n (clamped to two reduction blocks). It is safe to call
// concurrently with running kernels (the values are atomic); in-flight
// kernels keep the split they already planned. Calibrate supersedes it:
// prefer measured cutoffs on long-lived pools.
func (p *Pool) SetMinChunk(n int) {
	if n < 1 {
		n = 1
	}
	p.minChunk.Store(int64(n))
	p.applyMinChunkCutoffs(n)
}

// cutoff returns the current parallel cutoff for op.
func (p *Pool) cutoff(op opcode) int64 { return p.cut[op].Load() }

// DotCutoff returns the vector length below which pooled dot products
// run serially. It is reporting surface (diagnostics, bench notes);
// kernels consult their own opcode's cutoff internally.
func (p *Pool) DotCutoff() int {
	c := p.cutoff(opDot)
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(c)
}

// SpMVCutoff returns the nonzero count below which pooled sparse
// matrix-vector products run serially. sparse.CSR and sparse.SELL
// consult it before partitioned dispatch.
func (p *Pool) SpMVCutoff() int {
	c := p.cutoff(opCSRMulVec)
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(c)
}

// Close stops the persistent workers. Subsequent kernel calls fall back
// to the serial forms. Close is intended for tests and short-lived
// pools; long-lived pools (DefaultPool) never need it.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Swap(true) {
		return
	}
	for _, ch := range p.wake {
		if ch != nil {
			close(ch)
		}
	}
}

// ensureWorkers lazily spawns the persistent workers. Called under mu.
func (p *Pool) ensureWorkers() {
	p.start.Do(func() {
		w := p.workers
		p.wake = make([]chan struct{}, w)
		p.done = make(chan struct{}, w)
		p.boundsSlab = make([]int, w+1)
		for c := 1; c < w; c++ {
			p.wake[c] = make(chan struct{}, 1)
			go p.workerLoop(c)
		}
	})
}

// workerLoop is the body of persistent worker c: sleep on the wake
// channel, execute the published job's chunk c, signal completion.
func (p *Pool) workerLoop(c int) {
	for range p.wake[c] {
		p.exec(c)
		p.done <- struct{}{}
	}
}

// growSlabs sizes the reduction slab for an n-element kernel. Called
// under mu; allocates only when n exceeds every earlier dispatch.
func (p *Pool) growSlabs(n int, pair bool) {
	nb := nblocks(n)
	if cap(p.blockPart) < nb {
		p.blockPart = make([]float64, nb)
	}
	p.blockPart = p.blockPart[:nb]
	if pair {
		if cap(p.blockPart2) < nb {
			p.blockPart2 = make([]float64, nb)
		}
		p.blockPart2 = p.blockPart2[:nb]
	}
}

// growBatchSlab sizes the DotBatch slab: one stride of block partials
// per y, strides padded to whole cache lines so worker boundary cells
// never share a line across ys.
func (p *Pool) growBatchSlab(n, nys int) {
	nb := nblocks(n)
	stride := (nb + lineBlocks - 1) / lineBlocks * lineBlocks
	if cap(p.batchPart) < stride*nys {
		p.batchPart = make([]float64, stride*nys)
	}
	p.batchPart = p.batchPart[:stride*nys]
	p.batchCap = stride
}

// planParts returns how many chunks an n-element kernel should use and
// the boundary alignment (0 parts means: run serially). Boundaries are
// aligned to BlockLen so pooled reduction leaves coincide with the
// serial tree's; once every worker has at least a cache line's worth of
// partial cells, alignment widens to lineBlocks*BlockLen so slab cells
// are line-private per worker.
func (p *Pool) planParts(n int) (parts, align int) {
	align = BlockLen
	if n >= p.workers*lineBlocks*BlockLen {
		align = lineBlocks * BlockLen
	}
	floor := align
	if mc := p.MinChunk(); mc > floor {
		floor = (mc + align - 1) / align * align
	}
	parts = p.workers
	if u := n / floor; parts > u {
		parts = u
	}
	return parts, align
}

// beginEqual plans a block-aligned near-equal split of [0, n) for op
// and acquires the dispatch lock. It returns the chunk count, or 0
// (lock not held) when the kernel should run serially: pool closed,
// n below the op's cutoff, or too little work per worker.
func (p *Pool) beginEqual(op opcode, n int) int {
	if p.closed.Load() || p.workers < 2 || int64(n) < p.cutoff(op) {
		return 0
	}
	parts, align := p.planParts(n)
	if parts < 2 {
		return 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0
	}
	p.ensureWorkers()
	units := n / align
	b := p.boundsSlab[:parts+1]
	for i := 0; i < parts; i++ {
		b[i] = i * units / parts * align
	}
	b[parts] = n
	p.bounds = b
	p.nchunks = parts
	return parts
}

// beginBounds plans a dispatch over caller-provided chunk boundaries
// (len(bounds)-1 chunks, e.g. an nnz-balanced CSR row partition) and
// acquires the dispatch lock. It returns the chunk count, or 0 (lock
// not held) when the partition does not fit this pool.
func (p *Pool) beginBounds(bounds []int) int {
	nc := len(bounds) - 1
	if nc < 2 || nc > p.workers || p.closed.Load() {
		return 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0
	}
	p.ensureWorkers()
	p.bounds = bounds
	p.nchunks = nc
	return nc
}

// run wakes workers 1..nc-1, executes chunk 0 inline, and waits for the
// workers to finish.
func (p *Pool) run(nc int) {
	for c := 1; c < nc; c++ {
		p.wake[c] <- struct{}{}
	}
	p.exec(0)
	for c := 1; c < nc; c++ {
		<-p.done
	}
}

// end clears the job (so caller memory is not retained) and releases
// the dispatch lock.
func (p *Pool) end() {
	p.job = job{}
	p.bounds = nil
	p.nchunks = 0
	p.mu.Unlock()
}

// leaves evaluates one reduction leaf per BlockLen block of [lo, hi),
// writing each partial to its global block cell. Chunk bounds are
// BlockLen-aligned, so the only short leaf is the vector's last block —
// exactly as in the serial tree.
func (p *Pool) leaves(lo, hi int, leaf func(b0, b1, cell int)) {
	for b0 := lo; b0 < hi; b0 += BlockLen {
		b1 := b0 + BlockLen
		if b1 > hi {
			b1 = hi
		}
		leaf(b0, b1, b0/BlockLen)
	}
}

// exec runs the published job's chunk c.
func (p *Pool) exec(c int) {
	lo, hi := p.bounds[c], p.bounds[c+1]
	j := &p.job
	switch j.op {
	case opDot:
		x, y := j.x, j.y
		for b0 := lo; b0 < hi; b0 += BlockLen {
			b1 := b0 + BlockLen
			if b1 > hi {
				b1 = hi
			}
			p.blockPart[b0/BlockLen] = dotLeaf(x[b0:b1], y[b0:b1])
		}
	case opDotPair:
		x, y, z := j.x, j.y, j.z
		for b0 := lo; b0 < hi; b0 += BlockLen {
			b1 := b0 + BlockLen
			if b1 > hi {
				b1 = hi
			}
			xy, xz := dotPairLeaf(x[b0:b1], y[b0:b1], z[b0:b1])
			p.blockPart[b0/BlockLen] = xy
			p.blockPart2[b0/BlockLen] = xz
		}
	case opAxpy:
		Axpy(j.alpha, j.x[lo:hi], j.y[lo:hi])
	case opXpay:
		Xpay(j.x[lo:hi], j.alpha, j.y[lo:hi])
	case opMulElem:
		MulElem(j.z[lo:hi], j.x[lo:hi], j.y[lo:hi])
	case opFusedCG:
		a := j.alpha
		pv, ap, x, r := j.x, j.y, j.z, j.w
		for b0 := lo; b0 < hi; b0 += BlockLen {
			b1 := b0 + BlockLen
			if b1 > hi {
				b1 = hi
			}
			p.blockPart[b0/BlockLen] = fusedCGLeaf(a, pv[b0:b1], ap[b0:b1], x[b0:b1], r[b0:b1])
		}
	case opDotBatch:
		x, ys := j.x, j.ys
		for jj, y := range ys {
			row := p.batchPart[jj*p.batchCap:]
			for b0 := lo; b0 < hi; b0 += BlockLen {
				b1 := b0 + BlockLen
				if b1 > hi {
					b1 = hi
				}
				row[b0/BlockLen] = dotLeaf(x[b0:b1], y[b0:b1])
			}
		}
	case opCSRMulVec:
		rowPtr, colIdx, vals := j.rowPtr, j.colIdx, j.vals
		x, dst := j.x, j.z
		for i := lo; i < hi; i++ {
			var s float64
			for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
				s += vals[q] * x[colIdx[q]]
			}
			dst[i] = s
		}
	case opRowRange:
		j.fn(lo, hi, j.z, j.x)
	case opDotBlock:
		xs, ys := j.ys, j.ds
		ny := len(ys)
		for ii, x := range xs {
			for jj, y := range ys {
				row := p.batchPart[(ii*ny+jj)*p.batchCap:]
				for b0 := lo; b0 < hi; b0 += BlockLen {
					b1 := b0 + BlockLen
					if b1 > hi {
						b1 = hi
					}
					row[b0/BlockLen] = dotLeaf(x[b0:b1], y[b0:b1])
				}
			}
		}
	case opAxpyBlock:
		axpyBlockRange(j.x, j.ys, j.ds, lo, hi)
	case opCSRMulVecs:
		CSRMulVecsRows(j.rowPtr, j.colIdx, j.vals, j.ds, j.ys, lo, hi)
	}
}

// Dot computes <x, y>. Pooled evaluation computes the canonical tree's
// leaves in parallel and replays the same combine, so the result is
// bitwise identical to the serial Dot for every worker count.
func (p *Pool) Dot(x, y Vector) float64 {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(opDot, len(x))
	if nc == 0 {
		return Dot(x, y)
	}
	p.growSlabs(len(x), false)
	p.job = job{op: opDot, x: x, y: y}
	p.run(nc)
	s := combineTree(p.blockPart)
	p.end()
	return s
}

// DotPair computes <x,y> and <x,z> in a single parallel sweep, bitwise
// identical to the serial DotPair (used by the pipelined CG variants).
func (p *Pool) DotPair(x, y, z Vector) (xy, xz float64) {
	mustSameLen3(len(x), len(y), len(z))
	nc := p.beginEqual(opDotPair, len(x))
	if nc == 0 {
		return DotPair(x, y, z)
	}
	p.growSlabs(len(x), true)
	p.job = job{op: opDotPair, x: x, y: y, z: z}
	p.run(nc)
	xy = combineTree(p.blockPart)
	xz = combineTree(p.blockPart2)
	p.end()
	return xy, xz
}

// Axpy computes y += alpha*x with chunked parallelism.
func (p *Pool) Axpy(alpha float64, x, y Vector) {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(opAxpy, len(x))
	if nc == 0 {
		Axpy(alpha, x, y)
		return
	}
	p.job = job{op: opAxpy, alpha: alpha, x: x, y: y}
	p.run(nc)
	p.end()
}

// Xpay computes y = x + alpha*y with chunked parallelism.
func (p *Pool) Xpay(x Vector, alpha float64, y Vector) {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(opXpay, len(x))
	if nc == 0 {
		Xpay(x, alpha, y)
		return
	}
	p.job = job{op: opXpay, alpha: alpha, x: x, y: y}
	p.run(nc)
	p.end()
}

// MulElem computes dst = x .* y componentwise with chunked parallelism
// (the pooled form of vec.MulElem, used by diagonal preconditioners).
func (p *Pool) MulElem(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	nc := p.beginEqual(opMulElem, len(x))
	if nc == 0 {
		MulElem(dst, x, y)
		return
	}
	p.job = job{op: opMulElem, x: x, y: y, z: dst}
	p.run(nc)
	p.end()
}

// FusedCGUpdate is the parallel form of vec.FusedCGUpdate: x += alpha*p,
// r -= alpha*ap, returning <r,r> bitwise identical to the serial form.
func (p *Pool) FusedCGUpdate(alpha float64, pv, ap, x, r Vector) float64 {
	mustSameLen2(len(pv), len(ap))
	mustSameLen2(len(pv), len(x))
	mustSameLen2(len(pv), len(r))
	nc := p.beginEqual(opFusedCG, len(pv))
	if nc == 0 {
		return FusedCGUpdate(alpha, pv, ap, x, r)
	}
	p.growSlabs(len(pv), false)
	p.job = job{op: opFusedCG, alpha: alpha, x: pv, y: ap, z: x, w: r}
	p.run(nc)
	s := combineTree(p.blockPart)
	p.end()
	return s
}

// DotBatch computes dots[j] = <x, ys[j]>, parallelizing across chunks
// of x; every dots[j] is bitwise identical to the serial DotBatch.
func (p *Pool) DotBatch(x Vector, ys []Vector, dots []float64) {
	if len(ys) != len(dots) {
		panic("vec: DotBatch output length mismatch")
	}
	for _, y := range ys {
		mustSameLen2(len(x), len(y))
	}
	nc := 0
	if len(ys) > 0 {
		nc = p.beginEqual(opDotBatch, len(x))
	}
	if nc == 0 {
		DotBatch(x, ys, dots)
		return
	}
	p.growBatchSlab(len(x), len(ys))
	p.job = job{op: opDotBatch, x: x, ys: ys}
	p.run(nc)
	nb := nblocks(len(x))
	for j := range dots {
		dots[j] = combineTree(p.batchPart[j*p.batchCap : j*p.batchCap+nb])
	}
	p.end()
}

// DotBlock fills out[i*len(ys)+j] = <xs[i], ys[j]>, parallelizing
// across element chunks with one dispatch for all len(xs)*len(ys)
// pairs; every output is bitwise identical to the serial DotBlock.
func (p *Pool) DotBlock(xs, ys []Vector, out []float64) {
	if len(out) != len(xs)*len(ys) {
		panic("vec: DotBlock output length mismatch")
	}
	nc := 0
	if len(xs) > 0 && len(ys) > 0 {
		n := len(xs[0])
		for _, x := range xs {
			mustSameLen2(n, len(x))
		}
		for _, y := range ys {
			mustSameLen2(n, len(y))
		}
		nc = p.beginEqual(opDotBlock, n)
	}
	if nc == 0 {
		DotBlock(xs, ys, out)
		return
	}
	n := len(xs[0])
	p.growBatchSlab(n, len(xs)*len(ys))
	p.job = job{op: opDotBlock, ys: xs, ds: ys}
	p.run(nc)
	nb := nblocks(n)
	for k := range out {
		out[k] = combineTree(p.batchPart[k*p.batchCap : k*p.batchCap+nb])
	}
	p.end()
}

// AxpyBlock accumulates ys[j] += sum_i coef[i*len(ys)+j]*xs[i] with
// chunked parallelism (the block-CG multi-axpy); elementwise, so pooled
// results are bitwise identical to the serial AxpyBlock.
func (p *Pool) AxpyBlock(coef []float64, xs, ys []Vector) {
	if len(coef) != len(xs)*len(ys) {
		panic("vec: AxpyBlock coefficient length mismatch")
	}
	if len(xs) == 0 || len(ys) == 0 {
		return
	}
	n := len(ys[0])
	for _, x := range xs {
		mustSameLen2(n, len(x))
	}
	for _, y := range ys {
		mustSameLen2(n, len(y))
	}
	nc := p.beginEqual(opAxpyBlock, n)
	if nc == 0 {
		axpyBlockRange(coef, xs, ys, 0, n)
		return
	}
	p.job = job{op: opAxpyBlock, x: coef, ys: xs, ds: ys}
	p.run(nc)
	p.end()
}

// PoolDotBlock runs DotBlock on the pool when p is non-nil and serially
// otherwise.
func PoolDotBlock(p *Pool, xs, ys []Vector, out []float64) {
	if p != nil {
		p.DotBlock(xs, ys, out)
		return
	}
	DotBlock(xs, ys, out)
}

// PoolAxpyBlock runs AxpyBlock on the pool when p is non-nil and
// serially otherwise.
func PoolAxpyBlock(p *Pool, coef []float64, xs, ys []Vector) {
	if p != nil {
		p.AxpyBlock(coef, xs, ys)
		return
	}
	AxpyBlock(coef, xs, ys)
}

// PoolDot returns p.Dot(x, y) when p is non-nil and the serial Dot
// otherwise. The Pool* helpers are the single pool-or-serial dispatch
// point shared by every solver hot path.
func PoolDot(p *Pool, x, y Vector) float64 {
	if p != nil {
		return p.Dot(x, y)
	}
	return Dot(x, y)
}

// PoolDotPair returns p.DotPair(x, y, z) when p is non-nil and the
// serial DotPair otherwise.
func PoolDotPair(p *Pool, x, y, z Vector) (xy, xz float64) {
	if p != nil {
		return p.DotPair(x, y, z)
	}
	return DotPair(x, y, z)
}

// PoolAxpy computes y += alpha*x on the pool when p is non-nil and
// serially otherwise.
func PoolAxpy(p *Pool, alpha float64, x, y Vector) {
	if p != nil {
		p.Axpy(alpha, x, y)
		return
	}
	Axpy(alpha, x, y)
}

// PoolXpay computes y = x + alpha*y on the pool when p is non-nil and
// serially otherwise.
func PoolXpay(p *Pool, x Vector, alpha float64, y Vector) {
	if p != nil {
		p.Xpay(x, alpha, y)
		return
	}
	Xpay(x, alpha, y)
}

// PoolMulElem computes dst = x .* y on the pool when p is non-nil and
// serially otherwise.
func PoolMulElem(p *Pool, dst, x, y Vector) {
	if p != nil {
		p.MulElem(dst, x, y)
		return
	}
	MulElem(dst, x, y)
}

// PoolFusedCGUpdate runs the fused CG update on the pool when p is
// non-nil and serially otherwise.
func PoolFusedCGUpdate(p *Pool, alpha float64, pv, ap, x, r Vector) float64 {
	if p != nil {
		return p.FusedCGUpdate(alpha, pv, ap, x, r)
	}
	return FusedCGUpdate(alpha, pv, ap, x, r)
}

// RowMulVec computes dst = A*x for an operator whose rows are
// independent, splitting the n rows into near-equal chunks and running
// fn on each (the pooled matvec of sparse.DIA and sparse.Stencil, whose
// per-row work is uniform enough that an equal split balances). It
// returns false — leaving dst untouched — when the pool is closed,
// serial, or n is below the row-op cutoff, in which case the caller
// should run its serial kernel. fn should be a function value cached by
// the caller (e.g. a method value stored at construction) so
// steady-state dispatch performs no allocations.
func (p *Pool) RowMulVec(n int, dst, x Vector, fn RowKernel) bool {
	nc := p.beginEqual(opRowRange, n)
	if nc == 0 {
		return false
	}
	p.job = job{op: opRowRange, fn: fn, x: x, z: dst}
	p.run(nc)
	p.end()
	return true
}

// RowMulVecBounds runs fn over a caller-provided partition (chunk c
// covers [bounds[c], bounds[c+1]) in whatever units fn interprets, e.g.
// SELL row-chunks weighted by nonzeros). The ranges' dst writes must be
// pairwise disjoint but need not be contiguous — sparse.SELL writes
// through its row permutation. It returns false — leaving dst untouched
// — when the partition does not fit this pool and the caller should use
// its serial kernel.
func (p *Pool) RowMulVecBounds(bounds []int, dst, x Vector, fn RowKernel) bool {
	nc := p.beginBounds(bounds)
	if nc == 0 {
		return false
	}
	p.job = job{op: opRowRange, fn: fn, x: x, z: dst}
	p.run(nc)
	p.end()
	return true
}

// CSRMulVec computes dst = A*x for a CSR matrix given by (rowPtr,
// colIdx, vals), parallelized over the caller-provided row partition
// bounds (len(bounds)-1 chunks; see sparse.CSR.MulVecPool, which supplies
// an nnz-balanced partition). It returns false — leaving dst untouched —
// when the total nonzero count is below the SpMV cutoff or the
// partition does not fit this pool, in which case the caller should use
// its serial kernel.
//
// The pool deliberately knows this one structured kernel: SpMV dominates
// every solver's hot path, and routing it through the same opcode
// dispatch keeps the parallel form allocation-free.
func (p *Pool) CSRMulVec(bounds []int, rowPtr, colIdx []int, vals []float64, dst, x Vector) bool {
	if int64(len(vals)) < p.cutoff(opCSRMulVec) {
		return false
	}
	nc := p.beginBounds(bounds)
	if nc == 0 {
		return false
	}
	p.job = job{op: opCSRMulVec, rowPtr: rowPtr, colIdx: colIdx, vals: vals, x: x, z: dst}
	p.run(nc)
	p.end()
	return true
}

// CSRMulVecsRows computes dsts[j][lo:hi] = (A*xs[j])[lo:hi] for every
// column j in one pass over the row data: each row's (value, column)
// stream is read once per group of four columns instead of once per
// column, which is where the multi-RHS bandwidth win comes from. Each
// column's accumulation order matches the single-vector CSR loop
// exactly, so every output column is bitwise identical to MulVec.
func CSRMulVecsRows(rowPtr, colIdx []int, vals []float64, dsts, xs []Vector, lo, hi int) {
	s := len(xs)
	j := 0
	for ; j+4 <= s; j += 4 {
		x0, x1, x2, x3 := xs[j], xs[j+1], xs[j+2], xs[j+3]
		d0, d1, d2, d3 := dsts[j], dsts[j+1], dsts[j+2], dsts[j+3]
		for i := lo; i < hi; i++ {
			var s0, s1, s2, s3 float64
			for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
				v, c := vals[q], colIdx[q]
				s0 += v * x0[c]
				s1 += v * x1[c]
				s2 += v * x2[c]
				s3 += v * x3[c]
			}
			d0[i], d1[i], d2[i], d3[i] = s0, s1, s2, s3
		}
	}
	for ; j < s; j++ {
		x, d := xs[j], dsts[j]
		for i := lo; i < hi; i++ {
			var acc float64
			for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
				acc += vals[q] * x[colIdx[q]]
			}
			d[i] = acc
		}
	}
}

// CSRMulVecs computes dsts[j] = A*xs[j] for all columns in one
// parallelized row pass over the caller-provided partition (see
// CSRMulVec for the partition contract). It returns false — leaving the
// destinations untouched — when the nonzero count is below the
// multi-vector SpMV cutoff or the partition does not fit this pool.
func (p *Pool) CSRMulVecs(bounds []int, rowPtr, colIdx []int, vals []float64, dsts, xs []Vector) bool {
	if int64(len(vals)) < p.cutoff(opCSRMulVecs) {
		return false
	}
	nc := p.beginBounds(bounds)
	if nc == 0 {
		return false
	}
	p.job = job{op: opCSRMulVecs, rowPtr: rowPtr, colIdx: colIdx, vals: vals, ds: dsts, ys: xs}
	p.run(nc)
	p.end()
	return true
}
