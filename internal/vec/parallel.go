package vec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for chunked data-parallel vector kernels.
//
// Workers are persistent: the first parallel dispatch spawns workers-1
// long-lived goroutines that block on per-worker wake channels. Each
// kernel call publishes a job descriptor (an opcode plus operand slice
// headers) into pool-owned fields, wakes exactly the workers it needs,
// runs chunk 0 on the calling goroutine, and waits for completion
// signals. No goroutines are spawned and no closures are created per
// call, and per-worker partial-sum slabs are reused across calls, so a
// kernel dispatch performs zero heap allocations in steady state.
//
// A single Pool serializes its kernels behind an internal mutex: one
// parallel kernel runs at a time, and concurrent callers queue. This is
// the natural contract for an iterative solver (kernels are data
// dependent anyway); independent solvers wanting concurrent parallelism
// should each own a Pool.
//
// A Pool with Workers == 1 degenerates to the serial kernels and never
// spawns goroutines. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	workers  int
	minChunk atomic.Int64
	closed   atomic.Bool

	mu    sync.Mutex // serializes dispatches; held while workers run
	start sync.Once  // spawns the persistent workers lazily

	wake []chan struct{} // wake[c] wakes the worker owning chunk c (c >= 1)
	done chan struct{}   // workers signal chunk completion

	// Current job. Valid only between begin*() and end() under mu.
	job     job
	nchunks int
	bounds  []int // chunk boundaries: nchunks+1 offsets

	boundsSlab []int       // backing array reused by equal splits
	partial    []float64   // per-chunk scalar partials (reused)
	partial2   []float64   // second partial set (DotPair)
	rows       [][]float64 // per-chunk partial rows (DotBatch)
}

// opcode selects the kernel a worker executes over its chunk. Dispatch
// is opcode-based rather than closure-based so publishing a job never
// allocates: operand slice headers are copied into the pool's job field.
type opcode uint8

const (
	opNone opcode = iota
	opDot
	opDotPair
	opAxpy
	opXpay
	opMulElem
	opFusedCG
	opDotBatch
	opCSRMulVec
	opRowRange
)

// job carries the operands of the in-flight kernel. Slice fields are
// headers into caller-owned storage; they are cleared at end() so the
// pool never retains caller memory between calls.
type job struct {
	op    opcode
	alpha float64
	x     []float64
	y     []float64
	z     []float64
	w     []float64
	ys    []Vector
	// CSR SpMV operands (row-partitioned; see CSRMulVec).
	rowPtr []int
	colIdx []int
	vals   []float64
	// fn is the row-range kernel of RowMulVec. Callers pass a cached
	// function value (not a fresh closure) so dispatch stays
	// allocation-free.
	fn RowKernel
}

// RowKernel computes rows [lo, hi) of dst = A*x for a row-partitioned
// operator. Implementations must write dst[lo:hi] only and may read all
// of x, so disjoint chunks can run concurrently.
type RowKernel func(lo, hi int, dst, x Vector)

// DefaultPool uses all available CPUs with a conservative minimum chunk.
var DefaultPool = NewPool(runtime.GOMAXPROCS(0))

// DefaultMinChunk is the smallest per-worker slice length worth handing
// to a parallel worker; below it the serial kernel runs on the calling
// goroutine. Cross-core wakeup costs on the order of a few microseconds,
// which a worker must amortize over its chunk.
const DefaultMinChunk = 4096

// NewPool returns a pool using the given number of workers (at least 1).
func NewPool(workers int) *Pool {
	return NewPoolMinChunk(workers, DefaultMinChunk)
}

// NewPoolMinChunk returns a pool with an explicit minimum per-worker
// chunk length (construction-time alternative to SetMinChunk).
func NewPoolMinChunk(workers, minChunk int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	p := &Pool{workers: workers}
	p.minChunk.Store(int64(minChunk))
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// MinChunk returns the current minimum per-worker slice length.
func (p *Pool) MinChunk() int { return int(p.minChunk.Load()) }

// SetMinChunk overrides the minimum per-worker slice length. It is safe
// to call concurrently with running kernels (the value is atomic);
// in-flight kernels keep the split they already planned.
func (p *Pool) SetMinChunk(n int) {
	if n < 1 {
		n = 1
	}
	p.minChunk.Store(int64(n))
}

// Close stops the persistent workers. Subsequent kernel calls fall back
// to the serial forms. Close is intended for tests and short-lived
// pools; long-lived pools (DefaultPool) never need it.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Swap(true) {
		return
	}
	for _, ch := range p.wake {
		if ch != nil {
			close(ch)
		}
	}
}

// ensureWorkers lazily spawns the persistent workers. Called under mu.
func (p *Pool) ensureWorkers() {
	p.start.Do(func() {
		w := p.workers
		p.wake = make([]chan struct{}, w)
		p.done = make(chan struct{}, w)
		p.boundsSlab = make([]int, w+1)
		p.partial = make([]float64, w)
		p.partial2 = make([]float64, w)
		p.rows = make([][]float64, w)
		for c := 1; c < w; c++ {
			p.wake[c] = make(chan struct{}, 1)
			go p.workerLoop(c)
		}
	})
}

// workerLoop is the body of persistent worker c: sleep on the wake
// channel, execute the published job's chunk c, signal completion.
func (p *Pool) workerLoop(c int) {
	for range p.wake[c] {
		p.exec(c)
		p.done <- struct{}{}
	}
}

// planParts returns how many chunks an n-element kernel should use
// (0 or 1 means: run serially).
func (p *Pool) planParts(n int) int {
	if p.closed.Load() {
		return 0
	}
	parts := p.workers
	if maxParts := n / p.MinChunk(); parts > maxParts {
		parts = maxParts
	}
	return parts
}

// beginEqual plans a near-equal split of [0, n) and acquires the
// dispatch lock. It returns the chunk count, or 0 (lock not held) when
// the kernel should run serially.
func (p *Pool) beginEqual(n int) int {
	parts := p.planParts(n)
	if parts < 2 {
		return 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0
	}
	p.ensureWorkers()
	b := p.boundsSlab[:parts+1]
	for i := 0; i <= parts; i++ {
		b[i] = i * n / parts
	}
	p.bounds = b
	p.nchunks = parts
	return parts
}

// beginBounds plans a dispatch over caller-provided chunk boundaries
// (len(bounds)-1 chunks, e.g. an nnz-balanced CSR row partition) and
// acquires the dispatch lock. It returns the chunk count, or 0 (lock
// not held) when the partition does not fit this pool.
func (p *Pool) beginBounds(bounds []int) int {
	nc := len(bounds) - 1
	if nc < 2 || nc > p.workers || p.closed.Load() {
		return 0
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return 0
	}
	p.ensureWorkers()
	p.bounds = bounds
	p.nchunks = nc
	return nc
}

// run wakes workers 1..nc-1, executes chunk 0 inline, and waits for the
// workers to finish.
func (p *Pool) run(nc int) {
	for c := 1; c < nc; c++ {
		p.wake[c] <- struct{}{}
	}
	p.exec(0)
	for c := 1; c < nc; c++ {
		<-p.done
	}
}

// end clears the job (so caller memory is not retained) and releases
// the dispatch lock.
func (p *Pool) end() {
	p.job = job{}
	p.bounds = nil
	p.nchunks = 0
	p.mu.Unlock()
}

// exec runs the published job's chunk c.
func (p *Pool) exec(c int) {
	lo, hi := p.bounds[c], p.bounds[c+1]
	j := &p.job
	switch j.op {
	case opDot:
		var s float64
		x, y := j.x, j.y
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		p.partial[c] = s
	case opDotPair:
		var sy, sz float64
		x, y, z := j.x, j.y, j.z
		for i := lo; i < hi; i++ {
			xi := x[i]
			sy += xi * y[i]
			sz += xi * z[i]
		}
		p.partial[c] = sy
		p.partial2[c] = sz
	case opAxpy:
		a, x, y := j.alpha, j.x, j.y
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	case opXpay:
		a, x, y := j.alpha, j.x, j.y
		for i := lo; i < hi; i++ {
			y[i] = x[i] + a*y[i]
		}
	case opMulElem:
		d, x, y := j.z, j.x, j.y
		for i := lo; i < hi; i++ {
			d[i] = x[i] * y[i]
		}
	case opFusedCG:
		a := j.alpha
		pv, ap, x, r := j.x, j.y, j.z, j.w
		var rr float64
		for i := lo; i < hi; i++ {
			x[i] += a * pv[i]
			ri := r[i] - a*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		p.partial[c] = rr
	case opDotBatch:
		x, ys := j.x, j.ys
		row := p.rows[c]
		if cap(row) < len(ys) {
			row = make([]float64, len(ys))
			p.rows[c] = row
		}
		row = row[:len(ys)]
		for jj, y := range ys {
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			row[jj] = s
		}
	case opCSRMulVec:
		rowPtr, colIdx, vals := j.rowPtr, j.colIdx, j.vals
		x, dst := j.x, j.z
		for i := lo; i < hi; i++ {
			var s float64
			for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
				s += vals[q] * x[colIdx[q]]
			}
			dst[i] = s
		}
	case opRowRange:
		j.fn(lo, hi, j.z, j.x)
	}
}

// Dot computes <x, y> with chunked parallel partial sums combined in
// chunk order, so the result is deterministic for a fixed worker count.
func (p *Pool) Dot(x, y Vector) float64 {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(len(x))
	if nc == 0 {
		return Dot(x, y)
	}
	p.job = job{op: opDot, x: x, y: y}
	p.run(nc)
	var s float64
	for _, v := range p.partial[:nc] {
		s += v
	}
	p.end()
	return s
}

// DotPair computes <x,y> and <x,z> in a single parallel sweep with
// deterministic chunk-ordered combination (the pooled form of
// vec.DotPair, used by the pipelined CG variants).
func (p *Pool) DotPair(x, y, z Vector) (xy, xz float64) {
	mustSameLen3(len(x), len(y), len(z))
	nc := p.beginEqual(len(x))
	if nc == 0 {
		return DotPair(x, y, z)
	}
	p.job = job{op: opDotPair, x: x, y: y, z: z}
	p.run(nc)
	for c := 0; c < nc; c++ {
		xy += p.partial[c]
		xz += p.partial2[c]
	}
	p.end()
	return xy, xz
}

// Axpy computes y += alpha*x with chunked parallelism.
func (p *Pool) Axpy(alpha float64, x, y Vector) {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(len(x))
	if nc == 0 {
		Axpy(alpha, x, y)
		return
	}
	p.job = job{op: opAxpy, alpha: alpha, x: x, y: y}
	p.run(nc)
	p.end()
}

// Xpay computes y = x + alpha*y with chunked parallelism.
func (p *Pool) Xpay(x Vector, alpha float64, y Vector) {
	mustSameLen2(len(x), len(y))
	nc := p.beginEqual(len(x))
	if nc == 0 {
		Xpay(x, alpha, y)
		return
	}
	p.job = job{op: opXpay, alpha: alpha, x: x, y: y}
	p.run(nc)
	p.end()
}

// MulElem computes dst = x .* y componentwise with chunked parallelism
// (the pooled form of vec.MulElem, used by diagonal preconditioners).
func (p *Pool) MulElem(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	nc := p.beginEqual(len(x))
	if nc == 0 {
		MulElem(dst, x, y)
		return
	}
	p.job = job{op: opMulElem, x: x, y: y, z: dst}
	p.run(nc)
	p.end()
}

// FusedCGUpdate is the parallel form of vec.FusedCGUpdate: x += alpha*p,
// r -= alpha*ap, returning <r,r> with deterministic chunk-ordered
// combination.
func (p *Pool) FusedCGUpdate(alpha float64, pv, ap, x, r Vector) float64 {
	mustSameLen2(len(pv), len(ap))
	mustSameLen2(len(pv), len(x))
	mustSameLen2(len(pv), len(r))
	nc := p.beginEqual(len(pv))
	if nc == 0 {
		return FusedCGUpdate(alpha, pv, ap, x, r)
	}
	p.job = job{op: opFusedCG, alpha: alpha, x: pv, y: ap, z: x, w: r}
	p.run(nc)
	var s float64
	for _, v := range p.partial[:nc] {
		s += v
	}
	p.end()
	return s
}

// DotBatch computes dots[j] = <x, ys[j]>, parallelizing across chunks of x
// and keeping per-chunk partials so results are deterministic.
func (p *Pool) DotBatch(x Vector, ys []Vector, dots []float64) {
	if len(ys) != len(dots) {
		panic("vec: DotBatch output length mismatch")
	}
	for _, y := range ys {
		mustSameLen2(len(x), len(y))
	}
	nc := 0
	if len(ys) > 0 {
		nc = p.beginEqual(len(x))
	}
	if nc == 0 {
		DotBatch(x, ys, dots)
		return
	}
	p.job = job{op: opDotBatch, x: x, ys: ys}
	p.run(nc)
	for j := range dots {
		dots[j] = 0
	}
	for c := 0; c < nc; c++ {
		for j, v := range p.rows[c][:len(ys)] {
			dots[j] += v
		}
	}
	p.end()
}

// PoolDot returns p.Dot(x, y) when p is non-nil and the serial Dot
// otherwise. The Pool* helpers are the single pool-or-serial dispatch
// point shared by every solver hot path.
func PoolDot(p *Pool, x, y Vector) float64 {
	if p != nil {
		return p.Dot(x, y)
	}
	return Dot(x, y)
}

// PoolDotPair returns p.DotPair(x, y, z) when p is non-nil and the
// serial DotPair otherwise.
func PoolDotPair(p *Pool, x, y, z Vector) (xy, xz float64) {
	if p != nil {
		return p.DotPair(x, y, z)
	}
	return DotPair(x, y, z)
}

// PoolAxpy computes y += alpha*x on the pool when p is non-nil and
// serially otherwise.
func PoolAxpy(p *Pool, alpha float64, x, y Vector) {
	if p != nil {
		p.Axpy(alpha, x, y)
		return
	}
	Axpy(alpha, x, y)
}

// PoolXpay computes y = x + alpha*y on the pool when p is non-nil and
// serially otherwise.
func PoolXpay(p *Pool, x Vector, alpha float64, y Vector) {
	if p != nil {
		p.Xpay(x, alpha, y)
		return
	}
	Xpay(x, alpha, y)
}

// PoolMulElem computes dst = x .* y on the pool when p is non-nil and
// serially otherwise.
func PoolMulElem(p *Pool, dst, x, y Vector) {
	if p != nil {
		p.MulElem(dst, x, y)
		return
	}
	MulElem(dst, x, y)
}

// PoolFusedCGUpdate runs the fused CG update on the pool when p is
// non-nil and serially otherwise.
func PoolFusedCGUpdate(p *Pool, alpha float64, pv, ap, x, r Vector) float64 {
	if p != nil {
		return p.FusedCGUpdate(alpha, pv, ap, x, r)
	}
	return FusedCGUpdate(alpha, pv, ap, x, r)
}

// RowMulVec computes dst = A*x for an operator whose rows are
// independent, splitting the n rows into near-equal chunks and running
// fn on each (the pooled matvec of sparse.DIA and sparse.Stencil, whose
// per-row work is uniform enough that an equal split balances). It
// returns false — leaving dst untouched — when the pool is closed,
// serial, or n is below the parallel threshold, in which case the
// caller should run its serial kernel. fn should be a function value
// cached by the caller (e.g. a method value stored at construction) so
// steady-state dispatch performs no allocations.
func (p *Pool) RowMulVec(n int, dst, x Vector, fn RowKernel) bool {
	nc := p.beginEqual(n)
	if nc == 0 {
		return false
	}
	p.job = job{op: opRowRange, fn: fn, x: x, z: dst}
	p.run(nc)
	p.end()
	return true
}

// CSRMulVec computes dst = A*x for a CSR matrix given by (rowPtr,
// colIdx, vals), parallelized over the caller-provided row partition
// bounds (len(bounds)-1 chunks; see sparse.CSR.MulVecPool, which supplies
// an nnz-balanced partition). It returns false — leaving dst untouched —
// when the partition does not fit this pool and the caller should use
// its serial kernel.
//
// The pool deliberately knows this one structured kernel: SpMV dominates
// every solver's hot path, and routing it through the same opcode
// dispatch keeps the parallel form allocation-free.
func (p *Pool) CSRMulVec(bounds []int, rowPtr, colIdx []int, vals []float64, dst, x Vector) bool {
	nc := p.beginBounds(bounds)
	if nc == 0 {
		return false
	}
	p.job = job{op: opCSRMulVec, rowPtr: rowPtr, colIdx: colIdx, vals: vals, x: x, z: dst}
	p.run(nc)
	p.end()
	return true
}
