package vec

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool for chunked data-parallel vector kernels.
// A Pool with Workers == 1 degenerates to the serial kernels. The zero
// value is not usable; construct with NewPool.
type Pool struct {
	workers int
	// minChunk is the smallest slice length worth handing to a worker;
	// below it the serial kernel runs on the calling goroutine.
	minChunk int
}

// DefaultPool uses all available CPUs with a conservative minimum chunk.
var DefaultPool = NewPool(runtime.GOMAXPROCS(0))

// NewPool returns a pool using the given number of workers (at least 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, minChunk: 4096}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// SetMinChunk overrides the minimum per-worker slice length. Intended for
// tests that want to force the parallel paths on small vectors.
func (p *Pool) SetMinChunk(n int) {
	if n < 1 {
		n = 1
	}
	p.minChunk = n
}

// split partitions [0, n) into at most p.workers near-equal ranges of at
// least minChunk elements, returning the boundary offsets.
func (p *Pool) split(n int) []int {
	parts := p.workers
	if maxParts := n / p.minChunk; parts > maxParts {
		parts = maxParts
	}
	if parts < 2 {
		return nil
	}
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = i * n / parts
	}
	return bounds
}

// parallelFor runs body over the chunk ranges concurrently. body receives
// (chunkIndex, lo, hi).
func parallelFor(bounds []int, body func(c, lo, hi int)) {
	var wg sync.WaitGroup
	for c := 0; c < len(bounds)-1; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body(c, bounds[c], bounds[c+1])
		}(c)
	}
	wg.Wait()
}

// Dot computes <x, y> with chunked parallel partial sums combined in
// chunk order, so the result is deterministic for a fixed worker count.
func (p *Pool) Dot(x, y Vector) float64 {
	mustSameLen2(len(x), len(y))
	bounds := p.split(len(x))
	if bounds == nil {
		return Dot(x, y)
	}
	partial := make([]float64, len(bounds)-1)
	parallelFor(bounds, func(c, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		partial[c] = s
	})
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// Axpy computes y += alpha*x with chunked parallelism.
func (p *Pool) Axpy(alpha float64, x, y Vector) {
	mustSameLen2(len(x), len(y))
	bounds := p.split(len(x))
	if bounds == nil {
		Axpy(alpha, x, y)
		return
	}
	parallelFor(bounds, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Xpay computes y = x + alpha*y with chunked parallelism.
func (p *Pool) Xpay(x Vector, alpha float64, y Vector) {
	mustSameLen2(len(x), len(y))
	bounds := p.split(len(x))
	if bounds == nil {
		Xpay(x, alpha, y)
		return
	}
	parallelFor(bounds, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = x[i] + alpha*y[i]
		}
	})
}

// FusedCGUpdate is the parallel form of vec.FusedCGUpdate: x += alpha*p,
// r -= alpha*ap, returning <r,r> with deterministic chunk-ordered
// combination.
func (p *Pool) FusedCGUpdate(alpha float64, pv, ap, x, r Vector) float64 {
	mustSameLen2(len(pv), len(ap))
	mustSameLen2(len(pv), len(x))
	mustSameLen2(len(pv), len(r))
	bounds := p.split(len(pv))
	if bounds == nil {
		return FusedCGUpdate(alpha, pv, ap, x, r)
	}
	partial := make([]float64, len(bounds)-1)
	parallelFor(bounds, func(c, lo, hi int) {
		var rr float64
		for i := lo; i < hi; i++ {
			x[i] += alpha * pv[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		partial[c] = rr
	})
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// DotBatch computes dots[j] = <x, ys[j]>, parallelizing across chunks of x
// and keeping per-chunk partials so results are deterministic.
func (p *Pool) DotBatch(x Vector, ys []Vector, dots []float64) {
	if len(ys) != len(dots) {
		panic("vec: DotBatch output length mismatch")
	}
	bounds := p.split(len(x))
	if bounds == nil || len(ys) == 0 {
		DotBatch(x, ys, dots)
		return
	}
	for _, y := range ys {
		mustSameLen2(len(x), len(y))
	}
	nc := len(bounds) - 1
	partial := make([][]float64, nc)
	parallelFor(bounds, func(c, lo, hi int) {
		row := make([]float64, len(ys))
		for j, y := range ys {
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			row[j] = s
		}
		partial[c] = row
	})
	for j := range dots {
		dots[j] = 0
	}
	for _, row := range partial {
		for j, v := range row {
			dots[j] += v
		}
	}
}
