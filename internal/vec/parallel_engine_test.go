package vec

import (
	"runtime"
	"sync"
	"testing"
)

// engineWorkerCounts is the satellite-test matrix: serial degenerate,
// minimal parallel, the host's CPU count, and more workers than there
// are elements.
func engineWorkerCounts(n int) []int {
	return []int{1, 2, runtime.GOMAXPROCS(0), n + 3}
}

// TestPooledKernelsMatchSerialAcrossWorkerCounts is the engine
// equivalence property: every pooled kernel agrees with its serial form
// (bitwise for elementwise ops, within tolerance for reductions) for
// worker counts 1, 2, NumCPU, and > element count.
func TestPooledKernelsMatchSerialAcrossWorkerCounts(t *testing.T) {
	for _, n := range []int{1, 5, 127, 1024, 10000} {
		x := New(n)
		y := New(n)
		z := New(n)
		Random(x, uint64(3*n+1))
		Random(y, uint64(3*n+2))
		Random(z, uint64(3*n+3))

		wantDot := Dot(x, y)
		wantXY, wantXZ := DotPair(x, y, z)

		for _, w := range engineWorkerCounts(n) {
			p := NewPoolMinChunk(w, 1)

			if got := p.Dot(x, y); !almostEqual(got, wantDot, 1e-11) {
				t.Fatalf("n=%d w=%d Dot = %v want %v", n, w, got, wantDot)
			}
			gotXY, gotXZ := p.DotPair(x, y, z)
			if !almostEqual(gotXY, wantXY, 1e-11) || !almostEqual(gotXZ, wantXZ, 1e-11) {
				t.Fatalf("n=%d w=%d DotPair = (%v,%v) want (%v,%v)", n, w, gotXY, gotXZ, wantXY, wantXZ)
			}

			// Elementwise kernels must match bitwise.
			y1, y2 := Clone(y), Clone(y)
			Axpy(1.25, x, y1)
			p.Axpy(1.25, x, y2)
			if !Equal(y1, y2) {
				t.Fatalf("n=%d w=%d pooled Axpy differs bitwise", n, w)
			}

			y1, y2 = Clone(y), Clone(y)
			Xpay(x, -0.75, y1)
			p.Xpay(x, -0.75, y2)
			if !Equal(y1, y2) {
				t.Fatalf("n=%d w=%d pooled Xpay differs bitwise", n, w)
			}

			d1, d2 := New(n), New(n)
			MulElem(d1, x, y)
			p.MulElem(d2, x, y)
			if !Equal(d1, d2) {
				t.Fatalf("n=%d w=%d pooled MulElem differs bitwise", n, w)
			}

			x1, r1 := Clone(x), Clone(z)
			x2, r2 := Clone(x), Clone(z)
			rr1 := FusedCGUpdate(0.3, y, z, x1, r1)
			rr2 := p.FusedCGUpdate(0.3, y, z, x2, r2)
			if !Equal(x1, x2) || !Equal(r1, r2) {
				t.Fatalf("n=%d w=%d pooled FusedCGUpdate vectors differ bitwise", n, w)
			}
			if !almostEqual(rr1, rr2, 1e-11) {
				t.Fatalf("n=%d w=%d FusedCGUpdate rr = %v want %v", n, w, rr2, rr1)
			}
			p.Close()
		}
	}
}

// TestPoolZeroAllocSteadyState proves the dispatch path allocates
// nothing once the pool is warm: no per-call goroutines, closures, or
// partial-sum slices.
func TestPoolZeroAllocSteadyState(t *testing.T) {
	n := 1 << 15
	x := New(n)
	y := New(n)
	r := New(n)
	w := New(n)
	Random(x, 1)
	Random(y, 2)
	Random(r, 3)
	p := NewPoolMinChunk(4, 64)
	defer p.Close()
	p.Dot(x, y) // warm: spawns workers, sizes slabs

	if avg := testing.AllocsPerRun(100, func() { p.Dot(x, y) }); avg != 0 {
		t.Errorf("pooled Dot allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.Axpy(0.5, x, y) }); avg != 0 {
		t.Errorf("pooled Axpy allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.FusedCGUpdate(1e-3, x, y, w, r) }); avg != 0 {
		t.Errorf("pooled FusedCGUpdate allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.DotPair(x, y, r) }); avg != 0 {
		t.Errorf("pooled DotPair allocates %v per call, want 0", avg)
	}
}

// TestPoolGoroutineCountStable verifies workers are persistent: many
// dispatches reuse the same goroutines instead of spawning per call.
func TestPoolGoroutineCountStable(t *testing.T) {
	n := 1 << 14
	x := New(n)
	y := New(n)
	Random(x, 5)
	Random(y, 6)
	p := NewPoolMinChunk(4, 64)
	defer p.Close()
	p.Dot(x, y)
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		p.Dot(x, y)
	}
	after := runtime.NumGoroutine()
	if after > before+1 {
		t.Fatalf("goroutine count grew from %d to %d across dispatches", before, after)
	}
}

// TestSetMinChunkConcurrent exercises the SetMinChunk data-race fix:
// mutating the chunk threshold while kernels run must be safe (run
// under -race to see the old bug).
func TestSetMinChunkConcurrent(t *testing.T) {
	n := 1 << 13
	x := New(n)
	y := New(n)
	Random(x, 7)
	Random(y, 8)
	p := NewPool(4)
	defer p.Close()
	want := Dot(x, y)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetMinChunk(i%5000 + 1)
		}
	}()
	for i := 0; i < 500; i++ {
		if got := p.Dot(x, y); !almostEqual(got, want, 1e-11) {
			t.Fatalf("Dot under concurrent SetMinChunk = %v want %v", got, want)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPoolConcurrentDispatch checks that concurrent callers of one pool
// serialize correctly and all get right answers.
func TestPoolConcurrentDispatch(t *testing.T) {
	n := 1 << 13
	x := New(n)
	y := New(n)
	Random(x, 11)
	Random(y, 12)
	p := NewPoolMinChunk(4, 64)
	defer p.Close()
	want := p.Dot(x, y)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := p.Dot(x, y); got != want {
					t.Errorf("concurrent pooled Dot = %v want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolCloseFallsBackToSerial: kernels on a closed pool still return
// correct results via the serial path.
func TestPoolCloseFallsBackToSerial(t *testing.T) {
	n := 1 << 13
	x := New(n)
	y := New(n)
	Random(x, 13)
	Random(y, 14)
	p := NewPoolMinChunk(4, 1)
	got1 := p.Dot(x, y)
	p.Close()
	p.Close() // idempotent
	got2 := p.Dot(x, y)
	if !almostEqual(got1, got2, 1e-11) {
		t.Fatalf("Dot after Close = %v, before = %v", got2, got1)
	}
}

func TestPoolCSRMulVecRejectsOversizedPartition(t *testing.T) {
	p := NewPoolMinChunk(2, 1)
	defer p.Close()
	// 3 chunks > 2 workers: must refuse and leave dst untouched.
	n := 6
	rowPtr := []int{0, 1, 2, 3, 4, 5, 6}
	colIdx := []int{0, 1, 2, 3, 4, 5}
	vals := []float64{1, 1, 1, 1, 1, 1}
	dst := New(n)
	Fill(dst, -1)
	x := New(n)
	Fill(x, 2)
	if p.CSRMulVec([]int{0, 2, 4, 6}, rowPtr, colIdx, vals, dst, x) {
		t.Fatal("CSRMulVec accepted a partition wider than the pool")
	}
	for i := range dst {
		if dst[i] != -1 {
			t.Fatal("CSRMulVec touched dst after refusing")
		}
	}
}
