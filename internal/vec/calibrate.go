package vec

import (
	"math"
	"sort"
	"time"
)

// Calibration reports the measured serial/parallel crossover for each
// pooled opcode: the smallest operand size (elements for vector ops,
// nonzeros for csrmulvec, rows for rowrange) at which the pooled kernel
// beat the serial one on this machine. An opcode that never won — the
// normal result on a single-core host — reports math.MaxInt64, meaning
// "always serial".
type Calibration struct {
	Workers int
	Cutoffs map[string]int64
}

// Calibrate measures, once per pool, where each pooled kernel starts
// beating its serial form on the current machine, and installs those
// crossovers as the pool's per-opcode cutoffs (replacing the
// conservative static defaults). Subsequent calls return the stored
// report without re-measuring.
//
// The measurement runs each kernel serially and force-parallel over a
// geometric ladder of sizes (8Ki..1Mi elements; nonzeros for SpMV) and
// takes the best of several timed trials; the cutoff is the first size
// where the pooled form wins by a clear margin. The whole sweep costs
// on the order of 100ms, so it belongs at process startup (servers,
// benchmark harnesses), not in per-solve paths. Calibration only moves
// the serial/parallel dispatch point — pooled reductions are bitwise
// identical to serial at every size, so cutoff placement can never
// change numerical results.
func (p *Pool) Calibrate() Calibration {
	p.calOnce.Do(func() {
		p.cal = p.calibrate()
		for op := 1; op < nOps; op++ {
			p.cut[op].Store(p.cal.Cutoffs[opNames[op]])
		}
	})
	return p.cal
}

// winMargin is how decisively the pooled kernel must beat serial before
// a size counts as the crossover: losing a near-tie to measurement
// noise costs integer factors below the true crossover, while requiring
// a 10% win merely delays parallelism to a size where it clearly pays.
const winMargin = 0.9

func (p *Pool) calibrate() Calibration {
	cal := Calibration{Workers: p.workers, Cutoffs: make(map[string]int64, nOps-1)}
	never := func() {
		for op := 1; op < nOps; op++ {
			cal.Cutoffs[opNames[op]] = math.MaxInt64
		}
	}
	if p.workers < 2 || p.closed.Load() {
		never()
		return cal
	}

	const maxN = 1 << 20
	sizes := make([]int, 0, 8)
	for n := 1 << 13; n <= maxN; n <<= 1 {
		sizes = append(sizes, n)
	}

	// Deterministic non-trivial operands (values do not affect timing,
	// but keep them finite and mixed-sign).
	x := make([]float64, maxN)
	y := make([]float64, maxN)
	z := make([]float64, maxN)
	w := make([]float64, maxN)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(int64(rng>>11))/float64(1<<52) - 0.5
	}
	for i := range x {
		x[i], y[i], z[i], w[i] = next(), next(), next(), next()
	}
	var sink float64
	dots := make([]float64, 4)
	// Tiny coefficients keep the AxpyBlock probe's accumulating
	// destinations finite across arbitrarily many timing reps.
	tinyCoef := [4]float64{1e-9, -1e-9, 1e-9, -1e-9}

	probes := []struct {
		op     opcode
		serial func(n int)
		pooled func(n int)
	}{
		{opDot,
			func(n int) { sink = Dot(x[:n], y[:n]) },
			func(n int) { sink = p.Dot(x[:n], y[:n]) }},
		{opDotPair,
			func(n int) { sink, _ = DotPair(x[:n], y[:n], z[:n]) },
			func(n int) { sink, _ = p.DotPair(x[:n], y[:n], z[:n]) }},
		{opAxpy,
			func(n int) { Axpy(1e-9, x[:n], y[:n]) },
			func(n int) { p.Axpy(1e-9, x[:n], y[:n]) }},
		{opXpay,
			func(n int) { Xpay(x[:n], 0.5, y[:n]) },
			func(n int) { p.Xpay(x[:n], 0.5, y[:n]) }},
		{opMulElem,
			func(n int) { MulElem(z[:n], x[:n], y[:n]) },
			func(n int) { p.MulElem(z[:n], x[:n], y[:n]) }},
		{opFusedCG,
			func(n int) { sink = FusedCGUpdate(1e-9, x[:n], y[:n], z[:n], w[:n]) },
			func(n int) { sink = p.FusedCGUpdate(1e-9, x[:n], y[:n], z[:n], w[:n]) }},
		{opDotBatch,
			func(n int) { DotBatch(x[:n], []Vector{y[:n], z[:n], w[:n], y[:n]}, dots) },
			func(n int) { p.DotBatch(x[:n], []Vector{y[:n], z[:n], w[:n], y[:n]}, dots) }},
		{opDotBlock,
			func(n int) { DotBlock([]Vector{x[:n], y[:n]}, []Vector{z[:n], w[:n]}, dots) },
			func(n int) { p.DotBlock([]Vector{x[:n], y[:n]}, []Vector{z[:n], w[:n]}, dots) }},
		{opAxpyBlock,
			func(n int) { AxpyBlock(tinyCoef[:], []Vector{x[:n], y[:n]}, []Vector{z[:n], w[:n]}) },
			func(n int) { p.AxpyBlock(tinyCoef[:], []Vector{x[:n], y[:n]}, []Vector{z[:n], w[:n]}) }},
	}
	for _, pr := range probes {
		cal.Cutoffs[opNames[pr.op]] = p.crossover(pr.op, sizes, pr.serial, pr.pooled)
	}

	// SpMV probes share a 5-band synthetic matrix: uniform rows, so an
	// equal row split is nnz-balanced, and sub-prefixes of the arrays
	// are valid smaller systems.
	const maxRows = 1 << 17
	rowPtr := make([]int, maxRows+1)
	var colIdx []int
	var vals []float64
	for i := 0; i < maxRows; i++ {
		for _, j := range [5]int{i - 2, i - 1, i, i + 1, i + 2} {
			if j >= 0 && j < maxRows {
				colIdx = append(colIdx, j)
				vals = append(vals, next())
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	serialSpMV := func(rows int) {
		for i := 0; i < rows; i++ {
			var s float64
			for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
				s += vals[q] * x[q%maxN]
			}
			w[i] = s
		}
	}
	bounds := make([]int, p.workers+1)
	pooledSpMV := func(rows int) {
		parts := p.workers
		if parts > rows {
			parts = rows
		}
		b := bounds[:parts+1]
		for c := 0; c <= parts; c++ {
			b[c] = c * rows / parts
		}
		if !p.CSRMulVec(b, rowPtr[:rows+1], colIdx[:rowPtr[rows]], vals[:rowPtr[rows]], w[:rows], x) {
			serialSpMV(rows)
		}
	}
	// csrmulvec sizes are nonzeros: map each nnz ladder size to rows.
	nnzSizes := make([]int, 0, len(sizes))
	rowsFor := make(map[int]int)
	for _, s := range sizes {
		r := sort.SearchInts(rowPtr, s)
		if r > maxRows {
			break
		}
		nnzSizes = append(nnzSizes, s)
		rowsFor[s] = r
	}
	cut := p.crossover(opCSRMulVec, nnzSizes,
		func(nnz int) { serialSpMV(rowsFor[nnz]) },
		func(nnz int) { pooledSpMV(rowsFor[nnz]) })
	cal.Cutoffs[opNames[opCSRMulVec]] = cut
	// rowrange kernels do comparable per-row work; reuse the SpMV
	// crossover converted from nonzeros to rows (5 nnz per band row).
	// The multi-vector SpMV does strictly more work per row than the
	// single-vector form at the same nnz, so it crosses over no later —
	// reuse the measured single-vector crossover directly.
	if cut == math.MaxInt64 {
		cal.Cutoffs[opNames[opRowRange]] = math.MaxInt64
		cal.Cutoffs[opNames[opCSRMulVecs]] = math.MaxInt64
	} else {
		cal.Cutoffs[opNames[opRowRange]] = cut / 5
		cal.Cutoffs[opNames[opCSRMulVecs]] = cut
	}

	_ = sink
	return cal
}

// crossover times serial vs force-parallel forms of one opcode over the
// size ladder and returns the first size where pooled wins by winMargin,
// or math.MaxInt64 if it never does. The op's cutoff is forced to 1 for
// the duration so the pooled form actually dispatches.
func (p *Pool) crossover(op opcode, sizes []int, serial, pooled func(n int)) int64 {
	saved := p.cut[op].Load()
	p.cut[op].Store(1)
	defer p.cut[op].Store(saved)
	for _, n := range sizes {
		ts := bestOf(func() { serial(n) })
		tp := bestOf(func() { pooled(n) })
		if float64(tp) <= winMargin*float64(ts) {
			return int64(n)
		}
	}
	return math.MaxInt64
}

// bestOf returns the minimum per-call time over a few auto-repped
// trials — the standard defense against scheduler noise when timing
// microsecond kernels.
func bestOf(f func()) time.Duration {
	f() // warm caches and worker wakeup paths
	best := time.Duration(math.MaxInt64)
	for trial := 0; trial < 3; trial++ {
		reps := 1
		for {
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			d := time.Since(t0)
			if d >= 100*time.Microsecond || reps >= 1<<22 {
				if per := d / time.Duration(reps); per < best {
					best = per
				}
				break
			}
			reps <<= 1
		}
	}
	return best
}
