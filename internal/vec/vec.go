// Package vec provides dense vector kernels used throughout the conjugate
// gradient solvers: dot products, axpy-style updates, norms, and fused
// multi-operation kernels.
//
// All kernels come in a serial form and, where profitable, a chunked
// parallel form driven by a shared worker pool (see Pool). The parallel
// forms exist both for wall-clock speed on multicore hosts and to mirror
// the data-parallel structure the paper assumes: elementwise operations
// are depth-1, reductions are depth-log(N).
//
// # Canonical blocked reductions
//
// Every reducing kernel (Dot, DotPair, FusedCGUpdate, DotBatch) is
// defined — not just implemented — as a fixed reduction tree over
// blocks of BlockLen elements: each block is accumulated by a 4-way
// unrolled leaf (four independent accumulator chains, so the compiler
// and the CPU overlap the floating-point adds), and block partials are
// combined by pairwise recursion whose shape depends only on the vector
// length. The serial kernels walk that tree directly; the pooled
// kernels compute the same leaves on worker goroutines and replay the
// same combine tree over the published block partials. The result is
// the substrate's core guarantee: serial and pooled reductions are
// BITWISE IDENTICAL for every worker count, so moving a solve on or
// off a Pool — or recalibrating its cutoffs — can never change a
// trajectory.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrLength reports a length mismatch between vector operands.
var ErrLength = errors.New("vec: operand length mismatch")

// Vector is a dense column vector of float64 components. It is a type
// alias, not a defined type, so the public packages (solve, sparse) can
// state their interfaces on plain []float64 while every internal kernel
// keeps reading vec.Vector: the two spellings are interchangeable
// everywhere, with no conversions at the API boundary.
type Vector = []float64

// New returns a zero vector of length n.
func New(n int) Vector { return make(Vector, n) }

// NewFrom returns a vector holding a copy of the given components.
func NewFrom(data []float64) Vector {
	v := make(Vector, len(data))
	copy(v, data)
	return v
}

// Clone returns an independent copy of v.
func Clone(v Vector) Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Zero sets every component of v to zero in place.
func Zero(v Vector) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every component of v to c in place.
func Fill(v Vector, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Copy copies src into dst. The lengths must match (unlike the built-in
// copy, which silently truncates).
func Copy(dst, src Vector) {
	mustSameLen2(len(dst), len(src))
	copy(dst, src)
}

// Equal reports whether v and w have identical length and components.
func Equal(v, w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// EqualTol reports whether v and w agree componentwise within absolute
// tolerance tol.
func EqualTol(v, w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// String renders short vectors fully and long vectors abbreviated.
func String(v Vector) string {
	const maxShow = 8
	if len(v) <= maxShow {
		return fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("[%v ... %v len=%d]", v[:4], v[len(v)-2:], len(v))
}

func mustSameLen2(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", a, b))
	}
}

func mustSameLen3(a, b, c int) {
	if a != b || b != c {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d vs %d", a, b, c))
	}
}

// BlockLen is the leaf size of the canonical reduction tree: reducing
// kernels accumulate BlockLen-element blocks with 4-way unrolled
// independent chains and combine block partials pairwise. It is the
// unit the Pool aligns its chunk boundaries to, which is what makes
// pooled reductions bitwise identical to the serial kernels. Two
// BlockLen operand slices fit comfortably in L1.
const BlockLen = 1024

// nblocks returns the number of reduction-tree leaves for an n-element
// kernel (the last leaf may be short).
func nblocks(n int) int { return (n + BlockLen - 1) / BlockLen }

// treeMid returns the canonical split point of an n-element reduction:
// half the blocks (rounded down), in elements. Both the serial
// recursion and the pooled block-partial combine split here, which is
// what keeps their trees congruent.
func treeMid(n int) int { return nblocks(n) / 2 * BlockLen }

// dotLeaf accumulates <x, y> over one block (len(x) <= BlockLen) with
// four independent accumulator chains, combined as (s0+s1)+(s2+s3).
func dotLeaf(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dotTree evaluates the canonical reduction tree over x, y.
func dotTree(x, y []float64) float64 {
	n := len(x)
	if n <= BlockLen {
		return dotLeaf(x, y)
	}
	mid := treeMid(n)
	return dotTree(x[:mid], y[:mid]) + dotTree(x[mid:], y[mid:])
}

// combineTree replays the canonical combine over precomputed block
// partials: it is dotTree with the leaves already evaluated, so a
// pooled reduction that fills part from worker goroutines reproduces
// the serial result bit for bit.
func combineTree(part []float64) float64 {
	if len(part) == 1 {
		return part[0]
	}
	mid := len(part) / 2
	return combineTree(part[:mid]) + combineTree(part[mid:])
}

// Dot returns the inner product <x, y>.
func Dot(x, y Vector) float64 {
	mustSameLen2(len(x), len(y))
	if len(x) == 0 {
		return 0
	}
	return dotTree(x, y)
}

// DotKahan returns <x, y> accumulated with Kahan compensated summation.
// It is used where the recurrence-exactness experiments need a reference
// inner product with reduced rounding error.
func DotKahan(x, y Vector) float64 {
	mustSameLen2(len(x), len(y))
	var sum, comp float64
	for i := range x {
		t := x[i]*y[i] - comp
		next := sum + t
		comp = (next - sum) - t
		sum = next
	}
	return sum
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components by scaling.
func Norm2(x Vector) float64 {
	var scale, ssq float64
	ssq = 1
	for _, xi := range x {
		if xi == 0 {
			continue
		}
		a := math.Abs(xi)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute component of x.
func NormInf(x Vector) float64 {
	var m float64
	for _, xi := range x {
		if a := math.Abs(xi); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute components of x.
func Norm1(x Vector) float64 {
	var s float64
	for _, xi := range x {
		s += math.Abs(xi)
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y Vector) {
	mustSameLen2(len(x), len(y))
	if alpha == 0 {
		return
	}
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// AxpyTo computes dst = y + alpha*x without touching the operands.
func AxpyTo(dst Vector, alpha float64, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	for i := range x {
		dst[i] = y[i] + alpha*x[i]
	}
}

// Xpay computes y = x + alpha*y in place (the CG direction update
// p = r + beta*p).
func Xpay(x Vector, alpha float64, y Vector) {
	mustSameLen2(len(x), len(y))
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] = x[i] + alpha*y[i]
		y[i+1] = x[i+1] + alpha*y[i+1]
		y[i+2] = x[i+2] + alpha*y[i+2]
		y[i+3] = x[i+3] + alpha*y[i+3]
	}
	for ; i < n; i++ {
		y[i] = x[i] + alpha*y[i]
	}
}

// Scale multiplies every component of x by alpha in place.
func Scale(alpha float64, x Vector) {
	for i := range x {
		x[i] *= alpha
	}
}

// ScaleTo computes dst = alpha*x.
func ScaleTo(dst Vector, alpha float64, x Vector) {
	mustSameLen2(len(dst), len(x))
	for i := range x {
		dst[i] = alpha * x[i]
	}
}

// Add computes dst = x + y.
func Add(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	for i := range x {
		dst[i] = x[i] + y[i]
	}
}

// Sub computes dst = x - y.
func Sub(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	for i := range x {
		dst[i] = x[i] - y[i]
	}
}

// MulElem computes dst = x .* y componentwise.
func MulElem(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	n := len(x)
	y = y[:n]
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = x[i] * y[i]
		dst[i+1] = x[i+1] * y[i+1]
		dst[i+2] = x[i+2] * y[i+2]
		dst[i+3] = x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] * y[i]
	}
}

// DivElem computes dst = x ./ y componentwise. Division by a zero
// component yields ±Inf or NaN per IEEE semantics; callers that need
// protection should validate y first.
func DivElem(dst, x, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	for i := range x {
		dst[i] = x[i] / y[i]
	}
}

// Lincomb2 computes dst = a*x + b*y.
func Lincomb2(dst Vector, a float64, x Vector, b float64, y Vector) {
	mustSameLen3(len(dst), len(x), len(y))
	for i := range x {
		dst[i] = a*x[i] + b*y[i]
	}
}

// Lincomb accumulates dst = sum_j coeffs[j] * xs[j]. All vectors must share
// dst's length. An empty coefficient list zeroes dst.
func Lincomb(dst Vector, coeffs []float64, xs []Vector) {
	if len(coeffs) != len(xs) {
		panic(fmt.Sprintf("vec: %d coefficients for %d vectors", len(coeffs), len(xs)))
	}
	Zero(dst)
	for j, x := range xs {
		Axpy(coeffs[j], x, dst)
	}
}

// FusedCGUpdate performs the three fused vector updates of one CG step:
//
//	x += alpha*p;  r -= alpha*ap;  returns <r,r> of the updated residual.
//
// Fusing them keeps a single pass over memory, which is how a depth-1
// elementwise phase followed by one reduction would be scheduled on the
// machine the paper assumes.
func FusedCGUpdate(alpha float64, p, ap, x, r Vector) float64 {
	mustSameLen2(len(p), len(ap))
	mustSameLen2(len(p), len(x))
	mustSameLen2(len(p), len(r))
	if len(p) == 0 {
		return 0
	}
	return fusedCGTree(alpha, p, ap, x, r)
}

// fusedCGLeaf performs the fused update over one block and returns its
// <r, r> partial with the canonical 4-chain accumulation.
func fusedCGLeaf(alpha float64, p, ap, x, r []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(p)
	ap = ap[:n]
	x = x[:n]
	r = r[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x[i] += alpha * p[i]
		x[i+1] += alpha * p[i+1]
		x[i+2] += alpha * p[i+2]
		x[i+3] += alpha * p[i+3]
		r0 := r[i] - alpha*ap[i]
		r1 := r[i+1] - alpha*ap[i+1]
		r2 := r[i+2] - alpha*ap[i+2]
		r3 := r[i+3] - alpha*ap[i+3]
		r[i] = r0
		r[i+1] = r1
		r[i+2] = r2
		r[i+3] = r3
		s0 += r0 * r0
		s1 += r1 * r1
		s2 += r2 * r2
		s3 += r3 * r3
	}
	for ; i < n; i++ {
		x[i] += alpha * p[i]
		ri := r[i] - alpha*ap[i]
		r[i] = ri
		s0 += ri * ri
	}
	return (s0 + s1) + (s2 + s3)
}

// fusedCGTree is the canonical reduction tree of FusedCGUpdate; the
// elementwise updates commute, so only the <r,r> combine order matters.
func fusedCGTree(alpha float64, p, ap, x, r []float64) float64 {
	n := len(p)
	if n <= BlockLen {
		return fusedCGLeaf(alpha, p, ap, x, r)
	}
	mid := treeMid(n)
	left := fusedCGTree(alpha, p[:mid], ap[:mid], x[:mid], r[:mid])
	return left + fusedCGTree(alpha, p[mid:], ap[mid:], x[mid:], r[mid:])
}

// DotPair computes <x,y> and <x,z> in a single pass. The restructured CG
// algorithms batch inner products so the machine model can merge their
// reductions into one fan-in; the sequential kernels mirror that batching.
func DotPair(x, y, z Vector) (xy, xz float64) {
	mustSameLen3(len(x), len(y), len(z))
	if len(x) == 0 {
		return 0, 0
	}
	return dotPairTree(x, y, z)
}

// dotPairLeaf accumulates <x,y> and <x,z> over one block with two
// independent chains per sum (the three-operand traffic leaves less
// headroom than Dot's four).
func dotPairLeaf(x, y, z []float64) (xy, xz float64) {
	var a0, a1, b0, b1 float64
	n := len(x)
	y = y[:n]
	z = z[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		a0 += x[i] * y[i]
		a1 += x[i+1] * y[i+1]
		b0 += x[i] * z[i]
		b1 += x[i+1] * z[i+1]
	}
	for ; i < n; i++ {
		a0 += x[i] * y[i]
		b0 += x[i] * z[i]
	}
	return a0 + a1, b0 + b1
}

func dotPairTree(x, y, z []float64) (xy, xz float64) {
	n := len(x)
	if n <= BlockLen {
		return dotPairLeaf(x, y, z)
	}
	mid := treeMid(n)
	ly, lz := dotPairTree(x[:mid], y[:mid], z[:mid])
	ry, rz := dotPairTree(x[mid:], y[mid:], z[mid:])
	return ly + ry, lz + rz
}

// DotBatch computes dots[j] = <x, ys[j]> for all j in a single sweep over x.
func DotBatch(x Vector, ys []Vector, dots []float64) {
	if len(ys) != len(dots) {
		panic(fmt.Sprintf("vec: %d outputs for %d vectors", len(dots), len(ys)))
	}
	for j, y := range ys {
		mustSameLen2(len(x), len(y))
		dots[j] = Dot(x, y)
	}
}

// DotBlock fills out[i*len(ys)+j] = <xs[i], ys[j]> for every pair — the
// s×s Gram reduction of the block multi-RHS methods, batched so the
// whole block costs one synchronization on the pooled path. Each pair is
// defined by the canonical reduction tree, so the pooled form is bitwise
// identical to this serial one.
func DotBlock(xs, ys []Vector, out []float64) {
	if len(out) != len(xs)*len(ys) {
		panic(fmt.Sprintf("vec: DotBlock output length %d for %dx%d pairs", len(out), len(xs), len(ys)))
	}
	for i, x := range xs {
		for j, y := range ys {
			mustSameLen2(len(x), len(y))
			out[i*len(ys)+j] = Dot(x, y)
		}
	}
}

// AxpyBlock accumulates ys[j] += sum_i coef[i*len(ys)+j] * xs[i] for
// every output column — the block-CG update X += P·Λ as one kernel. The
// sweep is blocked so each BlockLen segment of every operand is touched
// while cache-resident; per element the accumulation order over i is
// fixed, so the pooled (chunked) form is bitwise identical.
func AxpyBlock(coef []float64, xs, ys []Vector) {
	if len(coef) != len(xs)*len(ys) {
		panic(fmt.Sprintf("vec: AxpyBlock coefficient length %d for %dx%d pairs", len(coef), len(xs), len(ys)))
	}
	if len(xs) == 0 || len(ys) == 0 {
		return
	}
	n := len(ys[0])
	for _, x := range xs {
		mustSameLen2(n, len(x))
	}
	for _, y := range ys {
		mustSameLen2(n, len(y))
	}
	axpyBlockRange(coef, xs, ys, 0, n)
}

// axpyBlockRange is the shared serial/pooled body of AxpyBlock over
// element range [lo, hi).
func axpyBlockRange(coef []float64, xs, ys []Vector, lo, hi int) {
	s := len(ys)
	for b0 := lo; b0 < hi; b0 += BlockLen {
		b1 := b0 + BlockLen
		if b1 > hi {
			b1 = hi
		}
		for j, y := range ys {
			yb := y[b0:b1]
			for i, x := range xs {
				Axpy(coef[i*s+j], x[b0:b1], yb)
			}
		}
	}
}

// GramBlock fills g[i][j] = <xs[i], ys[j]>. It is the kernel behind the
// base Gram sequences mu, nu, omega of the look-ahead algorithm.
func GramBlock(xs, ys []Vector, g [][]float64) {
	if len(g) != len(xs) {
		panic(fmt.Sprintf("vec: gram rows %d for %d vectors", len(g), len(xs)))
	}
	for i, x := range xs {
		if len(g[i]) != len(ys) {
			panic(fmt.Sprintf("vec: gram cols %d for %d vectors", len(g[i]), len(ys)))
		}
		for j, y := range ys {
			g[i][j] = Dot(x, y)
		}
	}
}

// Random fills v with reproducible pseudo-random components in [-1, 1)
// derived from seed using a SplitMix64 stream (no external dependencies,
// deterministic across platforms).
func Random(v Vector, seed uint64) {
	s := seed
	for i := range v {
		s = splitmix64(&s)
		// 53-bit mantissa to [0,1), then shift to [-1,1).
		v[i] = 2*float64(s>>11)/float64(1<<53) - 1
	}
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HasNaN reports whether any component of v is NaN.
func HasNaN(v Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// HasInf reports whether any component of v is infinite.
func HasInf(v Vector) bool {
	for _, x := range v {
		if math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
