package vec

import (
	"math"
	"testing"
)

// TestPooledReductionsBitwiseSerial is the CI guard test for the
// canonical blocked reductions: on fixed seeds, every pooled reduction
// must equal its serial form EXACTLY — not within tolerance — for
// worker counts and vector lengths chosen to hit every chunk-boundary
// shape (single block, partial tail block, block-aligned, line-aligned).
func TestPooledReductionsBitwiseSerial(t *testing.T) {
	sizes := []int{1, BlockLen - 1, BlockLen, BlockLen + 1, 3 * BlockLen,
		8*BlockLen + 17, 1 << 15, 1<<17 + 12345}
	for _, n := range sizes {
		x, y, z, w := New(n), New(n), New(n), New(n)
		Random(x, uint64(n)+1)
		Random(y, uint64(n)+2)
		Random(z, uint64(n)+3)
		Random(w, uint64(n)+4)

		wantDot := Dot(x, y)
		wantXY, wantXZ := DotPair(x, y, z)
		wantBatch := make([]float64, 3)
		DotBatch(x, []Vector{y, z, w}, wantBatch)

		for _, workers := range []int{2, 3, 4, 7} {
			p := NewPoolMinChunk(workers, 1)
			if got := p.Dot(x, y); got != wantDot {
				t.Fatalf("n=%d w=%d: pooled Dot = %.17g, serial %.17g (must be bitwise equal)",
					n, workers, got, wantDot)
			}
			gotXY, gotXZ := p.DotPair(x, y, z)
			if gotXY != wantXY || gotXZ != wantXZ {
				t.Fatalf("n=%d w=%d: pooled DotPair = (%.17g,%.17g), serial (%.17g,%.17g)",
					n, workers, gotXY, gotXZ, wantXY, wantXZ)
			}

			x1, r1 := Clone(z), Clone(w)
			x2, r2 := Clone(z), Clone(w)
			rr1 := FusedCGUpdate(0.37, x, y, x1, r1)
			rr2 := p.FusedCGUpdate(0.37, x, y, x2, r2)
			if rr1 != rr2 {
				t.Fatalf("n=%d w=%d: pooled FusedCGUpdate rr = %.17g, serial %.17g",
					n, workers, rr2, rr1)
			}
			if !Equal(x1, x2) || !Equal(r1, r2) {
				t.Fatalf("n=%d w=%d: pooled FusedCGUpdate vectors differ", n, workers)
			}

			gotBatch := make([]float64, 3)
			p.DotBatch(x, []Vector{y, z, w}, gotBatch)
			for j := range wantBatch {
				if gotBatch[j] != wantBatch[j] {
					t.Fatalf("n=%d w=%d: pooled DotBatch[%d] = %.17g, serial %.17g",
						n, workers, j, gotBatch[j], wantBatch[j])
				}
			}
			p.Close()
		}
	}
}

// TestDotTreeShape pins the canonical reduction definition itself: the
// tree combine must equal an explicit reference that sums each BlockLen
// block with four interleaved accumulators and pairwise-combines the
// block partials. If this fails, the "bitwise pooled==serial" guarantee
// has silently changed meaning.
func TestDotTreeShape(t *testing.T) {
	for _, n := range []int{5, BlockLen, 2*BlockLen + 100, 7*BlockLen + 3} {
		x, y := New(n), New(n)
		Random(x, uint64(2*n+1))
		Random(y, uint64(2*n+9))

		nb := nblocks(n)
		part := make([]float64, nb)
		for b := 0; b < nb; b++ {
			lo := b * BlockLen
			hi := lo + BlockLen
			if hi > n {
				hi = n
			}
			var s0, s1, s2, s3 float64
			i := lo
			for ; i+4 <= hi; i += 4 {
				s0 += x[i] * y[i]
				s1 += x[i+1] * y[i+1]
				s2 += x[i+2] * y[i+2]
				s3 += x[i+3] * y[i+3]
			}
			for ; i < hi; i++ {
				s0 += x[i] * y[i]
			}
			part[b] = (s0 + s1) + (s2 + s3)
		}
		var combine func(p []float64) float64
		combine = func(p []float64) float64 {
			if len(p) == 1 {
				return p[0]
			}
			mid := len(p) / 2
			return combine(p[:mid]) + combine(p[mid:])
		}
		if got, want := Dot(x, y), combine(part); got != want {
			t.Fatalf("n=%d: Dot = %.17g, reference tree %.17g", n, got, want)
		}
	}
}

// TestPoolZeroAllocNewKernels extends the steady-state allocation guard
// to the kernels added with the substrate rework: pooled Xpay, MulElem,
// and DotBatch must also be allocation-free when warm.
func TestPoolZeroAllocNewKernels(t *testing.T) {
	n := 1 << 15
	x, y, z, w := New(n), New(n), New(n), New(n)
	Random(x, 41)
	Random(y, 42)
	Random(z, 43)
	Random(w, 44)
	ys := []Vector{y, z, w}
	dots := make([]float64, 3)
	p := NewPoolMinChunk(4, 64)
	defer p.Close()
	p.DotBatch(x, ys, dots) // warm: workers + batch slab
	p.MulElem(z, x, y)

	if avg := testing.AllocsPerRun(100, func() { p.Xpay(x, 0.5, y) }); avg != 0 {
		t.Errorf("pooled Xpay allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.MulElem(z, x, y) }); avg != 0 {
		t.Errorf("pooled MulElem allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.DotBatch(x, ys, dots) }); avg != 0 {
		t.Errorf("pooled DotBatch allocates %v per call, want 0", avg)
	}
}

// TestCalibrateInstallsCutoffs: Calibrate runs once, reports a cutoff
// for every opcode, installs the same values it reports, and repeated
// calls return the stored report without re-measuring.
func TestCalibrateInstallsCutoffs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	p := NewPool(2)
	defer p.Close()
	cal := p.Calibrate()
	if cal.Workers != 2 {
		t.Fatalf("Calibration.Workers = %d, want 2", cal.Workers)
	}
	for op := 1; op < nOps; op++ {
		name := opNames[op]
		c, ok := cal.Cutoffs[name]
		if !ok || c <= 0 {
			t.Fatalf("no positive cutoff reported for %q: %v", name, cal.Cutoffs)
		}
		if got := p.cut[op].Load(); got != c {
			t.Fatalf("installed cutoff for %q = %d, reported %d", name, got, c)
		}
	}
	again := p.Calibrate()
	for name, c := range cal.Cutoffs {
		if again.Cutoffs[name] != c {
			t.Fatalf("second Calibrate changed %q: %d -> %d", name, c, again.Cutoffs[name])
		}
	}
}

// TestCalibrateSerialPool: a one-worker pool can never win, so every
// cutoff must be "always serial".
func TestCalibrateSerialPool(t *testing.T) {
	p := NewPool(1)
	cal := p.Calibrate()
	for name, c := range cal.Cutoffs {
		if c != math.MaxInt64 {
			t.Fatalf("serial pool reported finite cutoff for %q: %d", name, c)
		}
	}
}

// TestCalibrateKeepsResults: calibration only moves the dispatch
// cutoffs, never the numbers — a dot computed before and after
// calibration is bitwise identical.
func TestCalibrateKeepsResults(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	n := 1 << 17
	x, y := New(n), New(n)
	Random(x, 51)
	Random(y, 52)
	p := NewPool(4)
	defer p.Close()
	before := p.Dot(x, y)
	p.Calibrate()
	after := p.Dot(x, y)
	if before != after || before != Dot(x, y) {
		t.Fatalf("calibration changed Dot: before %.17g after %.17g serial %.17g",
			before, after, Dot(x, y))
	}
}

// TestDefaultCutoffsConservative pins the small-n regression fix: with
// the default construction, reductions below 64Ki elements and
// elementwise ops below 32Ki must take the serial path outright (the
// old global minChunk=4096 pushed a 16Ki dot through the pool and lost
// 20x to wakeup latency).
func TestDefaultCutoffsConservative(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	if c := p.cutoff(opDot); c < 1<<16 {
		t.Fatalf("default dot cutoff %d, want >= %d", c, 1<<16)
	}
	if c := p.cutoff(opAxpy); c < 1<<15 {
		t.Fatalf("default axpy cutoff %d, want >= %d", c, 1<<15)
	}
	// Observable behavior: a 16Ki pooled dot must not dispatch (same
	// bits as serial AND no worker goroutines ever started).
	n := 1 << 14
	x, y := New(n), New(n)
	Random(x, 61)
	Random(y, 62)
	if got, want := p.Dot(x, y), Dot(x, y); got != want {
		t.Fatalf("below-cutoff pooled Dot = %.17g, serial %.17g", got, want)
	}
	if p.wake != nil {
		t.Fatal("below-cutoff dispatch spawned workers")
	}
}
