package vec

import (
	"testing"
)

// bandCSR builds a deterministic 5-band n×n CSR system for the
// multi-vector SpMV tests: uniform-ish rows so an equal row split is a
// valid nnz-balanced partition.
func bandCSR(n int, seed uint64) (rowPtr, colIdx []int, vals []float64) {
	rowPtr = make([]int, n+1)
	noise := New(5 * n)
	Random(noise, seed)
	k := 0
	for i := 0; i < n; i++ {
		for _, j := range [5]int{i - 2, i - 1, i, i + 1, i + 2} {
			if j >= 0 && j < n {
				colIdx = append(colIdx, j)
				vals = append(vals, noise[k%len(noise)])
				k++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return rowPtr, colIdx, vals
}

// TestDotBlockMatchesPairwiseDot: the serial block Gram kernel is
// definitionally the pairwise Dot, bitwise.
func TestDotBlockMatchesPairwiseDot(t *testing.T) {
	n := 3*BlockLen + 17
	xs := make([]Vector, 3)
	ys := make([]Vector, 2)
	for i := range xs {
		xs[i] = New(n)
		Random(xs[i], uint64(100+i))
	}
	for j := range ys {
		ys[j] = New(n)
		Random(ys[j], uint64(200+j))
	}
	out := make([]float64, len(xs)*len(ys))
	DotBlock(xs, ys, out)
	for i := range xs {
		for j := range ys {
			if want := Dot(xs[i], ys[j]); out[i*len(ys)+j] != want {
				t.Fatalf("DotBlock[%d,%d] = %.17g, Dot = %.17g", i, j, out[i*len(ys)+j], want)
			}
		}
	}
}

// TestAxpyBlockMatchesLoopedAxpy: the serial multi-axpy matches the
// naive per-pair Axpy loop bitwise (same per-element accumulation
// order: for each block, over i in order).
func TestAxpyBlockMatchesLoopedAxpy(t *testing.T) {
	n := 2*BlockLen + 5
	s := 3
	xs := make([]Vector, s)
	for i := range xs {
		xs[i] = New(n)
		Random(xs[i], uint64(300+i))
	}
	coef := make([]float64, s*s)
	Random(coef, 77)
	y0 := make([]Vector, s)
	y1 := make([]Vector, s)
	base := New(n)
	Random(base, 88)
	for j := 0; j < s; j++ {
		y0[j] = Clone(base)
		y1[j] = Clone(base)
	}
	AxpyBlock(coef, xs, y0)
	// Reference: identical block/element order, one pair at a time.
	for b0 := 0; b0 < n; b0 += BlockLen {
		b1 := b0 + BlockLen
		if b1 > n {
			b1 = n
		}
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				Axpy(coef[i*s+j], xs[i][b0:b1], y1[j][b0:b1])
			}
		}
	}
	for j := 0; j < s; j++ {
		if !Equal(y0[j], y1[j]) {
			t.Fatalf("AxpyBlock column %d differs from reference", j)
		}
	}
}

// TestPooledBlockKernelsBitwiseSerial: the pooled DotBlock/AxpyBlock
// agree bitwise with their serial forms for every worker count and
// boundary-straddling size, the same contract as every other pooled
// kernel.
func TestPooledBlockKernelsBitwiseSerial(t *testing.T) {
	sizes := []int{1, BlockLen - 1, BlockLen, BlockLen + 1, 3 * BlockLen, 8*BlockLen + 17}
	for _, n := range sizes {
		xs := make([]Vector, 3)
		ys := make([]Vector, 3)
		for i := range xs {
			xs[i] = New(n)
			ys[i] = New(n)
			Random(xs[i], uint64(1000+i))
			Random(ys[i], uint64(2000+i))
		}
		out := make([]float64, 9)
		coef := make([]float64, 9)
		Random(coef, 55)
		wantOut := make([]float64, 9)
		DotBlock(xs, ys, wantOut)
		wantYs := make([]Vector, 3)
		for j := range ys {
			wantYs[j] = Clone(ys[j])
		}
		AxpyBlock(coef, xs, wantYs)

		for _, w := range []int{2, 3, 4, 7} {
			p := NewPoolMinChunk(w, 1)
			p.DotBlock(xs, ys, out)
			for k := range out {
				if out[k] != wantOut[k] {
					t.Fatalf("n=%d w=%d pooled DotBlock[%d] = %.17g, serial %.17g", n, w, k, out[k], wantOut[k])
				}
			}
			got := make([]Vector, 3)
			for j := range ys {
				got[j] = Clone(ys[j])
			}
			p.AxpyBlock(coef, xs, got)
			for j := range got {
				if !Equal(got[j], wantYs[j]) {
					t.Fatalf("n=%d w=%d pooled AxpyBlock column %d differs bitwise", n, w, j)
				}
			}
			p.Close()
		}
	}
}

// TestCSRMulVecsMatchesMulVecPerColumn: the multi-vector SpMV produces
// each output column bitwise identical to the single-vector CSR loop,
// serially and pooled, for column counts exercising the 4-wide groups
// and the remainder path.
func TestCSRMulVecsMatchesMulVecPerColumn(t *testing.T) {
	n := 3000
	rowPtr, colIdx, vals := bandCSR(n, 9)
	for _, s := range []int{1, 2, 4, 5, 8, 11} {
		xs := make([]Vector, s)
		dsts := make([]Vector, s)
		want := make([]Vector, s)
		for j := 0; j < s; j++ {
			xs[j] = New(n)
			Random(xs[j], uint64(400+j))
			dsts[j] = New(n)
			want[j] = New(n)
			// Reference: the scalar CSR loop, one column at a time.
			for i := 0; i < n; i++ {
				var acc float64
				for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
					acc += vals[q] * xs[j][colIdx[q]]
				}
				want[j][i] = acc
			}
		}
		CSRMulVecsRows(rowPtr, colIdx, vals, dsts, xs, 0, n)
		for j := 0; j < s; j++ {
			if !Equal(dsts[j], want[j]) {
				t.Fatalf("s=%d serial CSRMulVecsRows column %d differs bitwise", s, j)
			}
		}
		for _, w := range []int{2, 3, 4} {
			p := NewPoolMinChunk(w, 1)
			p.cut[opCSRMulVecs].Store(1)
			bounds := make([]int, w+1)
			for c := 0; c <= w; c++ {
				bounds[c] = c * n / w
			}
			for j := range dsts {
				Scale(0, dsts[j])
			}
			if !p.CSRMulVecs(bounds, rowPtr, colIdx, vals, dsts, xs) {
				t.Fatalf("s=%d w=%d pooled CSRMulVecs refused a valid partition", s, w)
			}
			for j := 0; j < s; j++ {
				if !Equal(dsts[j], want[j]) {
					t.Fatalf("s=%d w=%d pooled CSRMulVecs column %d differs bitwise", s, j, w)
				}
			}
			p.Close()
		}
	}
}

// TestPoolZeroAllocBlockKernels: the block kernels ride the same
// zero-alloc dispatch path as every other opcode once warm.
func TestPoolZeroAllocBlockKernels(t *testing.T) {
	n := 1 << 15
	xs := make([]Vector, 4)
	ys := make([]Vector, 4)
	for i := range xs {
		xs[i] = New(n)
		ys[i] = New(n)
		Random(xs[i], uint64(10+i))
		Random(ys[i], uint64(20+i))
	}
	out := make([]float64, 16)
	coef := make([]float64, 16)
	for i := range coef {
		coef[i] = 1e-9
	}
	rowPtr, colIdx, vals := bandCSR(n, 31)
	p := NewPoolMinChunk(4, 64)
	defer p.Close()
	p.cut[opCSRMulVecs].Store(1)
	bounds := []int{0, n / 4, n / 2, 3 * n / 4, n}
	p.DotBlock(xs, ys, out) // warm: workers + batch slab
	p.AxpyBlock(coef, xs, ys)
	if !p.CSRMulVecs(bounds, rowPtr, colIdx, vals, ys, xs) {
		t.Fatal("pooled CSRMulVecs refused the warmup dispatch")
	}

	if avg := testing.AllocsPerRun(100, func() { p.DotBlock(xs, ys, out) }); avg != 0 {
		t.Errorf("pooled DotBlock allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { p.AxpyBlock(coef, xs, ys) }); avg != 0 {
		t.Errorf("pooled AxpyBlock allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		p.CSRMulVecs(bounds, rowPtr, colIdx, vals, ys, xs)
	}); avg != 0 {
		t.Errorf("pooled CSRMulVecs allocates %v per call, want 0", avg)
	}
}
