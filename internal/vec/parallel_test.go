package vec

import (
	"testing"
	"testing/quick"
)

// forcedPool returns a pool that parallelizes even tiny vectors.
func forcedPool(workers int) *Pool {
	p := NewPool(workers)
	p.SetMinChunk(1)
	return p
}

func TestNewPoolClampsWorkers(t *testing.T) {
	if NewPool(0).Workers() != 1 {
		t.Fatal("worker count not clamped to 1")
	}
	if NewPool(-5).Workers() != 1 {
		t.Fatal("negative workers not clamped")
	}
	if NewPool(8).Workers() != 8 {
		t.Fatal("worker count not preserved")
	}
}

func TestPoolDotMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 4097} {
		x := New(n)
		y := New(n)
		Random(x, uint64(n))
		Random(y, uint64(n)+1)
		want := Dot(x, y)
		for _, w := range []int{1, 2, 3, 8} {
			got := forcedPool(w).Dot(x, y)
			if !almostEqual(got, want, 1e-12) {
				t.Fatalf("n=%d workers=%d: Dot=%v want %v", n, w, got, want)
			}
		}
	}
}

func TestPoolDotDeterministic(t *testing.T) {
	x := New(10000)
	y := New(10000)
	Random(x, 9)
	Random(y, 10)
	p := forcedPool(4)
	first := p.Dot(x, y)
	for i := 0; i < 20; i++ {
		if got := p.Dot(x, y); got != first {
			t.Fatalf("nondeterministic parallel dot: %v vs %v", got, first)
		}
	}
}

func TestPoolAxpyMatchesSerial(t *testing.T) {
	n := 5000
	x := New(n)
	Random(x, 3)
	y1 := New(n)
	Random(y1, 4)
	y2 := Clone(y1)
	Axpy(1.5, x, y1)
	forcedPool(4).Axpy(1.5, x, y2)
	if !EqualTol(y1, y2, 0) {
		t.Fatal("parallel Axpy differs from serial")
	}
}

func TestPoolXpayMatchesSerial(t *testing.T) {
	n := 5000
	x := New(n)
	Random(x, 5)
	y1 := New(n)
	Random(y1, 6)
	y2 := Clone(y1)
	Xpay(x, -0.25, y1)
	forcedPool(3).Xpay(x, -0.25, y2)
	if !EqualTol(y1, y2, 0) {
		t.Fatal("parallel Xpay differs from serial")
	}
}

func TestPoolFusedCGUpdateMatchesSerial(t *testing.T) {
	n := 3000
	p := New(n)
	ap := New(n)
	Random(p, 7)
	Random(ap, 8)
	x1 := New(n)
	r1 := New(n)
	Random(r1, 9)
	x2 := Clone(x1)
	r2 := Clone(r1)
	rr1 := FusedCGUpdate(0.7, p, ap, x1, r1)
	rr2 := forcedPool(4).FusedCGUpdate(0.7, p, ap, x2, r2)
	if !EqualTol(x1, x2, 0) || !EqualTol(r1, r2, 0) {
		t.Fatal("parallel fused update differs from serial")
	}
	if !almostEqual(rr1, rr2, 1e-12) {
		t.Fatalf("rr mismatch: %v vs %v", rr1, rr2)
	}
}

func TestPoolDotBatchMatchesSerial(t *testing.T) {
	n := 2048
	x := New(n)
	Random(x, 11)
	ys := make([]Vector, 5)
	for j := range ys {
		ys[j] = New(n)
		Random(ys[j], uint64(100+j))
	}
	want := make([]float64, len(ys))
	DotBatch(x, ys, want)
	got := make([]float64, len(ys))
	forcedPool(4).DotBatch(x, ys, got)
	for j := range want {
		if !almostEqual(want[j], got[j], 1e-12) {
			t.Fatalf("batch dot %d: %v vs %v", j, got[j], want[j])
		}
	}
}

func TestPoolSmallFallsBackToSerial(t *testing.T) {
	p := NewPool(8) // default minChunk large
	x := NewFrom([]float64{1, 2, 3})
	y := NewFrom([]float64{4, 5, 6})
	if got := p.Dot(x, y); got != 32 {
		t.Fatalf("small-vector Dot = %v", got)
	}
}

func TestPoolDotBatchEmpty(t *testing.T) {
	p := forcedPool(2)
	x := New(16)
	p.DotBatch(x, nil, nil) // must not panic
}

func TestPropPoolDotMatchesSerial(t *testing.T) {
	f := func(seed uint64, sz uint16, workers uint8) bool {
		n := int(sz)%4096 + 1
		w := int(workers)%7 + 1
		x := New(n)
		y := New(n)
		Random(x, seed)
		Random(y, seed^0xabcdef)
		return almostEqual(forcedPool(w).Dot(x, y), Dot(x, y), 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
