package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if a == 0 || b == 0 {
		return d < tol
	}
	return d/math.Max(math.Abs(a), math.Abs(b)) < tol
}

func TestNewAndClone(t *testing.T) {
	v := New(5)
	if len(v) != 5 {
		t.Fatalf("Len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("component %d = %v, want 0", i, x)
		}
	}
	v[2] = 3.5
	w := Clone(v)
	w[2] = -1
	if v[2] != 3.5 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestNewFromCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := NewFrom(src)
	src[0] = 99
	if v[0] != 1 {
		t.Fatal("NewFrom aliases source slice")
	}
}

func TestZeroFill(t *testing.T) {
	v := NewFrom([]float64{1, 2, 3})
	Fill(v, 7)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("Fill left %v", x)
		}
	}
	Zero(v)
	for _, x := range v {
		if x != 0 {
			t.Fatalf("Zero left %v", x)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(3)
	Copy(v, NewFrom([]float64{4, 5, 6}))
	if v[0] != 4 || v[2] != 6 {
		t.Fatalf("CopyFrom got %v", v)
	}
}

func TestCopyFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Copy(New(3), New(4))
}

func TestEqualAndTol(t *testing.T) {
	a := NewFrom([]float64{1, 2})
	b := NewFrom([]float64{1, 2})
	if !Equal(a, b) {
		t.Fatal("identical vectors reported unequal")
	}
	b[1] += 1e-12
	if Equal(a, b) {
		t.Fatal("different vectors reported equal")
	}
	if !EqualTol(a, b, 1e-9) {
		t.Fatal("EqualTol rejected close vectors")
	}
	if EqualTol(a, New(3), 1) {
		t.Fatal("EqualTol accepted different lengths")
	}
}

func TestDotBasic(t *testing.T) {
	x := NewFrom([]float64{1, 2, 3})
	y := NewFrom([]float64{4, -5, 6})
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotKahanMatchesDot(t *testing.T) {
	x := New(1000)
	y := New(1000)
	Random(x, 1)
	Random(y, 2)
	if !almostEqual(Dot(x, y), DotKahan(x, y), 1e-12) {
		t.Fatalf("Dot=%v DotKahan=%v", Dot(x, y), DotKahan(x, y))
	}
}

func TestDotKahanPrecision(t *testing.T) {
	// Summing many tiny values onto a large one: Kahan should be closer
	// to the analytically known result.
	n := 100000
	x := New(n + 1)
	y := New(n + 1)
	x[0], y[0] = 1e8, 1
	for i := 1; i <= n; i++ {
		x[i], y[i] = 1e-8, 1
	}
	want := 1e8 + float64(n)*1e-8
	if k := DotKahan(x, y); math.Abs(k-want) > math.Abs(Dot(x, y)-want) {
		t.Fatalf("Kahan error %g exceeds naive error %g", math.Abs(k-want), math.Abs(Dot(x, y)-want))
	}
}

func TestNorm2(t *testing.T) {
	v := NewFrom([]float64{3, 4})
	if got := Norm2(v); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if Norm2(New(4)) != 0 {
		t.Fatal("Norm2 of zero vector != 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	v := NewFrom([]float64{1e200, 1e200})
	want := 1e200 * math.Sqrt(2)
	if got := Norm2(v); !almostEqual(got, want, 1e-14) {
		t.Fatalf("Norm2 overflowed: %v want %v", got, want)
	}
}

func TestNormInfNorm1(t *testing.T) {
	v := NewFrom([]float64{-3, 2, 1})
	if NormInf(v) != 3 {
		t.Fatalf("NormInf = %v", NormInf(v))
	}
	if Norm1(v) != 6 {
		t.Fatalf("Norm1 = %v", Norm1(v))
	}
}

func TestAxpyFamily(t *testing.T) {
	x := NewFrom([]float64{1, 2})
	y := NewFrom([]float64{10, 20})
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy got %v", y)
	}
	dst := New(2)
	AxpyTo(dst, -1, x, y)
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AxpyTo got %v", dst)
	}
	Xpay(x, 0.5, y)
	if y[0] != 1+6 || y[1] != 2+12 {
		t.Fatalf("Xpay got %v", y)
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	x := NewFrom([]float64{math.NaN()})
	y := NewFrom([]float64{5})
	Axpy(0, x, y)
	if y[0] != 5 {
		t.Fatal("Axpy with alpha=0 modified y")
	}
}

func TestScaleOps(t *testing.T) {
	x := NewFrom([]float64{1, -2})
	Scale(3, x)
	if x[0] != 3 || x[1] != -6 {
		t.Fatalf("Scale got %v", x)
	}
	dst := New(2)
	ScaleTo(dst, -1, x)
	if dst[0] != -3 || dst[1] != 6 {
		t.Fatalf("ScaleTo got %v", dst)
	}
}

func TestAddSubMulDiv(t *testing.T) {
	x := NewFrom([]float64{4, 9})
	y := NewFrom([]float64{2, 3})
	dst := New(2)
	Add(dst, x, y)
	if dst[0] != 6 || dst[1] != 12 {
		t.Fatalf("Add got %v", dst)
	}
	Sub(dst, x, y)
	if dst[0] != 2 || dst[1] != 6 {
		t.Fatalf("Sub got %v", dst)
	}
	MulElem(dst, x, y)
	if dst[0] != 8 || dst[1] != 27 {
		t.Fatalf("MulElem got %v", dst)
	}
	DivElem(dst, x, y)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("DivElem got %v", dst)
	}
}

func TestLincomb2(t *testing.T) {
	x := NewFrom([]float64{1, 0})
	y := NewFrom([]float64{0, 1})
	dst := New(2)
	Lincomb2(dst, 3, x, 4, y)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Lincomb2 got %v", dst)
	}
}

func TestLincomb(t *testing.T) {
	xs := []Vector{NewFrom([]float64{1, 0}), NewFrom([]float64{0, 1}), NewFrom([]float64{1, 1})}
	dst := New(2)
	Lincomb(dst, []float64{1, 2, 3}, xs)
	if dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("Lincomb got %v", dst)
	}
	Lincomb(dst, nil, nil)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("empty Lincomb should zero dst")
	}
}

func TestFusedCGUpdate(t *testing.T) {
	p := NewFrom([]float64{1, 1})
	ap := NewFrom([]float64{2, 0})
	x := NewFrom([]float64{0, 0})
	r := NewFrom([]float64{3, 4})
	rr := FusedCGUpdate(0.5, p, ap, x, r)
	// x = [0.5 0.5], r = [3-1, 4-0] = [2 4], rr = 20
	if x[0] != 0.5 || x[1] != 0.5 {
		t.Fatalf("x got %v", x)
	}
	if r[0] != 2 || r[1] != 4 {
		t.Fatalf("r got %v", r)
	}
	if rr != 20 {
		t.Fatalf("rr = %v, want 20", rr)
	}
}

func TestDotPairAndBatch(t *testing.T) {
	x := NewFrom([]float64{1, 2})
	y := NewFrom([]float64{3, 4})
	z := NewFrom([]float64{5, 6})
	xy, xz := DotPair(x, y, z)
	if xy != 11 || xz != 17 {
		t.Fatalf("DotPair got %v %v", xy, xz)
	}
	dots := make([]float64, 2)
	DotBatch(x, []Vector{y, z}, dots)
	if dots[0] != 11 || dots[1] != 17 {
		t.Fatalf("DotBatch got %v", dots)
	}
}

func TestGramBlock(t *testing.T) {
	xs := []Vector{NewFrom([]float64{1, 0}), NewFrom([]float64{0, 2})}
	g := [][]float64{make([]float64, 2), make([]float64, 2)}
	GramBlock(xs, xs, g)
	want := [][]float64{{1, 0}, {0, 4}}
	for i := range want {
		for j := range want[i] {
			if g[i][j] != want[i][j] {
				t.Fatalf("GramBlock[%d][%d] = %v, want %v", i, j, g[i][j], want[i][j])
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := New(64)
	b := New(64)
	Random(a, 42)
	Random(b, 42)
	if !Equal(a, b) {
		t.Fatal("Random not deterministic for same seed")
	}
	Random(b, 43)
	if Equal(a, b) {
		t.Fatal("Random identical for different seeds")
	}
	for _, x := range a {
		if x < -1 || x >= 1 {
			t.Fatalf("Random out of range: %v", x)
		}
	}
}

func TestHasNaNInf(t *testing.T) {
	v := NewFrom([]float64{1, math.NaN()})
	if !HasNaN(v) {
		t.Fatal("HasNaN missed NaN")
	}
	if HasInf(v) {
		t.Fatal("HasInf false positive")
	}
	w := NewFrom([]float64{math.Inf(1)})
	if !HasInf(w) {
		t.Fatal("HasInf missed Inf")
	}
	if HasNaN(w) {
		t.Fatal("HasNaN false positive")
	}
}

func TestStringForms(t *testing.T) {
	short := NewFrom([]float64{1, 2})
	if String(short) == "" {
		t.Fatal("empty String for short vector")
	}
	long := New(100)
	s := String(long)
	if len(s) > 200 {
		t.Fatalf("long vector String not abbreviated: %d chars", len(s))
	}
}

// --- property-based tests ---

func randomVecPair(seed uint64, n int) (Vector, Vector) {
	x := New(n)
	y := New(n)
	Random(x, seed)
	Random(y, seed+1)
	return x, y
}

func TestPropDotSymmetry(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%256 + 1
		x, y := randomVecPair(seed, n)
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDotLinearity(t *testing.T) {
	f := func(seed uint64, sz uint8, aRaw int16) bool {
		n := int(sz)%128 + 1
		a := float64(aRaw) / 64
		x, y := randomVecPair(seed, n)
		z := New(n)
		Random(z, seed+2)
		// <a*x + z, y> == a*<x,y> + <z,y> up to roundoff
		ax := Clone(x)
		Scale(a, ax)
		Add(ax, ax, z)
		lhs := Dot(ax, y)
		rhs := a*Dot(x, y) + Dot(z, y)
		return almostEqual(lhs, rhs, 1e-10) || math.Abs(lhs-rhs) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropNormDotConsistency(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%256 + 1
		x := New(n)
		Random(x, seed)
		nrm := Norm2(x)
		return almostEqual(nrm*nrm, Dot(x, x), 1e-12) || math.Abs(nrm*nrm-Dot(x, x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCauchySchwarz(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%256 + 1
		x, y := randomVecPair(seed, n)
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%256 + 1
		x, y := randomVecPair(seed, n)
		s := New(n)
		Add(s, x, y)
		return Norm2(s) <= Norm2(x)+Norm2(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFusedMatchesUnfused(t *testing.T) {
	f := func(seed uint64, sz uint8, aRaw int16) bool {
		n := int(sz)%128 + 1
		alpha := float64(aRaw) / 128
		p := New(n)
		ap := New(n)
		Random(p, seed)
		Random(ap, seed+1)
		x1 := New(n)
		r1 := New(n)
		Random(r1, seed+2)
		x2 := Clone(x1)
		r2 := Clone(r1)

		rr := FusedCGUpdate(alpha, p, ap, x1, r1)

		Axpy(alpha, p, x2)
		Axpy(-alpha, ap, r2)
		if !EqualTol(x1, x2, 1e-14) || !EqualTol(r1, r2, 1e-14) {
			return false
		}
		return almostEqual(rr, Dot(r2, r2), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
