package gkrylov

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// VecN arena indices for the row-space vectors of the least-squares
// kernels (column-space vectors come from the ordinary Vec arena).
const (
	lsRow0 = iota // residual / bidiagonalization u
	lsRow1        // A·p scratch / u-update scratch
)

// rowDim returns the operator's row count (== Dim for square operators).
func rowDim(a sparse.Matrix) int {
	rows, _ := sparse.Dims(a)
	return rows
}

// cgnrKernel runs conjugate gradients on the normal equations
// AᵀA x = Aᵀb without forming AᵀA: one forward and one transpose
// product per iteration. It solves min ||b - A x|| for any full
// column-rank operator, square or rectangular.
type cgnrKernel struct {
	x, z, p vec.Vector // column space
	r, ap   vec.Vector // row space
	zz      float64    // ||Aᵀr||²
	rnorm   float64
	atbTol  float64 // stationarity threshold tol*||Aᵀb||
}

// NewCGNRKernel returns the cgnr iteration kernel.
func NewCGNRKernel() engine.Kernel { return &cgnrKernel{} }

func (k *cgnrKernel) Name() string { return "cgnr" }

func (k *cgnrKernel) Init(run *engine.Run) (float64, error) {
	if err := requireTranspose(run, "cgnr"); err != nil {
		return 0, err
	}
	ws := run.Ws
	rows := rowDim(run.A)
	k.x, k.z, k.p = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	k.r, k.ap = ws.VecN(lsRow0, rows), ws.VecN(lsRow1, rows)

	initialIterate(run, k.x, k.r)
	k.rnorm = vec.Norm2(k.r)

	matVecT(run, k.z, k.r)
	vec.Copy(k.p, k.z)
	k.zz = ws.Dot(k.z, k.z)
	run.Res.Stats.InnerProducts += 2
	run.Res.Stats.Flops += 2*int64(rows) + 2*int64(ws.Dim())
	if k.zz == 0 && k.rnorm > run.Threshold {
		return 0, fmt.Errorf("gkrylov: Aᵀr vanished at start (rank-deficient or zero operator): %w", ErrBreakdown)
	}

	// Stationarity scale: tol*||Aᵀb||. With a zero initial guess Aᵀr
	// already is Aᵀb; a warm start must NOT rescale the threshold to its
	// (small) initial gradient — that would demand tol-relative progress
	// from wherever the solve begins and erase the warm-start payoff — so
	// compute ||Aᵀb|| explicitly in that case.
	k.atbTol = run.Cfg.Tol * math.Sqrt(k.zz)
	if run.Cfg.X0 != nil {
		if atb := atbNorm(run, ws.Vec(3)); atb > 0 {
			k.atbTol = run.Cfg.Tol * atb
		}
	}
	return k.rnorm, nil
}

// atbNorm computes ||Aᵀb|| into the given column-space scratch vector.
func atbNorm(run *engine.Run, scratch vec.Vector) float64 {
	matVecT(run, scratch, run.B)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(len(scratch))
	return vec.Norm2(scratch)
}

func (k *cgnrKernel) Residual(*engine.Run) float64 { return k.rnorm }

func (k *cgnrKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	cols := int64(ws.Dim())
	rows := int64(len(k.r))

	ws.MatVec(run.A, k.ap, k.p)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	ww := ws.Dot(k.ap, k.ap)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * rows
	if ww == 0 {
		return fmt.Errorf("gkrylov: ||Ap|| vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	alpha := k.zz / ww

	ws.Axpy(alpha, k.p, k.x)
	ws.Axpy(-alpha, k.ap, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 2*cols + 2*rows

	matVecT(run, k.z, k.r)
	zzNew := ws.Dot(k.z, k.z)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * cols
	if math.IsNaN(zzNew) || math.IsInf(zzNew, 0) {
		return fmt.Errorf("gkrylov: non-finite gradient at iteration %d: %w", res.Iterations, ErrBreakdown)
	}

	beta := zzNew / k.zz
	ws.Xpay(k.z, beta, k.p)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * cols
	k.zz = zzNew

	k.rnorm = vec.Norm2(k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * rows
	run.Tick(k.rnorm)

	// Least-squares stationarity: for inconsistent systems ||r|| never
	// reaches the driver threshold, but ||Aᵀr|| -> 0 at the minimizer.
	if math.Sqrt(k.zz) <= k.atbTol {
		res.Converged = true
		run.Stop()
	}
	return nil
}

func (k *cgnrKernel) Finish(run *engine.Run) {
	trueResidualInto(run, k.ap, k.x)
	run.Res.ResidualNorm = k.rnorm
}

// lsqrKernel is Paige & Saunders' LSQR: Golub-Kahan bidiagonalization
// with the least-squares subproblem solved by a QR factorization updated
// one Givens rotation per iteration. Analytically equivalent to CGNR but
// substantially more stable on ill-conditioned operators, which is why
// both are provided and their agreement is a property test.
type lsqrKernel struct {
	x, v, w, vt vec.Vector // column space
	u, ut       vec.Vector // row space
	alpha       float64
	phibar      float64 // current ||r|| estimate
	rhobar      float64
	atbTol      float64
	atrEst      float64 // current ||Aᵀr|| estimate
}

// NewLSQRKernel returns the lsqr iteration kernel.
func NewLSQRKernel() engine.Kernel { return &lsqrKernel{} }

func (k *lsqrKernel) Name() string { return "lsqr" }

func (k *lsqrKernel) Init(run *engine.Run) (float64, error) {
	if err := requireTranspose(run, "lsqr"); err != nil {
		return 0, err
	}
	ws := run.Ws
	rows := rowDim(run.A)
	cols := ws.Dim()
	k.x, k.v, k.w, k.vt = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3)
	k.u, k.ut = ws.VecN(lsRow0, rows), ws.VecN(lsRow1, rows)

	// u = (b - A x0)/beta, v = Aᵀu/alpha: the first bidiagonalization
	// step, seeded from the initial residual so warm starts carry over.
	initialIterate(run, k.x, k.u)
	beta := vec.Norm2(k.u)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(rows)
	if beta == 0 {
		// x0 is already exact; the driver sees rnorm 0 and converges.
		k.phibar, k.atrEst = 0, 0
		return 0, nil
	}
	vec.Scale(1/beta, k.u)

	matVecT(run, k.v, k.u)
	k.alpha = vec.Norm2(k.v)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.VectorUpdates++
	run.Res.Stats.Flops += int64(rows) + 2*int64(cols)
	if k.alpha == 0 {
		return 0, fmt.Errorf("gkrylov: Aᵀu vanished at start (rank-deficient or zero operator): %w", ErrBreakdown)
	}
	vec.Scale(1/k.alpha, k.v)
	vec.Copy(k.w, k.v)
	run.Res.Stats.VectorUpdates += 2
	run.Res.Stats.Flops += 2 * int64(cols)

	k.phibar = beta
	k.rhobar = k.alpha
	k.atrEst = k.alpha * beta // ||Aᵀr0||
	// Same warm-start convention as cgnr: the stationarity threshold is
	// anchored to ||Aᵀb||, not the initial gradient, so warm-started
	// sequence steps converge early instead of chasing a moving target.
	k.atbTol = run.Cfg.Tol * k.atrEst
	if run.Cfg.X0 != nil {
		if atb := atbNorm(run, k.vt); atb > 0 {
			k.atbTol = run.Cfg.Tol * atb
		}
	}
	return k.phibar, nil
}

func (k *lsqrKernel) Residual(*engine.Run) float64 { return k.phibar }

func (k *lsqrKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	cols := int64(ws.Dim())
	rows := int64(len(k.u))

	// Continue the bidiagonalization: beta u⁺ = A v - alpha u.
	ws.MatVec(run.A, k.ut, k.v)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	ws.Axpy(-k.alpha, k.u, k.ut)
	beta := vec.Norm2(k.ut)
	res.Stats.VectorUpdates++
	res.Stats.InnerProducts++
	res.Stats.Flops += 4 * rows
	if beta > 0 {
		vec.ScaleTo(k.u, 1/beta, k.ut)
		res.Stats.VectorUpdates++
		res.Stats.Flops += rows
	}

	// alpha v⁺ = Aᵀu⁺ - beta v.
	matVecT(run, k.vt, k.u)
	ws.Axpy(-beta, k.v, k.vt)
	alphaNew := vec.Norm2(k.vt)
	res.Stats.VectorUpdates++
	res.Stats.InnerProducts++
	res.Stats.Flops += 4 * cols
	if alphaNew > 0 {
		vec.ScaleTo(k.v, 1/alphaNew, k.vt)
		res.Stats.VectorUpdates++
		res.Stats.Flops += cols
	}
	k.alpha = alphaNew

	// One Givens rotation updates the QR of the bidiagonal system.
	rho := math.Hypot(k.rhobar, beta)
	if rho == 0 {
		return fmt.Errorf("gkrylov: bidiagonal pivot vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	c := k.rhobar / rho
	s := beta / rho
	theta := s * k.alpha
	k.rhobar = -c * k.alpha
	phi := c * k.phibar
	k.phibar = s * k.phibar

	ws.Axpy(phi/rho, k.w, k.x)
	ws.Xpay(k.v, -theta/rho, k.w)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * cols

	if math.IsNaN(k.phibar) || math.IsInf(k.phibar, 0) {
		return fmt.Errorf("gkrylov: non-finite residual estimate at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	k.atrEst = k.phibar * k.alpha * math.Abs(c)
	run.Tick(k.phibar)

	if k.atrEst <= k.atbTol {
		res.Converged = true
		run.Stop()
	}
	return nil
}

func (k *lsqrKernel) Finish(run *engine.Run) {
	trueResidualInto(run, k.ut, k.x)
	run.Res.ResidualNorm = k.phibar
}
