package gkrylov

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
)

// VecN arena indices for the GMRES restart-cycle scratch. All five live
// in the workspace's length-keyed arena, so a warm solve with the same
// restart length allocates nothing.
const (
	gmresH  = iota // flat (m+1)×m Hessenberg, row-major
	gmresCS        // Givens cosines, length m
	gmresSN        // Givens sines, length m
	gmresG         // rotated rhs of the least-squares problem, length m+1
	gmresY         // triangular-solve solution, length m
)

// gmresKernel is restarted GMRES(m) (Saad & Schultz): modified
// Gram-Schmidt Arnoldi over an m+1-vector basis held in the workspace
// arena, the small least-squares problem solved incrementally by Givens
// rotations. One engine Step is one restart cycle; Tick fires per inner
// Arnoldi step, so Result.Iterations counts Krylov dimensions built, not
// restarts. The residual is refreshed from b - A x at every restart, so
// the estimate the driver trusts never drifts.
type gmresKernel struct {
	x, r  vec.Vector
	m     int
	rnorm float64
}

// NewGMRESKernel returns the gmres iteration kernel.
func NewGMRESKernel() engine.Kernel { return &gmresKernel{} }

func (k *gmresKernel) Name() string { return "gmres" }

// basis returns the j-th Arnoldi basis vector: arena indices 2..2+m,
// after x (0) and r (1).
func (k *gmresKernel) basis(ws *engine.Workspace, j int) vec.Vector { return ws.Vec(2 + j) }

func (k *gmresKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	k.m = run.Cfg.Restart
	if k.m < 0 {
		return 0, fmt.Errorf("gkrylov: restart length %d must be >= 1: %w", k.m, engine.ErrBadOption)
	}
	if k.m == 0 {
		k.m = 30
		if n := ws.Dim(); n < k.m {
			k.m = n
		}
	}
	k.x, k.r = ws.Vec(0), ws.Vec(1)
	initialIterate(run, k.x, k.r)
	k.rnorm = vec.Norm2(k.r)
	return k.rnorm, nil
}

func (k *gmresKernel) Residual(*engine.Run) float64 { return k.rnorm }

// Step runs one restart cycle: build up to m Arnoldi vectors, stopping
// early on convergence of the rotated-residual estimate, then update x
// from the triangular solve and refresh the true residual.
func (k *gmresKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	m := k.m
	n := int64(ws.Dim())

	h := ws.VecN(gmresH, (m+1)*m)
	cs := ws.VecN(gmresCS, m)
	sn := ws.VecN(gmresSN, m)
	g := ws.VecN(gmresG, m+1)
	y := ws.VecN(gmresY, m)

	beta := k.rnorm
	if beta == 0 {
		run.Stop()
		return nil
	}
	v0 := k.basis(ws, 0)
	vec.ScaleTo(v0, 1/beta, k.r)
	res.Stats.VectorUpdates++
	res.Stats.Flops += n
	vec.Zero(g)
	g[0] = beta

	// Arnoldi with modified Gram-Schmidt; j counts columns built.
	j := 0
	for ; j < m; j++ {
		w := k.basis(ws, j+1)
		ws.MatVec(run.A, w, k.basis(ws, j))
		res.Stats.MatVecs++
		res.Stats.Flops += engine.MatVecFlops(run.A)

		for i := 0; i <= j; i++ {
			vi := k.basis(ws, i)
			hij := ws.Dot(w, vi)
			h[i*m+j] = hij
			ws.Axpy(-hij, vi, w)
		}
		res.Stats.InnerProducts += j + 1
		res.Stats.VectorUpdates += j + 1
		res.Stats.Flops += 4 * int64(j+1) * n

		hnext := vec.Norm2(w)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * n
		h[(j+1)*m+j] = hnext
		happy := hnext == 0
		if !happy {
			vec.Scale(1/hnext, w)
			res.Stats.VectorUpdates++
			res.Stats.Flops += n
		}

		// Apply the accumulated Givens rotations to the new column,
		// then compute the rotation that annihilates h[j+1,j].
		for i := 0; i < j; i++ {
			hi, hi1 := h[i*m+j], h[(i+1)*m+j]
			h[i*m+j] = cs[i]*hi + sn[i]*hi1
			h[(i+1)*m+j] = -sn[i]*hi + cs[i]*hi1
		}
		c, s := givens(h[j*m+j], h[(j+1)*m+j])
		cs[j], sn[j] = c, s
		h[j*m+j] = c*h[j*m+j] + s*h[(j+1)*m+j]
		h[(j+1)*m+j] = 0
		g[j+1] = -s * g[j]
		g[j] *= c

		est := math.Abs(g[j+1])
		if math.IsNaN(est) || math.IsInf(est, 0) {
			return fmt.Errorf("gkrylov: non-finite residual estimate at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		run.Tick(est)
		if happy || est <= run.Threshold || run.Stopped() {
			j++
			break
		}
	}

	// Solve the j×j upper-triangular system R y = g and expand the
	// correction onto x.
	for i := j - 1; i >= 0; i-- {
		d := h[i*m+i]
		if d == 0 {
			return fmt.Errorf("gkrylov: singular projected system (R[%d,%d] = 0) at iteration %d: %w",
				i, i, res.Iterations, ErrBreakdown)
		}
		s := g[i]
		for l := i + 1; l < j; l++ {
			s -= h[i*m+l] * y[l]
		}
		y[i] = s / d
	}
	for i := 0; i < j; i++ {
		ws.Axpy(y[i], k.basis(ws, i), k.x)
	}
	res.Stats.VectorUpdates += j
	res.Stats.Flops += 2 * int64(j) * n

	// True-residual refresh: restarting from the recurrence estimate
	// would compound rounding across cycles.
	ws.MatVec(run.A, k.r, k.x)
	vec.Sub(k.r, run.B, k.r)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	k.rnorm = vec.Norm2(k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if math.IsNaN(k.rnorm) || math.IsInf(k.rnorm, 0) {
		return fmt.Errorf("gkrylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	return nil
}

func (k *gmresKernel) Finish(run *engine.Run) {
	// The cycle exit already computed r = b - A x; publish its norm
	// without spending another matvec.
	run.Res.TrueResidualNorm = k.rnorm
	run.Res.ResidualNorm = k.rnorm
}

// givens returns the rotation (c, s) with c*a + s*b = r, -s*a + c*b = 0,
// in the numerically careful form that avoids overflow in a²+b².
func givens(a, b float64) (c, s float64) {
	switch {
	case b == 0:
		return 1, 0
	case a == 0:
		return 0, 1
	case math.Abs(b) > math.Abs(a):
		t := a / b
		s = 1 / math.Sqrt(1+t*t)
		return s * t, s
	default:
		t := b / a
		c = 1 / math.Sqrt(1+t*t)
		return c, c * t
	}
}
