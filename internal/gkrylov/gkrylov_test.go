package gkrylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vrcg/internal/engine"
	"vrcg/sparse"
)

// luSolve solves the dense square system A x = b by Gaussian elimination
// with partial pivoting — the reference the Krylov answers are checked
// against.
func luSolve(t *testing.T, a *sparse.Dense, b []float64) []float64 {
	t.Helper()
	n := a.Dim()
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			m[i][j] = a.At(i, j)
		}
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		p := col
		for i := col + 1; i < n; i++ {
			if math.Abs(m[i][col]) > math.Abs(m[p][col]) {
				p = i
			}
		}
		if m[p][col] == 0 {
			t.Fatalf("singular reference system at column %d", col)
		}
		m[col], m[p] = m[p], m[col]
		for i := col + 1; i < n; i++ {
			f := m[i][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[i][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// randomNonsymmetric builds a dense diagonally dominant nonsymmetric
// matrix (well conditioned but with no symmetry whatsoever).
func randomNonsymmetric(rng *rand.Rand, n int) *sparse.Dense {
	d := sparse.NewDense(n)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			d.Set(i, j, v)
			off += math.Abs(v)
		}
		d.Set(i, i, off+1+rng.Float64())
	}
	return d
}

func relErr(x, ref []float64) float64 {
	var num, den float64
	for i := range x {
		num += (x[i] - ref[i]) * (x[i] - ref[i])
		den += ref[i] * ref[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func runKernel(t *testing.T, k engine.Kernel, a sparse.Matrix, b []float64) *engine.Result {
	t.Helper()
	_, cols := sparse.Dims(a)
	res := new(engine.Result)
	err := engine.Solve(k, engine.NewWorkspace(cols, nil), a, b, engine.Config{Tol: 1e-12}, res)
	if err != nil {
		t.Fatalf("%s: %v", k.Name(), err)
	}
	if !res.Converged {
		t.Fatalf("%s: did not converge (resnorm %g after %d iterations)", k.Name(), res.ResidualNorm, res.Iterations)
	}
	return res
}

func TestSquareKernelsMatchLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{5, 24, 61} {
		a := randomNonsymmetric(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref := luSolve(t, a, b)
		for _, k := range []engine.Kernel{NewBiCGStabKernel(), NewGMRESKernel(), NewCGNRKernel(), NewLSQRKernel()} {
			res := runKernel(t, k, a, b)
			if e := relErr(res.X, ref); e > 1e-8 {
				t.Errorf("n=%d %s: relative error %g vs LU", n, k.Name(), e)
			}
		}
	}
}

func TestGMRESRestartLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := randomNonsymmetric(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := luSolve(t, a, b)
	for _, m := range []int{1, 5, 40} {
		res := new(engine.Result)
		err := engine.Solve(NewGMRESKernel(), engine.NewWorkspace(n, nil), a, b,
			engine.Config{Tol: 1e-12, Restart: m, MaxIter: 100000}, res)
		if err != nil || !res.Converged {
			t.Fatalf("gmres(%d): err=%v converged=%v", m, err, res.Converged)
		}
		if e := relErr(res.X, ref); e > 1e-8 {
			t.Errorf("gmres(%d): relative error %g vs LU", m, e)
		}
	}
}

func TestLeastSquaresRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, cols := 50, 8
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, data)

	// Reference: solve the normal equations AᵀA x = Aᵀb densely.
	ata := sparse.NewDense(cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for r := 0; r < rows; r++ {
				s += data[r*cols+i] * data[r*cols+j]
			}
			ata.Set(i, j, s)
		}
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	atb := make([]float64, cols)
	a.MulVecT(atb, b)
	ref := luSolve(t, ata, atb)

	for _, k := range []engine.Kernel{NewCGNRKernel(), NewLSQRKernel()} {
		res := new(engine.Result)
		err := engine.Solve(k, engine.NewWorkspace(cols, nil), a, b, engine.Config{Tol: 1e-12}, res)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge on inconsistent system (resnorm %g)", k.Name(), res.ResidualNorm)
		}
		if e := relErr(res.X, ref); e > 1e-8 {
			t.Errorf("%s: relative error %g vs normal-equations reference", k.Name(), e)
		}
	}
}

func TestCGNRAndLSQRAgreeOnConsistentSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rows, cols := 40, 12
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, data)
	xTrue := make([]float64, cols)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, rows)
	a.MulVec(b, xTrue)

	var got [][]float64
	for _, k := range []engine.Kernel{NewCGNRKernel(), NewLSQRKernel()} {
		res := runKernel(t, k, a, b)
		if e := relErr(res.X, xTrue); e > 1e-8 {
			t.Errorf("%s: relative error %g vs constructed solution", k.Name(), e)
		}
		x := make([]float64, cols)
		copy(x, res.X)
		got = append(got, x)
	}
	if e := relErr(got[0], got[1]); e > 1e-8 {
		t.Errorf("cgnr and lsqr disagree by %g on a consistent system", e)
	}
}

func TestBreakdownOnZeroOperator(t *testing.T) {
	n := 6
	zero := sparse.NewCSR(n, make([]int, n+1), nil, nil)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	for _, k := range []engine.Kernel{NewBiCGStabKernel(), NewGMRESKernel(), NewCGNRKernel(), NewLSQRKernel()} {
		res := new(engine.Result)
		err := engine.Solve(k, engine.NewWorkspace(n, nil), zero, b, engine.Config{Tol: 1e-10}, res)
		if !errors.Is(err, ErrBreakdown) {
			t.Errorf("%s on zero operator: err = %v, want ErrBreakdown", k.Name(), err)
		}
	}
}

func TestLeastSquaresRequireTransposeCapability(t *testing.T) {
	// A matrix-free operator without MulVecT must be rejected up front.
	a := noTranspose{n: 4}
	b := []float64{1, 2, 3, 4}
	for _, k := range []engine.Kernel{NewCGNRKernel(), NewLSQRKernel()} {
		res := new(engine.Result)
		err := engine.Solve(k, engine.NewWorkspace(4, nil), a, b, engine.Config{}, res)
		if !errors.Is(err, ErrUnsupportedOperator) {
			t.Errorf("%s without transpose: err = %v, want ErrUnsupportedOperator", k.Name(), err)
		}
	}
}

type noTranspose struct{ n int }

func (m noTranspose) Dim() int { return m.n }
func (m noTranspose) MulVec(dst, x []float64) {
	for i := range dst {
		dst[i] = 2 * x[i]
	}
}

func TestWarmKernelSolveAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 32
	a := randomNonsymmetric(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, mk := range []func() engine.Kernel{NewBiCGStabKernel, NewGMRESKernel, NewCGNRKernel, NewLSQRKernel} {
		k := mk()
		ws := engine.NewWorkspace(n, nil)
		res := new(engine.Result)
		cfg := engine.Config{Tol: 1e-10}
		if err := engine.Solve(k, ws, a, b, cfg, res); err != nil {
			t.Fatalf("%s warm-up: %v", k.Name(), err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := engine.Solve(k, ws, a, b, cfg, res); err != nil {
				t.Fatalf("%s: %v", k.Name(), err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm solve allocates %v objects/op, want 0", k.Name(), allocs)
		}
	}
}
