// Package gkrylov implements the general-operator Krylov kernels: the
// methods that drop the SPD requirement every solver in internal/krylov
// carries. BiCGStab and restarted GMRES(m) handle square nonsymmetric
// systems; CGNR and LSQR solve least-squares problems min ||b - A x||
// over rectangular operators through the sparse transpose-product path
// (sparse.TransposeMulVec).
//
// Every method is an engine kernel (internal/engine) like the classic
// iterations: the driver owns defaults, convergence, callbacks, and
// history, while this package owns only the numerics. All vectors come
// from the workspace arena — column-space vectors from Vec, row-space
// and Hessenberg/Givens scratch from the length-keyed VecN arena — so a
// warm repeated solve performs zero heap allocations, the property the
// public solve.Session extends to these methods.
//
// Convergence semantics: BiCGStab and GMRES target the usual relative
// residual ||b - A x|| <= tol*||b||. The least-squares methods
// additionally stop at the normal-equations stationarity point
// ||Aᵀ(b - A x)|| <= tol*||Aᵀb||, which is the correct exit for
// inconsistent systems where ||r|| cannot reach the residual threshold.
package gkrylov

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
)

// Re-exported sentinels, matching the internal/krylov convention.
var (
	ErrBreakdown           = engine.ErrBreakdown
	ErrUnsupportedOperator = engine.ErrUnsupportedOperator
)

// initialIterate loads X0 (or zero) into x, publishes it as Res.X, and
// forms the initial residual r = b - A x. r has the operator's row
// count, x its column count; for square operators the two coincide.
func initialIterate(run *engine.Run, x, r vec.Vector) {
	if run.Cfg.X0 != nil {
		vec.Copy(x, run.Cfg.X0)
	} else {
		vec.Zero(x)
	}
	run.Res.X = x
	run.Ws.MatVec(run.A, r, x)
	vec.Sub(r, run.B, r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
}

// trueResidualInto computes ||b - A x|| into scratch (row-space) and
// publishes it, charging the matvec — the shared exit step.
func trueResidualInto(r *engine.Run, scratch, x vec.Vector) {
	r.Ws.MatVec(r.A, scratch, x)
	vec.Sub(scratch, r.B, scratch)
	r.Res.Stats.MatVecs++
	r.Res.Stats.Flops += engine.MatVecFlops(r.A)
	r.Res.TrueResidualNorm = vec.Norm2(scratch)
}

// matVecT computes dst = Aᵀ*x through the run's captured transpose
// capability, charging it like a forward product.
func matVecT(run *engine.Run, dst, x vec.Vector) {
	run.Ws.MatVecT(run.AT, dst, x)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
}

// requireTranspose fails with ErrUnsupportedOperator when the operator
// cannot apply its transpose (Run.AT is nil).
func requireTranspose(run *engine.Run, method string) error {
	if run.AT == nil {
		return fmt.Errorf("gkrylov: %s needs transpose products but the operator does not implement sparse.TransposeMulVec: %w",
			method, ErrUnsupportedOperator)
	}
	return nil
}

// bicgstabKernel is van der Vorst's stabilized bi-conjugate gradient
// method for square nonsymmetric systems: two matvecs per iteration, no
// transpose product, smooth residual decrease where plain BiCG
// oscillates.
type bicgstabKernel struct {
	x, r, rhat, p, v, s, t vec.Vector
	rho, alpha, omega      float64
	rnorm                  float64
}

// NewBiCGStabKernel returns the bicgstab iteration kernel.
func NewBiCGStabKernel() engine.Kernel { return &bicgstabKernel{} }

func (k *bicgstabKernel) Name() string { return "bicgstab" }

func (k *bicgstabKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	k.x, k.r, k.rhat = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	k.p, k.v, k.s, k.t = ws.Vec(3), ws.Vec(4), ws.Vec(5), ws.Vec(6)
	initialIterate(run, k.x, k.r)
	vec.Copy(k.rhat, k.r)
	vec.Zero(k.p)
	vec.Zero(k.v)
	k.rho, k.alpha, k.omega = 1, 1, 1
	k.rnorm = vec.Norm2(k.r)
	return k.rnorm, nil
}

func (k *bicgstabKernel) Residual(*engine.Run) float64 { return k.rnorm }

func (k *bicgstabKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	rhoNew := ws.Dot(k.rhat, k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if rhoNew == 0 || math.IsNaN(rhoNew) || math.IsInf(rhoNew, 0) {
		return fmt.Errorf("gkrylov: (r̂,r) = %g at iteration %d: %w", rhoNew, res.Iterations, ErrBreakdown)
	}
	beta := (rhoNew / k.rho) * (k.alpha / k.omega)

	// p = r + beta*(p - omega*v)
	vec.Axpy(-k.omega, k.v, k.p)
	ws.Xpay(k.r, beta, k.p)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	ws.MatVec(run.A, k.v, k.p)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	rhv := ws.Dot(k.rhat, k.v)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if rhv == 0 {
		return fmt.Errorf("gkrylov: (r̂,Ap) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	k.alpha = rhoNew / rhv

	// s = r - alpha*v; the half-step iterate x + alpha*p may already
	// satisfy the tolerance, in which case the second matvec is skipped.
	vec.Copy(k.s, k.r)
	vec.Axpy(-k.alpha, k.v, k.s)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n
	snorm := vec.Norm2(k.s)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if snorm <= run.Threshold {
		ws.Axpy(k.alpha, k.p, k.x)
		vec.Copy(k.r, k.s)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * n
		k.rho = rhoNew
		k.rnorm = snorm
		run.Tick(k.rnorm)
		run.Stop()
		return nil
	}

	ws.MatVec(run.A, k.t, k.s)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	ts, tt := ws.DotPair(k.t, k.s, k.t)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * n
	if tt == 0 {
		return fmt.Errorf("gkrylov: ||As|| vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	k.omega = ts / tt
	if k.omega == 0 || math.IsNaN(k.omega) || math.IsInf(k.omega, 0) {
		return fmt.Errorf("gkrylov: stabilization weight %g at iteration %d: %w", k.omega, res.Iterations, ErrBreakdown)
	}

	// x += alpha*p + omega*s; r = s - omega*t.
	ws.Axpy(k.alpha, k.p, k.x)
	ws.Axpy(k.omega, k.s, k.x)
	vec.Copy(k.r, k.s)
	ws.Axpy(-k.omega, k.t, k.r)
	res.Stats.VectorUpdates += 3
	res.Stats.Flops += 6 * n

	k.rho = rhoNew
	k.rnorm = vec.Norm2(k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if math.IsNaN(k.rnorm) || math.IsInf(k.rnorm, 0) {
		return fmt.Errorf("gkrylov: non-finite residual at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	run.Tick(k.rnorm)
	return nil
}

func (k *bicgstabKernel) Finish(run *engine.Run) { trueResidualInto(run, k.t, k.x) }
