package depth_test

import (
	"fmt"

	"vrcg/internal/depth"
)

// ExampleCGRate computes the paper's claim C1: per-iteration parallel
// time of standard CG is dominated by two log2(N) summation fan-ins.
func ExampleCGRate() {
	// d = 5 (2D stencil): rate = 2*log2(N) + log2ceil(5) + 5.
	fmt.Printf("N=2^10: %.0f\n", depth.CGRate(1<<10, 5))
	fmt.Printf("N=2^20: %.0f\n", depth.CGRate(1<<20, 5))
	// Output:
	// N=2^10: 30
	// N=2^20: 50
}

// ExampleVRCGRate shows the restructured algorithm's near-flat rate with
// the paper's k = log2(N) look-ahead.
func ExampleVRCGRate() {
	fmt.Printf("N=2^10: %.0f\n", depth.VRCGRate(1<<10, 5, 10))
	fmt.Printf("N=2^20: %.0f\n", depth.VRCGRate(1<<20, 5, 20))
	// Output:
	// N=2^10: 11
	// N=2^20: 11
}
