package depth

import "fmt"

// This file expresses each algorithm's per-iteration dependency
// structure in the timed-value algebra, so the steady-state slope of the
// completion clocks is the algorithm's parallel time per iteration.

// SimulateCG runs the standard Hestenes–Stiefel iteration (paper §2) for
// the given number of iterations and returns the completion clock of
// each iteration (the time its step scalar lambda_n is known, which
// gates every subsequent operation).
//
// The §2 critical path per iteration is two sequential summation
// fan-ins plus the matvec gather: ~ 2*log2(N) + log2(d) + O(1).
func SimulateCG(m Model, iters int) []Clock {
	mustIters(iters)
	x := VecAt(0)
	r := VecAt(0)
	p := VecAt(0)
	rr := m.Dot(r, r)

	out := make([]Clock, iters)
	for n := 0; n < iters; n++ {
		ap := m.MatVec(p)
		pap := m.Dot(p, ap)
		lambda := ScalarOp(rr, pap)
		x = Elementwise([]Val{lambda}, x, p)
		r = Elementwise([]Val{lambda}, r, ap)
		rrNew := m.Dot(r, r)
		alpha := ScalarOp(rrNew, rr)
		p = Elementwise([]Val{alpha}, r, p)
		rr = rrNew
		out[n] = lambda.Ready
	}
	_ = x
	return out
}

// SimulateVRCG runs the paper's restructured iteration with look-ahead k
// in its equation-(*) form: at iteration n the step scalars are
// contractions of the 6k+5 base inner products issued on the iteration
// n-k vector families, with coefficients pipelined from the parameter
// history (§5: "effectively perform the coefficient evaluations in a
// pipelined fashion"). The contraction summation has depth
// ceil(log2(6k+5)) ~ log(k) — the paper's log(log N) when k = log N.
//
// The vector side advances by one matvec (top family power, §5) and
// elementwise family updates per iteration, contributing the log(d)
// term of §6.
func SimulateVRCG(m Model, k, iters int) []Clock {
	mustIters(iters)
	if k < 1 {
		panic(fmt.Sprintf("depth: SimulateVRCG needs k >= 1, got %d", k))
	}
	nTerms := 6*k + 5 // base inner products entering each contraction

	// vecReady[j] = time the iteration-j vector families (r^(j), p^(j)
	// and their powers) are complete; baseIP[j] = completion time of the
	// base inner products on those families (one multiply + log N
	// fan-in).
	//
	// Base issue convention: the paper's Figure 1 counts the vectors of
	// iteration j as "becoming available" at iteration j, i.e. the base
	// products issue no earlier than iteration j's own scalar
	// completion. (A sharper pure-dataflow analysis would issue them one
	// iteration earlier still — the recurrence scalars make r^(j) ready
	// right after lambda_{j-1} — which only improves the constants; we
	// keep the paper's accounting so its §3 "approximately double"
	// figure is reproduced as stated.)
	vecReady := make([]Clock, iters+1)
	baseIP := make([]Clock, iters+1)
	// Start-up (paper: "After an initial start up"): families built and
	// base products issued before iteration 0.
	vecReady[0] = Clock(k)*(1+Clock(Log2Ceil(m.Degree))) + 1
	baseIP[0] = m.DotAvailableAt(vecReady[0]).Ready

	out := make([]Clock, iters)
	prevLambda := At(vecReady[0])
	prevRR := At(baseIP[0])
	for n := 0; n < iters; n++ {
		src := n - k
		if src < 0 {
			src = 0
		}
		base := At(baseIP[src])
		// Coefficients are polynomials in the parameter history,
		// pipelined: ready a couple of scalar steps after the previous
		// lambda.
		coeff := ScalarOp(ScalarOp(prevLambda))
		// Contraction: multiply coefficients with base products (1),
		// then the fan-in over 6k+5 terms.
		terms := make([]Val, nTerms)
		prodReady := ScalarOp(base, coeff)
		for i := range terms {
			terms[i] = prodReady
		}
		rr := ScalarFanIn(terms)
		pap := ScalarFanIn(terms)
		lambda := ScalarOp(rr, pap)

		// Next-alpha chain: the §3 one-step relation from prompt
		// low-index quantities, two scalar steps past lambda.
		alpha := ScalarOp(ScalarOp(lambda, prevRR))

		// Vector families: R-half (elementwise, needs lambda), P-half
		// (elementwise, needs alpha), then the single top matvec.
		famR := Elementwise([]Val{lambda}, VecAt(vecReady[n]))
		famP := Elementwise([]Val{alpha}, famR)
		top := m.MatVec(famP)
		vecReady[n+1] = maxClock(famP.Ready, top.Ready)
		// Base inner products on the iteration-n vectors, issued under
		// the synchronous convention described above.
		baseIP[n] = m.DotAvailableAt(maxClock(vecReady[n], lambda.Ready+1)).Ready

		prevLambda = lambda
		prevRR = rr
		out[n] = lambda.Ready
	}
	return out
}

// SimulateVRCGWindow models the sliding-window formulation of the
// restructured algorithm (the §5 recurrences this repository's solver
// implements, i.e. the details the paper deferred to a future paper):
// instead of evaluating equation (*) as one 6k+5-term contraction of
// depth log(k) per iteration, every window entry advances by an O(1)
// scalar recurrence, and the influence of a directly computed window top
// cascades down two indices per iteration. The prompt critical path per
// iteration is then O(1); the direct inner products' log(N) fan-in plus
// the k-step cascade must only fit inside k iteration periods:
//
//	rate = max(c_scalar, log2(d) + c_vec, 1 + (log2(N) + c)/k)
//
// — for k >= log N this is O(1), strictly better than the paper's
// log log N bound. (The paper's bound comes from its block-contraction
// accounting; the window form pipelines even the contraction.)
func SimulateVRCGWindow(m Model, k, iters int) []Clock {
	mustIters(iters)
	if k < 1 {
		panic(fmt.Sprintf("depth: SimulateVRCGWindow needs k >= 1, got %d", k))
	}
	vecReady := make([]Clock, iters+1)
	// topsDone[j] = completion time of the direct window-top dots issued
	// on the iteration-j vectors; their value reaches the prompt window
	// entries after a cascade of one scalar step per iteration, i.e. it
	// gates lambda at iteration j+k with an extra +k of cascade depth.
	topsDone := make([]Clock, iters+1)
	vecReady[0] = Clock(k)*(1+Clock(Log2Ceil(m.Degree))) + 1
	topsDone[0] = m.DotAvailableAt(vecReady[0]).Ready

	out := make([]Clock, iters)
	prevLambda := At(vecReady[0])
	prevRR := At(topsDone[0])
	for n := 0; n < iters; n++ {
		src := n - k
		if src < 0 {
			src = 0
		}
		// Prompt chain: the low-index window entries advance with O(1)
		// scalar recurrences from the previous iteration's scalars; the
		// cascaded influence of the tops from iteration src arrives
		// after the k-step cascade.
		cascade := At(topsDone[src] + Clock(n-src))
		mPrompt := ScalarOp(ScalarOp(prevLambda, prevRR)) // M'_0, W'_1 updates
		rr := ScalarOp(mPrompt, cascade)
		pap := ScalarOp(mPrompt, cascade)
		lambda := ScalarOp(rr, pap)
		alpha := ScalarOp(ScalarOp(lambda, prevRR))

		famR := Elementwise([]Val{lambda}, VecAt(vecReady[n]))
		famP := Elementwise([]Val{alpha}, famR)
		top := m.MatVec(famP)
		vecReady[n+1] = maxClock(famP.Ready, top.Ready)
		// The three direct top dots issue on the iteration-n vectors
		// under the same synchronous convention as SimulateVRCG.
		topsDone[n] = m.DotAvailableAt(maxClock(vecReady[n], lambda.Ready+1)).Ready

		prevLambda = lambda
		prevRR = rr
		out[n] = lambda.Ready
	}
	return out
}

// VRCGWindowRate returns the steady-state per-iteration time of the
// sliding-window formulation.
func VRCGWindowRate(n, d, k int) float64 {
	iters := 8 * k
	if iters < 64 {
		iters = 64
	}
	return SteadyStateRate(SimulateVRCGWindow(NewModel(n, d), k, iters))
}

// SimulatePIPECG models the Ghysels–Vanroose pipelined CG (2014), the
// direct successor of the paper's idea adopted by PETSc (KSPPIPECG): one
// global reduction per iteration, overlapped with the matvec, i.e. a
// depth-one software pipeline. Its per-iteration time is
// ~ max(log2(d)+O(1), log2(N) - overlap) + O(1): the single reduction is
// hidden behind one iteration of local work, which beats standard CG by
// the same 2x as the paper's k=1 but cannot reach log log N.
func SimulatePIPECG(m Model, iters int) []Clock {
	mustIters(iters)
	vecReady := Clock(0)
	redIssued := m.DotAvailableAt(0) // reduction in flight from warm-up
	prev := At(0)

	out := make([]Clock, iters)
	for n := 0; n < iters; n++ {
		// Scalars for this iteration come from the reduction issued last
		// iteration.
		scalars := ScalarOp(redIssued, prev)
		// Local vector work: fused updates + matvec, gated by scalars.
		upd := Elementwise([]Val{scalars}, VecAt(vecReady))
		mv := m.MatVec(upd)
		vecReady = mv.Ready
		// Issue next reduction immediately on the updated vectors; it
		// completes during the next iteration's local work.
		redIssued = m.DotAvailableAt(upd.Ready)
		prev = scalars
		out[n] = scalars.Ready
	}
	return out
}

// SimulateSStep models Chronopoulos–Gear s-step CG (1989): s iterations
// are blocked together; one batched reduction of 2s+1 inner products per
// block, then s iterations of local recurrence work. Per-iteration time
// ~ (log2 N)/s + log2(d) + O(1): the reduction cost amortizes across the
// block but is not hidden, and the block's local work is serial in the
// matvec chain.
func SimulateSStep(m Model, s, iters int) []Clock {
	mustIters(iters)
	if s < 1 {
		panic(fmt.Sprintf("depth: SimulateSStep needs s >= 1, got %d", s))
	}
	out := make([]Clock, 0, iters)
	blockDone := Clock(0)
	for len(out) < iters {
		// Build the s-dimensional Krylov block: s matvecs in sequence.
		v := VecAt(blockDone)
		for j := 0; j < s; j++ {
			v = m.MatVec(v)
		}
		// One batched reduction for the block Gram data.
		gram := m.Dot(v, v)
		// s iterations of scalar/vector recurrence work. Each
		// iteration's scalars contract coefficient vectors against the
		// 2s+1 Gram entries — a fan-in of depth ~log(2s+1) — then update
		// the local vectors.
		t := gram
		scalarTerms := make([]Val, 2*s+1)
		for j := 0; j < s && len(out) < iters; j++ {
			prod := ScalarOp(t)
			for i := range scalarTerms {
				scalarTerms[i] = prod
			}
			t = ScalarOp(ScalarFanIn(scalarTerms))
			upd := Elementwise([]Val{t}, v)
			out = append(out, t.Ready)
			v = upd
		}
		blockDone = v.Ready
	}
	return out
}

func mustIters(iters int) {
	if iters < 2 {
		panic(fmt.Sprintf("depth: need at least 2 iterations, got %d", iters))
	}
}

// CGRate returns the steady-state per-iteration parallel time of
// standard CG for vector length n and row degree d.
func CGRate(n, d int) float64 {
	return SteadyStateRate(SimulateCG(NewModel(n, d), 64))
}

// VRCGRate returns the steady-state per-iteration parallel time of the
// restructured algorithm with look-ahead k.
func VRCGRate(n, d, k int) float64 {
	iters := 8 * k
	if iters < 64 {
		iters = 64
	}
	return SteadyStateRate(SimulateVRCG(NewModel(n, d), k, iters))
}

// PipeCGRate returns the steady-state per-iteration time of pipelined CG.
func PipeCGRate(n, d int) float64 {
	return SteadyStateRate(SimulatePIPECG(NewModel(n, d), 64))
}

// SStepRate returns the steady-state per-iteration time of s-step CG.
func SStepRate(n, d, s int) float64 {
	iters := 8 * s
	if iters < 64 {
		iters = 64
	}
	return SteadyStateRate(SimulateSStep(NewModel(n, d), s, iters))
}
