package depth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := Log2Ceil(x); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLog2CeilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Log2Ceil(0)
}

func TestScalarOp(t *testing.T) {
	v := ScalarOp(At(3), At(7))
	if v.Ready != 8 {
		t.Fatalf("ScalarOp ready %v, want 8", v.Ready)
	}
	if ScalarOp().Ready != 1 {
		t.Fatalf("no-input ScalarOp ready %v, want 1", ScalarOp().Ready)
	}
}

func TestScalarFanIn(t *testing.T) {
	ins := []Val{At(0), At(0), At(0), At(0), At(0), At(0), At(0), At(0)}
	if got := ScalarFanIn(ins).Ready; got != 3 {
		t.Fatalf("fan-in of 8 at depth %v, want 3", got)
	}
	if got := ScalarFanIn([]Val{At(5)}).Ready; got != 5 {
		t.Fatalf("singleton fan-in ready %v, want 5", got)
	}
	if got := ScalarFanIn(nil).Ready; got != 0 {
		t.Fatalf("empty fan-in ready %v, want 0", got)
	}
	// Latest input dominates.
	if got := ScalarFanIn([]Val{At(0), At(10)}).Ready; got != 11 {
		t.Fatalf("fan-in with late input ready %v, want 11", got)
	}
}

func TestElementwiseAndMatVecDot(t *testing.T) {
	m := NewModel(1024, 5)
	v := Elementwise([]Val{At(2)}, VecAt(1))
	if v.Ready != 3 {
		t.Fatalf("Elementwise ready %v, want 3", v.Ready)
	}
	mv := m.MatVec(VecAt(0))
	if mv.Ready != 1+3 { // 1 + ceil(log2 5) = 1 + 3
		t.Fatalf("MatVec ready %v, want 4", mv.Ready)
	}
	d := m.Dot(VecAt(0), VecAt(2))
	if d.Ready != 2+1+10 {
		t.Fatalf("Dot ready %v, want 13", d.Ready)
	}
}

func TestModelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewModel(0, 1) },
		func() { NewModel(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSteadyStateRate(t *testing.T) {
	// Completion times 0, 5, 10, ... have rate exactly 5.
	cs := make([]Clock, 20)
	for i := range cs {
		cs[i] = Clock(5 * i)
	}
	if r := SteadyStateRate(cs); math.Abs(r-5) > 1e-12 {
		t.Fatalf("rate %v, want 5", r)
	}
}

// --- claim C1: standard CG per-iteration time grows like 2*log2(N) ---

func TestCGRateGrowsLogN(t *testing.T) {
	d := 5
	prev := 0.0
	for _, logN := range []int{6, 10, 14, 18} {
		n := 1 << logN
		rate := CGRate(n, d)
		// Expected: 2*logN + log2(d) + c for a small constant c.
		lower := 2 * float64(logN)
		upper := 2*float64(logN) + float64(Log2Ceil(d)) + 8
		if rate < lower || rate > upper {
			t.Fatalf("N=2^%d: CG rate %.2f outside [%v, %v]", logN, rate, lower, upper)
		}
		if rate <= prev {
			t.Fatalf("CG rate not increasing with N: %v after %v", rate, prev)
		}
		prev = rate
	}
}

func TestCGRateSlopeIsTwoPerLogN(t *testing.T) {
	d := 5
	r10 := CGRate(1<<10, d)
	r20 := CGRate(1<<20, d)
	slope := (r20 - r10) / 10
	if math.Abs(slope-2) > 0.25 {
		t.Fatalf("CG rate slope per log2(N) = %.3f, want ~2", slope)
	}
}

// --- claim C4: VRCG with k = log N runs in ~ log(log N) per iteration ---

func TestVRCGRateDoubleLog(t *testing.T) {
	d := 5
	for _, logN := range []int{10, 14, 20} {
		n := 1 << logN
		k := logN
		rate := VRCGRate(n, d, k)
		// Expected: ~ log2(6k+5) + log2(d) + small constant, crucially
		// independent of the 2*logN term.
		bound := float64(Log2Ceil(6*k+5)) + float64(Log2Ceil(d)) + 10
		if rate > bound {
			t.Fatalf("N=2^%d k=%d: VRCG rate %.2f exceeds log-log bound %.2f", logN, k, rate, bound)
		}
		if cg := CGRate(n, d); rate >= cg {
			t.Fatalf("N=2^%d: VRCG rate %.2f not below CG rate %.2f", logN, rate, cg)
		}
	}
}

func TestVRCGBeatsCGByGrowingFactor(t *testing.T) {
	// The speedup factor CG/VRCG must grow with N (log N / log log N).
	d := 5
	f14 := CGRate(1<<14, d) / VRCGRate(1<<14, d, 14)
	f22 := CGRate(1<<22, d) / VRCGRate(1<<22, d, 22)
	if f22 <= f14 {
		t.Fatalf("speedup not growing: %.2f at 2^14 vs %.2f at 2^22", f14, f22)
	}
	if f22 < 2.5 {
		t.Fatalf("speedup at N=2^22 only %.2f", f22)
	}
}

// --- claim C2: k = 1 approximately doubles parallel speed ---

func TestK1ApproximatelyDoubles(t *testing.T) {
	d := 5
	for _, logN := range []int{14, 20, 26} {
		n := 1 << logN
		ratio := CGRate(n, d) / VRCGRate(n, d, 1)
		// "approximately double": the ratio tends to 2 from below as N
		// grows (the additive constants fade).
		if ratio < 1.4 || ratio > 2.2 {
			t.Fatalf("N=2^%d: k=1 speedup %.3f not ~2", logN, ratio)
		}
	}
	// Monotone approach towards 2.
	r14 := CGRate(1<<14, d) / VRCGRate(1<<14, d, 1)
	r26 := CGRate(1<<26, d) / VRCGRate(1<<26, d, 1)
	if r26 < r14 {
		t.Fatalf("k=1 speedup should approach 2 with N: %.3f then %.3f", r14, r26)
	}
	if r26 < 1.75 {
		t.Fatalf("k=1 speedup at N=2^26 should be near 2, got %.3f", r26)
	}
}

// --- claim C6: per-iteration time = max(log d, log log N) + O(1) ---

func TestDegreeTermDominatesForDenseRows(t *testing.T) {
	// Claim C6 is a max, not a sum: below the crossover the rate is set
	// by the scalar contraction and is flat in d; above it, the matvec
	// gather dominates and the rate grows ~1 per doubling of d.
	n := 1 << 16
	k := 16
	r10 := VRCGRate(n, 1<<10, k)
	r12 := VRCGRate(n, 1<<12, k)
	r14 := VRCGRate(n, 1<<14, k)
	if !(r10 < r12 && r12 < r14) {
		t.Fatalf("rates should grow with degree above crossover: %.2f, %.2f, %.2f", r10, r12, r14)
	}
	slope := (r14 - r10) / 4
	if math.Abs(slope-1) > 0.3 {
		t.Fatalf("degree slope per log2(d) = %.3f, want ~1", slope)
	}
}

func TestMaxLogDLogLogNShape(t *testing.T) {
	// Below the crossover (log d < log log N term) the rate must be flat
	// in d; far above it the gather term rules.
	n := 1 << 20
	k := 20
	flat3 := VRCGRate(n, 3, k)
	flat27 := VRCGRate(n, 27, k)
	if math.Abs(flat3-flat27) > 1e-9 {
		t.Fatalf("below crossover rate should not depend on d: %.2f vs %.2f", flat3, flat27)
	}
	big := VRCGRate(n, 1<<14, k)
	if big-flat3 < 3 {
		t.Fatalf("max(log d, log log N) shape violated: flat %.2f vs dense %.2f", flat3, big)
	}
}

// --- successor context (E7) ---

func TestPipeCGBetweenCGAndVRCG(t *testing.T) {
	n := 1 << 18
	d := 5
	cg := CGRate(n, d)
	pipe := PipeCGRate(n, d)
	vr := VRCGRate(n, d, 18)
	if !(vr < pipe && pipe < cg) {
		t.Fatalf("expected VRCG < PIPECG < CG, got %.2f, %.2f, %.2f", vr, pipe, cg)
	}
}

func TestSStepAmortizesReduction(t *testing.T) {
	n := 1 << 18
	d := 5
	s1 := SStepRate(n, d, 1)
	s4 := SStepRate(n, d, 4)
	s16 := SStepRate(n, d, 16)
	if !(s16 < s4 && s4 < s1) {
		t.Fatalf("s-step rate should fall with s: %.2f, %.2f, %.2f", s1, s4, s16)
	}
}

func TestVRCGBeatsSStepAtEqualLookahead(t *testing.T) {
	// s-step still pays (log N)/s + log d + c with an un-hidden
	// reduction; VRCG hides it entirely behind the k-deep pipeline.
	n := 1 << 20
	d := 5
	if vr, ss := VRCGRate(n, d, 20), SStepRate(n, d, 20); vr >= ss {
		t.Fatalf("VRCG %.2f not below s-step %.2f", vr, ss)
	}
}

func TestSimulatePanics(t *testing.T) {
	m := NewModel(16, 3)
	for _, f := range []func(){
		func() { SimulateCG(m, 1) },
		func() { SimulateVRCG(m, 0, 16) },
		func() { SimulateSStep(m, 0, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: completion clocks are strictly increasing for all algorithms
// (time cannot stand still across iterations).
func TestPropCompletionsMonotone(t *testing.T) {
	f := func(logNRaw, dRaw, kRaw uint8) bool {
		logN := int(logNRaw)%16 + 4
		d := int(dRaw)%30 + 2
		k := int(kRaw)%10 + 1
		m := NewModel(1<<logN, d)
		for _, cs := range [][]Clock{
			SimulateCG(m, 20),
			SimulateVRCG(m, k, 20),
			SimulatePIPECG(m, 20),
			SimulateSStep(m, k, 20),
		} {
			for i := 1; i < len(cs); i++ {
				if cs[i] <= cs[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the VRCG rate is bracketed by the C6 bound — at least the
// gather/contraction floor, at most the pipeline-limited amortization —
// and the paper's k = log N choice is never beaten by k = 1 for large N.
func TestPropVRCGRateBounds(t *testing.T) {
	f := func(logNRaw, kRaw uint8) bool {
		logN := int(logNRaw)%14 + 8
		k := int(kRaw)%(2*logN) + 1
		n := 1 << logN
		d := 5
		r := VRCGRate(n, d, k)
		lower := math.Max(float64(Log2Ceil(d)+3), float64(Log2Ceil(6*k+5)))
		upper := float64(Log2Ceil(n))/float64(k) + float64(Log2Ceil(6*k+5)) + float64(Log2Ceil(d)) + 16
		return r >= lower-1e-9 && r <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The paper's recommended k = log N beats small fixed k for large N (the
// contraction overhead log(6k+5) is far cheaper than the log(N)/k
// pipeline penalty of small k).
func TestLogNLookaheadOptimalRegion(t *testing.T) {
	n := 1 << 22
	d := 5
	if rLog, r1 := VRCGRate(n, d, 22), VRCGRate(n, d, 1); rLog >= r1 {
		t.Fatalf("k=logN rate %.2f should beat k=1 rate %.2f", rLog, r1)
	}
	// And far beyond log N the contraction overhead creeps back up.
	if rHuge, rLog := VRCGRate(n, d, 1<<12), VRCGRate(n, d, 22); rHuge <= rLog {
		t.Fatalf("k >> logN rate %.2f should exceed k=logN rate %.2f", rHuge, rLog)
	}
}

// --- the window formulation: beyond the paper's log log N ---

func TestWindowFormConstantRate(t *testing.T) {
	// With k = log N, the window formulation's rate must be independent
	// of N (no log log N term) and at or below the contract form's.
	d := 5
	prev := 0.0
	for i, lg := range []int{10, 16, 22, 28} {
		n := 1 << lg
		w := VRCGWindowRate(n, d, lg)
		c := VRCGRate(n, d, lg)
		if w > c+1e-9 {
			t.Fatalf("logN=%d: window rate %.2f above contract rate %.2f", lg, w, c)
		}
		if i > 0 && w > prev+0.5 {
			t.Fatalf("window rate grew with N: %.2f after %.2f", w, prev)
		}
		prev = w
	}
}

func TestWindowFormBeatsContractAtLargeN(t *testing.T) {
	// The contract form pays log2(6k+5); the window form does not. At
	// k = 28 that's a ~7-step difference.
	n := 1 << 28
	w := VRCGWindowRate(n, 5, 28)
	c := VRCGRate(n, 5, 28)
	if c-w < 3 {
		t.Fatalf("window form should beat contract form clearly: %.2f vs %.2f", w, c)
	}
}

func TestWindowFormStillNeedsLookahead(t *testing.T) {
	// With k too small, the log(N)/k pipeline term dominates: small k
	// must be slower than k = log N.
	n := 1 << 20
	if small, big := VRCGWindowRate(n, 5, 2), VRCGWindowRate(n, 5, 20); small <= big {
		t.Fatalf("k=2 rate %.2f should exceed k=logN rate %.2f", small, big)
	}
}

func TestWindowFormPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateVRCGWindow(NewModel(16, 3), 0, 10)
}
