// Package depth implements the dependency-depth cost model in which the
// paper states its complexity claims: a machine with at least N
// processors where an elementwise vector operation costs unit time, a
// summation fan-in over N values costs ceil(log2 N), and a sparse
// matrix row gather with d nonzeros costs ceil(log2 d).
//
// Values carry ready times. Operations produce new values whose ready
// time is the maximum input ready time plus the operation latency, so a
// program built from these operations computes its own critical path.
// Per-iteration parallel time is measured as the steady-state growth
// rate of the iteration completion times — exactly the quantity in the
// paper's abstract ("can perform a conjugate gradient iteration in time
// c*log(log(N))").
package depth

import (
	"fmt"
	"math"
)

// Clock is a point on the critical-path time axis (unitless "parallel
// steps", the paper's c=1 normalization).
type Clock = float64

// Model fixes the machine/problem parameters of the cost model.
type Model struct {
	// N is the vector length (and the assumed processor count).
	N int
	// Degree is d, the maximum nonzeros per matrix row.
	Degree int
}

// NewModel validates and returns a model.
func NewModel(n, degree int) Model {
	if n < 1 {
		panic(fmt.Sprintf("depth: vector length %d < 1", n))
	}
	if degree < 1 {
		panic(fmt.Sprintf("depth: row degree %d < 1", degree))
	}
	return Model{N: n, Degree: degree}
}

// Log2Ceil returns ceil(log2 x) for x >= 1 (0 for x = 1).
func Log2Ceil(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("depth: Log2Ceil(%d)", x))
	}
	k := 0
	v := 1
	for v < x {
		v <<= 1
		k++
	}
	return k
}

// Val is a scalar value on the timeline.
type Val struct{ Ready Clock }

// Vec is a distributed vector value on the timeline.
type Vec struct{ Ready Clock }

// At returns a value ready at the given time (for inputs/constants).
func At(t Clock) Val { return Val{Ready: t} }

// VecAt returns a vector ready at the given time.
func VecAt(t Clock) Vec { return Vec{Ready: t} }

func maxClock(ts ...Clock) Clock {
	m := math.Inf(-1)
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// ScalarOp combines scalars with one unit of latency (add, multiply,
// divide — the paper charges unit time for each).
func ScalarOp(ins ...Val) Val {
	m := Clock(0)
	if len(ins) > 0 {
		ts := make([]Clock, len(ins))
		for i, v := range ins {
			ts[i] = v.Ready
		}
		m = maxClock(ts...)
	}
	return Val{Ready: m + 1}
}

// ScalarFanIn sums n scalar values already available at the given ready
// times, with a binary-tree fan-in of depth ceil(log2 n). This is the
// summation the paper's recurrence relation (*) requires at every
// iteration: log(k) = log(log(N)) when k = log N.
func ScalarFanIn(ins []Val) Val {
	if len(ins) == 0 {
		return Val{Ready: 0}
	}
	ts := make([]Clock, len(ins))
	for i, v := range ins {
		ts[i] = v.Ready
	}
	return Val{Ready: maxClock(ts...) + Clock(Log2Ceil(len(ins)))}
}

// Elementwise applies a componentwise vector operation (axpy, scale,
// copy, pointwise multiply): latency 1 with N processors. Scalar
// operands (step sizes) gate the start time.
func Elementwise(scalars []Val, vecs ...Vec) Vec {
	ts := make([]Clock, 0, len(scalars)+len(vecs))
	for _, s := range scalars {
		ts = append(ts, s.Ready)
	}
	for _, v := range vecs {
		ts = append(ts, v.Ready)
	}
	return Vec{Ready: maxClock(ts...) + 1}
}

// MatVec applies the sparse operator: each row gathers d products with a
// fan-in of depth ceil(log2 d) plus one multiply step — the paper's
// log(d) term in §6.
func (m Model) MatVec(x Vec) Vec {
	return Vec{Ready: x.Ready + 1 + Clock(Log2Ceil(m.Degree))}
}

// Dot computes an inner product: one componentwise multiply plus the
// length-N summation fan-in of depth ceil(log2 N) — the dependency the
// whole paper is about.
func (m Model) Dot(a, b Vec) Val {
	return Val{Ready: maxClock(a.Ready, b.Ready) + 1 + Clock(Log2Ceil(m.N))}
}

// DotAvailableAt is Dot for operands whose ready time is already merged;
// convenience for issuing batched base inner products.
func (m Model) DotAvailableAt(t Clock) Val {
	return Val{Ready: t + 1 + Clock(Log2Ceil(m.N))}
}

// SteadyStateRate estimates the asymptotic per-iteration time from a
// sequence of iteration completion clocks, using the mean increment over
// the last half of the sequence (skipping the start-up transient).
func SteadyStateRate(completions []Clock) float64 {
	n := len(completions)
	if n < 2 {
		panic("depth: need at least two completion times")
	}
	lo := n / 2
	if lo == 0 {
		lo = 1
	}
	span := completions[n-1] - completions[lo-1]
	return span / float64(n-lo)
}
