// Package collective implements the reduction, broadcast, gather and
// scan operations the paper's machine model assumes, hand-rolled on the
// simulated machine's point-to-point primitives (Go has no MPI; these
// are the algorithms an MPI implementation would use).
//
// Every collective operates on real data — a contribution per processor
// — and returns the mathematically correct result alongside the clock
// effects on the machine, so correctness and cost are tested together.
// The summation fan-ins cost Theta(log P) message latencies, which is
// exactly the c*log(N) inner-product term the paper restructures CG to
// hide.
package collective

import (
	"fmt"

	"vrcg/internal/machine"
)

func checkContrib(m *machine.Machine, contrib []float64) {
	if len(contrib) != m.P() {
		panic(fmt.Sprintf("collective: %d contributions for %d processors", len(contrib), m.P()))
	}
}

// ReduceSum combines one value per processor into their sum at the root
// using a binomial tree: ceil(log2 P) rounds, each a message plus one
// addition at the receiver.
func ReduceSum(m *machine.Machine, contrib []float64, root int) float64 {
	checkContrib(m, contrib)
	p := m.P()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: root %d out of range", root))
	}
	// Work in a rotated id space where the root is 0.
	val := make([]float64, p)
	copy(val, contrib)
	abs := func(r int) int { return (r + root) % p }
	for gap := 1; gap < p; gap <<= 1 {
		for r := 0; r+gap < p; r += 2 * gap {
			src, dst := abs(r+gap), abs(r)
			m.Send(src, dst, 1)
			m.Compute(dst, 1)
			val[dst] += val[src]
		}
	}
	return val[root]
}

// Bcast distributes the root's value to all processors along a binomial
// tree (the reverse of ReduceSum's pattern).
func Bcast(m *machine.Machine, value float64, root int) []float64 {
	p := m.P()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: root %d out of range", root))
	}
	abs := func(r int) int { return (r + root) % p }
	has := make([]bool, p)
	has[0] = true
	// Find the highest gap used.
	top := 1
	for top < p {
		top <<= 1
	}
	for gap := top >> 1; gap >= 1; gap >>= 1 {
		for r := 0; r+gap < p; r += 2 * gap {
			if has[r] && !has[r+gap] {
				m.Send(abs(r), abs(r+gap), 1)
				has[r+gap] = true
			}
		}
	}
	out := make([]float64, p)
	for i := range out {
		out[i] = value
	}
	return out
}

// AllreduceSum combines one value per processor into the global sum on
// every processor using recursive doubling: ceil(log2 P) pairwise
// exchange rounds. Non-power-of-two counts are handled by folding the
// excess processors into the power-of-two core first and replaying the
// result out at the end.
func AllreduceSum(m *machine.Machine, contrib []float64) []float64 {
	res := AllreduceVec(m, columns(contrib))
	out := make([]float64, m.P())
	for i := range out {
		out[i] = res[i][0]
	}
	return out
}

func columns(contrib []float64) [][]float64 {
	out := make([][]float64, len(contrib))
	for i, v := range contrib {
		out[i] = []float64{v}
	}
	return out
}

// AllreduceVec is the vector form of AllreduceSum: each processor
// contributes a slice of w words; the elementwise global sums land on
// every processor. One batched allreduce of w words costs
// ceil(log2 P) * (alpha + beta*w) — batching the paper's 6k+O(1) base
// inner products into one collective is what makes their pipelined
// computation affordable.
func AllreduceVec(m *machine.Machine, contrib [][]float64) [][]float64 {
	p := m.P()
	if len(contrib) != p {
		panic(fmt.Sprintf("collective: %d contributions for %d processors", len(contrib), p))
	}
	w := len(contrib[0])
	for i, c := range contrib {
		if len(c) != w {
			panic(fmt.Sprintf("collective: processor %d contributes %d words, want %d", i, len(c), w))
		}
	}
	acc := make([][]float64, p)
	for i := range acc {
		acc[i] = append([]float64(nil), contrib[i]...)
	}
	// Largest power of two <= p.
	core := 1
	for core*2 <= p {
		core *= 2
	}
	// Fold the tail into the core.
	for i := core; i < p; i++ {
		dst := i - core
		m.Send(i, dst, w)
		m.Compute(dst, w)
		addInto(acc[dst], acc[i])
	}
	// Recursive doubling within the core.
	for gap := 1; gap < core; gap <<= 1 {
		for i := 0; i < core; i++ {
			partner := i ^ gap
			if partner > i {
				m.Exchange(i, partner, w)
				m.Compute(i, w)
				m.Compute(partner, w)
				sum := make([]float64, w)
				copy(sum, acc[i])
				addInto(sum, acc[partner])
				acc[i] = sum
				acc[partner] = append([]float64(nil), sum...)
			}
		}
	}
	// Replay to the folded tail.
	for i := core; i < p; i++ {
		src := i - core
		m.Send(src, i, w)
		acc[i] = append([]float64(nil), acc[src]...)
	}
	return acc
}

func addInto(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Handle represents a non-blocking collective in flight: the result is
// mathematically determined at issue time, but each processor may only
// consume it after its completion clock.
type Handle struct {
	// Result holds the per-processor results (as the blocking form
	// would return them).
	Result [][]float64
	// Done[i] is the clock at which processor i has the result.
	Done []float64
}

// IAllreduceVec issues a non-blocking vector allreduce: the reduction
// proceeds on a forked timeline (modelling a communication co-processor
// or overlapped network progress), leaving the primary clocks
// untouched. Wait applies the completion times. This is the machinery
// behind the paper's Figure 1: inner products issued at iteration n-k
// complete during the following k iterations.
func IAllreduceVec(m *machine.Machine, contrib [][]float64) *Handle {
	f := m.Fork()
	res := AllreduceVec(f, contrib)
	m.AddStats(f.Stats())
	return &Handle{Result: res, Done: f.Clocks()}
}

// Wait blocks processor i on the handle: its clock advances to the
// completion time if the result has not yet arrived.
func (h *Handle) Wait(m *machine.Machine, i int) []float64 {
	m.AdvanceTo(i, h.Done[i])
	return h.Result[i]
}

// WaitAll blocks every processor on the handle and returns the results.
func (h *Handle) WaitAll(m *machine.Machine) [][]float64 {
	for i := 0; i < m.P(); i++ {
		m.AdvanceTo(i, h.Done[i])
	}
	return h.Result
}

// AllreduceRabenseifner performs the vector allreduce with the
// bandwidth-optimal reduce-scatter + allgather composition (Rabenseifner
// 2004): each of the 2*ceil(log2 P) rounds moves only w/2, w/4, ...
// words, so total transfer is ~2w instead of recursive doubling's
// w*log2(P). For small w (the scalar reductions of CG) recursive
// doubling's lower round count wins; for the wide batched base-product
// reductions of the look-ahead algorithm this form wins once
// beta*w >> alpha. Requires a power-of-two processor count.
func AllreduceRabenseifner(m *machine.Machine, contrib [][]float64) [][]float64 {
	p := m.P()
	if len(contrib) != p {
		panic(fmt.Sprintf("collective: %d contributions for %d processors", len(contrib), p))
	}
	if p&(p-1) != 0 {
		panic("collective: AllreduceRabenseifner requires power-of-two P")
	}
	w := len(contrib[0])
	for i, c := range contrib {
		if len(c) != w {
			panic(fmt.Sprintf("collective: processor %d contributes %d words, want %d", i, len(c), w))
		}
	}
	acc := make([][]float64, p)
	for i := range acc {
		acc[i] = append([]float64(nil), contrib[i]...)
	}
	if p == 1 {
		return acc
	}

	// Reduce-scatter by recursive halving: after the rounds, processor i
	// holds the fully reduced segment seg(i).
	type span struct{ lo, hi int } // word range [lo, hi)
	owned := make([]span, p)
	for i := range owned {
		owned[i] = span{0, w}
	}
	for gap := p / 2; gap >= 1; gap /= 2 {
		for i := 0; i < p; i++ {
			partner := i ^ gap
			if partner < i {
				continue
			}
			// Each of the pair keeps half of its current span; they
			// exchange the halves they are giving up.
			s := owned[i]
			mid := (s.lo + s.hi + 1) / 2
			words := s.hi - s.lo - (mid - s.lo)
			if words < 0 {
				words = 0
			}
			// The lower-indexed processor keeps the lower half.
			m.Exchange(i, partner, maxInt(mid-s.lo, s.hi-mid))
			m.Compute(i, mid-s.lo)
			m.Compute(partner, s.hi-mid)
			for x := s.lo; x < mid; x++ {
				acc[i][x] += acc[partner][x]
			}
			for x := mid; x < s.hi; x++ {
				acc[partner][x] += acc[i][x]
			}
			owned[i] = span{s.lo, mid}
			owned[partner] = span{mid, s.hi}
		}
	}
	// Now acc[i][owned[i]] holds the global sums for that segment.
	// Allgather by recursive doubling: spans merge back.
	for gap := 1; gap < p; gap *= 2 {
		for i := 0; i < p; i++ {
			partner := i ^ gap
			if partner < i {
				continue
			}
			si, sp := owned[i], owned[partner]
			words := maxInt(si.hi-si.lo, sp.hi-sp.lo)
			m.Exchange(i, partner, words)
			for x := sp.lo; x < sp.hi; x++ {
				acc[i][x] = acc[partner][x]
			}
			for x := si.lo; x < si.hi; x++ {
				acc[partner][x] = acc[i][x]
			}
			merged := span{minInt(si.lo, sp.lo), maxInt(si.hi, sp.hi)}
			owned[i], owned[partner] = merged, merged
		}
	}
	return acc
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ScanSum computes the inclusive prefix sum across processors with the
// Hillis–Steele pattern: ceil(log2 P) rounds of shifted sends, each
// round's messages posted simultaneously.
func ScanSum(m *machine.Machine, contrib []float64) []float64 {
	checkContrib(m, contrib)
	p := m.P()
	acc := append([]float64(nil), contrib...)
	for gap := 1; gap < p; gap <<= 1 {
		next := append([]float64(nil), acc...)
		msgs := make([]machine.Message, 0, p)
		for i := 0; i+gap < p; i++ {
			msgs = append(msgs, machine.Message{From: i, To: i + gap, Words: 1})
			next[i+gap] += acc[i]
		}
		m.SendPhase(msgs)
		for i := 0; i+gap < p; i++ {
			m.Compute(i+gap, 1)
		}
		acc = next
	}
	return acc
}

// AllgatherRing collects one word from every processor onto all
// processors via a ring pipeline: P-1 rounds of simultaneous neighbor
// shifts.
func AllgatherRing(m *machine.Machine, contrib []float64) [][]float64 {
	checkContrib(m, contrib)
	p := m.P()
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, p)
		out[i][i] = contrib[i]
	}
	for round := 0; round < p-1; round++ {
		msgs := make([]machine.Message, 0, p)
		for i := 0; i < p; i++ {
			dst := (i + 1) % p
			idx := (i - round + p) % p // block being forwarded by i
			msgs = append(msgs, machine.Message{From: i, To: dst, Words: 1})
			out[dst][idx] = contrib[idx]
		}
		m.SendPhase(msgs)
	}
	return out
}

// Barrier synchronizes all processors: a reduce followed by a broadcast
// of a zero-word token (charged as one-word messages).
func Barrier(m *machine.Machine) {
	if m.P() == 1 {
		return
	}
	zero := make([]float64, m.P())
	ReduceSum(m, zero, 0)
	Bcast(m, 0, 0)
	// All processors leave at the broadcast completion: equalize to the
	// max clock, as a true barrier renders earlier arrival unusable.
	mx := m.MaxClock()
	for i := 0; i < m.P(); i++ {
		m.AdvanceTo(i, mx)
	}
}
