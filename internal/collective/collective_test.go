package collective

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/machine"
)

func mk(p int) *machine.Machine {
	return machine.New(machine.DefaultConfig(p))
}

func contribs(p int, seed uint64) []float64 {
	out := make([]float64, p)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
	return out
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestReduceSumCorrectAllP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		m := mk(p)
		c := contribs(p, uint64(p))
		got := ReduceSum(m, c, 0)
		if math.Abs(got-sum(c)) > 1e-9 {
			t.Fatalf("P=%d: reduce %v, want %v", p, got, sum(c))
		}
	}
}

func TestReduceSumNonzeroRoot(t *testing.T) {
	p := 10
	for root := 0; root < p; root++ {
		m := mk(p)
		c := contribs(p, 77)
		got := ReduceSum(m, c, root)
		if math.Abs(got-sum(c)) > 1e-9 {
			t.Fatalf("root=%d: reduce %v, want %v", root, got, sum(c))
		}
	}
}

func TestReduceLogTime(t *testing.T) {
	// Time must grow like log2(P), not P.
	t64 := func(p int) float64 {
		m := mk(p)
		ReduceSum(m, contribs(p, 5), 0)
		return m.MaxClock()
	}
	r256 := t64(256)
	r4096 := t64(4096)
	// log2 ratio: 12/8 = 1.5; linear would be 16.
	if ratio := r4096 / r256; ratio > 2.5 {
		t.Fatalf("reduce not logarithmic: t(4096)/t(256) = %.2f", ratio)
	}
}

func TestBcastDeliversEverywhere(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		m := mk(p)
		out := Bcast(m, 3.25, p/2)
		for i, v := range out {
			if v != 3.25 {
				t.Fatalf("P=%d proc %d got %v", p, i, v)
			}
		}
	}
}

func TestBcastLogTime(t *testing.T) {
	tcost := func(p int) float64 {
		m := mk(p)
		Bcast(m, 1, 0)
		return m.MaxClock()
	}
	if ratio := tcost(4096) / tcost(256); ratio > 2.5 {
		t.Fatalf("bcast not logarithmic: ratio %.2f", ratio)
	}
}

func TestAllreduceSumAllProcsAgree(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 16, 31} {
		m := mk(p)
		c := contribs(p, uint64(p)*3)
		out := AllreduceSum(m, c)
		want := sum(c)
		for i, v := range out {
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("P=%d proc %d: %v want %v", p, i, v, want)
			}
		}
	}
}

func TestAllreduceVecBatched(t *testing.T) {
	p := 8
	w := 5
	m := mk(p)
	contrib := make([][]float64, p)
	want := make([]float64, w)
	for i := range contrib {
		contrib[i] = contribs(w, uint64(i+1))
		for j, v := range contrib[i] {
			want[j] += v
		}
	}
	out := AllreduceVec(m, contrib)
	for i := range out {
		for j := range out[i] {
			if math.Abs(out[i][j]-want[j]) > 1e-9 {
				t.Fatalf("proc %d word %d: %v want %v", i, j, out[i][j], want[j])
			}
		}
	}
}

func TestAllreduceBatchingCheaperThanSeparate(t *testing.T) {
	// One 16-word allreduce must beat sixteen 1-word allreduces: the
	// latency term amortizes. This is why VRCG batches its base inner
	// products.
	p := 64
	w := 16
	batched := mk(p)
	contrib := make([][]float64, p)
	for i := range contrib {
		contrib[i] = contribs(w, uint64(i))
	}
	AllreduceVec(batched, contrib)

	separate := mk(p)
	for j := 0; j < w; j++ {
		c := make([]float64, p)
		for i := range c {
			c[i] = contrib[i][j]
		}
		AllreduceSum(separate, c)
	}
	if batched.MaxClock() >= separate.MaxClock() {
		t.Fatalf("batched %v not cheaper than separate %v", batched.MaxClock(), separate.MaxClock())
	}
}

func TestAllreduceLogTime(t *testing.T) {
	tcost := func(p int) float64 {
		m := mk(p)
		AllreduceSum(m, contribs(p, 9))
		return m.MaxClock()
	}
	if ratio := tcost(4096) / tcost(256); ratio > 2.5 {
		t.Fatalf("allreduce not logarithmic: ratio %.2f", ratio)
	}
}

func TestIAllreduceOverlap(t *testing.T) {
	p := 16
	m := mk(p)
	contrib := columns(contribs(p, 21))
	h := IAllreduceVec(m, contrib)
	// Primary clocks untouched at issue.
	if m.MaxClock() != 0 {
		t.Fatalf("issue advanced primary clocks to %v", m.MaxClock())
	}
	// Overlapped local work longer than the reduction: wait is then free.
	m.ComputeAll(10000)
	before := m.Clocks()
	res := h.WaitAll(m)
	after := m.Clocks()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("wait stalled proc %d despite overlap: %v -> %v", i, before[i], after[i])
		}
	}
	want := sum(contribs(p, 21))
	for i := range res {
		if math.Abs(res[i][0]-want) > 1e-9 {
			t.Fatalf("IAllreduce result wrong on proc %d", i)
		}
	}
}

func TestIAllreduceWaitStallsWithoutOverlap(t *testing.T) {
	p := 16
	m := mk(p)
	h := IAllreduceVec(m, columns(contribs(p, 22)))
	// No local work: waiting must advance the clocks to the reduction
	// completion time.
	h.WaitAll(m)
	if m.MaxClock() == 0 {
		t.Fatal("wait with no overlap should cost time")
	}
}

func TestScanSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 13} {
		m := mk(p)
		c := contribs(p, uint64(p)+100)
		out := ScanSum(m, c)
		run := 0.0
		for i := 0; i < p; i++ {
			run += c[i]
			if math.Abs(out[i]-run) > 1e-9 {
				t.Fatalf("P=%d prefix %d: %v want %v", p, i, out[i], run)
			}
		}
	}
}

func TestAllgatherRing(t *testing.T) {
	p := 6
	m := mk(p)
	c := contribs(p, 55)
	out := AllgatherRing(m, c)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if out[i][j] != c[j] {
				t.Fatalf("proc %d slot %d: %v want %v", i, j, out[i][j], c[j])
			}
		}
	}
	// Ring allgather is linear in P by design.
	if m.Stats().Messages != p*(p-1) {
		t.Fatalf("messages = %d, want %d", m.Stats().Messages, p*(p-1))
	}
}

func TestBarrierEqualizesClocks(t *testing.T) {
	m := mk(8)
	m.Compute(3, 100)
	Barrier(m)
	mn, mx := m.MinClock(), m.MaxClock()
	if mn != mx {
		t.Fatalf("clocks not equal after barrier: [%v, %v]", mn, mx)
	}
	if mx < 100 {
		t.Fatal("barrier lost the latest clock")
	}
	// Single-processor barrier is a no-op.
	one := mk(1)
	Barrier(one)
	if one.MaxClock() != 0 {
		t.Fatal("P=1 barrier should be free")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	m := mk(4)
	for _, f := range []func(){
		func() { ReduceSum(m, make([]float64, 3), 0) },
		func() { ReduceSum(m, make([]float64, 4), 9) },
		func() { Bcast(m, 1, -1) },
		func() { AllreduceVec(m, [][]float64{{1}, {1}, {1}, {1, 2}}) },
		func() { ScanSum(m, make([]float64, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: all collectives compute correct sums for random sizes/values.
func TestPropCollectivesCorrect(t *testing.T) {
	f := func(pRaw uint8, seed uint64) bool {
		p := int(pRaw)%40 + 1
		c := contribs(p, seed)
		want := sum(c)

		if got := ReduceSum(mk(p), c, int(seed%uint64(p))); math.Abs(got-want) > 1e-9 {
			return false
		}
		for _, v := range AllreduceSum(mk(p), c) {
			if math.Abs(v-want) > 1e-9 {
				return false
			}
		}
		out := ScanSum(mk(p), c)
		if math.Abs(out[p-1]-want) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: allreduce completion time grows at most logarithmically:
// doubling P adds at most one round's cost.
func TestPropAllreduceLogRounds(t *testing.T) {
	f := func(e uint8) bool {
		exp := int(e)%8 + 2 // P = 4 .. 512
		p := 1 << exp
		m1 := mk(p)
		AllreduceSum(m1, contribs(p, 1))
		m2 := mk(2 * p)
		AllreduceSum(m2, contribs(2*p, 1))
		perRound := m1.MaxClock() / float64(exp)
		return m2.MaxClock() <= m1.MaxClock()+perRound*1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRabenseifnerCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		for _, w := range []int{1, 3, 8, 33} {
			m := mk(p)
			contrib := make([][]float64, p)
			want := make([]float64, w)
			for i := range contrib {
				contrib[i] = contribs(w, uint64(i*7+p))
				for j, v := range contrib[i] {
					want[j] += v
				}
			}
			out := AllreduceRabenseifner(m, contrib)
			for i := range out {
				for j := range out[i] {
					if math.Abs(out[i][j]-want[j]) > 1e-9 {
						t.Fatalf("P=%d w=%d proc %d word %d: %v want %v", p, w, i, j, out[i][j], want[j])
					}
				}
			}
		}
	}
}

func TestRabenseifnerRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := mk(6)
	contrib := make([][]float64, 6)
	for i := range contrib {
		contrib[i] = []float64{1}
	}
	AllreduceRabenseifner(m, contrib)
}

func TestRabenseifnerWinsForWideMessages(t *testing.T) {
	// With beta*w >> alpha, reduce-scatter+allgather must beat recursive
	// doubling (it moves ~2w words instead of w*log2 P).
	p := 64
	w := 4096
	cfg := machine.Config{P: p, Alpha: 1, Beta: 1, FlopTime: 0}
	mkc := func() [][]float64 {
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = contribs(w, uint64(i))
		}
		return contrib
	}
	rd := machine.New(cfg)
	AllreduceVec(rd, mkc())
	rab := machine.New(cfg)
	AllreduceRabenseifner(rab, mkc())
	if rab.MaxClock() >= rd.MaxClock() {
		t.Fatalf("Rabenseifner %v not below recursive doubling %v for wide messages",
			rab.MaxClock(), rd.MaxClock())
	}
}

func TestRecursiveDoublingWinsForNarrowMessages(t *testing.T) {
	// With alpha >> beta*w, recursive doubling's log2(P) rounds beat
	// Rabenseifner's 2*log2(P) rounds.
	p := 64
	w := 1
	cfg := machine.Config{P: p, Alpha: 100, Beta: 0.001, FlopTime: 0}
	mkc := func() [][]float64 {
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = contribs(w, uint64(i))
		}
		return contrib
	}
	rd := machine.New(cfg)
	AllreduceVec(rd, mkc())
	rab := machine.New(cfg)
	AllreduceRabenseifner(rab, mkc())
	if rd.MaxClock() >= rab.MaxClock() {
		t.Fatalf("recursive doubling %v not below Rabenseifner %v for narrow messages",
			rd.MaxClock(), rab.MaxClock())
	}
}

// Property: Rabenseifner agrees with recursive doubling on the values.
func TestPropRabenseifnerMatchesRecursiveDoubling(t *testing.T) {
	f := func(seed uint64, pExp, wRaw uint8) bool {
		p := 1 << (int(pExp)%5 + 1) // 2..32
		w := int(wRaw)%20 + 1
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = contribs(w, seed+uint64(i))
		}
		clone := func() [][]float64 {
			out := make([][]float64, p)
			for i := range out {
				out[i] = append([]float64(nil), contrib[i]...)
			}
			return out
		}
		a := AllreduceVec(mk(p), clone())
		b := AllreduceRabenseifner(mk(p), clone())
		for i := range a {
			for j := range a[i] {
				if math.Abs(a[i][j]-b[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
