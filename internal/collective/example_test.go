package collective_test

import (
	"fmt"

	"vrcg/internal/collective"
	"vrcg/internal/machine"
)

// ExampleAllreduceSum sums one contribution per processor on a simulated
// 8-processor machine; every processor receives the total, and the
// parallel time is the log2(P) fan-in the paper's analysis assumes.
func ExampleAllreduceSum() {
	m := machine.New(machine.Config{P: 8, Alpha: 1, Beta: 0, FlopTime: 0})
	contrib := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := collective.AllreduceSum(m, contrib)
	fmt.Printf("sum=%v rounds=%v\n", out[0], m.MaxClock())
	// Output: sum=36 rounds=3
}

// ExampleIAllreduceVec overlaps a reduction with local work — the
// pipelining mechanism behind the paper's Figure 1.
func ExampleIAllreduceVec() {
	m := machine.New(machine.Config{P: 4, Alpha: 10, Beta: 0, FlopTime: 1})
	contrib := [][]float64{{1}, {2}, {3}, {4}}
	h := collective.IAllreduceVec(m, contrib)
	m.ComputeAll(100) // local work longer than the reduction
	before := m.MaxClock()
	res := h.WaitAll(m) // free: the reduction finished during the work
	fmt.Printf("sum=%v stalled=%v\n", res[0][0], m.MaxClock() != before)
	// Output: sum=10 stalled=false
}
