package core

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// TestSolvePooledMatchesSerial: routing VRCG through the worker-pool
// engine must preserve convergence and the solution (up to reduction
// reassociation, which re-anchoring keeps bounded).
func TestSolvePooledMatchesSerial(t *testing.T) {
	a := sparse.Poisson2D(16)
	b := vec.New(a.Dim())
	vec.Random(b, 55)
	for _, k := range []int{0, 2} {
		ref, err := Solve(a, b, Options{K: k, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
			pool := vec.NewPoolMinChunk(w, 32)
			res, err := Solve(a, b, Options{K: k, Tol: 1e-9, Pool: pool})
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, w, err)
			}
			if !res.Converged {
				t.Fatalf("k=%d workers=%d: pooled solve did not converge", k, w)
			}
			if !vec.EqualTol(res.X, ref.X, 1e-6) {
				t.Fatalf("k=%d workers=%d: pooled solution differs", k, w)
			}
			pool.Close()
		}
	}
}

// TestWindowStepZeroAlloc: advancing the scalar window is now
// allocation-free (scratch slabs swap instead of make).
func TestWindowStepZeroAlloc(t *testing.T) {
	w := NewWindow(4)
	for i := range w.M {
		w.M[i] = 1 / float64(i+1)
	}
	for i := range w.N {
		w.N[i] = 1 / float64(i+2)
	}
	for i := range w.W {
		w.W[i] = 1 / float64(i+3)
	}
	if avg := testing.AllocsPerRun(100, func() {
		w.Step(0.001, 0.5, 1e-6, 1e-6, 1e-6)
	}); avg != 0 {
		t.Errorf("Window.Step allocates %v per call, want 0", avg)
	}
}

// TestIteratorPooled: the step-level API accepts the engine too.
func TestIteratorPooled(t *testing.T) {
	a := sparse.Poisson2D(12)
	b := vec.New(a.Dim())
	vec.Random(b, 56)
	pool := vec.NewPoolMinChunk(2, 32)
	defer pool.Close()
	it, err := NewIterator(a, b, Options{K: 1, Tol: 1e-8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*a.Dim(); i++ {
		more, err := it.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if !it.Converged() {
		t.Fatal("pooled iterator did not converge")
	}
}
